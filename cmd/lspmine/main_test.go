package main

import (
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/compat"
	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// TestMain doubles the test binary as the lspmine CLI: when re-exec'd with
// LSPMINE_HELPER=1 it runs main() on its own arguments, so exit-code
// contracts can be asserted against a real process without building the
// command first.
func TestMain(m *testing.M) {
	if os.Getenv("LSPMINE_HELPER") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// helperWorld writes a small noisy world the CLI can mine.
func helperWorld(t *testing.T) (dbPath, matrixPath string) {
	t.Helper()
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	const m = 6
	std, _, err := datagen.Protein(datagen.ProteinConfig{
		N: 60, M: m, MinLen: 10, MaxLen: 14,
		Motifs:    []pattern.Pattern{pattern.MustNew(0, 1, 2)},
		PlantProb: 0.7,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := datagen.ApplyUniformNoise(std, m, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	dbPath = filepath.Join(dir, "world.lsq")
	if err := seqdb.WriteFile(dbPath, noisy); err != nil {
		t.Fatal(err)
	}
	c, err := compat.UniformNoise(m, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	matrixPath = filepath.Join(dir, "world.compat")
	f, err := os.Create(matrixPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return dbPath, matrixPath
}

// runHelper re-execs the test binary as lspmine with the given arguments,
// returning stdout, stderr, and the exit code.
func runHelper(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "LSPMINE_HELPER=1")
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err = cmd.Run()
	code = 0
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return out.String(), errb.String(), code
}

// TestDegradedRunExitCode is the CLI degradation contract: an expired Phase 3
// budget exits 3 (not 0, not 1), reports degraded=true in -metrics, and a
// rerun without the budget exits 0 on the same world.
func TestDegradedRunExitCode(t *testing.T) {
	dbPath, matrixPath := helperWorld(t)
	base := []string{
		"-db", dbPath, "-matrix", matrixPath,
		"-min-match", "0.30", "-max-len", "6",
		"-delta", "1e-2", "-sample", "30", "-seed", "2",
		"-metrics", "json",
	}

	// 1ns budget: Phase 3 expires before its first probe scan.
	stdout, stderr, code := runHelper(t, append([]string{"-phase-timeout", "1ns"}, base...)...)
	if code != 3 {
		t.Fatalf("degraded run exit code = %d, want 3\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	// stderr carries the human degradation warning first, then the snapshot.
	jsonStart := strings.Index(stderr, "{")
	if jsonStart < 0 {
		t.Fatalf("no JSON snapshot on stderr:\n%s", stderr)
	}
	var snap struct {
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal([]byte(stderr[jsonStart:]), &snap); err != nil {
		t.Fatalf("-metrics json did not parse: %v\nstderr:\n%s", err, stderr)
	}
	if !snap.Degraded {
		t.Errorf("-metrics output lacks degraded=true\nstderr:\n%s", stderr)
	}
	if !strings.Contains(stdout, "unresolved patterns") {
		t.Errorf("degraded run did not report its unresolved patterns\nstdout:\n%s", stdout)
	}

	// Same world, no budget: complete result, exit 0, degraded omitted.
	stdout, stderr, code = runHelper(t, base...)
	if code != 0 {
		t.Fatalf("healthy run exit code = %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if strings.Contains(stderr, `"degraded": true`) {
		t.Errorf("healthy run reported degraded=true\nstderr:\n%s", stderr)
	}
}

// TestDegradedExitCodeWithJSONReport: the contract holds on the -json path
// too (the report and the exit code must agree).
func TestDegradedExitCodeWithJSONReport(t *testing.T) {
	dbPath, matrixPath := helperWorld(t)
	stdout, stderr, code := runHelper(t,
		"-db", dbPath, "-matrix", matrixPath,
		"-min-match", "0.30", "-max-len", "6",
		"-delta", "1e-2", "-sample", "30", "-seed", "2",
		"-phase-timeout", "1ns", "-json")
	if code != 3 {
		t.Fatalf("exit code = %d, want 3\nstderr:\n%s", code, stderr)
	}
	var rep struct {
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("-json report did not parse: %v\nstdout:\n%s", err, stdout)
	}
	if !rep.Degraded {
		t.Error("JSON report not marked degraded while exit code was 3")
	}
}

func TestUsageExitCode(t *testing.T) {
	_, _, code := runHelper(t) // no -db/-matrix
	if code != 2 {
		t.Fatalf("usage error exit code = %d, want 2", code)
	}
}
