// Command lspmine mines the frequent long sequential patterns of a sequence
// database under the match model, using the paper's three-phase
// probabilistic algorithm.
//
// Usage:
//
//	lspmine -db test.lsq -matrix compat.txt -min-match 0.01 \
//	        [-max-len 8] [-max-gap 1] [-sample 1000] [-delta 1e-4] \
//	        [-budget 10000] [-finalizer collapse|levelwise|none] [-seed 1] \
//	        [-phase2-engine levelwise|growth] \
//	        [-phase2-kernel incremental|naive] [-workers -1] \
//	        [-retries 3] [-retry-base 10ms] [-retry-cap 1s] \
//	        [-checkpoint run.lckp] [-resume] [-phase-timeout 30s] \
//	        [-phase3-nodes http://a:8427,http://b:8427] [-auth-token T] \
//	        [-phase3-hedge 0] [-rpc-timeout 0] \
//	        [-all] [-v] [-metrics json|text] \
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -phase3-nodes distributes Phase 3's probe scans over remote lspserve
// shard workers (started with -serve-shards over the same database): each
// probe batch is scattered shard-by-shard across the nodes and gathered
// deterministically, so the mined result is bit-identical to a local run.
// Node failures are retried with full-jitter backoff and reassigned to
// healthy nodes; -phase3-hedge launches a duplicate probe on a second node
// when the first dawdles past the given duration, and -rpc-timeout bounds
// each attempt. A shard no node can serve degrades the run gracefully
// (confirmed set + Chernoff intervals, resumable from -checkpoint) instead
// of failing it. -retry-base/-retry-cap shape both the local retrying
// scanner's backoff and the shard RPC retry backoff.
//
// Phase 2 scores each lattice level with the incremental prefix-extension
// kernel by default, sharding the sample across -workers goroutines;
// -phase2-kernel naive restores per-level recompilation (for verification —
// the classifications are identical). Kernel cache statistics appear in
// -metrics output as the kernel_* fields.
//
// -phase2-engine growth swaps the breadth-first candidate miner for the
// depth-first pattern-growth engine: patterns grow by prefix extension over
// projected sample databases with optimistic bound pruning, producing the
// same labels and borders — bit-identical for every -workers count — without
// materializing whole candidate levels (so -max-candidates does not apply).
// It shines on long-pattern/low-threshold workloads; growth statistics
// appear in -metrics output as the growth_* fields.
//
// -metrics collects pipeline telemetry (per-phase scan traffic and wall
// time, lattice and probe counters) and prints it to stderr; the same
// snapshot rides inside -json reports as the "telemetry" object. -cpuprofile
// and -memprofile write pprof profiles for offline analysis.
//
// -follow turns the run into a streaming session over an append-only log
// (.lsa, written by lspappend or lspserve -append-log): instead of one batch
// mine, lspmine tails the log read-only, consuming newly appended sequences
// every -poll interval and re-mining incrementally — stationary batches skip
// Phase 2 entirely and serve Phase 3 probes from cached exact sums. Each
// processed batch prints one summary line; -follow-batches N exits after N
// advances (0 = run until signalled). With -checkpoint the stream state is
// persisted after every advance and -resume continues a killed follower
// bit-identically, catching up on sequences appended while it was down.
// Sliding-window expiry belongs to the log's writer (lspappend -window,
// lspserve -append-window); the read-only follower inherits it.
//
// -checkpoint persists progress to the given file (crash-atomically, after
// every phase and every Phase 3 probe scan); -resume restarts a killed run
// from that file, skipping every full scan it records. -phase-timeout bounds
// Phase 3's wall time: on expiry the run degrades gracefully, reporting the
// frequent set confirmed so far plus the still-ambiguous patterns with their
// Chernoff intervals, instead of failing.
//
// Exit codes: 0 complete result, 1 error, 2 usage, 3 degraded result (the
// Phase 3 budget expired; output is the confirmed set, and -metrics reports
// degraded=true — resume with -checkpoint/-resume to finish), 130
// interrupted by signal.
//
// SIGINT/SIGTERM cancel the run cleanly: the run aborts within one sequence
// block, a final checkpoint is flushed when -checkpoint is set, and the
// partial result (phase reached, scans completed) is reported instead of
// dying mid-scan. A second SIGINT/SIGTERM during that shutdown forces an
// immediate exit, skipping the final checkpoint flush. -retries wraps the
// database in a seqdb.RetryScanner that re-runs passes hit by transient I/O
// failures with capped exponential backoff (the backoff itself is
// interruptible).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/shardrpc"
	"repro/internal/telemetry"
)

func main() {
	dbPath := flag.String("db", "", "sequence database (binary .lsq format; comma-separated paths open a multi-file shard set)")
	matrixPath := flag.String("matrix", "", "compatibility matrix (text format)")
	minMatch := flag.Float64("min-match", 0.01, "match threshold")
	maxLen := flag.Int("max-len", 8, "maximum pattern length")
	maxGap := flag.Int("max-gap", 1, "maximum run of * inside a pattern")
	sample := flag.Int("sample", 1000, "Phase 1 sample size")
	delta := flag.Float64("delta", 1e-4, "Chernoff failure probability (confidence = 1-delta)")
	budget := flag.Int("budget", 10000, "Phase 3 pattern counters per scan")
	maxCand := flag.Int("max-candidates", 50000, "Phase 2 per-level candidate cap (0 = unlimited; dense matrices explode without one)")
	finalizer := flag.String("finalizer", "collapse", "Phase 3 strategy: collapse, implicit, levelwise or none")
	engine := flag.String("engine", "candidates", "Phase 2 engine: candidates or sweep (sparse matrices)")
	phase2Engine := flag.String("phase2-engine", "levelwise", "Phase 2 mining strategy: levelwise (breadth-first generate-and-test) or growth (depth-first pattern growth over projected samples; same labels, bit-identical across worker counts)")
	kernel := flag.String("phase2-kernel", "incremental", "Phase 2 sample kernel: incremental (prefix-extension cache) or naive (recompile per level)")
	workers := flag.Int("workers", -1, "worker goroutines sharding Phase 2's sample and Phase 3's probe counting (-1 = all cores, 0/1 = sequential; results are identical for every count)")
	phase3Shards := flag.Int("phase3-shards", 0, "scatter each Phase 3 probe scan over this many database shards, gathered deterministically (0/1 = single-pass probes; ignored when -db names a shard set)")
	retries := flag.Int("retries", 0, "retry transient scan failures up to this many times per pass (0 = no retrying); also caps shard RPC attempts with -phase3-nodes")
	retryBase := flag.Duration("retry-base", 0, "base delay of retry backoff — both the retrying scanner's and the shard RPC's (0 = 10ms)")
	retryCap := flag.Duration("retry-cap", 0, "delay cap of retry backoff (0 = 1s)")
	phase3Nodes := flag.String("phase3-nodes", "", "comma-separated lspserve shard-worker base URLs; Phase 3 probe scans scatter across them (bit-identical to a local run)")
	authToken := flag.String("auth-token", "", "bearer token sent to -phase3-nodes workers")
	phase3Hedge := flag.Duration("phase3-hedge", 0, "hedge a straggling shard probe on a second node after this long (0 = no hedging)")
	rpcTimeout := flag.Duration("rpc-timeout", 0, "per-attempt timeout of shard probe RPCs (0 = none; the phase budget still applies)")
	ckptPath := flag.String("checkpoint", "", "persist progress to this snapshot file (crash-atomic; resumable with -resume)")
	resume := flag.Bool("resume", false, "resume from the -checkpoint snapshot, skipping every full scan it records")
	phaseTimeout := flag.Duration("phase-timeout", 0, "Phase 3 wall-clock budget; on expiry the run degrades gracefully instead of failing (0 = unlimited)")
	seed := flag.Int64("seed", 1, "random seed for sampling")
	follow := flag.Bool("follow", false, "stream: tail the append-only log named by -db, mining incrementally as sequences arrive")
	poll := flag.Duration("poll", 2*time.Second, "polling interval between follow advances")
	followBatches := flag.Int("follow-batches", 0, "exit after this many follow advances (0 = run until signalled)")
	all := flag.Bool("all", false, "print every frequent pattern, not only the border")
	jsonOut := flag.Bool("json", false, "emit a JSON report instead of text")
	metricsOut := flag.String("metrics", "", "collect pipeline telemetry and print it to stderr: json or text")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	verbose := flag.Bool("v", false, "print phase statistics")
	flag.Parse()

	switch *metricsOut {
	case "", "json", "text":
	default:
		fatal(fmt.Errorf("unknown -metrics format %q (want json or text)", *metricsOut))
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *dbPath == "" || *matrixPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var db seqdb.Scanner
	var err error
	if paths := seqdb.ShardSetPaths(*dbPath); len(paths) > 1 {
		db, err = seqdb.OpenShardSet(paths)
	} else {
		db, err = seqdb.OpenAuto(*dbPath)
	}
	if err != nil {
		fatal(err)
	}
	adb, _ := db.(*seqdb.AppendDB)
	if *follow && adb == nil {
		fatal(errors.New("-follow requires -db to name a single append-only log (.lsa)"))
	}
	if *retryBase < 0 || *retryCap < 0 || (*retryBase > 0 && *retryCap > 0 && *retryCap < *retryBase) {
		fatal(errors.New("-retry-cap must be >= -retry-base, both non-negative"))
	}
	if *retries > 0 {
		// Full-jitter backoff: seeded from -seed so runs stay reproducible,
		// while concurrent miners hitting one flaky store spread their
		// retries instead of re-hammering it in lockstep.
		db = &seqdb.RetryScanner{
			Inner:      db,
			MaxRetries: *retries,
			BaseDelay:  *retryBase,
			MaxDelay:   *retryCap,
			Jitter:     rand.New(rand.NewSource(*seed)),
		}
	}
	mf, err := os.Open(*matrixPath)
	if err != nil {
		fatal(err)
	}
	c, err := compat.ReadFrom(mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}

	var fin core.Finalizer
	switch *finalizer {
	case "collapse":
		fin = core.BorderCollapsing
	case "levelwise":
		fin = core.LevelWise
	case "implicit":
		fin = core.BorderCollapsingImplicit
	case "none":
		fin = core.None
	default:
		fatal(fmt.Errorf("unknown finalizer %q", *finalizer))
	}

	mine := core.MineContext
	switch *engine {
	case "candidates":
	case "sweep":
		mine = core.MineSweepContext
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}

	var p2k core.Phase2Kernel
	switch *kernel {
	case "incremental":
		p2k = core.KernelIncremental
	case "naive":
		p2k = core.KernelNaive
	default:
		fatal(fmt.Errorf("unknown Phase 2 kernel %q (want incremental or naive)", *kernel))
	}

	var p2e core.Phase2Engine
	switch *phase2Engine {
	case "levelwise":
		p2e = core.Phase2Levelwise
	case "growth":
		p2e = core.Phase2Growth
	default:
		fatal(fmt.Errorf("unknown Phase 2 engine %q (want levelwise or growth)", *phase2Engine))
	}
	if p2e == core.Phase2Growth && *engine == "sweep" {
		fatal(errors.New("-phase2-engine growth requires -engine candidates (the sweep pipeline has its own Phase 2)"))
	}

	// SIGINT/SIGTERM cancel the mining context: the run aborts within one
	// sequence block, flushes a final checkpoint when -checkpoint is set,
	// and reports the partial result instead of dying mid-scan. A second
	// signal during that shutdown forces an immediate exit (no final
	// checkpoint).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		cancel()
		<-sigc
		fmt.Fprintln(os.Stderr, "lspmine: second signal — exiting immediately, skipping the final checkpoint")
		os.Exit(130)
	}()

	var metrics *telemetry.Metrics
	if *metricsOut != "" {
		metrics = &telemetry.Metrics{}
	}
	if *follow {
		scfg := core.StreamConfig{
			Config: core.Config{
				MinMatch:              *minMatch,
				Delta:                 *delta,
				SampleSize:            *sample,
				MaxLen:                *maxLen,
				MaxGap:                *maxGap,
				MaxCandidatesPerLevel: *maxCand,
				MemBudget:             *budget,
				Workers:               *workers,
				Phase2Kernel:          p2k,
				Metrics:               metrics,
			},
			Seed:           *seed,
			CheckpointPath: *ckptPath,
		}
		runFollow(ctx, adb, c, scfg, *resume, *poll, *followBatches, *all, *verbose, metrics, *metricsOut)
		return
	}
	cfg := core.Config{
		MinMatch:              *minMatch,
		Delta:                 *delta,
		SampleSize:            *sample,
		MaxLen:                *maxLen,
		MaxGap:                *maxGap,
		MaxCandidatesPerLevel: *maxCand,
		MemBudget:             *budget,
		Finalizer:             fin,
		Workers:               *workers,
		Phase3Shards:          *phase3Shards,
		Phase2Kernel:          p2k,
		Phase2Engine:          p2e,
		Rng:                   rand.New(rand.NewSource(*seed)),
		Metrics:               metrics,
		PhaseTimeouts:         core.PhaseTimeouts{Phase3: *phaseTimeout},
	}
	if *ckptPath != "" {
		cfg.Checkpoint = &core.CheckpointPolicy{Path: *ckptPath, Seed: *seed}
	}
	if *phase3Nodes != "" {
		var clients []*shardrpc.Client
		for _, u := range strings.Split(*phase3Nodes, ",") {
			if u = strings.TrimSpace(u); u != "" {
				if !strings.Contains(u, "://") {
					u = "http://" + u
				}
				clients = append(clients, &shardrpc.Client{BaseURL: u, AuthToken: *authToken})
			}
		}
		if len(clients) == 0 {
			fatal(errors.New("-phase3-nodes lists no nodes"))
		}
		pool := &shardrpc.Pool{
			Clients:    clients,
			Retry:      shardrpc.RetryPolicy{MaxAttempts: *retries, Base: *retryBase, Cap: *retryCap},
			Timeout:    *rpcTimeout,
			HedgeAfter: *phase3Hedge,
			Jitter:     rand.New(rand.NewSource(*seed)),
			Metrics:    metrics,
		}
		// Shard layout: -phase3-shards when set, else one shard per node.
		// Block-aligned gather makes the result identical for every count.
		nshards := *phase3Shards
		if nshards < 1 {
			nshards = len(clients)
		}
		cfg.ProbeValuer = func(ctx context.Context, db seqdb.Scanner, c compat.Source) miner.Valuer {
			return miner.RemoteShardValuerContext(ctx, seqdb.ShardedView(db, nshards), pool, c, *workers, metrics)
		}
	}
	var res *core.Result
	if *resume {
		if *ckptPath == "" {
			fatal(errors.New("-resume requires -checkpoint"))
		}
		res, err = core.Resume(ctx, *ckptPath, db, c, cfg)
	} else {
		res, err = mine(ctx, db, c, cfg)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			reportInterrupted(err, res, db, *ckptPath)
		}
		fatal(err)
	}

	a := pattern.GenericAlphabet(c.Size())
	if *jsonOut {
		rep, err := core.NewReport(res, *minMatch, db.Len(), a)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		finish(metrics, res, *metricsOut)
		return
	}
	if res.Degraded {
		fmt.Fprintf(os.Stderr, "lspmine: %s; degraded result with %d unresolved patterns (resume with -resume to finish)\n",
			degradeCause(res), len(res.Unresolved))
	}
	if *verbose {
		fmt.Printf("sequences: %d, sample: %d, scans: %d\n", db.Len(), res.SampleSize, res.Scans)
		if res.ResumedFrom > 0 {
			fmt.Printf("resumed from phase %d checkpoint: %d of those scans skipped\n", res.ResumedFrom, res.ScansSkipped)
		}
		if st := res.ScanStats; st.Retries > 0 || st.Permanent > 0 {
			fmt.Printf("scan attempts: %d (%d retried after transient failures)\n", st.Attempts, st.Retries)
		}
		fmt.Printf("phase 2: %d frequent, %d ambiguous (%v)\n",
			res.Phase2.Frequent.Len(), res.Phase2.Ambiguous.Len(), res.Phase2Time.Round(1e6))
		if res.Phase2.Truncated {
			fmt.Println("phase 2: candidate cap hit; result is complete only for the explored space")
		}
		if res.Phase3 != nil {
			fmt.Printf("phase 3: %d probed in %d scans (%v)\n",
				res.Phase3.Probed, res.Phase3.Scans, res.Phase3Time.Round(1e6))
		}
	}
	set := res.Border
	label := "border"
	if *all {
		set, label = res.Frequent, "frequent"
	}
	fmt.Printf("%s patterns (%d):\n", label, set.Len())
	for _, p := range set.Patterns() {
		fmt.Println("  ", a.Format(p))
	}
	if res.Degraded {
		fmt.Printf("unresolved patterns (%d, %s; true match within ±ε at confidence 1-δ):\n",
			len(res.Unresolved), degradeCause(res))
		for _, u := range res.Unresolved {
			fmt.Printf("   %s  sample=%.4f ε=%.4f\n", a.Format(u.Pattern), u.SampleMatch, u.Epsilon)
		}
	}
	finish(metrics, res, *metricsOut)
}

// runFollow tails the append log: one Advance per -poll tick, one summary
// line per tick, patterns printed when the batch re-mined (the set cannot
// have changed otherwise). A signal stops the follower cleanly — with
// -checkpoint every advance is already persisted, so the next -follow -resume
// picks up where this one stopped, including anything appended in between.
func runFollow(ctx context.Context, db *seqdb.AppendDB, c compat.Source, cfg core.StreamConfig, resume bool, poll time.Duration, maxBatches int, all, verbose bool, metrics *telemetry.Metrics, metricsOut string) {
	var st *core.Stream
	var err error
	if resume {
		if cfg.CheckpointPath == "" {
			fatal(errors.New("-resume requires -checkpoint"))
		}
		st, err = core.ResumeStream(cfg.CheckpointPath, db, c, cfg)
	} else {
		st, err = core.NewStream(db, c, cfg)
	}
	if err != nil {
		fatal(err)
	}
	a := pattern.GenericAlphabet(c.Size())
	for batch := 1; ; batch++ {
		res, err := st.Advance(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				break
			}
			fatal(err)
		}
		phase2 := "cached"
		if res.Remined {
			phase2 = "remined"
		}
		fmt.Printf("batch %d: +%d/-%d sequences (cursor %d), %d frequent, %d border, phase2 %s, %d reprobes avoided, %d scans\n",
			batch, res.Appended, res.Expired, res.Total, res.Frequent.Len(), res.Border.Len(), phase2, res.ReprobesAvoided, res.Scans)
		// The set only changes when a batch re-mines, so print it then — and
		// on a bounded run's last batch, so scripts get the final set even
		// when that batch was served from cache.
		if verbose && (res.Remined || (maxBatches > 0 && batch == maxBatches)) {
			set, label := res.Border, "border"
			if all {
				set, label = res.Frequent, "frequent"
			}
			fmt.Printf("  %s:", label)
			for _, p := range set.Patterns() {
				fmt.Printf(" %s", a.Format(p))
			}
			fmt.Println()
		}
		if maxBatches > 0 && batch >= maxBatches {
			break
		}
		select {
		case <-ctx.Done():
			goto stopped
		case <-time.After(poll):
		}
	}
stopped:
	if metrics != nil {
		snap := metrics.Snapshot()
		var err error
		if metricsOut == "json" {
			err = snap.WriteJSON(os.Stderr)
		} else {
			err = snap.WriteText(os.Stderr)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "lspmine: metrics:", err)
		}
	}
}

// degradeCause names what forced the graceful degradation.
func degradeCause(res *core.Result) string {
	if res.DegradeReason == core.DegradeShardLost {
		return "a phase 3 shard became permanently unreachable"
	}
	return "phase 3 budget expired"
}

// finish writes the telemetry snapshot (when collecting) and exits with the
// degradation contract's status code: 0 for a complete result, 3 for a
// degraded one (Phase 3 budget expired; the confirmed set plus Chernoff
// intervals were reported). Orchestration can distinguish "done" from "done
// but worth resuming" by exit code alone.
func finish(m *telemetry.Metrics, res *core.Result, format string) {
	if m != nil {
		writeMetrics(m, res, format)
	}
	if res.Degraded {
		os.Exit(3)
	}
}

// writeMetrics renders the run's telemetry snapshot (with the scanner's
// retry counters folded in) to stderr, keeping stdout clean for the report.
func writeMetrics(m *telemetry.Metrics, res *core.Result, format string) {
	snap := m.Snapshot()
	snap.Retry = res.ScanStats
	snap.Degraded = res.Degraded
	var err error
	if format == "json" {
		err = snap.WriteJSON(os.Stderr)
	} else {
		err = snap.WriteText(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lspmine: metrics:", err)
	}
}

// reportInterrupted summarizes a cancelled run: the phase it died in, the
// scans it completed, and whatever partial output the finished phases left.
// By the time the *PhaseError surfaced, the pipeline already flushed its
// final checkpoint (when one was configured).
func reportInterrupted(err error, res *core.Result, db seqdb.Scanner, ckptPath string) {
	phase := 0
	var pe *core.PhaseError
	if errors.As(err, &pe) {
		phase = pe.Phase
	}
	fmt.Fprintf(os.Stderr, "lspmine: interrupted during phase %d; %d full scans completed\n", phase, db.Scans())
	if ckptPath != "" {
		fmt.Fprintf(os.Stderr, "lspmine: progress saved to %s; continue with -resume\n", ckptPath)
	}
	if res == nil {
		os.Exit(130)
	}
	if res.Phase2 != nil {
		fmt.Fprintf(os.Stderr, "lspmine: partial result: %d sample-frequent, %d ambiguous (unresolved)\n",
			res.Phase2.Frequent.Len(), res.Phase2.Ambiguous.Len())
	}
	if st := res.ScanStats; st.Retries > 0 {
		fmt.Fprintf(os.Stderr, "lspmine: %d scan attempts, %d retried\n", st.Attempts, st.Retries)
	}
	os.Exit(130)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lspmine:", err)
	os.Exit(1)
}
