// Command lspmine mines the frequent long sequential patterns of a sequence
// database under the match model, using the paper's three-phase
// probabilistic algorithm.
//
// Usage:
//
//	lspmine -db test.lsq -matrix compat.txt -min-match 0.01 \
//	        [-max-len 8] [-max-gap 1] [-sample 1000] [-delta 1e-4] \
//	        [-budget 10000] [-finalizer collapse|levelwise|none] [-seed 1] \
//	        [-retries 3] [-all] [-v] [-metrics json|text] \
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// -metrics collects pipeline telemetry (per-phase scan traffic and wall
// time, lattice and probe counters) and prints it to stderr; the same
// snapshot rides inside -json reports as the "telemetry" object. -cpuprofile
// and -memprofile write pprof profiles for offline analysis.
//
// SIGINT/SIGTERM cancel the run cleanly: the partial result (phase reached,
// scans completed) is reported instead of dying mid-scan. -retries wraps the
// database in a seqdb.RetryScanner that re-runs passes hit by transient I/O
// failures with capped exponential backoff.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/telemetry"
)

func main() {
	dbPath := flag.String("db", "", "sequence database (binary .lsq format)")
	matrixPath := flag.String("matrix", "", "compatibility matrix (text format)")
	minMatch := flag.Float64("min-match", 0.01, "match threshold")
	maxLen := flag.Int("max-len", 8, "maximum pattern length")
	maxGap := flag.Int("max-gap", 1, "maximum run of * inside a pattern")
	sample := flag.Int("sample", 1000, "Phase 1 sample size")
	delta := flag.Float64("delta", 1e-4, "Chernoff failure probability (confidence = 1-delta)")
	budget := flag.Int("budget", 10000, "Phase 3 pattern counters per scan")
	maxCand := flag.Int("max-candidates", 50000, "Phase 2 per-level candidate cap (0 = unlimited; dense matrices explode without one)")
	finalizer := flag.String("finalizer", "collapse", "Phase 3 strategy: collapse, implicit, levelwise or none")
	engine := flag.String("engine", "candidates", "Phase 2 engine: candidates or sweep (sparse matrices)")
	retries := flag.Int("retries", 0, "retry transient scan failures up to this many times per pass (0 = no retrying)")
	seed := flag.Int64("seed", 1, "random seed for sampling")
	all := flag.Bool("all", false, "print every frequent pattern, not only the border")
	jsonOut := flag.Bool("json", false, "emit a JSON report instead of text")
	metricsOut := flag.String("metrics", "", "collect pipeline telemetry and print it to stderr: json or text")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	verbose := flag.Bool("v", false, "print phase statistics")
	flag.Parse()

	switch *metricsOut {
	case "", "json", "text":
	default:
		fatal(fmt.Errorf("unknown -metrics format %q (want json or text)", *metricsOut))
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *dbPath == "" || *matrixPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	db, err := seqdb.OpenAuto(*dbPath)
	if err != nil {
		fatal(err)
	}
	if *retries > 0 {
		db = &seqdb.RetryScanner{Inner: db, MaxRetries: *retries}
	}
	mf, err := os.Open(*matrixPath)
	if err != nil {
		fatal(err)
	}
	c, err := compat.ReadFrom(mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}

	var fin core.Finalizer
	switch *finalizer {
	case "collapse":
		fin = core.BorderCollapsing
	case "levelwise":
		fin = core.LevelWise
	case "implicit":
		fin = core.BorderCollapsingImplicit
	case "none":
		fin = core.None
	default:
		fatal(fmt.Errorf("unknown finalizer %q", *finalizer))
	}

	mine := core.MineContext
	switch *engine {
	case "candidates":
	case "sweep":
		mine = core.MineSweepContext
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}

	// SIGINT/SIGTERM cancel the mining context: the run aborts within one
	// sequence block and reports the partial result instead of dying
	// mid-scan.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var metrics *telemetry.Metrics
	if *metricsOut != "" {
		metrics = &telemetry.Metrics{}
	}
	res, err := mine(ctx, db, c, core.Config{
		MinMatch:              *minMatch,
		Delta:                 *delta,
		SampleSize:            *sample,
		MaxLen:                *maxLen,
		MaxGap:                *maxGap,
		MaxCandidatesPerLevel: *maxCand,
		MemBudget:             *budget,
		Finalizer:             fin,
		Rng:                   rand.New(rand.NewSource(*seed)),
		Metrics:               metrics,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			reportInterrupted(err, res, db)
		}
		fatal(err)
	}
	if metrics != nil {
		defer writeMetrics(metrics, res, *metricsOut)
	}

	a := pattern.GenericAlphabet(c.Size())
	if *jsonOut {
		rep, err := core.NewReport(res, *minMatch, db.Len(), a)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *verbose {
		fmt.Printf("sequences: %d, sample: %d, scans: %d\n", db.Len(), res.SampleSize, res.Scans)
		if st := res.ScanStats; st.Retries > 0 || st.Permanent > 0 {
			fmt.Printf("scan attempts: %d (%d retried after transient failures)\n", st.Attempts, st.Retries)
		}
		fmt.Printf("phase 2: %d frequent, %d ambiguous (%v)\n",
			res.Phase2.Frequent.Len(), res.Phase2.Ambiguous.Len(), res.Phase2Time.Round(1e6))
		if res.Phase2.Truncated {
			fmt.Println("phase 2: candidate cap hit; result is complete only for the explored space")
		}
		if res.Phase3 != nil {
			fmt.Printf("phase 3: %d probed in %d scans (%v)\n",
				res.Phase3.Probed, res.Phase3.Scans, res.Phase3Time.Round(1e6))
		}
	}
	set := res.Border
	label := "border"
	if *all {
		set, label = res.Frequent, "frequent"
	}
	fmt.Printf("%s patterns (%d):\n", label, set.Len())
	for _, p := range set.Patterns() {
		fmt.Println("  ", a.Format(p))
	}
}

// writeMetrics renders the run's telemetry snapshot (with the scanner's
// retry counters folded in) to stderr, keeping stdout clean for the report.
func writeMetrics(m *telemetry.Metrics, res *core.Result, format string) {
	snap := m.Snapshot()
	snap.Retry = res.ScanStats
	var err error
	if format == "json" {
		err = snap.WriteJSON(os.Stderr)
	} else {
		err = snap.WriteText(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lspmine: metrics:", err)
	}
}

// reportInterrupted summarizes a cancelled run: the phase it died in, the
// scans it completed, and whatever partial output the finished phases left.
func reportInterrupted(err error, res *core.Result, db seqdb.Scanner) {
	phase := 0
	var pe *core.PhaseError
	if errors.As(err, &pe) {
		phase = pe.Phase
	}
	fmt.Fprintf(os.Stderr, "lspmine: interrupted during phase %d; %d full scans completed\n", phase, db.Scans())
	if res == nil {
		os.Exit(130)
	}
	if res.Phase2 != nil {
		fmt.Fprintf(os.Stderr, "lspmine: partial result: %d sample-frequent, %d ambiguous (unresolved)\n",
			res.Phase2.Frequent.Len(), res.Phase2.Ambiguous.Len())
	}
	if st := res.ScanStats; st.Retries > 0 {
		fmt.Fprintf(os.Stderr, "lspmine: %d scan attempts, %d retried\n", st.Attempts, st.Retries)
	}
	os.Exit(130)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lspmine:", err)
	os.Exit(1)
}
