// lspverify is the conformance gate for the mining stack: it replays the
// committed differential corpus and a deterministic batch of fresh seeds,
// cross-checking every mining engine (core.Mine under both Phase 2 kernels
// and several worker counts, the implicit and level-wise finalizers, the
// exhaustive miner, Max-Miner, and both support miners) against the
// brute-force oracle of internal/oracle, plus the metamorphic property
// harness. It exits nonzero on any divergence, printing the failing seed
// and a minimized reproduction.
//
// Usage:
//
//	lspverify [-seeds N] [-base B] [-committed] [-properties] [-v]
//
// Fresh seeds are derived deterministically from -base, so a given flag set
// always runs the same cases; point -base at a new value (e.g. a date) to
// explore new ground, and promote any failing seed into
// oracle.CommittedSeeds once fixed.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/oracle"
)

func main() {
	seeds := flag.Int("seeds", 16, "number of fresh seeds to run (derived from -base)")
	base := flag.Int64("base", 20260806, "base for deriving fresh seeds deterministically")
	committed := flag.Bool("committed", true, "also replay the committed regression corpus")
	seed := flag.Int64("seed", 0, "run exactly this one seed (the repro mode printed by a divergence)")
	properties := flag.Bool("properties", true, "run the metamorphic property harness per seed")
	verbose := flag.Bool("v", false, "print one line per passing seed")
	flag.Parse()

	var all []int64
	if *seed != 0 {
		all = []int64{*seed}
	} else {
		if *committed {
			all = append(all, oracle.CommittedSeeds...)
		}
		rng := rand.New(rand.NewSource(*base))
		for i := 0; i < *seeds; i++ {
			all = append(all, rng.Int63())
		}
	}
	if len(all) == 0 {
		fmt.Fprintln(os.Stderr, "lspverify: nothing to run (use -seeds or -committed)")
		os.Exit(2)
	}

	failures := oracle.Verify(os.Stdout, oracle.VerifyOptions{
		Seeds:      all,
		Properties: *properties,
		Verbose:    *verbose,
	})
	if failures > 0 {
		os.Exit(1)
	}
}
