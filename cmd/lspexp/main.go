// Command lspexp reproduces the paper's evaluation: one subcommand per
// table/figure of §5, each printing the corresponding series as an aligned
// table.
//
// Usage:
//
//	lspexp [-scale small|medium|paper] [-seed N] fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|blosum|all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "small", "workload scale: small, medium or paper")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lspexp [flags] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 blosum all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	name := flag.Arg(0)
	runners := map[string]func(experiments.Scale, int64) error{
		"fig7":   runFig7,
		"fig8":   runFig8,
		"fig9":   runFig9,
		"fig10":  runFig10,
		"fig11":  runFig11,
		"fig12":  runFig12,
		"fig13":  runFig13,
		"fig14":  runFig14,
		"fig15":  runFig15,
		"blosum": runBlosum,
	}
	if name == "all" {
		for _, n := range []string{"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "blosum"} {
			if err := timed(n, runners[n], scale, *seed); err != nil {
				fatal(err)
			}
		}
		return
	}
	run, ok := runners[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "lspexp: unknown experiment %q\n", name)
		flag.Usage()
		os.Exit(2)
	}
	if err := timed(name, run, scale, *seed); err != nil {
		fatal(err)
	}
}

func timed(name string, run func(experiments.Scale, int64) error, scale experiments.Scale, seed int64) error {
	start := time.Now()
	fmt.Printf("== %s (scale=%s seed=%d) ==\n", name, scale, seed)
	if err := run(scale, seed); err != nil {
		return err
	}
	fmt.Printf("-- %s done in %v --\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lspexp:", err)
	os.Exit(1)
}

func runFig7(scale experiments.Scale, seed int64) error {
	res, err := experiments.Fig7(experiments.Fig7Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("workload: %s, |R(k>=%d)| = %d, min_match = %g\n",
		res.Workload, res.Config.MinK, res.RefSize, res.Config.MinMatch)
	fmt.Println("Figure 7(a,b): model quality vs noise level")
	fmt.Print(res.Table())
	fmt.Printf("Figure 7(c,d): model quality vs pattern length at alpha=%g\n", res.Config.LengthAlpha)
	fmt.Print(res.LevelTable())
	return nil
}

func runFig8(scale experiments.Scale, seed int64) error {
	res, err := experiments.Fig8(experiments.Fig8Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("Figure 8: match-model quality vs compatibility-matrix error")
	fmt.Print(res.Table())
	return nil
}

func runFig9(scale experiments.Scale, seed int64) error {
	res, err := experiments.Fig9(experiments.Fig9Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("Figure 9: candidate patterns per lattice level")
	fmt.Print(res.Table())
	return nil
}

func runFig10(scale experiments.Scale, seed int64) error {
	res, err := experiments.Fig10(experiments.Fig10Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("Figure 10: ambiguous patterns vs sample size")
	fmt.Print(res.Table())
	return nil
}

func runFig11(scale experiments.Scale, seed int64) error {
	res, err := experiments.Fig11(experiments.Fig11Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("Figure 11(a): average restricted spread R per level")
	fmt.Print(res.Table())
	fmt.Println("Figure 11(b): ambiguous patterns, restricted R vs R=1")
	fmt.Print(res.RatioTable())
	return nil
}

func runFig12(scale experiments.Scale, seed int64) error {
	res, err := experiments.Fig12(experiments.Fig12Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("Figure 12: ambiguous patterns and error rate vs confidence")
	fmt.Print(res.Table())
	return nil
}

func runFig13(scale experiments.Scale, seed int64) error {
	res, err := experiments.Fig13(experiments.Fig13Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("Figure 13: distribution of missed patterns (missed=%d, truth=%d)\n", res.Missed, res.Frequent)
	fmt.Print(res.Table())
	return nil
}

func runFig14(scale experiments.Scale, seed int64) error {
	res, err := experiments.Fig14(experiments.Fig14Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("Figure 14: border collapsing vs level-wise vs Max-Miner")
	fmt.Print(res.Table())
	return nil
}

func runFig15(scale experiments.Scale, seed int64) error {
	res, err := experiments.Fig15(experiments.Fig15Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println("Figure 15: scalability vs number of distinct symbols")
	fmt.Print(res.Table())
	return nil
}

func runBlosum(scale experiments.Scale, seed int64) error {
	res, err := experiments.Blosum(experiments.BlosumConfig{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("BLOSUM50 mutation experiment (identity=%g, lambda=%g, |R|=%d)\n",
		res.Config.Identity, res.Config.Lambda, res.RefSize)
	fmt.Print(res.Table())
	return nil
}
