// Command lspbench drives the three-phase miner over a §6-style grid of
// synthetic workloads (internal/datagen) and emits a machine-readable
// benchmark report, BENCH_mine.json. It is the repo's perf baseline: run it
// before and after a change to see where the scans, candidates, and wall
// time went.
//
// Usage:
//
//	lspbench [-quick] [-runs 3] [-seed 1] [-out BENCH_mine.json]
//
// Each workload is mined -runs times with telemetry enabled (reported
// timings are the mean), then -runs times with telemetry disabled to
// measure the collection overhead. -quick restricts the grid to the two
// smallest workloads and two runs each — the CI configuration.
//
// A final serve cell drives the base workload through an in-process
// lspserve (internal/jobs behind its HTTP handler) and reports submission
// throughput and submit→complete latency percentiles.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/jobs"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/telemetry"
)

// workload is one cell of the benchmark grid: a standard database recipe, a
// noise level, and the mining parameters applied to the noisy copy.
type workload struct {
	Name string `json:"name"`
	// quick marks the workloads kept by -quick.
	quick bool

	// Generation.
	N              int     // sequences
	MinLen, MaxLen int     // sequence length range
	M              int     // alphabet size
	NumMotifs      int     // planted motifs
	MotifLen       int     // motif length
	PlantProb      float64 // per-sequence plant probability
	Alpha          float64 // uniform noise rate
	// Sparse mines with a banded compatibility matrix (each observed symbol
	// explained only by itself and its ring neighbors) instead of the uniform
	// one — the regime the incremental kernel's sparse window cache targets.
	Sparse bool

	// Mining.
	MinMatch  float64
	Delta     float64
	PatLen    int // core.Config.MaxLen
	MaxGap    int
	Sample    int
	MemBudget int
	MaxCand   int
	Finalizer core.Finalizer
}

// grid is the paper-shaped parameter sweep: a base protein-like workload
// (Figure 14's neighborhood, scaled to seconds), a longer-pattern variant
// exercising gaps, a noisier variant that swells the ambiguous region, and a
// wide-alphabet variant stressing candidate generation.
// Delta is set to 1e-2 throughout (vs the paper's 1e-4): with the bench's
// small samples the paper's confidence would push the Chernoff band so wide
// that most of the lattice lands in the ambiguous region and the run spends
// minutes probing — the right trade-off for mining, the wrong one for a
// benchmark that must finish in seconds.
var grid = []workload{
	{
		Name: "base", quick: true,
		N: 400, MinLen: 24, MaxLen: 40, M: 20,
		NumMotifs: 3, MotifLen: 5, PlantProb: 0.40, Alpha: 0.05,
		MinMatch: 0.20, Delta: 1e-2, PatLen: 6, MaxGap: 0, Sample: 200,
		MemBudget: 500, MaxCand: 50000, Finalizer: core.BorderCollapsing,
	},
	{
		Name: "noisy", quick: true,
		N: 400, MinLen: 24, MaxLen: 40, M: 20,
		NumMotifs: 3, MotifLen: 5, PlantProb: 0.50, Alpha: 0.15,
		MinMatch: 0.18, Delta: 1e-2, PatLen: 6, MaxGap: 0, Sample: 200,
		MemBudget: 500, MaxCand: 50000, Finalizer: core.BorderCollapsing,
	},
	{
		Name: "sparse-band", quick: true,
		N: 400, MinLen: 24, MaxLen: 40, M: 20,
		NumMotifs: 3, MotifLen: 5, PlantProb: 0.45, Alpha: 0.10, Sparse: true,
		MinMatch: 0.20, Delta: 1e-2, PatLen: 6, MaxGap: 1, Sample: 200,
		MemBudget: 500, MaxCand: 50000, Finalizer: core.BorderCollapsing,
	},
	{
		Name: "long-gapped",
		N:    2000, MinLen: 30, MaxLen: 50, M: 20,
		NumMotifs: 2, MotifLen: 8, PlantProb: 0.50, Alpha: 0.05,
		MinMatch: 0.25, Delta: 1e-2, PatLen: 8, MaxGap: 1, Sample: 500,
		MemBudget: 1000, MaxCand: 50000, Finalizer: core.BorderCollapsing,
	},
	{
		// The pattern-growth engine's home turf: long sequences mined deep at
		// a low threshold. Every window of every sequence is a candidate
		// position, so the level-wise engine's per-candidate window walks
		// scale with sequence length — while the growth engine's class
		// profile values a whole sibling group from one walk plus one
		// O(alphabet) pass per child, and its optimistic bound prunes the
		// frontier without valuing it.
		Name: "long-low",
		N:    600, MinLen: 150, MaxLen: 220, M: 20,
		NumMotifs: 2, MotifLen: 10, PlantProb: 0.55, Alpha: 0.05,
		MinMatch: 0.2, Delta: 1e-2, PatLen: 8, MaxGap: 1, Sample: 300,
		MemBudget: 1000, MaxCand: 50000, Finalizer: core.BorderCollapsing,
	},
	{
		Name: "wide-alphabet",
		N:    300, MinLen: 40, MaxLen: 40, M: 50,
		NumMotifs: 2, MotifLen: 5, PlantProb: 0.50, Alpha: 0.04,
		MinMatch: 0.20, Delta: 1e-2, PatLen: 5, MaxGap: 0, Sample: 250,
		MemBudget: 1000, MaxCand: 50000, Finalizer: core.BorderCollapsing,
	},
}

// result is one workload's measured outcome.
type result struct {
	Name      string  `json:"name"`
	Sequences int     `json:"sequences"`
	Alphabet  int     `json:"alphabet"`
	Alpha     float64 `json:"alpha"`
	MinMatch  float64 `json:"min_match"`
	Delta     float64 `json:"delta"`
	PatLen    int     `json:"max_len"`
	MaxGap    int     `json:"max_gap"`
	Sample    int     `json:"sample"`
	MemBudget int     `json:"mem_budget"`

	Runs         int     `json:"runs"`
	NsPerOp      float64 `json:"ns_per_op"`
	PlainNsPerOp float64 `json:"plain_ns_per_op"`
	// TelemetryOverheadPct compares the instrumented and uninstrumented
	// means; small negatives are run-to-run noise.
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`

	Scans      int     `json:"scans"`
	ProbeScans int64   `json:"probe_scans"`
	Phase1Ms   float64 `json:"phase1_ms"`
	Phase2Ms   float64 `json:"phase2_ms"`
	Phase3Ms   float64 `json:"phase3_ms"`
	// Phase2LevelMs is the incremental run's per-level Phase 2 wall time.
	Phase2LevelMs []float64 `json:"phase2_level_ms,omitempty"`
	// Phase2NaiveMs re-mines the same sample with Phase2Kernel=KernelNaive;
	// Phase2SpeedupX is naive over incremental, and LabelsIdentical confirms
	// both kernels classified every evaluated pattern identically.
	Phase2NaiveMs   float64 `json:"phase2_naive_ms"`
	Phase2SpeedupX  float64 `json:"phase2_speedup_x"`
	LabelsIdentical bool    `json:"labels_identical"`
	// The engine-comparison cell: Phase2GrowthMs re-mines the last run's
	// sample with the depth-first pattern-growth engine
	// (Phase2Engine=growth), best-of-3 against a best-of-3 re-time of the
	// level-wise engine (Phase2LevelwiseMs). GrowthSpeedupX is levelwise over
	// growth, GrowthNodesExpanded counts DFS nodes valued or pruned (compare
	// PeakCandidates, the level-wise engine's resident high-water mark),
	// GrowthBoundPrunes counts subtrees cut by the projection bound, and
	// GrowthLabelsIdentical confirms both engines classified every candidate
	// identically.
	Phase2LevelwiseMs     float64 `json:"phase2_levelwise_ms"`
	Phase2GrowthMs        float64 `json:"phase2_growth_ms"`
	GrowthSpeedupX        float64 `json:"growth_speedup_x"`
	GrowthNodesExpanded   int64   `json:"growth_nodes_expanded"`
	GrowthBoundPrunes     int64   `json:"growth_bound_prunes"`
	GrowthLabelsIdentical bool    `json:"growth_labels_identical"`
	// Phase3ShardMs re-mines the last run with Phase 3 probe scans scattered
	// over Phase3Shards database shards (the SoA scatter-gather path);
	// Phase3SpeedupX is the single-pass Phase 3 wall time over the sharded
	// one, and Phase3Identical confirms both runs mined the same frequent
	// set and spent the same number of logical scans.
	Phase3Shards    int     `json:"phase3_shards,omitempty"`
	Phase3ShardMs   float64 `json:"phase3_shard_ms"`
	Phase3SpeedupX  float64 `json:"phase3_speedup_x"`
	Phase3Identical bool    `json:"phase3_identical"`
	SequencesPerSec float64 `json:"sequences_per_sec"`
	PeakCandidates  int64   `json:"peak_candidates"`
	Frequent        int     `json:"frequent"`
	Border          int     `json:"border"`

	// Telemetry is the last instrumented run's full snapshot.
	Telemetry telemetry.Snapshot `json:"telemetry"`
}

// serveResult is the serving cell: the base workload submitted as concurrent
// jobs to an in-process lspserve, measured end to end through the HTTP API.
type serveResult struct {
	Jobs        int `json:"jobs"`
	WorkerSlots int `json:"worker_slots"`

	// JobsPerSec is completed jobs over the wall time from first submit to
	// last completion.
	WallMs     float64 `json:"wall_ms"`
	JobsPerSec float64 `json:"jobs_per_sec"`

	// SubmitP95Ms is the client-observed POST /v1/jobs round trip (admission
	// + journal fsync), which the admission path keeps independent of mining.
	SubmitP95Ms float64 `json:"submit_p95_ms"`

	// Latency percentiles are submit→complete per job, from the journal's own
	// timestamps (SubmittedMs → FinishedMs), so queueing time is included.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyMaxMs float64 `json:"latency_max_ms"`
}

// streamResult is the streaming cell: the base workload fed into an
// append-only log batch by batch, consumed by an incremental follower
// (internal/stream through core.Stream) and, for comparison, re-mined from
// scratch over each growing prefix. The follower's claim is amortized cost:
// stationary batches skip Phase 2 and serve Phase 3 probes from cached exact
// sums, so it must spend strictly fewer probe-pattern counts (and typically
// far fewer scans) than the from-scratch loop over the same batch schedule.
type streamResult struct {
	Workload string `json:"workload"`
	// WarmupSequences seed the log before measurement starts: a follower
	// attaching to a near-empty log is degenerate (a tiny window makes the
	// Chernoff band so wide that almost the whole lattice is ambiguous, for
	// the from-scratch miner just as much), so the cell measures the
	// steady-state regime both paths actually run in.
	WarmupSequences int `json:"warmup_sequences"`
	Batches         int `json:"batches"`
	BatchSize       int `json:"batch_size"`

	// Amortized wall time per consumed batch, streaming vs from-scratch.
	StreamMsPerBatch  float64 `json:"stream_ms_per_batch"`
	ScratchMsPerBatch float64 `json:"scratch_ms_per_batch"`
	SpeedupX          float64 `json:"speedup_x"`

	// ReminesSkipped counts batches whose maintained labels proved the
	// border did not move (Phase 2 skipped outright).
	ReminesSkipped int `json:"remines_skipped"`
	// StreamProbed / ScratchProbed count the Phase 3 probe patterns each
	// side actually counted against the database over all batches (for the
	// follower, cache-served resolutions are subtracted — they cost no
	// database work); ReprobesAvoided counts those cache-served ambiguous
	// patterns. FewerReprobes is the committed claim: the incremental path
	// re-probed strictly fewer patterns than mining every prefix from
	// scratch.
	StreamProbed    int64 `json:"stream_probed"`
	ScratchProbed   int64 `json:"scratch_probed"`
	ReprobesAvoided int64 `json:"reprobes_avoided"`
	FewerReprobes   bool  `json:"fewer_reprobes"`

	// Window passes spent by each side (Phase 1 + Phase 3; the follower's
	// ingest tail-reads are not passes).
	StreamScans  int64 `json:"stream_scans"`
	ScratchScans int64 `json:"scratch_scans"`

	// FinalSetsAgree compares the last batch's frequent set against the
	// final from-scratch mine (informational: the two draw different Phase 1
	// samples, so agreement is expected, not guaranteed).
	FinalSetsAgree bool `json:"final_sets_agree"`
}

// report is the BENCH_mine.json document.
type report struct {
	Schema    string        `json:"schema"`
	Go        string        `json:"go"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Quick     bool          `json:"quick"`
	Seed      int64         `json:"seed"`
	Workloads []result      `json:"workloads"`
	Serve     *serveResult  `json:"serve,omitempty"`
	Stream    *streamResult `json:"stream,omitempty"`
}

func main() {
	quick := flag.Bool("quick", false, "run only the small workloads, two runs each (the CI configuration)")
	runs := flag.Int("runs", 3, "mining runs per workload (reported timings are the mean)")
	seed := flag.Int64("seed", 1, "random seed for generation and sampling")
	out := flag.String("out", "BENCH_mine.json", "output file (- for stdout)")
	flag.Parse()

	if *runs < 1 {
		fatal(fmt.Errorf("runs %d < 1", *runs))
	}
	if *quick && *runs > 2 {
		*runs = 2
	}

	rep := report{
		Schema: "lspbench/v2",
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Quick:  *quick,
		Seed:   *seed,
	}
	for _, w := range grid {
		if *quick && !w.quick {
			continue
		}
		fmt.Fprintf(os.Stderr, "lspbench: %s (%d sequences, m=%d, %d runs)\n", w.Name, w.N, w.M, *runs)
		r, err := bench(w, *runs, *seed)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", w.Name, err))
		}
		rep.Workloads = append(rep.Workloads, r)
	}

	serveJobs := 32
	if *quick {
		serveJobs = 8
	}
	fmt.Fprintf(os.Stderr, "lspbench: serve (%d jobs over the base workload)\n", serveJobs)
	sr, err := benchServe(serveJobs, *seed)
	if err != nil {
		fatal(fmt.Errorf("serve: %w", err))
	}
	rep.Serve = sr

	fmt.Fprintf(os.Stderr, "lspbench: stream (base workload, batched append + incremental follow)\n")
	str, err := benchStream(*seed)
	if err != nil {
		fatal(fmt.Errorf("stream: %w", err))
	}
	rep.Stream = str

	var f *os.File
	if *out == "-" {
		f = os.Stdout
	} else {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "lspbench: wrote %s\n", *out)
	}
}

// bench generates the workload's noisy database once, then mines it
// runs times with telemetry and runs times without.
func bench(w workload, runs int, seed int64) (result, error) {
	rng := rand.New(rand.NewSource(seed))
	standard, _, err := datagen.Protein(datagen.ProteinConfig{
		N: w.N, M: w.M, MinLen: w.MinLen, MaxLen: w.MaxLen,
		NumMotifs: w.NumMotifs, MotifLen: w.MotifLen, PlantProb: w.PlantProb,
	}, rng)
	if err != nil {
		return result{}, err
	}
	db, err := datagen.ApplyUniformNoise(standard, w.M, w.Alpha, rng)
	if err != nil {
		return result{}, err
	}
	var c compat.Source
	if w.Sparse {
		c, err = bandedMatrix(w.M)
	} else {
		c, err = compat.UniformNoise(w.M, w.Alpha)
	}
	if err != nil {
		return result{}, err
	}

	mine := func(metrics *telemetry.Metrics, runSeed int64, kernel core.Phase2Kernel, shards int, engine core.Phase2Engine) (*core.Result, time.Duration, error) {
		start := time.Now()
		res, err := core.Mine(db, c, core.Config{
			MinMatch:              w.MinMatch,
			Delta:                 w.Delta,
			SampleSize:            w.Sample,
			MaxLen:                w.PatLen,
			MaxGap:                w.MaxGap,
			MaxCandidatesPerLevel: w.MaxCand,
			MemBudget:             w.MemBudget,
			Finalizer:             w.Finalizer,
			Workers:               runtime.NumCPU(),
			Phase3Shards:          shards,
			Phase2Kernel:          kernel,
			Phase2Engine:          engine,
			Rng:                   rand.New(rand.NewSource(runSeed)),
			Metrics:               metrics,
		})
		return res, time.Since(start), err
	}

	r := result{
		Name: w.Name, Sequences: w.N, Alphabet: w.M, Alpha: w.Alpha,
		MinMatch: w.MinMatch, Delta: w.Delta, PatLen: w.PatLen, MaxGap: w.MaxGap,
		Sample: w.Sample, MemBudget: w.MemBudget, Runs: runs,
	}
	var instrumented, plain time.Duration
	var lastRes *core.Result
	var lastSeed int64
	for i := 0; i < runs; i++ {
		// The same per-run seed drives the instrumented and plain runs, so
		// both sequences of runs mine identical samples.
		runSeed := seed + int64(i)
		metrics := &telemetry.Metrics{}
		res, d, err := mine(metrics, runSeed, core.KernelIncremental, 0, core.Phase2Levelwise)
		if err != nil {
			return result{}, err
		}
		instrumented += d
		if i == runs-1 {
			snap := metrics.Snapshot()
			if sr, ok := seqdb.Scanner(db).(seqdb.StatsReporter); ok {
				snap.Retry = sr.ScanStats()
			}
			r.Telemetry = snap
			r.Scans = res.Scans
			r.ProbeScans = snap.ProbeScans
			r.Phase1Ms = float64(res.Phase1Time.Microseconds()) / 1000
			r.Phase2Ms = float64(res.Phase2Time.Microseconds()) / 1000
			r.Phase3Ms = float64(res.Phase3Time.Microseconds()) / 1000
			r.SequencesPerSec = snap.SequencesPerSec
			r.PeakCandidates = snap.PeakCandidates
			r.Frequent = res.Frequent.Len()
			r.Border = res.Border.Len()
			if res.Phase2 != nil {
				r.Phase2LevelMs = res.Phase2.LevelMillis
			}
			lastRes, lastSeed = res, runSeed
		}
		if _, d, err := mine(nil, runSeed, core.KernelIncremental, 0, core.Phase2Levelwise); err != nil {
			return result{}, err
		} else {
			plain += d
		}
	}

	// Mine the last run's sample once more with the naive per-pattern kernel:
	// its Phase 2 wall time is the speedup baseline, and its classifications
	// must agree with the incremental kernel's pattern for pattern.
	naiveRes, _, err := mine(nil, lastSeed, core.KernelNaive, 0, core.Phase2Levelwise)
	if err != nil {
		return result{}, err
	}
	r.Phase2NaiveMs = float64(naiveRes.Phase2Time.Microseconds()) / 1000
	if r.Phase2Ms > 0 {
		r.Phase2SpeedupX = r.Phase2NaiveMs / r.Phase2Ms
	}
	r.LabelsIdentical = sameLabels(lastRes, naiveRes)

	// The engine-comparison cell: re-mine the last run's sample with the
	// depth-first pattern-growth engine. Phase 2 is milliseconds on the quick
	// grid, so both engines are re-timed uninstrumented best-of-3 against the
	// same seed; one extra instrumented growth run collects the DFS node and
	// bound-prune counters reported next to the level-wise engine's resident
	// peak_candidates.
	var growthRes *core.Result
	var lwP2Best, growthP2Best time.Duration
	for rep := 0; rep < 3; rep++ {
		lwRes, _, err := mine(nil, lastSeed, core.KernelIncremental, 0, core.Phase2Levelwise)
		if err != nil {
			return result{}, err
		}
		if rep == 0 || lwRes.Phase2Time < lwP2Best {
			lwP2Best = lwRes.Phase2Time
		}
		res, _, err := mine(nil, lastSeed, core.KernelIncremental, 0, core.Phase2Growth)
		if err != nil {
			return result{}, err
		}
		if rep == 0 || res.Phase2Time < growthP2Best {
			growthP2Best = res.Phase2Time
		}
		growthRes = res
	}
	growthMetrics := &telemetry.Metrics{}
	if _, _, err := mine(growthMetrics, lastSeed, core.KernelIncremental, 0, core.Phase2Growth); err != nil {
		return result{}, err
	}
	growthSnap := growthMetrics.Snapshot()
	r.Phase2LevelwiseMs = float64(lwP2Best.Microseconds()) / 1000
	r.Phase2GrowthMs = float64(growthP2Best.Microseconds()) / 1000
	if growthP2Best > 0 {
		r.GrowthSpeedupX = float64(lwP2Best.Microseconds()) / float64(growthP2Best.Microseconds())
	}
	r.GrowthNodesExpanded = growthSnap.GrowthNodes
	r.GrowthBoundPrunes = growthSnap.GrowthPrunes
	r.GrowthLabelsIdentical = sameLabels(lastRes, growthRes) && sameFrequent(lastRes, growthRes)

	// Re-mine the last run's sample with Phase 3 probes scattered over one
	// shard per CPU (at least two, so the scatter-gather path and its SoA
	// probe kernel are always the thing measured): the sharded run must mine
	// the same frequent set with the same logical scan budget, only faster
	// on the wall clock. Phase 3 is a few ms on the quick grid, so both
	// sides are measured best-of-3 against the same seed to beat timer
	// noise; the single-pass baseline is re-timed the same way rather than
	// reusing the instrumented run's one-shot Phase3Ms.
	r.Phase3Shards = max(2, runtime.NumCPU())
	var shardRes *core.Result
	var seqBest, shardBest time.Duration
	for rep := 0; rep < 3; rep++ {
		seqRes, _, err := mine(nil, lastSeed, core.KernelIncremental, 0, core.Phase2Levelwise)
		if err != nil {
			return result{}, err
		}
		if rep == 0 || seqRes.Phase3Time < seqBest {
			seqBest = seqRes.Phase3Time
		}
		res, _, err := mine(nil, lastSeed, core.KernelIncremental, r.Phase3Shards, core.Phase2Levelwise)
		if err != nil {
			return result{}, err
		}
		if rep == 0 || res.Phase3Time < shardBest {
			shardBest = res.Phase3Time
		}
		shardRes = res
	}
	r.Phase3ShardMs = float64(shardBest.Microseconds()) / 1000
	if r.Phase3ShardMs > 0 {
		r.Phase3SpeedupX = float64(seqBest.Microseconds()) / float64(shardBest.Microseconds())
	}
	r.Phase3Identical = sameFrequent(lastRes, shardRes) && lastRes.Scans == shardRes.Scans
	r.NsPerOp = float64(instrumented.Nanoseconds()) / float64(runs)
	r.PlainNsPerOp = float64(plain.Nanoseconds()) / float64(runs)
	if r.PlainNsPerOp > 0 {
		r.TelemetryOverheadPct = 100 * (r.NsPerOp - r.PlainNsPerOp) / r.PlainNsPerOp
	}
	return r, nil
}

// benchServe measures the serving layer on the base workload: n jobs (same
// database, distinct sampling seeds) submitted back to back through the HTTP
// API of an in-process lspserve, mined on the default worker-slot semaphore.
func benchServe(n int, seed int64) (*serveResult, error) {
	w := grid[0] // base
	rng := rand.New(rand.NewSource(seed))
	standard, _, err := datagen.Protein(datagen.ProteinConfig{
		N: w.N, M: w.M, MinLen: w.MinLen, MaxLen: w.MaxLen,
		NumMotifs: w.NumMotifs, MotifLen: w.MotifLen, PlantProb: w.PlantProb,
	}, rng)
	if err != nil {
		return nil, err
	}
	db, err := datagen.ApplyUniformNoise(standard, w.M, w.Alpha, rng)
	if err != nil {
		return nil, err
	}
	c, err := compat.UniformNoise(w.M, w.Alpha)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "lspbench-serve-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	dbPath := filepath.Join(dir, "base.lsq")
	if err := seqdb.WriteFile(dbPath, db); err != nil {
		return nil, err
	}
	matrixPath := filepath.Join(dir, "base.compat")
	mf, err := os.Create(matrixPath)
	if err != nil {
		return nil, err
	}
	if _, err := c.WriteTo(mf); err != nil {
		mf.Close()
		return nil, err
	}
	if err := mf.Close(); err != nil {
		return nil, err
	}

	mgr, err := jobs.NewManager(jobs.Options{
		Dir:      filepath.Join(dir, "data"),
		QueueCap: n, // all jobs must be admissible up front
		Registry: telemetry.NewRegistry(),
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		mgr.Shutdown(ctx)
	}()
	srv := httptest.NewServer((&jobs.Server{Manager: mgr}).Handler())
	defer srv.Close()

	sr := &serveResult{Jobs: n, WorkerSlots: mgr.Counters().WorkerSlots}
	ids := make([]string, n)
	submitMs := make([]float64, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		spec := jobs.Spec{
			DB: dbPath, Matrix: matrixPath,
			MinMatch: w.MinMatch, Delta: w.Delta, MaxLen: w.PatLen,
			MaxGap: w.MaxGap, Sample: w.Sample, MemBudget: w.MemBudget,
			MaxCandidates: w.MaxCand,
			Seed:          seed + int64(i),
		}
		body, err := json.Marshal(spec)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		submitMs[i] = float64(time.Since(t0).Microseconds()) / 1000
		var st jobs.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			resp.Body.Close()
			return nil, err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return nil, fmt.Errorf("job %d: submit status %d", i, resp.StatusCode)
		}
		ids[i] = st.ID
	}

	latencyMs := make([]float64, n)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Minute)
	defer cancel()
	for i, id := range ids {
		st, err := mgr.Wait(ctx, id)
		if err != nil {
			return nil, fmt.Errorf("job %s: %w", id, err)
		}
		if st.State != jobs.StateDone {
			return nil, fmt.Errorf("job %s: state %s (%s)", id, st.State, st.Error)
		}
		latencyMs[i] = float64(st.FinishedMs - st.SubmittedMs)
	}
	wall := time.Since(start)

	sr.WallMs = float64(wall.Microseconds()) / 1000
	sr.JobsPerSec = float64(n) / wall.Seconds()
	sr.SubmitP95Ms = percentile(submitMs, 0.95)
	sr.LatencyP50Ms = percentile(latencyMs, 0.50)
	sr.LatencyP95Ms = percentile(latencyMs, 0.95)
	sr.LatencyMaxMs = percentile(latencyMs, 1)
	return sr, nil
}

// benchStream feeds the base workload into an append-only log in fixed
// batches and measures the incremental follower against mining every growing
// prefix from scratch with the same parameters. Both sides run once — the
// comparison is amortized cost over the batch schedule, not a microbenchmark.
func benchStream(seed int64) (*streamResult, error) {
	// The base recipe at streaming scale: ten times the sequences, so the
	// window is what a follower actually tails — big enough that full window
	// passes (Phase 1 rescans, probe scans) dominate the from-scratch loop,
	// which is exactly the cost the incremental path exists to amortize.
	w := grid[0] // base
	w.N *= 10
	rng := rand.New(rand.NewSource(seed))
	standard, _, err := datagen.Protein(datagen.ProteinConfig{
		N: w.N, M: w.M, MinLen: w.MinLen, MaxLen: w.MaxLen,
		NumMotifs: w.NumMotifs, MotifLen: w.MotifLen, PlantProb: w.PlantProb,
	}, rng)
	if err != nil {
		return nil, err
	}
	noisy, err := datagen.ApplyUniformNoise(standard, w.M, w.Alpha, rng)
	if err != nil {
		return nil, err
	}
	c, err := compat.UniformNoise(w.M, w.Alpha)
	if err != nil {
		return nil, err
	}
	var seqs [][]pattern.Symbol
	if err := noisy.Scan(func(id int, seq []pattern.Symbol) error {
		seqs = append(seqs, seq)
		return nil
	}); err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "lspbench-stream-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	log, err := seqdb.CreateAppend(filepath.Join(dir, "stream.lsa"))
	if err != nil {
		return nil, err
	}
	defer log.Close()

	const batchSize = 200
	warmup := len(seqs) / 2
	batches := (len(seqs) - warmup + batchSize - 1) / batchSize
	cfg := core.StreamConfig{
		Config: core.Config{
			MinMatch:              w.MinMatch,
			Delta:                 w.Delta,
			SampleSize:            w.Sample,
			MaxLen:                w.PatLen,
			MaxGap:                w.MaxGap,
			MaxCandidatesPerLevel: w.MaxCand,
			MemBudget:             w.MemBudget,
			Workers:               runtime.NumCPU(),
		},
		Seed: seed,
	}
	st, err := core.NewStream(log, c, cfg)
	if err != nil {
		return nil, err
	}

	r := &streamResult{Workload: w.Name, WarmupSequences: warmup, Batches: batches, BatchSize: batchSize}
	ctx := context.Background()

	// Warmup: the follower consumes the established prefix in one advance
	// that does not count toward the amortized figures.
	for _, seq := range seqs[:warmup] {
		if _, err := log.Append(seq); err != nil {
			return nil, err
		}
	}
	if _, err := st.Advance(ctx); err != nil {
		return nil, err
	}

	var streamTime time.Duration
	var lastFrequent *pattern.Set
	for lo := warmup; lo < len(seqs); lo += batchSize {
		hi := min(lo+batchSize, len(seqs))
		for _, seq := range seqs[lo:hi] {
			if _, err := log.Append(seq); err != nil {
				return nil, err
			}
		}
		t0 := time.Now()
		res, err := st.Advance(ctx)
		if err != nil {
			return nil, err
		}
		streamTime += time.Since(t0)
		if !res.Remined {
			r.ReminesSkipped++
		}
		r.ReprobesAvoided += int64(res.ReprobesAvoided)
		r.StreamScans += int64(res.Scans)
		if res.Phase3 != nil {
			r.StreamProbed += int64(res.Phase3.Probed - res.ReprobesAvoided)
		}
		lastFrequent = res.Frequent
	}

	// The from-scratch loop: one full three-phase mine per prefix, same
	// parameters, a fresh Rng per batch (the follower's reservoir draws are
	// stateless; the batch miner's sampling needs an explicit source).
	var scratchTime time.Duration
	var lastScratch *core.Result
	for lo := warmup; lo < len(seqs); lo += batchSize {
		hi := min(lo+batchSize, len(seqs))
		prefix := seqdb.NewMemDB(seqs[:hi])
		t0 := time.Now()
		res, err := core.Mine(prefix, c, core.Config{
			MinMatch:              w.MinMatch,
			Delta:                 w.Delta,
			SampleSize:            w.Sample,
			MaxLen:                w.PatLen,
			MaxGap:                w.MaxGap,
			MaxCandidatesPerLevel: w.MaxCand,
			MemBudget:             w.MemBudget,
			Finalizer:             w.Finalizer,
			Workers:               runtime.NumCPU(),
			Rng:                   rand.New(rand.NewSource(seed)),
		})
		if err != nil {
			return nil, err
		}
		scratchTime += time.Since(t0)
		r.ScratchScans += int64(res.Scans)
		if res.Phase3 != nil {
			r.ScratchProbed += int64(res.Phase3.Probed)
		}
		lastScratch = res
	}

	r.StreamMsPerBatch = float64(streamTime.Microseconds()) / 1000 / float64(batches)
	r.ScratchMsPerBatch = float64(scratchTime.Microseconds()) / 1000 / float64(batches)
	if streamTime > 0 {
		r.SpeedupX = float64(scratchTime.Microseconds()) / float64(streamTime.Microseconds())
	}
	r.FewerReprobes = r.StreamProbed < r.ScratchProbed
	if lastFrequent != nil && lastScratch != nil && lastFrequent.Len() == lastScratch.Frequent.Len() {
		r.FinalSetsAgree = true
		lastFrequent.ForEach(func(p pattern.Pattern) bool {
			if !lastScratch.Frequent.Contains(p) {
				r.FinalSetsAgree = false
				return false
			}
			return true
		})
	}
	return r, nil
}

// percentile returns the nearest-rank p-quantile of xs (p in (0,1]).
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// bandedMatrix is the sparse-band compatibility model: each observed symbol
// is explained by itself (0.9) and its ring neighbors (0.06 / 0.04), so all
// but three cells of every column are zero and window survival collapses
// after a couple of positions.
func bandedMatrix(m int) (compat.Source, error) {
	cells := make([]compat.Cell, 0, 3*m)
	for o := 0; o < m; o++ {
		cells = append(cells,
			compat.Cell{True: pattern.Symbol(o), Observed: pattern.Symbol(o), P: 0.9},
			compat.Cell{True: pattern.Symbol((o + 1) % m), Observed: pattern.Symbol(o), P: 0.06},
			compat.Cell{True: pattern.Symbol((o + m - 1) % m), Observed: pattern.Symbol(o), P: 0.04},
		)
	}
	return compat.NewSparse(m, cells)
}

// sameLabels reports whether two runs' Phase 2 results evaluated the same
// candidates and assigned every one the same classification.
func sameLabels(a, b *core.Result) bool {
	if a == nil || b == nil || a.Phase2 == nil || b.Phase2 == nil {
		return false
	}
	if len(a.Phase2.Labels) != len(b.Phase2.Labels) {
		return false
	}
	for k, la := range a.Phase2.Labels {
		lb, ok := b.Phase2.Labels[k]
		if !ok || la != lb {
			return false
		}
	}
	return true
}

// sameFrequent reports whether two runs mined exactly the same frequent set.
func sameFrequent(a, b *core.Result) bool {
	if a == nil || b == nil || a.Frequent.Len() != b.Frequent.Len() {
		return false
	}
	same := true
	a.Frequent.ForEach(func(p pattern.Pattern) bool {
		if !b.Frequent.Contains(p) {
			same = false
			return false
		}
		return true
	})
	return same
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lspbench:", err)
	os.Exit(1)
}
