// Command lspbench drives the three-phase miner over a §6-style grid of
// synthetic workloads (internal/datagen) and emits a machine-readable
// benchmark report, BENCH_mine.json. It is the repo's perf baseline: run it
// before and after a change to see where the scans, candidates, and wall
// time went.
//
// Usage:
//
//	lspbench [-quick] [-runs 3] [-seed 1] [-out BENCH_mine.json]
//
// Each workload is mined -runs times with telemetry enabled (reported
// timings are the mean), then -runs times with telemetry disabled to
// measure the collection overhead. -quick restricts the grid to the two
// smallest workloads and two runs each — the CI configuration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/seqdb"
	"repro/internal/telemetry"
)

// workload is one cell of the benchmark grid: a standard database recipe, a
// noise level, and the mining parameters applied to the noisy copy.
type workload struct {
	Name string `json:"name"`
	// quick marks the workloads kept by -quick.
	quick bool

	// Generation.
	N              int     // sequences
	MinLen, MaxLen int     // sequence length range
	M              int     // alphabet size
	NumMotifs      int     // planted motifs
	MotifLen       int     // motif length
	PlantProb      float64 // per-sequence plant probability
	Alpha          float64 // uniform noise rate

	// Mining.
	MinMatch  float64
	Delta     float64
	PatLen    int // core.Config.MaxLen
	MaxGap    int
	Sample    int
	MemBudget int
	MaxCand   int
	Finalizer core.Finalizer
}

// grid is the paper-shaped parameter sweep: a base protein-like workload
// (Figure 14's neighborhood, scaled to seconds), a longer-pattern variant
// exercising gaps, a noisier variant that swells the ambiguous region, and a
// wide-alphabet variant stressing candidate generation.
// Delta is set to 1e-2 throughout (vs the paper's 1e-4): with the bench's
// small samples the paper's confidence would push the Chernoff band so wide
// that most of the lattice lands in the ambiguous region and the run spends
// minutes probing — the right trade-off for mining, the wrong one for a
// benchmark that must finish in seconds.
var grid = []workload{
	{
		Name: "base", quick: true,
		N: 400, MinLen: 24, MaxLen: 40, M: 20,
		NumMotifs: 3, MotifLen: 5, PlantProb: 0.40, Alpha: 0.05,
		MinMatch: 0.20, Delta: 1e-2, PatLen: 6, MaxGap: 0, Sample: 200,
		MemBudget: 500, MaxCand: 50000, Finalizer: core.BorderCollapsing,
	},
	{
		Name: "noisy", quick: true,
		N: 400, MinLen: 24, MaxLen: 40, M: 20,
		NumMotifs: 3, MotifLen: 5, PlantProb: 0.50, Alpha: 0.15,
		MinMatch: 0.18, Delta: 1e-2, PatLen: 6, MaxGap: 0, Sample: 200,
		MemBudget: 500, MaxCand: 50000, Finalizer: core.BorderCollapsing,
	},
	{
		Name: "long-gapped",
		N:    2000, MinLen: 30, MaxLen: 50, M: 20,
		NumMotifs: 2, MotifLen: 8, PlantProb: 0.50, Alpha: 0.05,
		MinMatch: 0.25, Delta: 1e-2, PatLen: 8, MaxGap: 1, Sample: 500,
		MemBudget: 1000, MaxCand: 50000, Finalizer: core.BorderCollapsing,
	},
	{
		Name: "wide-alphabet",
		N:    300, MinLen: 40, MaxLen: 40, M: 50,
		NumMotifs: 2, MotifLen: 5, PlantProb: 0.50, Alpha: 0.04,
		MinMatch: 0.20, Delta: 1e-2, PatLen: 5, MaxGap: 0, Sample: 250,
		MemBudget: 1000, MaxCand: 50000, Finalizer: core.BorderCollapsing,
	},
}

// result is one workload's measured outcome.
type result struct {
	Name      string  `json:"name"`
	Sequences int     `json:"sequences"`
	Alphabet  int     `json:"alphabet"`
	Alpha     float64 `json:"alpha"`
	MinMatch  float64 `json:"min_match"`
	Delta     float64 `json:"delta"`
	PatLen    int     `json:"max_len"`
	MaxGap    int     `json:"max_gap"`
	Sample    int     `json:"sample"`
	MemBudget int     `json:"mem_budget"`

	Runs         int     `json:"runs"`
	NsPerOp      float64 `json:"ns_per_op"`
	PlainNsPerOp float64 `json:"plain_ns_per_op"`
	// TelemetryOverheadPct compares the instrumented and uninstrumented
	// means; small negatives are run-to-run noise.
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`

	Scans           int     `json:"scans"`
	ProbeScans      int64   `json:"probe_scans"`
	Phase1Ms        float64 `json:"phase1_ms"`
	Phase2Ms        float64 `json:"phase2_ms"`
	Phase3Ms        float64 `json:"phase3_ms"`
	SequencesPerSec float64 `json:"sequences_per_sec"`
	PeakCandidates  int64   `json:"peak_candidates"`
	Frequent        int     `json:"frequent"`
	Border          int     `json:"border"`

	// Telemetry is the last instrumented run's full snapshot.
	Telemetry telemetry.Snapshot `json:"telemetry"`
}

// report is the BENCH_mine.json document.
type report struct {
	Schema    string   `json:"schema"`
	Go        string   `json:"go"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Quick     bool     `json:"quick"`
	Seed      int64    `json:"seed"`
	Workloads []result `json:"workloads"`
}

func main() {
	quick := flag.Bool("quick", false, "run only the small workloads, two runs each (the CI configuration)")
	runs := flag.Int("runs", 3, "mining runs per workload (reported timings are the mean)")
	seed := flag.Int64("seed", 1, "random seed for generation and sampling")
	out := flag.String("out", "BENCH_mine.json", "output file (- for stdout)")
	flag.Parse()

	if *runs < 1 {
		fatal(fmt.Errorf("runs %d < 1", *runs))
	}
	if *quick && *runs > 2 {
		*runs = 2
	}

	rep := report{
		Schema: "lspbench/v1",
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Quick:  *quick,
		Seed:   *seed,
	}
	for _, w := range grid {
		if *quick && !w.quick {
			continue
		}
		fmt.Fprintf(os.Stderr, "lspbench: %s (%d sequences, m=%d, %d runs)\n", w.Name, w.N, w.M, *runs)
		r, err := bench(w, *runs, *seed)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", w.Name, err))
		}
		rep.Workloads = append(rep.Workloads, r)
	}

	var f *os.File
	if *out == "-" {
		f = os.Stdout
	} else {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "lspbench: wrote %s\n", *out)
	}
}

// bench generates the workload's noisy database once, then mines it
// runs times with telemetry and runs times without.
func bench(w workload, runs int, seed int64) (result, error) {
	rng := rand.New(rand.NewSource(seed))
	standard, _, err := datagen.Protein(datagen.ProteinConfig{
		N: w.N, M: w.M, MinLen: w.MinLen, MaxLen: w.MaxLen,
		NumMotifs: w.NumMotifs, MotifLen: w.MotifLen, PlantProb: w.PlantProb,
	}, rng)
	if err != nil {
		return result{}, err
	}
	db, err := datagen.ApplyUniformNoise(standard, w.M, w.Alpha, rng)
	if err != nil {
		return result{}, err
	}
	c, err := compat.UniformNoise(w.M, w.Alpha)
	if err != nil {
		return result{}, err
	}

	mine := func(metrics *telemetry.Metrics, runSeed int64) (*core.Result, time.Duration, error) {
		start := time.Now()
		res, err := core.Mine(db, c, core.Config{
			MinMatch:              w.MinMatch,
			Delta:                 w.Delta,
			SampleSize:            w.Sample,
			MaxLen:                w.PatLen,
			MaxGap:                w.MaxGap,
			MaxCandidatesPerLevel: w.MaxCand,
			MemBudget:             w.MemBudget,
			Finalizer:             w.Finalizer,
			Rng:                   rand.New(rand.NewSource(runSeed)),
			Metrics:               metrics,
		})
		return res, time.Since(start), err
	}

	r := result{
		Name: w.Name, Sequences: w.N, Alphabet: w.M, Alpha: w.Alpha,
		MinMatch: w.MinMatch, Delta: w.Delta, PatLen: w.PatLen, MaxGap: w.MaxGap,
		Sample: w.Sample, MemBudget: w.MemBudget, Runs: runs,
	}
	var instrumented, plain time.Duration
	for i := 0; i < runs; i++ {
		// The same per-run seed drives the instrumented and plain runs, so
		// both sequences of runs mine identical samples.
		runSeed := seed + int64(i)
		metrics := &telemetry.Metrics{}
		res, d, err := mine(metrics, runSeed)
		if err != nil {
			return result{}, err
		}
		instrumented += d
		if i == runs-1 {
			snap := metrics.Snapshot()
			if sr, ok := seqdb.Scanner(db).(seqdb.StatsReporter); ok {
				snap.Retry = sr.ScanStats()
			}
			r.Telemetry = snap
			r.Scans = res.Scans
			r.ProbeScans = snap.ProbeScans
			r.Phase1Ms = float64(res.Phase1Time.Microseconds()) / 1000
			r.Phase2Ms = float64(res.Phase2Time.Microseconds()) / 1000
			r.Phase3Ms = float64(res.Phase3Time.Microseconds()) / 1000
			r.SequencesPerSec = snap.SequencesPerSec
			r.PeakCandidates = snap.PeakCandidates
			r.Frequent = res.Frequent.Len()
			r.Border = res.Border.Len()
		}
		if _, d, err := mine(nil, runSeed); err != nil {
			return result{}, err
		} else {
			plain += d
		}
	}
	r.NsPerOp = float64(instrumented.Nanoseconds()) / float64(runs)
	r.PlainNsPerOp = float64(plain.Nanoseconds()) / float64(runs)
	if r.PlainNsPerOp > 0 {
		r.TelemetryOverheadPct = 100 * (r.NsPerOp - r.PlainNsPerOp) / r.PlainNsPerOp
	}
	return r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lspbench:", err)
	os.Exit(1)
}
