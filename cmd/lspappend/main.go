// Command lspappend feeds an append-only sequence log (.lsa): it copies
// sequences from a source database into the log — creating the log when
// absent — and optionally applies sliding-window expiry afterwards. It is
// the writer-side companion of lspmine -follow and of streaming sessions in
// general: ownership of the log's mutations (appends, window expiry) stays
// with one writer process while any number of followers tail it read-only.
//
// Usage:
//
//	lspappend -log stream.lsa -from db.lsq \
//	          [-start 0] [-count -1] [-window 0] [-sync] [-v]
//
// -start/-count select a slice of the source, so a script can replay a
// database into the log batch by batch (the replay-vs-batch differential
// tests and scripts/crash_recovery.sh stream mode drive it exactly that
// way). -window N expires all but the newest N live sequences after the
// append — the head moves through the log's sidecar, never rewriting the
// data file, and followers pick it up on their next advance. -sync fsyncs
// before exit for durability across power loss, not just process crash.
//
// Exit codes: 0 appended, 1 error, 2 usage.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/pattern"
	"repro/internal/seqdb"
)

func main() {
	logPath := flag.String("log", "", "append-only log to write (.lsa; created when absent)")
	fromPath := flag.String("from", "", "source database (.lsq, .lsq.gz, .lsa or a comma-separated shard set)")
	start := flag.Int("start", 0, "skip this many leading source sequences")
	count := flag.Int("count", -1, "append at most this many sequences (-1 = all remaining)")
	window := flag.Int("window", 0, "after appending, expire all but the newest N sequences (0 = keep everything)")
	sync := flag.Bool("sync", false, "fsync the log before exiting")
	verbose := flag.Bool("v", false, "print per-append progress")
	flag.Parse()

	if *logPath == "" || *fromPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *start < 0 {
		fatal(fmt.Errorf("-start must be non-negative, got %d", *start))
	}
	var src seqdb.Scanner
	var err error
	if paths := seqdb.ShardSetPaths(*fromPath); len(paths) > 1 {
		src, err = seqdb.OpenShardSet(paths)
	} else {
		src, err = seqdb.OpenAuto(*fromPath)
	}
	if err != nil {
		fatal(err)
	}
	log, err := seqdb.OpenAppend(*logPath)
	if err != nil {
		fatal(err)
	}

	appended := 0
	err = src.Scan(func(id int, seq []pattern.Symbol) error {
		if id < *start || (*count >= 0 && appended >= *count) {
			return nil
		}
		abs, err := log.Append(seq)
		if err != nil {
			return err
		}
		appended++
		if *verbose {
			fmt.Fprintf(os.Stderr, "lspappend: source %d -> log %d (%d symbols)\n", id, abs, len(seq))
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	if *window > 0 {
		if total := log.Total(); total-log.Start() > *window {
			if err := log.ExpireBefore(total - *window); err != nil {
				fatal(err)
			}
		}
	}
	if *sync {
		if err := log.Sync(); err != nil {
			fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("lspappend: appended %d sequences to %s (total %d, live %d)\n",
		appended, *logPath, log.Total(), log.Len())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lspappend:", err)
	os.Exit(1)
}
