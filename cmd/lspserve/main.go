// Command lspserve is the mining daemon: a crash-survivable HTTP/JSON job
// server in front of the three-phase pipeline, with bounded queues, tenant
// isolation, and admission control.
//
// Usage:
//
//	lspserve -data /var/lib/lspserve [-addr 127.0.0.1:8427] \
//	         [-worker-slots N] [-max-workers-per-job N] [-queue-cap 64] \
//	         [-tenant-rate 0] [-tenant-burst 1] [-tenant-max-active 0] \
//	         [-phase3-timeout 0] [-phase3-shards 0] \
//	         [-auth-token T] [-retain-jobs 0] [-retry-base 10ms] \
//	         [-retry-cap 1s] [-serve-shards db.lsq] [-v]
//
// API (JSON unless noted):
//
//	POST   /v1/jobs             submit a job spec    → 202 + status
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result result document of a done job
//	GET    /v1/jobs/{id}/events NDJSON stream of status snapshots
//	DELETE /v1/jobs/{id}        cancel
//	POST   /v1/shards/probe     probe-batch RPC (with -serve-shards)
//	POST   /v1/append           append sequences (with -append-log)
//	GET    /healthz             liveness (503 while draining)
//	GET    /metrics             Prometheus text
//
// -auth-token requires "Authorization: Bearer <token>" on every /v1 route
// (health and metrics stay open); rejections carry a machine-readable
// reason, and a request whose X-LSP-Tenant header contradicts the spec's
// tenant is refused 403. -retain-jobs compacts the journal at startup,
// keeping only the newest N terminal jobs. -serve-shards turns the node
// into a distributed Phase 3 shard worker: it answers probe-batch RPCs
// over the named database (comma-separated paths open a shard set) beside
// the jobs API, for lspmine -phase3-nodes coordinators.
//
// -append-log makes the server the ingest side of a streaming deployment:
// it owns the write handle of the named append-only log (.lsa, created when
// absent) and serves POST /v1/append — clients feed sequences in, with
// optional expect_total idempotency, and followers (lspmine -follow)
// tail the same file read-only. -append-window N expires all but the newest
// N live sequences after each accepted batch; -append-sync fsyncs per batch.
//
// Every accepted job is journaled crash-atomically under -data before the
// submit response is sent, running jobs checkpoint their mining progress
// there, and a restarted server replays the journal: finished jobs stay
// queryable, queued jobs re-enter the queue, and jobs a crash interrupted
// mid-run resume from their checkpoints to bit-identical results. Admission
// control sheds overload (full queue, tenant over its rate or concurrency
// limit) with 429 + Retry-After instead of queuing without bound; a job
// whose Phase 3 budget expires completes with the degraded result rather
// than failing.
//
// SIGINT/SIGTERM drain gracefully: submissions stop (healthz turns 503), in-
// flight jobs flush a final checkpoint and stay journaled as running, and
// the next start finishes them. The listen address is printed to stdout once
// the socket is open ("lspserve listening on ..."), so scripts can use
// -addr 127.0.0.1:0 and scrape the chosen port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/seqdb"
	"repro/internal/shardrpc"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8427", "listen address (host:port; port 0 picks a free port, printed on stdout)")
	dataDir := flag.String("data", "", "journal directory: job records, results and checkpoints (required)")
	workerSlots := flag.Int("worker-slots", runtime.GOMAXPROCS(0), "global worker-slot semaphore: total mining parallelism across all jobs")
	maxPerJob := flag.Int("max-workers-per-job", 0, "cap one job's worker-slot grant (0 = half the slots, min 1)")
	queueCap := flag.Int("queue-cap", 64, "maximum queued (accepted, not yet running) jobs; beyond it submissions get 429")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant submission rate limit in jobs/second (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 1, "per-tenant submission burst (token bucket capacity)")
	tenantMaxActive := flag.Int("tenant-max-active", 0, "per-tenant cap on queued+running jobs (0 = unlimited)")
	phase3Timeout := flag.Duration("phase3-timeout", 0, "default Phase 3 budget for jobs that set none; expiry degrades the job gracefully (0 = unlimited)")
	phase3Shards := flag.Int("phase3-shards", 0, "default Phase 3 probe-scan shard count for jobs that set none (0/1 = single-pass probes; results identical for every count)")
	authToken := flag.String("auth-token", "", "require this bearer token on every /v1 route (empty = open; healthz and metrics are always open)")
	retainJobs := flag.Int("retain-jobs", 0, "compact the journal at startup, keeping only the newest N terminal jobs (0 = keep everything)")
	retryBase := flag.Duration("retry-base", 0, "base delay of the retrying scanner's full-jitter backoff for jobs that set none (0 = 10ms)")
	retryCap := flag.Duration("retry-cap", 0, "delay cap of the retrying scanner's backoff for jobs that set none (0 = 1s)")
	serveShards := flag.String("serve-shards", "", "serve Phase 3 probe-batch RPCs over this database (comma-separated paths open a shard set); empty = jobs API only")
	appendLog := flag.String("append-log", "", "own this append-only log (.lsa, created when absent) and serve POST /v1/append into it")
	appendWindow := flag.Int("append-window", 0, "expire all but the newest N live sequences after each accepted append batch (0 = keep everything)")
	appendSync := flag.Bool("append-sync", false, "fsync the append log after each accepted batch")
	streamInterval := flag.Duration("stream-interval", 200*time.Millisecond, "cadence of /events status snapshots")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget before giving up on in-flight jobs")
	verbose := flag.Bool("v", false, "log job lifecycle events")
	flag.Parse()

	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "lspserve: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "lspserve: ", log.LstdFlags)
	opts := jobs.Options{
		Dir:                  *dataDir,
		WorkerSlots:          *workerSlots,
		MaxWorkersPerJob:     *maxPerJob,
		QueueCap:             *queueCap,
		TenantRate:           *tenantRate,
		TenantBurst:          *tenantBurst,
		TenantMaxActive:      *tenantMaxActive,
		DefaultPhase3Timeout: *phase3Timeout,
		DefaultPhase3Shards:  *phase3Shards,
		DefaultRetryBase:     *retryBase,
		DefaultRetryCap:      *retryCap,
		CompactRetain:        *retainJobs,
		Registry:             telemetry.NewRegistry(),
	}
	if *retryBase < 0 || *retryCap < 0 || (*retryBase > 0 && *retryCap > 0 && *retryCap < *retryBase) {
		fmt.Fprintln(os.Stderr, "lspserve: -retry-cap must be >= -retry-base, both non-negative")
		os.Exit(2)
	}
	if *verbose {
		opts.Logf = logger.Printf
	}
	mgr, err := jobs.NewManager(opts)
	if err != nil {
		logger.Fatal(err)
	}
	if c := mgr.Counters(); c.Replayed > 0 || c.Queued > 0 {
		logger.Printf("journal replayed: %d interrupted jobs resuming, %d queued", c.Replayed, c.Queued)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	// Scripts parse this line; keep its shape stable.
	fmt.Printf("lspserve listening on http://%s\n", ln.Addr())

	server := &jobs.Server{Manager: mgr, StreamInterval: *streamInterval, AuthToken: *authToken}
	if *appendLog != "" {
		adb, err := seqdb.OpenAppend(*appendLog)
		if err != nil {
			logger.Fatal(err)
		}
		defer adb.Close()
		server.AppendLog = &jobs.AppendLog{DB: adb, Window: *appendWindow, Sync: *appendSync}
		logger.Printf("serving /v1/append into %s (%d live sequences)", *appendLog, adb.Len())
	}
	handler := server.Handler()
	if *serveShards != "" {
		shards := &shardrpc.Server{
			Open:      func() (seqdb.Scanner, error) { return openShardDB(*serveShards) },
			AuthToken: *authToken,
		}
		if *verbose {
			shards.Logf = logger.Printf
		}
		// Probe open once up front so a bad path fails at startup, not on
		// the coordinator's first scatter.
		if db, err := openShardDB(*serveShards); err != nil {
			logger.Fatal(err)
		} else {
			closeDB(db)
		}
		mux := http.NewServeMux()
		mux.Handle("/v1/shards/", shards.Handler())
		mux.Handle("/", handler)
		handler = mux
		logger.Printf("serving Phase 3 shard probes over %s", *serveShards)
	}
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Printf("%s: draining (in-flight jobs checkpoint and resume on next start)", sig)
	case err := <-errc:
		logger.Fatal(err)
	}

	// Drain: stop admissions and interrupt jobs first (they flush final
	// checkpoints and stay journaled "running"), then close the listener.
	// A second signal abandons the drain.
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := mgr.Shutdown(ctx); err != nil {
			logger.Print(err)
		}
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Print(err)
		}
	}()
	select {
	case <-done:
		logger.Print("drained; journal is ready for the next start")
	case <-sigc:
		logger.Print("second signal — exiting immediately")
		os.Exit(130)
	}
}

// openShardDB opens the shard-worker database the way lspmine opens -db:
// comma-separated paths form a multi-file shard set.
func openShardDB(path string) (seqdb.Scanner, error) {
	if paths := seqdb.ShardSetPaths(path); len(paths) > 1 {
		return seqdb.OpenShardSet(paths)
	}
	return seqdb.OpenAuto(path)
}

func closeDB(db seqdb.Scanner) {
	if c, ok := db.(interface{ Close() error }); ok {
		c.Close()
	}
}
