// Command lspgen generates synthetic sequence databases and compatibility
// matrices in the formats the miner consumes: a standard (noise-free)
// database with planted motifs, a noisy test database derived from it, and
// the matching compatibility matrix.
//
// Usage:
//
//	lspgen -out test.lsq -matrix compat.txt [-std standard.lsq] \
//	       [-n 1000] [-m 20] [-minlen 20] [-maxlen 40] \
//	       [-motifs 3] [-motif-len 5] [-plant 0.3] [-alpha 0.2] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/compat"
	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

func main() {
	out := flag.String("out", "test.lsq", "output path for the (noisy) test database")
	stdOut := flag.String("std", "", "optional output path for the standard (noise-free) database")
	matrixOut := flag.String("matrix", "compat.txt", "output path for the compatibility matrix")
	n := flag.Int("n", 1000, "number of sequences")
	m := flag.Int("m", 20, "alphabet size")
	minLen := flag.Int("minlen", 20, "minimum sequence length")
	maxLen := flag.Int("maxlen", 40, "maximum sequence length")
	numMotifs := flag.Int("motifs", 3, "number of planted motifs")
	motifLen := flag.Int("motif-len", 5, "motif length")
	plant := flag.Float64("plant", 0.3, "per-sequence probability of carrying each motif")
	alpha := flag.Float64("alpha", 0.2, "uniform substitution noise level")
	seed := flag.Int64("seed", 1, "random seed")
	gz := flag.Bool("gzip", false, "write databases in the gzip-compressed format")
	shards := flag.Int("shards", 0, "write the test database as this many block-aligned shard files (<out-minus-.lsq>.shard-NNN-of-NNN.lsq) instead of one file, for lspmine's scatter-gather Phase 3")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	std, motifs, err := datagen.Protein(datagen.ProteinConfig{
		N: *n, M: *m, MinLen: *minLen, MaxLen: *maxLen,
		NumMotifs: *numMotifs, MotifLen: *motifLen, PlantProb: *plant,
	}, rng)
	if err != nil {
		fatal(err)
	}
	test, err := datagen.ApplyUniformNoise(std, *m, *alpha, rng)
	if err != nil {
		fatal(err)
	}
	c, err := compat.UniformNoise(*m, *alpha)
	if err != nil {
		fatal(err)
	}

	writeDB := seqdb.WriteFile
	if *gz {
		writeDB = seqdb.WriteGzipFile
	}
	var shardPaths []string
	if *shards > 1 {
		if *gz {
			fatal(fmt.Errorf("-shards and -gzip are mutually exclusive (shard files are plain LSQ2)"))
		}
		base := strings.TrimSuffix(*out, ".lsq")
		shardPaths, err = seqdb.WriteShardFiles(test, base, *shards)
		if err != nil {
			fatal(err)
		}
	} else if err := writeDB(*out, test); err != nil {
		fatal(err)
	}
	if *stdOut != "" {
		if err := writeDB(*stdOut, std); err != nil {
			fatal(err)
		}
	}
	f, err := os.Create(*matrixOut)
	if err != nil {
		fatal(err)
	}
	if _, err := c.WriteTo(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	a := pattern.GenericAlphabet(*m)
	if len(shardPaths) > 0 {
		fmt.Printf("wrote %d sequences to %d shard files %s .. %s (alpha=%g, matrix in %s)\n",
			test.Len(), len(shardPaths), shardPaths[0], shardPaths[len(shardPaths)-1], *alpha, *matrixOut)
		fmt.Printf("mine them with: lspmine -db %s\n", strings.Join(shardPaths, ","))
	} else {
		fmt.Printf("wrote %d sequences to %s (alpha=%g, matrix in %s)\n", test.Len(), *out, *alpha, *matrixOut)
	}
	fmt.Println("planted motifs:")
	for _, motif := range motifs {
		fmt.Println("  ", a.Format(motif))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lspgen:", err)
	os.Exit(1)
}
