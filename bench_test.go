// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5) at the small workload scale, plus micro-benchmarks for the
// implementation's design choices (DESIGN.md's ablation list). Run with
//
//	go test -bench=. -benchmem
//
// Figure benchmarks report their headline series through b.ReportMetric so
// the shapes are visible in benchmark output; cmd/lspexp prints the full
// tables.
package lsp

import (
	"math/rand"
	"testing"

	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/match"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// ---- Figure and table reproductions ----

func BenchmarkFig7NoiseRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(experiments.Fig7Config{Scale: experiments.Small, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.SupportCompleteness, "support_comp@0.6")
		b.ReportMetric(last.MatchCompleteness, "match_comp@0.6")
	}
}

func BenchmarkFig7PatternLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(experiments.Fig7Config{Scale: experiments.Small, Seed: 1, Alphas: []float64{0.6}, LengthAlpha: 0.6})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Levels) == 0 {
			b.Fatal("no level breakdown")
		}
		deepest := res.Levels[len(res.Levels)-1]
		b.ReportMetric(deepest.SupportCompleteness, "support_comp@deepest_k")
		b.ReportMetric(deepest.MatchCompleteness, "match_comp@deepest_k")
	}
}

func BenchmarkTableBlosum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Blosum(experiments.BlosumConfig{Scale: experiments.Small, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MatchCompleteness, "match_comp")
		b.ReportMetric(res.SupportCompleteness, "support_comp")
	}
}

func BenchmarkFig8MatrixError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(experiments.Fig8Config{Scale: experiments.Small, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Completeness, "match_comp@14%err")
	}
}

func BenchmarkFig9CandidatesPerLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(experiments.Fig9Config{Scale: experiments.Small, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		deepest := res.Rows[len(res.Rows)-1]
		b.ReportMetric(float64(deepest.MatchCandidates), "match_candidates@deepest")
		b.ReportMetric(float64(deepest.SupportCandidates), "support_candidates@deepest")
	}
}

func BenchmarkFig10SampleSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(experiments.Fig10Config{Scale: experiments.Small, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
		b.ReportMetric(float64(first.Ambiguous[0]), "ambiguous@min_n")
		b.ReportMetric(float64(last.Ambiguous[0]), "ambiguous@max_n")
	}
}

func BenchmarkFig11SpreadR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(experiments.Fig11Config{Scale: experiments.Small, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ratios[0].Ratio, "ambiguous_ratio_restricted_over_R1")
	}
}

func BenchmarkFig12Confidence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(experiments.Fig12Config{Scale: experiments.Small, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Rows[0].Ambiguous), "ambiguous@conf0.9")
		b.ReportMetric(float64(res.Rows[len(res.Rows)-1].Ambiguous), "ambiguous@conf0.9999")
	}
}

func BenchmarkFig13MissedPatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(experiments.Fig13Config{Scale: experiments.Small, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		fr := res.Histogram.Fractions()
		b.ReportMetric(fr[0], "missed_within_5pct")
		b.ReportMetric(float64(res.Missed), "missed_total")
	}
}

func BenchmarkFig14Performance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(experiments.Fig14Config{Scale: experiments.Small, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(float64(last.CollapseScans), "collapse_scans@low_thresh")
		b.ReportMetric(float64(last.LevelWiseScans), "levelwise_scans@low_thresh")
		b.ReportMetric(float64(last.MaxMinerScans), "maxminer_scans@low_thresh")
	}
}

func BenchmarkFig15Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15(experiments.Fig15Config{Scale: experiments.Small, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Rows[0].Scans), "scans@min_m")
		b.ReportMetric(float64(res.Rows[len(res.Rows)-1].Scans), "scans@max_m")
	}
}

// ---- Micro-benchmarks (design-choice ablations) ----

func benchWorkload(b *testing.B) (*seqdb.MemDB, *compat.Matrix) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	db, _, err := datagen.Protein(datagen.ProteinConfig{
		N: 200, M: 20, MinLen: 50, MaxLen: 100,
		NumMotifs: 2, MotifLen: 6, PlantProb: 0.4,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	c, err := compat.UniformNoise(20, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	return db, c
}

func BenchmarkMatchSequence(b *testing.B) {
	db, c := benchWorkload(b)
	p := pattern.MustNew(0, 1, pattern.Eternal, 3, 4)
	seq := db.Seq(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		match.Sequence(c, p, seq)
	}
}

func BenchmarkCompiledMatch(b *testing.B) {
	db, c := benchWorkload(b)
	p := pattern.MustNew(0, 1, pattern.Eternal, 3, 4)
	cp, err := match.Compile(c, p)
	if err != nil {
		b.Fatal(err)
	}
	seq := db.Seq(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp.Match(seq)
	}
}

func BenchmarkSymbolScanOptimized(b *testing.B) {
	db, c := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := match.Symbols(db, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymbolScanNaive(b *testing.B) {
	db, c := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := match.SymbolsNaive(db, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparseMatrixLookup(b *testing.B) {
	_, dense := benchWorkload(b)
	sparse := dense.Sparse()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.C(pattern.Symbol(i%20), pattern.Symbol((i*7)%20))
	}
}

func BenchmarkDenseMatrixLookup(b *testing.B) {
	_, dense := benchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dense.C(pattern.Symbol(i%20), pattern.Symbol((i*7)%20))
	}
}

func BenchmarkHalfwayGeneration(b *testing.B) {
	lower := pattern.MustNew(0)
	upper := pattern.MustNew(0, 1, 2, 3, 4, 5, 6, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pattern.Halfway(lower, upper, 0)
	}
}

func BenchmarkDiskScan(b *testing.B) {
	db, _ := benchWorkload(b)
	path := b.TempDir() + "/bench.lsq"
	if err := seqdb.WriteFile(path, db); err != nil {
		b.Fatal(err)
	}
	disk, err := seqdb.OpenFile(path)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		err := disk.Scan(func(id int, seq []pattern.Symbol) error {
			total += len(seq)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLevelSweep(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	db, _, err := datagen.Protein(datagen.ProteinConfig{
		N: 200, M: 20, MinLen: 20, MaxLen: 30,
		NumMotifs: 2, MotifLen: 4, PlantProb: 0.4,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	// Sparse concentrated matrix for the sweep.
	sub := make([][]float64, 20)
	for i := range sub {
		sub[i] = make([]float64, 20)
		sub[i][i] = 0.8
		sub[i][i^1] += 0.2
	}
	c, err := compat.FromChannel(sub, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := match.LevelSweep(db, c, 3, 4, 0, 0.0001); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelProbeScan(b *testing.B) {
	db, c := benchWorkload(b)
	ps := benchPatterns(200)
	valuer := miner.ParallelMatchDBValuer(db, c, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := valuer(ps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialProbeScan(b *testing.B) {
	db, c := benchWorkload(b)
	ps := benchPatterns(200)
	valuer := miner.MatchDBValuer(db, c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := valuer(ps); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPatterns builds n random 3-patterns over 20 symbols.
func benchPatterns(n int) []pattern.Pattern {
	rng := rand.New(rand.NewSource(9))
	ps := make([]pattern.Pattern, n)
	for i := range ps {
		ps[i] = pattern.Pattern{
			pattern.Symbol(rng.Intn(20)),
			pattern.Symbol(rng.Intn(20)),
			pattern.Symbol(rng.Intn(20)),
		}
	}
	return ps
}

func BenchmarkGzipScan(b *testing.B) {
	db, _ := benchWorkload(b)
	path := b.TempDir() + "/bench.lsqz"
	if err := seqdb.WriteGzipFile(path, db); err != nil {
		b.Fatal(err)
	}
	disk, err := seqdb.OpenGzipFile(path)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		err := disk.Scan(func(id int, seq []pattern.Symbol) error {
			total += len(seq)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImplicitCollapse compares the explicit and paper-verbatim
// implicit border collapsing on a matched space (MaxGap = MaxLen-2, where
// the two lattices coincide).
func BenchmarkImplicitCollapse(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	db, _, err := datagen.Protein(datagen.ProteinConfig{
		N: 150, M: 6, MinLen: 10, MaxLen: 14,
		Motifs:    []pattern.Pattern{pattern.MustNew(0, 1, 2)},
		PlantProb: 0.6,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	c, err := compat.UniformNoise(6, 0.15)
	if err != nil {
		b.Fatal(err)
	}
	run := func(fin core.Finalizer) *core.Result {
		res, err := core.Mine(db, c, core.Config{
			MinMatch: 0.12, SampleSize: 25, MaxLen: 4, MaxGap: 2,
			MemBudget: 20, Finalizer: fin,
			Rng: rand.New(rand.NewSource(34)),
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		explicit := run(core.BorderCollapsing)
		implicit := run(core.BorderCollapsingImplicit)
		b.ReportMetric(float64(explicit.Scans), "explicit_scans")
		b.ReportMetric(float64(implicit.Scans), "implicit_scans")
	}
}
