// Quickstart walks through the paper's own worked example: the Figure 4(a)
// sequence database, the Figure 2 compatibility matrix, the match metric's
// definitions, and a full three-phase mining run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	lsp "repro"
)

func main() {
	// The five-symbol alphabet d1..d5 and the Figure 2 compatibility matrix:
	// C[true][observed] = Prob(true | observed); every column sums to 1.
	alphabet := lsp.GenericAlphabet(5)
	matrix, err := lsp.NewMatrix([][]float64{
		{0.90, 0.10, 0.00, 0.00, 0.00},
		{0.05, 0.80, 0.05, 0.10, 0.00},
		{0.05, 0.00, 0.70, 0.15, 0.10},
		{0.00, 0.10, 0.10, 0.75, 0.05},
		{0.00, 0.00, 0.15, 0.00, 0.85},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The Figure 4(a) database of four sequences.
	parse := func(s string) []lsp.Symbol {
		seq, err := alphabet.ParseSeq(s)
		if err != nil {
			log.Fatal(err)
		}
		return seq
	}
	db := lsp.NewMemDB([][]lsp.Symbol{
		parse("d1 d2 d3 d1"),
		parse("d4 d2 d1"),
		parse("d3 d4 d2 d1"),
		parse("d2 d2"),
	})

	// The match of a pattern in a sequence is the best sliding-window
	// product of compatibilities (Definition 3.6). "*" is the don't-care
	// symbol: it matches any single observed symbol at its position.
	p, err := alphabet.Parse("d1 * d2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("M(%s, d1 d2 d2) = %.2f   // 0.9 x 1 x 0.8, the paper's Section 3 example\n",
		alphabet.Format(p), lsp.MatchOf(matrix, p, parse("d1 d2 d2")))

	// Database match (Definition 3.7) versus classic support: the pattern
	// d2 d1 occurs exactly in half the sequences, but partial credit lifts
	// nearby evidence too.
	q, _ := alphabet.Parse("d2 d1")
	matches, err := lsp.MatchInDB(db, matrix, []lsp.Pattern{q})
	if err != nil {
		log.Fatal(err)
	}
	supports, err := lsp.SupportInDB(db, []lsp.Pattern{q})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern %s: support = %.3f, match = %.3f   // Figure 4(c)'s 0.391\n\n",
		alphabet.Format(q), supports[0], matches[0])

	// Mine the frequent patterns with the three-phase probabilistic
	// algorithm: one scan for symbol matches plus a sample, Chernoff-bound
	// classification in memory, then border collapsing against the full
	// database.
	res, err := lsp.Mine(db, matrix, lsp.Config{
		MinMatch:   0.3,
		SampleSize: 4, // the whole (tiny) database
		MaxLen:     3,
		MaxGap:     1,
		Rng:        lsp.NewRand(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mining with min_match=0.3 finished in %d database scans\n", res.Scans)
	fmt.Printf("border of frequent patterns (%d):\n", res.Border.Len())
	for _, bp := range res.Border.Patterns() {
		fmt.Printf("  %s\n", alphabet.Format(bp))
	}
}
