// Weblog models the paper's consumer-behavior motivation: shoppers intend to
// buy certain products, but sometimes walk out with a substitute (the
// intended item was out of stock or misplaced). The observed purchase
// sessions therefore misrepresent the underlying intent, and the
// compatibility matrix encodes how often each observed product stands in
// for another. Mining with the match model recovers the intended shopping
// patterns that the raw observations conceal.
//
//	go run ./examples/weblog
package main

import (
	"fmt"
	"log"
	"math/rand"

	lsp "repro"
)

func main() {
	// A small product catalog. Each brand pairs with a substitute the store
	// hands out when it is out of stock (~30% of the time).
	products := []string{
		"espresso-A", "espresso-B",
		"filter-A", "filter-B",
		"grinder-A", "grinder-B",
		"kettle-A", "kettle-B",
		"mug-A", "mug-B",
		"beans-A", "beans-B",
	}
	catalog, err := lsp.NewAlphabet(products)
	if err != nil {
		log.Fatal(err)
	}
	m := catalog.Size()

	// Substitution channel: product 2i ships as itself 70% of the time and
	// as its paired brand 2i+1 (and vice versa) 30% of the time.
	const outOfStock = 0.3
	channel := make([][]float64, m)
	for i := range channel {
		channel[i] = make([]float64, m)
		channel[i][i] = 1 - outOfStock
		channel[i][i^1] = outOfStock
	}
	matrix, err := lsp.MatrixFromChannel(channel, nil)
	if err != nil {
		log.Fatal(err)
	}

	// True intent: a popular "coffee setup" journey — grinder, beans, then
	// an espresso machine, always brand A. Sessions are otherwise random
	// browsing/purchases.
	intent := mustParse(catalog, "grinder-A beans-A espresso-A")
	rng := rand.New(rand.NewSource(42))
	sessions := lsp.NewMemDB(nil)
	const nSessions = 3000
	for i := 0; i < nSessions; i++ {
		session := make([]lsp.Symbol, 4+rng.Intn(5))
		for j := range session {
			session[j] = lsp.Symbol(rng.Intn(m))
		}
		if rng.Float64() < 0.35 {
			pos := rng.Intn(len(session) - intent.Len() + 1)
			copy(session[pos:], intent)
		}
		// The store substitutes items independently at checkout.
		for j, want := range session {
			if rng.Float64() < outOfStock {
				session[j] = want ^ 1
			}
		}
		sessions.Append(session)
	}

	fmt.Printf("%d sessions; true journey planted in ~35%% of them, %d%% substitution rate\n\n",
		nSessions, int(outOfStock*100))

	// Mine full three-item journeys under both models at the same
	// threshold. Substituted variants are genuinely frequent observations —
	// the checkouts really happened — so both models surface them; the
	// match column is the paper's §3 "expected value": each journey's
	// weight redistributed across the intents compatible with it, with the
	// true intent carrying the most evidence.
	const threshold = 0.04
	opts := lsp.MineOptions{MaxLen: 3, MaxGap: 0}
	bySupport, err := lsp.ExhaustiveSupport(sessions, threshold, m, opts)
	if err != nil {
		log.Fatal(err)
	}
	byMatch, err := lsp.Exhaustive(sessions, matrix, threshold, opts)
	if err != nil {
		log.Fatal(err)
	}
	journeys := bySupport.Frequent.Clone()
	journeys.Union(byMatch.Frequent)
	fmt.Printf("three-item journeys above threshold %.2f (either model):\n", threshold)
	fmt.Printf("  %-40s %9s  %9s\n", "journey", "face", "intent")
	for _, p := range journeys.Patterns() {
		if p.K() != 3 {
			continue
		}
		sup, err := lsp.SupportInDB(sessions, []lsp.Pattern{p})
		if err != nil {
			log.Fatal(err)
		}
		mat, err := lsp.MatchInDB(sessions, matrix, []lsp.Pattern{p})
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if p.Equal(intent) {
			marker = " <- true intent"
		}
		fmt.Printf("  %-40s %9.3f  %9.3f%s\n", catalog.Format(p), sup[0], mat[0], marker)
	}
	fmt.Println()
	fmt.Println("The substituted variants are real checkouts, so their face value")
	fmt.Println("(support) is substantial; the match column redistributes every")
	fmt.Println("observed journey across the intents compatible with it (the paper's")
	fmt.Println("Figure 4(d)), and the true intent carries the most evidence.")
	fmt.Println()

	// The three-phase probabilistic miner reaches the same answer in a
	// couple of scans of the session log.
	res, err := lsp.Mine(sessions, matrix, lsp.Config{
		MinMatch:   threshold,
		SampleSize: 1500,
		MaxLen:     3,
		MaxGap:     0,
		MemBudget:  5000,
		Rng:        lsp.NewRand(7),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probabilistic miner: %d database scans, %d frequent patterns (same set: %v)\n",
		res.Scans, res.Frequent.Len(), sameSet(res.Frequent, byMatch.Frequent))
}

func sameSet(a, b *lsp.PatternSet) bool {
	if a.Len() != b.Len() {
		return false
	}
	for _, p := range a.Patterns() {
		if !b.Contains(p) {
			return false
		}
	}
	return true
}

func mustParse(a *lsp.Alphabet, s string) lsp.Pattern {
	p, err := a.Parse(s)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
