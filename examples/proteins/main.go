// Proteins demonstrates the paper's motivating domain: finding conserved
// amino-acid motifs in sequences degraded by biologically plausible
// mutation. It plants two motifs into synthetic protein fragments, mutates
// every residue through a BLOSUM50-derived channel (N→D, K→R, V→I and
// friends are the likely substitutions), and compares what the classic
// support model and the match model recover.
//
//	go run ./examples/proteins
package main

import (
	"fmt"
	"log"
	"math/rand"

	lsp "repro"
)

const (
	identity = 0.30 // per-residue survival probability (twilight-zone homologs)
	lambda   = 2.0  // BLOSUM score concentration
	nSeqs    = 2000
	minMatch = 0.004
)

func main() {
	aa := lsp.AminoAlphabet()
	rng := rand.New(rand.NewSource(7))

	// Two conserved motifs built from residues with strong mutation
	// partners — the paper's Figure 1 story: N, K and V mutate to D, R and
	// I with little functional impact, so their degraded occurrences remain
	// recognizable to the compatibility matrix.
	motifA := mustParse(aa, "V I L M")
	motifB := mustParse(aa, "N K V F Y")
	motifs := []lsp.Pattern{motifA, motifB}
	weights := []float64{0.30, 0.45}

	// Standard database: a fraction of "sequences" are the conserved motifs
	// themselves, the rest random fragments.
	std := lsp.NewMemDB(nil)
	m := aa.Size()
	for i := 0; i < nSeqs; i++ {
		if planted := pickMotif(rng, motifs, weights); planted != nil {
			std.Append(append([]lsp.Symbol(nil), planted...))
			continue
		}
		frag := make([]lsp.Symbol, 10+rng.Intn(8))
		for j := range frag {
			frag[j] = lsp.Symbol(rng.Intn(m))
		}
		std.Append(frag)
	}

	// Mutate every residue through the BLOSUM channel and build the
	// compatibility matrix a biologist would hand the miner.
	channel, err := lsp.BLOSUMChannel(identity, lambda)
	if err != nil {
		log.Fatal(err)
	}
	test := lsp.NewMemDB(nil)
	for i := 0; i < std.Len(); i++ {
		test.Append(mutate(rng, channel, std.Seq(i)))
	}
	matrix, err := lsp.BLOSUMCompatibility(identity, lambda)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d fragments, %.0f%% residue identity after mutation\n\n", test.Len(), identity*100)

	// What does each model report for the true motifs on the mutated data?
	supports, err := lsp.SupportInDB(test, motifs)
	if err != nil {
		log.Fatal(err)
	}
	matches, err := lsp.MatchInDB(test, matrix, motifs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("true motif            support     match")
	for i, motif := range motifs {
		fmt.Printf("%-20s  %8.4f  %8.4f\n", aa.Format(motif), supports[i], matches[i])
	}

	// Mine both models exhaustively and check which motifs survive.
	opts := lsp.MineOptions{MaxLen: 5, MaxGap: 0, MaxCandidatesPerLevel: 30000}
	bySupport, err := lsp.ExhaustiveSupport(test, minMatch, m, opts)
	if err != nil {
		log.Fatal(err)
	}
	byMatch, err := lsp.Exhaustive(test, matrix, minMatch, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmining at threshold %.4f:\n", minMatch)
	for _, motif := range motifs {
		fmt.Printf("  %-20s  support model: %-5v  match model: %v\n",
			aa.Format(motif), bySupport.Frequent.Contains(motif), byMatch.Frequent.Contains(motif))
	}
	fmt.Println("\nThe exact-occurrence model loses long motifs once most copies carry")
	fmt.Println("at least one mutation; the compatibility matrix lets the match model")
	fmt.Println("credit the degraded copies and keep the motifs above threshold.")
}

func mustParse(a *lsp.Alphabet, s string) lsp.Pattern {
	p, err := a.Parse(s)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func pickMotif(rng *rand.Rand, motifs []lsp.Pattern, weights []float64) lsp.Pattern {
	u := rng.Float64()
	for i, w := range weights {
		u -= w
		if u < 0 {
			return motifs[i]
		}
	}
	return nil
}

func mutate(rng *rand.Rand, channel [][]float64, seq []lsp.Symbol) []lsp.Symbol {
	out := make([]lsp.Symbol, len(seq))
	for i, d := range seq {
		u := rng.Float64()
		row := channel[d]
		out[i] = d
		for j, p := range row {
			u -= p
			if u < 0 {
				out[i] = lsp.Symbol(j)
				break
			}
		}
	}
	return out
}
