// Perfmon models the paper's performance-analysis motivation: a monitoring
// system quantizes a continuous metric (say CPU load) into labeled bins.
// When the true value sits near a bin boundary, measurement jitter makes the
// observation fall into the adjacent bin — so observed label sequences
// misrepresent the underlying states, and exact pattern matching misses
// recurring incident signatures. The compatibility matrix encodes the
// adjacent-bin confusion, and the match model recovers the signature.
//
//	go run ./examples/perfmon
package main

import (
	"fmt"
	"log"
	"math/rand"

	lsp "repro"
)

func main() {
	bins := []string{"idle", "low", "medium", "high", "saturated"}
	alphabet, err := lsp.NewAlphabet(bins)
	if err != nil {
		log.Fatal(err)
	}
	m := alphabet.Size()

	// Quantization noise: samples land in an adjacent bin 10% of the time —
	// except that the smoothed sensor CLIPS under real load: when the true
	// state is "high", the reading says "saturated" 90% of the time. The
	// true value lives near the top of its bin, exactly the §1 quantization
	// scenario.
	const jitter = 0.1
	const clip = 0.9
	high := mustSym(alphabet, "high")
	channel := make([][]float64, m)
	for i := range channel {
		channel[i] = make([]float64, m)
		switch {
		case lsp.Symbol(i) == high:
			channel[i][i+1] = clip // reads "saturated"
			channel[i][i] = 1 - clip - 0.05
			channel[i][i-1] = 0.05
		case i == 0:
			channel[i][0] = 1 - jitter/2
			channel[i][1] = jitter / 2
		case i == m-1:
			channel[i][m-1] = 1 - jitter/2
			channel[i][m-2] = jitter / 2
		default:
			channel[i][i] = 1 - jitter
			channel[i][i-1] = jitter / 2
			channel[i][i+1] = jitter / 2
		}
	}
	matrix, err := lsp.MatrixFromChannel(channel, nil)
	if err != nil {
		log.Fatal(err)
	}

	// The incident signature: a runaway ramp "low medium high saturated" —
	// with one don't-care sample between "medium" and "high" (the ramp speed
	// varies). The eternal symbol * encodes that fixed-length gap.
	signature := mustParse(alphabet, "low medium * high saturated")

	// Telemetry windows: mostly idle/low noise around a baseline, with the
	// ramp planted in a third of the windows, then quantization jitter.
	rng := rand.New(rand.NewSource(9))
	windows := lsp.NewMemDB(nil)
	const nWindows = 2500
	for i := 0; i < nWindows; i++ {
		w := make([]lsp.Symbol, 10+rng.Intn(6))
		for j := range w {
			w[j] = lsp.Symbol(rng.Intn(3)) // idle / low / medium background
		}
		if rng.Float64() < 0.33 {
			pos := rng.Intn(len(w) - signature.Len() + 1)
			for j, s := range signature {
				if s != lsp.Eternal {
					w[pos+j] = s
				}
			}
		}
		// Apply quantization jitter to the whole window.
		for j, trueBin := range w {
			u := rng.Float64()
			for obs, p := range channel[trueBin] {
				u -= p
				if u < 0 {
					w[j] = lsp.Symbol(obs)
					break
				}
			}
		}
		windows.Append(w)
	}

	supports, err := lsp.SupportInDB(windows, []lsp.Pattern{signature})
	if err != nil {
		log.Fatal(err)
	}
	matches, err := lsp.MatchInDB(windows, matrix, []lsp.Pattern{signature})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d telemetry windows, signature planted in ~33%%; the sensor clips\n", nWindows)
	fmt.Printf("true 'high' readings to 'saturated' %d%% of the time\n\n", int(clip*100))
	fmt.Printf("signature %q:\n", alphabet.Format(signature))
	fmt.Printf("  exact-label support: %.3f\n", supports[0])
	fmt.Printf("  jitter-aware match:  %.3f\n\n", matches[0])

	// Does each model flag the signature at the alerting threshold?
	const threshold = 0.04
	fmt.Printf("alerting threshold %.2f: support flags it: %v, match flags it: %v\n",
		threshold, supports[0] >= threshold, matches[0] >= threshold)
	fmt.Println()
	fmt.Println("Exact label matching almost never sees the literal 'high' reading")
	fmt.Println("inside real incidents, so the signature's support collapses; the")
	fmt.Println("compatibility matrix knows a 'saturated' reading is often a clipped")
	fmt.Println("'high' and restores the signature's significance.")
}

func mustSym(a *lsp.Alphabet, name string) lsp.Symbol {
	s, err := a.Symbol(name)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func mustParse(a *lsp.Alphabet, s string) lsp.Pattern {
	p, err := a.Parse(s)
	if err != nil {
		log.Fatal(err)
	}
	return p
}
