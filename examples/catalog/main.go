// Catalog demonstrates the paper's §6 future-work direction — mining with a
// huge number of distinct symbols (an E-commerce catalog) — using the
// sparse compatibility representation and the window-sweep pipeline
// (lsp.MineSweep), which never materializes an m×m matrix.
//
// The store has thousands of SKUs. Each SKU has a handful of substitutes
// (same product, different brand/size) that fulfillment may ship instead.
// Purchase logs therefore scatter one underlying buying habit across many
// observed SKU combinations; the sparse matrix concentrates that evidence
// back onto the intended SKUs.
//
//	go run ./examples/catalog
package main

import (
	"fmt"
	"log"
	"math/rand"

	lsp "repro"
)

const (
	nSKUs        = 5000
	substitutes  = 4    // substitutes per SKU
	substitution = 0.25 // chance an ordered SKU ships as a substitute
	nOrders      = 4000
	minMatch     = 0.05
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Substitution structure: SKU s's substitutes are the next `substitutes`
	// SKUs in its product family (a block of substitutes+1 consecutive ids).
	family := func(s int) int { return s - s%(substitutes+1) }
	shipped := func(s lsp.Symbol) lsp.Symbol {
		if rng.Float64() >= substitution {
			return s
		}
		base := family(int(s))
		sub := base + rng.Intn(substitutes+1)
		return lsp.Symbol(sub)
	}

	// The compatibility matrix, built sparsely: each observed SKU's column
	// holds its own identity mass and its family members' substitution
	// shares. 5000 columns × 5 cells ≈ 25K cells, vs 25M dense.
	var cells []lsp.SparseCell
	for obs := 0; obs < nSKUs; obs++ {
		base := family(obs)
		// Observed `obs` is the intended SKU with prob 1-substitution +
		// substitution/(substitutes+1) (a substitution can land on itself),
		// or any family member with the remaining share.
		share := substitution / float64(substitutes+1)
		for true0 := base; true0 < base+substitutes+1 && true0 < nSKUs; true0++ {
			p := share
			if true0 == obs {
				p += 1 - substitution
			}
			cells = append(cells, lsp.SparseCell{
				True: lsp.Symbol(true0), Observed: lsp.Symbol(obs), P: p,
			})
		}
	}
	// Families truncated by the catalog edge need renormalizing; rebuild
	// only full families by capping the catalog at a multiple of the family
	// size (5000 is one, so the loop above is already consistent).
	matrix, err := lsp.NewSparseMatrix(nSKUs, cells)
	if err != nil {
		log.Fatal(err)
	}

	// A popular buying habit: a specific camera, lens and tripod (three
	// SKUs from different families), bought in order.
	habit := lsp.Pattern{lsp.Symbol(120), lsp.Symbol(1740), lsp.Symbol(3355)}
	orders := lsp.NewMemDB(nil)
	for i := 0; i < nOrders; i++ {
		basket := make([]lsp.Symbol, 5+rng.Intn(6))
		for j := range basket {
			basket[j] = lsp.Symbol(rng.Intn(nSKUs))
		}
		if rng.Float64() < 0.3 {
			pos := rng.Intn(len(basket) - len(habit) + 1)
			copy(basket[pos:], habit)
		}
		for j, want := range basket {
			basket[j] = shipped(want)
		}
		orders.Append(basket)
	}

	fmt.Printf("catalog: %d SKUs (%d substitutes each), %d orders, %.0f%% substitution\n\n",
		nSKUs, substitutes, nOrders, substitution*100)

	res, err := lsp.MineSweep(orders, matrix, lsp.Config{
		MinMatch:   minMatch,
		SampleSize: 3000,
		MaxLen:     3,
		MaxGap:     0,
		MemBudget:  5000,
		Workers:    -1, // parallel probe scans
		Rng:        lsp.NewRand(3),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mined in %d scans of the order log\n", res.Scans)
	fmt.Printf("frequent patterns: %d, border: %d\n\n", res.Frequent.Len(), res.Border.Len())

	found := false
	for _, p := range res.Border.Patterns() {
		if p.K() < 3 {
			continue
		}
		marker := ""
		if p.Equal(habit) {
			marker = "  <- the planted buying habit"
			found = true
		}
		fmt.Printf("  %v%s\n", p, marker)
	}
	if !found {
		fmt.Println("  (habit not on the border)")
	}

	vals, err := lsp.MatchInDB(orders, matrix, []lsp.Pattern{habit})
	if err != nil {
		log.Fatal(err)
	}
	sups, err := lsp.SupportInDB(orders, []lsp.Pattern{habit})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhabit %v: observed exactly %.3f of orders, intent-adjusted match %.3f\n",
		habit, sups[0], vals[0])
}
