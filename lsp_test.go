package lsp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// fig4 returns the paper's worked example as public-API values.
func fig4(t testing.TB) (*MemDB, *Matrix, *Alphabet) {
	t.Helper()
	a := GenericAlphabet(5)
	matrix, err := NewMatrix([][]float64{
		{0.90, 0.10, 0.00, 0.00, 0.00},
		{0.05, 0.80, 0.05, 0.10, 0.00},
		{0.05, 0.00, 0.70, 0.15, 0.10},
		{0.00, 0.10, 0.10, 0.75, 0.05},
		{0.00, 0.00, 0.15, 0.00, 0.85},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := NewMemDB([][]Symbol{
		{0, 1, 2, 0},
		{3, 1, 0},
		{2, 3, 1, 0},
		{1, 1},
	})
	return db, matrix, a
}

func TestPublicAPIRoundTrip(t *testing.T) {
	db, matrix, a := fig4(t)

	p, err := a.Parse("d2 d1")
	if err != nil {
		t.Fatal(err)
	}
	matches, err := MatchInDB(db, matrix, []Pattern{p})
	if err != nil {
		t.Fatal(err)
	}
	if got := matches[0]; got < 0.391 || got > 0.392 {
		t.Errorf("match(d2 d1)=%v, want 0.391", got)
	}
	supports, err := SupportInDB(db, []Pattern{p})
	if err != nil {
		t.Fatal(err)
	}
	if supports[0] != 0.5 {
		t.Errorf("support=%v", supports[0])
	}

	res, err := Mine(db, matrix, Config{
		MinMatch: 0.3, SampleSize: 4, MaxLen: 3, MaxGap: 1, Rng: NewRand(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Border.Contains(p) {
		t.Errorf("border %v missing d2 d1", res.Border.Patterns())
	}

	truth, err := Exhaustive(db, matrix, 0.3, MineOptions{MaxLen: 3, MaxGap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if truth.Frequent.Len() != res.Frequent.Len() {
		t.Errorf("probabilistic %d vs exhaustive %d patterns", res.Frequent.Len(), truth.Frequent.Len())
	}

	mm, err := MaxMiner(db, matrix, 0.3, MineOptions{MaxLen: 3, MaxGap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mm.Frequent.Len() != truth.Frequent.Len() {
		t.Errorf("max-miner %d vs exhaustive %d patterns", mm.Frequent.Len(), truth.Frequent.Len())
	}
}

func TestPublicMatrixHelpers(t *testing.T) {
	if !IdentityMatrix(4).IsIdentity() {
		t.Error("IdentityMatrix not identity")
	}
	u, err := UniformNoiseMatrix(5, 0.2)
	if err != nil || u.C(0, 0) != 0.8 {
		t.Errorf("UniformNoiseMatrix: %v, %v", u, err)
	}
	bc, err := BLOSUMCompatibility(0.8, 0.5)
	if err != nil || bc.Size() != 20 {
		t.Errorf("BLOSUMCompatibility: %v", err)
	}
	ch, err := BLOSUMChannel(0.8, 0.5)
	if err != nil || len(ch) != 20 {
		t.Errorf("BLOSUMChannel: %v", err)
	}
	fc, err := MatrixFromChannel([][]float64{{0.9, 0.1}, {0.1, 0.9}}, nil)
	if err != nil || fc.Size() != 2 {
		t.Errorf("MatrixFromChannel: %v", err)
	}
	var buf bytes.Buffer
	if _, err := u.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrix(&buf)
	if err != nil || back.C(0, 0) != 0.8 {
		t.Errorf("ReadMatrix: %v", err)
	}
	if AminoAlphabet().Size() != 20 {
		t.Error("AminoAlphabet size")
	}
}

func TestPublicDBHelpers(t *testing.T) {
	db, _, a := fig4(t)
	path := t.TempDir() + "/api.lsq"
	if err := WriteDB(path, db); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenDB(path)
	if err != nil || disk.Len() != 4 {
		t.Fatalf("OpenDB: %v", err)
	}
	mem, err := LoadDB(path)
	if err != nil || mem.Len() != 4 {
		t.Fatalf("LoadDB: %v", err)
	}
	text, err := ReadTextDB(strings.NewReader("d1 d2\nd3 d4\n"), a)
	if err != nil || text.Len() != 2 {
		t.Fatalf("ReadTextDB: %v", err)
	}
	fasta, err := ReadFASTA(strings.NewReader(">x\nACD\n"), AminoAlphabet())
	if err != nil || fasta.Len() != 1 {
		t.Fatalf("ReadFASTA: %v", err)
	}
	sym, err := SymbolMatches(db, IdentityMatrix(5))
	if err != nil || len(sym) != 5 {
		t.Fatalf("SymbolMatches: %v", err)
	}
}

func TestPublicPatternHelpers(t *testing.T) {
	p, err := NewPattern(0, Eternal, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 2 || p.Len() != 3 {
		t.Errorf("pattern shape: %v", p)
	}
	if _, err := NewPattern(Eternal, 1); err == nil {
		t.Error("invalid pattern accepted")
	}
	if _, err := NewAlphabet([]string{"a", "a"}); err == nil {
		t.Error("duplicate alphabet accepted")
	}
}

func ExampleMine() {
	db, matrix, a := fig4(&testing.T{})
	res, err := Mine(db, matrix, Config{
		MinMatch: 0.3, SampleSize: 4, MaxLen: 3, MaxGap: 1, Rng: NewRand(1),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, p := range res.Border.Patterns() {
		fmt.Println(a.Format(p))
	}
	// Output:
	// d2 d1
	// d3
	// d4 * d1
	// d4 d2
}

func TestPublicTopK(t *testing.T) {
	db, matrix, _ := fig4(t)
	res, err := TopK(db, matrix, 3, MineOptions{MaxLen: 2, MaxGap: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 3 {
		t.Fatalf("got %d patterns", len(res.Patterns))
	}
	// d2 is the highest-match 1-pattern (0.8) on the Figure 4 database.
	if res.Patterns[0].Key() != "1" {
		t.Errorf("top pattern %v, want d2", res.Patterns[0])
	}
}
