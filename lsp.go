// Package lsp (long sequential patterns) is the public API of this
// reproduction of Yang, Wang, Yu & Han, "Mining Long Sequential Patterns in
// a Noisy Environment" (SIGMOD 2002).
//
// The library mines sequential patterns from a database of symbol sequences
// under the paper's match model: a compatibility matrix C(d_i, d_j) =
// Prob(true = d_i | observed = d_j) connects noisy observations to
// underlying true values, and a pattern's match in a sequence is the best
// sliding-window product of compatibilities — its "real support" had the
// data been noise free.
//
// The headline entry point is Mine, the three-phase probabilistic
// algorithm: one scan for exact symbol matches plus a random sample,
// in-memory Chernoff-bound classification of the sample, and border
// collapsing against the full (possibly disk-resident) database. Exhaustive
// and ExhaustiveSupport provide the deterministic reference miners, and
// MaxMiner the look-ahead baseline.
//
// See the examples directory for runnable walkthroughs and DESIGN.md for
// the system inventory.
package lsp

import (
	"io"
	"math/rand"

	"repro/internal/blosum"
	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/match"
	"repro/internal/maxminer"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/support"
)

// Pattern types and helpers.
type (
	// Pattern is a list of positions, each a concrete Symbol or Eternal.
	Pattern = pattern.Pattern
	// Symbol identifies one alphabet symbol (0-based).
	Symbol = pattern.Symbol
	// Alphabet maps between symbol names and Symbol values.
	Alphabet = pattern.Alphabet
	// PatternSet is a set of distinct patterns.
	PatternSet = pattern.Set
)

// Eternal is the "don't care" pattern position (the paper's * symbol).
const Eternal = pattern.Eternal

// NewPattern builds and validates a pattern.
func NewPattern(positions ...Symbol) (Pattern, error) { return pattern.New(positions...) }

// NewAlphabet builds an alphabet from distinct names ("*" is reserved).
func NewAlphabet(names []string) (*Alphabet, error) { return pattern.NewAlphabet(names) }

// GenericAlphabet returns {d1, ..., dm}, the paper's example alphabet.
func GenericAlphabet(m int) *Alphabet { return pattern.GenericAlphabet(m) }

// AminoAlphabet returns the 20-letter amino-acid alphabet used by the
// protein experiments (BLOSUM row order).
func AminoAlphabet() *Alphabet { return blosum.Alphabet() }

// Compatibility matrices.
type (
	// Matrix is the dense compatibility matrix of Definition 3.4.
	Matrix = compat.Matrix
	// SparseMatrix stores only non-zero cells (for very large alphabets).
	SparseMatrix = compat.SparseMatrix
	// MatrixSource is the read interface both matrix kinds implement.
	MatrixSource = compat.Source
)

// SparseCell is one non-zero cell for NewSparseMatrix.
type SparseCell = compat.Cell

// NewMatrix validates dense[true][observed] rows (columns must sum to 1).
func NewMatrix(dense [][]float64) (*Matrix, error) { return compat.New(dense) }

// NewSparseMatrix builds an O(non-zeros) compatibility matrix from its
// non-zero cells — the representation for very large alphabets (observed
// columns must sum to 1).
func NewSparseMatrix(m int, cells []SparseCell) (*SparseMatrix, error) {
	return compat.NewSparse(m, cells)
}

// IdentityMatrix is the noise-free matrix under which match equals support.
func IdentityMatrix(m int) *Matrix { return compat.Identity(m) }

// UniformNoiseMatrix is the §5.1 matrix: stay with probability 1-alpha, flip
// to each other symbol with probability alpha/(m-1).
func UniformNoiseMatrix(m int, alpha float64) (*Matrix, error) {
	return compat.UniformNoise(m, alpha)
}

// MatrixFromChannel derives a compatibility matrix from a generative
// substitution channel by Bayes' rule (nil prior = uniform).
func MatrixFromChannel(sub [][]float64, prior []float64) (*Matrix, error) {
	return compat.FromChannel(sub, prior)
}

// BLOSUMCompatibility returns the compatibility matrix for BLOSUM50-driven
// amino-acid mutation with the given identity rate and score scaling.
func BLOSUMCompatibility(identity, lambda float64) (*Matrix, error) {
	return blosum.Compatibility(identity, lambda)
}

// BLOSUMChannel returns the generative substitution channel
// sub[i][j] = Prob(observed=j | true=i) for BLOSUM50-driven mutation —
// useful for simulating mutated sequence data that BLOSUMCompatibility then
// interprets.
func BLOSUMChannel(identity, lambda float64) ([][]float64, error) {
	return blosum.Channel(identity, lambda)
}

// ReadMatrix parses the text format produced by Matrix.WriteTo.
func ReadMatrix(r io.Reader) (*Matrix, error) { return compat.ReadFrom(r) }

// Sequence databases.
type (
	// Scanner is a scannable sequence database that counts full passes.
	Scanner = seqdb.Scanner
	// MemDB is an in-memory database; DiskDB streams a binary file.
	MemDB  = seqdb.MemDB
	DiskDB = seqdb.DiskDB
)

// NewMemDB wraps sequences in an in-memory database.
func NewMemDB(seqs [][]Symbol) *MemDB { return seqdb.NewMemDB(seqs) }

// OpenDB opens an on-disk database created with WriteDB (or seqdb.CreateFile).
func OpenDB(path string) (*DiskDB, error) { return seqdb.OpenFile(path) }

// WriteDB persists an in-memory database in the binary disk format.
func WriteDB(path string, db *MemDB) error { return seqdb.WriteFile(path, db) }

// LoadDB reads an on-disk database fully into memory.
func LoadDB(path string) (*MemDB, error) { return seqdb.LoadFile(path) }

// ReadTextDB parses one sequence per line of whitespace-separated names.
func ReadTextDB(r io.Reader, a *Alphabet) (*MemDB, error) { return seqdb.ReadText(r, a) }

// ReadFASTA parses FASTA records against a single-letter alphabet.
func ReadFASTA(r io.Reader, a *Alphabet) (*MemDB, error) { return seqdb.ReadFASTA(r, a) }

// Mining configuration and results.
type (
	// Config parameterizes Mine; see the field docs in internal/core.
	Config = core.Config
	// Result reports a Mine run (frequent set, border, scans, timings).
	Result = core.Result
	// Finalizer selects the Phase 3 strategy.
	Finalizer = core.Finalizer
	// MineOptions bounds the explored pattern space for the deterministic
	// miners (MaxLen, MaxGap, caps).
	MineOptions = miner.Options
	// MinedSet is the result of a deterministic (exhaustive) mining run.
	MinedSet = miner.Result
	// MaxMinerResult reports a MaxMiner run.
	MaxMinerResult = maxminer.Result
)

// Finalizer choices for Config.
const (
	BorderCollapsing = core.BorderCollapsing
	LevelWise        = core.LevelWise
	NoFinalizer      = core.None
	// BorderCollapsingImplicit never materializes the ambiguous region:
	// probe layers are generated between the Phase 2 borders with the
	// paper's Algorithm 4.4 (see the core package docs for the space
	// semantics when MaxGap truncates the lattice).
	BorderCollapsingImplicit = core.BorderCollapsingImplicit
)

// Mine runs the paper's three-phase probabilistic algorithm.
func Mine(db Scanner, c MatrixSource, cfg Config) (*Result, error) {
	return core.Mine(db, c, cfg)
}

// MineSweep is the window-sweep variant of Mine for sparse compatibility
// matrices and very large alphabets: Phase 2 enumerates the sample's
// compatible windows instead of generating candidates, so no m×m structure
// is ever materialized. It requires a sample large enough that the Chernoff
// band sits below MinMatch (an error says so otherwise).
func MineSweep(db Scanner, c MatrixSource, cfg Config) (*Result, error) {
	return core.MineSweep(db, c, cfg)
}

// LearnMatrix estimates a compatibility matrix from aligned (true,
// observed) training sequence pairs, with additive smoothing.
func LearnMatrix(m int, truth, observed [][]Symbol, smoothing float64) (*Matrix, error) {
	return compat.LearnFromPairs(m, truth, observed, smoothing)
}

// Exhaustive mines the exact frequent set under the match measure, one scan
// per lattice level.
func Exhaustive(db Scanner, c MatrixSource, minMatch float64, opts MineOptions) (*MinedSet, error) {
	return core.Exhaustive(db, c, minMatch, opts)
}

// ExhaustiveSupport mines the exact frequent set under the classic support
// measure.
func ExhaustiveSupport(db Scanner, minSupport float64, m int, opts MineOptions) (*MinedSet, error) {
	return core.ExhaustiveSupport(db, minSupport, m, opts)
}

// MaxMiner runs the adapted Max-Miner look-ahead baseline under the match
// measure.
func MaxMiner(db Scanner, c MatrixSource, minMatch float64, opts MineOptions) (*MaxMinerResult, error) {
	return maxminer.Mine(c.Size(), miner.MatchDBValuer(db, c), minMatch, opts)
}

// TopKResult reports a TopK run.
type TopKResult = miner.TopKResult

// TopK finds the k highest-match patterns without a threshold, by
// best-first search over the lattice with Apriori upper bounds.
func TopK(db Scanner, c MatrixSource, k int, opts MineOptions) (*TopKResult, error) {
	return miner.TopK(c.Size(), miner.MatchDBValuer(db, c), k, 0, opts)
}

// MatchOf computes M(P,S), the best-window match of a pattern in a sequence
// (Definition 3.6).
func MatchOf(c MatrixSource, p Pattern, seq []Symbol) float64 {
	return match.Sequence(c, p, seq)
}

// MatchInDB computes each pattern's database match (Definition 3.7) in one
// scan.
func MatchInDB(db Scanner, c MatrixSource, ps []Pattern) ([]float64, error) {
	return match.DB(db, match.NewMatch(c), ps)
}

// SupportInDB computes each pattern's classic support in one scan.
func SupportInDB(db Scanner, ps []Pattern) ([]float64, error) {
	return support.DB(db, ps)
}

// SymbolMatches computes the match of every individual symbol in one scan
// (Algorithm 4.1 without sampling).
func SymbolMatches(db Scanner, c MatrixSource) ([]float64, error) {
	return match.Symbols(db, c)
}

// NewRand returns a seeded rand.Rand for reproducible mining runs.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
