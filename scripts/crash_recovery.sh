#!/usr/bin/env bash
# Crash-recovery end-to-end checks.
#
#   crash_recovery.sh [cli]    interrupt a checkpointed lspmine run with
#                              SIGINT, resume from the snapshot, and require
#                              the resumed border to be identical to an
#                              uninterrupted run's.
#   crash_recovery.sh serve    SIGKILL an lspserve daemon with jobs in
#                              flight, restart it on the same journal, and
#                              require every replayed job's result document
#                              to be byte-identical to one mined by an
#                              uninterrupted server.
#   crash_recovery.sh stream   SIGKILL an appender mid-append and a
#                              checkpointed follower mid-advance, recover
#                              both, and require the final frequent set to
#                              be identical to a follower that consumed the
#                              whole log in one quiet advance (the stream
#                              result depends only on log content + config,
#                              never on batch boundaries or crashes).
#
# Both modes tolerate the kill landing after the work already finished (the
# recovery then replays completed state instead of resuming, which must
# still produce identical output).
set -euo pipefail
cd "$(dirname "$0")/.."

mode=${1:-cli}

dir=$(mktemp -d)
server_pid=
cleanup() {
  [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

# cli_cell NAME [EXTRA_FLAGS...] — run one interrupt-and-resume cell: an
# uninterrupted baseline, a SIGINT mid-run, and a resume whose border must
# be identical to the baseline. Artifacts are prefixed with NAME.
cli_cell() {
  cell=$1
  shift
  cargs=("${args[@]}" "$@")

  "$dir/lspmine" "${cargs[@]}" >"$dir/$cell-baseline.txt"

  "$dir/lspmine" "${cargs[@]}" -checkpoint "$dir/$cell.lckp" \
    >"$dir/$cell-killed.txt" 2>"$dir/$cell-killed.err" &
  pid=$!
  sleep 0.2
  kill -INT "$pid" 2>/dev/null || true
  rc=0
  wait "$pid" || rc=$?

  case "$rc" in
  130)
    echo "$cell: run interrupted mid-flight"
    grep -q "progress saved to" "$dir/$cell-killed.err"
    ;;
  0)
    echo "$cell: run finished before the signal landed; resume will skip everything"
    ;;
  *)
    echo "$cell: interrupted run exited with unexpected status $rc" >&2
    cat "$dir/$cell-killed.err" >&2
    exit 1
    ;;
  esac

  if [ ! -f "$dir/$cell.lckp" ]; then
    # The signal beat the first checkpoint write (mid-Phase 1). Produce a
    # snapshot to resume from so the check still exercises the resume path.
    echo "$cell: no snapshot written yet; rerunning to completion for one"
    "$dir/lspmine" "${cargs[@]}" -checkpoint "$dir/$cell.lckp" >/dev/null
  fi

  "$dir/lspmine" "${cargs[@]}" -checkpoint "$dir/$cell.lckp" -resume -v \
    >"$dir/$cell-resumed.txt"
  grep -q "resumed from phase" "$dir/$cell-resumed.txt"
  # Strip the -v preamble so the border list lines up with the plain baseline.
  sed -n '/patterns (/,$p' "$dir/$cell-resumed.txt" >"$dir/$cell-resumed-border.txt"
  diff -u "$dir/$cell-baseline.txt" "$dir/$cell-resumed-border.txt"
  echo "$cell: resumed border identical to the uninterrupted run"
}

cli_mode() {
  go build -o "$dir/lspgen" ./cmd/lspgen
  go build -o "$dir/lspmine" ./cmd/lspmine

  "$dir/lspgen" -out "$dir/test.lsq" -matrix "$dir/compat.txt" \
    -n 12000 -alpha 0.25 -seed 7

  args=(-db "$dir/test.lsq" -matrix "$dir/compat.txt"
    -min-match 0.08 -sample 800 -seed 7)

  cli_cell levelwise
  cli_cell growth -phase2-engine growth

  # The two Phase 2 engines promise identical labels, so the mined borders —
  # and therefore the printed pattern lists — must agree across engines too.
  diff -u "$dir/levelwise-baseline.txt" "$dir/growth-baseline.txt"
  echo "crash recovery OK: both engines resume to their baselines, and the engines agree"
}

# serve_start DATA_DIR LOG_PREFIX — start lspserve on a free port and set
# $server_pid/$base from the "lspserve listening on ..." stdout line.
serve_start() {
  "$dir/lspserve" -data "$1" -addr 127.0.0.1:0 \
    >"$dir/$2.log" 2>"$dir/$2.err" &
  server_pid=$!
  base=
  for _ in $(seq 1 100); do
    base=$(sed -n 's#^lspserve listening on ##p' "$dir/$2.log")
    [ -n "$base" ] && return 0
    sleep 0.1
  done
  echo "lspserve ($2) did not come up" >&2
  cat "$dir/$2.err" >&2
  exit 1
}

serve_stop() {
  kill -TERM "$server_pid" 2>/dev/null || true
  wait "$server_pid" 2>/dev/null || true
  server_pid=
}

# submit SPEC_JSON — POST a job, print its id (responses are indented JSON).
submit() {
  curl -sf -X POST "$base/v1/jobs" -H 'Content-Type: application/json' \
    -d "$1" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n1
}

# wait_done ID — poll until the job is done; fail on failed/canceled.
wait_done() {
  for _ in $(seq 1 600); do
    st=$(curl -sf "$base/v1/jobs/$1")
    if echo "$st" | grep -q '"state": *"done"'; then
      return 0
    fi
    if echo "$st" | grep -Eq '"state": *"(failed|canceled)"'; then
      echo "job $1 ended badly: $st" >&2
      exit 1
    fi
    sleep 0.2
  done
  echo "job $1 never finished" >&2
  exit 1
}

serve_mode() {
  command -v curl >/dev/null || { echo "serve mode needs curl" >&2; exit 1; }
  go build -o "$dir/lspgen" ./cmd/lspgen
  go build -o "$dir/lspserve" ./cmd/lspserve

  "$dir/lspgen" -out "$dir/test.lsq" -matrix "$dir/compat.txt" \
    -n 12000 -alpha 0.25 -seed 7

  spec1='{"db":"'$dir'/test.lsq","matrix":"'$dir'/compat.txt","min_match":0.08,"max_len":8,"max_gap":1,"sample":800,"seed":7}'
  spec2='{"db":"'$dir'/test.lsq","matrix":"'$dir'/compat.txt","min_match":0.10,"max_len":8,"max_gap":1,"sample":800,"seed":11}'

  # Baseline: an uninterrupted server mines both jobs.
  serve_start "$dir/data-a" server-a
  a1=$(submit "$spec1")
  a2=$(submit "$spec2")
  wait_done "$a1"
  wait_done "$a2"
  curl -sf "$base/v1/jobs/$a1/result" >"$dir/baseline1.json"
  curl -sf "$base/v1/jobs/$a2/result" >"$dir/baseline2.json"
  serve_stop

  # Victim: same two jobs, SIGKILL once mining progress is checkpointed
  # (after Phase 1 at the earliest, mid-Phase-3 probing at the latest).
  serve_start "$dir/data-b" server-b
  b1=$(submit "$spec1")
  b2=$(submit "$spec2")
  for _ in $(seq 1 200); do
    n=$(ls "$dir/data-b/ckpt" 2>/dev/null | wc -l)
    [ "$n" -ge 1 ] && break
    sleep 0.05
  done
  sleep 0.3
  kill -9 "$server_pid" 2>/dev/null || true
  wait "$server_pid" 2>/dev/null || true
  server_pid=

  interrupted=$(grep -l '"state": "running"' "$dir/data-b/jobs"/*.json 2>/dev/null | wc -l)
  if [ "${interrupted:-0}" -ge 1 ]; then
    echo "SIGKILL landed with $interrupted job(s) journaled mid-run"
  else
    echo "jobs finished before the kill; restart replays completed state"
  fi

  # Revival: the journal replays, interrupted jobs resume from their
  # checkpoints, and every result document must match the baseline byte for
  # byte (the documents carry no timings or scheduling facts).
  serve_start "$dir/data-b" server-b2
  wait_done "$b1"
  wait_done "$b2"
  curl -sf "$base/v1/jobs/$b1/result" >"$dir/resumed1.json"
  curl -sf "$base/v1/jobs/$b2/result" >"$dir/resumed2.json"
  if [ "${interrupted:-0}" -ge 1 ]; then
    curl -sf "$base/v1/jobs" | grep -q '"resumed":' ||
      { echo "no job reports a resume after the kill" >&2; exit 1; }
  fi
  serve_stop

  cmp "$dir/baseline1.json" "$dir/resumed1.json"
  cmp "$dir/baseline2.json" "$dir/resumed2.json"
  echo "serve crash recovery OK: replayed results byte-identical to the uninterrupted server's"
}

# follow_final LOG OUT [EXTRA...] — run one bounded follow advance over LOG
# and extract the final frequent-pattern line into OUT.
follow_final() {
  flog=$1
  fout=$2
  shift 2
  "$dir/lspmine" -db "$flog" -matrix "$dir/compat.txt" \
    -min-match 0.08 -sample 800 -seed 7 \
    -follow -follow-batches 1 -v -all "$@" >"$fout.raw"
  grep '^  frequent:' "$fout.raw" >"$fout"
}

stream_mode() {
  go build -o "$dir/lspgen" ./cmd/lspgen
  go build -o "$dir/lspmine" ./cmd/lspmine
  go build -o "$dir/lspappend" ./cmd/lspappend

  "$dir/lspgen" -out "$dir/test.lsq" -matrix "$dir/compat.txt" \
    -n 12000 -alpha 0.25 -seed 7

  # Baseline: the whole database lands in one quiet append, one advance.
  "$dir/lspappend" -log "$dir/log-a.lsa" -from "$dir/test.lsq" >/dev/null
  follow_final "$dir/log-a.lsa" "$dir/stream-baseline.txt"

  # Cell 1 — SIGKILL the appender mid-append. The next writer open repairs
  # the torn tail, and re-appending from the recovered total must rebuild
  # the exact same log content.
  "$dir/lspappend" -log "$dir/log-b.lsa" -from "$dir/test.lsq" \
    >/dev/null 2>&1 &
  apid=$!
  sleep 0.01
  kill -9 "$apid" 2>/dev/null || true
  wait "$apid" 2>/dev/null || true
  total=$("$dir/lspappend" -log "$dir/log-b.lsa" -from "$dir/test.lsq" -count 0 |
    sed -n 's/.*(total \([0-9]*\),.*/\1/p')
  echo "stream: appender killed with $total sequences durable"
  "$dir/lspappend" -log "$dir/log-b.lsa" -from "$dir/test.lsq" \
    -start "$total" >/dev/null
  follow_final "$dir/log-b.lsa" "$dir/stream-appender.txt"
  diff -u "$dir/stream-baseline.txt" "$dir/stream-appender.txt"
  echo "stream: log rebuilt after a torn append mines identically"

  # Cell 2 — SIGKILL a checkpointed follower mid-stream while batches keep
  # arriving, then resume it. The resumed session's final set must match the
  # baseline: at most one batch is ever replayed, never lost.
  # Seed the log small so the follower's first advance — and with it the
  # first checkpoint — lands fast, making the kill a real mid-stream resume
  # rather than a fresh start (the fallback below still covers that race).
  "$dir/lspappend" -log "$dir/log-c.lsa" -from "$dir/test.lsq" -count 500 \
    >/dev/null
  "$dir/lspmine" -db "$dir/log-c.lsa" -matrix "$dir/compat.txt" \
    -min-match 0.08 -sample 800 -seed 7 \
    -follow -poll 50ms -checkpoint "$dir/stream.lckp" \
    >"$dir/stream-killed.txt" 2>&1 &
  fpid=$!
  for lo in 500 2500 4500 6500 8500 10500; do
    "$dir/lspappend" -log "$dir/log-c.lsa" -from "$dir/test.lsq" \
      -start "$lo" -count 2000 >/dev/null
    sleep 0.3
    if [ "$lo" = 4500 ]; then
      # Give the follower a moment to checkpoint an advance first, so the
      # kill usually exercises a real resume (the fallback below still
      # covers the kill beating the first checkpoint write).
      for _ in $(seq 1 100); do
        [ -f "$dir/stream.lckp" ] && break
        sleep 0.1
      done
      kill -9 "$fpid" 2>/dev/null || true
      wait "$fpid" 2>/dev/null || true
      echo "stream: follower killed at $lo appended sequences"
    fi
  done
  resume_flags=(-resume)
  if [ ! -f "$dir/stream.lckp" ]; then
    # The kill beat the first checkpoint write; the restarted follower
    # simply starts over, which must still converge to the same set.
    echo "stream: no snapshot written yet; restarting the follower fresh"
    resume_flags=()
  fi
  follow_final "$dir/log-c.lsa" "$dir/stream-resumed.txt" \
    -checkpoint "$dir/stream.lckp" "${resume_flags[@]}"
  diff -u "$dir/stream-baseline.txt" "$dir/stream-resumed.txt"
  echo "stream crash recovery OK: killed appender and follower both recover to the baseline frequent set"
}

case "$mode" in
cli) cli_mode ;;
serve) serve_mode ;;
stream) stream_mode ;;
*)
  echo "usage: $0 [cli|serve|stream]" >&2
  exit 2
  ;;
esac
