#!/usr/bin/env bash
# Crash-recovery end-to-end check: interrupt a checkpointed lspmine run with
# SIGINT, resume from the snapshot, and require the resumed border to be
# identical to an uninterrupted run's. Tolerates the signal landing after
# the run already finished (the resume then skips every scan).
set -euo pipefail
cd "$(dirname "$0")/.."

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

go build -o "$dir/lspgen" ./cmd/lspgen
go build -o "$dir/lspmine" ./cmd/lspmine

"$dir/lspgen" -out "$dir/test.lsq" -matrix "$dir/compat.txt" \
  -n 12000 -alpha 0.25 -seed 7

args=(-db "$dir/test.lsq" -matrix "$dir/compat.txt"
  -min-match 0.08 -sample 800 -seed 7)

"$dir/lspmine" "${args[@]}" >"$dir/baseline.txt"

"$dir/lspmine" "${args[@]}" -checkpoint "$dir/run.lckp" \
  >"$dir/killed.txt" 2>"$dir/killed.err" &
pid=$!
sleep 0.2
kill -INT "$pid" 2>/dev/null || true
rc=0
wait "$pid" || rc=$?

case "$rc" in
130)
  echo "run interrupted mid-flight"
  grep -q "progress saved to" "$dir/killed.err"
  ;;
0)
  echo "run finished before the signal landed; resume will skip everything"
  ;;
*)
  echo "interrupted run exited with unexpected status $rc" >&2
  cat "$dir/killed.err" >&2
  exit 1
  ;;
esac

if [ ! -f "$dir/run.lckp" ]; then
  # The signal beat the first checkpoint write (mid-Phase 1). Produce a
  # snapshot to resume from so the check still exercises the resume path.
  echo "no snapshot written yet; rerunning to completion for one"
  "$dir/lspmine" "${args[@]}" -checkpoint "$dir/run.lckp" >/dev/null
fi

"$dir/lspmine" "${args[@]}" -checkpoint "$dir/run.lckp" -resume -v \
  >"$dir/resumed.txt"
grep -q "resumed from phase" "$dir/resumed.txt"
# Strip the -v preamble so the border list lines up with the plain baseline.
sed -n '/patterns (/,$p' "$dir/resumed.txt" >"$dir/resumed-border.txt"
diff -u "$dir/baseline.txt" "$dir/resumed-border.txt"
echo "crash recovery OK: resumed border identical to the uninterrupted run"
