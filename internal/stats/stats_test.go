package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 0.05, 0.10, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.01, 0.02, 0.07, 0.12, 0.2, -0.5} {
		h.Add(v)
	}
	counts := h.Counts()
	// [0,.05): 0.01,0.02; [.05,.1): 0.07; [.1,.15): 0.12; overflow: 0.2.
	want := []int{2, 1, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (%v)", i, counts[i], want[i], counts)
		}
	}
	if h.Underflow() != 1 {
		t.Errorf("Underflow=%d", h.Underflow())
	}
	if h.Total() != 6 {
		t.Errorf("Total=%d", h.Total())
	}
	fr := h.Fractions()
	if math.Abs(fr[0]-2.0/6.0) > 1e-12 {
		t.Errorf("Fractions=%v", fr)
	}
	if h.Buckets() != 4 {
		t.Errorf("Buckets=%d", h.Buckets())
	}
	if h.BucketLabel(0) != "[0,0.05)" {
		t.Errorf("label %q", h.BucketLabel(0))
	}
	if !strings.Contains(h.BucketLabel(3), "inf") {
		t.Errorf("last label %q", h.BucketLabel(3))
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(1); err == nil {
		t.Error("single edge accepted")
	}
	if _, err := NewHistogram(1, 1); err == nil {
		t.Error("non-increasing edges accepted")
	}
}

func TestHistogramEmptyFractions(t *testing.T) {
	h, _ := NewHistogram(0, 1)
	for _, f := range h.Fractions() {
		if f != 0 {
			t.Error("empty histogram fractions should be zero")
		}
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean=%v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("empty geomean")
	}
	if GeoMean([]float64{1, 0, 4}) != 0 {
		t.Error("non-positive geomean")
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean=%v", got)
	}
}

func TestTable(t *testing.T) {
	tbl := NewTable("alpha", "accuracy")
	tbl.AddRow(0.1, 0.987654)
	tbl.AddRow(0.2, 1.0)
	tbl.AddRow("x", 3)
	out := tbl.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "0.9877") {
		t.Errorf("table output:\n%s", out)
	}
	if !strings.Contains(out, "1\n") && !strings.Contains(out, "1  ") {
		t.Errorf("integral float not compacted:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + dashes + 3 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}
