// Package stats provides the small numeric and formatting helpers used by
// the experiment drivers: histograms (Figure 13's missing-pattern
// distribution), means, and aligned text tables for experiment output.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
)

// Histogram counts values into half-open buckets [edge[i], edge[i+1]), with
// an implicit overflow bucket for values at or beyond the last edge and an
// underflow bucket for values below the first.
type Histogram struct {
	edges  []float64
	counts []int
	under  int
	total  int
}

// NewHistogram builds a histogram over strictly increasing edges.
func NewHistogram(edges ...float64) (*Histogram, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("stats: need at least 2 edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("stats: edges not increasing at %d", i)
		}
	}
	return &Histogram{edges: edges, counts: make([]int, len(edges))}, nil
}

// Add counts one value.
func (h *Histogram) Add(v float64) {
	h.total++
	if v < h.edges[0] {
		h.under++
		return
	}
	for i := 1; i < len(h.edges); i++ {
		if v < h.edges[i] {
			h.counts[i-1]++
			return
		}
	}
	h.counts[len(h.counts)-1]++ // overflow bucket
}

// Counts returns the per-bucket counts; the last entry is the overflow
// bucket (values >= the final edge).
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// Underflow returns the count of values below the first edge.
func (h *Histogram) Underflow() int { return h.under }

// Total returns the number of added values.
func (h *Histogram) Total() int { return h.total }

// Fractions returns per-bucket fractions of the total (zeros when empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// BucketLabel renders bucket i as "[lo,hi)" (the last as "[lo,∞)").
func (h *Histogram) BucketLabel(i int) string {
	if i == len(h.counts)-1 {
		return fmt.Sprintf("[%g,inf)", h.edges[i])
	}
	return fmt.Sprintf("[%g,%g)", h.edges[i], h.edges[i+1])
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive xs (0 if any is <= 0 or the
// slice is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Table renders aligned experiment tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.header) > 0 {
		if _, err := fmt.Fprintln(tw, strings.Join(t.header, "\t")); err != nil {
			return err
		}
		dashes := make([]string, len(t.header))
		for i, h := range t.header {
			dashes[i] = strings.Repeat("-", len(h))
		}
		if _, err := fmt.Fprintln(tw, strings.Join(dashes, "\t")); err != nil {
			return err
		}
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("stats: table render failed: %v", err)
	}
	return b.String()
}
