package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// samplingWorld is the shared workload of the sampling experiments (Figures
// 10–13): an m=20 concentrated-noise test database with planted motifs and a
// narrow mining space (the counts under study — ambiguous patterns, error
// rates — are driven by the Chernoff machinery, not by lattice depth).
type samplingWorld struct {
	test   *seqdb.MemDB
	comp   *compat.Matrix
	m      int
	maxLen int
	maxGap int
}

func newSamplingWorld(s Scale, alpha float64, seed int64) (*samplingWorld, error) {
	rng := rand.New(rand.NewSource(seed))
	const m = 20
	motifs := []pattern.Pattern{
		{0, 1, 2}, {6, 7, 8}, {12, 13, 14},
	}
	weights := []float64{0.25, 0.2, 0.15}
	n := pick(s, 1000, 3000, 10000)
	std := seqdb.NewMemDB(nil)
	for i := 0; i < n; i++ {
		l := 12 + rng.Intn(9)
		seq := make([]pattern.Symbol, l)
		for j := range seq {
			seq[j] = pattern.Symbol(rng.Intn(m))
		}
		u := rng.Float64()
		for mi, motif := range motifs {
			u -= weights[mi]
			if u >= 0 {
				continue
			}
			pos := rng.Intn(l - motif.Len() + 1)
			copy(seq[pos:], motif)
			break
		}
		std.Append(seq)
	}
	sub, comp, err := pairChannel(m, alpha)
	if err != nil {
		return nil, err
	}
	test, err := noisyCopy(std, sub, alpha, rng)
	if err != nil {
		return nil, err
	}
	return &samplingWorld{test: test, comp: comp, m: m, maxLen: 3, maxGap: 0}, nil
}

// phase2 runs Phases 1+2 on the world with the given sample size and delta.
// useSpread toggles Claim 4.2's restricted spread (the Figure 11(b)
// ablation: useSpread=false classifies with the default spread R=1).
func (w *samplingWorld) phase2(n int, minMatch, delta float64, useSpread bool, rng *rand.Rand) (*miner.Result, error) {
	symbolMatch, sample, err := core.Phase1(w.test, w.comp, n, rng)
	if err != nil {
		return nil, err
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("experiments: empty sample")
	}
	opts := miner.Options{MaxLen: w.maxLen, MaxGap: w.maxGap}
	if useSpread {
		return miner.SampleChernoff(w.m, miner.MatchSampleValuer(w.comp, sample),
			symbolMatch, minMatch, delta, len(sample), opts)
	}
	// Ablation: identical engine, but the classifier ignores the restricted
	// spread and uses the full range R=1 (level 1 stays exactly labeled).
	cls, err := newUnitSpreadClassifier(minMatch, delta, len(sample))
	if err != nil {
		return nil, err
	}
	e := &miner.Engine{
		M:           w.m,
		Opts:        opts,
		Value:       miner.MatchSampleValuer(w.comp, sample),
		SymbolMatch: symbolMatch,
		MinMatch:    minMatch,
		Classify:    cls,
	}
	return e.Run()
}
