package experiments

import "testing"

func TestFig7SmallShape(t *testing.T) {
	res, err := Fig7(Fig7Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("workload: %s, |R(k>=%d)|=%d", res.Workload, res.Config.MinK, res.RefSize)
	t.Logf("\n%s", res.Table())
	t.Logf("\n%s", res.LevelTable())
	if res.RefSize == 0 {
		t.Fatal("empty reference set")
	}
	if len(res.Rows) != 7 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	// α=0: no noise, identity-equivalent matrices → both models exact.
	r0 := res.Rows[0]
	if r0.SupportAccuracy < 0.999 || r0.SupportCompleteness < 0.999 ||
		r0.MatchAccuracy < 0.999 || r0.MatchCompleteness < 0.999 {
		t.Errorf("α=0 should be exact: %+v", r0)
	}
	// The paper's headline robustness claim: the match model's completeness
	// stays high across the whole sweep while the support model degrades.
	last := res.Rows[len(res.Rows)-1]
	if last.MatchCompleteness <= last.SupportCompleteness {
		t.Errorf("α=0.6: match completeness %v should exceed support %v",
			last.MatchCompleteness, last.SupportCompleteness)
	}
	if last.SupportCompleteness > 0.6 {
		t.Errorf("α=0.6: support completeness %v should have degraded", last.SupportCompleteness)
	}
	for _, row := range res.Rows {
		if row.MatchCompleteness < 0.9 {
			t.Errorf("α=%v: match completeness dropped to %v", row.Alpha, row.MatchCompleteness)
		}
		// Up to mutation-partner equivalence the match model recovers the
		// right structure even when plain accuracy punishes it.
		if row.MatchClassAccuracy < row.MatchAccuracy-1e-9 {
			t.Errorf("α=%v: class accuracy %v below plain accuracy %v",
				row.Alpha, row.MatchClassAccuracy, row.MatchAccuracy)
		}
	}
}
