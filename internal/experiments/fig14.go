package experiments

import (
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/maxminer"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/stats"
)

// Fig14Config parameterizes the three-algorithm performance comparison
// (§5.6, Figure 14): the probabilistic algorithm with border collapsing,
// the sampling-based level-wise search, and the adapted Max-Miner, over a
// range of match thresholds on a disk-resident database.
type Fig14Config struct {
	Scale Scale
	Seed  int64
	Alpha float64 // noise level; 0 = 0.3
	// Thresholds is the min_match sweep (descending); nil = defaults.
	Thresholds []float64
	// SampleSize and MemBudget shape the probabilistic runs. 0 = defaults.
	SampleSize int
	MemBudget  int
	// Dir holds the on-disk database; "" = a temp dir.
	Dir string
}

func (c *Fig14Config) setDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.Thresholds == nil {
		c.Thresholds = []float64{0.13, 0.11, 0.095, 0.08}
	}
	if c.SampleSize == 0 {
		c.SampleSize = pick(c.Scale, 800, 1500, 3000)
	}
	if c.MemBudget == 0 {
		c.MemBudget = pick(c.Scale, 10, 20, 40)
	}
}

// Fig14Row reports one threshold. (The paper-verbatim implicit collapse is
// not a column here: its lattice is gap-unbounded, so in this MaxGap=0
// world it resolves a strictly larger region and the scan counts would not
// be comparable; BenchmarkImplicitCollapse covers it on a matched space.)
type Fig14Row struct {
	MinMatch float64
	// Per-algorithm CPU time (Figure 14(a)).
	CollapseTime, LevelWiseTime, MaxMinerTime time.Duration
	// Per-algorithm full database scans (Figure 14(b)).
	CollapseScans, LevelWiseScans, MaxMinerScans int
	// Patterns evaluated against the full database (Figure 14(c)'s
	// finalization effort: the level-wise search probes far more).
	CollapseProbed, LevelWiseProbed, MaxMinerCounted int
	// Frequent patterns found (identical across algorithms by construction;
	// reported for sanity).
	Frequent int
}

// Fig14Result bundles the sweep.
type Fig14Result struct {
	Config Fig14Config
	Rows   []Fig14Row
}

// fig14World builds the deep-border workload of the performance comparison:
// five long motif families over a 60-symbol alphabet at low noise, so the
// pattern values form a dense per-level ladder (ratio β ≈ 0.9 per level) and
// the sample-estimated border is a band spanning several lattice levels —
// the regime the paper's §5.6 discussion attributes the level-wise search's
// many scans to ("the match value usually changes very little from level to
// level ... especially when the pattern is long").
func fig14World(s Scale, alpha float64, seed int64) (*samplingWorld, error) {
	rng := rand.New(rand.NewSource(seed))
	const m, motifLen, families = 60, 10, 5
	n := pick(s, 3000, 6000, 15000)
	std := seqdb.NewMemDB(nil)
	for i := 0; i < n; i++ {
		l := 14 + rng.Intn(7)
		seq := make([]pattern.Symbol, l)
		for j := range seq {
			seq[j] = pattern.Symbol(rng.Intn(m))
		}
		if f := rng.Float64(); f < 0.19*families {
			family := int(f / 0.19)
			pos := rng.Intn(l - motifLen + 1)
			for j := 0; j < motifLen; j++ {
				seq[pos+j] = pattern.Symbol(family*motifLen + j)
			}
		}
		std.Append(seq)
	}
	sub, comp, err := pairChannel(m, alpha)
	if err != nil {
		return nil, err
	}
	test, err := noisyCopy(std, sub, alpha, rng)
	if err != nil {
		return nil, err
	}
	return &samplingWorld{test: test, comp: comp, m: m, maxLen: motifLen, maxGap: 0}, nil
}

// Fig14 runs the performance comparison on a disk-resident database.
func Fig14(cfg Fig14Config) (*Fig14Result, error) {
	cfg.setDefaults()
	w, err := fig14World(cfg.Scale, cfg.Alpha, cfg.Seed+14)
	if err != nil {
		return nil, err
	}
	dir := cfg.Dir
	if dir == "" {
		dir, err = os.MkdirTemp("", "lsp-fig14-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	path := filepath.Join(dir, "fig14.lsq")
	if err := seqdb.WriteFile(path, w.test); err != nil {
		return nil, err
	}
	disk, err := seqdb.OpenFile(path)
	if err != nil {
		return nil, err
	}

	res := &Fig14Result{Config: cfg}
	for _, minMatch := range cfg.Thresholds {
		row := Fig14Row{MinMatch: minMatch}

		mineWith := func(fin core.Finalizer) (*core.Result, time.Duration, error) {
			disk.ResetScans()
			start := time.Now()
			r, err := core.Mine(disk, w.comp, core.Config{
				MinMatch:   minMatch,
				SampleSize: cfg.SampleSize,
				MaxLen:     w.maxLen,
				MaxGap:     w.maxGap,
				MemBudget:  cfg.MemBudget,
				Finalizer:  fin,
				Rng:        rand.New(rand.NewSource(cfg.Seed + 140)),
			})
			return r, time.Since(start), err
		}

		bc, bcTime, err := mineWith(core.BorderCollapsing)
		if err != nil {
			return nil, err
		}
		row.CollapseTime, row.CollapseScans = bcTime, bc.Scans
		if bc.Phase3 != nil {
			row.CollapseProbed = bc.Phase3.Probed
		}
		row.Frequent = bc.Frequent.Len()

		lw, lwTime, err := mineWith(core.LevelWise)
		if err != nil {
			return nil, err
		}
		row.LevelWiseTime, row.LevelWiseScans = lwTime, lw.Scans
		if lw.Phase3 != nil {
			row.LevelWiseProbed = lw.Phase3.Probed
		}


		disk.ResetScans()
		start := time.Now()
		mm, err := maxminer.Mine(w.m, miner.MatchDBValuer(disk, w.comp), minMatch,
			miner.Options{MaxLen: w.maxLen, MaxGap: w.maxGap})
		if err != nil {
			return nil, err
		}
		row.MaxMinerTime, row.MaxMinerScans, row.MaxMinerCounted = time.Since(start), mm.Scans, mm.Counted

		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders the sweep (times in milliseconds).
func (r *Fig14Result) Table() *stats.Table {
	t := stats.NewTable("min_match",
		"collapse_ms", "levelwise_ms", "maxminer_ms",
		"collapse_scans", "levelwise_scans", "maxminer_scans",
		"collapse_probed", "levelwise_probed", "maxminer_counted", "frequent")
	for _, row := range r.Rows {
		t.AddRow(row.MinMatch,
			float64(row.CollapseTime.Microseconds())/1000,
			float64(row.LevelWiseTime.Microseconds())/1000,
			float64(row.MaxMinerTime.Microseconds())/1000,
			row.CollapseScans, row.LevelWiseScans, row.MaxMinerScans,
			row.CollapseProbed, row.LevelWiseProbed, row.MaxMinerCounted, row.Frequent)
	}
	return t
}
