package experiments

import (
	"math/rand"

	"repro/internal/blosum"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/stats"
	"repro/internal/support"
)

// BlosumConfig parameterizes the §5.1 in-text BLOSUM experiment: the test
// database is mutated by a BLOSUM50-derived channel and both models mine it
// with threshold MinMatch; the paper reports match accuracy/completeness
// well over 99% versus 70%/50% for support.
type BlosumConfig struct {
	Scale Scale
	Seed  int64
	// Identity is the per-residue stay probability of the mutation channel.
	// 0 = default 0.8.
	Identity float64
	// Lambda scales the BLOSUM scores into mutation odds. 0 = default 0.5.
	Lambda float64
	// MinMatch is the shared threshold. 0 = default 0.0055.
	MinMatch float64
	// MinK as in Fig7. 0 = default 3.
	MinK int
}

func (c *BlosumConfig) setDefaults() {
	if c.Identity == 0 {
		// Twilight-zone homology: at per-residue identity below ~50% the
		// support model's exact occurrences collapse while BLOSUM-guided
		// partial credit keeps the match model informed — the regime where
		// the paper's in-text comparison separates the models (see
		// EXPERIMENTS.md for the per-position decay argument).
		c.Identity = 0.30
	}
	if c.Lambda == 0 {
		c.Lambda = 2.0
	}
	if c.MinMatch == 0 {
		c.MinMatch = 0.0055
	}
	if c.MinK == 0 {
		c.MinK = 3
	}
}

// BlosumResult reports both models' quality under BLOSUM mutation.
type BlosumResult struct {
	Config                               BlosumConfig
	SupportAccuracy, SupportCompleteness float64
	MatchAccuracy, MatchCompleteness     float64
	RefSize                              int
}

// Blosum runs the BLOSUM50 mutation experiment on an amino-acid workload
// with planted motifs.
func Blosum(cfg BlosumConfig) (*BlosumResult, error) {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 50))

	// Amino-acid workload: a fraction of sequences are conserved motifs
	// (planted as whole sequences, so chance flanking extensions cannot
	// enter the reference at the miniature scale — at the paper's 600K
	// sequences the threshold's occurrence count provides that exclusion
	// naturally), the rest random background.
	const m = blosum.M
	maxK := pick(cfg.Scale, 5, 6, 6)
	specs := []motifSpec{{k: 3, plant: 0.30}, {k: maxK, plant: 0.35}}
	motifs := make([]pattern.Pattern, len(specs))
	weights := make([]float64, len(specs))
	for i, sp := range specs {
		p := make(pattern.Pattern, sp.k)
		for j := range p {
			p[j] = pattern.Symbol((i*7 + j*2) % m)
		}
		motifs[i] = p
		weights[i] = sp.plant
	}
	n := pick(cfg.Scale, 1500, 4000, 10000)
	std := seqdb.NewMemDB(nil)
	for i := 0; i < n; i++ {
		u := rng.Float64()
		planted := false
		for mi, motif := range motifs {
			u -= weights[mi]
			if u < 0 {
				std.Append(motif.Clone())
				planted = true
				break
			}
		}
		if planted {
			continue
		}
		l := 12 + rng.Intn(9)
		seq := make([]pattern.Symbol, l)
		for j := range seq {
			seq[j] = pattern.Symbol(rng.Intn(m))
		}
		std.Append(seq)
	}

	refAll, _, err := support.MineBySweep(std, cfg.MinMatch, maxK, 0)
	if err != nil {
		return nil, err
	}
	ref := filterK(refAll, cfg.MinK)

	sub, err := blosum.Channel(cfg.Identity, cfg.Lambda)
	if err != nil {
		return nil, err
	}
	comp, err := blosum.Compatibility(cfg.Identity, cfg.Lambda)
	if err != nil {
		return nil, err
	}
	test, err := datagen.ApplyChannelNoise(std, sub, rng)
	if err != nil {
		return nil, err
	}

	gotS, _, err := support.MineBySweep(test, cfg.MinMatch, maxK, 0)
	if err != nil {
		return nil, err
	}
	// The BLOSUM compatibility matrix is dense but extremely skewed; the
	// window sweep's floor pruning keeps the effective branching small.
	gotM, _, err := match.MineBySweep(test, comp, cfg.MinMatch, maxK, 0)
	if err != nil {
		return nil, err
	}

	qs := eval.Compare(filterK(gotS, cfg.MinK), ref)
	qm := eval.Compare(filterK(gotM, cfg.MinK), ref)
	return &BlosumResult{
		Config:          cfg,
		SupportAccuracy: qs.Accuracy, SupportCompleteness: qs.Completeness,
		MatchAccuracy: qm.Accuracy, MatchCompleteness: qm.Completeness,
		RefSize: ref.Len(),
	}, nil
}

// Table renders the two-model comparison.
func (r *BlosumResult) Table() *stats.Table {
	t := stats.NewTable("model", "accuracy", "completeness")
	t.AddRow("support", r.SupportAccuracy, r.SupportCompleteness)
	t.AddRow("match", r.MatchAccuracy, r.MatchCompleteness)
	return t
}
