package experiments

import "testing"

func TestFig14SmallShape(t *testing.T) {
	res, err := Fig14(Fig14Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Table())
	if len(res.Rows) != 4 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The probabilistic algorithms never scan more than the deterministic
		// look-ahead baseline at low thresholds, and border collapsing never
		// scans more than the level-wise finalizer (the paper's Fig 14(b)).
		if row.CollapseScans > row.LevelWiseScans {
			t.Errorf("min=%v: collapse %d scans > level-wise %d", row.MinMatch, row.CollapseScans, row.LevelWiseScans)
		}
		if row.CollapseScans < 1 || row.MaxMinerScans < 1 {
			t.Errorf("min=%v: degenerate scan counts %+v", row.MinMatch, row)
		}
	}
	// At the lowest threshold the contrast should be visible.
	last := res.Rows[len(res.Rows)-1]
	if last.CollapseScans >= last.MaxMinerScans && last.CollapseProbed > 0 {
		t.Logf("note: collapse %d scans vs maxminer %d at min=%v", last.CollapseScans, last.MaxMinerScans, last.MinMatch)
	}
}

func TestFig15SmallShape(t *testing.T) {
	res, err := Fig15(Fig15Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Table())
	if len(res.Rows) != 4 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	// Paper's Fig 15(a): scans decrease (weakly) as m grows.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.Scans > first.Scans {
		t.Errorf("scans grew with m: %d (m=%d) -> %d (m=%d)", first.Scans, first.M, last.Scans, last.M)
	}
	for _, row := range res.Rows {
		if row.Frequent == 0 {
			t.Errorf("m=%d: no frequent patterns found", row.M)
		}
	}
}
