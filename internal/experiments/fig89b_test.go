package experiments

import "testing"

func TestFig8SmallShape(t *testing.T) {
	res, err := Fig8(Fig8Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Table())
	if len(res.Rows) != 8 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	// e=0 equals the plain α=0.2 run; quality must be positive and the
	// degradation with error moderate (the paper's point).
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.Completeness < 0.95 {
		t.Errorf("e=0 completeness %v", first.Completeness)
	}
	if last.Completeness < 0.6 {
		t.Errorf("e=0.14 completeness %v degraded more than moderately", last.Completeness)
	}
}

func TestFig9SmallShape(t *testing.T) {
	res, err := Fig9(Fig9Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Table())
	if len(res.Rows) < 3 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	// The match model keeps at least as many candidates alive at every
	// level, and strictly more somewhere past level 1 (the paper's point).
	more := false
	for _, row := range res.Rows {
		if row.MatchCandidates < row.SupportCandidates {
			t.Errorf("k=%d: match candidates %d < support %d", row.K, row.MatchCandidates, row.SupportCandidates)
		}
		if row.K > 1 && row.MatchCandidates > row.SupportCandidates {
			more = true
		}
	}
	if !more {
		t.Error("match model never had more candidates than support")
	}
}

func TestBlosumSmallShape(t *testing.T) {
	res, err := Blosum(BlosumConfig{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("|R|=%d\n%s", res.RefSize, res.Table())
	if res.RefSize == 0 {
		t.Fatal("empty reference")
	}
	if res.MatchCompleteness <= res.SupportCompleteness {
		t.Errorf("match completeness %v should exceed support %v", res.MatchCompleteness, res.SupportCompleteness)
	}
	if res.MatchAccuracy <= res.SupportAccuracy {
		t.Errorf("match accuracy %v should exceed support %v", res.MatchAccuracy, res.SupportAccuracy)
	}
	if res.MatchCompleteness < 0.85 {
		t.Errorf("match completeness too low: %v", res.MatchCompleteness)
	}
}
