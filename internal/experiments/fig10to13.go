package experiments

import (
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/chernoff"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// newUnitSpreadClassifier builds a Classify function that ignores the
// per-pattern restricted spread (the R=1 baseline of Figure 11(b)).
func newUnitSpreadClassifier(minMatch, delta float64, n int) (func(pattern.Pattern, float64, float64) chernoff.Label, error) {
	cls, err := chernoff.NewClassifier(minMatch, delta, n)
	if err != nil {
		return nil, err
	}
	return func(_ pattern.Pattern, v, _ float64) chernoff.Label {
		return cls.Classify(v, 1)
	}, nil
}

// ---- Figure 10: ambiguous patterns vs sample size ----

// Fig10Config parameterizes the sample-size experiment (§5.3).
type Fig10Config struct {
	Scale    Scale
	Seed     int64
	Alphas   []float64 // nil = {0.1, 0.3, 0.5}
	Samples  []int     // nil = {30, 60, 125, 250, 500}
	MinMatch float64   // 0 = 0.01
	Delta    float64   // 0 = 1e-4
}

func (c *Fig10Config) setDefaults() {
	if c.Alphas == nil {
		c.Alphas = []float64{0.1, 0.3, 0.5}
	}
	if c.Samples == nil {
		c.Samples = pick(c.Scale,
			[]int{30, 60, 125, 250, 500},
			[]int{50, 100, 250, 500, 1000, 2000},
			[]int{100, 250, 500, 1000, 2500, 5000})
	}
	if c.MinMatch == 0 {
		c.MinMatch = 0.08
	}
	if c.Delta == 0 {
		c.Delta = 1e-4
	}
}

// Fig10Row reports ambiguous counts for one sample size across the alphas.
type Fig10Row struct {
	SampleSize int
	Ambiguous  []int // aligned with Config.Alphas
}

// Fig10Result bundles the sweep.
type Fig10Result struct {
	Config Fig10Config
	Rows   []Fig10Row
}

// Fig10 counts ambiguous patterns as a function of sample size.
func Fig10(cfg Fig10Config) (*Fig10Result, error) {
	cfg.setDefaults()
	res := &Fig10Result{Config: cfg}
	worlds := make([]*samplingWorld, len(cfg.Alphas))
	for i, alpha := range cfg.Alphas {
		w, err := newSamplingWorld(cfg.Scale, alpha, cfg.Seed+10)
		if err != nil {
			return nil, err
		}
		worlds[i] = w
	}
	for _, n := range cfg.Samples {
		row := Fig10Row{SampleSize: n}
		for i := range cfg.Alphas {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(1000*i) + int64(n)))
			p2, err := worlds[i].phase2(n, cfg.MinMatch, cfg.Delta, true, rng)
			if err != nil {
				return nil, err
			}
			row.Ambiguous = append(row.Ambiguous, p2.Ambiguous.Len())
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table renders ambiguous counts per sample size.
func (r *Fig10Result) Table() *stats.Table {
	header := []string{"samples"}
	for _, a := range r.Config.Alphas {
		header = append(header, "ambiguous(alpha="+trimFloat(a)+")")
	}
	t := stats.NewTable(header...)
	for _, row := range r.Rows {
		cells := []any{row.SampleSize}
		for _, c := range row.Ambiguous {
			cells = append(cells, c)
		}
		t.AddRow(cells...)
	}
	return t
}

func trimFloat(a float64) string {
	return strconv.FormatFloat(a, 'g', 3, 64)
}

// ---- Figure 11: effects of the restricted spread R ----

// Fig11Config parameterizes the spread experiment (§5.4).
type Fig11Config struct {
	Scale      Scale
	Seed       int64
	Alphas     []float64 // nil = {0.1, 0.3, 0.5}
	SampleSize int       // 0 = 250
	MinMatch   float64   // 0 = 0.01
	Delta      float64   // 0 = 1e-4
}

func (c *Fig11Config) setDefaults() {
	if c.Alphas == nil {
		c.Alphas = []float64{0.1, 0.3, 0.5}
	}
	if c.SampleSize == 0 {
		c.SampleSize = pick(c.Scale, 250, 500, 1000)
	}
	if c.MinMatch == 0 {
		c.MinMatch = 0.08
	}
	if c.Delta == 0 {
		c.Delta = 1e-4
	}
}

// Fig11SpreadRow is the average restricted spread per level (Figure 11(a)).
type Fig11SpreadRow struct {
	K       int
	Spreads []float64 // aligned with Config.Alphas
}

// Fig11RatioRow is the ambiguous-count ratio restricted/unit (Figure 11(b)).
type Fig11RatioRow struct {
	Alpha                float64
	AmbiguousRestricted  int
	AmbiguousUnitSpread  int
	Ratio                float64
}

// Fig11Result bundles both series.
type Fig11Result struct {
	Config  Fig11Config
	Spreads []Fig11SpreadRow
	Ratios  []Fig11RatioRow
}

// Fig11 measures the restricted spread's magnitude and pruning power.
func Fig11(cfg Fig11Config) (*Fig11Result, error) {
	cfg.setDefaults()
	res := &Fig11Result{Config: cfg}
	perLevel := make(map[int][]float64) // level -> per-alpha mean spread
	for ai, alpha := range cfg.Alphas {
		w, err := newSamplingWorld(cfg.Scale, alpha, cfg.Seed+11)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(ai)))
		restricted, err := w.phase2(cfg.SampleSize, cfg.MinMatch, cfg.Delta, true, rng)
		if err != nil {
			return nil, err
		}
		rng = rand.New(rand.NewSource(cfg.Seed + int64(ai)))
		unit, err := w.phase2(cfg.SampleSize, cfg.MinMatch, cfg.Delta, false, rng)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if unit.Ambiguous.Len() > 0 {
			ratio = float64(restricted.Ambiguous.Len()) / float64(unit.Ambiguous.Len())
		}
		res.Ratios = append(res.Ratios, Fig11RatioRow{
			Alpha:               alpha,
			AmbiguousRestricted: restricted.Ambiguous.Len(),
			AmbiguousUnitSpread: unit.Ambiguous.Len(),
			Ratio:               ratio,
		})
		// Average spread per level over every evaluated candidate.
		sums := make(map[int]float64)
		counts := make(map[int]int)
		for key, spread := range restricted.Spreads {
			p, err := pattern.ParseKey(key)
			if err != nil {
				return nil, err
			}
			sums[p.K()] += spread
			counts[p.K()]++
		}
		for k := 1; k <= w.maxLen; k++ {
			for len(perLevel[k]) < ai {
				perLevel[k] = append(perLevel[k], 0)
			}
			mean := 0.0
			if counts[k] > 0 {
				mean = sums[k] / float64(counts[k])
			}
			perLevel[k] = append(perLevel[k], mean)
		}
	}
	for k := 1; ; k++ {
		spreads, ok := perLevel[k]
		if !ok {
			break
		}
		res.Spreads = append(res.Spreads, Fig11SpreadRow{K: k, Spreads: spreads})
	}
	return res, nil
}

// Table renders the Figure 11(a) average spreads.
func (r *Fig11Result) Table() *stats.Table {
	header := []string{"k"}
	for _, a := range r.Config.Alphas {
		header = append(header, "avg_R(alpha="+trimFloat(a)+")")
	}
	t := stats.NewTable(header...)
	for _, row := range r.Spreads {
		cells := []any{row.K}
		for _, s := range row.Spreads {
			cells = append(cells, s)
		}
		t.AddRow(cells...)
	}
	return t
}

// RatioTable renders the Figure 11(b) pruning-power comparison.
func (r *Fig11Result) RatioTable() *stats.Table {
	t := stats.NewTable("alpha", "ambiguous_restrictedR", "ambiguous_R1", "ratio")
	for _, row := range r.Ratios {
		t.AddRow(row.Alpha, row.AmbiguousRestricted, row.AmbiguousUnitSpread, row.Ratio)
	}
	return t
}

// ---- Figure 12: effects of the confidence 1-δ ----

// Fig12Config parameterizes the confidence experiment (§5.5).
type Fig12Config struct {
	Scale      Scale
	Seed       int64
	Alpha      float64   // 0 = 0.3
	Deltas     []float64 // nil = {0.1, 0.01, 0.001, 0.0001}
	SampleSize int       // 0 = 250
	MinMatch   float64   // 0 = 0.01
}

func (c *Fig12Config) setDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.3
	}
	if c.Deltas == nil {
		c.Deltas = []float64{0.1, 0.01, 0.001, 0.0001}
	}
	if c.SampleSize == 0 {
		c.SampleSize = pick(c.Scale, 250, 500, 1000)
	}
	if c.MinMatch == 0 {
		c.MinMatch = 0.08
	}
}

// Fig12Row reports one confidence level.
type Fig12Row struct {
	Confidence float64
	Ambiguous  int
	ErrorRate  float64
}

// Fig12Result bundles the sweep.
type Fig12Result struct {
	Config Fig12Config
	Rows   []Fig12Row
}

// Fig12 measures the ambiguous count and the final error rate as the
// confidence varies. The error rate compares the full three-phase result
// against the exhaustive truth, so it reflects exactly the patterns
// misclassified by the Chernoff bound (Phase 3 resolves ambiguity exactly).
func Fig12(cfg Fig12Config) (*Fig12Result, error) {
	cfg.setDefaults()
	w, err := newSamplingWorld(cfg.Scale, cfg.Alpha, cfg.Seed+12)
	if err != nil {
		return nil, err
	}
	truth, _, err := match.MineBySweep(w.test, w.comp, cfg.MinMatch, w.maxLen, w.maxGap)
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{Config: cfg}
	for _, delta := range cfg.Deltas {
		rng := rand.New(rand.NewSource(cfg.Seed + 120))
		p2, err := w.phase2(cfg.SampleSize, cfg.MinMatch, delta, true, rng)
		if err != nil {
			return nil, err
		}
		full, err := core.Mine(w.test, w.comp, core.Config{
			MinMatch:   cfg.MinMatch,
			Delta:      delta,
			SampleSize: cfg.SampleSize,
			MaxLen:     w.maxLen,
			MaxGap:     w.maxGap,
			MemBudget:  100000,
			Rng:        rand.New(rand.NewSource(cfg.Seed + 120)),
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig12Row{
			Confidence: 1 - delta,
			Ambiguous:  p2.Ambiguous.Len(),
			ErrorRate:  eval.ErrorRate(full.Frequent, truth),
		})
	}
	return res, nil
}

// Table renders the confidence sweep.
func (r *Fig12Result) Table() *stats.Table {
	t := stats.NewTable("confidence", "ambiguous", "error_rate")
	for _, row := range r.Rows {
		t.AddRow(row.Confidence, row.Ambiguous, row.ErrorRate)
	}
	return t
}

// ---- Figure 13: distribution of missed patterns ----

// Fig13Config parameterizes the missed-pattern experiment (§5.5).
type Fig13Config struct {
	Scale      Scale
	Seed       int64
	Alpha      float64 // 0 = 0.3
	Delta      float64 // 0 = 0.85 (deliberately weak, to surface misses)
	SampleSize int     // 0 = 200 (small enough that ε is material)
	MinMatch   float64 // 0 = 0.01
	Rounds     int     // independent repetitions; 0 = 12
}

func (c *Fig13Config) setDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.3
	}
	if c.Delta == 0 {
		c.Delta = 0.85
	}
	if c.SampleSize == 0 {
		c.SampleSize = 400
	}
	if c.MinMatch == 0 {
		c.MinMatch = 0.08
	}
	if c.Rounds == 0 {
		c.Rounds = pick(c.Scale, 12, 30, 60)
	}
}

// Fig13Result is the histogram of missed patterns' relative distance above
// the threshold.
type Fig13Result struct {
	Config    Fig13Config
	Histogram *stats.Histogram
	Missed    int
	Frequent  int // truth size, for context
}

// Fig13 provokes misclassification with a small sample and weak confidence,
// then histograms how far above the threshold the missed patterns really
// are. The paper's theoretical point: the probability of missing a pattern
// decays exponentially with its distance, so misses concentrate near the
// threshold. Misses can only happen to patterns whose true match is close
// to min_match, so the threshold is calibrated against the observed value
// distribution: it is placed just below a quartile of the candidate values,
// guaranteeing a population of near-threshold patterns (at the paper's
// scale the heavy-tailed value distribution provides this for free).
func Fig13(cfg Fig13Config) (*Fig13Result, error) {
	cfg.setDefaults()
	w, err := newSamplingWorld(cfg.Scale, cfg.Alpha, cfg.Seed+13)
	if err != nil {
		return nil, err
	}
	// Calibrate min_match from the value distribution above a low probe
	// threshold.
	_, probeVals, err := match.MineBySweep(w.test, w.comp, cfg.MinMatch/4, w.maxLen, w.maxGap)
	if err != nil {
		return nil, err
	}
	values := make([]float64, 0, len(probeVals))
	for _, v := range probeVals {
		values = append(values, v)
	}
	if len(values) > 8 {
		sort.Float64s(values)
		cfg.MinMatch = values[len(values)*3/5] * 0.99
	}
	truthSet, truthVals, err := match.MineBySweep(w.test, w.comp, cfg.MinMatch, w.maxLen, w.maxGap)
	if err != nil {
		return nil, err
	}
	hist, err := stats.NewHistogram(0, 0.05, 0.10, 0.15)
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{Config: cfg, Histogram: hist, Frequent: truthSet.Len()}
	for round := 0; round < cfg.Rounds; round++ {
		full, err := core.Mine(w.test, w.comp, core.Config{
			MinMatch:   cfg.MinMatch,
			Delta:      cfg.Delta,
			SampleSize: cfg.SampleSize,
			MaxLen:     w.maxLen,
			MaxGap:     w.maxGap,
			MemBudget:  100000,
			Rng:        rand.New(rand.NewSource(cfg.Seed + int64(round))),
		})
		if err != nil {
			return nil, err
		}
		missed := eval.Missed(full.Frequent, truthSet)
		res.Missed += missed.Len()
		for _, d := range eval.MissDistances(missed, truthVals, cfg.MinMatch) {
			hist.Add(d)
		}
	}
	return res, nil
}

// Table renders the histogram as fractions (the paper's Figure 13 bars).
func (r *Fig13Result) Table() *stats.Table {
	t := stats.NewTable("distance_over_threshold", "missed_fraction", "missed_count")
	fr := r.Histogram.Fractions()
	counts := r.Histogram.Counts()
	for i := 0; i < r.Histogram.Buckets(); i++ {
		t.AddRow(r.Histogram.BucketLabel(i), fr[i], counts[i])
	}
	return t
}
