package experiments

import "testing"

func TestFig10SmallShape(t *testing.T) {
	res, err := Fig10(Fig10Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Table())
	if len(res.Rows) != 5 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	// Ambiguity shrinks with sample size for every alpha (paper's Fig 10).
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	for i := range res.Config.Alphas {
		if last.Ambiguous[i] >= first.Ambiguous[i] {
			t.Errorf("alpha=%v: ambiguous grew from %d to %d with more samples",
				res.Config.Alphas[i], first.Ambiguous[i], last.Ambiguous[i])
		}
	}
}

func TestFig11SmallShape(t *testing.T) {
	res, err := Fig11(Fig11Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s\n%s", res.Table(), res.RatioTable())
	// Spread tightens with more non-eternal symbols (paper's Fig 11(a)).
	for ai := range res.Config.Alphas {
		for i := 1; i < len(res.Spreads); i++ {
			if res.Spreads[i].Spreads[ai] > res.Spreads[i-1].Spreads[ai]+1e-9 {
				t.Errorf("alpha idx %d: spread grew from level %d to %d", ai, i, i+1)
			}
		}
	}
	// Restricted spread prunes ambiguity (paper's Fig 11(b)).
	for _, row := range res.Ratios {
		if row.Ratio > 1 {
			t.Errorf("alpha=%v: restricted spread increased ambiguity (ratio %v)", row.Alpha, row.Ratio)
		}
	}
}

func TestFig12SmallShape(t *testing.T) {
	res, err := Fig12(Fig12Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res.Table())
	// Higher confidence -> more ambiguous patterns (wider ε).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Ambiguous < res.Rows[i-1].Ambiguous {
			t.Errorf("ambiguity shrank as confidence grew: %+v", res.Rows)
			break
		}
	}
	// The bound is conservative: even at confidence 0.9 the error rate
	// should be far below delta=0.1.
	if res.Rows[0].ErrorRate > 0.05 {
		t.Errorf("error rate %v at confidence 0.9", res.Rows[0].ErrorRate)
	}
}

func TestFig13SmallShape(t *testing.T) {
	res, err := Fig13(Fig13Config{Scale: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("missed=%d truth=%d\n%s", res.Missed, res.Frequent, res.Table())
	if res.Missed == 0 {
		t.Skip("no misses provoked at this seed; distribution unavailable")
	}
	fr := res.Histogram.Fractions()
	// Misses concentrate near the threshold: the first bucket dominates the
	// far tail (paper: >90% within 5%, none beyond 15%).
	if fr[0] < fr[len(fr)-1] {
		t.Errorf("missed-pattern mass not concentrated near threshold: %v", fr)
	}
}
