// Package experiments implements one driver per table and figure of the
// paper's evaluation (§5). Each driver builds its workload, runs the
// relevant miners, and returns both raw series and a rendered table, so the
// same code backs cmd/lspexp and the repository's benchmarks.
//
// Workload notes (see DESIGN.md's substitution table): the paper mined 600K
// real protein sequences; here a synthetic protein-like generator plants
// motifs of varying length and frequency into background sequences, and a
// noise channel derives the §5.1 test databases. Two channels are provided:
//
//   - uniform: the paper's literal α-model (flip to any other symbol with
//     probability α/(m-1)); its compatibility matrix is dense, so every
//     pattern keeps a positive match and low thresholds explore huge
//     candidate spaces (the Figure 9 effect).
//   - concentrated ("pair"): each symbol mutates to one designated partner
//     (a directed cycle), the synthetic analogue of the paper's motivating
//     amino-acid mutations (N→D, K→R, V→I) and of BLOSUM-style biology. Its
//     compatibility matrix is sparse, and — as the paper's introduction
//     argues — this is the regime where the match model visibly outperforms
//     support, because a mutated position still carries weight C ≈ α
//     instead of α/(m-1).
//
// The robustness experiments (Figures 7/8 and the BLOSUM table) therefore
// use the concentrated channel as the headline workload, with the uniform
// channel available for contrast; EXPERIMENTS.md discusses the calibration.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/compat"
	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// Scale selects workload sizes. Small keeps every figure's driver within
// seconds (the bench default); Medium is a heavier local run; Paper
// approaches the paper's shape parameters (minutes).
type Scale int

const (
	Small Scale = iota
	Medium
	Paper
)

// ParseScale maps a flag value to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small", "":
		return Small, nil
	case "medium":
		return Medium, nil
	case "paper":
		return Paper, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q (small|medium|paper)", s)
	}
}

func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Paper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// pick returns the value for the scale.
func pick[T any](s Scale, small, medium, paper T) T {
	switch s {
	case Medium:
		return medium
	case Paper:
		return paper
	default:
		return small
	}
}

// protein workload constants shared by the robustness experiments.
const proteinM = 20

// motifSpec plants one motif with a target database frequency.
type motifSpec struct {
	k     int     // motif length (contiguous)
	plant float64 // fraction of sequences carrying it
}

// robustnessMotifs spreads motif lengths so threshold crossings happen at
// different noise levels — that spread is what makes the support model's
// quality degrade gradually with α (Figure 7) instead of falling off a
// cliff.
func robustnessMotifs(s Scale) []motifSpec {
	base := []motifSpec{
		{k: 4, plant: 0.55},
		{k: 5, plant: 0.45},
		{k: 6, plant: 0.50},
		{k: 7, plant: 0.40},
		{k: 8, plant: 0.45},
		{k: 9, plant: 0.35},
		{k: 10, plant: 0.40},
	}
	if s == Small {
		return base
	}
	return append(base, motifSpec{k: 12, plant: 0.35}, motifSpec{k: 14, plant: 0.3})
}

// standardProtein builds the standard (noise-free) database and its motifs.
func standardProtein(s Scale, rng *rand.Rand) (*seqdb.MemDB, []pattern.Pattern, error) {
	specs := robustnessMotifs(s)
	motifs := make([]pattern.Pattern, len(specs))
	for i, sp := range specs {
		// Disjoint symbol runs keep motifs from shadowing each other; with
		// m=20 they wrap, which is fine — overlap only raises frequencies.
		p := make(pattern.Pattern, sp.k)
		for j := range p {
			p[j] = pattern.Symbol((i*3 + j) % proteinM)
		}
		motifs[i] = p
	}
	n := pick(s, 400, 1500, 6000)
	db := seqdb.NewMemDB(nil)
	minLen, maxLen := 24, 40
	for i := 0; i < n; i++ {
		l := minLen + rng.Intn(maxLen-minLen+1)
		seq := make([]pattern.Symbol, l)
		for j := range seq {
			seq[j] = pattern.Symbol(rng.Intn(proteinM))
		}
		for mi, motif := range motifs {
			if rng.Float64() >= specs[mi].plant {
				continue
			}
			pos := rng.Intn(l - motif.Len() + 1)
			copy(seq[pos:], motif)
		}
		db.Append(seq)
	}
	return db, motifs, nil
}

// pairChannel is the concentrated noise model: symbols form reciprocal
// mutation pairs (2i ↔ 2i+1, the synthetic analogue of N↔D), and a symbol
// flips to its partner with probability alpha. It returns the generative
// channel (for mutating the standard database) and the Bayes-derived
// compatibility matrix the miner is given. The involution structure matters:
// a substituted position has exactly one compatible alternative, so the
// match model attenuates multi-mutation variants below any sensible
// threshold while the support model grants them full occurrence credit.
func pairChannel(m int, alpha float64) ([][]float64, *compat.Matrix, error) {
	if m%2 != 0 {
		return nil, nil, fmt.Errorf("experiments: pair channel needs even m, got %d", m)
	}
	sub := make([][]float64, m)
	for i := range sub {
		sub[i] = make([]float64, m)
		sub[i][i] = 1 - alpha
		sub[i][i^1] += alpha // partner: 2i <-> 2i+1
	}
	c, err := compat.FromChannel(sub, nil)
	if err != nil {
		return nil, nil, err
	}
	return sub, c, nil
}

// uniformChannel is the paper's literal §5.1 model.
func uniformChannel(m int, alpha float64) ([][]float64, *compat.Matrix, error) {
	sub := make([][]float64, m)
	for i := range sub {
		sub[i] = make([]float64, m)
		for j := range sub[i] {
			if i == j {
				sub[i][j] = 1 - alpha
			} else {
				sub[i][j] = alpha / float64(m-1)
			}
		}
	}
	c, err := compat.UniformNoise(m, alpha)
	if err != nil {
		return nil, nil, err
	}
	return sub, c, nil
}

// NoiseKind selects the §5.1 noise model for the robustness experiments.
type NoiseKind int

const (
	// Concentrated is the pair channel (headline; see package comment).
	Concentrated NoiseKind = iota
	// Uniform is the paper's literal α/(m-1) model.
	Uniform
)

func (k NoiseKind) String() string {
	if k == Uniform {
		return "uniform"
	}
	return "concentrated"
}

// channel dispatches on the noise kind.
func channel(kind NoiseKind, m int, alpha float64) ([][]float64, *compat.Matrix, error) {
	if kind == Uniform {
		return uniformChannel(m, alpha)
	}
	return pairChannel(m, alpha)
}

// noisyCopy mutates db through the channel (alpha=0 short-circuits).
func noisyCopy(db *seqdb.MemDB, sub [][]float64, alpha float64, rng *rand.Rand) (*seqdb.MemDB, error) {
	if alpha == 0 {
		return db, nil
	}
	return datagen.ApplyChannelNoise(db, sub, rng)
}
