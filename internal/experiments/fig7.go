package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/compat"
	"repro/internal/eval"
	"repro/internal/match"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/stats"
	"repro/internal/support"
)

// exhaustiveMatch is the dense-matrix fallback miner with a per-level cap.
func exhaustiveMatch(db seqdb.Scanner, c compat.Source, minMatch float64, maxLen, maxGap int) (*miner.Result, error) {
	return miner.Exhaustive(c.Size(), miner.MatchDBValuer(db, c), minMatch,
		miner.Options{MaxLen: maxLen, MaxGap: maxGap, MaxCandidatesPerLevel: 30000})
}

// Fig7Config parameterizes the §5.1 robustness experiment.
type Fig7Config struct {
	Scale  Scale
	Noise  NoiseKind // Concentrated (default) or Uniform
	Seed   int64
	Alphas []float64 // noise sweep; nil = {0, 0.1, ..., 0.6}
	// MinMatch is the common threshold for R, R'_S and R'_M (paper: 0.001
	// on 600K sequences; scaled here, see EXPERIMENTS.md). 0 = default.
	MinMatch float64
	// LengthAlpha is the fixed noise level of the Figure 7(c,d) per-level
	// breakdown. 0 = default 0.3.
	LengthAlpha float64
	// MinK restricts the quality metrics to patterns with at least MinK
	// non-eternal symbols (short patterns are trivially frequent "floor"
	// patterns in every model and would mask the comparison). 0 = default 4.
	MinK int
}

func (c *Fig7Config) setDefaults() {
	if c.Alphas == nil {
		c.Alphas = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	}
	if c.MinMatch == 0 {
		c.MinMatch = pick(c.Scale, 0.0047, 0.002, 0.0012)
	}
	if c.LengthAlpha == 0 {
		c.LengthAlpha = 0.3
	}
	if c.MinK == 0 {
		c.MinK = 4
	}
}

// Fig7Row is one α of the Figure 7(a,b) sweep. The ClassAccuracy columns
// measure accuracy up to mutation-partner equivalence: at high α the
// observation genuinely cannot distinguish a symbol from its partner (the
// paper's own §3 remark about noise-dominated data), so a miner that returns
// a partner-substituted variant of a true pattern has still recovered the
// correct structure. See EXPERIMENTS.md for why plain accuracy under a
// concentrated channel punishes exactly that correct behavior.
type Fig7Row struct {
	Alpha                                float64
	SupportAccuracy, SupportCompleteness float64
	MatchAccuracy, MatchCompleteness     float64
	SupportClassAccuracy                 float64
	MatchClassAccuracy                   float64
}

// Fig7LevelRow is one pattern level of the Figure 7(c,d) breakdown.
type Fig7LevelRow struct {
	K                                    int
	SupportAccuracy, SupportCompleteness float64
	MatchAccuracy, MatchCompleteness     float64
}

// Fig7Result bundles the sweep and per-level series.
type Fig7Result struct {
	Config   Fig7Config
	Rows     []Fig7Row
	Levels   []Fig7LevelRow
	RefSize  int // |R| restricted to k >= MinK
	MaxK     int
	Workload string
}

// fig7Motifs returns the planted motifs and per-sequence selection weights.
// Weights, alphabet size and the threshold are calibrated together (see
// EXPERIMENTS.md): the smallest motif value under the match model across the
// α sweep is w_min·β_min^k_max where β = (1-α)²+α² ≥ 0.5 for the
// concentrated channel, and that value must clear the threshold with margin;
// simultaneously the occurrence count ⌈τ·N⌉ must exceed the frequency of
// chance flanking extensions (≈ w·N/m), the same inequality the paper's
// 600K-sequence corpus provides at m=20 and min_match=0.001.
func fig7Motifs(s Scale, m int) ([]pattern.Pattern, []float64, int) {
	var specs []motifSpec
	var maxK int
	switch s {
	case Small:
		specs = []motifSpec{
			{k: 4, plant: 0.20}, {k: 4, plant: 0.17},
			{k: 5, plant: 0.21}, {k: 5, plant: 0.20}, {k: 5, plant: 0.19},
		}
		maxK = 5
	case Medium:
		specs = []motifSpec{
			{k: 4, plant: 0.17}, {k: 4, plant: 0.15},
			{k: 5, plant: 0.16}, {k: 5, plant: 0.14},
			{k: 6, plant: 0.20}, {k: 6, plant: 0.16},
		}
		maxK = 6
	default: // Paper
		specs = []motifSpec{
			{k: 4, plant: 0.11}, {k: 5, plant: 0.11}, {k: 6, plant: 0.11},
			{k: 7, plant: 0.28}, {k: 8, plant: 0.35},
		}
		maxK = 8
	}
	motifs := make([]pattern.Pattern, len(specs))
	weights := make([]float64, len(specs))
	for i, sp := range specs {
		p := make(pattern.Pattern, sp.k)
		for j := range p {
			p[j] = pattern.Symbol((i*11 + j) % m)
		}
		motifs[i] = p
		weights[i] = sp.plant
	}
	return motifs, weights, maxK
}

// fig7Standard builds the standard database: each sequence carries at most
// one motif (selected by weight), so overlapping plants cannot splice
// chimeric frequent patterns into the reference set.
func fig7Standard(s Scale, rng *rand.Rand) (*fig7World, error) {
	m := pick(s, 200, 600, 2000)
	motifs, weights, maxK := fig7Motifs(s, m)
	n := pick(s, 1500, 4000, 10000)
	w := &fig7World{std: seqdb.NewMemDB(nil), maxK: maxK, m: m}
	minLen, maxLen := 12, 20
	for i := 0; i < n; i++ {
		l := minLen + rng.Intn(maxLen-minLen+1)
		seq := make([]pattern.Symbol, l)
		for j := range seq {
			seq[j] = pattern.Symbol(rng.Intn(m))
		}
		u := rng.Float64()
		for mi, motif := range motifs {
			u -= weights[mi]
			if u >= 0 {
				continue
			}
			pos := rng.Intn(l - motif.Len() + 1)
			copy(seq[pos:], motif)
			break
		}
		w.std.Append(seq)
	}
	return w, nil
}

type fig7World struct {
	std  *seqdb.MemDB
	maxK int
	m    int
}

// filterK keeps patterns with at least minK non-eternal symbols.
func filterK(s *pattern.Set, minK int) *pattern.Set {
	out := pattern.NewSet()
	for _, p := range s.Patterns() {
		if p.K() >= minK {
			out.Add(p)
		}
	}
	return out
}

// Fig7 runs the robustness comparison of the support and match models
// (Figures 7(a)–(d)).
func Fig7(cfg Fig7Config) (*Fig7Result, error) {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	world, err := fig7Standard(cfg.Scale, rng)
	if err != nil {
		return nil, err
	}
	std := world.std
	// Contiguous patterns only: with gapped shapes the short-pattern "floor"
	// floods the reference with patterns at 2-3 chance occurrences, which
	// die under any noise in either model and mask the motif signal (see
	// EXPERIMENTS.md). The gapped space is exercised by the other figures.
	maxLen, maxGap := world.maxK, 0

	// Reference R: frequent patterns of the standard database (match under
	// identity == support, §3), restricted to k >= MinK for the metrics.
	refAll, _, err := support.MineBySweep(std, cfg.MinMatch, maxLen, maxGap)
	if err != nil {
		return nil, err
	}
	ref := filterK(refAll, cfg.MinK)

	res := &Fig7Result{
		Config:   cfg,
		RefSize:  ref.Len(),
		MaxK:     world.maxK,
		Workload: fmt.Sprintf("N=%d m=%d motifs k<=%d noise=%s", std.Len(), world.m, world.maxK, cfg.Noise),
	}

	for _, alpha := range cfg.Alphas {
		sub, comp, err := channel(cfg.Noise, world.m, alpha)
		if err != nil {
			return nil, err
		}
		test, err := noisyCopy(std, sub, alpha, rng)
		if err != nil {
			return nil, err
		}
		gotS, _, err := support.MineBySweep(test, cfg.MinMatch, maxLen, maxGap)
		if err != nil {
			return nil, err
		}
		gotM, _, err := mineMatchModel(test, comp, cfg, maxLen, maxGap)
		if err != nil {
			return nil, err
		}
		row := Fig7Row{Alpha: alpha}
		fs, fm := filterK(gotS, cfg.MinK), filterK(gotM, cfg.MinK)
		qs := eval.Compare(fs, ref)
		qm := eval.Compare(fm, ref)
		row.SupportAccuracy, row.SupportCompleteness = qs.Accuracy, qs.Completeness
		row.MatchAccuracy, row.MatchCompleteness = qm.Accuracy, qm.Completeness
		if cfg.Noise == Concentrated {
			row.SupportClassAccuracy = classAccuracy(fs, ref)
			row.MatchClassAccuracy = classAccuracy(fm, ref)
		}
		res.Rows = append(res.Rows, row)

		if alpha == cfg.LengthAlpha {
			res.Levels = levelBreakdown(gotS, gotM, refAll, world.maxK)
		}
	}
	return res, nil
}

// mineMatchModel picks the sweep miner for sparse matrices and the
// candidate-driven miner (with a safety cap) for dense ones.
func mineMatchModel(test seqdb.Scanner, comp compat.Source, cfg Fig7Config, maxLen, maxGap int) (*pattern.Set, map[string]float64, error) {
	if cfg.Noise == Concentrated {
		return match.MineBySweep(test, comp, cfg.MinMatch, maxLen, maxGap)
	}
	// Dense matrix: the window sweep would enumerate m^k combinations, so
	// fall back to the candidate-driven exhaustive miner with a per-level
	// cap (reported in EXPERIMENTS.md).
	r, err := exhaustiveMatch(test, comp, cfg.MinMatch, maxLen, maxGap)
	if err != nil {
		return nil, nil, err
	}
	return r.Frequent, r.Values, nil
}

// levelBreakdown computes Figure 7(c,d): accuracy and completeness per
// number of non-eternal symbols.
func levelBreakdown(gotS, gotM, ref *pattern.Set, maxK int) []Fig7LevelRow {
	perLevel := func(s *pattern.Set, k int) *pattern.Set {
		out := pattern.NewSet()
		for _, p := range s.Patterns() {
			if p.K() == k {
				out.Add(p)
			}
		}
		return out
	}
	var rows []Fig7LevelRow
	for k := 1; k <= maxK; k++ {
		refK := perLevel(ref, k)
		if refK.Len() == 0 {
			continue
		}
		sK, mK := perLevel(gotS, k), perLevel(gotM, k)
		qs, qm := eval.Compare(sK, refK), eval.Compare(mK, refK)
		rows = append(rows, Fig7LevelRow{
			K:               k,
			SupportAccuracy: qs.Accuracy, SupportCompleteness: qs.Completeness,
			MatchAccuracy: qm.Accuracy, MatchCompleteness: qm.Completeness,
		})
	}
	return rows
}

// classAccuracy is accuracy after canonicalizing every symbol to the
// smaller member of its mutation pair (2i ↔ 2i+1).
func classAccuracy(got, ref *pattern.Set) float64 {
	canon := func(p pattern.Pattern) pattern.Pattern {
		q := p.Clone()
		for i, d := range q {
			if !d.IsEternal() {
				q[i] = d &^ 1
			}
		}
		return q
	}
	canonRef := pattern.NewSet()
	for _, p := range ref.Patterns() {
		canonRef.Add(canon(p))
	}
	if got.Len() == 0 {
		return 1
	}
	hit := 0
	for _, p := range got.Patterns() {
		if canonRef.Contains(canon(p)) {
			hit++
		}
	}
	return float64(hit) / float64(got.Len())
}

// Table renders the α sweep (Figure 7(a,b)).
func (r *Fig7Result) Table() *stats.Table {
	t := stats.NewTable("alpha", "support_acc", "support_comp", "match_acc", "match_comp", "support_acc_class", "match_acc_class")
	for _, row := range r.Rows {
		t.AddRow(row.Alpha, row.SupportAccuracy, row.SupportCompleteness, row.MatchAccuracy, row.MatchCompleteness,
			row.SupportClassAccuracy, row.MatchClassAccuracy)
	}
	return t
}

// LevelTable renders the per-level breakdown (Figure 7(c,d)).
func (r *Fig7Result) LevelTable() *stats.Table {
	t := stats.NewTable("k", "support_acc", "support_comp", "match_acc", "match_comp")
	for _, row := range r.Levels {
		t.AddRow(row.K, row.SupportAccuracy, row.SupportCompleteness, row.MatchAccuracy, row.MatchCompleteness)
	}
	return t
}
