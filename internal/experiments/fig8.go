package experiments

import (
	"math/rand"

	"repro/internal/eval"
	"repro/internal/match"
	"repro/internal/stats"
	"repro/internal/support"
)

// Fig8Config parameterizes the matrix-error robustness experiment (§5.1,
// Figure 8): the test database is generated at a fixed noise level, but the
// compatibility matrix handed to the miner has its diagonal perturbed by e%
// (renormalized), modeling an empirically estimated matrix.
type Fig8Config struct {
	Scale Scale
	Seed  int64
	// Alpha is the (true) noise level of the test database. 0 = default 0.2.
	Alpha float64
	// Errors is the sweep of diagonal error fractions; nil = {0 … 0.14}.
	Errors []float64
	// MinMatch and MinK as in Fig7. 0 = Fig7 defaults.
	MinMatch float64
	MinK     int
}

func (c *Fig8Config) setDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.2
	}
	if c.Errors == nil {
		c.Errors = []float64{0, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14}
	}
	if c.MinMatch == 0 {
		c.MinMatch = pick(c.Scale, 0.0047, 0.002, 0.0012)
	}
	if c.MinK == 0 {
		c.MinK = 4
	}
}

// Fig8Row is one error level of the sweep.
type Fig8Row struct {
	Error                  float64
	Accuracy, Completeness float64
}

// Fig8Result bundles the sweep.
type Fig8Result struct {
	Config Fig8Config
	Rows   []Fig8Row
}

// Fig8 measures the match model's robustness to error in the compatibility
// matrix itself.
func Fig8(cfg Fig8Config) (*Fig8Result, error) {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 8))
	world, err := fig7Standard(cfg.Scale, rng)
	if err != nil {
		return nil, err
	}
	maxLen, maxGap := world.maxK, 0

	refAll, _, err := support.MineBySweep(world.std, cfg.MinMatch, maxLen, maxGap)
	if err != nil {
		return nil, err
	}
	ref := filterK(refAll, cfg.MinK)

	sub, comp, err := pairChannel(world.m, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	test, err := noisyCopy(world.std, sub, cfg.Alpha, rng)
	if err != nil {
		return nil, err
	}

	res := &Fig8Result{Config: cfg}
	for _, e := range cfg.Errors {
		m := comp
		if e > 0 {
			m, err = comp.Perturb(e, rng)
			if err != nil {
				return nil, err
			}
		}
		got, _, err := match.MineBySweep(test, m, cfg.MinMatch, maxLen, maxGap)
		if err != nil {
			return nil, err
		}
		q := eval.Compare(filterK(got, cfg.MinK), ref)
		res.Rows = append(res.Rows, Fig8Row{Error: e, Accuracy: q.Accuracy, Completeness: q.Completeness})
	}
	return res, nil
}

// Table renders the sweep.
func (r *Fig8Result) Table() *stats.Table {
	t := stats.NewTable("matrix_error", "match_acc", "match_comp")
	for _, row := range r.Rows {
		t.AddRow(row.Error, row.Accuracy, row.Completeness)
	}
	return t
}
