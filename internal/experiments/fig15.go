package experiments

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/stats"
)

// Fig15Config parameterizes the alphabet-size scalability experiment (§5.7,
// Figure 15): synthetic databases with m distinct symbols and a sparse
// compatibility matrix (each symbol compatible with a bounded set of
// others), mined by the probabilistic algorithm.
type Fig15Config struct {
	Scale Scale
	Seed  int64
	// Ms is the alphabet-size sweep. nil = scale defaults.
	Ms []int
	// Alpha is the substitution probability. 0 = 0.2.
	Alpha float64
	// MinMatch, SampleSize, MemBudget: 0 = defaults.
	MinMatch   float64
	SampleSize int
	MemBudget  int
}

func (c *Fig15Config) setDefaults() {
	if c.Ms == nil {
		c.Ms = pick(c.Scale,
			[]int{20, 50, 200, 1000},
			[]int{20, 100, 1000, 3000},
			[]int{20, 100, 1000, 10000})
	}
	if c.Alpha == 0 {
		c.Alpha = 0.2
	}
	if c.MinMatch == 0 {
		// High enough that even the smallest alphabet's wide Chernoff bound
		// (symbol matches near 1 at m=20) leaves ε below the threshold.
		c.MinMatch = 0.05
	}
	if c.SampleSize == 0 {
		c.SampleSize = pick(c.Scale, 1600, 2500, 4000)
	}
	if c.MemBudget == 0 {
		c.MemBudget = pick(c.Scale, 4000, 8000, 20000)
	}
}

// Fig15Row reports one alphabet size.
type Fig15Row struct {
	M         int
	Scans     int
	Time      time.Duration
	Ambiguous int
	Frequent  int
}

// Fig15Result bundles the sweep.
type Fig15Result struct {
	Config Fig15Config
	Rows   []Fig15Row
}

// Fig15 measures scans and response time versus the number of distinct
// symbols. The compatibility matrix is held in the sparse representation
// (O(non-zeros) storage), which is this implementation's answer to the
// paper's §6 remark that dense storage degrades at very large m; Phase 2
// runs as a window sweep, so the pipeline never materializes an m×m array.
func Fig15(cfg Fig15Config) (*Fig15Result, error) {
	cfg.setDefaults()
	const maxLen, maxGap = 3, 0
	res := &Fig15Result{Config: cfg}
	for _, m := range cfg.Ms {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(m)))
		density := 12.0 / float64(m-1)
		if density > 0.1 {
			density = 0.1
		}
		comp, mut, err := datagen.SparseNoise(m, cfg.Alpha, density, rng)
		if err != nil {
			return nil, err
		}
		motifs := []pattern.Pattern{
			{0, pattern.Symbol(m / 3), pattern.Symbol(m / 2)},
			{pattern.Symbol(m / 4), pattern.Symbol(2 * m / 3), pattern.Symbol(m - 1)},
		}
		n := pick(cfg.Scale, 2400, 4000, 8000)
		std, err := datagen.Uniform(n, 40, m, motifs, 0.25, rng)
		if err != nil {
			return nil, err
		}
		test, err := datagen.ApplyMutator(std, mut, rng)
		if err != nil {
			return nil, err
		}

		start := time.Now()
		run, err := core.MineSweep(test, comp, core.Config{
			MinMatch:   cfg.MinMatch,
			SampleSize: cfg.SampleSize,
			MaxLen:     maxLen,
			MaxGap:     maxGap,
			MemBudget:  cfg.MemBudget,
			Rng:        rand.New(rand.NewSource(cfg.Seed + 150)),
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig15Row{
			M:         m,
			Scans:     run.Scans,
			Time:      time.Since(start),
			Ambiguous: run.Phase2.Ambiguous.Len(),
			Frequent:  run.Frequent.Len(),
		})
	}
	return res, nil
}

// Table renders the scalability sweep (times in milliseconds).
func (r *Fig15Result) Table() *stats.Table {
	t := stats.NewTable("m", "scans", "time_ms", "ambiguous", "frequent")
	for _, row := range r.Rows {
		t.AddRow(row.M, row.Scans, float64(row.Time.Microseconds())/1000, row.Ambiguous, row.Frequent)
	}
	return t
}
