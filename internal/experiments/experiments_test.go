package experiments

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pattern"
)

func TestParseScale(t *testing.T) {
	cases := map[string]Scale{"": Small, "small": Small, "medium": Medium, "paper": Paper}
	for in, want := range cases {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q)=%v,%v", in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
	if Small.String() != "small" || Medium.String() != "medium" || Paper.String() != "paper" {
		t.Error("Scale.String broken")
	}
	if Scale(9).String() == "" {
		t.Error("unknown scale should still render")
	}
}

func TestPick(t *testing.T) {
	if pick(Small, 1, 2, 3) != 1 || pick(Medium, 1, 2, 3) != 2 || pick(Paper, 1, 2, 3) != 3 {
		t.Error("pick broken")
	}
}

func TestPairChannelProperties(t *testing.T) {
	sub, comp, err := pairChannel(10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Generative rows are stochastic with mass only on {i, partner(i)}.
	for i, row := range sub {
		sum := 0.0
		for j, p := range row {
			sum += p
			if p > 0 && j != i && j != i^1 {
				t.Errorf("row %d leaks mass to %d", i, j)
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
	// The Bayes posterior is the involution: C(i, partner)=α, C(i,i)=1-α.
	for i := pattern.Symbol(0); i < 10; i++ {
		if got := comp.C(i, i); math.Abs(got-0.7) > 1e-9 {
			t.Errorf("C(%d,%d)=%v, want 0.7", i, i, got)
		}
		if got := comp.C(i, i^1); math.Abs(got-0.3) > 1e-9 {
			t.Errorf("C(%d,partner)=%v, want 0.3", i, got)
		}
	}
	if _, _, err := pairChannel(9, 0.3); err == nil {
		t.Error("odd alphabet accepted by the pair channel")
	}
}

func TestUniformChannelMatchesCompat(t *testing.T) {
	sub, comp, err := uniformChannel(6, 0.24)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sub {
		if math.Abs(sub[i][i]-0.76) > 1e-12 {
			t.Errorf("row %d diagonal %v", i, sub[i][i])
		}
	}
	if got := comp.C(0, 1); math.Abs(got-0.24/5) > 1e-12 {
		t.Errorf("C(0,1)=%v", got)
	}
	if Uniform.String() != "uniform" || Concentrated.String() != "concentrated" {
		t.Error("NoiseKind.String broken")
	}
}

func TestNoisyCopyZeroAlphaSharesDB(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w, err := newSamplingWorld(Small, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := noisyCopy(w.test, nil, 0, rng)
	if err != nil || got != w.test {
		t.Errorf("alpha=0 should return the database unchanged: %v", err)
	}
}

func TestFilterK(t *testing.T) {
	s := pattern.NewSet(
		pattern.MustNew(0),
		pattern.MustNew(0, 1),
		pattern.MustNew(0, 1, 2),
	)
	f := filterK(s, 2)
	if f.Len() != 2 || f.Contains(pattern.MustNew(0)) {
		t.Errorf("filterK: %v", f.Patterns())
	}
}

func TestClassAccuracy(t *testing.T) {
	ref := pattern.NewSet(pattern.MustNew(0, 2)) // symbols 0 and 2
	// Partner-substituted variant (1 = partner of 0; 3 = partner of 2).
	got := pattern.NewSet(pattern.MustNew(1, 3), pattern.MustNew(4, 5))
	acc := classAccuracy(got, ref)
	if math.Abs(acc-0.5) > 1e-12 {
		t.Errorf("classAccuracy=%v, want 0.5", acc)
	}
	if classAccuracy(pattern.NewSet(), ref) != 1 {
		t.Error("empty result should be vacuously accurate")
	}
}

func TestFig7UniformNoiseVariant(t *testing.T) {
	// The uniform channel goes through the capped candidate-driven miner;
	// just assert the α=0 row is exact and the machinery runs.
	res, err := Fig7(Fig7Config{Scale: Small, Seed: 2, Noise: Uniform, Alphas: []float64{0, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	r0 := res.Rows[0]
	if r0.SupportCompleteness < 0.999 || r0.MatchCompleteness < 0.999 {
		t.Errorf("α=0 not exact under uniform noise: %+v", r0)
	}
	// Uniform dilution filters the match model's spurious variants (at this
	// alphabet size both models come out clean; EXPERIMENTS.md Model notes 3).
	r2 := res.Rows[1]
	if r2.MatchAccuracy < r2.SupportAccuracy {
		t.Errorf("α=0.2 uniform: match accuracy %v below support %v",
			r2.MatchAccuracy, r2.SupportAccuracy)
	}
	if r2.MatchAccuracy < 0.99 {
		t.Errorf("α=0.2 uniform: match accuracy %v, want ~1 (dilution filtering)", r2.MatchAccuracy)
	}
}

func TestFig13Buckets(t *testing.T) {
	res, err := Fig13(Fig13Config{Scale: Small, Seed: 1, Rounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Histogram.Buckets() != 4 {
		t.Errorf("buckets=%d", res.Histogram.Buckets())
	}
	if res.Frequent == 0 {
		t.Error("empty truth set")
	}
}
