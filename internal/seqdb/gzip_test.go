package seqdb

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pattern"
)

func TestGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.lsqz")
	orig := sampleDB()
	if err := WriteGzipFile(path, orig); err != nil {
		t.Fatal(err)
	}
	db, err := OpenGzipFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != orig.Len() {
		t.Fatalf("Len=%d", db.Len())
	}
	if db.Path() != path {
		t.Errorf("Path=%q", db.Path())
	}
	var got [][]pattern.Symbol
	err = db.Scan(func(id int, seq []pattern.Symbol) error {
		cp := make([]pattern.Symbol, len(seq))
		copy(cp, seq)
		got = append(got, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := orig.Seq(i)
		if len(got[i]) != len(want) {
			t.Fatalf("seq %d length", i)
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("seq %d pos %d", i, j)
			}
		}
	}
	if db.Scans() != 1 {
		t.Errorf("Scans=%d", db.Scans())
	}
	db.ResetScans()
	if db.Scans() != 0 {
		t.Error("ResetScans failed")
	}
}

func TestGzipCompresses(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	db := NewMemDB(nil)
	for i := 0; i < 200; i++ {
		s := make([]pattern.Symbol, 200)
		for j := range s {
			s[j] = pattern.Symbol(rng.Intn(4)) // low-entropy data
		}
		db.Append(s)
	}
	plain := filepath.Join(dir, "a.lsq")
	packed := filepath.Join(dir, "a.lsqz")
	if err := WriteFile(plain, db); err != nil {
		t.Fatal(err)
	}
	if err := WriteGzipFile(packed, db); err != nil {
		t.Fatal(err)
	}
	ps, _ := os.Stat(plain)
	zs, _ := os.Stat(packed)
	if zs.Size() >= ps.Size() {
		t.Errorf("gzip did not compress: %d vs %d bytes", zs.Size(), ps.Size())
	}
}

func TestGzipWriterValidation(t *testing.T) {
	w, err := CreateGzipFile(filepath.Join(t.TempDir(), "x.lsqz"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(nil); err == nil {
		t.Error("empty sequence accepted")
	}
	if err := w.Write([]pattern.Symbol{pattern.Eternal}); err == nil {
		t.Error("eternal symbol accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestGzipAbortedScanDoesNotCount(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.lsqz")
	if err := WriteGzipFile(path, sampleDB()); err != nil {
		t.Fatal(err)
	}
	db, err := OpenGzipFile(path)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("stop")
	err = db.Scan(func(id int, _ []pattern.Symbol) error {
		if id == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || db.Scans() != 0 {
		t.Errorf("err=%v scans=%d", err, db.Scans())
	}
}

func TestOpenAutoDispatch(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "a.lsq")
	packed := filepath.Join(dir, "a.lsqz")
	if err := WriteFile(plain, sampleDB()); err != nil {
		t.Fatal(err)
	}
	if err := WriteGzipFile(packed, sampleDB()); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{plain, packed} {
		db, err := OpenAuto(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if db.Len() != 4 {
			t.Errorf("%s: Len=%d", path, db.Len())
		}
		n := 0
		if err := db.Scan(func(int, []pattern.Symbol) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		if n != 4 {
			t.Errorf("%s: visited %d", path, n)
		}
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("JUNKJUNK"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAuto(bad); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := OpenAuto(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := OpenGzipFile(plain); err == nil {
		t.Error("plain file accepted by gzip opener")
	}
}
