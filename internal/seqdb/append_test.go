package seqdb

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/pattern"
)

func mustAppend(t *testing.T, db *AppendDB, seqs ...[]pattern.Symbol) {
	t.Helper()
	for _, s := range seqs {
		if _, err := db.Append(s); err != nil {
			t.Fatal(err)
		}
	}
}

func collectSeqs(t *testing.T, db Scanner) [][]pattern.Symbol {
	t.Helper()
	var out [][]pattern.Symbol
	err := db.Scan(func(id int, seq []pattern.Symbol) error {
		if id != len(out) {
			t.Fatalf("id %d out of order (want %d)", id, len(out))
		}
		cp := make([]pattern.Symbol, len(seq))
		copy(cp, seq)
		out = append(out, cp)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendDBRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.lsa")
	db, err := CreateAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]pattern.Symbol{{0, 1, 2}, {3}, {4, 4, 1}}
	mustAppend(t, db, want...)
	if got := collectSeqs(t, db); !reflect.DeepEqual(got, want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	if db.Len() != 3 || db.Total() != 3 || db.Start() != 0 {
		t.Fatalf("Len/Total/Start = %d/%d/%d", db.Len(), db.Total(), db.Start())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen read-write and keep appending; then read-only and via OpenAuto.
	db, err = OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustAppend(t, db, []pattern.Symbol{7})
	want = append(want, []pattern.Symbol{7})
	if got := collectSeqs(t, db); !reflect.DeepEqual(got, want) {
		t.Fatalf("after reopen: scan = %v, want %v", got, want)
	}
	ro, err := OpenAppendRead(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectSeqs(t, ro); !reflect.DeepEqual(got, want) {
		t.Fatalf("read-only: scan = %v, want %v", got, want)
	}
	if _, err := ro.Append([]pattern.Symbol{1}); err == nil {
		t.Fatal("append on a read-only log succeeded")
	}
	auto, err := OpenAuto(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := collectSeqs(t, auto); !reflect.DeepEqual(got, want) {
		t.Fatalf("OpenAuto: scan = %v, want %v", got, want)
	}
}

func TestAppendDBScanSince(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.lsa")
	db, err := CreateAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustAppend(t, db, []pattern.Symbol{0}, []pattern.Symbol{1}, []pattern.Symbol{2})
	var abs []int
	cursor, err := db.ScanSince(context.Background(), 0, func(a int, seq []pattern.Symbol) error {
		abs = append(abs, a)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cursor != 3 || !reflect.DeepEqual(abs, []int{0, 1, 2}) {
		t.Fatalf("cursor=%d abs=%v", cursor, abs)
	}
	// Nothing new: the tail scan delivers nothing and keeps the cursor.
	cursor, err = db.ScanSince(context.Background(), cursor, func(a int, seq []pattern.Symbol) error {
		t.Fatalf("unexpected delivery of %d", a)
		return nil
	})
	if err != nil || cursor != 3 {
		t.Fatalf("cursor=%d err=%v", cursor, err)
	}
	mustAppend(t, db, []pattern.Symbol{3}, []pattern.Symbol{4})
	abs = abs[:0]
	cursor, err = db.ScanSince(context.Background(), cursor, func(a int, seq []pattern.Symbol) error {
		abs = append(abs, a)
		return nil
	})
	if err != nil || cursor != 5 || !reflect.DeepEqual(abs, []int{3, 4}) {
		t.Fatalf("cursor=%d abs=%v err=%v", cursor, abs, err)
	}
	if db.Scans() != 0 {
		t.Fatalf("tail scans counted as passes: %d", db.Scans())
	}
}

func TestAppendDBExpire(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.lsa")
	db, err := CreateAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	seqs := [][]pattern.Symbol{{0}, {1}, {2}, {3}, {4}}
	mustAppend(t, db, seqs...)
	if err := db.ExpireBefore(2); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 || db.Start() != 2 || db.Total() != 5 {
		t.Fatalf("Len/Start/Total = %d/%d/%d", db.Len(), db.Start(), db.Total())
	}
	if got := collectSeqs(t, db); !reflect.DeepEqual(got, seqs[2:]) {
		t.Fatalf("live window = %v, want %v", got, seqs[2:])
	}
	// Expiry never moves backward, and ScanSince clamps to the head.
	if err := db.ExpireBefore(1); err != nil {
		t.Fatal(err)
	}
	if db.Start() != 2 {
		t.Fatalf("head moved backward to %d", db.Start())
	}
	var abs []int
	if _, err := db.ScanSince(context.Background(), 0, func(a int, seq []pattern.Symbol) error {
		abs = append(abs, a)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(abs, []int{2, 3, 4}) {
		t.Fatalf("ScanSince delivered %v", abs)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The head survives a reopen via its sidecar.
	db, err = OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Start() != 2 || db.Len() != 3 {
		t.Fatalf("after reopen: Start/Len = %d/%d", db.Start(), db.Len())
	}
}

func TestAppendDBRangeScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.lsa")
	db, err := CreateAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustAppend(t, db, []pattern.Symbol{0}, []pattern.Symbol{1}, []pattern.Symbol{2}, []pattern.Symbol{3})
	if err := db.ExpireBefore(1); err != nil {
		t.Fatal(err)
	}
	var ids []int
	err = db.ScanRangeContext(context.Background(), 1, 3, func(id int, seq []pattern.Symbol) error {
		ids = append(ids, id)
		if want := pattern.Symbol(id + 1); seq[0] != want {
			t.Fatalf("id %d carries symbol %d, want %d", id, seq[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []int{1, 2}) {
		t.Fatalf("range ids = %v", ids)
	}
	if db.Scans() != 0 {
		t.Fatalf("range deliveries counted as passes: %d", db.Scans())
	}
}

func TestAppendDBTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.lsa")
	db, err := CreateAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]pattern.Symbol{{5, 6}, {7, 8, 9}}
	mustAppend(t, db, want...)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"torn final record": func(b []byte) []byte { return b[:len(b)-3] },
		"trailing garbage":  func(b []byte) []byte { return append(b, 0x02, 0xFF, 0x00) },
		"flipped tail byte": func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b },
	} {
		mutated := mutate(append([]byte(nil), intact...))
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := OpenAppend(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if db.TruncatedBytes() == 0 {
			t.Fatalf("%s: recovery dropped nothing", name)
		}
		got := collectSeqs(t, db)
		if len(got) == 0 || !reflect.DeepEqual(got, want[:len(got)]) {
			t.Fatalf("%s: recovered %v, not a prefix of %v", name, got, want)
		}
		// Appending after recovery extends the intact prefix.
		if _, err := db.Append([]pattern.Symbol{1, 2}); err != nil {
			t.Fatalf("%s: append after recovery: %v", name, err)
		}
		wantAfter := append(append([][]pattern.Symbol{}, want[:len(got)]...), []pattern.Symbol{1, 2})
		if got := collectSeqs(t, db); !reflect.DeepEqual(got, wantAfter) {
			t.Fatalf("%s: after append: %v, want %v", name, got, wantAfter)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAppendDBShortHeaderRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.lsa")
	// A crash mid-create leaves a partial header; reopening rewrites it.
	if err := os.WriteFile(path, []byte("LSA1\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustAppend(t, db, []pattern.Symbol{1})
	if got := collectSeqs(t, db); len(got) != 1 {
		t.Fatalf("scan = %v", got)
	}
	// A short file that is not a header prefix is rejected, not clobbered.
	other := filepath.Join(t.TempDir(), "not.lsa")
	if err := os.WriteFile(other, []byte("LSQ2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAppend(other); err == nil {
		t.Fatal("OpenAppend accepted a foreign short file")
	}
}

func TestAppendDBReadOnlyLeavesFileIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.lsa")
	db, err := CreateAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, db, []pattern.Symbol{1, 2, 3})
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	torn, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn = torn[:len(torn)-2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	ro, err := OpenAppendRead(path)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Len() != 0 || ro.TruncatedBytes() == 0 {
		t.Fatalf("Len=%d TruncatedBytes=%d", ro.Len(), ro.TruncatedBytes())
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, torn) {
		t.Fatal("read-only open modified the file")
	}
}
