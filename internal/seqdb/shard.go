package seqdb

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/pattern"
)

// Sharding splits a database into N contiguous, fixed-boundary id ranges so
// Phase 3 probe scans can scatter across shards and gather per-shard sums.
// Boundaries are aligned to probe blocks — fixed-size runs of sequences whose
// size depends only on the database length — so every shard count yields the
// same set of block boundaries. A scatter-gather consumer that accumulates
// per block and merges blocks in ascending id order therefore produces
// bit-identical float sums for every shard and worker count (the same
// discipline the Phase 2 kernel uses for its deterministic merge).

// probeBlockSize returns the probe-block length for an n-sequence database:
// at least 16 sequences, and at most ~256 blocks overall so a gather holding
// per-block partial sums stays small. It is a function of n alone — never of
// the shard or worker count — which is what makes block-merged sums
// layout-independent.
func probeBlockSize(n int) int {
	if n <= 0 {
		return 1
	}
	b := (n + 255) / 256
	if b < 16 {
		b = 16
	}
	return b
}

// shardBounds returns the shard boundaries for an n-sequence database cut
// into at most shards pieces on block-aligned offsets: bounds[i] is shard i's
// first global id, bounds[len(bounds)-1] == n. Every shard holds at least one
// block, so the effective shard count is min(shards, ceil(n/block)).
func shardBounds(n, shards, block int) []int {
	if shards < 1 {
		shards = 1
	}
	numBlocks := (n + block - 1) / block
	if numBlocks < 1 {
		numBlocks = 1
	}
	if shards > numBlocks {
		shards = numBlocks
	}
	bounds := make([]int, shards+1)
	for i := 1; i < shards; i++ {
		b := block * (numBlocks * i / shards)
		if b > n {
			b = n
		}
		bounds[i] = b
	}
	bounds[shards] = n
	return bounds
}

// RangeScanner is implemented by stores that can deliver one contiguous id
// range [lo, hi) without paying for a full pass (MemDB by indexing, DiskDB by
// stopping after the range). A range delivery is a partial pass: it never
// increments the store's Scans counter.
type RangeScanner interface {
	ScanRangeContext(ctx context.Context, lo, hi int, fn func(id int, seq []pattern.Symbol) error) error
}

// RangePassScanner is the retryable form of RangeScanner (RetryScanner):
// setup is re-invoked per attempt so a failed range delivery re-runs with
// fresh consumer state.
type RangePassScanner interface {
	ScanRangePassContext(ctx context.Context, lo, hi int, setup PassFunc) error
}

// errRangeDone aborts a filtered full scan once the range's last sequence has
// been delivered; it never escapes the range-scanning helpers.
var errRangeDone = errors.New("seqdb: range delivered")

// scanRangeOnce delivers the id range [lo, hi) of db exactly once: natively
// when db implements RangeScanner, otherwise by a filtered full scan aborted
// right after id hi-1 (so the underlying pass never completes and is never
// counted as a scan, on any shard).
func scanRangeOnce(ctx context.Context, db Scanner, lo, hi int, fn func(id int, seq []pattern.Symbol) error) error {
	if lo >= hi {
		return nil
	}
	if rs, ok := db.(RangeScanner); ok {
		return rs.ScanRangeContext(ctx, lo, hi, fn)
	}
	err := ScanContext(ctx, db, func(id int, seq []pattern.Symbol) error {
		if id >= hi {
			return errRangeDone
		}
		if id < lo {
			return nil
		}
		if err := fn(id, seq); err != nil {
			return err
		}
		if id == hi-1 {
			return errRangeDone
		}
		return nil
	})
	if errors.Is(err, errRangeDone) {
		return nil
	}
	return err
}

// rangeView is one shard of a parent scanner: the global id range [lo, hi).
// It delivers global ids, so consumers can map sequences onto probe blocks
// regardless of which shard delivered them.
type rangeView struct {
	parent Scanner
	lo, hi int
	scans  atomic.Int64
}

// Len returns the shard's sequence count.
func (v *rangeView) Len() int { return v.hi - v.lo }

// Scans returns the number of completed passes over this shard.
func (v *rangeView) Scans() int { return int(v.scans.Load()) }

// ResetScans zeroes the shard's pass counter.
func (v *rangeView) ResetScans() { v.scans.Store(0) }

// Scan implements Scanner.
func (v *rangeView) Scan(fn func(id int, seq []pattern.Symbol) error) error {
	return v.ScanContext(nil, fn)
}

// ScanContext implements ContextScanner.
func (v *rangeView) ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error {
	return v.ScanPassContext(ctx, func() (func(id int, seq []pattern.Symbol) error, error) {
		return fn, nil
	})
}

// ScanPassContext implements PassScanner: a retrying parent re-runs a failed
// shard delivery with fresh consumer state; other parents get one attempt.
func (v *rangeView) ScanPassContext(ctx context.Context, setup PassFunc) error {
	var err error
	if rp, ok := v.parent.(RangePassScanner); ok {
		err = rp.ScanRangePassContext(ctx, v.lo, v.hi, setup)
	} else {
		fn, serr := setup()
		if serr != nil {
			return serr
		}
		err = scanRangeOnce(ctx, v.parent, v.lo, v.hi, fn)
	}
	if err == nil {
		v.scans.Add(1)
	}
	return err
}

// ScanRangeContext implements RangeScanner: the view's global id range
// intersected with [lo, hi), delegated to the parent. A partial delivery, so
// it never counts as a pass of the view or the parent.
func (v *rangeView) ScanRangeContext(ctx context.Context, lo, hi int, fn func(id int, seq []pattern.Symbol) error) error {
	if lo < v.lo {
		lo = v.lo
	}
	if hi > v.hi {
		hi = v.hi
	}
	return scanRangeOnce(ctx, v.parent, lo, hi, fn)
}

// offsetScanner shifts a native shard file's local ids into the global id
// space of its shard set.
type offsetScanner struct {
	inner Scanner
	off   int
}

func (o *offsetScanner) Len() int    { return o.inner.Len() }
func (o *offsetScanner) Scans() int  { return o.inner.Scans() }
func (o *offsetScanner) ResetScans() { o.inner.ResetScans() }
func (o *offsetScanner) shift(fn func(id int, seq []pattern.Symbol) error) func(id int, seq []pattern.Symbol) error {
	return func(id int, seq []pattern.Symbol) error { return fn(id+o.off, seq) }
}

// BytesRead forwards the wrapped store's real-I/O counter (0 when it has
// none; check ReportsBytes).
func (o *offsetScanner) BytesRead() int64 {
	if br, ok := o.inner.(byteReader); ok {
		return br.BytesRead()
	}
	return 0
}

// ReportsBytes reports whether BytesRead is backed by a real counter.
func (o *offsetScanner) ReportsBytes() bool {
	_, ok := o.inner.(byteReader)
	return ok
}

func (o *offsetScanner) Scan(fn func(id int, seq []pattern.Symbol) error) error {
	return o.inner.Scan(o.shift(fn))
}

func (o *offsetScanner) ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error {
	return ScanContext(ctx, o.inner, o.shift(fn))
}

func (o *offsetScanner) ScanPassContext(ctx context.Context, setup PassFunc) error {
	return ScanPassContext(ctx, o.inner, func() (func(id int, seq []pattern.Symbol) error, error) {
		fn, err := setup()
		if err != nil {
			return nil, err
		}
		return o.shift(fn), nil
	})
}

// ScanRangeContext implements RangeScanner in the global id space: the
// request is translated back into the wrapped store's local ids.
func (o *offsetScanner) ScanRangeContext(ctx context.Context, lo, hi int, fn func(id int, seq []pattern.Symbol) error) error {
	return scanRangeOnce(ctx, o.inner, lo-o.off, hi-o.off, o.shift(fn))
}

// byteReader mirrors the telemetry layer's real-I/O interface without
// importing it (DiskDB, GzipDB).
type byteReader interface {
	BytesRead() int64
}

// Sharded is a sequence database cut into N deterministic fixed-boundary
// shards — either views over one backing Scanner (ShardScanner) or a native
// multi-file shard set (OpenShardSet). It implements Scanner by scanning the
// shards in ascending order with global sequence ids, and additionally
// exposes the per-shard scanners for scatter-gather consumers
// (miner.ShardedMatchDBValuer).
type Sharded struct {
	shards   []Scanner
	starts   []int // starts[i] = shard i's first global id; starts[len(shards)] = Len
	block    int
	paths    []string // native shard-set file paths (empty for views)
	byteSrcs []byteReader
	allBytes bool // every sequence's delivery is covered by byteSrcs
	scans    atomic.Int64
}

// ShardScanner cuts db into up to n block-aligned shard views (see
// probeBlockSize; small databases yield fewer shards than requested, never
// fewer than one). The views deliver global ids and share db as their backing
// store, so they must not be scanned concurrently with an unrelated full pass
// of db.
func ShardScanner(db Scanner, n int) *Sharded {
	total := db.Len()
	block := probeBlockSize(total)
	bounds := shardBounds(total, n, block)
	s := &Sharded{
		shards: make([]Scanner, len(bounds)-1),
		starts: bounds,
		block:  block,
	}
	for i := range s.shards {
		s.shards[i] = &rangeView{parent: db, lo: bounds[i], hi: bounds[i+1]}
	}
	if br, ok := db.(byteReader); ok {
		s.byteSrcs = []byteReader{br}
		s.allBytes = true
	}
	return s
}

// ShardPath names shard i of an n-shard set derived from base:
// "<base>.shard-007-of-016.lsq". The fixed-width numbering keeps a sorted
// directory listing in shard order.
func ShardPath(base string, i, n int) string {
	return fmt.Sprintf("%s.shard-%03d-of-%03d.lsq", base, i, n)
}

// WriteShardFiles splits db into up to n LSQ2 shard files next to base (see
// ShardPath), cut on exactly the boundaries ShardScanner(db, n) would use, so
// mining a written shard set is bit-identical to view-sharding the source
// database. It costs one full scan of db and returns the written paths in
// shard order; on error, partially-written files are removed.
func WriteShardFiles(db Scanner, base string, n int) ([]string, error) {
	total := db.Len()
	bounds := shardBounds(total, n, probeBlockSize(total))
	shards := len(bounds) - 1
	paths := make([]string, shards)
	for i := range paths {
		paths[i] = ShardPath(base, i, shards)
	}
	var w *Writer
	cur := -1
	cleanup := func() {
		if w != nil {
			w.f.Close()
		}
		for i := 0; i <= cur && i < shards; i++ {
			os.Remove(paths[i])
		}
	}
	err := db.Scan(func(id int, seq []pattern.Symbol) error {
		for cur+1 < shards && id >= bounds[cur+1] {
			if w != nil {
				if err := w.Close(); err != nil {
					return err
				}
				w = nil
			}
			cur++
			nw, err := CreateFile(paths[cur])
			if err != nil {
				return err
			}
			w = nw
		}
		return w.Write(seq)
	})
	if err == nil && w != nil {
		err = w.Close()
		w = nil
	}
	// Materialize any shards the scan never reached (an empty database) so
	// every returned path exists.
	for err == nil && cur+1 < shards {
		cur++
		nw, cerr := CreateFile(paths[cur])
		if cerr != nil {
			err = cerr
			break
		}
		err = nw.Close()
	}
	if err != nil {
		cleanup()
		return nil, err
	}
	return paths, nil
}

// OpenShardSet opens the files of one shard set, in shard order, as a single
// Sharded database: shard i's sequences get the global ids following shard
// i-1's. Any mix of LSQ formats is accepted (OpenAuto).
func OpenShardSet(paths []string) (*Sharded, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("seqdb: empty shard set")
	}
	s := &Sharded{
		shards:   make([]Scanner, len(paths)),
		starts:   make([]int, len(paths)+1),
		paths:    append([]string(nil), paths...),
		allBytes: true,
	}
	off := 0
	for i, p := range paths {
		db, err := OpenAuto(p)
		if err != nil {
			return nil, fmt.Errorf("seqdb: shard %d: %w", i, err)
		}
		s.starts[i] = off
		s.shards[i] = &offsetScanner{inner: db, off: off}
		off += db.Len()
		if br, ok := db.(byteReader); ok {
			s.byteSrcs = append(s.byteSrcs, br)
		} else {
			s.allBytes = false
		}
	}
	s.starts[len(paths)] = off
	s.block = probeBlockSize(off)
	return s, nil
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard i's scanner; it delivers global sequence ids.
func (s *Sharded) Shard(i int) Scanner { return s.shards[i] }

// ShardStart returns shard i's first global id (i may equal NumShards, giving
// Len).
func (s *Sharded) ShardStart(i int) int { return s.starts[i] }

// BlockSize returns the probe-block length scatter-gather consumers must
// accumulate on for layout-independent merged sums. View shard boundaries are
// always block-aligned; native shard files are when written by
// WriteShardFiles.
func (s *Sharded) BlockSize() int { return s.block }

// Len implements Scanner.
func (s *Sharded) Len() int { return s.starts[len(s.shards)] }

// Scans returns the number of completed logical passes: sequential full scans
// plus scatter-gather passes recorded via NotePass.
func (s *Sharded) Scans() int { return int(s.scans.Load()) }

// ResetScans zeroes the logical-pass counter.
func (s *Sharded) ResetScans() { s.scans.Store(0) }

// NotePass records one completed logical pass assembled from per-shard scans;
// scatter-gather consumers call it after a successful gather so Scans keeps
// counting whole-database passes.
func (s *Sharded) NotePass() { s.scans.Add(1) }

// Path identifies a native shard set by its joined file paths (empty for
// views), so checkpoint identity checks see through the sharding.
func (s *Sharded) Path() string { return strings.Join(s.paths, ",") }

// BytesRead sums the real I/O bytes of every byte-reporting backing store.
// Check ReportsBytes before trusting it: a memory-backed Sharded reports 0.
func (s *Sharded) BytesRead() int64 {
	var n int64
	for _, br := range s.byteSrcs {
		n += br.BytesRead()
	}
	return n
}

// ReportsBytes reports whether BytesRead covers all the data (every backing
// store is disk-resident); false means byte telemetry must be estimated.
func (s *Sharded) ReportsBytes() bool { return s.allBytes }

// Scan implements Scanner.
func (s *Sharded) Scan(fn func(id int, seq []pattern.Symbol) error) error {
	return s.ScanContext(nil, fn)
}

// ScanContext implements ContextScanner: one sequential pass over the shards
// in ascending order, delivering global ids.
func (s *Sharded) ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error {
	for _, sh := range s.shards {
		if err := ScanContext(ctx, sh, fn); err != nil {
			return err
		}
	}
	s.scans.Add(1)
	return nil
}

// ScanRangeContext implements RangeScanner: the global id range [lo, hi)
// delivered by the covering shards only, so a range probe over a native
// multi-file shard set touches just the files that intersect it. A partial
// delivery — it never counts as a logical pass.
func (s *Sharded) ScanRangeContext(ctx context.Context, lo, hi int, fn func(id int, seq []pattern.Symbol) error) error {
	if lo < 0 {
		lo = 0
	}
	if n := s.Len(); hi > n {
		hi = n
	}
	for i, sh := range s.shards {
		slo, shi := s.starts[i], s.starts[i+1]
		if slo < lo {
			slo = lo
		}
		if shi > hi {
			shi = hi
		}
		if slo >= shi {
			continue
		}
		if err := scanRangeOnce(ctx, sh, slo, shi, fn); err != nil {
			return err
		}
	}
	return nil
}

// ShardedView resolves db to the *Sharded the scatter-gather probe layers
// scan: db's own shard set when the scanner (unwrapped through any Unwrap
// chain, e.g. telemetry) already is a *Sharded, otherwise an n-way
// block-aligned view over it (ShardScanner). Mining either yields
// bit-identical probe sums — the view exists so single-file databases can
// join the same scatter protocol as native shard sets.
func ShardedView(db Scanner, n int) *Sharded {
	raw := db
	for {
		if rs, ok := raw.(*RetryScanner); ok {
			// The retry layer is a scanning concern; layout resolution (and
			// the remote probe path, which never scans locally) sees through
			// it. Local probe scanning keeps its own retry wrapping — see
			// core.Config.shardedDB, which deliberately stops here.
			raw = rs.Inner
			continue
		}
		u, ok := raw.(interface{ Unwrap() Scanner })
		if !ok {
			break
		}
		raw = u.Unwrap()
	}
	if sh, ok := raw.(*Sharded); ok {
		return sh
	}
	return ShardScanner(raw, n)
}

// RealBytes returns db's real-I/O byte counter when it has a trustworthy
// one: the store implements BytesRead and does not disclaim it via a
// ReportsBytes() false (a memory-backed Sharded). Consumers use the delta
// across a pass as the pass's real delivered bytes, falling back to
// estimation when ok is false.
func RealBytes(db Scanner) (n int64, ok bool) {
	br, has := db.(byteReader)
	if !has {
		return 0, false
	}
	if chk, hasChk := db.(interface{ ReportsBytes() bool }); hasChk && !chk.ReportsBytes() {
		return 0, false
	}
	return br.BytesRead(), true
}

// ShardSetPaths expands a comma-separated path list into a shard set's file
// list (a convenience for CLI -db flags; single paths pass through).
func ShardSetPaths(arg string) []string {
	parts := strings.Split(arg, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, filepath.Clean(p))
		}
	}
	return out
}
