package seqdb

import (
	"bufio"
	"compress/gzip"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"repro/internal/pattern"
)

// Compressed disk format: the same varint body as the plain format, wrapped
// in gzip, with its own magic so OpenAuto can dispatch.
//
//	magic  [4]byte "LSQZ"
//	n      uint64  number of sequences (little endian, uncompressed header)
//	body   gzip(varint sequences)
var gzipMagic = [4]byte{'L', 'S', 'Q', 'Z'}

// GzipWriter streams sequences into the compressed on-disk format.
type GzipWriter struct {
	f      *os.File
	zw     *gzip.Writer
	bw     *bufio.Writer
	n      uint64
	buf    []byte
	closed bool
}

// CreateGzipFile opens path for writing in the compressed format.
func CreateGzipFile(path string) (*GzipWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("seqdb: create: %w", err)
	}
	if _, err := f.Write(gzipMagic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("seqdb: write header: %w", err)
	}
	var zero [8]byte
	if _, err := f.Write(zero[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("seqdb: write header: %w", err)
	}
	zw := gzip.NewWriter(f)
	return &GzipWriter{
		f:   f,
		zw:  zw,
		bw:  bufio.NewWriterSize(zw, 1<<20),
		buf: make([]byte, binary.MaxVarintLen64),
	}, nil
}

// Write appends one sequence.
func (w *GzipWriter) Write(seq []pattern.Symbol) error {
	if w.closed {
		return fmt.Errorf("seqdb: write after Close")
	}
	if len(seq) == 0 {
		return fmt.Errorf("seqdb: empty sequence")
	}
	k := binary.PutUvarint(w.buf, uint64(len(seq)))
	if _, err := w.bw.Write(w.buf[:k]); err != nil {
		return fmt.Errorf("seqdb: write: %w", err)
	}
	for _, d := range seq {
		if d.IsEternal() {
			return fmt.Errorf("seqdb: sequence contains the eternal symbol")
		}
		k = binary.PutUvarint(w.buf, uint64(d))
		if _, err := w.bw.Write(w.buf[:k]); err != nil {
			return fmt.Errorf("seqdb: write: %w", err)
		}
	}
	w.n++
	return nil
}

// Close flushes the compressor, patches the sequence count, fsyncs, and
// closes. A closed GzipWriter rejects further Writes.
func (w *GzipWriter) Close() error {
	if w.closed {
		return fmt.Errorf("seqdb: Close on closed writer")
	}
	w.closed = true
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("seqdb: flush: %w", err)
	}
	if err := w.zw.Close(); err != nil {
		w.f.Close()
		return fmt.Errorf("seqdb: gzip close: %w", err)
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], w.n)
	if _, err := w.f.WriteAt(cnt[:], int64(len(gzipMagic))); err != nil {
		w.f.Close()
		return fmt.Errorf("seqdb: patch count: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("seqdb: sync: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("seqdb: close: %w", err)
	}
	return nil
}

// GzipDB is a gzip-compressed disk-resident database; every Scan streams
// and decompresses the file from the start.
type GzipDB struct {
	path  string
	n     int
	scans atomic.Int64 // readable concurrently with a scan (progress UIs)
	bytes atomic.Int64
}

// OpenGzipFile validates the header of a compressed database.
func OpenGzipFile(path string) (*GzipDB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("seqdb: open: %w", err)
	}
	defer f.Close()
	var hdr [12]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("seqdb: read header: %w", err)
	}
	if [4]byte(hdr[:4]) != gzipMagic {
		return nil, fmt.Errorf("seqdb: %s: bad magic %q", path, hdr[:4])
	}
	n := binary.LittleEndian.Uint64(hdr[4:])
	return &GzipDB{path: path, n: int(n)}, nil
}

// Len returns the number of sequences.
func (db *GzipDB) Len() int { return db.n }

// Scans returns the number of completed full passes. Safe to call
// concurrently with a running scan.
func (db *GzipDB) Scans() int { return int(db.scans.Load()) }

// ResetScans zeroes the pass counter.
func (db *GzipDB) ResetScans() { db.scans.Store(0) }

// Path returns the backing file path.
func (db *GzipDB) Path() string { return db.path }

// BytesRead returns the total compressed bytes read from the backing file
// across all passes so far — the store's real delivered I/O, measured before
// decompression, so the telemetry layer reports actual disk traffic instead
// of a symbol-count estimate.
func (db *GzipDB) BytesRead() int64 { return db.bytes.Load() }

// Scan implements Scanner.
func (db *GzipDB) Scan(fn func(id int, seq []pattern.Symbol) error) error {
	return db.ScanContext(nil, fn)
}

// ScanContext implements ContextScanner. A truncated or corrupt deflate
// stream, a body shorter than the declared count, and trailing garbage after
// the last sequence are all reported as errors (the gzip footer's own
// checksum is verified when the stream drains).
func (db *GzipDB) ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error {
	f, err := os.Open(db.path)
	if err != nil {
		return fmt.Errorf("seqdb: open: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(12, io.SeekStart); err != nil {
		return fmt.Errorf("seqdb: skip header: %w", err)
	}
	db.bytes.Add(12) // header bytes consumed by OpenGzipFile's validation path
	zr, err := gzip.NewReader(bufio.NewReaderSize(&countingReader{r: f, n: &db.bytes}, 1<<20))
	if err != nil {
		return fmt.Errorf("seqdb: gzip: %w", err)
	}
	defer zr.Close()
	br := bufio.NewReaderSize(zr, 1<<20)
	var seq []pattern.Symbol
	for i := 0; i < db.n; i++ {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return corrupt(db.path, i, "truncated length", err)
		}
		if l == 0 || l > MaxSequenceLen {
			return corrupt(db.path, i, fmt.Sprintf("invalid length %d", l), nil)
		}
		if cap(seq) < int(l) {
			seq = make([]pattern.Symbol, l)
		}
		seq = seq[:l]
		for j := range seq {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return corrupt(db.path, i, fmt.Sprintf("truncated at symbol %d", j), err)
			}
			seq[j] = pattern.Symbol(v)
		}
		if err := fn(i, seq); err != nil {
			return err
		}
	}
	// Drain to EOF: verifies the gzip footer checksum and rejects trailing
	// garbage after the declared sequence count.
	switch _, err := br.ReadByte(); err {
	case io.EOF:
	case nil:
		return corrupt(db.path, -1, fmt.Sprintf("trailing garbage after %d sequences", db.n), nil)
	default:
		return corrupt(db.path, -1, "stream did not end cleanly", err)
	}
	db.scans.Add(1)
	return nil
}

// WriteGzipFile persists an in-memory database in the compressed format,
// crash-atomically (temp file + fsync + rename, as WriteFile).
func WriteGzipFile(path string, db *MemDB) error {
	return atomicWrite(path, func(tmp string) error {
		w, err := CreateGzipFile(tmp)
		if err != nil {
			return err
		}
		for _, seq := range db.seqs {
			if err := w.Write(seq); err != nil {
				w.f.Close()
				return err
			}
		}
		return w.Close()
	})
}

// OpenAuto opens a database file of either on-disk format, dispatching on
// the magic bytes.
func OpenAuto(path string) (Scanner, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("seqdb: open: %w", err)
	}
	var magic [4]byte
	_, err = io.ReadFull(f, magic[:])
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("seqdb: read magic: %w", err)
	}
	switch magic {
	case diskMagic, diskMagicV2:
		return OpenFile(path)
	case gzipMagic:
		return OpenGzipFile(path)
	case appendMagic:
		// Append logs open read-only here: a mining job scans the intact
		// prefix (live window) while the owning appender keeps writing.
		return OpenAppendRead(path)
	default:
		return nil, fmt.Errorf("seqdb: %s: unknown format %q", path, magic)
	}
}
