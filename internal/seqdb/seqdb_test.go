package seqdb

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/pattern"
)

func sampleDB() *MemDB {
	// Figure 4(a)'s four sequences over d1..d5 (0-based symbols).
	return NewMemDB([][]pattern.Symbol{
		{0, 1, 2, 0},
		{3, 1, 0},
		{2, 3, 1, 0},
		{1, 1},
	})
}

func TestMemDBScanOrderAndCount(t *testing.T) {
	db := sampleDB()
	var ids []int
	var lens []int
	err := db.Scan(func(id int, seq []pattern.Symbol) error {
		ids = append(ids, id)
		lens = append(lens, len(seq))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Scans() != 1 {
		t.Errorf("Scans=%d, want 1", db.Scans())
	}
	for i, id := range ids {
		if id != i {
			t.Errorf("id[%d]=%d", i, id)
		}
	}
	wantLens := []int{4, 3, 4, 2}
	for i := range wantLens {
		if lens[i] != wantLens[i] {
			t.Errorf("len[%d]=%d, want %d", i, lens[i], wantLens[i])
		}
	}
	db.ResetScans()
	if db.Scans() != 0 {
		t.Error("ResetScans failed")
	}
}

func TestMemDBAbortedScanDoesNotCount(t *testing.T) {
	db := sampleDB()
	boom := errors.New("boom")
	err := db.Scan(func(id int, seq []pattern.Symbol) error {
		if id == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	if db.Scans() != 0 {
		t.Errorf("aborted pass counted: Scans=%d", db.Scans())
	}
}

func TestMemDBValidate(t *testing.T) {
	if err := sampleDB().Validate(5); err != nil {
		t.Errorf("valid db rejected: %v", err)
	}
	if err := sampleDB().Validate(3); err == nil {
		t.Error("symbol >= m accepted")
	}
	bad := NewMemDB([][]pattern.Symbol{{}})
	if err := bad.Validate(5); err == nil {
		t.Error("empty sequence accepted")
	}
	eternal := NewMemDB([][]pattern.Symbol{{0, pattern.Eternal}})
	if err := eternal.Validate(5); err == nil {
		t.Error("eternal symbol in data accepted")
	}
}

func TestDescribe(t *testing.T) {
	db := sampleDB()
	st, err := Describe(db)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 4 || st.Symbols != 13 || st.MinLen != 2 || st.MaxLen != 4 {
		t.Errorf("Stats=%+v", st)
	}
	if st.AvgLen != 13.0/4.0 {
		t.Errorf("AvgLen=%v", st.AvgLen)
	}
	if st.MaxSymbol != 3 {
		t.Errorf("MaxSymbol=%v", st.MaxSymbol)
	}
	if db.Scans() != 1 {
		t.Error("Describe should consume one scan")
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.lsq")
	orig := sampleDB()
	if err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	if orig.Scans() != 0 {
		t.Errorf("WriteFile consumed %d scans of the source", orig.Scans())
	}

	disk, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if disk.Len() != 4 {
		t.Fatalf("Len=%d", disk.Len())
	}
	if disk.Path() != path {
		t.Errorf("Path=%q", disk.Path())
	}

	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("loaded %d sequences", back.Len())
	}
	for i := 0; i < orig.Len(); i++ {
		a, b := orig.Seq(i), back.Seq(i)
		if len(a) != len(b) {
			t.Fatalf("seq %d length mismatch", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("seq %d pos %d: %v != %v", i, j, a[j], b[j])
			}
		}
	}
	if disk.Scans() != 0 { // LoadFile uses its own handle, not ours
		t.Errorf("disk Scans=%d, want 0", disk.Scans())
	}
}

func TestDiskScanCountsPasses(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.lsq")
	if err := WriteFile(path, sampleDB()); err != nil {
		t.Fatal(err)
	}
	db, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 1; pass <= 3; pass++ {
		if err := db.Scan(func(int, []pattern.Symbol) error { return nil }); err != nil {
			t.Fatal(err)
		}
		if db.Scans() != pass {
			t.Fatalf("after pass %d: Scans=%d", pass, db.Scans())
		}
	}
	boom := errors.New("stop")
	err = db.Scan(func(id int, _ []pattern.Symbol) error {
		if id == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	if db.Scans() != 3 {
		t.Error("aborted disk pass counted")
	}
}

func TestWriterRejectsBadSequences(t *testing.T) {
	dir := t.TempDir()
	w, err := CreateFile(filepath.Join(dir, "x.lsq"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(nil); err == nil {
		t.Error("empty sequence accepted")
	}
	if err := w.Write([]pattern.Symbol{0, pattern.Eternal}); err == nil {
		t.Error("eternal symbol accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenFile(filepath.Join(dir, "missing.lsq")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.lsq")
	if err := os.WriteFile(bad, []byte("NOPE_not_a_db"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(bad); err == nil {
		t.Error("bad magic accepted")
	}
	short := filepath.Join(dir, "short.lsq")
	if err := os.WriteFile(short, []byte("LS"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(short); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestDiskScanTruncatedBody(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.lsq")
	if err := WriteFile(path, sampleDB()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Scan(func(int, []pattern.Symbol) error { return nil }); err == nil {
		t.Error("truncated body scanned without error")
	}
}

func TestReadWriteText(t *testing.T) {
	a := pattern.GenericAlphabet(5)
	in := "# comment\n d1 d2 d3 d1 \n\nd4 d2 d1\n"
	db, err := ReadText(strings.NewReader(in), a)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("Len=%d", db.Len())
	}
	if db.Seq(0)[2] != 2 {
		t.Errorf("seq 0: %v", db.Seq(0))
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, db, a); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "d1 d2 d3 d1\nd4 d2 d1\n" {
		t.Errorf("WriteText: %q", got)
	}
	if _, err := ReadText(strings.NewReader("d1 zz"), a); err == nil {
		t.Error("unknown symbol accepted")
	}
}

func TestReadFASTA(t *testing.T) {
	a, err := pattern.NewAlphabet([]string{"A", "C", "G", "T"})
	if err != nil {
		t.Fatal(err)
	}
	in := ">seq1 description\nACGT\nACG\n>seq2\nTT\n"
	db, err := ReadFASTA(strings.NewReader(in), a)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("Len=%d", db.Len())
	}
	if len(db.Seq(0)) != 7 || len(db.Seq(1)) != 2 {
		t.Errorf("lengths: %d, %d", len(db.Seq(0)), len(db.Seq(1)))
	}
	if _, err := ReadFASTA(strings.NewReader(">x\nAXA\n"), a); err == nil {
		t.Error("unknown residue accepted")
	}
}

func TestQuickDiskRoundTripRandom(t *testing.T) {
	dir := t.TempDir()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		seqs := make([][]pattern.Symbol, n)
		for i := range seqs {
			l := 1 + r.Intn(50)
			s := make([]pattern.Symbol, l)
			for j := range s {
				s[j] = pattern.Symbol(r.Intn(1 << r.Intn(14))) // exercise varint widths
			}
			seqs[i] = s
		}
		path := filepath.Join(dir, "q.lsq")
		if err := WriteFile(path, NewMemDB(seqs)); err != nil {
			return false
		}
		back, err := LoadFile(path)
		if err != nil || back.Len() != n {
			return false
		}
		for i := range seqs {
			got := back.Seq(i)
			if len(got) != len(seqs[i]) {
				return false
			}
			for j := range got {
				if got[j] != seqs[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
