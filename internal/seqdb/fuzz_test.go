package seqdb

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pattern"
)

// FuzzDiskScan checks that scanning arbitrary bytes as a database file never
// panics: it either errors cleanly or yields well-formed sequences.
func FuzzDiskScan(f *testing.F) {
	dir := f.TempDir()
	good := filepath.Join(dir, "seed.lsq")
	if err := WriteFile(good, NewMemDB([][]pattern.Symbol{{0, 1, 2}, {3}})); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte("LSQ1garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.lsq")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := OpenAuto(path)
		if err != nil {
			return
		}
		_ = db.Scan(func(id int, seq []pattern.Symbol) error {
			if len(seq) == 0 {
				t.Fatal("scanner produced an empty sequence")
			}
			return nil
		})
	})
}
