package seqdb

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pattern"
)

// FuzzDiskScan checks that scanning arbitrary bytes as a database file never
// panics: it either errors cleanly or yields well-formed sequences. Seeds
// cover all three on-disk formats (LSQ2, legacy LSQ1, gzip-compressed LSQZ).
func FuzzDiskScan(f *testing.F) {
	dir := f.TempDir()
	seedDB := NewMemDB([][]pattern.Symbol{{0, 1, 2}, {3}})
	good := filepath.Join(dir, "seed.lsq")
	if err := WriteFile(good, seedDB); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)

	legacy := filepath.Join(dir, "seed1.lsq")
	lw, err := CreateLegacyFile(legacy)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < seedDB.Len(); i++ {
		if err := lw.Write(seedDB.Seq(i)); err != nil {
			f.Fatal(err)
		}
	}
	if err := lw.Close(); err != nil {
		f.Fatal(err)
	}
	rawLegacy, err := os.ReadFile(legacy)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rawLegacy)

	packed := filepath.Join(dir, "seed.lsqz")
	if err := WriteGzipFile(packed, seedDB); err != nil {
		f.Fatal(err)
	}
	rawGzip, err := os.ReadFile(packed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rawGzip)
	// A gzip container whose deflate body is cut short.
	f.Add(rawGzip[:len(rawGzip)-6])

	f.Add([]byte("LSQ1garbage"))
	f.Add([]byte("LSQ2garbage"))
	f.Add([]byte("LSQZgarbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.lsq")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := OpenAuto(path)
		if err != nil {
			return
		}
		_ = db.Scan(func(id int, seq []pattern.Symbol) error {
			if len(seq) == 0 {
				t.Fatal("scanner produced an empty sequence")
			}
			return nil
		})
	})
}
