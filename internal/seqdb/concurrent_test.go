package seqdb

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/pattern"
)

// TestScansConcurrentReaders scans each store while other goroutines hammer
// Scans() and ResetScans() — the progress-UI access pattern. Run with -race:
// the counters must be data-race-free even though full scans themselves stay
// single-threaded.
func TestScansConcurrentReaders(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "db.lsq")
	if err := WriteFile(plain, sampleDB()); err != nil {
		t.Fatal(err)
	}
	packed := filepath.Join(dir, "db.lsq.gz")
	if err := WriteGzipFile(packed, sampleDB()); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	gz, err := OpenGzipFile(packed)
	if err != nil {
		t.Fatal(err)
	}
	stores := map[string]Scanner{
		"mem":  sampleDB(),
		"disk": disk,
		"gzip": gz,
	}
	for name, db := range stores {
		t.Run(name, func(t *testing.T) {
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func(reset bool) {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if reset {
							db.ResetScans()
						} else if db.Scans() < 0 {
							t.Error("negative scan count")
						}
					}
				}(i == 3)
			}
			for pass := 0; pass < 50; pass++ {
				err := db.Scan(func(id int, seq []pattern.Symbol) error { return nil })
				if err != nil {
					t.Errorf("pass %d: %v", pass, err)
					break
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}

// alwaysFail is a Scanner whose every pass dies with the same error.
type alwaysFail struct {
	err error
}

func (a *alwaysFail) Scan(func(id int, seq []pattern.Symbol) error) error { return a.err }
func (a *alwaysFail) Len() int                                            { return 1 }
func (a *alwaysFail) Scans() int                                          { return 0 }
func (a *alwaysFail) ResetScans()                                         {}

// TestRetryBackoffCancellation cancels a RetryScanner mid-backoff: the
// default sleeper must abort the wait promptly and surface ctx.Err(), not
// sit out the full delay.
func TestRetryBackoffCancellation(t *testing.T) {
	r := &RetryScanner{
		Inner:      &alwaysFail{err: errors.New("flaky pass")},
		MaxRetries: 3,
		BaseDelay:  time.Minute, // far beyond the test's patience
		Classify:   func(error) bool { return true },
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- r.ScanPassContext(ctx, func() (func(id int, seq []pattern.Symbol) error, error) {
			return func(id int, seq []pattern.Symbol) error { return nil }, nil
		})
	}()
	time.Sleep(50 * time.Millisecond) // let the first attempt fail and the backoff start
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if waited := time.Since(start); waited > 5*time.Second {
			t.Fatalf("cancellation took %v to land — backoff not interruptible", waited)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation never interrupted the backoff")
	}
}

// TestRetryScannerPath verifies identity passthrough: a RetryScanner over a
// disk store exposes its backing path, and over an in-memory store exposes
// none.
func TestRetryScannerPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.lsq")
	if err := WriteFile(path, sampleDB()); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := NewRetryScanner(disk).Path(); got != path {
		t.Errorf("Path() = %q, want %q", got, path)
	}
	if got := NewRetryScanner(sampleDB()).Path(); got != "" {
		t.Errorf("Path() over MemDB = %q, want empty", got)
	}
}
