package seqdb

import (
	"context"
	"errors"
	"fmt"
	"syscall"
)

// TransientError marks a scan failure as worth retrying: the same pass may
// succeed if re-run (an interrupted syscall, a busy device, a flaky NFS
// mount). RetryScanner re-runs passes that fail with a transient error;
// everything else is treated as permanent and surfaces immediately.
type TransientError struct {
	Err error
}

func (e *TransientError) Error() string { return "seqdb: transient: " + e.Err.Error() }

func (e *TransientError) Unwrap() error { return e.Err }

// MarkTransient wraps err so IsTransient reports true for it. A nil err
// stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient classifies an error as transient (retrying the pass may
// succeed) or permanent. Explicitly marked errors are transient; corruption
// (CorruptError) and context cancellation are always permanent; a small set
// of retryable syscall errors (EINTR, EAGAIN, EBUSY, EIO, ETIMEDOUT) is
// recognized for raw I/O failures.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var te *TransientError
	if errors.As(err, &te) {
		return true
	}
	var ce *CorruptError
	if errors.As(err, &ce) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	for _, errno := range []syscall.Errno{syscall.EINTR, syscall.EAGAIN, syscall.EBUSY, syscall.EIO, syscall.ETIMEDOUT} {
		if errors.Is(err, errno) {
			return true
		}
	}
	return false
}

// CorruptError reports on-disk damage detected during a scan: a checksum
// mismatch, an invalid length, a truncated payload, a missing trailer, or
// trailing garbage. Corruption is permanent — re-reading the same bytes
// cannot help — so IsTransient reports false for it.
type CorruptError struct {
	// Path is the backing file.
	Path string
	// Seq is the offending sequence index, or -1 for file-level damage
	// (header, trailer, trailing garbage).
	Seq int
	// Msg describes the damage.
	Msg string
	// Err is the underlying error, if any.
	Err error
}

func (e *CorruptError) Error() string {
	where := "file"
	if e.Seq >= 0 {
		where = fmt.Sprintf("sequence %d", e.Seq)
	}
	s := fmt.Sprintf("seqdb: %s: corrupt %s: %s", e.Path, where, e.Msg)
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

func (e *CorruptError) Unwrap() error { return e.Err }

// corrupt builds a CorruptError.
func corrupt(path string, seq int, msg string, err error) error {
	return &CorruptError{Path: path, Seq: seq, Msg: msg, Err: err}
}
