package seqdb

import (
	"context"
	"errors"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/pattern"
)

// failNScanner fails its first fail passes with err, then succeeds forever.
type failNScanner struct {
	*MemDB
	fail int
	err  error
}

func (s *failNScanner) Scan(fn func(id int, seq []pattern.Symbol) error) error {
	return s.ScanContext(nil, fn)
}

func (s *failNScanner) ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error {
	return s.MemDB.ScanContext(ctx, func(id int, seq []pattern.Symbol) error {
		if id == 1 && s.fail > 0 {
			s.fail--
			return s.err
		}
		return fn(id, seq)
	})
}

func TestRetryScannerRetriesTransient(t *testing.T) {
	inner := &failNScanner{MemDB: sampleDB(), fail: 2, err: MarkTransient(errors.New("blip"))}
	var slept []time.Duration
	r := &RetryScanner{Inner: inner, Sleep: func(d time.Duration) { slept = append(slept, d) }}

	setups := 0
	var ids []int
	err := ScanPass(r, func() (func(id int, seq []pattern.Symbol) error, error) {
		setups++
		ids = ids[:0] // per-attempt state, rebuilt by setup
		return func(id int, _ []pattern.Symbol) error {
			ids = append(ids, id)
			return nil
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if setups != 3 {
		t.Errorf("setup called %d times, want 3 (two failures + success)", setups)
	}
	if len(ids) != 4 {
		t.Errorf("final attempt saw %d sequences, want 4 (no carryover)", len(ids))
	}
	if r.Scans() != 1 {
		t.Errorf("Scans=%d, want 1 — only the completed pass counts", r.Scans())
	}
	// Backoff doubles from the 10ms default.
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Errorf("slept %v, want [10ms 20ms]", slept)
	}
	st := r.ScanStats()
	if st.Attempts != 3 || st.Retries != 2 || st.Transient != 2 || st.Permanent != 0 || st.Completed != 1 {
		t.Errorf("ScanStats=%+v", st)
	}
}

func TestRetryScannerBackoffCaps(t *testing.T) {
	inner := &failNScanner{MemDB: sampleDB(), fail: 5, err: MarkTransient(errors.New("blip"))}
	var slept []time.Duration
	r := &RetryScanner{
		Inner:      inner,
		MaxRetries: 5,
		BaseDelay:  400 * time.Millisecond,
		MaxDelay:   time.Second,
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	}
	if err := r.Scan(func(int, []pattern.Symbol) error { return nil }); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{400 * time.Millisecond, 800 * time.Millisecond, time.Second, time.Second, time.Second}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("backoff[%d]=%v, want %v", i, slept[i], want[i])
		}
	}
}

func TestRetryScannerDoesNotRetryPermanent(t *testing.T) {
	boom := errors.New("disk on fire")
	inner := &failNScanner{MemDB: sampleDB(), fail: 99, err: boom}
	slept := 0
	r := &RetryScanner{Inner: inner, Sleep: func(time.Duration) { slept++ }}
	err := r.Scan(func(int, []pattern.Symbol) error { return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want the permanent error", err)
	}
	if slept != 0 {
		t.Error("permanent failure slept before returning")
	}
	st := r.ScanStats()
	if st.Attempts != 1 || st.Permanent != 1 || st.Retries != 0 {
		t.Errorf("ScanStats=%+v", st)
	}
}

func TestRetryScannerExhaustsRetries(t *testing.T) {
	blip := MarkTransient(errors.New("blip"))
	inner := &failNScanner{MemDB: sampleDB(), fail: 99, err: blip}
	r := &RetryScanner{Inner: inner, MaxRetries: 2, Sleep: func(time.Duration) {}}
	err := r.Scan(func(int, []pattern.Symbol) error { return nil })
	if err == nil {
		t.Fatal("exhausted retries returned nil")
	}
	if !errors.Is(err, blip) {
		t.Errorf("err=%v does not wrap the original failure", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("err=%v does not report the attempt count", err)
	}
	st := r.ScanStats()
	if st.Attempts != 3 || st.Retries != 2 || st.Transient != 3 {
		t.Errorf("ScanStats=%+v", st)
	}
	if r.Scans() != 0 {
		t.Error("failed passes counted as scans")
	}
}

func TestRetryScannerDoesNotRetryCancellation(t *testing.T) {
	r := &RetryScanner{Inner: sampleDB(), Sleep: func(d time.Duration) { t.Error("slept on cancellation") }}
	ctx, cancel := context.WithCancel(context.Background())
	err := r.ScanContext(ctx, func(id int, _ []pattern.Symbol) error {
		if id == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if st := r.ScanStats(); st.Retries != 0 || st.Transient != 0 {
		t.Errorf("cancellation counted as a failure: %+v", st)
	}
}

func TestRetryScannerNegativeMaxRetriesDisables(t *testing.T) {
	blip := MarkTransient(errors.New("blip"))
	inner := &failNScanner{MemDB: sampleDB(), fail: 1, err: blip}
	r := &RetryScanner{Inner: inner, MaxRetries: -1, Sleep: func(time.Duration) {}}
	err := r.Scan(func(int, []pattern.Symbol) error { return nil })
	if err == nil {
		t.Fatal("want failure with retrying disabled")
	}
	if st := r.ScanStats(); st.Attempts != 1 || st.Retries != 0 {
		t.Errorf("ScanStats=%+v", st)
	}
}

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{MarkTransient(errors.New("x")), true},
		{&CorruptError{Path: "p", Seq: 0, Msg: "bad"}, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{syscall.EINTR, true},
		{syscall.EAGAIN, true},
		{syscall.EIO, true},
		{errors.New("plain"), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v)=%v, want %v", c.err, got, c.want)
		}
	}
	if MarkTransient(nil) != nil {
		t.Error("MarkTransient(nil) != nil")
	}
}
