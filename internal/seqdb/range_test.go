package seqdb

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/pattern"
)

func rangeTestDB(t *testing.T, n int) (*MemDB, [][]pattern.Symbol) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	seqs := make([][]pattern.Symbol, n)
	for i := range seqs {
		s := make([]pattern.Symbol, 3+rng.Intn(6))
		for j := range s {
			s[j] = pattern.Symbol(rng.Intn(5))
		}
		seqs[i] = s
	}
	return NewMemDB(seqs), seqs
}

func collectRange(t *testing.T, rs RangeScanner, lo, hi int) map[int]int {
	t.Helper()
	got := map[int]int{}
	err := rs.ScanRangeContext(context.Background(), lo, hi, func(id int, seq []pattern.Symbol) error {
		got[id] = len(seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestShardedScanRange: a Sharded's range scan must deliver exactly the
// global ids in [lo, hi) — including ranges that straddle shard boundaries,
// clamp past the ends, or are empty — without counting logical passes.
func TestShardedScanRange(t *testing.T) {
	db, seqs := rangeTestDB(t, 70)
	sh := ShardScanner(db, 3)
	for _, r := range [][2]int{{0, 70}, {0, 1}, {15, 17}, {10, 50}, {64, 70}, {-5, 200}, {40, 40}, {30, 10}} {
		got := collectRange(t, sh, r[0], r[1])
		lo, hi := r[0], r[1]
		if lo < 0 {
			lo = 0
		}
		if hi > len(seqs) {
			hi = len(seqs)
		}
		want := 0
		if hi > lo {
			want = hi - lo
		}
		if len(got) != want {
			t.Fatalf("range [%d,%d): delivered %d ids, want %d", r[0], r[1], len(got), want)
		}
		for id, l := range got {
			if id < lo || id >= hi {
				t.Fatalf("range [%d,%d): id %d out of range", r[0], r[1], id)
			}
			if l != len(seqs[id]) {
				t.Fatalf("id %d: wrong sequence delivered", id)
			}
		}
	}
	if sh.Scans() != 0 {
		t.Errorf("range scans counted %d logical passes, want 0", sh.Scans())
	}
}

// TestShardSetScanRange: a native multi-file shard set serves global-id
// ranges identically to the in-memory view (the offsetScanner translation).
func TestShardSetScanRange(t *testing.T) {
	db, seqs := rangeTestDB(t, 60)
	paths, err := WriteShardFiles(db, filepath.Join(t.TempDir(), "db"), 3)
	if err != nil {
		t.Fatal(err)
	}
	set, err := OpenShardSet(paths)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{0, 60}, {18, 43}, {59, 60}} {
		got := collectRange(t, set, r[0], r[1])
		if len(got) != r[1]-r[0] {
			t.Fatalf("range %v: %d ids, want %d", r, len(got), r[1]-r[0])
		}
		for id, l := range got {
			if l != len(seqs[id]) {
				t.Fatalf("id %d: wrong sequence", id)
			}
		}
	}
}

// TestShardedViewResolution: ShardedView must unwrap to an existing shard
// set rather than nesting views, and cut fresh views over plain scanners.
func TestShardedViewResolution(t *testing.T) {
	db, _ := rangeTestDB(t, 40)

	v := ShardedView(db, 3)
	if v.NumShards() < 1 || v.Len() != 40 {
		t.Fatalf("view over MemDB: shards=%d len=%d", v.NumShards(), v.Len())
	}

	// An existing Sharded is returned as-is, even under a wrapper.
	sh := ShardScanner(db, 2)
	if got := ShardedView(sh, 5); got != sh {
		t.Errorf("ShardedView re-cut an existing shard set")
	}
	wrapped := &RetryScanner{Inner: sh, MaxRetries: 1}
	if got := ShardedView(wrapped, 5); got != sh {
		t.Errorf("ShardedView did not unwrap to the existing shard set")
	}
}
