package seqdb

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/pattern"
)

// Disk formats: a fixed header followed by varint-encoded sequences.
//
// LSQ2 (current, checksummed):
//
//	magic   [4]byte  "LSQ2"
//	n       uint64   number of sequences (little endian)
//	per sequence: uvarint length, then length uvarint symbols,
//	              then crc32 [4]byte (little endian) — CRC32-IEEE over the
//	              sequence's encoded bytes (length varint + symbol varints)
//	trailer [8]byte  diskTrailer — marks clean end-of-stream
//
// LSQ1 (legacy, read-only):
//
//	magic   [4]byte  "LSQ1"
//	n       uint64   number of sequences (little endian)
//	per sequence: uvarint length, then length uvarint symbols
//
// Symbols are stored as their non-negative integer values; the eternal
// symbol never appears in raw data. Scans of both versions verify clean EOF
// after the declared sequence count; LSQ2 additionally detects any flipped
// byte or truncation inside a payload and reports the offending sequence.
var (
	diskMagic   = [4]byte{'L', 'S', 'Q', '1'}
	diskMagicV2 = [4]byte{'L', 'S', 'Q', '2'}
	// diskTrailer ends an LSQ2 stream. Its first byte is an invalid uvarint
	// length (0), so a reader that misses the boundary errors immediately.
	diskTrailer = [8]byte{0x00, 'L', 'S', 'Q', '2', 'E', 'N', 'D'}
)

// MaxSequenceLen bounds a single sequence's length when reading the disk
// formats, so a corrupt length field cannot trigger an unbounded
// allocation.
const MaxSequenceLen = 1 << 24

// Writer streams sequences into the on-disk format. Close appends the
// trailer, patches the sequence count into the header, and fsyncs.
type Writer struct {
	f      *os.File
	bw     *bufio.Writer
	n      uint64
	enc    []byte
	legacy bool
	closed bool
}

// CreateFile opens path for writing in the current (LSQ2) format and emits
// the header.
func CreateFile(path string) (*Writer, error) {
	return createFile(path, false)
}

// CreateLegacyFile opens path for writing in the legacy LSQ1 format (no
// checksums, no trailer) — for compatibility tooling and tests exercising
// the legacy read path.
func CreateLegacyFile(path string) (*Writer, error) {
	return createFile(path, true)
}

func createFile(path string, legacy bool) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("seqdb: create: %w", err)
	}
	w, err := newWriter(f, legacy)
	if err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// newWriter emits the header onto an already-open file.
func newWriter(f *os.File, legacy bool) (*Writer, error) {
	w := &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<20), legacy: legacy}
	magic := diskMagicV2
	if legacy {
		magic = diskMagic
	}
	if _, err := w.bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("seqdb: write header: %w", err)
	}
	var zero [8]byte
	if _, err := w.bw.Write(zero[:]); err != nil {
		return nil, fmt.Errorf("seqdb: write header: %w", err)
	}
	return w, nil
}

// Write appends one sequence.
func (w *Writer) Write(seq []pattern.Symbol) error {
	if w.closed {
		return fmt.Errorf("seqdb: write after Close")
	}
	if len(seq) == 0 {
		return fmt.Errorf("seqdb: empty sequence")
	}
	w.enc = binary.AppendUvarint(w.enc[:0], uint64(len(seq)))
	for _, d := range seq {
		if d.IsEternal() {
			return fmt.Errorf("seqdb: sequence contains the eternal symbol")
		}
		w.enc = binary.AppendUvarint(w.enc, uint64(d))
	}
	if _, err := w.bw.Write(w.enc); err != nil {
		return fmt.Errorf("seqdb: write: %w", err)
	}
	if !w.legacy {
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(w.enc))
		if _, err := w.bw.Write(crc[:]); err != nil {
			return fmt.Errorf("seqdb: write: %w", err)
		}
	}
	w.n++
	return nil
}

// Close appends the trailer (LSQ2), flushes, patches the sequence count,
// fsyncs, and closes the file. A closed Writer rejects further Writes.
func (w *Writer) Close() error {
	if w.closed {
		return fmt.Errorf("seqdb: Close on closed writer")
	}
	w.closed = true
	if !w.legacy {
		if _, err := w.bw.Write(diskTrailer[:]); err != nil {
			w.f.Close()
			return fmt.Errorf("seqdb: write trailer: %w", err)
		}
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("seqdb: flush: %w", err)
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], w.n)
	if _, err := w.f.WriteAt(cnt[:], int64(len(diskMagic))); err != nil {
		w.f.Close()
		return fmt.Errorf("seqdb: patch count: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("seqdb: sync: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("seqdb: close: %w", err)
	}
	return nil
}

// DiskDB is a disk-resident sequence database. Every Scan streams the file
// from the start with a buffered reader; nothing beyond the current sequence
// is held in memory.
type DiskDB struct {
	path    string
	n       int
	scans   atomic.Int64 // readable concurrently with a scan (progress UIs)
	version int          // 1 = LSQ1 (legacy), 2 = LSQ2 (checksummed)
	bytes   atomic.Int64
}

// OpenFile validates the header of path and returns a DiskDB over it. Both
// the current LSQ2 and the legacy LSQ1 formats are accepted.
func OpenFile(path string) (*DiskDB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("seqdb: open: %w", err)
	}
	defer f.Close()
	var hdr [12]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("seqdb: read header: %w", err)
	}
	version := 0
	switch [4]byte(hdr[:4]) {
	case diskMagic:
		version = 1
	case diskMagicV2:
		version = 2
	default:
		return nil, fmt.Errorf("seqdb: %s: bad magic %q", path, hdr[:4])
	}
	n := binary.LittleEndian.Uint64(hdr[4:])
	return &DiskDB{path: path, n: int(n), version: version}, nil
}

// Len returns the number of sequences.
func (db *DiskDB) Len() int { return db.n }

// Scans returns the number of completed full passes. Safe to call
// concurrently with a running scan.
func (db *DiskDB) Scans() int { return int(db.scans.Load()) }

// ResetScans zeroes the pass counter.
func (db *DiskDB) ResetScans() { db.scans.Store(0) }

// Path returns the backing file path.
func (db *DiskDB) Path() string { return db.path }

// BytesRead returns the total bytes read from the backing file across all
// passes so far (header and buffered readahead included) — the telemetry
// layer's real-I/O counter.
func (db *DiskDB) BytesRead() int64 { return db.bytes.Load() }

// countingReader tallies bytes pulled from the underlying reader.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// Version returns the on-disk format version (1 = legacy LSQ1, 2 = LSQ2).
func (db *DiskDB) Version() int { return db.version }

// Scan implements Scanner by streaming the file.
func (db *DiskDB) Scan(fn func(id int, seq []pattern.Symbol) error) error {
	return db.ScanContext(nil, fn)
}

// crcReader records every byte it yields so the consumed encoding of a
// sequence can be checksummed without re-encoding.
type crcReader struct {
	br  *bufio.Reader
	buf []byte
}

func (r *crcReader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err == nil {
		r.buf = append(r.buf, b)
	}
	return b, err
}

// ScanContext implements ContextScanner. Corruption — a checksum mismatch,
// invalid length, truncated payload (LSQ2), missing trailer, or trailing
// garbage — is reported as a *CorruptError naming the offending sequence.
func (db *DiskDB) ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error {
	return db.scanRange(ctx, 0, db.n, fn, true)
}

// ScanRangeContext implements RangeScanner: the format has no index, so the
// prefix before lo is still decoded (and checksum-verified), but reading
// stops right after hi-1 — a shard over the file's head never pays for its
// tail. A range delivery is a partial pass and does not count as a scan.
func (db *DiskDB) ScanRangeContext(ctx context.Context, lo, hi int, fn func(id int, seq []pattern.Symbol) error) error {
	if lo < 0 {
		lo = 0
	}
	if hi > db.n {
		hi = db.n
	}
	if lo >= hi {
		return nil
	}
	return db.scanRange(ctx, lo, hi, fn, false)
}

// scanRange streams sequences [0, hi), delivering [lo, hi). With full set it
// additionally verifies the end-of-stream trailer, rejects trailing garbage,
// and counts the completed pass.
func (db *DiskDB) scanRange(ctx context.Context, lo, hi int, fn func(id int, seq []pattern.Symbol) error, full bool) error {
	f, err := os.Open(db.path)
	if err != nil {
		return fmt.Errorf("seqdb: open: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(&countingReader{r: f, n: &db.bytes}, 1<<20)
	if _, err := br.Discard(12); err != nil {
		return fmt.Errorf("seqdb: skip header: %w", err)
	}
	checksummed := db.version >= 2
	rr := &crcReader{br: br}
	var seq []pattern.Symbol
	for i := 0; i < hi; i++ {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		rr.buf = rr.buf[:0]
		l, err := binary.ReadUvarint(rr)
		if err != nil {
			return corrupt(db.path, i, "truncated length", err)
		}
		if l == 0 || l > MaxSequenceLen {
			return corrupt(db.path, i, fmt.Sprintf("invalid length %d", l), nil)
		}
		if cap(seq) < int(l) {
			seq = make([]pattern.Symbol, l)
		}
		seq = seq[:l]
		for j := range seq {
			v, err := binary.ReadUvarint(rr)
			if err != nil {
				return corrupt(db.path, i, fmt.Sprintf("truncated at symbol %d", j), err)
			}
			seq[j] = pattern.Symbol(v)
		}
		if checksummed {
			var stored [4]byte
			if _, err := io.ReadFull(br, stored[:]); err != nil {
				return corrupt(db.path, i, "truncated checksum", err)
			}
			if got, want := crc32.ChecksumIEEE(rr.buf), binary.LittleEndian.Uint32(stored[:]); got != want {
				return corrupt(db.path, i, fmt.Sprintf("checksum mismatch (got %08x, want %08x)", got, want), nil)
			}
		}
		if i >= lo {
			if err := fn(i, seq); err != nil {
				return err
			}
		}
	}
	if !full {
		return nil
	}
	if checksummed {
		var tr [8]byte
		if _, err := io.ReadFull(br, tr[:]); err != nil {
			return corrupt(db.path, -1, "missing end-of-stream trailer", err)
		}
		if tr != diskTrailer {
			return corrupt(db.path, -1, fmt.Sprintf("bad end-of-stream trailer %q", tr[:]), nil)
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return corrupt(db.path, -1, fmt.Sprintf("trailing garbage after %d sequences", db.n), nil)
	}
	db.scans.Add(1)
	return nil
}

// WriteFile persists an in-memory database to path in the LSQ2 format,
// crash-atomically: the data is written to a temp file in the destination
// directory, fsynced, and renamed over path, so a crash never leaves a
// partial or torn database behind.
func WriteFile(path string, db *MemDB) error {
	return atomicWrite(path, func(tmp string) error {
		w, err := CreateFile(tmp)
		if err != nil {
			return err
		}
		for _, seq := range db.seqs { // direct iteration: persisting is not a mining scan
			if err := w.Write(seq); err != nil {
				w.f.Close()
				return err
			}
		}
		return w.Close()
	})
}

// atomicWrite runs write against a temp file in path's directory, then
// renames it over path. The temp file is removed on any failure.
func atomicWrite(path string, write func(tmp string) error) error {
	dir := filepath.Dir(path)
	tmpf, err := os.CreateTemp(dir, ".lsqtmp-*")
	if err != nil {
		return fmt.Errorf("seqdb: temp file: %w", err)
	}
	tmp := tmpf.Name()
	tmpf.Close()
	if err := write(tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("seqdb: rename: %w", err)
	}
	// Best-effort directory sync so the rename itself survives a crash.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// LoadFile reads an on-disk database fully into memory.
func LoadFile(path string) (*MemDB, error) {
	disk, err := OpenFile(path)
	if err != nil {
		return nil, err
	}
	mem := &MemDB{seqs: make([][]pattern.Symbol, 0, disk.Len())}
	err = disk.Scan(func(id int, seq []pattern.Symbol) error {
		cp := make([]pattern.Symbol, len(seq))
		copy(cp, seq)
		mem.seqs = append(mem.seqs, cp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mem, nil
}
