package seqdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/pattern"
)

// Disk format: a fixed header followed by varint-encoded sequences.
//
//	magic   [4]byte  "LSQ1"
//	n       uint64   number of sequences (little endian)
//	per sequence: uvarint length, then length uvarint symbols
//
// Symbols are stored as their non-negative integer values; the eternal
// symbol never appears in raw data.
var diskMagic = [4]byte{'L', 'S', 'Q', '1'}

// MaxSequenceLen bounds a single sequence's length when reading the disk
// formats, so a corrupt length field cannot trigger an unbounded
// allocation.
const MaxSequenceLen = 1 << 24

// Writer streams sequences into the on-disk format. Close patches the
// sequence count into the header.
type Writer struct {
	f   *os.File
	bw  *bufio.Writer
	n   uint64
	buf []byte
}

// CreateFile opens path for writing and emits the header.
func CreateFile(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("seqdb: create: %w", err)
	}
	w := &Writer{f: f, bw: bufio.NewWriterSize(f, 1<<20), buf: make([]byte, binary.MaxVarintLen64)}
	if _, err := w.bw.Write(diskMagic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("seqdb: write header: %w", err)
	}
	var zero [8]byte
	if _, err := w.bw.Write(zero[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("seqdb: write header: %w", err)
	}
	return w, nil
}

// Write appends one sequence.
func (w *Writer) Write(seq []pattern.Symbol) error {
	if len(seq) == 0 {
		return fmt.Errorf("seqdb: empty sequence")
	}
	k := binary.PutUvarint(w.buf, uint64(len(seq)))
	if _, err := w.bw.Write(w.buf[:k]); err != nil {
		return fmt.Errorf("seqdb: write: %w", err)
	}
	for _, d := range seq {
		if d.IsEternal() {
			return fmt.Errorf("seqdb: sequence contains the eternal symbol")
		}
		k = binary.PutUvarint(w.buf, uint64(d))
		if _, err := w.bw.Write(w.buf[:k]); err != nil {
			return fmt.Errorf("seqdb: write: %w", err)
		}
	}
	w.n++
	return nil
}

// Close flushes, patches the sequence count, and closes the file.
func (w *Writer) Close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("seqdb: flush: %w", err)
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], w.n)
	if _, err := w.f.WriteAt(cnt[:], int64(len(diskMagic))); err != nil {
		w.f.Close()
		return fmt.Errorf("seqdb: patch count: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("seqdb: close: %w", err)
	}
	return nil
}

// DiskDB is a disk-resident sequence database. Every Scan streams the file
// from the start with a buffered reader; nothing beyond the current sequence
// is held in memory.
type DiskDB struct {
	path  string
	n     int
	scans int
}

// OpenFile validates the header of path and returns a DiskDB over it.
func OpenFile(path string) (*DiskDB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("seqdb: open: %w", err)
	}
	defer f.Close()
	var hdr [12]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("seqdb: read header: %w", err)
	}
	if [4]byte(hdr[:4]) != diskMagic {
		return nil, fmt.Errorf("seqdb: %s: bad magic %q", path, hdr[:4])
	}
	n := binary.LittleEndian.Uint64(hdr[4:])
	return &DiskDB{path: path, n: int(n)}, nil
}

// Len returns the number of sequences.
func (db *DiskDB) Len() int { return db.n }

// Scans returns the number of completed full passes.
func (db *DiskDB) Scans() int { return db.scans }

// ResetScans zeroes the pass counter.
func (db *DiskDB) ResetScans() { db.scans = 0 }

// Path returns the backing file path.
func (db *DiskDB) Path() string { return db.path }

// Scan implements Scanner by streaming the file.
func (db *DiskDB) Scan(fn func(id int, seq []pattern.Symbol) error) error {
	f, err := os.Open(db.path)
	if err != nil {
		return fmt.Errorf("seqdb: open: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	if _, err := br.Discard(12); err != nil {
		return fmt.Errorf("seqdb: skip header: %w", err)
	}
	var seq []pattern.Symbol
	for i := 0; i < db.n; i++ {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("seqdb: sequence %d length: %w", i, err)
		}
		if l == 0 || l > MaxSequenceLen {
			return fmt.Errorf("seqdb: sequence %d has invalid length %d", i, l)
		}
		if cap(seq) < int(l) {
			seq = make([]pattern.Symbol, l)
		}
		seq = seq[:l]
		for j := range seq {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return fmt.Errorf("seqdb: sequence %d symbol %d: %w", i, j, err)
			}
			seq[j] = pattern.Symbol(v)
		}
		if err := fn(i, seq); err != nil {
			return err
		}
	}
	db.scans++
	return nil
}

// WriteFile persists an in-memory database to path in the disk format.
func WriteFile(path string, db *MemDB) error {
	w, err := CreateFile(path)
	if err != nil {
		return err
	}
	for _, seq := range db.seqs { // direct iteration: persisting is not a mining scan
		if err := w.Write(seq); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.Close()
}

// LoadFile reads an on-disk database fully into memory.
func LoadFile(path string) (*MemDB, error) {
	disk, err := OpenFile(path)
	if err != nil {
		return nil, err
	}
	mem := &MemDB{seqs: make([][]pattern.Symbol, 0, disk.Len())}
	err = disk.Scan(func(id int, seq []pattern.Symbol) error {
		cp := make([]pattern.Symbol, len(seq))
		copy(cp, seq)
		mem.seqs = append(mem.seqs, cp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mem, nil
}
