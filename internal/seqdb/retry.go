package seqdb

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/pattern"
)

// ScanStats counts a scanner's pass outcomes, surfaced through core.Result
// so long mining runs can report how rough the ride was.
type ScanStats struct {
	// Completed counts passes that finished cleanly.
	Completed int
	// Attempts counts pass attempts, including failed ones.
	Attempts int
	// Retries counts attempts re-run after a transient failure.
	Retries int
	// Transient and Permanent count the failures observed by class.
	Transient int
	Permanent int
}

// StatsReporter is implemented by scanners that track ScanStats
// (RetryScanner); core.Mine surfaces the stats in its Result when the
// database it was given implements this.
type StatsReporter interface {
	ScanStats() ScanStats
}

// RetryScanner wraps a Scanner and re-runs a pass that fails with a
// transient error, with capped exponential backoff between attempts. Scan
// counting is delegated to the wrapped scanner, which only counts completed
// passes — so a run that survives transient faults reports exactly the same
// scan count as a fault-free run.
//
// A retried pass restarts from sequence 0, so per-pass consumer state must
// be rebuilt per attempt: drive passes through ScanPass/ScanPassContext
// (RetryScanner implements PassScanner), which re-invokes the setup on every
// attempt. The plain Scan/ScanContext methods retry with the same callback
// and are only safe for replay-tolerant (stateless or self-resetting)
// callbacks.
type RetryScanner struct {
	// Inner is the wrapped scanner (required).
	Inner Scanner
	// MaxRetries bounds re-runs per pass (default 3; negative disables
	// retrying, classifying only).
	MaxRetries int
	// BaseDelay is the first backoff (default 10ms); it doubles per retry
	// up to MaxDelay (default 1s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Sleep, when set, replaces the default backoff sleeper (injectable for
	// tests). The default honors ctx: a cancellation arriving mid-backoff
	// aborts the wait immediately and returns ctx.Err(). A custom Sleep is
	// called as-is, so cancellation is only observed after it returns.
	Sleep func(time.Duration)
	// Jitter, when set, applies full jitter to the backoff: each wait is
	// drawn uniformly from [1, delay] instead of sleeping the deterministic
	// capped-exponential delay, so N workers retrying a shared failing
	// store spread their re-runs out instead of hammering it in lockstep
	// (the AWS "full jitter" policy). The exponential schedule still drives
	// the upper bound, so the worst-case wait is unchanged. The generator
	// is used only from the scanning goroutine (scanners are not safe for
	// concurrent scans), so an unshared *rand.Rand needs no locking; seed
	// it for deterministic tests. Nil keeps the deterministic backoff.
	Jitter *rand.Rand
	// Classify reports whether an error is transient (default IsTransient).
	Classify func(error) bool

	stats ScanStats
}

// NewRetryScanner wraps inner with the default retry policy.
func NewRetryScanner(inner Scanner) *RetryScanner {
	return &RetryScanner{Inner: inner}
}

// Len returns the wrapped scanner's sequence count.
func (r *RetryScanner) Len() int { return r.Inner.Len() }

// Scans returns the wrapped scanner's completed-pass count.
func (r *RetryScanner) Scans() int { return r.Inner.Scans() }

// ResetScans zeroes the wrapped scanner's pass counter (retry stats are
// kept; they describe the scanner's whole life).
func (r *RetryScanner) ResetScans() { r.Inner.ResetScans() }

// ScanStats returns the retry/error counters accumulated so far.
func (r *RetryScanner) ScanStats() ScanStats { return r.stats }

// Scan implements Scanner. The callback must be replay-tolerant (a failed
// attempt is re-run from sequence 0); prefer ScanPass for stateful passes.
func (r *RetryScanner) Scan(fn func(id int, seq []pattern.Symbol) error) error {
	return r.ScanContext(nil, fn)
}

// ScanContext implements ContextScanner with the same replay caveat as Scan.
func (r *RetryScanner) ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error {
	return r.ScanPassContext(ctx, func() (func(id int, seq []pattern.Symbol) error, error) {
		return fn, nil
	})
}

// ScanPassContext implements PassScanner: each attempt calls setup afresh,
// then runs one cancellable pass of the wrapped scanner; transient failures
// are retried with capped exponential backoff, everything else returns
// immediately.
func (r *RetryScanner) ScanPassContext(ctx context.Context, setup PassFunc) error {
	return r.retryPass(ctx, setup, func(fn func(id int, seq []pattern.Symbol) error) error {
		return ScanContext(ctx, r.Inner, fn)
	})
}

// ScanRangePassContext implements RangePassScanner: one logical pass over the
// id range [lo, hi) of the wrapped scanner under the same retry policy as
// ScanPassContext. The range is scanned natively when the wrapped scanner
// implements RangeScanner and by a filtered full pass otherwise; either way a
// transient failure re-runs the whole range with fresh consumer state.
func (r *RetryScanner) ScanRangePassContext(ctx context.Context, lo, hi int, setup PassFunc) error {
	return r.retryPass(ctx, setup, func(fn func(id int, seq []pattern.Symbol) error) error {
		return scanRangeOnce(ctx, r.Inner, lo, hi, fn)
	})
}

// retryPass is the shared attempt loop: setup fresh state, run one pass via
// run, classify failures, back off and retry transients.
func (r *RetryScanner) retryPass(ctx context.Context, setup PassFunc, run func(fn func(id int, seq []pattern.Symbol) error) error) error {
	maxRetries := r.MaxRetries
	if maxRetries == 0 {
		maxRetries = 3
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	base := r.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxDelay := r.MaxDelay
	if maxDelay <= 0 {
		maxDelay = time.Second
	}
	classify := r.Classify
	if classify == nil {
		classify = IsTransient
	}

	delay := base
	for attempt := 1; ; attempt++ {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		fn, err := setup()
		if err != nil {
			return err
		}
		r.stats.Attempts++
		err = run(fn)
		if err == nil {
			r.stats.Completed++
			return nil
		}
		if cerr := ctxErr(ctx); cerr != nil {
			// Cancellation is never retried, whatever shape it surfaced in.
			return err
		}
		if !classify(err) {
			r.stats.Permanent++
			return err
		}
		r.stats.Transient++
		if attempt > maxRetries {
			return fmt.Errorf("seqdb: pass failed after %d attempts: %w", attempt, err)
		}
		r.stats.Retries++
		wait := delay
		if r.Jitter != nil {
			wait = 1 + time.Duration(r.Jitter.Int63n(int64(delay)))
		}
		if r.Sleep != nil {
			r.Sleep(wait)
		} else if err := sleepContext(ctx, wait); err != nil {
			return err
		}
		delay *= 2
		if delay > maxDelay {
			delay = maxDelay
		}
	}
}

// Path returns the wrapped scanner's backing file path when it has one
// (DiskDB, GzipDB), empty otherwise — so identity checks (e.g. a resumed
// run verifying it scans the same database) see through the retry layer.
func (r *RetryScanner) Path() string {
	if p, ok := r.Inner.(interface{ Path() string }); ok {
		return p.Path()
	}
	return ""
}

// sleepContext sleeps for d or until ctx is cancelled, whichever comes
// first, returning ctx.Err() in the latter case. A nil ctx sleeps plainly.
func sleepContext(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
