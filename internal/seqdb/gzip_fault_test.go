package seqdb

import (
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pattern"
)

// writeGzipSample writes sampleDB in the compressed format and returns the
// path and raw bytes.
func writeGzipSample(t *testing.T) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.lsqz")
	if err := WriteGzipFile(path, sampleDB()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

func TestGzipDetectsCorruptDeflateStream(t *testing.T) {
	path, raw := writeGzipSample(t)
	db, err := OpenGzipFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip every byte of the compressed body (after the 12-byte seqdb
	// header and the 10-byte gzip header) in turn. Whether flate chokes
	// mid-sequence or the gzip footer checksum catches it on drain, every
	// flip must surface as corruption.
	for i := 12 + 10; i < len(raw); i++ {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x10
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		err := db.Scan(func(int, []pattern.Symbol) error { return nil })
		if err == nil {
			t.Fatalf("flipped compressed byte %d not detected", i)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("flipped byte %d: %v is not a CorruptError", i, err)
		}
		if IsTransient(err) {
			t.Fatalf("flipped byte %d classified transient", i)
		}
	}
}

func TestGzipDetectsPrematureEOF(t *testing.T) {
	path, raw := writeGzipSample(t)
	db, err := OpenGzipFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the gzip footer (checksum verification fails on drain) and
	// deep inside the deflate body (decompression fails mid-sequence).
	for _, cut := range []int{len(raw) - 4, len(raw) - 9, 12 + 10 + 3} {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		err := db.Scan(func(int, []pattern.Symbol) error { return nil })
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncation at %d: err=%v, want CorruptError", cut, err)
		}
	}
	if db.Scans() != 0 {
		t.Error("failed passes counted as scans")
	}
}

func TestGzipRejectsTrailingGarbageInStream(t *testing.T) {
	path, raw := writeGzipSample(t)
	// Patch the declared count down to 3: the fourth sequence's bytes are
	// now trailing garbage inside the stream.
	bad := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint64(bad[4:], 3)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := OpenGzipFile(path)
	if err != nil {
		t.Fatal(err)
	}
	err = db.Scan(func(int, []pattern.Symbol) error { return nil })
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err=%v, want CorruptError", err)
	}
	if ce.Seq != -1 {
		t.Errorf("Seq=%d, want -1 (file-level)", ce.Seq)
	}
}

func TestGzipWriterRejectsWriteAfterClose(t *testing.T) {
	w, err := CreateGzipFile(filepath.Join(t.TempDir(), "x.lsqz"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write([]pattern.Symbol{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write([]pattern.Symbol{2}); err == nil {
		t.Error("Write after Close accepted")
	}
	if err := w.Close(); err == nil {
		t.Error("double Close accepted")
	}
}

func TestGzipScanContextCancels(t *testing.T) {
	path, _ := writeGzipSample(t)
	db, err := OpenGzipFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = db.ScanContext(ctx, func(int, []pattern.Symbol) error {
		t.Error("callback ran under a cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if db.Scans() != 0 {
		t.Error("cancelled pass counted as a scan")
	}
}
