package seqdb

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/pattern"
)

// ReadText parses one sequence per line, each a whitespace-separated list of
// symbol names resolved against the alphabet. Blank lines and lines starting
// with '#' are skipped.
func ReadText(r io.Reader, a *pattern.Alphabet) (*MemDB, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	db := &MemDB{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		seq, err := a.ParseSeq(line)
		if err != nil {
			return nil, fmt.Errorf("seqdb: line %d: %w", lineNo, err)
		}
		db.Append(seq)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seqdb: read: %w", err)
	}
	return db, nil
}

// WriteText renders the database one sequence per line using the alphabet.
func WriteText(w io.Writer, db *MemDB, a *pattern.Alphabet) error {
	bw := bufio.NewWriter(w)
	for _, seq := range db.seqs {
		if _, err := fmt.Fprintln(bw, a.FormatSeq(seq)); err != nil {
			return fmt.Errorf("seqdb: write: %w", err)
		}
	}
	return bw.Flush()
}

// ReadFASTA parses FASTA-formatted records, mapping each residue letter to a
// symbol via the alphabet (single-character names). Header lines start with
// '>'; sequence data may span multiple lines. Unknown residues are an error.
func ReadFASTA(r io.Reader, a *pattern.Alphabet) (*MemDB, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	db := &MemDB{}
	var cur []pattern.Symbol
	flush := func() {
		if len(cur) > 0 {
			db.Append(cur)
			cur = nil
		}
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ">") {
			flush()
			continue
		}
		for _, r := range line {
			s, err := a.Symbol(string(r))
			if err != nil {
				return nil, fmt.Errorf("seqdb: line %d: %w", lineNo, err)
			}
			cur = append(cur, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("seqdb: read: %w", err)
	}
	flush()
	return db, nil
}
