package seqdb

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/pattern"
	"repro/internal/testutil"
)

// TestRetryScannerFullJitterSpread verifies the full-jitter policy: every
// wait stays within (0, scheduled delay], and the draws actually spread out
// instead of reproducing the deterministic schedule.
func TestRetryScannerFullJitterSpread(t *testing.T) {
	const retries = 8
	base, cap := 100*time.Millisecond, time.Second
	inner := &failNScanner{MemDB: sampleDB(), fail: retries, err: MarkTransient(errors.New("blip"))}
	var slept []time.Duration
	r := &RetryScanner{
		Inner:      inner,
		MaxRetries: retries,
		BaseDelay:  base,
		MaxDelay:   cap,
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
		Jitter:     rand.New(rand.NewSource(testutil.Seed(t))),
	}
	if err := r.Scan(func(int, []pattern.Symbol) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(slept) != retries {
		t.Fatalf("slept %d times, want %d", len(slept), retries)
	}
	schedule := base
	distinct := map[time.Duration]bool{}
	for i, d := range slept {
		if d <= 0 || d > schedule {
			t.Errorf("wait[%d]=%v outside (0, %v]", i, d, schedule)
		}
		distinct[d] = true
		schedule *= 2
		if schedule > cap {
			schedule = cap
		}
	}
	// With 8 uniform draws over ranges up to 1s, collisions across all draws
	// are astronomically unlikely; require at least half to differ so the
	// test never flakes yet still catches a constant (jitterless) schedule.
	if len(distinct) < retries/2 {
		t.Errorf("only %d distinct waits among %v — jitter is not spreading", len(distinct), slept)
	}
}

// TestRetryScannerJitterBreaksLockstep models N workers sharing one failing
// store: each retries on its own jittered schedule, and their backoff
// sequences must not coincide (the lockstep the jitter exists to break).
func TestRetryScannerJitterBreaksLockstep(t *testing.T) {
	const workers, retries = 4, 5
	seed := testutil.Seed(t)
	sequences := make([][]time.Duration, workers)
	for w := 0; w < workers; w++ {
		inner := &failNScanner{MemDB: sampleDB(), fail: retries, err: MarkTransient(errors.New("blip"))}
		var slept []time.Duration
		r := &RetryScanner{
			Inner:      inner,
			MaxRetries: retries,
			Sleep:      func(d time.Duration) { slept = append(slept, d) },
			Jitter:     rand.New(rand.NewSource(seed + int64(w))),
		}
		if err := r.Scan(func(int, []pattern.Symbol) error { return nil }); err != nil {
			t.Fatal(err)
		}
		sequences[w] = slept
	}
	for w := 1; w < workers; w++ {
		same := true
		for i := range sequences[0] {
			if sequences[w][i] != sequences[0][i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("worker %d retries in lockstep with worker 0: %v", w, sequences[w])
		}
	}
}

// TestRetryScannerNilJitterKeepsDeterministicBackoff pins the default: with
// no Jitter source the capped-exponential schedule is exact (the behavior
// the pre-jitter tests assert, restated here as the explicit contract).
func TestRetryScannerNilJitterKeepsDeterministicBackoff(t *testing.T) {
	inner := &failNScanner{MemDB: sampleDB(), fail: 3, err: MarkTransient(errors.New("blip"))}
	var slept []time.Duration
	r := &RetryScanner{
		Inner:      inner,
		MaxRetries: 3,
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	}
	if err := r.Scan(func(int, []pattern.Symbol) error { return nil }); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("backoff[%d]=%v, want %v", i, slept[i], want[i])
		}
	}
}
