package seqdb

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/pattern"
)

// FuzzAppendDBReadFrom feeds arbitrary bytes to the append-log recovery path
// and checks its crash-safety contract: opening never panics, and either
// fails cleanly or yields a consistent prefix of intact records — the same
// prefix whether the log is opened read-write (with truncation) or read-only
// (without). Truncation is never silent: whenever recovery drops bytes,
// TruncatedBytes reports them.
func FuzzAppendDBReadFrom(f *testing.F) {
	dir := f.TempDir()
	good := filepath.Join(dir, "seed.lsa")
	db, err := CreateAppend(good)
	if err != nil {
		f.Fatal(err)
	}
	for _, seq := range [][]pattern.Symbol{{0, 1, 2}, {3}, {250, 1000}} {
		if _, err := db.Append(seq); err != nil {
			f.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		f.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)-1])                               // torn final checksum
	f.Add(raw[:14])                                       // torn first record
	f.Add(append(raw, 0x03, 0x01))                        // trailing garbage
	f.Add([]byte("LSA1"))                                 // bare short header
	f.Add([]byte("LSA1\x00\x00\x00\x00\x00\x00\x00\x00")) // empty log
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		roPath := filepath.Join(dir, "ro.lsa")
		if err := os.WriteFile(roPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ro, roErr := OpenAppendRead(roPath)
		var roSeqs [][]pattern.Symbol
		if roErr == nil {
			err := ro.Scan(func(id int, seq []pattern.Symbol) error {
				if len(seq) == 0 {
					t.Fatal("read-only scan produced an empty sequence")
				}
				cp := make([]pattern.Symbol, len(seq))
				copy(cp, seq)
				roSeqs = append(roSeqs, cp)
				return nil
			})
			if err != nil {
				t.Fatalf("scan of recovered prefix failed: %v", err)
			}
		}

		rwPath := filepath.Join(dir, "rw.lsa")
		if err := os.WriteFile(rwPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		rw, rwErr := OpenAppend(rwPath)
		if (roErr == nil) != (rwErr == nil) {
			// One legitimate divergence: read-write repairs short headers.
			if !(roErr != nil && rwErr == nil && len(data) < 12) {
				t.Fatalf("read-only err=%v, read-write err=%v", roErr, rwErr)
			}
		}
		if rwErr != nil {
			return
		}
		defer rw.Close()
		var rwSeqs [][]pattern.Symbol
		err := rw.Scan(func(id int, seq []pattern.Symbol) error {
			cp := make([]pattern.Symbol, len(seq))
			copy(cp, seq)
			rwSeqs = append(rwSeqs, cp)
			return nil
		})
		if err != nil {
			t.Fatalf("scan after truncating recovery failed: %v", err)
		}
		if roErr == nil && !reflect.DeepEqual(roSeqs, rwSeqs) {
			t.Fatalf("read-only recovered %v, read-write %v", roSeqs, rwSeqs)
		}
		// The truncated log must accept appends and stay recoverable.
		if _, err := rw.Append([]pattern.Symbol{9}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		reopened, err := OpenAppend(rwPath)
		if err != nil {
			t.Fatalf("reopen after recovery+append: %v", err)
		}
		defer reopened.Close()
		if reopened.TruncatedBytes() != 0 {
			t.Fatalf("recovered log still carries %d torn bytes", reopened.TruncatedBytes())
		}
		if got := reopened.Total(); got != len(rwSeqs)+1 {
			t.Fatalf("reopened Total = %d, want %d", got, len(rwSeqs)+1)
		}
	})
}
