package seqdb

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/pattern"
)

// Append-only log format LSA1: the streaming store behind lspmine -follow
// and the lspserve append endpoint.
//
//	magic    [4]byte  "LSA1"
//	reserved [8]byte  zero
//	per sequence: uvarint length, then length uvarint symbols,
//	              then crc32 [4]byte (little endian) — CRC32-IEEE over the
//	              sequence's encoded bytes, exactly the LSQ2 record format
//
// Unlike LSQ2 there is no sequence count to patch and no trailer: the log is
// closed by nothing, so a crash can only leave a torn final record, which
// recovery detects by its checksum (or truncated payload) and drops. The
// live window's logical head — for sliding-window expiry — is persisted in a
// crash-atomic sidecar file (path + ".head") instead of mutating the log.
var appendMagic = [4]byte{'L', 'S', 'A', '1'}

// headSuffix names the sidecar carrying the logical head of an expired log.
const headSuffix = ".head"

// AppendDB is an append-only, crash-safe sequence log. Sequences get stable
// absolute ids (0-based append order); sliding-window expiry advances a
// logical head so scans deliver only the live window [Start, Total) with
// window-relative ids 0..Len()-1. One read-write handle may append while
// other (read-only) handles scan the prefix they observed at open.
type AppendDB struct {
	path      string
	f         *os.File // nil when read-only
	mu        sync.Mutex
	enc       []byte
	offsets   []int64 // offsets[i] = file offset of record i; offsets[total] = end
	start     int     // logical head: absolute id of the oldest live sequence
	scans     atomic.Int64
	bytes     atomic.Int64
	recovered int64 // bytes of torn/garbage tail dropped at open
}

// CreateAppend creates a fresh append log at path (failing if one exists).
func CreateAppend(path string) (*AppendDB, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("seqdb: create append log: %w", err)
	}
	var hdr [12]byte
	copy(hdr[:], appendMagic[:])
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("seqdb: write append header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("seqdb: sync append header: %w", err)
	}
	return &AppendDB{path: path, f: f, offsets: []int64{12}}, nil
}

// OpenAppend opens path for appending, creating it when absent. Recovery
// scans the log to the last intact record and truncates anything after it —
// under the append discipline that tail can only be a torn final record from
// a crash mid-append (TruncatedBytes reports how much was dropped).
func OpenAppend(path string) (*AppendDB, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("seqdb: open append log: %w", err)
	}
	db, err := recoverAppend(path, f, true)
	if err != nil {
		f.Close()
		return nil, err
	}
	return db, nil
}

// OpenAppendRead opens path read-only: the torn-tail rule still applies (the
// scanable prefix ends at the last intact record) but the file is left
// untouched, so a reader can mine a log another process is appending to.
// Records appended after the open become visible through Refresh (which
// ScanSince performs implicitly).
func OpenAppendRead(path string) (*AppendDB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("seqdb: open append log: %w", err)
	}
	db, err := recoverAppend(path, f, false)
	f.Close() // scans reopen per pass, like DiskDB
	if err != nil {
		return nil, err
	}
	db.f = nil
	return db, nil
}

// recoverAppend validates the header, indexes every intact record, and (in
// read-write mode) truncates the torn tail. Only EOF-shaped decode failures
// and checksum mismatches end the prefix; a real I/O error is reported.
func recoverAppend(path string, f *os.File, rw bool) (*AppendDB, error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("seqdb: %s: %w", path, err)
	}
	var hdr [12]byte
	copy(hdr[:], appendMagic[:])
	if size < 12 {
		if !rw {
			return nil, fmt.Errorf("seqdb: %s: truncated append header", path)
		}
		// A crash mid-create can leave a short header; any prefix of the
		// 12-byte header holds no records, so rewriting it loses nothing.
		var got [12]byte
		if _, err := f.ReadAt(got[:size], 0); err != nil && err != io.EOF {
			return nil, fmt.Errorf("seqdb: %s: %w", path, err)
		}
		if string(got[:size]) != string(hdr[:size]) {
			return nil, fmt.Errorf("seqdb: %s: not an append log", path)
		}
		if err := f.Truncate(0); err != nil {
			return nil, fmt.Errorf("seqdb: %s: %w", path, err)
		}
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			return nil, fmt.Errorf("seqdb: %s: write append header: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("seqdb: %s: %w", path, err)
		}
		return &AppendDB{path: path, f: f, offsets: []int64{12}}, nil
	}
	var got [12]byte
	if _, err := f.ReadAt(got[:], 0); err != nil {
		return nil, fmt.Errorf("seqdb: %s: read header: %w", path, err)
	}
	if got != hdr {
		return nil, fmt.Errorf("seqdb: %s: bad append magic %q", path, got[:4])
	}

	offsets := []int64{12}
	br := bufio.NewReaderSize(io.NewSectionReader(f, 12, size-12), 1<<20)
	rr := &crcReader{br: br}
	end := int64(12)
	for end < size {
		rr.buf = rr.buf[:0]
		n, err := readAppendRecord(rr, br, nil)
		if err != nil {
			if isTornTail(err) {
				break
			}
			return nil, fmt.Errorf("seqdb: %s: record %d: %w", path, len(offsets)-1, err)
		}
		end += n
		offsets = append(offsets, end)
	}
	db := &AppendDB{path: path, offsets: offsets, recovered: size - end}
	if rw {
		db.f = f
		if db.recovered > 0 {
			if err := f.Truncate(end); err != nil {
				return nil, fmt.Errorf("seqdb: %s: truncate torn tail: %w", path, err)
			}
			if err := f.Sync(); err != nil {
				return nil, fmt.Errorf("seqdb: %s: %w", path, err)
			}
		}
	}
	start, err := readHead(path)
	if err != nil {
		return nil, err
	}
	if start > len(offsets)-1 {
		start = len(offsets) - 1
	}
	db.start = start
	return db, nil
}

// isTornTail reports whether a record decode failure is consistent with a
// torn final record or trailing garbage (anything the checksummed format
// detects), as opposed to an I/O error worth surfacing.
func isTornTail(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, errBadRecord)
}

// errBadRecord marks a structurally invalid record (bad length or checksum).
var errBadRecord = errors.New("seqdb: invalid append record")

// readAppendRecord decodes one record through the recording reader rr (its
// buf must be reset by the caller), verifying the checksum read from br. The
// decoded sequence is appended to *seq when seq is non-nil. It returns the
// record's total on-disk length.
func readAppendRecord(rr *crcReader, br *bufio.Reader, seq *[]pattern.Symbol) (int64, error) {
	l, err := binary.ReadUvarint(rr)
	if err != nil {
		return 0, err
	}
	if l == 0 || l > MaxSequenceLen {
		return 0, fmt.Errorf("%w: length %d", errBadRecord, l)
	}
	if seq != nil {
		*seq = (*seq)[:0]
	}
	for j := uint64(0); j < l; j++ {
		v, err := binary.ReadUvarint(rr)
		if err != nil {
			return 0, err
		}
		if seq != nil {
			*seq = append(*seq, pattern.Symbol(v))
		}
	}
	var stored [4]byte
	if _, err := io.ReadFull(br, stored[:]); err != nil {
		return 0, err
	}
	if got, want := crc32.ChecksumIEEE(rr.buf), binary.LittleEndian.Uint32(stored[:]); got != want {
		return 0, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", errBadRecord, got, want)
	}
	return int64(len(rr.buf)) + 4, nil
}

// readHead loads the sidecar's logical head (0 when no sidecar exists).
func readHead(path string) (int, error) {
	b, err := os.ReadFile(path + headSuffix)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("seqdb: read head sidecar: %w", err)
	}
	n, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil || n < 0 {
		return 0, fmt.Errorf("seqdb: %s%s: invalid head %q", path, headSuffix, b)
	}
	return n, nil
}

// Append adds one sequence to the log and returns its absolute id. The
// record is written in one syscall but not fsynced; call Sync to make a
// batch durable.
func (db *AppendDB) Append(seq []pattern.Symbol) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.f == nil {
		return 0, fmt.Errorf("seqdb: append to read-only log %s", db.path)
	}
	if len(seq) == 0 {
		return 0, fmt.Errorf("seqdb: empty sequence")
	}
	db.enc = binary.AppendUvarint(db.enc[:0], uint64(len(seq)))
	for _, d := range seq {
		if d.IsEternal() {
			return 0, fmt.Errorf("seqdb: sequence contains the eternal symbol")
		}
		db.enc = binary.AppendUvarint(db.enc, uint64(d))
	}
	db.enc = binary.LittleEndian.AppendUint32(db.enc, crc32.ChecksumIEEE(db.enc))
	end := db.offsets[len(db.offsets)-1]
	if _, err := db.f.WriteAt(db.enc, end); err != nil {
		return 0, fmt.Errorf("seqdb: append: %w", err)
	}
	db.offsets = append(db.offsets, end+int64(len(db.enc)))
	return len(db.offsets) - 2, nil
}

// Sync fsyncs appended records to stable storage.
func (db *AppendDB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.f == nil {
		return nil
	}
	if err := db.f.Sync(); err != nil {
		return fmt.Errorf("seqdb: sync: %w", err)
	}
	return nil
}

// Close closes the write handle (a no-op for read-only logs).
func (db *AppendDB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.f == nil {
		return nil
	}
	f := db.f
	db.f = nil
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("seqdb: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("seqdb: close: %w", err)
	}
	return nil
}

// ExpireBefore advances the logical head to absolute id abs: sequences below
// it leave the live window. The head is persisted crash-atomically in the
// sidecar before the call returns and never moves backward.
func (db *AppendDB) ExpireBefore(abs int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.f == nil {
		return fmt.Errorf("seqdb: expire on read-only log %s", db.path)
	}
	if abs <= db.start {
		return nil
	}
	if total := len(db.offsets) - 1; abs > total {
		abs = total
	}
	err := atomicWrite(db.path+headSuffix, func(tmp string) error {
		return os.WriteFile(tmp, []byte(strconv.Itoa(abs)+"\n"), 0o644)
	})
	if err != nil {
		return fmt.Errorf("seqdb: persist head: %w", err)
	}
	db.start = abs
	return nil
}

// Total returns the number of sequences ever appended (absolute id space).
func (db *AppendDB) Total() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.offsets) - 1
}

// Start returns the absolute id of the oldest live sequence.
func (db *AppendDB) Start() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.start
}

// Len returns the live window's size — the Scanner-visible sequence count.
func (db *AppendDB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.offsets) - 1 - db.start
}

// TruncatedBytes reports how many bytes of torn or trailing garbage the
// opening recovery dropped (or, read-only, ignored).
func (db *AppendDB) TruncatedBytes() int64 { return db.recovered }

// Path returns the backing file path.
func (db *AppendDB) Path() string { return db.path }

// BytesRead returns total bytes read across scans (telemetry).
func (db *AppendDB) BytesRead() int64 { return db.bytes.Load() }

// Scans returns the number of completed full passes over the live window.
func (db *AppendDB) Scans() int { return int(db.scans.Load()) }

// ResetScans zeroes the pass counter.
func (db *AppendDB) ResetScans() { db.scans.Store(0) }

// Scan implements Scanner over the live window (ids 0..Len()-1).
func (db *AppendDB) Scan(fn func(id int, seq []pattern.Symbol) error) error {
	return db.ScanContext(nil, fn)
}

// ScanContext implements ContextScanner over the live window. The window is
// snapshotted at the start of the pass, so records appended mid-scan are not
// delivered (they belong to the next pass).
func (db *AppendDB) ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error {
	db.mu.Lock()
	lo, hi := db.start, len(db.offsets)-1
	db.mu.Unlock()
	if err := db.deliver(ctx, lo, hi, func(abs int, seq []pattern.Symbol) error {
		return fn(abs-lo, seq)
	}); err != nil {
		return err
	}
	db.scans.Add(1)
	return nil
}

// ScanRangeContext implements RangeScanner over window-relative ids [lo, hi).
// A range delivery is a partial pass and does not count as a scan.
func (db *AppendDB) ScanRangeContext(ctx context.Context, lo, hi int, fn func(id int, seq []pattern.Symbol) error) error {
	db.mu.Lock()
	start, total := db.start, len(db.offsets)-1
	db.mu.Unlock()
	if lo < 0 {
		lo = 0
	}
	if hi > total-start {
		hi = total - start
	}
	if lo >= hi {
		return nil
	}
	return db.deliver(ctx, start+lo, start+hi, func(abs int, seq []pattern.Symbol) error {
		return fn(abs-start, seq)
	})
}

// Refresh re-indexes records appended to the file by another handle since
// this read-only handle was opened (or last refreshed): the tail beyond the
// last indexed record is scanned to the last intact record — a torn record
// mid-write by the live appender simply ends this refresh and is picked up
// whole by the next one — and the logical head is re-read from the sidecar
// (never moving backward). On a read-write handle Refresh is a no-op: the
// writer's own index is authoritative. ScanSince refreshes implicitly, so a
// tailing reader follows a live writer with no extra calls.
func (db *AppendDB) Refresh() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.refreshLocked()
}

func (db *AppendDB) refreshLocked() error {
	if db.f != nil {
		return nil
	}
	f, err := os.Open(db.path)
	if err != nil {
		return fmt.Errorf("seqdb: refresh: %w", err)
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("seqdb: refresh: %w", err)
	}
	end := db.offsets[len(db.offsets)-1]
	if size > end {
		br := bufio.NewReaderSize(io.NewSectionReader(f, end, size-end), 1<<20)
		rr := &crcReader{br: br}
		for end < size {
			rr.buf = rr.buf[:0]
			n, err := readAppendRecord(rr, br, nil)
			if err != nil {
				if isTornTail(err) {
					break
				}
				return fmt.Errorf("seqdb: %s: refresh record %d: %w", db.path, len(db.offsets)-1, err)
			}
			end += n
			db.offsets = append(db.offsets, end)
		}
	}
	start, err := readHead(db.path)
	if err != nil {
		return err
	}
	if total := len(db.offsets) - 1; start > total {
		start = total
	}
	if start > db.start {
		db.start = start
	}
	return nil
}

// ScanSince delivers every sequence with absolute id >= cursor that is still
// live, in append order, with its absolute id — the tail-scan API a
// streaming consumer uses to pick up exactly the records appended since its
// last batch. It returns the cursor for the next call (the end of this
// pass's snapshot). Read-only handles refresh their index first, so the tail
// scan follows a live writer. Tail deliveries are partial passes and never
// count as scans.
func (db *AppendDB) ScanSince(ctx context.Context, cursor int, fn func(abs int, seq []pattern.Symbol) error) (int, error) {
	db.mu.Lock()
	if err := db.refreshLocked(); err != nil {
		db.mu.Unlock()
		return cursor, err
	}
	lo, hi := db.start, len(db.offsets)-1
	db.mu.Unlock()
	if cursor > lo {
		lo = cursor
	}
	if err := db.deliver(ctx, lo, hi, fn); err != nil {
		return cursor, err
	}
	return hi, nil
}

// deliver streams absolute records [lo, hi) from the file. Each pass opens
// its own handle, so concurrent deliveries (and one appender) never disturb
// each other.
func (db *AppendDB) deliver(ctx context.Context, lo, hi int, fn func(abs int, seq []pattern.Symbol) error) error {
	if lo >= hi {
		return nil
	}
	f, err := os.Open(db.path)
	if err != nil {
		return fmt.Errorf("seqdb: open: %w", err)
	}
	defer f.Close()
	db.mu.Lock()
	from, to := db.offsets[lo], db.offsets[hi]
	db.mu.Unlock()
	br := bufio.NewReaderSize(&countingReader{r: io.NewSectionReader(f, from, to-from), n: &db.bytes}, 1<<20)
	rr := &crcReader{br: br}
	var seq []pattern.Symbol
	for i := lo; i < hi; i++ {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		rr.buf = rr.buf[:0]
		if _, err := readAppendRecord(rr, br, &seq); err != nil {
			return corrupt(db.path, i, "unreadable append record", err)
		}
		if err := fn(i, seq); err != nil {
			return err
		}
	}
	return nil
}
