package seqdb

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/pattern"
)

func randomDB(seed int64, n, maxLen int) *MemDB {
	rng := rand.New(rand.NewSource(seed))
	seqs := make([][]pattern.Symbol, n)
	for i := range seqs {
		l := 1 + rng.Intn(maxLen)
		s := make([]pattern.Symbol, l)
		for j := range s {
			s[j] = pattern.Symbol(rng.Intn(8))
		}
		seqs[i] = s
	}
	return NewMemDB(seqs)
}

func collect(t *testing.T, db Scanner) map[int][]pattern.Symbol {
	t.Helper()
	out := make(map[int][]pattern.Symbol)
	if err := db.Scan(func(id int, seq []pattern.Symbol) error {
		if _, dup := out[id]; dup {
			t.Fatalf("id %d delivered twice", id)
		}
		out[id] = append([]pattern.Symbol(nil), seq...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestShardBoundsProperties(t *testing.T) {
	for _, n := range []int{0, 1, 15, 16, 17, 100, 4096, 12345} {
		block := probeBlockSize(n)
		if block < 1 {
			t.Fatalf("n=%d: block %d", n, block)
		}
		for shards := 1; shards <= 9; shards++ {
			bounds := shardBounds(n, shards, block)
			if bounds[0] != 0 || bounds[len(bounds)-1] != n {
				t.Fatalf("n=%d shards=%d: bounds %v do not cover [0,%d)", n, shards, bounds, n)
			}
			for i := 1; i < len(bounds); i++ {
				if bounds[i] <= bounds[i-1] && !(n == 0 && len(bounds) == 2) {
					t.Fatalf("n=%d shards=%d: empty shard in %v", n, shards, bounds)
				}
				if i < len(bounds)-1 && bounds[i]%block != 0 {
					t.Fatalf("n=%d shards=%d: boundary %d not block-aligned (block %d)", n, shards, bounds[i], block)
				}
			}
		}
	}
}

func TestShardScannerCoversDatabase(t *testing.T) {
	db := randomDB(1, 500, 12)
	want := collect(t, db)
	for _, n := range []int{1, 2, 3, 7, 16, 100} {
		sh := ShardScanner(db, n)
		if sh.Len() != db.Len() {
			t.Fatalf("n=%d: Len %d != %d", n, sh.Len(), db.Len())
		}
		// Shard-by-shard union equals the database, with global ids.
		got := make(map[int][]pattern.Symbol)
		for i := 0; i < sh.NumShards(); i++ {
			lo, hi := sh.ShardStart(i), sh.ShardStart(i+1)
			if err := sh.Shard(i).Scan(func(id int, seq []pattern.Symbol) error {
				if id < lo || id >= hi {
					t.Fatalf("shard %d delivered id %d outside [%d,%d)", i, id, lo, hi)
				}
				got[id] = append([]pattern.Symbol(nil), seq...)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d sequences, want %d", n, len(got), len(want))
		}
		for id, seq := range want {
			g := got[id]
			if len(g) != len(seq) {
				t.Fatalf("n=%d id=%d: %v != %v", n, id, g, seq)
			}
			for j := range seq {
				if g[j] != seq[j] {
					t.Fatalf("n=%d id=%d: %v != %v", n, id, g, seq)
				}
			}
		}
	}
}

func TestShardScansDoNotCountParentPasses(t *testing.T) {
	db := randomDB(2, 300, 8)
	sh := ShardScanner(db, 4)
	for i := 0; i < sh.NumShards(); i++ {
		if err := sh.Shard(i).Scan(func(int, []pattern.Symbol) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if db.Scans() != 0 {
		t.Errorf("shard scans completed %d parent passes, want 0", db.Scans())
	}
	if sh.Scans() != 0 {
		t.Errorf("Sharded.Scans=%d before NotePass", sh.Scans())
	}
	sh.NotePass()
	if sh.Scans() != 1 {
		t.Errorf("Sharded.Scans=%d after NotePass, want 1", sh.Scans())
	}
	// A sequential full pass through the Sharded counts one logical scan.
	if err := sh.Scan(func(int, []pattern.Symbol) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if sh.Scans() != 2 {
		t.Errorf("Sharded.Scans=%d after full pass, want 2", sh.Scans())
	}
}

func TestShardScannerOverDiskDoesNotCountScans(t *testing.T) {
	mem := randomDB(3, 200, 10)
	path := filepath.Join(t.TempDir(), "db.lsq")
	if err := WriteFile(path, mem); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sh := ShardScanner(disk, 3)
	for i := 0; i < sh.NumShards(); i++ {
		if err := sh.Shard(i).Scan(func(int, []pattern.Symbol) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if disk.Scans() != 0 {
		t.Errorf("disk shard scans completed %d full passes, want 0", disk.Scans())
	}
	if n, ok := RealBytes(sh); !ok || n == 0 {
		t.Errorf("RealBytes over DiskDB shards: %d, %v; want real nonzero", n, ok)
	}
}

func TestMemAndDiskRangeAgree(t *testing.T) {
	mem := randomDB(4, 150, 9)
	path := filepath.Join(t.TempDir(), "db.lsq")
	if err := WriteFile(path, mem); err != nil {
		t.Fatal(err)
	}
	disk, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{0, 150}, {10, 20}, {149, 150}, {0, 1}, {50, 50}, {140, 200}} {
		for _, db := range []Scanner{mem, disk} {
			rs := db.(RangeScanner)
			var ids []int
			if err := rs.ScanRangeContext(nil, r[0], r[1], func(id int, seq []pattern.Symbol) error {
				ids = append(ids, id)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			lo, hi := r[0], r[1]
			if hi > 150 {
				hi = 150
			}
			wantN := hi - lo
			if wantN < 0 {
				wantN = 0
			}
			if len(ids) != wantN {
				t.Fatalf("%T range %v: %d ids, want %d", db, r, len(ids), wantN)
			}
			for k, id := range ids {
				if id != lo+k {
					t.Fatalf("%T range %v: ids %v not contiguous from %d", db, r, ids, lo)
				}
			}
		}
	}
	if mem.Scans() != 0 || disk.Scans() != 0 {
		t.Errorf("range deliveries counted scans: mem=%d disk=%d", mem.Scans(), disk.Scans())
	}
}

func TestWriteShardFilesRoundTrip(t *testing.T) {
	for _, size := range []int{0, 1, 37, 400} {
		db := randomDB(5, size, 11)
		base := filepath.Join(t.TempDir(), "db")
		paths, err := WriteShardFiles(db, base, 4)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := OpenShardSet(paths)
		if err != nil {
			t.Fatal(err)
		}
		if sh.Len() != db.Len() {
			t.Fatalf("size=%d: shard set Len %d, want %d", size, sh.Len(), db.Len())
		}
		want := collect(t, db)
		got := collect(t, sh)
		if len(got) != len(want) {
			t.Fatalf("size=%d: %d sequences, want %d", size, len(got), len(want))
		}
		for id, seq := range want {
			g := got[id]
			if len(g) != len(seq) {
				t.Fatalf("size=%d id=%d: %v != %v", size, id, g, seq)
			}
			for j := range seq {
				if g[j] != seq[j] {
					t.Fatalf("size=%d id=%d: %v != %v", size, id, g, seq)
				}
			}
		}
		// Native shard boundaries must match the view boundaries, so mining
		// either layout accumulates on identical probe blocks.
		view := ShardScanner(db, 4)
		if view.NumShards() == sh.NumShards() {
			for i := 0; i <= sh.NumShards(); i++ {
				if sh.ShardStart(i) != view.ShardStart(i) {
					t.Fatalf("size=%d: native starts differ from view starts at %d", size, i)
				}
			}
		}
		if !sh.ReportsBytes() {
			t.Errorf("size=%d: native shard set should report real bytes", size)
		}
	}
}

// flakyNoRange fails its first fail attempts at id 1 and deliberately does
// not implement RangeScanner, so shard passes over it must take the
// filtered-full-scan fallback (and retries of it).
type flakyNoRange struct {
	inner *MemDB
	fail  int
	err   error
}

func (s *flakyNoRange) Len() int    { return s.inner.Len() }
func (s *flakyNoRange) Scans() int  { return s.inner.Scans() }
func (s *flakyNoRange) ResetScans() { s.inner.ResetScans() }
func (s *flakyNoRange) Scan(fn func(id int, seq []pattern.Symbol) error) error {
	return s.ScanContext(nil, fn)
}
func (s *flakyNoRange) ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error {
	return s.inner.ScanContext(ctx, func(id int, seq []pattern.Symbol) error {
		if id == 1 && s.fail > 0 {
			s.fail--
			return s.err
		}
		return fn(id, seq)
	})
}

func TestShardedRetryRangePass(t *testing.T) {
	blip := MarkTransient(errors.New("blip"))
	inner := &flakyNoRange{inner: randomDB(6, 100, 6), fail: 2, err: blip}
	retry := &RetryScanner{Inner: inner, MaxRetries: 5}
	sh := ShardScanner(retry, 3)
	for i := 0; i < sh.NumShards(); i++ {
		var ids []int
		err := ScanPassContext(context.Background(), sh.Shard(i), func() (func(id int, seq []pattern.Symbol) error, error) {
			ids = nil // fresh per attempt: a retried pass must not double-deliver
			return func(id int, seq []pattern.Symbol) error {
				ids = append(ids, id)
				return nil
			}, nil
		})
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if want := sh.ShardStart(i+1) - sh.ShardStart(i); len(ids) != want {
			t.Fatalf("shard %d delivered %d ids, want %d", i, len(ids), want)
		}
	}
	if st := retry.ScanStats(); st.Permanent != 0 {
		t.Errorf("range sentinel leaked into retry stats: %+v", st)
	}
}

func TestShardSetPaths(t *testing.T) {
	got := ShardSetPaths("a.lsq, b.lsq,,c.lsq")
	if len(got) != 3 || got[0] != "a.lsq" || got[1] != "b.lsq" || got[2] != "c.lsq" {
		t.Errorf("ShardSetPaths: %v", got)
	}
	if got := ShardSetPaths("only.lsq"); len(got) != 1 {
		t.Errorf("single path: %v", got)
	}
}
