// Package seqdb provides the sequence-database substrate for the miner: an
// in-memory store and a disk-resident store behind a common Scanner
// interface that counts full passes over the data.
//
// The paper assumes the database is disk resident and far beyond memory
// capacity; the quantity its evaluation reports (Figures 14 and 15) is the
// number of full scans each algorithm performs. The Scanner interface makes
// that number observable regardless of the backing store, so the experiments
// reproduce the paper's scan counts even at a reduced data scale.
package seqdb

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/pattern"
)

// Scanner is one sequentially-scannable sequence database. Implementations
// are not safe for concurrent scans.
type Scanner interface {
	// Scan performs one full pass, invoking fn for every sequence in order.
	// The seq slice is only valid during the callback. A non-nil error from
	// fn aborts the pass (and the pass does not count as a full scan).
	Scan(fn func(id int, seq []pattern.Symbol) error) error
	// Len returns the number of sequences N.
	Len() int
	// Scans returns the number of completed full passes so far.
	Scans() int
	// ResetScans zeroes the pass counter.
	ResetScans()
}

// ContextScanner is a Scanner whose passes can be cancelled between
// sequences. All stores in this package implement it.
type ContextScanner interface {
	Scanner
	// ScanContext is Scan with cancellation checked before every sequence;
	// an interrupted pass returns ctx.Err() and does not count as a scan.
	ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error
}

// ScanContext performs one cancellable pass over db. Scanners implementing
// ContextScanner cancel natively; any other Scanner is adapted by checking
// ctx before every callback, so cancellation always aborts within one
// sequence. A nil ctx scans without cancellation.
func ScanContext(ctx context.Context, db Scanner, fn func(id int, seq []pattern.Symbol) error) error {
	if cs, ok := db.(ContextScanner); ok {
		return cs.ScanContext(ctx, fn)
	}
	if ctx == nil {
		return db.Scan(fn)
	}
	return db.Scan(func(id int, seq []pattern.Symbol) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn(id, seq)
	})
}

// PassFunc produces the per-sequence callback for one scan attempt. A
// retrying scanner invokes it afresh at the start of every attempt, so any
// per-pass accumulator state created inside it starts clean when a failed
// pass is re-run. Results should be captured by closing over variables
// assigned inside the setup.
type PassFunc func() (func(id int, seq []pattern.Symbol) error, error)

// PassScanner is implemented by scanners that can re-run a failed pass
// (RetryScanner). ScanPassContext routes through it so consumer state is
// rebuilt per attempt instead of being double-counted on replay.
type PassScanner interface {
	ScanPassContext(ctx context.Context, setup PassFunc) error
}

// ScanPass runs one logical pass of db with per-attempt state setup.
func ScanPass(db Scanner, setup PassFunc) error {
	return ScanPassContext(nil, db, setup)
}

// ScanPassContext runs one cancellable logical pass of db. When db
// implements PassScanner a failed attempt may be retried, calling setup
// again for fresh consumer state; otherwise setup is called once and the
// pass runs unprotected.
func ScanPassContext(ctx context.Context, db Scanner, setup PassFunc) error {
	if ps, ok := db.(PassScanner); ok {
		return ps.ScanPassContext(ctx, setup)
	}
	fn, err := setup()
	if err != nil {
		return err
	}
	return ScanContext(ctx, db, fn)
}

// ctxErr returns ctx's cancellation error, tolerating a nil ctx.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// MemDB is an in-memory sequence database. The zero value is an empty,
// usable database.
type MemDB struct {
	seqs  [][]pattern.Symbol
	scans atomic.Int64 // readable concurrently with a scan (progress UIs)
}

// NewMemDB builds an in-memory database over the given sequences. Sequence
// IDs are their indices. The slices are retained, not copied.
func NewMemDB(seqs [][]pattern.Symbol) *MemDB {
	return &MemDB{seqs: seqs}
}

// Append adds one sequence and returns its ID.
func (db *MemDB) Append(seq []pattern.Symbol) int {
	db.seqs = append(db.seqs, seq)
	return len(db.seqs) - 1
}

// Len returns the number of sequences.
func (db *MemDB) Len() int { return len(db.seqs) }

// Scans returns the number of completed full passes. Safe to call
// concurrently with a running scan.
func (db *MemDB) Scans() int { return int(db.scans.Load()) }

// ResetScans zeroes the pass counter.
func (db *MemDB) ResetScans() { db.scans.Store(0) }

// Seq returns the i-th sequence (shared storage; callers must not modify).
func (db *MemDB) Seq(i int) []pattern.Symbol { return db.seqs[i] }

// Scan implements Scanner.
func (db *MemDB) Scan(fn func(id int, seq []pattern.Symbol) error) error {
	return db.ScanContext(nil, fn)
}

// ScanContext implements ContextScanner: cancellation is checked before
// every sequence, and an interrupted pass does not count as a scan.
func (db *MemDB) ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error {
	for i, s := range db.seqs {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		if err := fn(i, s); err != nil {
			return err
		}
	}
	db.scans.Add(1)
	return nil
}

// ScanRangeContext implements RangeScanner by direct slice indexing: the id
// range [lo, hi) is delivered without touching the rest of the database, and
// the partial pass does not count as a scan.
func (db *MemDB) ScanRangeContext(ctx context.Context, lo, hi int, fn func(id int, seq []pattern.Symbol) error) error {
	if lo < 0 {
		lo = 0
	}
	if hi > len(db.seqs) {
		hi = len(db.seqs)
	}
	for i := lo; i < hi; i++ {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		if err := fn(i, db.seqs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Validate checks that every sequence is non-empty and uses only concrete
// symbols below m (pass m <= 0 to skip the upper-bound check).
func (db *MemDB) Validate(m int) error {
	for i, s := range db.seqs {
		if len(s) == 0 {
			return fmt.Errorf("seqdb: sequence %d is empty", i)
		}
		for j, d := range s {
			if d.IsEternal() {
				return fmt.Errorf("seqdb: sequence %d position %d holds the eternal symbol", i, j)
			}
			if m > 0 && int(d) >= m {
				return fmt.Errorf("seqdb: sequence %d position %d holds symbol %d >= m=%d", i, j, d, m)
			}
		}
	}
	return nil
}

// Stats summarizes a database scan: sequence count, total and average
// symbol counts, and the min/max sequence length.
type Stats struct {
	N         int
	Symbols   int
	AvgLen    float64
	MinLen    int
	MaxLen    int
	MaxSymbol pattern.Symbol
}

// Describe computes Stats in one pass (which counts as a scan).
func Describe(db Scanner) (Stats, error) {
	st := Stats{MinLen: -1, MaxSymbol: -1}
	err := db.Scan(func(id int, seq []pattern.Symbol) error {
		st.N++
		st.Symbols += len(seq)
		if st.MinLen < 0 || len(seq) < st.MinLen {
			st.MinLen = len(seq)
		}
		if len(seq) > st.MaxLen {
			st.MaxLen = len(seq)
		}
		for _, d := range seq {
			if d > st.MaxSymbol {
				st.MaxSymbol = d
			}
		}
		return nil
	})
	if err != nil {
		return Stats{}, err
	}
	if st.N > 0 {
		st.AvgLen = float64(st.Symbols) / float64(st.N)
	}
	if st.MinLen < 0 {
		st.MinLen = 0
	}
	return st, nil
}
