package seqdb

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pattern"
)

// writeSample writes sampleDB to a fresh path and returns it with the raw
// bytes.
func writeSample(t *testing.T, legacy bool) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.lsq")
	var err error
	if legacy {
		var w *Writer
		w, err = CreateLegacyFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < sampleDB().Len(); i++ {
			if err := w.Write(sampleDB().Seq(i)); err != nil {
				t.Fatal(err)
			}
		}
		err = w.Close()
	} else {
		err = WriteFile(path, sampleDB())
	}
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, raw
}

func scanAll(db *DiskDB) error {
	return db.Scan(func(int, []pattern.Symbol) error { return nil })
}

func TestLSQ2RoundTripAndVersion(t *testing.T) {
	path, raw := writeSample(t, false)
	if string(raw[:4]) != "LSQ2" {
		t.Fatalf("magic %q, want LSQ2", raw[:4])
	}
	db, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.Version() != 2 {
		t.Errorf("Version=%d", db.Version())
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	orig := sampleDB()
	if back.Len() != orig.Len() {
		t.Fatalf("Len=%d", back.Len())
	}
	for i := 0; i < orig.Len(); i++ {
		a, b := orig.Seq(i), back.Seq(i)
		if len(a) != len(b) {
			t.Fatalf("seq %d length", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("seq %d pos %d", i, j)
			}
		}
	}
	// OpenAuto dispatches LSQ2 too.
	auto, err := OpenAuto(path)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Len() != orig.Len() {
		t.Errorf("OpenAuto Len=%d", auto.Len())
	}
}

func TestLegacyLSQ1StillReads(t *testing.T) {
	path, raw := writeSample(t, true)
	if string(raw[:4]) != "LSQ1" {
		t.Fatalf("magic %q, want LSQ1", raw[:4])
	}
	db, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.Version() != 1 {
		t.Errorf("Version=%d", db.Version())
	}
	if err := scanAll(db); err != nil {
		t.Fatal(err)
	}
	if db.Scans() != 1 {
		t.Errorf("Scans=%d", db.Scans())
	}
	if _, err := OpenAuto(path); err != nil {
		t.Errorf("OpenAuto legacy: %v", err)
	}
}

func TestLSQ2DetectsEveryFlippedPayloadByte(t *testing.T) {
	path, raw := writeSample(t, false)
	db, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip every byte after the 12-byte header (payload, checksums,
	// trailer) in turn; every single flip must be detected.
	for i := 12; i < len(raw); i++ {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := scanAll(db); err == nil {
			t.Fatalf("flipped byte %d not detected", i)
		}
	}
	// Header count flips must be detected too (magic flips fail at open).
	for i := 4; i < 12; i++ {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x01
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		fresh, err := OpenFile(path)
		if err != nil {
			continue
		}
		if err := scanAll(fresh); err == nil {
			t.Fatalf("flipped header byte %d not detected", i)
		}
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := scanAll(db); err != nil {
		t.Fatalf("restored file fails: %v", err)
	}
}

func TestLSQ2DetectsEveryTruncation(t *testing.T) {
	path, raw := writeSample(t, false)
	db, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 12; cut < len(raw); cut++ {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		err := scanAll(db)
		if err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncation at %d: %v is not a CorruptError", cut, err)
		}
	}
}

func TestLSQ2CorruptErrorNamesSequence(t *testing.T) {
	path, raw := writeSample(t, false)
	db, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Sequence 0 is {0,1,2,0}: 1 length byte + 4 symbol bytes + 4 CRC
	// bytes. Corrupt a symbol byte of sequence 1 (offset 12+9+1 is seq 1's
	// first symbol byte).
	bad := append([]byte(nil), raw...)
	bad[12+9+1] ^= 0x20
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	err = scanAll(db)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err=%v, want CorruptError", err)
	}
	if ce.Seq != 1 {
		t.Errorf("Seq=%d, want 1", ce.Seq)
	}
	if !strings.Contains(ce.Error(), "sequence 1") {
		t.Errorf("message %q does not name the sequence", ce.Error())
	}
	if IsTransient(err) {
		t.Error("corruption classified transient")
	}
}

func TestLSQ1RejectsTrailingGarbage(t *testing.T) {
	path, raw := writeSample(t, true)
	if err := os.WriteFile(path, append(raw, 'j', 'u', 'n', 'k'), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	err = scanAll(db)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("trailing garbage: err=%v, want CorruptError", err)
	}
	if ce.Seq != -1 || !strings.Contains(ce.Msg, "trailing garbage") {
		t.Errorf("CorruptError=%+v", ce)
	}
}

func TestLSQ1RejectsHandTruncatedFile(t *testing.T) {
	// Regression: a legacy file whose header count exceeds the actual
	// sequence count, cut exactly at a varint boundary between sequences,
	// must error instead of silently yielding fewer sequences. sampleDB's
	// last sequence {1,1} occupies the final 3 bytes of an LSQ1 file.
	path, raw := writeSample(t, true)
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 4 {
		t.Fatalf("Len=%d, want the declared 4", db.Len())
	}
	err = scanAll(db)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("hand-truncated file: err=%v, want CorruptError", err)
	}
	if ce.Seq != 3 {
		t.Errorf("Seq=%d, want 3 (the missing sequence)", ce.Seq)
	}
}

func TestLSQ2RejectsTrailingGarbage(t *testing.T) {
	path, raw := writeSample(t, false)
	if err := os.WriteFile(path, append(raw, 0xAB), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := scanAll(db); err == nil {
		t.Fatal("trailing garbage after the trailer accepted")
	}
}

func TestWriterRejectsWriteAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.lsq")
	w, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write([]pattern.Symbol{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write([]pattern.Symbol{3}); err == nil {
		t.Error("Write after Close accepted")
	}
	if err := w.Close(); err == nil {
		t.Error("double Close accepted")
	}
}

func TestWriteFileIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.lsq")
	// Seed the destination with garbage: an interrupted rewrite must never
	// leave it torn, and a successful one must fully replace it.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, sampleDB()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("rewritten file unreadable: %v", err)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".lsqtmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
	// A failed write (unwritable directory) must not touch the
	// destination.
	if err := WriteFile(filepath.Join(dir, "missing", "db.lsq"), sampleDB()); err == nil {
		t.Error("write into missing directory succeeded")
	}
}

func TestDiskScanContextCancels(t *testing.T) {
	path, _ := writeSample(t, false)
	db, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	err = db.ScanContext(ctx, func(id int, _ []pattern.Symbol) error {
		seen++
		if id == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if seen != 2 {
		t.Errorf("saw %d sequences after cancel, want 2", seen)
	}
	if db.Scans() != 0 {
		t.Error("cancelled pass counted as a scan")
	}
}
