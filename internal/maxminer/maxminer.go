// Package maxminer implements the deterministic look-ahead baseline of the
// paper's §5.6: Bayardo's Max-Miner adapted to sequential patterns under the
// match measure ("the only modification to the Max-Miner is the computation
// of match value of a pattern").
//
// Max-Miner's item-set union lookahead does not transfer verbatim to
// positional patterns: appending tail items shifts positions, so the union
// of two extensions is not a superpattern of each. The adaptation used here
// exploits the eternal symbol instead: for an alive pattern h, the lookahead
// is a chain h·s₁·s₂·… built by greedily following the best bigram
// continuation (the symbol y maximizing match(x·y) after the chain's last
// symbol x, learned from the level-2 counts — the positional analogue of
// Max-Miner's support-based tail reordering). Starring any subset of the
// appended symbols (and trimming) yields a subpattern of the chain, so a
// frequent chain proves a whole cube of extensions frequent at once — the
// analogue of "if h∪T(g) is frequent, stop expanding the group". Candidates
// covered by a confirmed lookahead are labeled frequent without being
// counted, and a lattice level whose candidates are all covered costs no
// scan, which is how the algorithm escapes one-scan-per-level behavior on
// long patterns.
//
// Like the original Max-Miner (and unlike Phase 3's memory-budgeted
// probing), counters for one level's candidates plus lookaheads are assumed
// to fit in memory.
package maxminer

import (
	"fmt"
	"sort"

	"repro/internal/miner"
	"repro/internal/pattern"
)

// Result reports a Max-Miner run.
type Result struct {
	// Frequent is the complete frequent region within the option bounds.
	Frequent *pattern.Set
	// Border is the border of Frequent (the maximal frequent patterns).
	Border *pattern.Set
	// Scans counts full database passes (valuer invocations).
	Scans int
	// Counted is the number of patterns evaluated against the database.
	Counted int
	// LookaheadHits counts candidates proven frequent by a lookahead chain
	// without being counted.
	LookaheadHits int
}

// Mine runs the adapted Max-Miner. valuer supplies database matches at one
// scan per invocation; opts bounds the pattern space exactly as in the
// level-wise engine, so results are comparable pattern-for-pattern.
func Mine(m int, valuer miner.Valuer, minMatch float64, opts miner.Options) (*Result, error) {
	if m < 1 {
		return nil, fmt.Errorf("maxminer: alphabet size %d < 1", m)
	}
	if opts.MaxLen < 1 {
		return nil, fmt.Errorf("maxminer: MaxLen %d < 1", opts.MaxLen)
	}
	if opts.MaxGap < 0 {
		return nil, fmt.Errorf("maxminer: negative MaxGap")
	}
	if valuer == nil {
		return nil, fmt.Errorf("maxminer: valuer is required")
	}
	run := &run{
		valuer:   valuer,
		minMatch: minMatch,
		opts:     opts,
		res:      &Result{Frequent: pattern.NewSet()},
		labels:   make(map[string]bool),
		bigram:   make(map[pattern.Symbol]map[pattern.Symbol]float64),
		chains:   pattern.NewSet(),
	}
	if err := run.mine(m); err != nil {
		return nil, err
	}
	run.res.Border = pattern.Border(run.res.Frequent)
	return run.res, nil
}

type run struct {
	valuer   miner.Valuer
	minMatch float64
	opts     miner.Options
	res      *Result
	labels   map[string]bool // key -> frequent?
	bigram   map[pattern.Symbol]map[pattern.Symbol]float64
	chains   *pattern.Set // confirmed frequent lookahead chains
	alive    []pattern.Pattern
	aliveSym []pattern.Symbol
}

func (r *run) mine(m int) error {
	// Scan 1: symbol matches.
	level := make([]pattern.Pattern, 0, m)
	for d := 0; d < m; d++ {
		level = append(level, pattern.Pattern{pattern.Symbol(d)})
	}
	values, err := r.valuer(level)
	if err != nil {
		return err
	}
	r.res.Scans++
	r.res.Counted += len(level)
	r.opts.Metrics.LevelEvaluated(len(level))
	symMatch := make(map[pattern.Symbol]float64, m)
	for i, p := range level {
		freq := values[i] >= r.minMatch
		r.labels[p.Key()] = freq
		if freq {
			r.res.Frequent.Add(p)
			r.alive = append(r.alive, p)
			r.aliveSym = append(r.aliveSym, p[0])
			symMatch[p[0]] = values[i]
		}
	}
	// Stable symbol order for candidate generation.
	sort.Slice(r.aliveSym, func(a, b int) bool { return r.aliveSym[a] < r.aliveSym[b] })

	for len(r.alive) > 0 {
		next := r.generate()
		if len(next) == 0 {
			break
		}
		var toCount, covered []pattern.Pattern
		for _, q := range next {
			// Covered means q is a subpattern of a confirmed chain — the
			// Apriori direction: subpatterns of a frequent pattern are
			// frequent. (The superpattern direction would be unsound: a
			// superpattern of a frequent chain can still be infrequent.)
			if r.chains.CoveredBy(q) {
				covered = append(covered, q)
				r.res.LookaheadHits++
			} else {
				toCount = append(toCount, q)
			}
		}
		lookaheads := r.buildLookaheads(toCount)

		var batchValues []float64
		if len(toCount)+len(lookaheads) > 0 {
			batch := append(append([]pattern.Pattern(nil), toCount...), lookaheads...)
			batchValues, err = r.valuer(batch)
			if err != nil {
				return err
			}
			r.res.Scans++
			r.res.Counted += len(batch)
			r.opts.Metrics.LevelEvaluated(len(batch))
		}

		// Lookahead outcomes first, so a chain confirmed in this scan can
		// never be contradicted by its (also counted) sub-candidates.
		for i, la := range lookaheads {
			v := batchValues[len(toCount)+i]
			r.labels[la.Key()] = v >= r.minMatch
			if v >= r.minMatch {
				r.chains.Add(la)
				r.res.Frequent.Add(la)
			}
		}
		r.alive = r.alive[:0]
		for i, q := range toCount {
			freq := batchValues[i] >= r.minMatch
			r.labels[q.Key()] = freq
			r.recordBigram(q, batchValues[i])
			if freq {
				r.res.Frequent.Add(q)
				r.alive = append(r.alive, q)
			}
		}
		for _, q := range covered {
			r.labels[q.Key()] = true
			r.res.Frequent.Add(q)
			r.alive = append(r.alive, q)
		}
	}
	return nil
}

// recordBigram captures contiguous 2-pattern matches; they steer the greedy
// lookahead chains.
func (r *run) recordBigram(q pattern.Pattern, v float64) {
	if len(q) != 2 || q[0].IsEternal() || q[1].IsEternal() {
		return
	}
	row := r.bigram[q[0]]
	if row == nil {
		row = make(map[pattern.Symbol]float64)
		r.bigram[q[0]] = row
	}
	row[q[1]] = v
}

// generate is the same right-extension Apriori candidate generator as the
// level-wise engine (subpatterns outside the gap-bounded space are exempt).
func (r *run) generate() []pattern.Pattern {
	var next []pattern.Pattern
	for _, p := range r.alive {
		for gap := 0; gap <= r.opts.MaxGap; gap++ {
			if p.Len()+gap+1 > r.opts.MaxLen {
				break
			}
			for _, d := range r.aliveSym {
				q := pattern.Extend(p, gap, d)
				if r.subpatternsFrequent(q) {
					next = append(next, q)
				}
			}
		}
	}
	return next
}

func (r *run) subpatternsFrequent(q pattern.Pattern) bool {
	for _, sub := range q.ImmediateSubpatterns() {
		if gapRun(sub) > r.opts.MaxGap {
			continue
		}
		if !r.labels[sub.Key()] {
			return false
		}
	}
	return true
}

// buildLookaheads forms one greedy chain per distinct generating parent of
// the uncounted candidates: the parent extended (gap 0) by the best bigram
// continuation of its last symbol, repeatedly, until MaxLen or no known
// continuation. Chains already decided, already covered by a confirmed
// chain, or no deeper than the candidates are skipped.
func (r *run) buildLookaheads(toCount []pattern.Pattern) []pattern.Pattern {
	if len(r.bigram) == 0 {
		return nil // no continuation evidence yet (level 2 not counted)
	}
	seenParent := make(map[string]bool)
	seenChain := make(map[string]bool)
	var out []pattern.Pattern
	for _, q := range toCount {
		parent := generatingParent(q)
		if parent == nil {
			continue
		}
		pk := parent.Key()
		if seenParent[pk] {
			continue
		}
		seenParent[pk] = true
		chain := r.greedyChain(parent)
		if chain.Len() <= q.Len() {
			continue
		}
		ck := chain.Key()
		if seenChain[ck] {
			continue
		}
		if _, decided := r.labels[ck]; decided {
			continue
		}
		if r.chains.CoveredBy(chain) {
			continue // a subpattern of a confirmed chain is already known frequent
		}
		seenChain[ck] = true
		out = append(out, chain)
	}
	return out
}

// greedyChain extends h by argmax bigram continuations until MaxLen or a
// dead end. Ties break toward the smaller symbol for determinism.
func (r *run) greedyChain(h pattern.Pattern) pattern.Pattern {
	chain := h.Clone()
	for chain.Len() < r.opts.MaxLen {
		last := chain[len(chain)-1]
		row := r.bigram[last]
		if len(row) == 0 {
			break
		}
		best := pattern.Symbol(-1)
		bestV := -1.0
		for y, v := range row {
			if v < r.minMatch {
				continue // a weak continuation would doom the whole chain
			}
			if v > bestV || (v == bestV && y < best) {
				best, bestV = y, v
			}
		}
		if best.IsEternal() {
			break
		}
		chain = pattern.Extend(chain, 0, best)
	}
	return chain
}

// generatingParent stars the last concrete symbol and trims.
func generatingParent(p pattern.Pattern) pattern.Pattern {
	q := p.Clone()
	for i := len(q) - 1; i >= 0; i-- {
		if !q[i].IsEternal() {
			q[i] = pattern.Eternal
			break
		}
	}
	return pattern.Trim(q)
}

func gapRun(p pattern.Pattern) int {
	run, max := 0, 0
	for _, s := range p {
		if s.IsEternal() {
			run++
			if run > max {
				max = run
			}
		} else {
			run = 0
		}
	}
	return max
}
