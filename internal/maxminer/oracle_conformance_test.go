// Conformance slice for the Max-Miner baseline (external test package:
// internal/oracle imports maxminer). Seed 8465343395341014598 is the
// regression case for the lookahead coverage direction: using
// chains.Covers(q) — q a *superpattern* of a confirmed chain — labeled
// uncounted superpatterns frequent, which Apriori does not license; the
// sound direction is chains.CoveredBy(q), q a *subpattern* of a chain.
package maxminer_test

import (
	"testing"

	"repro/internal/oracle"
)

func TestMaxMinerOracleConformance(t *testing.T) {
	engines := []oracle.Engine{oracle.MaxMinerEngine()}
	seeds := append([]int64{8465343395341014598}, oracle.CommittedSeeds[:8]...)
	for _, seed := range seeds {
		if d := oracle.CheckSeed(seed, engines); d != nil {
			t.Fatalf("Max-Miner diverged from the oracle:\n%s", d)
		}
	}
}
