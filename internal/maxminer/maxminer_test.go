package maxminer

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/compat"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

const (
	d1 = pattern.Symbol(0)
	d2 = pattern.Symbol(1)
	d3 = pattern.Symbol(2)
	d4 = pattern.Symbol(3)
	d5 = pattern.Symbol(4)
)

func fig4DB() *seqdb.MemDB {
	return seqdb.NewMemDB([][]pattern.Symbol{
		{d1, d2, d3, d1},
		{d4, d2, d1},
		{d3, d4, d2, d1},
		{d2, d2},
	})
}

func setsEqual(t *testing.T, got, want *pattern.Set, label string) {
	t.Helper()
	for _, p := range want.Patterns() {
		if !got.Contains(p) {
			t.Errorf("%s: missing %v", label, p)
		}
	}
	for _, p := range got.Patterns() {
		if !want.Contains(p) {
			t.Errorf("%s: extra %v", label, p)
		}
	}
}

func TestMineMatchesExhaustive(t *testing.T) {
	c := compat.Fig2()
	for _, minMatch := range []float64{0.02, 0.05, 0.1, 0.3} {
		for _, opts := range []miner.Options{
			{MaxLen: 3, MaxGap: 0},
			{MaxLen: 3, MaxGap: 1},
			{MaxLen: 4, MaxGap: 1},
		} {
			got, err := Mine(5, miner.MatchDBValuer(fig4DB(), c), minMatch, opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := miner.Exhaustive(5, miner.MatchDBValuer(fig4DB(), c), minMatch, opts)
			if err != nil {
				t.Fatal(err)
			}
			setsEqual(t, got.Frequent, want.Frequent, fmt.Sprintf("min=%v opts=%+v", minMatch, opts))
			setsEqual(t, got.Border, pattern.Border(want.Frequent), "border")
		}
	}
}

func TestMineRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 10; trial++ {
		m := 4 + rng.Intn(3)
		alpha := rng.Float64() * 0.3
		c, err := compat.UniformNoise(m, alpha)
		if err != nil {
			t.Fatal(err)
		}
		seqs := make([][]pattern.Symbol, 12)
		for i := range seqs {
			s := make([]pattern.Symbol, 3+rng.Intn(8))
			for j := range s {
				s[j] = pattern.Symbol(rng.Intn(m))
			}
			seqs[i] = s
		}
		opts := miner.Options{MaxLen: 4, MaxGap: 1}
		minMatch := 0.05 + rng.Float64()*0.2
		got, err := Mine(m, miner.MatchDBValuer(seqdb.NewMemDB(seqs), c), minMatch, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := miner.Exhaustive(m, miner.MatchDBValuer(seqdb.NewMemDB(seqs), c), minMatch, opts)
		if err != nil {
			t.Fatal(err)
		}
		setsEqual(t, got.Frequent, want.Frequent, fmt.Sprintf("trial %d", trial))
	}
}

// motifDB embeds the contiguous motif d1..d6 in every sequence, padded with
// a filler symbol; only the motif's symbols are frequent.
func motifDB(n int) *seqdb.MemDB {
	seqs := make([][]pattern.Symbol, n)
	for i := range seqs {
		s := []pattern.Symbol{6, 0, 1, 2, 3, 4, 5, 6}
		seqs[i] = s
	}
	return seqdb.NewMemDB(seqs)
}

func TestLookaheadSavesScansOnLongMotifs(t *testing.T) {
	c := compat.Identity(8)
	opts := miner.Options{MaxLen: 6, MaxGap: 1}
	got, err := Mine(8, miner.MatchDBValuer(motifDB(10), c), 0.9, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := miner.Exhaustive(8, miner.MatchDBValuer(motifDB(10), c), 0.9, opts)
	if err != nil {
		t.Fatal(err)
	}
	setsEqual(t, got.Frequent, want.Frequent, "motif")
	if got.Scans >= want.Scans {
		t.Errorf("lookahead gave no scan savings: maxminer=%d level-wise=%d", got.Scans, want.Scans)
	}
	if got.LookaheadHits == 0 {
		t.Error("no candidates were covered by lookahead chains")
	}
	// The full motif must be the single border element.
	motif := pattern.MustNew(0, 1, 2, 3, 4, 5)
	if !got.Border.Contains(motif) {
		t.Errorf("border %v missing the motif", got.Border.Patterns())
	}
}

func TestMineCountsScansAgainstDB(t *testing.T) {
	c := compat.Fig2()
	db := fig4DB()
	res, err := Mine(5, miner.MatchDBValuer(db, c), 0.05, miner.Options{MaxLen: 3, MaxGap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if db.Scans() != res.Scans {
		t.Errorf("db saw %d scans, result says %d", db.Scans(), res.Scans)
	}
	if res.Scans < 1 {
		t.Error("at least the symbol scan must happen")
	}
	if res.Counted < 5 {
		t.Errorf("Counted=%d", res.Counted)
	}
}

func TestMineValidation(t *testing.T) {
	v := miner.MatchDBValuer(fig4DB(), compat.Fig2())
	if _, err := Mine(0, v, 0.1, miner.Options{MaxLen: 3}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Mine(5, v, 0.1, miner.Options{MaxLen: 0}); err == nil {
		t.Error("MaxLen=0 accepted")
	}
	if _, err := Mine(5, v, 0.1, miner.Options{MaxLen: 3, MaxGap: -1}); err == nil {
		t.Error("negative MaxGap accepted")
	}
	if _, err := Mine(5, nil, 0.1, miner.Options{MaxLen: 3}); err == nil {
		t.Error("nil valuer accepted")
	}
}

func TestNoFrequentSymbols(t *testing.T) {
	c := compat.Fig2()
	res, err := Mine(5, miner.MatchDBValuer(fig4DB(), c), 0.99, miner.Options{MaxLen: 3, MaxGap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frequent.Len() != 0 || res.Border.Len() != 0 {
		t.Errorf("expected empty result, got %d frequent", res.Frequent.Len())
	}
	if res.Scans != 1 {
		t.Errorf("Scans=%d, want 1 (symbol scan only)", res.Scans)
	}
}

func TestGeneratingParent(t *testing.T) {
	p := pattern.MustNew(d1, pattern.Eternal, d3)
	if got := generatingParent(p); !got.Equal(pattern.MustNew(d1)) {
		t.Errorf("parent=%v", got)
	}
	if got := generatingParent(pattern.MustNew(d2)); got != nil {
		t.Errorf("1-pattern parent=%v, want nil", got)
	}
}
