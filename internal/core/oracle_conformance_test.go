// Conformance slice kept next to the pipeline: a few committed corpus seeds
// cross-checked against the brute-force oracle on every `go test ./...`.
// The full corpus (all seeds, all engines) runs via cmd/lspverify in CI.
// External test package: internal/oracle imports core, so the check cannot
// live inside package core.
package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/oracle"
)

func TestPipelineOracleConformance(t *testing.T) {
	engines := []oracle.Engine{
		oracle.MineEngine(core.BorderCollapsing, core.KernelIncremental, 2),
		oracle.MineEngine(core.LevelWise, core.KernelNaive, 0),
		oracle.MineEngine(core.BorderCollapsingImplicit, core.KernelIncremental, 0),
		oracle.ExhaustiveEngine(),
	}
	for _, seed := range oracle.CommittedSeeds[:4] {
		if d := oracle.CheckSeed(seed, engines); d != nil {
			t.Fatalf("pipeline diverged from the oracle:\n%s", d)
		}
	}
}
