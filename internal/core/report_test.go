package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/compat"
	"repro/internal/pattern"
)

func TestReportRoundTrip(t *testing.T) {
	db := fig4DB()
	res, err := Mine(db, compat.Fig2(), Config{
		MinMatch: 0.3, SampleSize: 4, MaxLen: 3, MaxGap: 1,
		Rng: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReport(res, 0.3, db.Len(), pattern.GenericAlphabet(5))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sequences != 4 || rep.MinMatch != 0.3 || rep.Scans != res.Scans {
		t.Errorf("header: %+v", rep)
	}
	if len(rep.Frequent) != res.Frequent.Len() {
		t.Fatalf("reported %d patterns, result has %d", len(rep.Frequent), res.Frequent.Len())
	}
	borders := 0
	for _, pr := range rep.Frequent {
		if pr.Pattern == "" || pr.Key == "" || pr.K < 1 {
			t.Errorf("malformed entry: %+v", pr)
		}
		if pr.Border {
			borders++
		}
		if pr.Source != "sample" && pr.Source != "probe" {
			t.Errorf("bad source %q", pr.Source)
		}
	}
	if borders != res.Border.Len() {
		t.Errorf("%d border entries, want %d", borders, res.Border.Len())
	}
	// Border entries sort first.
	seenNonBorder := false
	for _, pr := range rep.Frequent {
		if !pr.Border {
			seenNonBorder = true
		} else if seenNonBorder {
			t.Fatal("border entry after non-border entry")
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(back.Frequent) != len(rep.Frequent) {
		t.Error("JSON round trip lost patterns")
	}
}

func TestReportNilAlphabet(t *testing.T) {
	db := fig4DB()
	res, err := Mine(db, compat.Fig2(), Config{
		MinMatch: 0.3, SampleSize: 4, MaxLen: 2, Rng: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReport(res, 0.3, db.Len(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range rep.Frequent {
		if pr.Pattern == "" {
			t.Error("empty rendering without alphabet")
		}
	}
	if _, err := NewReport(nil, 0.3, 4, nil); err == nil {
		t.Error("nil result accepted")
	}
}
