// The unified three-phase pipeline behind Mine, MineSweep, and Resume: one
// orchestration loop handles phase timing and attribution, checkpointing,
// resume (skipping every scan a snapshot records), per-phase deadline
// budgets, and Phase 3's graceful degradation; the engines differ only in
// how Phase 2 classifies the sample.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/border"
	"repro/internal/checkpoint"
	"repro/internal/chernoff"
	"repro/internal/compat"
	"repro/internal/growth"
	"repro/internal/levelwise"
	"repro/internal/match"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/sampling"
	"repro/internal/seqdb"
	"repro/internal/shardrpc"
	"repro/internal/telemetry"
)

// phaseCtx derives a phase-budget context; a zero budget passes the parent
// through with a no-op cancel.
func phaseCtx(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	if d <= 0 {
		return parent, func() {}
	}
	return context.WithTimeout(parent, d)
}

// mineContext runs the pipeline for either Phase 2 engine, fresh (snap nil)
// or resumed from a snapshot whose compatibility the caller has verified.
// cfg must already be defaulted and validated.
func mineContext(ctx context.Context, db seqdb.Scanner, c compat.Source, cfg Config, engine string, snap *checkpoint.Snapshot) (*Result, error) {
	if db.Len() == 0 {
		return nil, fmt.Errorf("core: empty database")
	}
	dbPath := scannerPath(db)
	if cfg.Metrics != nil {
		// The wrapper attributes every delivered sequence and completed pass
		// to whatever phase is current when it happens.
		db = telemetry.NewScanner(db, cfg.Metrics)
		defer cfg.Metrics.SetPhase(0)
	}
	res := &Result{Telemetry: cfg.Metrics}
	cp := newCheckpointer(&cfg, configHash(&cfg, engine), dbPath, db.Len(), engine)
	if snap != nil {
		cp.adopt(snap)
		res.ResumedFrom = snap.Phase
		res.ScansSkipped = 1 // Phase 1's scan is always recorded
		if snap.Probe != nil {
			res.ScansSkipped += snap.Probe.Scans
		}
		cfg.Metrics.ResumeHit(snap.Phase, res.ScansSkipped)
	}
	fail := func(phase int, err error) (*Result, error) {
		res.PhaseReached = phase
		res.captureScanStats(db)
		cp.finalWrite()
		return res, &PhaseError{Phase: phase, Err: err}
	}

	// Phase 1: symbol matches + sample, one scan — replayed from the
	// snapshot on resume.
	res.PhaseReached = 1
	cfg.Metrics.SetPhase(1)
	start := time.Now()
	var symbolMatch []float64
	var sample [][]pattern.Symbol
	if snap != nil {
		symbolMatch, sample = snap.SymbolMatch, snap.Sample
	} else {
		pctx, cancel := phaseCtx(ctx, cfg.PhaseTimeouts.Phase1)
		sm, smp, draws, err := phase1Run(pctx, db, c, cfg.SampleSize, cfg.Rng)
		cancel()
		if err != nil {
			cfg.Metrics.PhaseTime(1, time.Since(start))
			return fail(1, err)
		}
		symbolMatch, sample = sm, smp
		if err := cp.notePhase1(symbolMatch, sample, draws); err != nil {
			return fail(1, err)
		}
	}
	res.SymbolMatch = symbolMatch
	res.SampleSize = len(sample)
	cfg.Metrics.SampleDrawn(len(sample))
	res.Scans = 1
	res.Phase1Time = time.Since(start)
	cfg.Metrics.PhaseTime(1, res.Phase1Time)

	// Phase 2: sample classification — rebuilt from the snapshot on resume
	// (sets and borders are deterministic functions of the stored labels).
	res.PhaseReached = 2
	cfg.Metrics.SetPhase(2)
	start = time.Now()
	var p2 *miner.Result
	var err error
	if snap != nil && snap.Phase >= 2 {
		p2, err = phase2FromSnapshot(snap.Phase2, engine)
		if err != nil {
			return fail(2, err)
		}
	} else {
		pctx, cancel := phaseCtx(ctx, cfg.PhaseTimeouts.Phase2)
		switch engine {
		case engineSweep:
			p2, err = phase2Sweep(pctx, c, &cfg, symbolMatch, sample)
		case engineGrowth:
			p2, err = phase2Growth(pctx, c, &cfg, symbolMatch, sample)
		default:
			p2, err = phase2Candidates(pctx, c, &cfg, symbolMatch, sample)
		}
		cancel()
		if err != nil {
			cfg.Metrics.PhaseTime(2, time.Since(start))
			return fail(2, err)
		}
		if err := cp.notePhase2(p2); err != nil {
			return fail(2, err)
		}
	}
	res.Phase2 = p2
	res.Phase2Time = time.Since(start)
	cfg.Metrics.PhaseTime(2, res.Phase2Time)

	// Phase 3: finalize the border against the full database.
	res.PhaseReached = 3
	cfg.Metrics.SetPhase(3)
	start = time.Now()
	if cfg.Finalizer == None || p2.Ambiguous.Len() == 0 {
		res.Frequent = p2.Frequent.Clone()
		res.Border = pattern.Border(res.Frequent)
		res.Phase3Time = time.Since(start)
		cfg.Metrics.PhaseTime(3, res.Phase3Time)
		res.captureScanStats(db)
		return res, nil
	}
	pctx, cancel := phaseCtx(ctx, cfg.PhaseTimeouts.Phase3)
	defer cancel()
	probeCfg := border.Config{
		MinMatch:  cfg.MinMatch,
		MemBudget: cfg.MemBudget,
		Probe:     cfg.probeValuer(pctx, db, c),
		Ctx:       pctx,
		Metrics:   cfg.Metrics,
	}
	if cp != nil {
		probeCfg.AfterScan = cp.noteProbe
	}
	var st *border.State
	switch cfg.Finalizer {
	case BorderCollapsing, LevelWise:
		if snap != nil && snap.Phase >= 3 {
			st, err = stateFromSnapshot(snap.Probe)
			if err != nil {
				return fail(3, err)
			}
		} else {
			st = border.NewState(p2.Frequent, p2.Ambiguous)
		}
		pick := border.PickHalfway
		if cfg.Finalizer == LevelWise {
			pick = levelwise.PickBottomUp
		}
		res.Phase3, err = border.FinalizeState(probeCfg, st, pick)
	case BorderCollapsingImplicit:
		// The implicit collapse's loop state (layer cursor, excluded and
		// confirmed sets) is not checkpointed: a resumed run restarts
		// Phase 3 from its first probe scan but still skips Phase 1-2.
		res.Phase3, err = border.CollapseImplicit(probeCfg, implicitLower(p2), p2.Ceiling)
	}
	cfg.Metrics.PhaseTime(3, time.Since(start))
	if err != nil {
		callerAlive := ctx == nil || ctx.Err() == nil
		switch {
		case callerAlive && pctx.Err() != nil && errors.Is(err, context.DeadlineExceeded):
			// The Phase 3 budget expired while the caller's context is
			// still alive: degrade gracefully instead of failing.
			res.DegradeReason = DegradePhase3Timeout
			return degrade(res, &cfg, cp, db, p2, st, time.Since(start))
		case callerAlive && errors.Is(err, shardrpc.ErrShardLost):
			// A distributed probe exhausted every node for some shard:
			// surface what Phase 3 confirmed plus the pending intervals and
			// checkpoint, so the exact run resumes once the shard returns.
			res.DegradeReason = DegradeShardLost
			return degrade(res, &cfg, cp, db, p2, st, time.Since(start))
		}
		return fail(3, err)
	}
	res.Frequent = res.Phase3.Frequent
	res.Border = res.Phase3.Border
	res.Scans += res.Phase3.Scans
	res.Phase3Time = time.Since(start)
	res.captureScanStats(db)
	return res, nil
}

// degrade assembles the graceful Phase 3-budget-expiry result: the Phase 2
// frequent set plus everything the probe loop confirmed and propagated in
// time, with the still-pending patterns annotated by their sample estimate
// and Chernoff interval — exactly what a Finalizer == None run would report
// for them. A final checkpoint is flushed so a later Resume can finish the
// collapse. st is nil for the implicit finalizer, whose progress is not
// observable; its degradation falls back to the full Phase 2 split.
func degrade(res *Result, cfg *Config, cp *checkpointer, db seqdb.Scanner, p2 *miner.Result, st *border.State, elapsed time.Duration) (*Result, error) {
	res.Degraded = true
	frequent, pending := p2.Frequent.Clone(), p2.Ambiguous
	if st != nil {
		frequent, pending = st.Frequent, st.Pending
		res.Scans += st.Scans
	}
	res.Frequent = frequent
	res.Border = pattern.Border(frequent)
	epsilon := func(spread float64) float64 { return 1 } // vacuous fallback
	if cls, err := chernoff.NewClassifier(cfg.MinMatch, cfg.Delta, res.SampleSize); err == nil {
		epsilon = cls.Epsilon
	}
	for _, p := range pending.Patterns() {
		key := p.Key()
		res.Unresolved = append(res.Unresolved, Unresolved{
			Pattern:     p,
			SampleMatch: p2.Values[key],
			Epsilon:     epsilon(p2.Spreads[key]),
		})
	}
	res.Phase3Time = elapsed
	res.captureScanStats(db)
	cp.finalWrite()
	return res, nil
}

// phase1Run is Phase 1 (Algorithm 4.1) reporting the RNG draws consumed, so
// a checkpoint can restore the generator's exact post-scan state.
func phase1Run(ctx context.Context, db seqdb.Scanner, c compat.Source, n int, rng *rand.Rand) ([]float64, [][]pattern.Symbol, uint64, error) {
	var acc *match.SymbolAccumulator
	var sampler *sampling.Sequential
	var delivered int
	var priorDraws uint64
	err := seqdb.ScanPassContext(ctx, db, func() (func(id int, seq []pattern.Symbol) error, error) {
		if sampler != nil {
			// A retried pass redraws its sample from the same generator;
			// the failed attempt's draws are part of its history.
			priorDraws += sampler.Draws()
		}
		a := match.NewSymbolAccumulator(c)
		s, err := sampling.NewSequential(n, db.Len(), rng)
		if err != nil {
			return nil, err
		}
		acc, sampler = a, s
		delivered = 0
		return func(id int, seq []pattern.Symbol) error {
			delivered++
			a.Observe(seq)
			s.Offer(seq)
			return nil
		}, nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	// Average over the sequences the scan delivered (db.Len() may be stale
	// for some scanners; the stream is the ground truth).
	return acc.Matches(delivered), sampler.Samples(), priorDraws + sampler.Draws(), nil
}

// phase2Candidates is the candidate-generation Phase 2 (Algorithm 4.2). By
// default each level is scored by the incremental prefix-extension kernel,
// sharded across cfg.Workers; the kernel's cache is released as soon as the
// level-wise run returns.
func phase2Candidates(ctx context.Context, c compat.Source, cfg *Config, symbolMatch []float64, sample [][]pattern.Symbol) (*miner.Result, error) {
	opts := miner.Options{
		MaxLen:                cfg.MaxLen,
		MaxGap:                cfg.MaxGap,
		MaxCandidatesPerLevel: cfg.MaxCandidatesPerLevel,
		Metrics:               cfg.Metrics,
	}
	valuer := miner.MatchSampleValuer(c, sample)
	if cfg.Phase2Kernel == KernelIncremental {
		var inc *match.Incremental
		valuer, inc = miner.IncrementalSampleValuer(c, sample, miner.IncrementalConfig{
			Workers: cfg.Workers,
			Budget:  cfg.Phase2CacheBudget,
			Metrics: cfg.Metrics,
		})
		defer inc.Release()
	}
	return miner.SampleChernoffContext(ctx, c.Size(), valuer,
		symbolMatch, cfg.MinMatch, cfg.Delta, len(sample), opts)
}

// phase2Growth is the depth-first pattern-growth Phase 2: same labels,
// borders and level counts as phase2Candidates (bit-identical for every
// worker count), with candidates valued over projected sample databases and
// bound-pruned subtrees never valued at all. KernelNaive maps to the
// engine's scratch mode — per-candidate compiled matching, no projections —
// mirroring the level-wise kernel split.
func phase2Growth(ctx context.Context, c compat.Source, cfg *Config, symbolMatch []float64, sample [][]pattern.Symbol) (*miner.Result, error) {
	return growth.Mine(c, sample, growth.Config{
		SymbolMatch: symbolMatch,
		MinMatch:    cfg.MinMatch,
		Delta:       cfg.Delta,
		MaxLen:      cfg.MaxLen,
		MaxGap:      cfg.MaxGap,
		Workers:     cfg.Workers,
		Budget:      cfg.Phase2CacheBudget,
		Scratch:     cfg.Phase2Kernel == KernelNaive,
		Metrics:     cfg.Metrics,
		Ctx:         ctx,
	})
}
