package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/telemetry"
)

// ckptConfig is faultConfig plus checkpointing to path.
func ckptConfig(seed int64, path string) Config {
	cfg := faultConfig(seed)
	cfg.Checkpoint = &CheckpointPolicy{Path: path, Seed: seed}
	return cfg
}

// TestResumeAfterKillAtEveryCheckpoint is the crash-recovery proof: the run
// is killed immediately after each checkpoint write in turn (after Phase 1,
// after Phase 2, after every probe scan), resumed from the snapshot, and the
// resumed result must match the uninterrupted run exactly — same frequent
// set, border, exact probe values, and logical scan count — while performing
// strictly fewer full scans than a from-scratch run.
func TestResumeAfterKillAtEveryCheckpoint(t *testing.T) {
	const worldSeed, rngSeed = 77, 2

	// Uninterrupted baseline (checkpointed, counting the writes).
	db, c := noisyProteinDB(t, worldSeed, 60, 0.2)
	basePath := filepath.Join(t.TempDir(), "base.lckp")
	writes := 0
	baseCfg := ckptConfig(rngSeed, basePath)
	baseCfg.Checkpoint.AfterWrite = func(int) { writes++ }
	want, err := MineContext(context.Background(), db, c, baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Phase3 == nil || want.Phase3.Scans < 2 {
		t.Fatalf("world too easy: %d probe scans; kill points would not cover the probe loop", scansOf(want))
	}
	if writes != 2+want.Phase3.Scans {
		t.Fatalf("writes=%d, want %d (phase1 + phase2 + every probe scan)", writes, 2+want.Phase3.Scans)
	}
	basePhysical := db.Scans()
	if basePhysical != want.Scans {
		t.Fatalf("baseline physical scans %d != logical %d", basePhysical, want.Scans)
	}

	for k := 1; k <= writes; k++ {
		// Fresh, identical world; kill right after the k-th write.
		db2, c2 := noisyProteinDB(t, worldSeed, 60, 0.2)
		path := filepath.Join(t.TempDir(), "run.lckp")
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		cfg := ckptConfig(rngSeed, path)
		cfg.Checkpoint.AfterWrite = func(int) {
			n++
			if n == k {
				cancel()
			}
		}
		_, err := MineContext(ctx, db2, c2, cfg)
		cancel()
		if k < writes {
			// Cancellation lands at the next context check.
			var pe *PhaseError
			if !errors.As(err, &pe) || !errors.Is(err, context.Canceled) {
				t.Fatalf("kill %d: err=%v, want a cancellation PhaseError", k, err)
			}
		} else if err != nil {
			// The last write happens after the final probe scan; the run
			// finishes before any further context check.
			t.Fatalf("kill %d (after final write): err=%v", k, err)
		}

		// Resume on a fresh database handle and compare against the baseline.
		db3, c3 := noisyProteinDB(t, worldSeed, 60, 0.2)
		metrics := &telemetry.Metrics{}
		rcfg := ckptConfig(rngSeed, path)
		rcfg.Metrics = metrics
		got, err := Resume(context.Background(), path, db3, c3, rcfg)
		if err != nil {
			t.Fatalf("kill %d: Resume: %v", k, err)
		}
		setsEqual(t, got.Frequent, want.Frequent, "Frequent")
		setsEqual(t, got.Border, want.Border, "Border")
		if got.Scans != want.Scans {
			t.Errorf("kill %d: logical Scans=%d, want %d", k, got.Scans, want.Scans)
		}
		if got.ResumedFrom < 1 {
			t.Errorf("kill %d: ResumedFrom=%d", k, got.ResumedFrom)
		}
		if got.ScansSkipped < 1 {
			t.Errorf("kill %d: ScansSkipped=%d, want >= 1", k, got.ScansSkipped)
		}
		if phys := db3.Scans(); phys != want.Scans-got.ScansSkipped {
			t.Errorf("kill %d: resumed run performed %d scans, want %d (logical %d - skipped %d)",
				k, phys, want.Scans-got.ScansSkipped, want.Scans, got.ScansSkipped)
		}
		if db3.Scans() >= basePhysical {
			t.Errorf("kill %d: resume performed %d scans, not fewer than the %d of a fresh run",
				k, db3.Scans(), basePhysical)
		}
		if got.Phase3 != nil && want.Phase3 != nil {
			if !reflect.DeepEqual(got.Phase3.Exact, want.Phase3.Exact) {
				t.Errorf("kill %d: probed exact values differ from the uninterrupted run", k)
			}
		}
		snap := metrics.Snapshot()
		if snap.ResumedPhase < 1 || int(snap.ScansAvoided) != got.ScansSkipped {
			t.Errorf("kill %d: telemetry resume counters = (%d, %d), want (>=1, %d)",
				k, snap.ResumedPhase, snap.ScansAvoided, got.ScansSkipped)
		}
	}
}

func scansOf(r *Result) int {
	if r.Phase3 == nil {
		return 0
	}
	return r.Phase3.Scans
}

// TestResumeSweepEngine drives the same kill/resume cycle through the sweep
// pipeline: the snapshot records the engine, so Resume dispatches to it.
func TestResumeSweepEngine(t *testing.T) {
	sweepCfg := func(path string) Config {
		cfg := Config{
			MinMatch: 0.06, SampleSize: 600, MaxLen: 3, MemBudget: 1000,
			Finalizer: BorderCollapsing,
			Rng:       rand.New(rand.NewSource(2)),
		}
		if path != "" {
			cfg.Checkpoint = &CheckpointPolicy{Path: path, Seed: 2}
		}
		return cfg
	}
	db, c := sparseWorld(t, 30, 600, 31)
	want, err := MineSweepContext(context.Background(), db, c, sweepCfg(""))
	if err != nil {
		t.Fatal(err)
	}

	// Kill right after the Phase 2 checkpoint.
	db2, c2 := sparseWorld(t, 30, 600, 31)
	path := filepath.Join(t.TempDir(), "sweep.lckp")
	ctx, cancel := context.WithCancel(context.Background())
	cfg := sweepCfg(path)
	cfg.Checkpoint.AfterWrite = func(phase int) {
		if phase == 2 {
			cancel()
		}
	}
	if _, err := MineSweepContext(ctx, db2, c2, cfg); !errors.Is(err, context.Canceled) {
		cancel()
		t.Fatalf("err=%v, want cancellation", err)
	}
	cancel()

	db3, c3 := sparseWorld(t, 30, 600, 31)
	got, err := Resume(context.Background(), path, db3, c3, sweepCfg(path))
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	setsEqual(t, got.Frequent, want.Frequent, "Frequent(sweep)")
	setsEqual(t, got.Border, want.Border, "Border(sweep)")
	if got.Scans != want.Scans {
		t.Errorf("Scans=%d, want %d", got.Scans, want.Scans)
	}
	if got.ResumedFrom != 2 {
		t.Errorf("ResumedFrom=%d, want 2", got.ResumedFrom)
	}
}

// TestResumeRejectsIncompatibleRun covers the compatibility gate: a changed
// configuration or a different database must be refused, not silently mixed
// with the snapshot.
func TestResumeRejectsIncompatibleRun(t *testing.T) {
	db, c := noisyProteinDB(t, 77, 60, 0.2)
	path := filepath.Join(t.TempDir(), "run.lckp")
	if _, err := MineContext(context.Background(), db, c, ckptConfig(2, path)); err != nil {
		t.Fatal(err)
	}

	t.Run("changed config", func(t *testing.T) {
		db2, c2 := noisyProteinDB(t, 77, 60, 0.2)
		cfg := ckptConfig(2, path)
		cfg.MinMatch = 0.2 // not what the snapshot was mined with
		_, err := Resume(context.Background(), path, db2, c2, cfg)
		if !errors.Is(err, ErrIncompatible) {
			t.Errorf("err=%v, want ErrIncompatible", err)
		}
	})
	t.Run("changed database", func(t *testing.T) {
		db2, c2 := noisyProteinDB(t, 99, 61, 0.2) // different size
		_, err := Resume(context.Background(), path, db2, c2, ckptConfig(2, path))
		if !errors.Is(err, ErrIncompatible) {
			t.Errorf("err=%v, want ErrIncompatible", err)
		}
	})
	t.Run("missing snapshot", func(t *testing.T) {
		db2, c2 := noisyProteinDB(t, 77, 60, 0.2)
		_, err := Resume(context.Background(), filepath.Join(t.TempDir(), "nope.lckp"), db2, c2, ckptConfig(2, path))
		if err == nil {
			t.Error("Resume of a missing snapshot succeeded")
		}
	})
}

// slowScanner delays every delivered sequence, so phase budgets expire at
// predictable points.
type slowScanner struct {
	*seqdb.MemDB
	delay time.Duration
}

func (s *slowScanner) Scan(fn func(int, []pattern.Symbol) error) error {
	return s.ScanContext(nil, fn)
}

func (s *slowScanner) ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error {
	return s.MemDB.ScanContext(ctx, func(id int, seq []pattern.Symbol) error {
		time.Sleep(s.delay)
		return fn(id, seq)
	})
}

// TestPhase3BudgetDegradesGracefully expires the Phase 3 budget mid-probe:
// the run must succeed (no error), flag itself Degraded, report the frequent
// set confirmed so far, and annotate every still-ambiguous pattern with its
// sample match and Chernoff interval. A later Resume from the degraded run's
// checkpoint must finish the collapse and land on the uninterrupted result.
func TestPhase3BudgetDegradesGracefully(t *testing.T) {
	db, c := noisyProteinDB(t, 77, 60, 0.2)
	want, err := MineContext(context.Background(), db, c, faultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if want.Phase3 == nil || want.Phase3.Scans == 0 {
		t.Fatal("world does not force Phase 3 scans")
	}

	db2, c2 := noisyProteinDB(t, 77, 60, 0.2)
	slow := &slowScanner{MemDB: db2, delay: 2 * time.Millisecond}
	path := filepath.Join(t.TempDir(), "degraded.lckp")
	cfg := ckptConfig(2, path)
	cfg.PhaseTimeouts.Phase3 = 20 * time.Millisecond // well under one 120ms scan
	res, err := MineContext(context.Background(), slow, c2, cfg)
	if err != nil {
		t.Fatalf("budget expiry must degrade, not fail: %v", err)
	}
	if !res.Degraded {
		t.Fatal("Degraded not set")
	}
	if len(res.Unresolved) == 0 {
		t.Fatal("degraded run reports no unresolved patterns")
	}
	unresolved := pattern.NewSet()
	for _, u := range res.Unresolved {
		if u.Epsilon <= 0 || math.IsInf(u.Epsilon, 1) {
			t.Errorf("unresolved %v: epsilon=%v is not a usable bound", u.Pattern, u.Epsilon)
		}
		if res.Phase2.Values[u.Pattern.Key()] != u.SampleMatch {
			t.Errorf("unresolved %v: SampleMatch=%v != recorded sample value", u.Pattern, u.SampleMatch)
		}
		unresolved.Add(u.Pattern)
	}
	// The degraded frequent set must sit between "confirmed so far" and the
	// full result: everything it claims is in the uninterrupted frequent
	// set, and everything it misses is accounted for in Unresolved.
	for _, p := range res.Frequent.Patterns() {
		if !want.Frequent.Contains(p) {
			t.Errorf("degraded Frequent claims %v, absent from the full run", p)
		}
	}
	for _, p := range want.Frequent.Patterns() {
		if !res.Frequent.Contains(p) && !unresolved.Contains(p) {
			t.Errorf("full-run frequent %v neither confirmed nor listed unresolved", p)
		}
	}

	// Resuming without the budget finishes the collapse exactly.
	db3, c3 := noisyProteinDB(t, 77, 60, 0.2)
	got, err := Resume(context.Background(), path, db3, c3, ckptConfig(2, path))
	if err != nil {
		t.Fatalf("Resume after degradation: %v", err)
	}
	if got.Degraded {
		t.Error("resumed run still degraded")
	}
	setsEqual(t, got.Frequent, want.Frequent, "Frequent(after degraded resume)")
	setsEqual(t, got.Border, want.Border, "Border(after degraded resume)")
}

// TestPhase1BudgetIsHard verifies the non-degrading budgets: a Phase 1
// deadline fails the run with a PhaseError wrapping DeadlineExceeded.
func TestPhase1BudgetIsHard(t *testing.T) {
	db, c := noisyProteinDB(t, 77, 60, 0.2)
	slow := &slowScanner{MemDB: db, delay: 2 * time.Millisecond}
	cfg := faultConfig(2)
	cfg.PhaseTimeouts.Phase1 = 10 * time.Millisecond
	res, err := MineContext(context.Background(), slow, c, cfg)
	var pe *PhaseError
	if !errors.As(err, &pe) || pe.Phase != 1 {
		t.Fatalf("err=%v, want a phase-1 PhaseError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err=%v does not wrap DeadlineExceeded", err)
	}
	if res == nil || res.PhaseReached != 1 {
		t.Errorf("partial result=%+v, want PhaseReached=1", res)
	}
}

// TestCheckpointIntervalPhase checks the coarser write policy: no writes
// during the probe loop, but the final flush on failure still lands, so a
// kill mid-Phase 3 resumes from the last completed probe scan.
func TestCheckpointIntervalPhase(t *testing.T) {
	db, c := noisyProteinDB(t, 77, 60, 0.2)
	path := filepath.Join(t.TempDir(), "run.lckp")
	writesByPhase := make(map[int]int)
	cfg := ckptConfig(2, path)
	cfg.Checkpoint.Interval = IntervalPhase
	cfg.Checkpoint.AfterWrite = func(phase int) { writesByPhase[phase]++ }
	want, err := MineContext(context.Background(), db, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if writesByPhase[1] != 1 || writesByPhase[2] != 1 {
		t.Errorf("writes by phase = %v, want one each for phases 1 and 2", writesByPhase)
	}
	if writesByPhase[3] != 0 {
		t.Errorf("IntervalPhase wrote %d probe-scan snapshots", writesByPhase[3])
	}

	// Cancel mid-probe-loop: the final flush persists the loop state and a
	// resume completes with the correct result.
	db2, c2 := noisyProteinDB(t, 77, 60, 0.2)
	ctx, cancel := context.WithCancel(context.Background())
	cfg2 := ckptConfig(2, path)
	cfg2.Checkpoint.Interval = IntervalPhase
	sc := &cancelScanner{MemDB: db2, cancel: cancel, scan: 2, seq: 5}
	if _, err := MineContext(ctx, sc, c2, cfg2); !errors.Is(err, context.Canceled) {
		cancel()
		t.Fatalf("err=%v, want cancellation", err)
	}
	cancel()
	db3, c3 := noisyProteinDB(t, 77, 60, 0.2)
	rcfg := ckptConfig(2, path)
	rcfg.Checkpoint.Interval = IntervalPhase
	got, err := Resume(context.Background(), path, db3, c3, rcfg)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	setsEqual(t, got.Frequent, want.Frequent, "Frequent(IntervalPhase)")
	setsEqual(t, got.Border, want.Border, "Border(IntervalPhase)")
}

// TestCheckpointTelemetry asserts the write-side counters: every snapshot
// write is tallied with its bytes and duration.
func TestCheckpointTelemetry(t *testing.T) {
	db, c := noisyProteinDB(t, 77, 60, 0.2)
	metrics := &telemetry.Metrics{}
	cfg := ckptConfig(2, filepath.Join(t.TempDir(), "run.lckp"))
	cfg.Metrics = metrics
	writes := 0
	cfg.Checkpoint.AfterWrite = func(int) { writes++ }
	if _, err := MineContext(context.Background(), db, c, cfg); err != nil {
		t.Fatal(err)
	}
	snap := metrics.Snapshot()
	if int(snap.CheckpointWrites) != writes || writes == 0 {
		t.Errorf("CheckpointWrites=%d, want %d", snap.CheckpointWrites, writes)
	}
	if snap.CheckpointBytes <= 0 {
		t.Errorf("CheckpointBytes=%d", snap.CheckpointBytes)
	}
	if snap.ResumedPhase != 0 {
		t.Errorf("fresh run reports ResumedPhase=%d", snap.ResumedPhase)
	}
}
