package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/seqdb"
	"repro/internal/telemetry"
)

// TestMinePhase3ShardsMatchSequential: scattering Phase 3 over any shard and
// worker count must reproduce the single-pass pipeline's frequent set and
// logical scan count.
func TestMinePhase3ShardsMatchSequential(t *testing.T) {
	db, c := noisyProteinDB(t, 15, 80, 0.15)
	run := func(shards, workers int) *Result {
		res, err := Mine(db, c, Config{
			MinMatch: 0.1, SampleSize: 20, MaxLen: 4, MaxGap: 0,
			MemBudget: 30, Phase3Shards: shards, Workers: workers,
			Rng: rand.New(rand.NewSource(16)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(0, 0)
	for _, shards := range []int{2, 3, 8} {
		for _, workers := range []int{0, 2} {
			sharded := run(shards, workers)
			setsEqual(t, sharded.Frequent, seq.Frequent, "sharded vs sequential")
			if sharded.Scans != seq.Scans {
				t.Errorf("shards=%d workers=%d: %d scans vs %d", shards, workers, sharded.Scans, seq.Scans)
			}
		}
	}
}

// TestMineShardSetUsesScatterGather: mining a native multi-file shard set
// takes the scatter-gather probe path automatically (shard telemetry
// populated, real byte counts) and agrees with the in-memory run.
func TestMineShardSetUsesScatterGather(t *testing.T) {
	mem, c := noisyProteinDB(t, 15, 80, 0.15)
	base := filepath.Join(t.TempDir(), "db")
	paths, err := seqdb.WriteShardFiles(mem, base, 3)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := seqdb.OpenShardSet(paths)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		MinMatch: 0.1, SampleSize: 20, MaxLen: 4, MaxGap: 0,
		MemBudget: 30, Metrics: &telemetry.Metrics{},
		Rng: rand.New(rand.NewSource(16)),
	}
	res, err := Mine(sh, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Mine(mem, c, Config{
		MinMatch: 0.1, SampleSize: 20, MaxLen: 4, MaxGap: 0,
		MemBudget: 30, Rng: rand.New(rand.NewSource(16)),
	})
	if err != nil {
		t.Fatal(err)
	}
	setsEqual(t, res.Frequent, ref.Frequent, "shard set vs memory")
	snap := cfg.Metrics.Snapshot()
	if res.Phase3 != nil && res.Phase3.Scans > 0 {
		if snap.ShardScans == 0 {
			t.Errorf("no shard scans recorded; scatter-gather path not taken")
		}
		if snap.ShardBytes == 0 {
			t.Errorf("shard scans over disk shards reported no real bytes")
		}
		if snap.BytesEstimated {
			t.Errorf("bytes_estimated=true for an all-disk shard set")
		}
	}
}
