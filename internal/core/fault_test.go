package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// faultWorld builds the standard small fault-test setup: a noisy planted-motif
// database whose tiny sample guarantees ambiguous patterns, so Phase 3 must
// probe the full database (scan attempts >= 2).
func faultConfig(seed int64) Config {
	return Config{
		MinMatch: 0.1, SampleSize: 10, MaxLen: 3, MemBudget: 5,
		Finalizer: BorderCollapsing,
		Rng:       rand.New(rand.NewSource(seed)),
	}
}

func TestMineSurvivesTransientFaultUnchanged(t *testing.T) {
	// Fault-free baseline.
	db, c := noisyProteinDB(t, 77, 60, 0.2)
	want, err := MineContext(context.Background(), db, c, faultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if want.Phase3 == nil || want.Phase3.Scans == 0 {
		t.Fatal("world does not force Phase 3 scans; the fault would never fire")
	}

	// Same world, same seed, but scan attempt 2 (the first Phase 3 probe)
	// dies with a transient error at sequence 5 and heals on the retry.
	db2, c2 := noisyProteinDB(t, 77, 60, 0.2)
	faulty := faults.New(db2, faults.TransientOn(2, 5))
	retry := &seqdb.RetryScanner{Inner: faulty, Sleep: func(time.Duration) {}}
	got, err := MineContext(context.Background(), retry, c2, faultConfig(2))
	if err != nil {
		t.Fatalf("transient fault not healed: %v", err)
	}

	setsEqual(t, got.Frequent, want.Frequent, "Frequent")
	setsEqual(t, got.Border, want.Border, "Border")
	if got.Scans != want.Scans {
		t.Errorf("Scans=%d, want %d — a healed transient must not change the scan count", got.Scans, want.Scans)
	}
	if db2.Scans() != db.Scans() {
		t.Errorf("underlying scans %d vs %d", db2.Scans(), db.Scans())
	}
	if faulty.Attempts() != db2.Scans()+1 {
		t.Errorf("Attempts=%d, want %d (completed passes + the failed one)", faulty.Attempts(), db2.Scans()+1)
	}
	if got.ScanStats.Retries != 1 || got.ScanStats.Transient != 1 || got.ScanStats.Permanent != 0 {
		t.Errorf("ScanStats=%+v, want exactly one retried transient", got.ScanStats)
	}
}

func TestMineSurvivesTransientFaultParallelProbe(t *testing.T) {
	db, c := noisyProteinDB(t, 77, 60, 0.2)
	want, err := MineContext(context.Background(), db, c, faultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	db2, c2 := noisyProteinDB(t, 77, 60, 0.2)
	retry := &seqdb.RetryScanner{
		Inner: faults.New(db2, faults.TransientOn(2, 5)),
		Sleep: func(time.Duration) {},
	}
	cfg := faultConfig(2)
	cfg.Workers = 2
	got, err := MineContext(context.Background(), retry, c2, cfg)
	if err != nil {
		t.Fatalf("transient fault not healed under parallel probes: %v", err)
	}
	setsEqual(t, got.Frequent, want.Frequent, "Frequent(parallel)")
	setsEqual(t, got.Border, want.Border, "Border(parallel)")
	if got.Scans != want.Scans {
		t.Errorf("Scans=%d, want %d", got.Scans, want.Scans)
	}
}

func TestMinePermanentFaultSurfacesWithPhase(t *testing.T) {
	db, c := noisyProteinDB(t, 77, 60, 0.2)
	retry := &seqdb.RetryScanner{
		Inner: faults.New(db, faults.PermanentOn(2, 5)),
		Sleep: func(time.Duration) {},
	}
	res, err := MineContext(context.Background(), retry, c, faultConfig(2))
	if err == nil {
		t.Fatal("permanent fault did not fail the run")
	}
	var pe *PhaseError
	if !errors.As(err, &pe) {
		t.Fatalf("err=%v, want *PhaseError", err)
	}
	if pe.Phase != 3 {
		t.Errorf("Phase=%d, want 3", pe.Phase)
	}
	if !strings.Contains(err.Error(), "injected permanent failure") {
		t.Errorf("err=%v does not wrap the injected fault", err)
	}
	if st := retry.ScanStats(); st.Permanent != 1 || st.Retries != 0 {
		t.Errorf("ScanStats=%+v — permanent errors must not be retried", st)
	}
	if res == nil || res.PhaseReached != 3 {
		t.Errorf("partial result=%+v, want PhaseReached=3", res)
	}
	if res != nil && res.Phase2 == nil {
		t.Error("partial result lost the completed Phase 2 output")
	}
}

func TestMineTransientFaultExhaustsRetries(t *testing.T) {
	db, c := noisyProteinDB(t, 77, 60, 0.2)
	// Repeat:true keeps the transient fault firing on every attempt, so
	// even a retrying scanner runs out of patience.
	retry := &seqdb.RetryScanner{
		Inner:      faults.New(db, faults.Fault{Scan: 2, Seq: 5, Kind: faults.Transient, Repeat: true}),
		MaxRetries: 2,
		Sleep:      func(time.Duration) {},
	}
	_, err := MineContext(context.Background(), retry, c, faultConfig(2))
	if err == nil {
		t.Fatal("unhealable transient did not fail the run")
	}
	var pe *PhaseError
	if !errors.As(err, &pe) || pe.Phase != 3 {
		t.Fatalf("err=%v, want a phase-3 PhaseError", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("err=%v does not report retry exhaustion", err)
	}
}

// cancelScanner cancels a context at exact (attempt, sequence) coordinates.
type cancelScanner struct {
	*seqdb.MemDB
	cancel  context.CancelFunc
	scan    int // 1-based attempt to cancel on
	seq     int
	attempt int
}

func (s *cancelScanner) Scan(fn func(int, []pattern.Symbol) error) error {
	return s.ScanContext(nil, fn)
}

func (s *cancelScanner) ScanContext(ctx context.Context, fn func(id int, seq []pattern.Symbol) error) error {
	s.attempt++
	cur := s.attempt
	return s.MemDB.ScanContext(ctx, func(id int, seq []pattern.Symbol) error {
		if cur == s.scan && id == s.seq {
			s.cancel()
		}
		return fn(id, seq)
	})
}

func TestMineCancellationAbortsPhase1WithinOneSequence(t *testing.T) {
	db, c := noisyProteinDB(t, 77, 60, 0.2)
	ctx, cancel := context.WithCancel(context.Background())
	sc := &cancelScanner{MemDB: db, cancel: cancel, scan: 1, seq: 5}
	res, err := MineContext(ctx, sc, c, faultConfig(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	var pe *PhaseError
	if !errors.As(err, &pe) || pe.Phase != 1 {
		t.Fatalf("err=%v, want a phase-1 PhaseError", err)
	}
	if db.Scans() != 0 {
		t.Errorf("Scans=%d — the aborted pass must not count", db.Scans())
	}
	if res == nil || res.PhaseReached != 1 {
		t.Errorf("partial result=%+v, want PhaseReached=1", res)
	}
}

func TestMineCancellationAbortsPhase3(t *testing.T) {
	db, c := noisyProteinDB(t, 77, 60, 0.2)
	ctx, cancel := context.WithCancel(context.Background())
	sc := &cancelScanner{MemDB: db, cancel: cancel, scan: 2, seq: 5}
	res, err := MineContext(ctx, sc, c, faultConfig(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	var pe *PhaseError
	if !errors.As(err, &pe) || pe.Phase != 3 {
		t.Fatalf("err=%v, want a phase-3 PhaseError", err)
	}
	if db.Scans() != 1 {
		t.Errorf("Scans=%d, want 1 — Phase 1 completed, the probe aborted", db.Scans())
	}
	if res == nil || res.PhaseReached != 3 || res.Phase2 == nil {
		t.Errorf("partial result=%+v, want PhaseReached=3 with Phase 2 output", res)
	}
}

func TestMineCancellationNotRetried(t *testing.T) {
	// Cancellation through a RetryScanner must abort immediately, never
	// burn retry attempts.
	db, c := noisyProteinDB(t, 77, 60, 0.2)
	ctx, cancel := context.WithCancel(context.Background())
	sc := &cancelScanner{MemDB: db, cancel: cancel, scan: 2, seq: 5}
	retry := &seqdb.RetryScanner{Inner: sc, Sleep: func(time.Duration) { t.Error("slept on cancellation") }}
	_, err := MineContext(ctx, retry, c, faultConfig(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if st := retry.ScanStats(); st.Retries != 0 || st.Transient != 0 {
		t.Errorf("ScanStats=%+v — cancellation was classified as a failure", st)
	}
}

func TestMineSweepTransientFaultHealed(t *testing.T) {
	// The sweep needs ε < min_match, so it gets the larger sparse world the
	// other sweep tests use; a full-coverage sample keeps the retried Phase
	// 1 deterministic (a sampler that needs everything draws no randomness).
	sweepCfg := func() Config {
		return Config{
			MinMatch: 0.06, SampleSize: 600, MaxLen: 3, MemBudget: 1000,
			Finalizer: BorderCollapsing,
			Rng:       rand.New(rand.NewSource(2)),
		}
	}
	db, c := sparseWorld(t, 30, 600, 31)
	want, err := MineSweepContext(context.Background(), db, c, sweepCfg())
	if err != nil {
		t.Fatal(err)
	}
	db2, c2 := sparseWorld(t, 30, 600, 31)
	retry := &seqdb.RetryScanner{
		Inner: faults.New(db2, faults.TransientOn(1, 5)),
		Sleep: func(time.Duration) {},
	}
	got, err := MineSweepContext(context.Background(), retry, c2, sweepCfg())
	if err != nil {
		t.Fatalf("transient fault not healed: %v", err)
	}
	setsEqual(t, got.Frequent, want.Frequent, "Frequent(sweep)")
	setsEqual(t, got.Border, want.Border, "Border(sweep)")
	if got.Scans != want.Scans {
		t.Errorf("Scans=%d, want %d", got.Scans, want.Scans)
	}
	if got.ScanStats.Retries != 1 {
		t.Errorf("ScanStats=%+v", got.ScanStats)
	}
}
