package core

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/compat"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/shardrpc"
)

// remoteCfg wires cfg.ProbeValuer to scatter Phase 3 probes over the pool.
func remoteCfg(cfg Config, pool *shardrpc.Pool, shards int) Config {
	cfg.ProbeValuer = func(ctx context.Context, db seqdb.Scanner, c compat.Source) miner.Valuer {
		return miner.RemoteShardValuerContext(ctx, seqdb.ShardedView(db, shards), pool, c, 0, cfg.Metrics)
	}
	return cfg
}

func instantSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

// killable makes a real HTTP node SIGKILL-able: once dead it aborts every
// connection at the transport level, like a killed process behind a closed
// socket. killAfterServed > 0 arms an automatic kill after that many
// successfully served requests — a node dying mid-gather.
type killable struct {
	inner           http.Handler
	served          atomic.Int64
	dead            atomic.Bool
	killAfterServed int64
}

func (k *killable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	k.inner.ServeHTTP(w, r)
	if n := k.served.Add(1); k.killAfterServed > 0 && n >= k.killAfterServed {
		k.dead.Store(true)
	}
}

// TestRemotePhase3NodeKillChaos: a three-node cluster of real HTTP servers
// loses one node after its first served probe; the distributed run's report
// must be byte-identical to the local sharded run's.
func TestRemotePhase3NodeKillChaos(t *testing.T) {
	db, c := noisyProteinDB(t, 15, 80, 0.15)
	const shards = 3
	baseCfg := Config{
		MinMatch: 0.1, SampleSize: 20, MaxLen: 4, MaxGap: 0,
		MemBudget: 10,
	}

	local := baseCfg
	local.Phase3Shards = shards
	local.Rng = rand.New(rand.NewSource(16))
	want, err := Mine(db, c, local)
	if err != nil {
		t.Fatal(err)
	}

	const token = "chaos-token"
	var nodes []*killable
	var clients []*shardrpc.Client
	for i := 0; i < 3; i++ {
		k := &killable{inner: (&shardrpc.Server{
			Open:      func() (seqdb.Scanner, error) { return db, nil },
			AuthToken: token,
		}).Handler()}
		if i == 0 {
			k.killAfterServed = 1 // node 0 dies mid-gather
		}
		srv := httptest.NewServer(k)
		defer srv.Close()
		nodes = append(nodes, k)
		clients = append(clients, &shardrpc.Client{BaseURL: srv.URL, AuthToken: token})
	}
	pool := &shardrpc.Pool{
		Clients: clients,
		Retry:   shardrpc.RetryPolicy{Base: time.Microsecond},
		Sleep:   instantSleep,
	}

	remote := remoteCfg(baseCfg, pool, shards)
	remote.Rng = rand.New(rand.NewSource(16))
	got, err := Mine(db, c, remote)
	if err != nil {
		t.Fatal(err)
	}
	if !nodes[0].dead.Load() {
		t.Fatalf("node 0 never died; chaos schedule did not engage (served=%d)", nodes[0].served.Load())
	}

	wantDoc := timelessReport(t, want, local.MinMatch, db.Len(), c.Size())
	gotDoc := timelessReport(t, got, local.MinMatch, db.Len(), c.Size())
	if !bytes.Equal(wantDoc, gotDoc) {
		t.Errorf("distributed run's report differs from the local sharded run's:\nlocal:  %s\nremote: %s",
			wantDoc, gotDoc)
	}
}

// timelessReport renders the run's JSON report with the wall-clock timing
// fields stripped: everything left — pattern sets, per-pattern match values
// bit for bit, scan counts — is the deterministic mined result.
func timelessReport(t *testing.T, res *Result, minMatch float64, n, m int) []byte {
	t.Helper()
	rep, err := NewReport(res, minMatch, n, pattern.GenericAlphabet(m))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if phases, ok := doc["phases"].(map[string]any); ok {
		for k := range phases {
			if strings.HasSuffix(k, "_ms") {
				delete(phases, k)
			}
		}
	}
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRemotePhase3ShardLostDegradesAndResumes: a cluster that dies for good
// mid-Phase 3 degrades the run gracefully (Unresolved + Chernoff intervals,
// DegradeReason shard-lost, checkpoint on disk) instead of failing it, and
// once the cluster is back Resume finishes to the uninterrupted result.
func TestRemotePhase3ShardLostDegradesAndResumes(t *testing.T) {
	db, c := noisyProteinDB(t, 15, 80, 0.15)
	const shards = 3
	baseCfg := Config{
		MinMatch: 0.1, SampleSize: 20, MaxLen: 4, MaxGap: 0,
		MemBudget: 5, // several probe scans, so the cluster dies mid-phase
	}

	ref := baseCfg
	ref.Phase3Shards = shards
	ref.Rng = rand.New(rand.NewSource(16))
	want, err := Mine(db, c, ref)
	if err != nil {
		t.Fatal(err)
	}

	h := shardrpc.NewHarness(2, "", func() (seqdb.Scanner, error) { return db, nil })
	pool := h.Pool(shardrpc.RetryPolicy{MaxAttempts: 2, Base: time.Microsecond})
	pool.Sleep = instantSleep

	ckpt := filepath.Join(t.TempDir(), "run.lckp")
	cfg := remoteCfg(baseCfg, pool, shards)
	cfg.Rng = rand.New(rand.NewSource(16))
	cfg.Checkpoint = &CheckpointPolicy{Path: ckpt, Seed: 16, AfterWrite: func(phase int) {
		if phase >= 3 {
			h.KillAll() // the whole cluster goes away after the first probe scan
		}
	}}
	res, err := Mine(db, c, cfg)
	if err != nil {
		t.Fatalf("shard loss failed the run instead of degrading it: %v", err)
	}
	if !res.Degraded {
		t.Fatal("run not degraded after permanent shard loss")
	}
	if res.DegradeReason != DegradeShardLost {
		t.Fatalf("DegradeReason = %q, want %q", res.DegradeReason, DegradeShardLost)
	}
	if len(res.Unresolved) == 0 {
		t.Fatal("degraded run reports no unresolved patterns")
	}
	for _, u := range res.Unresolved {
		if u.Epsilon <= 0 {
			t.Fatalf("unresolved %v lacks a Chernoff interval (ε=%v)", u.Pattern, u.Epsilon)
		}
	}

	// The cluster comes back; the checkpointed run resumes to the exact
	// uninterrupted result, skipping the scans it already has.
	h.ReviveAll()
	pool2 := h.Pool(shardrpc.RetryPolicy{MaxAttempts: 2, Base: time.Microsecond})
	pool2.Sleep = instantSleep
	cfg2 := remoteCfg(baseCfg, pool2, shards)
	cfg2.Checkpoint = &CheckpointPolicy{Path: ckpt, Seed: 16}
	res2, err := Resume(context.Background(), ckpt, db, c, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Degraded {
		t.Fatal("resumed run still degraded with a healthy cluster")
	}
	setsEqual(t, res2.Frequent, want.Frequent, "resumed remote vs uninterrupted local")
	if res2.ScansSkipped == 0 {
		t.Errorf("resume skipped no scans; checkpoint was not used")
	}
}
