package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/compat"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// flakyScanner fails every pass after the first `good` ones — simulating a
// disk that dies mid-mining between Phase 1 and Phase 3.
type flakyScanner struct {
	inner *seqdb.MemDB
	good  int
	done  int
	err   error
}

func (f *flakyScanner) Scan(fn func(int, []pattern.Symbol) error) error {
	if f.done >= f.good {
		return f.err
	}
	f.done++
	return f.inner.Scan(fn)
}

func (f *flakyScanner) Len() int    { return f.inner.Len() }
func (f *flakyScanner) Scans() int  { return f.inner.Scans() }
func (f *flakyScanner) ResetScans() { f.inner.ResetScans() }

func flakyWorld(t *testing.T) (*seqdb.MemDB, *compat.Matrix) {
	t.Helper()
	db, c := noisyProteinDB(t, 77, 60, 0.2)
	return db, c
}

func TestMineFailsCleanlyWhenPhase1ScanFails(t *testing.T) {
	db, c := flakyWorld(t)
	boom := errors.New("disk gone")
	flaky := &flakyScanner{inner: db, good: 0, err: boom}
	_, err := Mine(flaky, c, Config{
		MinMatch: 0.1, SampleSize: 10, MaxLen: 3, Rng: rand.New(rand.NewSource(1)),
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want the scan failure", err)
	}
}

func TestMineFailsCleanlyWhenProbeScanFails(t *testing.T) {
	db, c := flakyWorld(t)
	boom := errors.New("disk gone")
	// Phase 1 succeeds; the first Phase 3 probe fails. A tiny sample
	// guarantees ambiguous patterns exist, so Phase 3 must scan.
	flaky := &flakyScanner{inner: db, good: 1, err: boom}
	_, err := Mine(flaky, c, Config{
		MinMatch: 0.1, SampleSize: 10, MaxLen: 3, MemBudget: 5,
		Rng: rand.New(rand.NewSource(2)),
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want the probe failure", err)
	}
}

func TestMineSweepFailsCleanlyOnScanFailure(t *testing.T) {
	db, c := flakyWorld(t)
	boom := errors.New("disk gone")
	flaky := &flakyScanner{inner: db, good: 0, err: boom}
	_, err := MineSweep(flaky, c.Sparse(), Config{
		MinMatch: 0.1, SampleSize: 10, MaxLen: 3, Rng: rand.New(rand.NewSource(3)),
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want the scan failure", err)
	}
}

func TestExhaustiveFailsCleanlyOnScanFailure(t *testing.T) {
	db, c := flakyWorld(t)
	boom := errors.New("disk gone")
	flaky := &flakyScanner{inner: db, good: 1, err: boom} // dies at level 2
	_, err := Exhaustive(flaky, c, 0.1, miner.Options{MaxLen: 3})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want the scan failure", err)
	}
}

func TestMineAbortedSequenceCallback(t *testing.T) {
	// A callback error mid-pass must not be double-counted as a scan.
	db, c := flakyWorld(t)
	db.ResetScans()
	boom := errors.New("row error")
	failing := &rowFailScanner{inner: db, failAt: 3, err: boom}
	_, err := Mine(failing, c, Config{
		MinMatch: 0.1, SampleSize: 10, MaxLen: 3, Rng: rand.New(rand.NewSource(4)),
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v", err)
	}
	if db.Scans() != 0 {
		t.Errorf("aborted pass counted: %d", db.Scans())
	}
}

type rowFailScanner struct {
	inner  *seqdb.MemDB
	failAt int
	err    error
}

func (r *rowFailScanner) Scan(fn func(int, []pattern.Symbol) error) error {
	return r.inner.Scan(func(id int, seq []pattern.Symbol) error {
		if id == r.failAt {
			return r.err
		}
		return fn(id, seq)
	})
}

func (r *rowFailScanner) Len() int    { return r.inner.Len() }
func (r *rowFailScanner) Scans() int  { return r.inner.Scans() }
func (r *rowFailScanner) ResetScans() { r.inner.ResetScans() }
