// Checkpoint/resume glue: the policy knob on Config, the pipeline-side
// checkpointer that mirrors progress into a checkpoint.Snapshot and persists
// it crash-atomically, the snapshot <-> pipeline-state conversions, and
// Resume, which restarts an interrupted run from its snapshot without
// repeating any completed full database scan.
package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"repro/internal/border"
	"repro/internal/checkpoint"
	"repro/internal/chernoff"
	"repro/internal/compat"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// CheckpointInterval selects how often an enabled checkpoint is rewritten.
type CheckpointInterval int

const (
	// IntervalProbeScan (the default) writes after Phase 1, after Phase 2,
	// and after every completed Phase 3 probe scan — the finest durability
	// the scan-granular pipeline supports: at most one full scan is ever
	// lost to a crash.
	IntervalProbeScan CheckpointInterval = iota
	// IntervalPhase writes only at phase boundaries (and in a final
	// best-effort flush when a run fails or degrades), trading Phase 3
	// durability for fewer writes on runs with many probe scans.
	IntervalPhase
)

// CheckpointPolicy configures durable progress snapshots; see
// Config.Checkpoint.
type CheckpointPolicy struct {
	// Path is the snapshot file (required). Writes are crash-atomic: a
	// crash mid-write leaves the previous snapshot intact.
	Path string
	// Interval selects the write points. Default IntervalProbeScan.
	Interval CheckpointInterval
	// Seed is the seed Config.Rng was created from, recorded in the
	// snapshot together with the number of draws Phase 1 consumed so
	// Resume can restore an identical generator (*rand.Rand does not
	// expose its seed, so the caller must supply it). A run resumed past
	// Phase 1 replays the stored sample verbatim and never consults the
	// generator again, so an unknown seed only matters to callers who
	// continue drawing from the RNG after mining.
	Seed int64
	// AfterWrite, when non-nil, observes every successful snapshot write
	// with the phase it recorded — a hook for tests and progress UIs.
	AfterWrite func(phase int)
}

// ErrIncompatible reports that a snapshot was produced by a different
// configuration or database than the one offered to Resume.
var ErrIncompatible = errors.New("core: checkpoint incompatible with this run")

// configHash fingerprints every configuration field that shapes the mined
// result (tuning knobs like Workers, Phase3Shards, Phase2Kernel and Metrics
// are excluded — they change how scans are executed, never what is mined).
// Call after setDefaults so zero values hash like their explicit defaults.
func configHash(cfg *Config, engine string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v|%v|%d|%d|%d|%d|%d|%s|%s",
		cfg.MinMatch, cfg.Delta, cfg.SampleSize, cfg.MaxLen, cfg.MaxGap,
		cfg.MaxCandidatesPerLevel, cfg.MemBudget, cfg.Finalizer, engine)
	return h.Sum64()
}

// scannerPath reports the scanner's backing file when it has one (DiskDB,
// GzipDB, a RetryScanner over either); empty for in-memory stores.
func scannerPath(db seqdb.Scanner) string {
	if p, ok := db.(interface{ Path() string }); ok {
		return p.Path()
	}
	return ""
}

// checkpointer mirrors pipeline progress into a snapshot and persists it
// according to the policy. All methods are nil-receiver-safe, so the
// pipeline calls them unconditionally.
type checkpointer struct {
	policy *CheckpointPolicy
	cfg    *Config
	snap   *checkpoint.Snapshot
	dirty  bool
}

// newCheckpointer returns nil when checkpointing is disabled.
func newCheckpointer(cfg *Config, hash uint64, dbPath string, dbLen int, engine string) *checkpointer {
	if cfg.Checkpoint == nil {
		return nil
	}
	return &checkpointer{
		policy: cfg.Checkpoint,
		cfg:    cfg,
		snap: &checkpoint.Snapshot{
			ConfigHash: hash,
			DBPath:     dbPath,
			DBLen:      dbLen,
			Engine:     engine,
			Seed:       cfg.Checkpoint.Seed,
		},
	}
}

// adopt continues from a loaded snapshot instead of a fresh one.
func (cp *checkpointer) adopt(snap *checkpoint.Snapshot) {
	if cp == nil {
		return
	}
	cp.snap = snap
	cp.dirty = false
}

// write persists the snapshot if it changed since the last write.
func (cp *checkpointer) write() error {
	if cp == nil || !cp.dirty {
		return nil
	}
	start := time.Now()
	n, err := checkpoint.Save(cp.policy.Path, cp.snap)
	if err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	cp.dirty = false
	cp.cfg.Metrics.CheckpointWrite(n, time.Since(start))
	if cp.policy.AfterWrite != nil {
		cp.policy.AfterWrite(cp.snap.Phase)
	}
	return nil
}

// notePhase1 records Phase 1's outputs and writes (phase boundaries write
// under every interval policy). The slices are aliased, not copied: the
// pipeline never mutates them after the phase completes.
func (cp *checkpointer) notePhase1(symbolMatch []float64, sample [][]pattern.Symbol, draws uint64) error {
	if cp == nil {
		return nil
	}
	cp.snap.Phase = 1
	cp.snap.SymbolMatch = symbolMatch
	cp.snap.Sample = sample
	cp.snap.RngDraws = draws
	cp.dirty = true
	return cp.write()
}

// notePhase2 records Phase 2's mining result and writes.
func (cp *checkpointer) notePhase2(p2 *miner.Result) error {
	if cp == nil {
		return nil
	}
	cp.snap.Phase = 2
	cp.snap.Phase2 = phase2ToSnapshot(p2)
	cp.dirty = true
	return cp.write()
}

// noteProbe records Phase 3's loop state after a completed probe scan; under
// IntervalProbeScan it also writes (IntervalPhase defers to finalWrite).
func (cp *checkpointer) noteProbe(st *border.State) error {
	if cp == nil {
		return nil
	}
	cp.snap.Phase = 3
	cp.snap.Probe = probeToSnapshot(st)
	cp.dirty = true
	if cp.policy.Interval == IntervalProbeScan {
		return cp.write()
	}
	return nil
}

// finalWrite best-effort-flushes any unpersisted progress before the run
// returns a failure or a degraded result. Errors are swallowed: the run is
// already surfacing its primary outcome.
func (cp *checkpointer) finalWrite() {
	if cp == nil || cp.snap.Phase == 0 {
		return
	}
	_ = cp.write()
}

// phase2ToSnapshot extracts the serializable core of a Phase 2 result. The
// sets and borders are deterministic functions of Labels and are recomputed
// by phase2FromSnapshot.
func phase2ToSnapshot(p2 *miner.Result) *checkpoint.Phase2State {
	ps := &checkpoint.Phase2State{
		Values:             make(map[string]float64, len(p2.Values)),
		Spreads:            make(map[string]float64, len(p2.Spreads)),
		Labels:             make(map[string]uint8, len(p2.Labels)),
		CandidatesPerLevel: append([]int(nil), p2.CandidatesPerLevel...),
		AlivePerLevel:      append([]int(nil), p2.AlivePerLevel...),
		Truncated:          p2.Truncated,
	}
	for k, v := range p2.Values {
		ps.Values[k] = v
	}
	for k, v := range p2.Spreads {
		ps.Spreads[k] = v
	}
	for k, l := range p2.Labels {
		ps.Labels[k] = uint8(l)
	}
	return ps
}

// phase2FromSnapshot rebuilds the full Phase 2 result: sets from the labels,
// borders from the sets, Scans per the engine's accounting (the candidates
// engine spends one sample-valuer call per level; the sweep and growth
// engines spend none).
func phase2FromSnapshot(ps *checkpoint.Phase2State, engine string) (*miner.Result, error) {
	p2 := &miner.Result{
		Frequent:           pattern.NewSet(),
		Ambiguous:          pattern.NewSet(),
		Values:             make(map[string]float64, len(ps.Values)),
		Spreads:            make(map[string]float64, len(ps.Spreads)),
		Labels:             make(map[string]chernoff.Label, len(ps.Labels)),
		CandidatesPerLevel: append([]int(nil), ps.CandidatesPerLevel...),
		AlivePerLevel:      append([]int(nil), ps.AlivePerLevel...),
		Truncated:          ps.Truncated,
	}
	for k, v := range ps.Values {
		p2.Values[k] = v
	}
	for k, v := range ps.Spreads {
		p2.Spreads[k] = v
	}
	for key, l := range ps.Labels {
		if l > uint8(chernoff.Frequent) {
			return nil, fmt.Errorf("core: checkpoint label %d for %q out of range", l, key)
		}
		p, err := pattern.ParseKey(key)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint phase2 key %q: %w", key, err)
		}
		p2.Labels[key] = chernoff.Label(l)
		switch chernoff.Label(l) {
		case chernoff.Frequent:
			p2.Frequent.Add(p)
		case chernoff.Ambiguous:
			p2.Ambiguous.Add(p)
		}
	}
	p2.FQT = pattern.Border(p2.Frequent)
	combined := p2.Frequent.Clone()
	combined.Union(p2.Ambiguous)
	p2.Ceiling = pattern.Border(combined)
	if engine == engineCandidates {
		p2.Scans = len(p2.CandidatesPerLevel)
	}
	return p2, nil
}

// probeToSnapshot copies the loop state into serializable form. The map is
// copied and the sets rendered as key-sorted slices (pattern.Set.Patterns
// order), so the snapshot stays internally consistent and byte-deterministic
// even if the live state advances before a later flush.
func probeToSnapshot(st *border.State) *checkpoint.ProbeState {
	ps := &checkpoint.ProbeState{
		Scans:    st.Scans,
		Probed:   st.Probed,
		Exact:    make(map[string]float64, len(st.Exact)),
		Frequent: setKeys(st.Frequent),
		Pending:  setKeys(st.Pending),
	}
	for k, v := range st.Exact {
		ps.Exact[k] = v
	}
	return ps
}

func setKeys(s *pattern.Set) []string {
	pats := s.Patterns()
	keys := make([]string, len(pats))
	for i, p := range pats {
		keys[i] = p.Key()
	}
	return keys
}

// stateFromSnapshot rebuilds the probe loop's state; FinalizeState then
// performs exactly the scans the interrupted run had left.
func stateFromSnapshot(ps *checkpoint.ProbeState) (*border.State, error) {
	st := &border.State{
		Frequent: pattern.NewSet(),
		Pending:  pattern.NewSet(),
		Exact:    make(map[string]float64, len(ps.Exact)),
		Scans:    ps.Scans,
		Probed:   ps.Probed,
	}
	for k, v := range ps.Exact {
		st.Exact[k] = v
	}
	for _, key := range ps.Frequent {
		p, err := pattern.ParseKey(key)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint frequent key %q: %w", key, err)
		}
		st.Frequent.Add(p)
	}
	for _, key := range ps.Pending {
		p, err := pattern.ParseKey(key)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint pending key %q: %w", key, err)
		}
		st.Pending.Add(p)
	}
	return st, nil
}

// Resume restarts a checkpointed run from the snapshot at path, skipping
// every full database scan the snapshot records: Phase 1's scan is replaced
// by the stored symbol matches and sample, Phase 2 (if recorded) by the
// stored classification, and Phase 3 continues from the probe loop's last
// completed scan. Because every downstream step is a deterministic function
// of the recorded state, the resumed Result's Frequent set and Border are
// identical to the uninterrupted run's, and Result.Scans reports the same
// logical total (Result.ScansSkipped says how many of them this process
// avoided).
//
// cfg must describe the same mining run: Resume rejects the snapshot with an
// error wrapping ErrIncompatible when the configuration hash, database
// length, or database path disagree. cfg.Rng may be nil — the generator is
// rebuilt from the snapshot's recorded seed and fast-forwarded past the
// draws Phase 1 consumed. The engine (Mine vs MineSweep) is recorded in the
// snapshot, so Resume serves both. Checkpointing continues (and the
// snapshot keeps advancing) when cfg.Checkpoint is set, which a resumed run
// normally wants; phase budgets in cfg.PhaseTimeouts apply to the phases
// actually run.
func Resume(ctx context.Context, path string, db seqdb.Scanner, c compat.Source, cfg Config) (*Result, error) {
	snap, err := checkpoint.Load(path)
	if err != nil {
		return nil, err
	}
	var engine string
	switch snap.Engine {
	case engineCandidates, engineSweep, engineGrowth:
		engine = snap.Engine
	default:
		return nil, fmt.Errorf("core: checkpoint engine %q unknown", snap.Engine)
	}
	if cfg.Rng == nil {
		rng := rand.New(rand.NewSource(snap.Seed))
		for i := uint64(0); i < snap.RngDraws; i++ {
			rng.Float64()
		}
		cfg.Rng = rng
	}
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if hash := configHash(&cfg, engine); hash != snap.ConfigHash {
		return nil, fmt.Errorf("%w: config hash %#x, snapshot %#x", ErrIncompatible, hash, snap.ConfigHash)
	}
	if snap.DBLen != db.Len() {
		return nil, fmt.Errorf("%w: database holds %d sequences, snapshot recorded %d", ErrIncompatible, db.Len(), snap.DBLen)
	}
	if p := scannerPath(db); p != "" && snap.DBPath != "" && p != snap.DBPath {
		return nil, fmt.Errorf("%w: database path %q, snapshot recorded %q", ErrIncompatible, p, snap.DBPath)
	}
	return mineContext(ctx, db, c, cfg, engine, snap)
}
