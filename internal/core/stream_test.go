package core

import (
	"context"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/compat"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

func streamTestData(t *testing.T, seed int64, n int) (*compat.Matrix, [][]pattern.Symbol) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c, err := compat.UniformNoise(4, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	db := make([][]pattern.Symbol, n)
	for i := range db {
		seq := make([]pattern.Symbol, 3+rng.Intn(6))
		for j := range seq {
			seq[j] = pattern.Symbol(rng.Intn(4))
		}
		if rng.Intn(2) == 0 && len(seq) >= 2 {
			seq[0], seq[1] = 1, 2
		}
		db[i] = seq
	}
	return c, db
}

func streamTestConfig(ckpt string) StreamConfig {
	return StreamConfig{
		Config: Config{
			MinMatch:   0.3,
			Delta:      0.1,
			SampleSize: 64,
			MaxLen:     3,
			MaxGap:     1,
			MemBudget:  4,
		},
		Seed:           7,
		CheckpointPath: ckpt,
	}
}

// TestStreamCheckpointResume advances a checkpointed stream over half the
// batches, resumes a second session from the snapshot alone, and runs both
// over the remaining batches in lockstep: every result must be identical —
// the snapshot carries the full incremental state.
func TestStreamCheckpointResume(t *testing.T) {
	c, data := streamTestData(t, 11, 20)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "log.lsa")
	log, err := seqdb.CreateAppend(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()

	st, err := NewStream(log, c, streamTestConfig(filepath.Join(dir, "live.lckp")))
	if err != nil {
		t.Fatal(err)
	}
	append4 := func(lo int) {
		for _, seq := range data[lo : lo+4] {
			if _, err := log.Append(seq); err != nil {
				t.Fatal(err)
			}
		}
	}
	append4(0)
	if _, err := st.Advance(context.Background()); err != nil {
		t.Fatal(err)
	}
	append4(4)
	if _, err := st.Advance(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Resume a second session from the snapshot (same log, fresh handle to
	// mimic a restarted process), then feed both the remaining batches.
	log2, err := seqdb.OpenAppendRead(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	resumed, err := ResumeStream(filepath.Join(dir, "live.lckp"), log2, c, streamTestConfig(filepath.Join(dir, "resumed.lckp")))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Cursor() != st.Cursor() {
		t.Fatalf("resumed cursor %d, live cursor %d", resumed.Cursor(), st.Cursor())
	}
	for lo := 8; lo < len(data); lo += 4 {
		append4(lo)
		a, err := st.Advance(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		b, err := resumed.Advance(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Frequent.Patterns(), b.Frequent.Patterns()) ||
			!reflect.DeepEqual(a.Border.Patterns(), b.Border.Patterns()) {
			t.Fatalf("resumed stream diverged at prefix %d", lo+4)
		}
		if a.Remined != b.Remined || !reflect.DeepEqual(a.SymbolMatch, b.SymbolMatch) {
			t.Fatalf("resumed stream state diverged at prefix %d (remined %v/%v)", lo+4, a.Remined, b.Remined)
		}
		if !reflect.DeepEqual(a.Phase2.Values, b.Phase2.Values) {
			t.Fatalf("resumed stream values diverged at prefix %d", lo+4)
		}
	}
}

// TestStreamResumeCatchesUpOfflineAppends kills a session, appends while it
// is down, and resumes: the first Advance must consume the offline tail and
// match a session that never went down.
func TestStreamResumeCatchesUpOfflineAppends(t *testing.T) {
	c, data := streamTestData(t, 3, 12)
	dir := t.TempDir()
	logPath := filepath.Join(dir, "log.lsa")
	log, err := seqdb.CreateAppend(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	ckpt := filepath.Join(dir, "s.lckp")
	st, err := NewStream(log, c, streamTestConfig(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range data[:6] {
		if _, err := log.Append(seq); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Advance(context.Background()); err != nil {
		t.Fatal(err)
	}
	// "Crash": drop the session, keep appending to the log.
	for _, seq := range data[6:] {
		if _, err := log.Append(seq); err != nil {
			t.Fatal(err)
		}
	}
	resumed, err := ResumeStream(ckpt, log, c, streamTestConfig(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Advance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Appended != len(data)-6 || res.Total != len(data) {
		t.Fatalf("resume consumed %d of the %d offline appends", res.Appended, len(data)-6)
	}

	// An uninterrupted session over the same batches must agree.
	log2, err := seqdb.CreateAppend(filepath.Join(dir, "ref.lsa"))
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	ref, err := NewStream(log2, c, streamTestConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	var want *pattern.Set
	for _, hi := range []int{6, len(data)} {
		for _, seq := range data[log2.Total():hi] {
			if _, err := log2.Append(seq); err != nil {
				t.Fatal(err)
			}
		}
		r, err := ref.Advance(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want = r.Frequent
	}
	if !reflect.DeepEqual(res.Frequent.Patterns(), want.Patterns()) {
		t.Fatalf("resumed frequent set diverges from the uninterrupted session")
	}
}

// TestStreamResumeRejectsMismatch: a snapshot resumed under a different
// configuration or against a shorter log is refused.
func TestStreamResumeRejectsMismatch(t *testing.T) {
	c, data := streamTestData(t, 5, 8)
	dir := t.TempDir()
	log, err := seqdb.CreateAppend(filepath.Join(dir, "log.lsa"))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	ckpt := filepath.Join(dir, "s.lckp")
	st, err := NewStream(log, c, streamTestConfig(ckpt))
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range data {
		if _, err := log.Append(seq); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Advance(context.Background()); err != nil {
		t.Fatal(err)
	}

	bad := streamTestConfig(ckpt)
	bad.MinMatch = 0.5
	if _, err := ResumeStream(ckpt, log, c, bad); err == nil {
		t.Fatal("resume accepted a different MinMatch")
	}
	short, err := seqdb.CreateAppend(filepath.Join(dir, "short.lsa"))
	if err != nil {
		t.Fatal(err)
	}
	defer short.Close()
	if _, err := ResumeStream(ckpt, short, c, streamTestConfig(ckpt)); err == nil {
		t.Fatal("resume accepted a log shorter than the snapshot cursor")
	}
}
