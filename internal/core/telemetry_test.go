package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestMineTelemetryAgreesWithResult(t *testing.T) {
	db, c := noisyProteinDB(t, 11, 80, 0.1)
	m := &telemetry.Metrics{}
	res, err := Mine(db, c, Config{
		MinMatch:   0.15,
		SampleSize: 30,
		MaxLen:     3,
		MaxGap:     0,
		MemBudget:  10,
		Finalizer:  BorderCollapsing,
		Rng:        rand.New(rand.NewSource(12)),
		Metrics:    m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != m {
		t.Fatal("Result.Telemetry does not carry the configured collector")
	}
	snap := m.Snapshot()

	// The counters the paper cares about must agree with Result exactly.
	if snap.TotalScans != int64(res.Scans) {
		t.Errorf("telemetry TotalScans=%d, Result.Scans=%d", snap.TotalScans, res.Scans)
	}
	if snap.SampleSize != int64(res.SampleSize) {
		t.Errorf("telemetry SampleSize=%d, Result.SampleSize=%d", snap.SampleSize, res.SampleSize)
	}
	if snap.Phases[0].Scans != 1 {
		t.Errorf("phase 1 scans=%d, want 1", snap.Phases[0].Scans)
	}
	if snap.Phases[0].Sequences != int64(db.Len()) {
		t.Errorf("phase 1 sequences=%d, want %d", snap.Phases[0].Sequences, db.Len())
	}
	if snap.Phases[1].Scans != 0 {
		t.Errorf("phase 2 scans=%d, want 0 (sample mining is in-memory)", snap.Phases[1].Scans)
	}
	if res.Phase3 != nil {
		if snap.Phases[2].Scans != int64(res.Phase3.Scans) {
			t.Errorf("phase 3 scans=%d, Result=%d", snap.Phases[2].Scans, res.Phase3.Scans)
		}
		if snap.Probed != int64(res.Phase3.Probed) {
			t.Errorf("telemetry Probed=%d, Result=%d", snap.Probed, res.Phase3.Probed)
		}
		if snap.ProbeScans != int64(res.Phase3.Scans) {
			t.Errorf("ProbeScans=%d, Result=%d", snap.ProbeScans, res.Phase3.Scans)
		}
	}
	if got, want := len(snap.Phases), 3; got != want {
		t.Fatalf("phases=%d", got)
	}
	if snap.Levels != int64(len(res.Phase2.CandidatesPerLevel)) {
		t.Errorf("telemetry Levels=%d, CandidatesPerLevel has %d entries",
			snap.Levels, len(res.Phase2.CandidatesPerLevel))
	}
	var cands, peak int64
	for _, n := range res.Phase2.CandidatesPerLevel {
		cands += int64(n)
		if int64(n) > peak {
			peak = int64(n)
		}
	}
	if snap.Candidates != cands || snap.PeakCandidates != peak {
		t.Errorf("telemetry candidates=%d/peak=%d, Result=%d/%d",
			snap.Candidates, snap.PeakCandidates, cands, peak)
	}
	if total := snap.Frequent + snap.Ambiguous + snap.Infrequent; total != cands {
		t.Errorf("label tallies sum to %d, %d candidates classified", total, cands)
	}
}

func TestMineSweepTelemetry(t *testing.T) {
	db, c := noisyProteinDB(t, 21, 120, 0.05)
	m := &telemetry.Metrics{}
	res, err := MineSweep(db, c, Config{
		MinMatch:   0.3,
		Delta:      1e-2,
		SampleSize: 100,
		MaxLen:     3,
		MaxGap:     0,
		MemBudget:  20,
		Rng:        rand.New(rand.NewSource(22)),
		Metrics:    m,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.TotalScans != int64(res.Scans) {
		t.Errorf("telemetry TotalScans=%d, Result.Scans=%d", snap.TotalScans, res.Scans)
	}
	if snap.Levels != int64(len(res.Phase2.CandidatesPerLevel)) {
		t.Errorf("Levels=%d, want %d", snap.Levels, len(res.Phase2.CandidatesPerLevel))
	}
	if snap.SampleSize != int64(res.SampleSize) {
		t.Errorf("SampleSize=%d, want %d", snap.SampleSize, res.SampleSize)
	}
}

func TestReportEmbedsTelemetry(t *testing.T) {
	db, c := noisyProteinDB(t, 11, 80, 0.1)
	m := &telemetry.Metrics{}
	res, err := Mine(db, c, Config{
		MinMatch:   0.15,
		SampleSize: 30,
		MaxLen:     3,
		MemBudget:  10,
		Rng:        rand.New(rand.NewSource(12)),
		Metrics:    m,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReport(res, 0.15, db.Len(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Telemetry == nil {
		t.Fatal("report dropped the telemetry snapshot")
	}
	if rep.Telemetry.TotalScans != int64(res.Scans) {
		t.Errorf("report telemetry scans=%d, want %d", rep.Telemetry.TotalScans, res.Scans)
	}
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"telemetry"`) {
		t.Error("JSON report missing telemetry object")
	}

	// Without a collector the report omits the object entirely.
	res2, err := Mine(db, c, Config{
		MinMatch:   0.15,
		SampleSize: 30,
		MaxLen:     3,
		MemBudget:  10,
		Rng:        rand.New(rand.NewSource(12)),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := NewReport(res2, 0.15, db.Len(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Telemetry != nil {
		t.Error("report invented a telemetry snapshot for an uninstrumented run")
	}
	var sb2 strings.Builder
	if err := rep2.WriteJSON(&sb2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb2.String(), `"telemetry"`) {
		t.Error("JSON report contains telemetry despite nil collector")
	}
}
