// Package core orchestrates the paper's three-phase probabilistic mining
// algorithm (§4):
//
//  1. one scan of the sequence database computing every symbol's exact match
//     and drawing a random sample (Algorithm 4.1),
//  2. in-memory level-wise mining of the sample, classifying patterns as
//     frequent / ambiguous / infrequent with the Chernoff bound and the
//     restricted spread (Algorithm 4.2, Claims 4.1/4.2),
//  3. finalizing the border of frequent patterns by probing the ambiguous
//     region against the full database — by border collapsing (Algorithm
//     4.3, the paper's contribution) or level-wise (the Toivonen-style
//     baseline), under a memory budget of counters per scan.
//
// The database is only ever accessed through seqdb.Scanner, so the number of
// full passes — the paper's headline cost metric — is directly observable.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/border"
	"repro/internal/compat"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/support"
	"repro/internal/telemetry"
)

// Finalizer selects the Phase 3 strategy.
type Finalizer int

const (
	// BorderCollapsing probes halfway layers first (Algorithm 4.3).
	BorderCollapsing Finalizer = iota
	// LevelWise probes the ambiguous region bottom-up (sampling-based
	// level-wise search, the §5.6 baseline).
	LevelWise
	// None skips Phase 3: the result is Phase 2's frequent set, with the
	// ambiguous patterns left unresolved (useful for sample-only studies).
	None
	// BorderCollapsingImplicit is the paper-verbatim Algorithm 4.3: probe
	// layers are generated between the Phase 2 borders with Algorithm 4.4,
	// and the ambiguous region is never materialized. Its lattice is the
	// paper's full sub-pattern closure — starring any subset of positions —
	// so when MaxGap < MaxLen-2 it legitimately resolves gapped patterns
	// the truncated candidate space never enumerated (all genuinely
	// frequent by Apriori). With MaxGap >= MaxLen-2 the spaces coincide and
	// the Border equals BorderCollapsing's exactly; Frequent is always the
	// downward closure of Border.
	BorderCollapsingImplicit
)

// String names the finalizer for experiment output.
func (f Finalizer) String() string {
	switch f {
	case BorderCollapsing:
		return "border-collapsing"
	case LevelWise:
		return "level-wise"
	case None:
		return "none"
	case BorderCollapsingImplicit:
		return "border-collapsing-implicit"
	default:
		return fmt.Sprintf("Finalizer(%d)", int(f))
	}
}

// Phase 2 engine names, recorded in checkpoints so Resume can dispatch to
// the pipeline variant that wrote the snapshot.
const (
	engineCandidates = "candidates"
	engineSweep      = "sweep"
	engineGrowth     = "growth"
)

// Phase2Engine selects the Phase 2 sample-mining strategy.
type Phase2Engine int

const (
	// Phase2Levelwise (the default) is the paper's breadth-first
	// generate-and-test miner: each lattice level's candidates are generated
	// from the previous level's survivors and valued in one batch
	// (miner.Engine with the kernel selected by Phase2Kernel).
	Phase2Levelwise Phase2Engine = iota
	// Phase2Growth is the depth-first pattern-growth engine: patterns grow
	// by prefix extension over projected sample databases, with optimistic
	// bound pruning (internal/growth). It produces the same labels, borders
	// and level counts as Phase2Levelwise — bit-identical for every worker
	// count — while skipping the per-level candidate materialization;
	// MaxCandidatesPerLevel therefore does not apply (the DFS holds one
	// path, not a level, in memory) and is ignored. Phase2Kernel still
	// selects the valuation discipline: KernelIncremental walks projections,
	// KernelNaive recompiles every candidate from scratch.
	Phase2Growth
)

// String names the engine for experiment output and checkpoints.
func (e Phase2Engine) String() string {
	switch e {
	case Phase2Levelwise:
		return "levelwise"
	case Phase2Growth:
		return "growth"
	default:
		return fmt.Sprintf("Phase2Engine(%d)", int(e))
	}
}

// Phase2Kernel selects how the candidate-driven Phase 2 scores each lattice
// level against the in-memory sample.
type Phase2Kernel int

const (
	// KernelIncremental (the default) extends the cached per-sequence window
	// prefix products of the previous level — one row lookup and one multiply
	// per surviving window per candidate — with the sample sharded across
	// Config.Workers goroutines. See match.Incremental; per-sequence values
	// are bit-identical to the naive kernel's, sample averages agree within
	// float64 sum reassociation.
	KernelIncremental Phase2Kernel = iota
	// KernelNaive recompiles every candidate and rescans the whole sample at
	// each level (match.CompileSet) — the pre-kernel behavior, kept for
	// verification and comparison benchmarks.
	KernelNaive
)

// String names the kernel for experiment output.
func (k Phase2Kernel) String() string {
	switch k {
	case KernelIncremental:
		return "incremental"
	case KernelNaive:
		return "naive"
	default:
		return fmt.Sprintf("Phase2Kernel(%d)", int(k))
	}
}

// PhaseTimeouts assigns each pipeline phase a wall-clock budget; zero means
// unlimited. Phase 1 and Phase 2 budgets are hard deadlines — expiry fails
// the run with a *PhaseError wrapping context.DeadlineExceeded (with
// checkpointing enabled, completed work is preserved first). The Phase 3
// budget degrades gracefully instead: the run returns the Phase 2 frequent
// set plus everything Phase 3 confirmed before the deadline, with the
// still-ambiguous patterns annotated in Result.Unresolved and
// Result.Degraded set.
type PhaseTimeouts struct {
	Phase1, Phase2, Phase3 time.Duration
}

func (t PhaseTimeouts) validate() error {
	if t.Phase1 < 0 || t.Phase2 < 0 || t.Phase3 < 0 {
		return fmt.Errorf("core: negative phase timeout")
	}
	return nil
}

// Config parameterizes a mining run. Zero values select sensible defaults
// where noted.
type Config struct {
	// MinMatch is the significance threshold (required, in (0,1]).
	MinMatch float64
	// Delta is the Chernoff failure probability; confidence is 1-Delta.
	// Default 1e-4 (the paper's 99.99%).
	Delta float64
	// SampleSize is the number of sequences sampled in Phase 1 (clamped to
	// the database size). Default 1000.
	SampleSize int
	// MaxLen bounds total pattern length (required, >= 1).
	MaxLen int
	// MaxGap bounds runs of eternal symbols inside a pattern. Default 0.
	MaxGap int
	// MaxCandidatesPerLevel caps Phase 2's per-level candidate count
	// (0 = unlimited).
	MaxCandidatesPerLevel int
	// MemBudget is the number of pattern counters Phase 3 may hold per scan.
	// Default 10000.
	MemBudget int
	// Finalizer selects the Phase 3 strategy. Default BorderCollapsing.
	Finalizer Finalizer
	// Workers > 1 spreads each Phase 3 probe scan's counting work across
	// that many goroutines (-1 = GOMAXPROCS); the scan itself remains one
	// sequential pass. The same count shards Phase 2's incremental kernel
	// across the sample. Results are identical for every worker count.
	// Default 0 (sequential).
	Workers int
	// Phase3Shards > 1 scatters each Phase 3 probe scan over that many
	// deterministic database shards, matched concurrently with the
	// structure-of-arrays kernel and gathered in ascending shard order (one
	// logical pass; see miner.ShardedMatchDBValuer). When the database is
	// already a seqdb.Sharded (a native multi-file shard set) its own shard
	// count is used and this value is ignored. Workers, when > 0, caps the
	// concurrently-scanning shards. Values are bit-identical for every
	// shard/worker count. 0 or 1 keeps the single-pass probe path. Like
	// Workers, a tuning knob excluded from the checkpoint config hash.
	Phase3Shards int
	// ProbeValuer, when non-nil, overrides the Phase 3 probe kernel entirely:
	// it receives the Phase 3 context, the database (wrapped for telemetry
	// when Metrics is set), and the compatibility source, and must return a
	// Valuer whose values are bit-identical to the built-in kernels' for the
	// same database — it is an execution-layout knob (e.g. a distributed
	// scatter via miner.RemoteShardValuer), not a semantic one, and like
	// Workers it is excluded from the checkpoint config hash, so a local run
	// can resume a remote one and vice versa.
	ProbeValuer func(ctx context.Context, db seqdb.Scanner, c compat.Source) miner.Valuer
	// Phase2Kernel selects the sample-scoring kernel for the
	// candidate-driven Phase 2. Default KernelIncremental. A tuning knob:
	// classifications agree between kernels, so it is excluded from the
	// checkpoint config hash.
	Phase2Kernel Phase2Kernel
	// Phase2Engine selects the Phase 2 mining strategy: Phase2Levelwise
	// (default, the paper's breadth-first miner) or Phase2Growth (the
	// depth-first pattern-growth engine — same labels and borders,
	// bit-identical across worker counts, no per-level candidate
	// materialization). Recorded in the checkpoint config hash: the engines
	// agree on results but not on intermediate snapshots, so a snapshot is
	// resumed by the engine that wrote it.
	Phase2Engine Phase2Engine
	// Phase2CacheBudget bounds the incremental kernel's prefix cache in
	// bytes (0 = match.DefaultCacheBudget, 256 MiB; negative = unlimited).
	// Exceeding it falls back to compiled-matcher recomputation for the
	// overflowing patterns — slower, never wrong. The growth engine applies
	// the same budget to the projection bytes held along a DFS path.
	Phase2CacheBudget int64
	// Rng drives the sampling; required for reproducibility.
	Rng *rand.Rand
	// Metrics, when non-nil, collects pipeline telemetry: per-phase scan
	// traffic and wall time, sample size, lattice and probe counters. The
	// database is transparently wrapped to attribute scan traffic to the
	// phase that caused it. Nil (the default) disables collection entirely —
	// the instrumented paths cost one nil check each.
	Metrics *telemetry.Metrics
	// Checkpoint, when non-nil, persists pipeline progress to
	// Checkpoint.Path as a crash-atomic snapshot (after Phase 1, after
	// Phase 2, and — by default — after every Phase 3 probe scan), and a
	// final snapshot is written before a failed or cancelled run returns
	// its *PhaseError. Resume the run with core.Resume. Nil disables
	// checkpointing.
	Checkpoint *CheckpointPolicy
	// PhaseTimeouts bounds each phase's wall time (zero = unlimited). The
	// Phase 3 budget degrades gracefully rather than failing; see
	// PhaseTimeouts.
	PhaseTimeouts PhaseTimeouts
}

// probeValuer picks the Phase 3 counting kernel — sequential, parallel
// (worker-partitioned patterns over one pass), or scatter-gather over
// database shards — all cancellable through ctx and retry-safe when db
// re-runs failed passes. The sharded path records its own telemetry (it
// scans shards directly, not through the telemetry wrapper), so it receives
// the unwrapped scanner plus the Metrics.
func (c *Config) probeValuer(ctx context.Context, db seqdb.Scanner, src compat.Source) miner.Valuer {
	if c.ProbeValuer != nil {
		return c.ProbeValuer(ctx, db, src)
	}
	if sh := c.shardedDB(db); sh != nil {
		return miner.ShardedMatchDBValuerContext(ctx, sh, src, c.Workers, c.Metrics)
	}
	if c.Workers == 0 || c.Workers == 1 {
		return miner.MatchDBValuerContext(ctx, db, src)
	}
	return miner.ParallelMatchDBValuerContext(ctx, db, src, c.Workers)
}

// shardedDB resolves the database the scatter-gather probe path scans: the
// scanner's own shard set when the unwrapped database is a *seqdb.Sharded
// with more than one shard, a Phase3Shards-way sharded view of it otherwise,
// or nil when the single-pass path should be kept.
func (c *Config) shardedDB(db seqdb.Scanner) *seqdb.Sharded {
	raw := db
	for {
		u, ok := raw.(interface{ Unwrap() seqdb.Scanner })
		if !ok {
			break
		}
		raw = u.Unwrap()
	}
	if sh, ok := raw.(*seqdb.Sharded); ok && sh.NumShards() > 1 {
		return sh
	}
	if c.Phase3Shards > 1 {
		return seqdb.ShardScanner(raw, c.Phase3Shards)
	}
	return nil
}

func (c *Config) setDefaults() {
	if c.Delta == 0 {
		c.Delta = 1e-4
	}
	if c.SampleSize == 0 {
		c.SampleSize = 1000
	}
	if c.MemBudget == 0 {
		c.MemBudget = 10000
	}
}

func (c *Config) validate() error {
	if c.MinMatch <= 0 || c.MinMatch > 1 {
		return fmt.Errorf("core: MinMatch %v outside (0,1]", c.MinMatch)
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		return fmt.Errorf("core: Delta %v outside (0,1)", c.Delta)
	}
	if c.SampleSize < 1 {
		return fmt.Errorf("core: SampleSize %d < 1", c.SampleSize)
	}
	if c.MaxLen < 1 {
		return fmt.Errorf("core: MaxLen %d < 1", c.MaxLen)
	}
	if c.MaxGap < 0 {
		return fmt.Errorf("core: negative MaxGap")
	}
	if c.MemBudget < 1 {
		return fmt.Errorf("core: MemBudget %d < 1", c.MemBudget)
	}
	if c.Rng == nil {
		return fmt.Errorf("core: Rng is required")
	}
	if c.Finalizer < BorderCollapsing || c.Finalizer > BorderCollapsingImplicit {
		return fmt.Errorf("core: unknown finalizer %d", c.Finalizer)
	}
	if c.Phase2Kernel < KernelIncremental || c.Phase2Kernel > KernelNaive {
		return fmt.Errorf("core: unknown Phase 2 kernel %d", c.Phase2Kernel)
	}
	if c.Phase2Engine < Phase2Levelwise || c.Phase2Engine > Phase2Growth {
		return fmt.Errorf("core: unknown Phase 2 engine %d", c.Phase2Engine)
	}
	if c.Phase3Shards < 0 {
		return fmt.Errorf("core: negative Phase3Shards")
	}
	if err := c.PhaseTimeouts.validate(); err != nil {
		return err
	}
	if c.Checkpoint != nil && c.Checkpoint.Path == "" {
		return fmt.Errorf("core: Checkpoint.Path is required when checkpointing is enabled")
	}
	return nil
}

// PhaseError attributes a mining failure — an I/O error, corruption, or a
// context cancellation — to the pipeline phase that raised it. It unwraps
// to the underlying cause, so errors.Is(err, context.Canceled) and
// errors.As for seqdb.CorruptError keep working through it.
type PhaseError struct {
	// Phase is the pipeline phase that failed (1, 2, or 3).
	Phase int
	// Err is the underlying failure.
	Err error
}

func (e *PhaseError) Error() string { return fmt.Sprintf("core: phase %d: %v", e.Phase, e.Err) }

func (e *PhaseError) Unwrap() error { return e.Err }

// Result reports a complete mining run.
type Result struct {
	// Frequent is the final frequent set and Border its border (FQT).
	Frequent *pattern.Set
	Border   *pattern.Set
	// SymbolMatch holds Phase 1's exact per-symbol matches.
	SymbolMatch []float64
	// SampleSize is the number of sequences actually sampled.
	SampleSize int
	// Phase2 is the sample-mining result (labels, borders, level counts).
	Phase2 *miner.Result
	// Phase3 is the finalization result (nil when Finalizer is None or no
	// ambiguous patterns remained).
	Phase3 *border.Result
	// Scans is the total number of full database scans (Phase 1's single
	// scan plus Phase 3's probe scans).
	Scans int
	// Phase timings, for the Figure 14 CPU-time comparison.
	Phase1Time, Phase2Time, Phase3Time time.Duration
	// PhaseReached is the highest phase that started (1..3) — on a failed
	// or cancelled run, the phase the run died in.
	PhaseReached int
	// ScanStats reports the scanner's pass/retry/error counters when db
	// implements seqdb.StatsReporter (e.g. a seqdb.RetryScanner); zero
	// otherwise.
	ScanStats seqdb.ScanStats
	// Telemetry aliases Config.Metrics for the run (nil when collection was
	// disabled); render it with Telemetry.Snapshot().
	Telemetry *telemetry.Metrics
	// Degraded reports that Phase 3 could not finish — its deadline budget
	// expired, or a distributed probe lost a shard — and the result was
	// assembled from the work completed: Frequent holds the Phase 2
	// frequent set plus every pattern Phase 3 confirmed in time, and
	// Unresolved annotates the patterns left ambiguous.
	Degraded bool
	// DegradeReason identifies what degraded the run (DegradePhase3Timeout
	// or DegradeShardLost; empty for complete runs).
	DegradeReason string
	// Unresolved lists the still-ambiguous patterns of a degraded run with
	// their sample estimates and Chernoff intervals (empty otherwise).
	Unresolved []Unresolved
	// ResumedFrom is the highest phase the resumed-from checkpoint had
	// recorded (0 for a fresh run).
	ResumedFrom int
	// ScansSkipped is the number of full database scans this run avoided by
	// resuming from a checkpoint (Phase 1's scan plus recorded probe
	// scans). Scans reports the run's logical total, so a resumed run's
	// Scans matches the uninterrupted run's; the scans actually performed
	// by this process are Scans - ScansSkipped.
	ScansSkipped int
}

// Degradation reasons (machine-readable, kebab-case).
const (
	// DegradePhase3Timeout: the Phase 3 wall-clock budget expired.
	DegradePhase3Timeout = "phase3-timeout"
	// DegradeShardLost: a distributed probe exhausted every node for some
	// shard (shardrpc.ErrShardLost); the run is resumable from its final
	// checkpoint once the shard set is reachable again.
	DegradeShardLost = "shard-lost"
)

// Unresolved is an ambiguous pattern a degraded run could not finalize
// before its Phase 3 deadline. The pattern's true match lies within
// [SampleMatch-Epsilon, SampleMatch+Epsilon] with probability 1-Delta
// (Claim 4.1 with the restricted spread) — the information a Finalizer ==
// None run would report.
type Unresolved struct {
	Pattern pattern.Pattern
	// SampleMatch is Phase 2's sample estimate of the pattern's match.
	SampleMatch float64
	// Epsilon is the Chernoff half-width at the pattern's restricted spread.
	Epsilon float64
}

// captureScanStats copies the scanner's retry counters into the result when
// the scanner tracks them.
func (r *Result) captureScanStats(db seqdb.Scanner) {
	if sr, ok := db.(seqdb.StatsReporter); ok {
		r.ScanStats = sr.ScanStats()
	}
}

// Mine runs the full three-phase algorithm over db with the compatibility
// source c.
func Mine(db seqdb.Scanner, c compat.Source, cfg Config) (*Result, error) {
	return MineContext(context.Background(), db, c, cfg)
}

// MineContext is Mine with cooperative cancellation: ctx is checked between
// sequences in Phase 1's scan, between lattice levels in Phase 2, and
// between (and within) probe scans in Phase 3, so a cancelled run aborts
// within one sequence block. Any phase failure — cancellation, I/O error,
// corruption — is returned as a *PhaseError naming the phase, wrapping the
// cause (errors.Is(err, context.Canceled) holds for cancelled runs).
//
// On a phase failure the partial Result is returned alongside the error: it
// carries PhaseReached, the phases' outputs completed so far, and the
// scanner's ScanStats, so callers (e.g. a SIGINT handler) can report how far
// the run got.
//
// When db re-runs failed passes (a seqdb.RetryScanner over a flaky store),
// every scan in the pipeline is retry-safe: per-pass counting state is
// rebuilt per attempt, and only completed passes count toward Scans.
//
// With cfg.Checkpoint set, progress is persisted to disk as it is made and a
// killed run can be continued with Resume; cfg.PhaseTimeouts bounds each
// phase's wall time, with a Phase 3 expiry degrading gracefully (see
// PhaseTimeouts and Result.Degraded).
func MineContext(ctx context.Context, db seqdb.Scanner, c compat.Source, cfg Config) (*Result, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	engine := engineCandidates
	if cfg.Phase2Engine == Phase2Growth {
		engine = engineGrowth
	}
	return mineContext(ctx, db, c, cfg, engine, nil)
}

// implicitLower assembles CollapseImplicit's lower border: the FQT plus the
// frequent 1-patterns, which the implicit layer generation needs as
// generators beneath every region member.
func implicitLower(p2 *miner.Result) *pattern.Set {
	lower := p2.FQT.Clone()
	p2.Frequent.ForEach(func(p pattern.Pattern) bool {
		if p.K() == 1 {
			lower.Add(p)
		}
		return true
	})
	return lower
}

// Phase1 performs Algorithm 4.1: one scan computing every symbol's match and
// drawing a sequential random sample of up to n sequences.
func Phase1(db seqdb.Scanner, c compat.Source, n int, rng *rand.Rand) ([]float64, [][]pattern.Symbol, error) {
	return Phase1Context(nil, db, c, n, rng)
}

// Phase1Context is Phase1 with cancellation checked between sequences. The
// accumulator and sampler are rebuilt per scan attempt, so a retrying
// scanner can re-run a failed pass without double-counting; a retried pass
// redraws its sample with fresh rng draws (statistically equivalent).
func Phase1Context(ctx context.Context, db seqdb.Scanner, c compat.Source, n int, rng *rand.Rand) ([]float64, [][]pattern.Symbol, error) {
	symbolMatch, sample, _, err := phase1Run(ctx, db, c, n, rng)
	return symbolMatch, sample, err
}

// Exhaustive mines the exact frequent set of db under the match measure with
// one scan per lattice level — the deterministic reference the experiments
// compare against (and the generalization of prior support-model algorithms
// the paper discusses in §4's opening).
func Exhaustive(db seqdb.Scanner, c compat.Source, minMatch float64, opts miner.Options) (*miner.Result, error) {
	return miner.Exhaustive(c.Size(), miner.MatchDBValuer(db, c), minMatch, opts)
}

// ExhaustiveSupport mines the exact frequent set under the classic support
// measure (the §5.1 comparison model).
func ExhaustiveSupport(db seqdb.Scanner, minSupport float64, m int, opts miner.Options) (*miner.Result, error) {
	return miner.Exhaustive(m, miner.DBValuer(db, support.Support{}), minSupport, opts)
}
