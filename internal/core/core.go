// Package core orchestrates the paper's three-phase probabilistic mining
// algorithm (§4):
//
//  1. one scan of the sequence database computing every symbol's exact match
//     and drawing a random sample (Algorithm 4.1),
//  2. in-memory level-wise mining of the sample, classifying patterns as
//     frequent / ambiguous / infrequent with the Chernoff bound and the
//     restricted spread (Algorithm 4.2, Claims 4.1/4.2),
//  3. finalizing the border of frequent patterns by probing the ambiguous
//     region against the full database — by border collapsing (Algorithm
//     4.3, the paper's contribution) or level-wise (the Toivonen-style
//     baseline), under a memory budget of counters per scan.
//
// The database is only ever accessed through seqdb.Scanner, so the number of
// full passes — the paper's headline cost metric — is directly observable.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/border"
	"repro/internal/compat"
	"repro/internal/levelwise"
	"repro/internal/match"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/sampling"
	"repro/internal/seqdb"
	"repro/internal/support"
	"repro/internal/telemetry"
)

// Finalizer selects the Phase 3 strategy.
type Finalizer int

const (
	// BorderCollapsing probes halfway layers first (Algorithm 4.3).
	BorderCollapsing Finalizer = iota
	// LevelWise probes the ambiguous region bottom-up (sampling-based
	// level-wise search, the §5.6 baseline).
	LevelWise
	// None skips Phase 3: the result is Phase 2's frequent set, with the
	// ambiguous patterns left unresolved (useful for sample-only studies).
	None
	// BorderCollapsingImplicit is the paper-verbatim Algorithm 4.3: probe
	// layers are generated between the Phase 2 borders with Algorithm 4.4,
	// and the ambiguous region is never materialized. Its lattice is the
	// paper's full sub-pattern closure — starring any subset of positions —
	// so when MaxGap < MaxLen-2 it legitimately resolves gapped patterns
	// the truncated candidate space never enumerated (all genuinely
	// frequent by Apriori). With MaxGap >= MaxLen-2 the spaces coincide and
	// the Border equals BorderCollapsing's exactly; Frequent is always the
	// downward closure of Border.
	BorderCollapsingImplicit
)

// String names the finalizer for experiment output.
func (f Finalizer) String() string {
	switch f {
	case BorderCollapsing:
		return "border-collapsing"
	case LevelWise:
		return "level-wise"
	case None:
		return "none"
	case BorderCollapsingImplicit:
		return "border-collapsing-implicit"
	default:
		return fmt.Sprintf("Finalizer(%d)", int(f))
	}
}

// Config parameterizes a mining run. Zero values select sensible defaults
// where noted.
type Config struct {
	// MinMatch is the significance threshold (required, in (0,1]).
	MinMatch float64
	// Delta is the Chernoff failure probability; confidence is 1-Delta.
	// Default 1e-4 (the paper's 99.99%).
	Delta float64
	// SampleSize is the number of sequences sampled in Phase 1 (clamped to
	// the database size). Default 1000.
	SampleSize int
	// MaxLen bounds total pattern length (required, >= 1).
	MaxLen int
	// MaxGap bounds runs of eternal symbols inside a pattern. Default 0.
	MaxGap int
	// MaxCandidatesPerLevel caps Phase 2's per-level candidate count
	// (0 = unlimited).
	MaxCandidatesPerLevel int
	// MemBudget is the number of pattern counters Phase 3 may hold per scan.
	// Default 10000.
	MemBudget int
	// Finalizer selects the Phase 3 strategy. Default BorderCollapsing.
	Finalizer Finalizer
	// Workers > 1 spreads each Phase 3 probe scan's counting work across
	// that many goroutines (-1 = GOMAXPROCS); the scan itself remains one
	// sequential pass. Default 0 (sequential).
	Workers int
	// Rng drives the sampling; required for reproducibility.
	Rng *rand.Rand
	// Metrics, when non-nil, collects pipeline telemetry: per-phase scan
	// traffic and wall time, sample size, lattice and probe counters. The
	// database is transparently wrapped to attribute scan traffic to the
	// phase that caused it. Nil (the default) disables collection entirely —
	// the instrumented paths cost one nil check each.
	Metrics *telemetry.Metrics
}

// probeValuer picks the sequential or parallel counting kernel, both
// cancellable through ctx and retry-safe when db re-runs failed passes.
func (c *Config) probeValuer(ctx context.Context, db seqdb.Scanner, src compat.Source) miner.Valuer {
	if c.Workers == 0 || c.Workers == 1 {
		return miner.MatchDBValuerContext(ctx, db, src)
	}
	return miner.ParallelMatchDBValuerContext(ctx, db, src, c.Workers)
}

func (c *Config) setDefaults() {
	if c.Delta == 0 {
		c.Delta = 1e-4
	}
	if c.SampleSize == 0 {
		c.SampleSize = 1000
	}
	if c.MemBudget == 0 {
		c.MemBudget = 10000
	}
}

func (c *Config) validate() error {
	if c.MinMatch <= 0 || c.MinMatch > 1 {
		return fmt.Errorf("core: MinMatch %v outside (0,1]", c.MinMatch)
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		return fmt.Errorf("core: Delta %v outside (0,1)", c.Delta)
	}
	if c.SampleSize < 1 {
		return fmt.Errorf("core: SampleSize %d < 1", c.SampleSize)
	}
	if c.MaxLen < 1 {
		return fmt.Errorf("core: MaxLen %d < 1", c.MaxLen)
	}
	if c.MaxGap < 0 {
		return fmt.Errorf("core: negative MaxGap")
	}
	if c.MemBudget < 1 {
		return fmt.Errorf("core: MemBudget %d < 1", c.MemBudget)
	}
	if c.Rng == nil {
		return fmt.Errorf("core: Rng is required")
	}
	if c.Finalizer < BorderCollapsing || c.Finalizer > BorderCollapsingImplicit {
		return fmt.Errorf("core: unknown finalizer %d", c.Finalizer)
	}
	return nil
}

// PhaseError attributes a mining failure — an I/O error, corruption, or a
// context cancellation — to the pipeline phase that raised it. It unwraps
// to the underlying cause, so errors.Is(err, context.Canceled) and
// errors.As for seqdb.CorruptError keep working through it.
type PhaseError struct {
	// Phase is the pipeline phase that failed (1, 2, or 3).
	Phase int
	// Err is the underlying failure.
	Err error
}

func (e *PhaseError) Error() string { return fmt.Sprintf("core: phase %d: %v", e.Phase, e.Err) }

func (e *PhaseError) Unwrap() error { return e.Err }

// Result reports a complete mining run.
type Result struct {
	// Frequent is the final frequent set and Border its border (FQT).
	Frequent *pattern.Set
	Border   *pattern.Set
	// SymbolMatch holds Phase 1's exact per-symbol matches.
	SymbolMatch []float64
	// SampleSize is the number of sequences actually sampled.
	SampleSize int
	// Phase2 is the sample-mining result (labels, borders, level counts).
	Phase2 *miner.Result
	// Phase3 is the finalization result (nil when Finalizer is None or no
	// ambiguous patterns remained).
	Phase3 *border.Result
	// Scans is the total number of full database scans (Phase 1's single
	// scan plus Phase 3's probe scans).
	Scans int
	// Phase timings, for the Figure 14 CPU-time comparison.
	Phase1Time, Phase2Time, Phase3Time time.Duration
	// PhaseReached is the highest phase that started (1..3) — on a failed
	// or cancelled run, the phase the run died in.
	PhaseReached int
	// ScanStats reports the scanner's pass/retry/error counters when db
	// implements seqdb.StatsReporter (e.g. a seqdb.RetryScanner); zero
	// otherwise.
	ScanStats seqdb.ScanStats
	// Telemetry aliases Config.Metrics for the run (nil when collection was
	// disabled); render it with Telemetry.Snapshot().
	Telemetry *telemetry.Metrics
}

// captureScanStats copies the scanner's retry counters into the result when
// the scanner tracks them.
func (r *Result) captureScanStats(db seqdb.Scanner) {
	if sr, ok := db.(seqdb.StatsReporter); ok {
		r.ScanStats = sr.ScanStats()
	}
}

// Mine runs the full three-phase algorithm over db with the compatibility
// source c.
func Mine(db seqdb.Scanner, c compat.Source, cfg Config) (*Result, error) {
	return MineContext(context.Background(), db, c, cfg)
}

// MineContext is Mine with cooperative cancellation: ctx is checked between
// sequences in Phase 1's scan, between lattice levels in Phase 2, and
// between (and within) probe scans in Phase 3, so a cancelled run aborts
// within one sequence block. Any phase failure — cancellation, I/O error,
// corruption — is returned as a *PhaseError naming the phase, wrapping the
// cause (errors.Is(err, context.Canceled) holds for cancelled runs).
//
// On a phase failure the partial Result is returned alongside the error: it
// carries PhaseReached, the phases' outputs completed so far, and the
// scanner's ScanStats, so callers (e.g. a SIGINT handler) can report how far
// the run got.
//
// When db re-runs failed passes (a seqdb.RetryScanner over a flaky store),
// every scan in the pipeline is retry-safe: per-pass counting state is
// rebuilt per attempt, and only completed passes count toward Scans.
func MineContext(ctx context.Context, db seqdb.Scanner, c compat.Source, cfg Config) (*Result, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if db.Len() == 0 {
		return nil, fmt.Errorf("core: empty database")
	}
	if cfg.Metrics != nil {
		// The wrapper attributes every delivered sequence and completed pass
		// to whatever phase is current when it happens.
		db = telemetry.NewScanner(db, cfg.Metrics)
		defer cfg.Metrics.SetPhase(0)
	}
	res := &Result{Telemetry: cfg.Metrics}
	fail := func(phase int, err error) (*Result, error) {
		res.PhaseReached = phase
		res.captureScanStats(db)
		return res, &PhaseError{Phase: phase, Err: err}
	}

	// Phase 1: symbol matches + sample, one scan.
	res.PhaseReached = 1
	cfg.Metrics.SetPhase(1)
	start := time.Now()
	symbolMatch, sample, err := Phase1Context(ctx, db, c, cfg.SampleSize, cfg.Rng)
	cfg.Metrics.PhaseTime(1, time.Since(start))
	if err != nil {
		return fail(1, err)
	}
	res.SymbolMatch = symbolMatch
	res.SampleSize = len(sample)
	cfg.Metrics.SampleDrawn(len(sample))
	res.Scans = 1
	res.Phase1Time = time.Since(start)

	// Phase 2: sample mining with Chernoff classification.
	res.PhaseReached = 2
	cfg.Metrics.SetPhase(2)
	start = time.Now()
	opts := miner.Options{
		MaxLen:                cfg.MaxLen,
		MaxGap:                cfg.MaxGap,
		MaxCandidatesPerLevel: cfg.MaxCandidatesPerLevel,
		Metrics:               cfg.Metrics,
	}
	res.Phase2, err = miner.SampleChernoffContext(ctx, c.Size(), miner.MatchSampleValuer(c, sample),
		symbolMatch, cfg.MinMatch, cfg.Delta, len(sample), opts)
	cfg.Metrics.PhaseTime(2, time.Since(start))
	if err != nil {
		return fail(2, err)
	}
	res.Phase2Time = time.Since(start)

	// Phase 3: finalize the border against the full database.
	res.PhaseReached = 3
	cfg.Metrics.SetPhase(3)
	start = time.Now()
	if cfg.Finalizer == None || res.Phase2.Ambiguous.Len() == 0 {
		res.Frequent = res.Phase2.Frequent.Clone()
		res.Border = pattern.Border(res.Frequent)
		res.Phase3Time = time.Since(start)
		cfg.Metrics.PhaseTime(3, res.Phase3Time)
		res.captureScanStats(db)
		return res, nil
	}
	probeCfg := border.Config{
		MinMatch:  cfg.MinMatch,
		MemBudget: cfg.MemBudget,
		Probe:     cfg.probeValuer(ctx, db, c),
		Ctx:       ctx,
		Metrics:   cfg.Metrics,
	}
	switch cfg.Finalizer {
	case BorderCollapsing:
		res.Phase3, err = border.Collapse(probeCfg, res.Phase2.Frequent, res.Phase2.Ambiguous)
	case LevelWise:
		res.Phase3, err = levelwiseFinalize(probeCfg, res.Phase2.Frequent, res.Phase2.Ambiguous)
	case BorderCollapsingImplicit:
		res.Phase3, err = border.CollapseImplicit(probeCfg, implicitLower(res.Phase2), res.Phase2.Ceiling)
	}
	cfg.Metrics.PhaseTime(3, time.Since(start))
	if err != nil {
		return fail(3, err)
	}
	res.Frequent = res.Phase3.Frequent
	res.Border = res.Phase3.Border
	res.Scans += res.Phase3.Scans
	res.Phase3Time = time.Since(start)
	res.captureScanStats(db)
	return res, nil
}

// implicitLower assembles CollapseImplicit's lower border: the FQT plus the
// frequent 1-patterns, which the implicit layer generation needs as
// generators beneath every region member.
func implicitLower(p2 *miner.Result) *pattern.Set {
	lower := p2.FQT.Clone()
	p2.Frequent.ForEach(func(p pattern.Pattern) bool {
		if p.K() == 1 {
			lower.Add(p)
		}
		return true
	})
	return lower
}

// levelwiseFinalize adapts the baseline finalizer's signature for the
// orchestrators.
func levelwiseFinalize(cfg border.Config, sampleFrequent, ambiguous *pattern.Set) (*border.Result, error) {
	return levelwise.Finalize(cfg, sampleFrequent, ambiguous)
}

// Phase1 performs Algorithm 4.1: one scan computing every symbol's match and
// drawing a sequential random sample of up to n sequences.
func Phase1(db seqdb.Scanner, c compat.Source, n int, rng *rand.Rand) ([]float64, [][]pattern.Symbol, error) {
	return Phase1Context(nil, db, c, n, rng)
}

// Phase1Context is Phase1 with cancellation checked between sequences. The
// accumulator and sampler are rebuilt per scan attempt, so a retrying
// scanner can re-run a failed pass without double-counting; a retried pass
// redraws its sample with fresh rng draws (statistically equivalent).
func Phase1Context(ctx context.Context, db seqdb.Scanner, c compat.Source, n int, rng *rand.Rand) ([]float64, [][]pattern.Symbol, error) {
	var acc *match.SymbolAccumulator
	var sampler *sampling.Sequential
	var delivered int
	err := seqdb.ScanPassContext(ctx, db, func() (func(id int, seq []pattern.Symbol) error, error) {
		a := match.NewSymbolAccumulator(c)
		s, err := sampling.NewSequential(n, db.Len(), rng)
		if err != nil {
			return nil, err
		}
		acc, sampler = a, s
		delivered = 0
		return func(id int, seq []pattern.Symbol) error {
			delivered++
			a.Observe(seq)
			s.Offer(seq)
			return nil
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	// Average over the sequences the scan delivered (db.Len() may be stale
	// for some scanners; the stream is the ground truth).
	return acc.Matches(delivered), sampler.Samples(), nil
}

// Exhaustive mines the exact frequent set of db under the match measure with
// one scan per lattice level — the deterministic reference the experiments
// compare against (and the generalization of prior support-model algorithms
// the paper discusses in §4's opening).
func Exhaustive(db seqdb.Scanner, c compat.Source, minMatch float64, opts miner.Options) (*miner.Result, error) {
	return miner.Exhaustive(c.Size(), miner.MatchDBValuer(db, c), minMatch, opts)
}

// ExhaustiveSupport mines the exact frequent set under the classic support
// measure (the §5.1 comparison model).
func ExhaustiveSupport(db seqdb.Scanner, minSupport float64, m int, opts miner.Options) (*miner.Result, error) {
	return miner.Exhaustive(m, miner.DBValuer(db, support.Support{}), minSupport, opts)
}
