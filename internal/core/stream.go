// Streaming front-end: core.Stream runs the incremental pipeline
// (internal/stream) over an append-only seqdb log, persisting each advanced
// state as a crash-atomic checkpoint snapshot — the same LCKP format batch
// runs use, extended with a stream section — so a killed streaming session
// resumes bit-identically, including any sequences appended while it was
// down.
package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/compat"
	"repro/internal/miner"
	"repro/internal/seqdb"
	"repro/internal/stream"
)

// engineStream names the streaming pipeline in checkpoint snapshots.
const engineStream = "stream"

// StreamConfig parameterizes a streaming session. The embedded Config fields
// carry their batch semantics where they apply; Finalizer, Phase2Engine,
// Phase3Shards, ProbeValuer, Rng, Checkpoint and PhaseTimeouts are ignored —
// streaming always border-collapses with the level-wise candidate miner, its
// reservoir is driven by Seed (stateless draws, no RNG state), and
// durability is configured by CheckpointPath.
type StreamConfig struct {
	Config
	// Seed drives the stateless reservoir draws (any fixed value; required
	// for reproducibility, recorded in the checkpoint).
	Seed int64
	// Window, when > 0, keeps at most that many live sequences (sliding
	// window): Advance expires older sequences from the log first.
	Window int
	// CheckpointPath, when non-empty, persists the stream state after every
	// Advance (crash-atomic). Resume with ResumeStream.
	CheckpointPath string
}

func (cfg *StreamConfig) streamConfig(c compat.Source) stream.Config {
	return stream.Config{
		C:                     c,
		MinMatch:              cfg.MinMatch,
		Delta:                 cfg.Delta,
		SampleSize:            cfg.SampleSize,
		MaxLen:                cfg.MaxLen,
		MaxGap:                cfg.MaxGap,
		MaxCandidatesPerLevel: cfg.MaxCandidatesPerLevel,
		MemBudget:             cfg.MemBudget,
		Workers:               cfg.Workers,
		Kernel:                stream.Kernel(cfg.Phase2Kernel),
		CacheBudget:           cfg.Phase2CacheBudget,
		Seed:                  cfg.Seed,
		Window:                cfg.Window,
		Metrics:               cfg.Metrics,
	}
}

// streamConfigHash fingerprints the fields that shape a streaming session's
// results (like configHash, tuning knobs — Workers, Phase2Kernel, Metrics —
// are excluded; Seed and Window are included because they shape the sample
// and the mined window).
func streamConfigHash(cfg *StreamConfig) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v|%v|%d|%d|%d|%d|%d|%d|%d|%s",
		cfg.MinMatch, cfg.Delta, cfg.SampleSize, cfg.MaxLen, cfg.MaxGap,
		cfg.MaxCandidatesPerLevel, cfg.MemBudget, cfg.Window, cfg.Seed, engineStream)
	return h.Sum64()
}

// Stream is a durable streaming session over one append log. Not safe for
// concurrent use.
type Stream struct {
	s    *stream.Stream
	db   *seqdb.AppendDB
	cfg  StreamConfig
	hash uint64
}

// NewStream opens a fresh streaming session over db. Nothing is consumed
// until Advance.
func NewStream(db *seqdb.AppendDB, c compat.Source, cfg StreamConfig) (*Stream, error) {
	cfg.Config.setDefaults()
	s, err := stream.New(db, cfg.streamConfig(c))
	if err != nil {
		return nil, err
	}
	return &Stream{s: s, db: db, cfg: cfg, hash: streamConfigHash(&cfg)}, nil
}

// ResumeStream restores the session checkpointed at path and continues over
// db — including any sequences appended (or expired) while the session was
// down; they are consumed by the next Advance. The snapshot must have been
// written by a streaming session with an equivalent configuration against
// the same log (errors wrap ErrIncompatible otherwise).
func ResumeStream(path string, db *seqdb.AppendDB, c compat.Source, cfg StreamConfig) (*Stream, error) {
	snap, err := checkpoint.Load(path)
	if err != nil {
		return nil, err
	}
	if snap.Engine != engineStream {
		return nil, fmt.Errorf("%w: snapshot engine %q, want %q", ErrIncompatible, snap.Engine, engineStream)
	}
	if snap.Stream == nil {
		return nil, fmt.Errorf("%w: snapshot carries no stream section", ErrIncompatible)
	}
	cfg.Config.setDefaults()
	if hash := streamConfigHash(&cfg); hash != snap.ConfigHash {
		return nil, fmt.Errorf("%w: config hash %#x, snapshot %#x", ErrIncompatible, hash, snap.ConfigHash)
	}
	if p := db.Path(); p != "" && snap.DBPath != "" && p != snap.DBPath {
		return nil, fmt.Errorf("%w: log path %q, snapshot recorded %q", ErrIncompatible, p, snap.DBPath)
	}
	if snap.Stream.Cursor > db.Total() {
		return nil, fmt.Errorf("%w: snapshot cursor %d beyond the log's %d sequences", ErrIncompatible, snap.Stream.Cursor, db.Total())
	}
	st := &stream.State{
		Cursor:      snap.Stream.Cursor,
		WindowStart: snap.Stream.WindowStart,
		Sample:      snap.Sample,
		SymbolSums:  snap.Stream.SymbolSums,
		SampleSums:  snap.Stream.SampleSums,
		ExactSums:   snap.Stream.ExactSums,
	}
	var mine *miner.Result
	if snap.Phase >= 2 {
		if mine, err = phase2FromSnapshot(snap.Phase2, engineStream); err != nil {
			return nil, err
		}
	}
	s, err := stream.Restore(db, cfg.streamConfig(c), st, mine)
	if err != nil {
		return nil, err
	}
	return &Stream{s: s, db: db, cfg: cfg, hash: streamConfigHash(&cfg)}, nil
}

// Advance consumes everything appended since the last call, returns the
// refreshed frequent set over the live window, and — when CheckpointPath is
// set — persists the advanced state crash-atomically before returning, so
// at most one batch is ever replayed after a crash.
func (st *Stream) Advance(ctx context.Context) (*stream.Result, error) {
	res, err := st.s.Advance(ctx)
	if err != nil {
		return nil, err
	}
	if st.cfg.CheckpointPath != "" {
		if err := st.checkpoint(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Cursor returns the absolute id of the next unconsumed sequence.
func (st *Stream) Cursor() int { return st.s.Cursor() }

// checkpoint snapshots the stream state (phase1 sample + symbol matches,
// phase2 live mine when one exists, stream section) and saves it.
func (st *Stream) checkpoint() error {
	state := st.s.State()
	n := state.Cursor - state.WindowStart
	matches := make([]float64, len(state.SymbolSums))
	if n > 0 {
		for i, v := range state.SymbolSums {
			matches[i] = v / float64(n)
		}
	}
	snap := &checkpoint.Snapshot{
		ConfigHash:  st.hash,
		DBPath:      st.db.Path(),
		DBLen:       st.db.Total(),
		Engine:      engineStream,
		Seed:        st.cfg.Seed,
		Phase:       1,
		SymbolMatch: matches,
		Sample:      state.Sample,
		Stream: &checkpoint.StreamState{
			Cursor:      state.Cursor,
			WindowStart: state.WindowStart,
			SymbolSums:  state.SymbolSums,
			SampleSums:  state.SampleSums,
			ExactSums:   state.ExactSums,
		},
	}
	if mine := st.s.LastMine(); mine != nil {
		snap.Phase = 2
		snap.Phase2 = phase2ToSnapshot(mine)
	}
	start := time.Now()
	size, err := checkpoint.Save(st.cfg.CheckpointPath, snap)
	if err != nil {
		return fmt.Errorf("core: stream checkpoint: %w", err)
	}
	st.cfg.Metrics.CheckpointWrite(size, time.Since(start))
	return nil
}
