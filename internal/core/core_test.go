package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/compat"
	"repro/internal/datagen"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

const (
	d1 = pattern.Symbol(0)
	d2 = pattern.Symbol(1)
	d3 = pattern.Symbol(2)
	d4 = pattern.Symbol(3)
)

func fig4DB() *seqdb.MemDB {
	return seqdb.NewMemDB([][]pattern.Symbol{
		{d1, d2, d3, d1},
		{d4, d2, d1},
		{d3, d4, d2, d1},
		{d2, d2},
	})
}

// noisyProteinDB builds a small planted-motif database with uniform noise —
// the §5.1 test-database construction at miniature scale. Note that uniform
// noise makes every matrix cell positive, so every pattern has positive
// match and a low threshold explores the entire bounded lattice (the Fig 9
// blowup); tests therefore keep the spaces small.
func noisyProteinDB(t *testing.T, seed int64, n int, alpha float64) (*seqdb.MemDB, *compat.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const m = 6
	std, _, err := datagen.Protein(datagen.ProteinConfig{
		N: n, M: m, MinLen: 10, MaxLen: 14,
		Motifs:    []pattern.Pattern{pattern.MustNew(0, 1, 2)},
		PlantProb: 0.7,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	test, err := datagen.ApplyUniformNoise(std, m, alpha, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := compat.UniformNoise(m, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return test, c
}

func setsEqual(t *testing.T, got, want *pattern.Set, label string) {
	t.Helper()
	for _, p := range want.Patterns() {
		if !got.Contains(p) {
			t.Errorf("%s: missing %v", label, p)
		}
	}
	for _, p := range got.Patterns() {
		if !want.Contains(p) {
			t.Errorf("%s: extra %v", label, p)
		}
	}
}

func TestMineFullSampleEqualsExhaustive(t *testing.T) {
	// With the sample covering the whole database, the three-phase result is
	// provably exact regardless of delta; check both finalizers against the
	// exhaustive reference.
	db, c := noisyProteinDB(t, 1, 50, 0.15)
	const minMatch = 0.1
	opts := miner.Options{MaxLen: 4, MaxGap: 0}
	truth, err := Exhaustive(db, c, minMatch, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, fin := range []Finalizer{BorderCollapsing, LevelWise} {
		res, err := Mine(db, c, Config{
			MinMatch:   minMatch,
			SampleSize: db.Len(),
			MaxLen:     4,
			MaxGap:     0,
			MemBudget:  50,
			Finalizer:  fin,
			Rng:        rand.New(rand.NewSource(2)),
		})
		if err != nil {
			t.Fatal(err)
		}
		setsEqual(t, res.Frequent, truth.Frequent, fin.String())
		setsEqual(t, res.Border, pattern.Border(truth.Frequent), fin.String()+" border")
		if res.SampleSize != db.Len() {
			t.Errorf("SampleSize=%d", res.SampleSize)
		}
	}
}

func TestMinePartialSampleCloseToExhaustive(t *testing.T) {
	// With a partial sample and the paper's delta, the conservative Chernoff
	// bound routes nearly everything through exact probing; on this seeded
	// workload the result is exact.
	db, c := noisyProteinDB(t, 3, 100, 0.1)
	const minMatch = 0.15
	opts := miner.Options{MaxLen: 3, MaxGap: 1}
	truth, err := Exhaustive(db, c, minMatch, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(db, c, Config{
		MinMatch:   minMatch,
		SampleSize: 40,
		MaxLen:     3,
		MaxGap:     1,
		MemBudget:  100,
		Rng:        rand.New(rand.NewSource(4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	setsEqual(t, res.Frequent, truth.Frequent, "partial sample")
}

func TestMineScanAccounting(t *testing.T) {
	db, c := noisyProteinDB(t, 5, 50, 0.1)
	db.ResetScans()
	res, err := Mine(db, c, Config{
		MinMatch:   0.15,
		SampleSize: 20,
		MaxLen:     3,
		MaxGap:     0,
		MemBudget:  10,
		Rng:        rand.New(rand.NewSource(6)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Scans() != res.Scans {
		t.Errorf("db counted %d scans, result reports %d", db.Scans(), res.Scans)
	}
	if res.Scans < 1 {
		t.Error("at least Phase 1's scan must be counted")
	}
	if res.Phase3 != nil && res.Scans != 1+res.Phase3.Scans {
		t.Errorf("Scans=%d, phase3=%d", res.Scans, res.Phase3.Scans)
	}
}

func TestMineFinalizerNone(t *testing.T) {
	db, c := noisyProteinDB(t, 7, 40, 0.1)
	db.ResetScans()
	res, err := Mine(db, c, Config{
		MinMatch:   0.15,
		SampleSize: 10,
		MaxLen:     3,
		Finalizer:  None,
		Rng:        rand.New(rand.NewSource(8)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phase3 != nil {
		t.Error("None finalizer must skip Phase 3")
	}
	if db.Scans() != 1 {
		t.Errorf("None finalizer used %d scans, want 1", db.Scans())
	}
	setsEqual(t, res.Frequent, res.Phase2.Frequent, "None")
}

func TestMineFinalizersAgreeUnderHeavyAmbiguity(t *testing.T) {
	// A tiny sample makes ε wide and floods Phase 3 with ambiguous patterns;
	// both finalizers must still produce the identical exact frequent set.
	// (Scan-count ordering is workload dependent — collapse wins on deep
	// borders, bottom-up on shallow ones, per §4.3's closing discussion —
	// and is asserted on controlled chains in the levelwise package tests.)
	db, c := noisyProteinDB(t, 9, 60, 0.2)
	runWith := func(fin Finalizer) *Result {
		res, err := Mine(db, c, Config{
			MinMatch:              0.1,
			SampleSize:            15, // small sample → wide ε → many ambiguous
			MaxLen:                5,
			MaxGap:                0,
			MaxCandidatesPerLevel: 150,
			MemBudget:             5,
			Finalizer:             fin,
			Rng:                   rand.New(rand.NewSource(10)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bc := runWith(BorderCollapsing)
	lw := runWith(LevelWise)
	setsEqual(t, bc.Frequent, lw.Frequent, "finalizer equivalence")
	if bc.Phase3 == nil || lw.Phase3 == nil {
		t.Fatal("expected ambiguous patterns with a 15-sequence sample")
	}
	// (No exhaustive comparison here: MaxCandidatesPerLevel truncation keys
	// on the observed values, so the sample run and an exhaustive run would
	// legitimately explore different truncated spaces.)
}

func TestMineOnDiskDB(t *testing.T) {
	mem, c := noisyProteinDB(t, 11, 40, 0.1)
	path := t.TempDir() + "/db.lsq"
	if err := seqdb.WriteFile(path, mem); err != nil {
		t.Fatal(err)
	}
	disk, err := seqdb.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MinMatch: 0.15, SampleSize: 20, MaxLen: 3, MaxGap: 1, MemBudget: 50}
	cfg.Rng = rand.New(rand.NewSource(12))
	fromDisk, err := Mine(disk, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rng = rand.New(rand.NewSource(12))
	fromMem, err := Mine(mem, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	setsEqual(t, fromDisk.Frequent, fromMem.Frequent, "disk vs mem")
	if disk.Scans() != fromDisk.Scans {
		t.Errorf("disk pass counter %d vs result %d", disk.Scans(), fromDisk.Scans)
	}
}

func TestMineValidation(t *testing.T) {
	db := fig4DB()
	c := compat.Fig2()
	rng := rand.New(rand.NewSource(1))
	bad := []Config{
		{MinMatch: 0, MaxLen: 3, Rng: rng},
		{MinMatch: 1.5, MaxLen: 3, Rng: rng},
		{MinMatch: 0.1, MaxLen: 0, Rng: rng},
		{MinMatch: 0.1, MaxLen: 3, MaxGap: -1, Rng: rng},
		{MinMatch: 0.1, MaxLen: 3, Rng: nil},
		{MinMatch: 0.1, MaxLen: 3, Delta: 2, Rng: rng},
		{MinMatch: 0.1, MaxLen: 3, SampleSize: -1, Rng: rng},
		{MinMatch: 0.1, MaxLen: 3, MemBudget: -1, Rng: rng},
		{MinMatch: 0.1, MaxLen: 3, Finalizer: Finalizer(9), Rng: rng},
	}
	for i, cfg := range bad {
		if _, err := Mine(db, c, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	empty := seqdb.NewMemDB(nil)
	if _, err := Mine(empty, c, Config{MinMatch: 0.1, MaxLen: 3, Rng: rng}); err == nil {
		t.Error("empty database accepted")
	}
}

func TestMineSampleClampedToDB(t *testing.T) {
	db := fig4DB()
	res, err := Mine(db, compat.Fig2(), Config{
		MinMatch: 0.1, SampleSize: 100, MaxLen: 2, Rng: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize != 4 {
		t.Errorf("SampleSize=%d, want 4", res.SampleSize)
	}
}

func TestPhase1MatchesStandaloneComputation(t *testing.T) {
	db := fig4DB()
	c := compat.Fig2()
	sym, sample, err := Phase1(db, c, 2, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.7, 0.8, 0.3875, 0.425, 0.075}
	for i := range want {
		if diff := sym[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("match[d%d]=%v, want %v", i+1, sym[i], want[i])
		}
	}
	if len(sample) != 2 {
		t.Errorf("sampled %d sequences", len(sample))
	}
}

func TestExhaustiveSupportAgreesWithIdentityMatch(t *testing.T) {
	db := fig4DB()
	opts := miner.Options{MaxLen: 3, MaxGap: 1}
	viaSupport, err := ExhaustiveSupport(db, 0.5, 5, opts)
	if err != nil {
		t.Fatal(err)
	}
	viaMatch, err := Exhaustive(db, compat.Identity(5), 0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	setsEqual(t, viaSupport.Frequent, viaMatch.Frequent, "support vs identity match")
}

func TestFinalizerString(t *testing.T) {
	for f, want := range map[Finalizer]string{
		BorderCollapsing: "border-collapsing",
		LevelWise:        "level-wise",
		None:             "none",
	} {
		if f.String() != want {
			t.Errorf("%d.String()=%q", f, f.String())
		}
	}
	if Finalizer(9).String() == "" {
		t.Error("unknown finalizer should still render")
	}
}

func ExampleMine() {
	// Mine the paper's Figure 4(a) database with the Figure 2 matrix at
	// min_match = 0.3; the border holds the maximal frequent patterns.
	db := seqdb.NewMemDB([][]pattern.Symbol{
		{0, 1, 2, 0},
		{3, 1, 0},
		{2, 3, 1, 0},
		{1, 1},
	})
	res, err := Mine(db, compat.Fig2(), Config{
		MinMatch:   0.3,
		SampleSize: 4,
		MaxLen:     3,
		MaxGap:     1,
		Rng:        rand.New(rand.NewSource(1)),
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, p := range res.Border.Patterns() {
		fmt.Println(p)
	}
	// Output:
	// d2 d1
	// d3
	// d4 * d1
	// d4 d2
}

func TestMineParallelWorkersMatchSequential(t *testing.T) {
	db, c := noisyProteinDB(t, 15, 80, 0.15)
	run := func(workers int) *Result {
		res, err := Mine(db, c, Config{
			MinMatch: 0.1, SampleSize: 20, MaxLen: 4, MaxGap: 0,
			MemBudget: 30, Workers: workers,
			Rng: rand.New(rand.NewSource(16)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(0)
	for _, workers := range []int{-1, 2, 4} {
		par := run(workers)
		setsEqual(t, par.Frequent, seq.Frequent, "parallel vs sequential")
		if par.Scans != seq.Scans {
			t.Errorf("workers=%d: %d scans vs %d", workers, par.Scans, seq.Scans)
		}
	}
}

func TestMineRandomizedPipelineEquivalence(t *testing.T) {
	// Across random seeds, the probabilistic pipeline (with the paper's
	// conservative default δ) and the exhaustive reference agree on
	// concentrated-noise workloads.
	for seed := int64(100); seed < 105; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const m = 8
		sub := make([][]float64, m)
		for i := range sub {
			sub[i] = make([]float64, m)
			sub[i][i] = 0.75
			sub[i][i^1] += 0.25
		}
		c, err := compat.FromChannel(sub, nil)
		if err != nil {
			t.Fatal(err)
		}
		std, _, err := datagen.Protein(datagen.ProteinConfig{
			N: 150, M: m, MinLen: 10, MaxLen: 16,
			Motifs:    []pattern.Pattern{pattern.MustNew(0, 2, 4)},
			PlantProb: 0.5,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		test, err := datagen.ApplyChannelNoise(std, sub, rng)
		if err != nil {
			t.Fatal(err)
		}
		const minMatch = 0.08
		truth, err := Exhaustive(test, c, minMatch, miner.Options{MaxLen: 3, MaxGap: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Mine(test, c, Config{
			MinMatch: minMatch, SampleSize: 60, MaxLen: 3, MaxGap: 1,
			MemBudget: 40, Rng: rand.New(rand.NewSource(seed + 1000)),
		})
		if err != nil {
			t.Fatal(err)
		}
		setsEqual(t, res.Frequent, truth.Frequent, fmt.Sprintf("seed %d", seed))
	}
}

func TestMineImplicitFinalizerMatchesExplicitBorder(t *testing.T) {
	// MaxGap = MaxLen-2, so the truncated candidate space coincides with the
	// implicit form's full sub-pattern lattice (see the Finalizer docs).
	db, c := noisyProteinDB(t, 19, 60, 0.15)
	run := func(fin Finalizer) *Result {
		res, err := Mine(db, c, Config{
			MinMatch: 0.12, SampleSize: 25, MaxLen: 4, MaxGap: 2,
			MemBudget: 20, Finalizer: fin,
			Rng: rand.New(rand.NewSource(20)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	explicit := run(BorderCollapsing)
	implicit := run(BorderCollapsingImplicit)
	setsEqual(t, implicit.Border, explicit.Border, "implicit vs explicit border")
	// The implicit Frequent is the closure of the border and must cover the
	// explicit frequent set.
	for _, p := range explicit.Frequent.Patterns() {
		if !implicit.Frequent.Contains(p) {
			t.Errorf("implicit closure missing %v", p)
		}
	}
	if BorderCollapsingImplicit.String() != "border-collapsing-implicit" {
		t.Error("String broken")
	}
}
