package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/pattern"
	"repro/internal/telemetry"
)

// Report is a serializable summary of a mining run, for downstream tooling.
// Patterns are rendered with the supplied alphabet; border membership and
// the measured match of every frequent pattern are included when available.
type Report struct {
	MinMatch   float64         `json:"min_match"`
	Sequences  int             `json:"sequences"`
	SampleSize int             `json:"sample_size"`
	Scans      int             `json:"scans"`
	Frequent   []PatternReport `json:"frequent"`
	Phase      PhaseReport     `json:"phases"`
	// Degraded flags a run whose Phase 3 budget expired; Unresolved then
	// lists the patterns left ambiguous, with their Chernoff intervals.
	Degraded   bool               `json:"degraded,omitempty"`
	Unresolved []UnresolvedReport `json:"unresolved,omitempty"`
	// ResumedFrom and ScansSkipped describe a checkpoint-resumed run: the
	// phase the snapshot had recorded, and how many of Scans were skipped.
	ResumedFrom  int `json:"resumed_from,omitempty"`
	ScansSkipped int `json:"scans_skipped,omitempty"`
	// Telemetry is the run's metrics snapshot, present when the run was
	// configured with a telemetry.Metrics collector.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// UnresolvedReport is one still-ambiguous pattern of a degraded run: its
// true match lies within [sample_match-epsilon, sample_match+epsilon] at
// confidence 1-δ.
type UnresolvedReport struct {
	Pattern     string  `json:"pattern"`
	Key         string  `json:"key"`
	SampleMatch float64 `json:"sample_match"`
	Epsilon     float64 `json:"epsilon"`
}

// PatternReport is one frequent pattern.
type PatternReport struct {
	Pattern string  `json:"pattern"`
	Key     string  `json:"key"`
	K       int     `json:"k"`
	Length  int     `json:"length"`
	Border  bool    `json:"border"`
	Match   float64 `json:"match,omitempty"`
	// Source records how the pattern was confirmed: "sample" (accepted at
	// confidence 1-δ from Phase 2) or "probe" (measured exactly in Phase 3).
	Source string `json:"source"`
}

// PhaseReport carries per-phase statistics.
type PhaseReport struct {
	Phase1Millis       float64 `json:"phase1_ms"`
	Phase2Millis       float64 `json:"phase2_ms"`
	Phase3Millis       float64 `json:"phase3_ms"`
	SampleFrequent     int     `json:"sample_frequent"`
	SampleAmbiguous    int     `json:"sample_ambiguous"`
	ProbedPatterns     int     `json:"probed_patterns"`
	CandidatesPerLevel []int   `json:"candidates_per_level"`
	// Phase2LevelMillis is the wall time each Phase 2 lattice level took.
	Phase2LevelMillis []float64 `json:"phase2_level_ms,omitempty"`
	Truncated         bool      `json:"truncated"`
}

// NewReport assembles a Report from a mining result. alphabet may be nil,
// in which case patterns render with generic d<i> names. sequences is the
// database size (Result does not retain the Scanner).
func NewReport(res *Result, minMatch float64, sequences int, alphabet *pattern.Alphabet) (*Report, error) {
	if res == nil {
		return nil, fmt.Errorf("core: nil result")
	}
	rep := &Report{
		MinMatch:   minMatch,
		Sequences:  sequences,
		SampleSize: res.SampleSize,
		Scans:      res.Scans,
	}
	if res.Phase2 != nil {
		rep.Phase = PhaseReport{
			Phase1Millis:       float64(res.Phase1Time.Microseconds()) / 1000,
			Phase2Millis:       float64(res.Phase2Time.Microseconds()) / 1000,
			Phase3Millis:       float64(res.Phase3Time.Microseconds()) / 1000,
			SampleFrequent:     res.Phase2.Frequent.Len(),
			SampleAmbiguous:    res.Phase2.Ambiguous.Len(),
			CandidatesPerLevel: res.Phase2.CandidatesPerLevel,
			Phase2LevelMillis:  res.Phase2.LevelMillis,
			Truncated:          res.Phase2.Truncated,
		}
	}
	if res.Phase3 != nil {
		rep.Phase.ProbedPatterns = res.Phase3.Probed
	}
	if res.Telemetry != nil {
		snap := res.Telemetry.Snapshot()
		snap.Retry = res.ScanStats
		rep.Telemetry = &snap
	}
	render := func(p pattern.Pattern) string {
		if alphabet != nil {
			return alphabet.Format(p)
		}
		return p.String()
	}
	rep.Degraded = res.Degraded
	rep.ResumedFrom = res.ResumedFrom
	rep.ScansSkipped = res.ScansSkipped
	for _, u := range res.Unresolved {
		rep.Unresolved = append(rep.Unresolved, UnresolvedReport{
			Pattern:     render(u.Pattern),
			Key:         u.Pattern.Key(),
			SampleMatch: u.SampleMatch,
			Epsilon:     u.Epsilon,
		})
	}
	for _, p := range res.Frequent.Patterns() {
		key := p.Key()
		pr := PatternReport{
			Pattern: render(p),
			Key:     key,
			K:       p.K(),
			Length:  p.Len(),
			Border:  res.Border.Contains(p),
			Source:  "sample",
		}
		if res.Phase3 != nil {
			if v, ok := res.Phase3.Exact[key]; ok {
				pr.Match = v
				pr.Source = "probe"
			}
		}
		if pr.Source == "sample" && res.Phase2 != nil {
			if v, ok := res.Phase2.Values[key]; ok {
				pr.Match = v
			}
		}
		rep.Frequent = append(rep.Frequent, pr)
	}
	// Borders first, then by descending match, for readable output.
	sort.SliceStable(rep.Frequent, func(a, b int) bool {
		if rep.Frequent[a].Border != rep.Frequent[b].Border {
			return rep.Frequent[a].Border
		}
		if rep.Frequent[a].Match != rep.Frequent[b].Match {
			return rep.Frequent[a].Match > rep.Frequent[b].Match
		}
		return rep.Frequent[a].Key < rep.Frequent[b].Key
	})
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
