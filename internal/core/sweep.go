package core

import (
	"context"
	"fmt"

	"repro/internal/chernoff"
	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// MineSweep is the window-sweep variant of the three-phase algorithm,
// designed for sparse compatibility matrices and very large alphabets (the
// paper's §6 E-commerce direction): Phase 2 enumerates the sample's
// compatible windows level by level (match.LevelSweep) instead of
// generating candidates, so its cost is occurrence-bound and independent of
// m², and no m×m structure is ever materialized when c is a SparseMatrix.
//
// Soundness of the sweep's negative classifications requires the Chernoff
// band to sit strictly inside (0, min_match): patterns absent from the
// sample have sample match 0 and are classified infrequent, which holds at
// confidence 1-δ only if ε < min_match. MineSweep verifies this and returns
// an error otherwise (use a larger sample, a higher threshold, or the
// candidate-driven Mine, which has no such restriction).
//
// MaxCandidatesPerLevel is ignored: the sweep never generates candidates.
// Results are identical to Mine up to the sweep's documented floor
// undercount (min_match/64, folded into the ambiguous band).
func MineSweep(db seqdb.Scanner, c compat.Source, cfg Config) (*Result, error) {
	return MineSweepContext(context.Background(), db, c, cfg)
}

// MineSweepContext is MineSweep with the cancellation, phase-attribution,
// partial-result, retry, checkpoint/resume, and phase-budget semantics of
// MineContext: ctx is checked between sequences in Phase 1, between sweep
// levels in Phase 2, and between/within probe scans in Phase 3; failures
// surface as *PhaseError.
func MineSweepContext(ctx context.Context, db seqdb.Scanner, c compat.Source, cfg Config) (*Result, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Phase2Engine != Phase2Levelwise {
		return nil, fmt.Errorf("core: Phase2Engine %v incompatible with the sweep pipeline", cfg.Phase2Engine)
	}
	return mineContext(ctx, db, c, cfg, engineSweep, nil)
}

// phase2Sweep is the window-sweep Phase 2: level 1 is labeled exactly from
// the Phase 1 symbol matches, and higher levels enumerate the sample's
// compatible windows with match.LevelSweep.
func phase2Sweep(ctx context.Context, c compat.Source, cfg *Config, symbolMatch []float64, sample [][]pattern.Symbol) (*miner.Result, error) {
	n := len(sample)
	cls, err := chernoff.NewClassifier(cfg.MinMatch, cfg.Delta, n)
	if err != nil {
		return nil, err
	}
	p2 := &miner.Result{
		Frequent:  pattern.NewSet(),
		Ambiguous: pattern.NewSet(),
		Values:    make(map[string]float64),
		Spreads:   make(map[string]float64),
		Labels:    make(map[string]chernoff.Label),
	}
	floor := cfg.MinMatch / 64
	maxSym := 0.0
	aliveSymbols := 0
	for d, v := range symbolMatch {
		if v > maxSym {
			maxSym = v
		}
		p := pattern.Pattern{pattern.Symbol(d)}
		key := p.Key()
		p2.Values[key] = v
		p2.Spreads[key] = v
		if v >= cfg.MinMatch {
			p2.Labels[key] = chernoff.Frequent
			p2.Frequent.Add(p)
			aliveSymbols++
		} else {
			p2.Labels[key] = chernoff.Infrequent
		}
		cfg.Metrics.Classified(int(p2.Labels[key]))
	}
	p2.CandidatesPerLevel = append(p2.CandidatesPerLevel, c.Size())
	cfg.Metrics.LevelEvaluated(c.Size())
	p2.AlivePerLevel = append(p2.AlivePerLevel, aliveSymbols)
	if eps := cls.Epsilon(maxSym); eps >= cfg.MinMatch {
		return nil, fmt.Errorf("core: sample too small for sweep mining (ε=%v >= min_match=%v); grow the sample or use Mine", eps, cfg.MinMatch)
	}

	sampleDB := seqdb.NewMemDB(sample)
	alive := aliveSymbols
	for k := 2; k <= cfg.MaxLen && alive > 0; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sums, err := match.LevelSweep(sampleDB, c, k, cfg.MaxLen, cfg.MaxGap, floor)
		if err != nil {
			return nil, err
		}
		alive = 0
		p2.CandidatesPerLevel = append(p2.CandidatesPerLevel, len(sums))
		cfg.Metrics.LevelEvaluated(len(sums))
		for key, sum := range sums {
			v := sum / float64(n)
			p, err := pattern.ParseKey(key)
			if err != nil {
				return nil, err
			}
			spread := chernoff.RestrictedSpread(p, symbolMatch)
			p2.Values[key] = v
			p2.Spreads[key] = spread
			// The floor undercount can only push a value down; widen the
			// ambiguous band accordingly on the low side.
			switch {
			case v > cfg.MinMatch+cls.Epsilon(spread):
				p2.Labels[key] = chernoff.Frequent
				p2.Frequent.Add(p)
				alive++
			case v < cfg.MinMatch-cls.Epsilon(spread)-floor:
				p2.Labels[key] = chernoff.Infrequent
			default:
				p2.Labels[key] = chernoff.Ambiguous
				p2.Ambiguous.Add(p)
				alive++
			}
			cfg.Metrics.Classified(int(p2.Labels[key]))
		}
		p2.AlivePerLevel = append(p2.AlivePerLevel, alive)
	}
	p2.FQT = pattern.Border(p2.Frequent)
	combined := p2.Frequent.Clone()
	combined.Union(p2.Ambiguous)
	p2.Ceiling = pattern.Border(combined)
	return p2, nil
}
