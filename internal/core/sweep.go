package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/border"
	"repro/internal/chernoff"
	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/telemetry"
)

// MineSweep is the window-sweep variant of the three-phase algorithm,
// designed for sparse compatibility matrices and very large alphabets (the
// paper's §6 E-commerce direction): Phase 2 enumerates the sample's
// compatible windows level by level (match.LevelSweep) instead of
// generating candidates, so its cost is occurrence-bound and independent of
// m², and no m×m structure is ever materialized when c is a SparseMatrix.
//
// Soundness of the sweep's negative classifications requires the Chernoff
// band to sit strictly inside (0, min_match): patterns absent from the
// sample have sample match 0 and are classified infrequent, which holds at
// confidence 1-δ only if ε < min_match. MineSweep verifies this and returns
// an error otherwise (use a larger sample, a higher threshold, or the
// candidate-driven Mine, which has no such restriction).
//
// MaxCandidatesPerLevel is ignored: the sweep never generates candidates.
// Results are identical to Mine up to the sweep's documented floor
// undercount (min_match/64, folded into the ambiguous band).
func MineSweep(db seqdb.Scanner, c compat.Source, cfg Config) (*Result, error) {
	return MineSweepContext(context.Background(), db, c, cfg)
}

// MineSweepContext is MineSweep with the cancellation, phase-attribution,
// partial-result, and retry semantics of MineContext: ctx is checked
// between sequences in Phase 1, between sweep levels in Phase 2, and
// between/within probe scans in Phase 3; failures surface as *PhaseError.
func MineSweepContext(ctx context.Context, db seqdb.Scanner, c compat.Source, cfg Config) (*Result, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if db.Len() == 0 {
		return nil, fmt.Errorf("core: empty database")
	}
	if cfg.Metrics != nil {
		db = telemetry.NewScanner(db, cfg.Metrics)
		defer cfg.Metrics.SetPhase(0)
	}
	res := &Result{Telemetry: cfg.Metrics}
	fail := func(phase int, err error) (*Result, error) {
		res.PhaseReached = phase
		res.captureScanStats(db)
		return res, &PhaseError{Phase: phase, Err: err}
	}

	// Phase 1: symbol matches + sample, one scan.
	res.PhaseReached = 1
	cfg.Metrics.SetPhase(1)
	start := time.Now()
	symbolMatch, sample, err := Phase1Context(ctx, db, c, cfg.SampleSize, cfg.Rng)
	cfg.Metrics.PhaseTime(1, time.Since(start))
	if err != nil {
		return fail(1, err)
	}
	n := len(sample)
	res.SymbolMatch = symbolMatch
	res.SampleSize = n
	cfg.Metrics.SampleDrawn(n)
	res.Scans = 1
	res.Phase1Time = time.Since(start)

	// Phase 2: window sweep over the sample with Chernoff classification.
	res.PhaseReached = 2
	cfg.Metrics.SetPhase(2)
	start = time.Now()
	cls, err := chernoff.NewClassifier(cfg.MinMatch, cfg.Delta, n)
	if err != nil {
		return fail(2, err)
	}
	p2 := &miner.Result{
		Frequent:  pattern.NewSet(),
		Ambiguous: pattern.NewSet(),
		Values:    make(map[string]float64),
		Spreads:   make(map[string]float64),
		Labels:    make(map[string]chernoff.Label),
	}
	floor := cfg.MinMatch / 64
	maxSym := 0.0
	aliveSymbols := 0
	for d, v := range symbolMatch {
		if v > maxSym {
			maxSym = v
		}
		p := pattern.Pattern{pattern.Symbol(d)}
		key := p.Key()
		p2.Values[key] = v
		p2.Spreads[key] = v
		if v >= cfg.MinMatch {
			p2.Labels[key] = chernoff.Frequent
			p2.Frequent.Add(p)
			aliveSymbols++
		} else {
			p2.Labels[key] = chernoff.Infrequent
		}
		cfg.Metrics.Classified(int(p2.Labels[key]))
	}
	p2.CandidatesPerLevel = append(p2.CandidatesPerLevel, c.Size())
	cfg.Metrics.LevelEvaluated(c.Size())
	p2.AlivePerLevel = append(p2.AlivePerLevel, aliveSymbols)
	if eps := cls.Epsilon(maxSym); eps >= cfg.MinMatch {
		return fail(2, fmt.Errorf("core: sample too small for sweep mining (ε=%v >= min_match=%v); grow the sample or use Mine", eps, cfg.MinMatch))
	}

	sampleDB := seqdb.NewMemDB(sample)
	alive := aliveSymbols
	for k := 2; k <= cfg.MaxLen && alive > 0; k++ {
		if err := ctx.Err(); err != nil {
			return fail(2, err)
		}
		sums, err := match.LevelSweep(sampleDB, c, k, cfg.MaxLen, cfg.MaxGap, floor)
		if err != nil {
			return fail(2, err)
		}
		alive = 0
		p2.CandidatesPerLevel = append(p2.CandidatesPerLevel, len(sums))
		cfg.Metrics.LevelEvaluated(len(sums))
		for key, sum := range sums {
			v := sum / float64(n)
			p, err := pattern.ParseKey(key)
			if err != nil {
				return fail(2, err)
			}
			spread := chernoff.RestrictedSpread(p, symbolMatch)
			p2.Values[key] = v
			p2.Spreads[key] = spread
			// The floor undercount can only push a value down; widen the
			// ambiguous band accordingly on the low side.
			switch {
			case v > cfg.MinMatch+cls.Epsilon(spread):
				p2.Labels[key] = chernoff.Frequent
				p2.Frequent.Add(p)
				alive++
			case v < cfg.MinMatch-cls.Epsilon(spread)-floor:
				p2.Labels[key] = chernoff.Infrequent
			default:
				p2.Labels[key] = chernoff.Ambiguous
				p2.Ambiguous.Add(p)
				alive++
			}
			cfg.Metrics.Classified(int(p2.Labels[key]))
		}
		p2.AlivePerLevel = append(p2.AlivePerLevel, alive)
	}
	p2.FQT = pattern.Border(p2.Frequent)
	combined := p2.Frequent.Clone()
	combined.Union(p2.Ambiguous)
	p2.Ceiling = pattern.Border(combined)
	res.Phase2 = p2
	res.Phase2Time = time.Since(start)
	cfg.Metrics.PhaseTime(2, res.Phase2Time)

	// Phase 3: identical finalization to Mine.
	res.PhaseReached = 3
	cfg.Metrics.SetPhase(3)
	start = time.Now()
	if cfg.Finalizer == None || p2.Ambiguous.Len() == 0 {
		res.Frequent = p2.Frequent.Clone()
		res.Border = pattern.Border(res.Frequent)
		res.Phase3Time = time.Since(start)
		cfg.Metrics.PhaseTime(3, res.Phase3Time)
		res.captureScanStats(db)
		return res, nil
	}
	probeCfg := border.Config{
		MinMatch:  cfg.MinMatch,
		MemBudget: cfg.MemBudget,
		Probe:     cfg.probeValuer(ctx, db, c),
		Ctx:       ctx,
		Metrics:   cfg.Metrics,
	}
	switch cfg.Finalizer {
	case BorderCollapsing:
		res.Phase3, err = border.Collapse(probeCfg, p2.Frequent, p2.Ambiguous)
	case LevelWise:
		res.Phase3, err = levelwiseFinalize(probeCfg, p2.Frequent, p2.Ambiguous)
	case BorderCollapsingImplicit:
		res.Phase3, err = border.CollapseImplicit(probeCfg, implicitLower(p2), p2.Ceiling)
	}
	cfg.Metrics.PhaseTime(3, time.Since(start))
	if err != nil {
		return fail(3, err)
	}
	res.Frequent = res.Phase3.Frequent
	res.Border = res.Phase3.Border
	res.Scans += res.Phase3.Scans
	res.Phase3Time = time.Since(start)
	res.captureScanStats(db)
	return res, nil
}
