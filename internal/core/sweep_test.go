package core

import (
	"math/rand"
	"testing"

	"repro/internal/compat"
	"repro/internal/datagen"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// sparseWorld builds a large-ish alphabet workload with a sparse matrix.
func sparseWorld(t *testing.T, m, n int, seed int64) (*seqdb.MemDB, *compat.SparseMatrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	c, mut, err := datagen.SparseNoise(m, 0.2, 10.0/float64(m-1), rng)
	if err != nil {
		t.Fatal(err)
	}
	motifs := []pattern.Pattern{{0, pattern.Symbol(m / 3), pattern.Symbol(m / 2)}}
	std, err := datagen.Uniform(n, 30, m, motifs, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	test, err := datagen.ApplyMutator(std, mut, rng)
	if err != nil {
		t.Fatal(err)
	}
	return test, c
}

func TestMineSweepMatchesExhaustive(t *testing.T) {
	db, c := sparseWorld(t, 40, 800, 21)
	const minMatch = 0.05
	truthSet, _, err := match.MineBySweep(db, c, minMatch, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineSweep(db, c, Config{
		MinMatch:   minMatch,
		SampleSize: 600,
		MaxLen:     3,
		MaxGap:     0,
		MemBudget:  1000,
		Rng:        rand.New(rand.NewSource(22)),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sample-frequent patterns are accepted at confidence 1-δ; everything
	// else is probed exactly, so on this seeded workload the result matches
	// the exhaustive truth.
	setsEqual(t, res.Frequent, truthSet, "sweep vs exhaustive")
	if res.Scans < 1 {
		t.Error("no scans recorded")
	}
	if res.Phase2 == nil || res.Phase2.FQT == nil || res.Phase2.Ceiling == nil {
		t.Error("phase 2 borders not populated")
	}
}

func TestMineSweepAgreesWithMine(t *testing.T) {
	db, c := sparseWorld(t, 30, 600, 31)
	cfg := Config{
		MinMatch:   0.06,
		SampleSize: 500,
		MaxLen:     3,
		MaxGap:     0,
		MemBudget:  1000,
	}
	cfg.Rng = rand.New(rand.NewSource(32))
	viaSweep, err := MineSweep(db, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rng = rand.New(rand.NewSource(32))
	viaEngine, err := Mine(db, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	setsEqual(t, viaSweep.Frequent, viaEngine.Frequent, "sweep vs candidate engine")
}

func TestMineSweepRejectsUndersizedSample(t *testing.T) {
	db, c := sparseWorld(t, 30, 400, 41)
	_, err := MineSweep(db, c, Config{
		MinMatch:   0.001, // far below ε for any feasible sample here
		SampleSize: 20,
		MaxLen:     3,
		Rng:        rand.New(rand.NewSource(42)),
	})
	if err == nil {
		t.Fatal("undersized sample accepted: negatives would be unsound")
	}
}

func TestMineSweepScanAccounting(t *testing.T) {
	db, c := sparseWorld(t, 40, 600, 51)
	db.ResetScans()
	res, err := MineSweep(db, c, Config{
		MinMatch:   0.08,
		SampleSize: 500,
		MaxLen:     3,
		MemBudget:  5,
		Rng:        rand.New(rand.NewSource(52)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Scans() != res.Scans {
		t.Errorf("db counted %d scans, result reports %d", db.Scans(), res.Scans)
	}
}

func TestMineSweepFinalizerNone(t *testing.T) {
	db, c := sparseWorld(t, 40, 600, 61)
	db.ResetScans()
	res, err := MineSweep(db, c, Config{
		MinMatch:   0.08,
		SampleSize: 500,
		MaxLen:     3,
		Finalizer:  None,
		Rng:        rand.New(rand.NewSource(62)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phase3 != nil || db.Scans() != 1 {
		t.Errorf("None finalizer: phase3=%v scans=%d", res.Phase3, db.Scans())
	}
}

func TestMineSweepValidation(t *testing.T) {
	db, c := sparseWorld(t, 30, 100, 71)
	if _, err := MineSweep(db, c, Config{MinMatch: 0, MaxLen: 3, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("invalid config accepted")
	}
	empty := seqdb.NewMemDB(nil)
	if _, err := MineSweep(empty, c, Config{MinMatch: 0.1, MaxLen: 3, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Error("empty database accepted")
	}
}
