// Package datagen builds the synthetic workloads of the paper's evaluation:
// protein-like standard databases with planted motifs (standing in for the
// NCBI protein corpus, see DESIGN.md's substitution table), the §5.1
// noise-injected test databases, and the Figure 15 synthetic databases with
// large alphabets and sparse compatibility.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/compat"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// ProteinConfig parameterizes the standard-database generator.
type ProteinConfig struct {
	// N is the number of sequences.
	N int
	// M is the alphabet size (20 for amino acids).
	M int
	// MinLen and MaxLen bound the (uniform) sequence length.
	MinLen, MaxLen int
	// Motifs are planted patterns; eternal positions are filled with random
	// symbols at plant time. Nil selects NumMotifs auto-generated motifs.
	Motifs []pattern.Pattern
	// NumMotifs and MotifLen control auto-generation when Motifs is nil.
	NumMotifs, MotifLen int
	// PlantProb is the probability that a given sequence carries a given
	// motif (each motif decided independently).
	PlantProb float64
}

func (c ProteinConfig) validate() error {
	if c.N < 1 {
		return fmt.Errorf("datagen: N %d < 1", c.N)
	}
	if c.M < 2 {
		return fmt.Errorf("datagen: M %d < 2", c.M)
	}
	if c.MinLen < 1 || c.MaxLen < c.MinLen {
		return fmt.Errorf("datagen: bad length range [%d,%d]", c.MinLen, c.MaxLen)
	}
	if c.PlantProb < 0 || c.PlantProb > 1 {
		return fmt.Errorf("datagen: PlantProb %v outside [0,1]", c.PlantProb)
	}
	if c.Motifs == nil && c.NumMotifs > 0 {
		if c.MotifLen < 1 || c.MotifLen > c.MinLen {
			return fmt.Errorf("datagen: MotifLen %d outside [1,MinLen=%d]", c.MotifLen, c.MinLen)
		}
	}
	for i, m := range c.Motifs {
		if err := m.Validate(); err != nil {
			return fmt.Errorf("datagen: motif %d: %w", i, err)
		}
		if m.Len() > c.MinLen {
			return fmt.Errorf("datagen: motif %d longer than MinLen", i)
		}
	}
	return nil
}

// Protein generates a standard database: background symbols drawn from a
// mildly skewed (Zipf-like) distribution over the alphabet, with the motifs
// planted at random positions. It returns the database and the motifs used.
func Protein(cfg ProteinConfig, rng *rand.Rand) (*seqdb.MemDB, []pattern.Pattern, error) {
	if rng == nil {
		return nil, nil, fmt.Errorf("datagen: nil rng")
	}
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	motifs := cfg.Motifs
	if motifs == nil {
		motifs = RandomMotifs(cfg.NumMotifs, cfg.MotifLen, cfg.M, rng)
	}
	// Zipf-ish background: symbol d has weight 1/(d+2), echoing the skewed
	// residue frequencies of real protein data.
	weights := make([]float64, cfg.M)
	total := 0.0
	for d := range weights {
		weights[d] = 1 / float64(d+2)
		total += weights[d]
	}
	cum := make([]float64, cfg.M)
	acc := 0.0
	for d := range weights {
		acc += weights[d] / total
		cum[d] = acc
	}
	draw := func() pattern.Symbol {
		u := rng.Float64()
		for d, c := range cum {
			if u <= c {
				return pattern.Symbol(d)
			}
		}
		return pattern.Symbol(cfg.M - 1)
	}

	db := seqdb.NewMemDB(nil)
	for i := 0; i < cfg.N; i++ {
		l := cfg.MinLen
		if cfg.MaxLen > cfg.MinLen {
			l += rng.Intn(cfg.MaxLen - cfg.MinLen + 1)
		}
		seq := make([]pattern.Symbol, l)
		for j := range seq {
			seq[j] = draw()
		}
		for _, motif := range motifs {
			if rng.Float64() >= cfg.PlantProb {
				continue
			}
			pos := 0
			if l > motif.Len() {
				pos = rng.Intn(l - motif.Len() + 1)
			}
			for j, s := range motif {
				if s.IsEternal() {
					continue // leave the background symbol (a random fill)
				}
				seq[pos+j] = s
			}
		}
		db.Append(seq)
	}
	return db, motifs, nil
}

// RandomMotifs generates k random contiguous motifs of the given length with
// distinct symbols per motif (so each motif is a clear signal).
func RandomMotifs(k, length, m int, rng *rand.Rand) []pattern.Pattern {
	motifs := make([]pattern.Pattern, 0, k)
	for i := 0; i < k; i++ {
		perm := rng.Perm(m)
		p := make(pattern.Pattern, 0, length)
		for j := 0; j < length && j < m; j++ {
			p = append(p, pattern.Symbol(perm[j]))
		}
		for p.Len() < length { // alphabet smaller than motif: allow repeats
			p = append(p, pattern.Symbol(rng.Intn(m)))
		}
		motifs = append(motifs, p)
	}
	return motifs
}

// ApplyUniformNoise derives a §5.1 test database: every symbol stays itself
// with probability 1-alpha and flips to each other symbol with probability
// alpha/(m-1). The standard database is not modified.
func ApplyUniformNoise(db *seqdb.MemDB, m int, alpha float64, rng *rand.Rand) (*seqdb.MemDB, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("datagen: alpha %v outside [0,1)", alpha)
	}
	if m < 2 && alpha > 0 {
		return nil, fmt.Errorf("datagen: need m >= 2 for noise")
	}
	return mutate(db, rng, func(d pattern.Symbol) pattern.Symbol {
		if rng.Float64() >= alpha {
			return d
		}
		other := pattern.Symbol(rng.Intn(m - 1))
		if other >= d {
			other++
		}
		return other
	})
}

// ApplyChannelNoise derives a test database by passing every symbol through
// the substitution channel sub[i][j] = Prob(observed=j | true=i).
func ApplyChannelNoise(db *seqdb.MemDB, sub [][]float64, rng *rand.Rand) (*seqdb.MemDB, error) {
	if len(sub) == 0 {
		return nil, fmt.Errorf("datagen: empty channel")
	}
	m := len(sub)
	cum := make([][]float64, m)
	for i, row := range sub {
		if len(row) != m {
			return nil, fmt.Errorf("datagen: ragged channel row %d", i)
		}
		cum[i] = make([]float64, m)
		acc := 0.0
		for j, p := range row {
			acc += p
			cum[i][j] = acc
		}
		if acc < 1-1e-6 || acc > 1+1e-6 {
			return nil, fmt.Errorf("datagen: channel row %d sums to %v", i, acc)
		}
	}
	return mutate(db, rng, func(d pattern.Symbol) pattern.Symbol {
		u := rng.Float64()
		row := cum[d]
		for j, c := range row {
			if u <= c {
				return pattern.Symbol(j)
			}
		}
		return pattern.Symbol(m - 1)
	})
}

func mutate(db *seqdb.MemDB, rng *rand.Rand, f func(pattern.Symbol) pattern.Symbol) (*seqdb.MemDB, error) {
	if rng == nil {
		return nil, fmt.Errorf("datagen: nil rng")
	}
	out := seqdb.NewMemDB(nil)
	for i := 0; i < db.Len(); i++ {
		src := db.Seq(i)
		dst := make([]pattern.Symbol, len(src))
		for j, d := range src {
			dst[j] = f(d)
		}
		out.Append(dst)
	}
	return out, nil
}

// Mutator maps a true symbol to an observed symbol using the supplied rng —
// the streaming form of a substitution channel, usable without materializing
// an m×m matrix for very large alphabets.
type Mutator func(d pattern.Symbol, rng *rand.Rand) pattern.Symbol

// SparseNoise builds the Figure 15 construction for a large alphabet: every
// observed symbol is compatible with itself (weight 1-alpha) and with about
// density·(m-1) other symbols sharing the remaining alpha ("a symbol is
// compatible to around 10% of other symbols", §5.7). The matrix is built
// directly in sparse form — O(density·m²) cells, never a dense m×m array —
// together with the companion Mutator that generates matching noisy data
// (symbol i stays itself with probability 1-alpha, otherwise flips to one of
// the symbols whose observed column lists it).
func SparseNoise(m int, alpha, density float64, rng *rand.Rand) (*compat.SparseMatrix, Mutator, error) {
	if rng == nil {
		return nil, nil, fmt.Errorf("datagen: nil rng")
	}
	if m < 2 {
		return nil, nil, fmt.Errorf("datagen: m %d < 2", m)
	}
	if alpha < 0 || alpha >= 1 {
		return nil, nil, fmt.Errorf("datagen: alpha %v outside [0,1)", alpha)
	}
	if density <= 0 || density > 1 {
		return nil, nil, fmt.Errorf("datagen: density %v outside (0,1]", density)
	}
	k := int(density * float64(m-1))
	if k < 1 {
		k = 1
	}
	cells := make([]compat.Cell, 0, m*(k+1))
	// flipsTo[i] lists the observed symbols j whose column credits true
	// symbol i, i.e. the symbols i may be misread as.
	flipsTo := make([][]pattern.Symbol, m)
	for j := 0; j < m; j++ {
		obs := pattern.Symbol(j)
		cells = append(cells, compat.Cell{True: obs, Observed: obs, P: 1 - alpha})
		share := alpha / float64(k)
		chosen := make(map[int]bool, k)
		for len(chosen) < k {
			i := rng.Intn(m - 1)
			if i >= j {
				i++
			}
			if chosen[i] {
				continue
			}
			chosen[i] = true
			cells = append(cells, compat.Cell{True: pattern.Symbol(i), Observed: obs, P: share})
			flipsTo[i] = append(flipsTo[i], obs)
		}
	}
	c, err := compat.NewSparse(m, cells)
	if err != nil {
		return nil, nil, err
	}
	mut := func(d pattern.Symbol, r *rand.Rand) pattern.Symbol {
		targets := flipsTo[d]
		if len(targets) == 0 || r.Float64() >= alpha {
			return d
		}
		return targets[r.Intn(len(targets))]
	}
	return c, mut, nil
}

// ApplyMutator derives a test database by passing every symbol through mut.
func ApplyMutator(db *seqdb.MemDB, mut Mutator, rng *rand.Rand) (*seqdb.MemDB, error) {
	if mut == nil {
		return nil, fmt.Errorf("datagen: nil mutator")
	}
	return mutate(db, rng, func(d pattern.Symbol) pattern.Symbol { return mut(d, rng) })
}

// Uniform generates n sequences of exactly length l with symbols uniform
// over m, planting the given motifs with probability plantProb each — the
// Figure 15 synthetic data shape (100K sequences of 1000 symbols in the
// paper, scaled down for the benches).
func Uniform(n, l, m int, motifs []pattern.Pattern, plantProb float64, rng *rand.Rand) (*seqdb.MemDB, error) {
	if rng == nil {
		return nil, fmt.Errorf("datagen: nil rng")
	}
	if n < 1 || l < 1 || m < 1 {
		return nil, fmt.Errorf("datagen: bad shape n=%d l=%d m=%d", n, l, m)
	}
	db := seqdb.NewMemDB(nil)
	for i := 0; i < n; i++ {
		seq := make([]pattern.Symbol, l)
		for j := range seq {
			seq[j] = pattern.Symbol(rng.Intn(m))
		}
		for _, motif := range motifs {
			if motif.Len() > l || rng.Float64() >= plantProb {
				continue
			}
			pos := rng.Intn(l - motif.Len() + 1)
			for j, s := range motif {
				if !s.IsEternal() {
					seq[pos+j] = s
				}
			}
		}
		db.Append(seq)
	}
	return db, nil
}
