package datagen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/support"
)

func TestProteinShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := ProteinConfig{N: 50, M: 20, MinLen: 30, MaxLen: 60, NumMotifs: 2, MotifLen: 5, PlantProb: 0.5}
	db, motifs, err := Protein(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 50 {
		t.Fatalf("N=%d", db.Len())
	}
	if len(motifs) != 2 {
		t.Fatalf("motifs=%d", len(motifs))
	}
	if err := db.Validate(20); err != nil {
		t.Fatal(err)
	}
	st, err := seqdb.Describe(db)
	if err != nil {
		t.Fatal(err)
	}
	if st.MinLen < 30 || st.MaxLen > 60 {
		t.Errorf("length range [%d,%d] outside [30,60]", st.MinLen, st.MaxLen)
	}
}

func TestProteinPlantsMotifs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	motif := pattern.MustNew(0, 1, 2, 3, 4)
	cfg := ProteinConfig{N: 200, M: 20, MinLen: 40, MaxLen: 40, Motifs: []pattern.Pattern{motif}, PlantProb: 0.6}
	db, _, err := Protein(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := support.DB(db, []pattern.Pattern{motif})
	if err != nil {
		t.Fatal(err)
	}
	// Plant probability 0.6 plus occasional random occurrences.
	if sup[0] < 0.5 {
		t.Errorf("motif support %v, want >= 0.5", sup[0])
	}
}

func TestProteinGappedMotif(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	motif := pattern.MustNew(0, pattern.Eternal, 2)
	cfg := ProteinConfig{N: 100, M: 10, MinLen: 20, MaxLen: 20, Motifs: []pattern.Pattern{motif}, PlantProb: 1}
	db, _, err := Protein(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := support.DB(db, []pattern.Pattern{motif})
	if err != nil {
		t.Fatal(err)
	}
	if sup[0] != 1 {
		t.Errorf("gapped motif support %v, want 1", sup[0])
	}
}

func TestProteinValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []ProteinConfig{
		{N: 0, M: 20, MinLen: 5, MaxLen: 10},
		{N: 5, M: 1, MinLen: 5, MaxLen: 10},
		{N: 5, M: 20, MinLen: 0, MaxLen: 10},
		{N: 5, M: 20, MinLen: 10, MaxLen: 5},
		{N: 5, M: 20, MinLen: 5, MaxLen: 10, PlantProb: 1.5},
		{N: 5, M: 20, MinLen: 5, MaxLen: 10, NumMotifs: 1, MotifLen: 6},
		{N: 5, M: 20, MinLen: 5, MaxLen: 10, Motifs: []pattern.Pattern{{pattern.Eternal}}},
		{N: 5, M: 20, MinLen: 5, MaxLen: 10, Motifs: []pattern.Pattern{pattern.MustNew(0, 1, 2, 3, 4, 5)}},
	}
	for i, cfg := range bad {
		if _, _, err := Protein(cfg, rng); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
	if _, _, err := Protein(ProteinConfig{N: 1, M: 2, MinLen: 1, MaxLen: 1}, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestApplyUniformNoiseRate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, l, m = 100, 100, 20
	base := seqdb.NewMemDB(nil)
	for i := 0; i < n; i++ {
		s := make([]pattern.Symbol, l)
		for j := range s {
			s[j] = pattern.Symbol(rng.Intn(m))
		}
		base.Append(s)
	}
	const alpha = 0.3
	noisy, err := ApplyUniformNoise(base, m, alpha, rng)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Len() != base.Len() {
		t.Fatal("sequence count changed")
	}
	changed := 0
	for i := 0; i < n; i++ {
		a, b := base.Seq(i), noisy.Seq(i)
		if len(a) != len(b) {
			t.Fatal("sequence length changed")
		}
		for j := range a {
			if a[j] != b[j] {
				changed++
			}
		}
	}
	rate := float64(changed) / float64(n*l)
	if math.Abs(rate-alpha) > 0.03 {
		t.Errorf("observed substitution rate %v, want ≈%v", rate, alpha)
	}
	// Original untouched.
	if base.Seq(0)[0] != base.Seq(0)[0] {
		t.Error("base mutated")
	}
}

func TestApplyUniformNoiseZeroAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := seqdb.NewMemDB([][]pattern.Symbol{{1, 2, 3}})
	noisy, err := ApplyUniformNoise(base, 5, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for j, d := range noisy.Seq(0) {
		if d != base.Seq(0)[j] {
			t.Fatal("alpha=0 changed data")
		}
	}
}

func TestApplyUniformNoiseValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := seqdb.NewMemDB([][]pattern.Symbol{{1}})
	if _, err := ApplyUniformNoise(base, 5, -0.1, rng); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := ApplyUniformNoise(base, 5, 1, rng); err == nil {
		t.Error("alpha=1 accepted")
	}
	if _, err := ApplyUniformNoise(base, 1, 0.5, rng); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := ApplyUniformNoise(base, 5, 0.1, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestApplyChannelNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Deterministic channel: 0→1, 1→0, 2→2.
	sub := [][]float64{
		{0, 1, 0},
		{1, 0, 0},
		{0, 0, 1},
	}
	base := seqdb.NewMemDB([][]pattern.Symbol{{0, 1, 2, 0}})
	noisy, err := ApplyChannelNoise(base, sub, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := []pattern.Symbol{1, 0, 2, 1}
	for j, d := range noisy.Seq(0) {
		if d != want[j] {
			t.Fatalf("got %v, want %v", noisy.Seq(0), want)
		}
	}
}

func TestApplyChannelNoiseValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := seqdb.NewMemDB([][]pattern.Symbol{{0}})
	if _, err := ApplyChannelNoise(base, nil, rng); err == nil {
		t.Error("empty channel accepted")
	}
	if _, err := ApplyChannelNoise(base, [][]float64{{0.5}}, rng); err == nil {
		t.Error("non-stochastic row accepted")
	}
	if _, err := ApplyChannelNoise(base, [][]float64{{1, 0}, {1}}, rng); err == nil {
		t.Error("ragged channel accepted")
	}
}

func TestRandomMotifs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	motifs := RandomMotifs(3, 5, 20, rng)
	if len(motifs) != 3 {
		t.Fatalf("got %d motifs", len(motifs))
	}
	for _, m := range motifs {
		if m.Len() != 5 || m.K() != 5 {
			t.Errorf("motif %v wrong shape", m)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("invalid motif: %v", err)
		}
	}
	// Alphabet smaller than motif length: repeats allowed.
	small := RandomMotifs(1, 5, 3, rng)
	if small[0].Len() != 5 {
		t.Errorf("small-alphabet motif %v", small[0])
	}
}

func TestSparseNoiseStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const m = 50
	c, mut, err := SparseNoise(m, 0.2, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != m {
		t.Fatalf("Size=%d", c.Size())
	}
	// Each observed column: diagonal + k ≈ 0.1·49 = 4 entries.
	for j := pattern.Symbol(0); j < m; j++ {
		col := c.TrueGiven(j)
		if len(col) != 5 {
			t.Errorf("column %d has %d entries, want 5", j, len(col))
		}
		if c.C(j, j) != 0.8 {
			t.Errorf("diagonal C(%d,%d)=%v", j, j, c.C(j, j))
		}
	}
	// Mutator only produces symbols compatible with the original.
	for trial := 0; trial < 2000; trial++ {
		d := pattern.Symbol(rng.Intn(m))
		o := mut(d, rng)
		if c.C(d, o) == 0 {
			t.Fatalf("mutator produced incompatible flip %v→%v", d, o)
		}
	}
}

func TestSparseNoiseValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if _, _, err := SparseNoise(1, 0.1, 0.1, rng); err == nil {
		t.Error("m=1 accepted")
	}
	if _, _, err := SparseNoise(10, 1, 0.1, rng); err == nil {
		t.Error("alpha=1 accepted")
	}
	if _, _, err := SparseNoise(10, 0.1, 0, rng); err == nil {
		t.Error("density=0 accepted")
	}
	if _, _, err := SparseNoise(10, 0.1, 0.1, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestApplyMutator(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := seqdb.NewMemDB([][]pattern.Symbol{{0, 1, 2}})
	bump := func(d pattern.Symbol, _ *rand.Rand) pattern.Symbol { return d + 1 }
	noisy, err := ApplyMutator(base, bump, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := []pattern.Symbol{1, 2, 3}
	for j, d := range noisy.Seq(0) {
		if d != want[j] {
			t.Fatalf("got %v", noisy.Seq(0))
		}
	}
	if _, err := ApplyMutator(base, nil, rng); err == nil {
		t.Error("nil mutator accepted")
	}
}

func TestUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	motif := pattern.MustNew(0, 1, 2)
	db, err := Uniform(100, 50, 10, []pattern.Pattern{motif}, 0.7, rng)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 100 {
		t.Fatalf("N=%d", db.Len())
	}
	if err := db.Validate(10); err != nil {
		t.Fatal(err)
	}
	sup, err := support.DB(db, []pattern.Pattern{motif})
	if err != nil {
		t.Fatal(err)
	}
	if sup[0] < 0.6 {
		t.Errorf("motif support %v, want >= 0.6", sup[0])
	}
	if _, err := Uniform(0, 5, 5, nil, 0, rng); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Uniform(5, 5, 5, nil, 0, nil); err == nil {
		t.Error("nil rng accepted")
	}
}
