package oracle

import (
	"math"
	"testing"

	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/testutil"
)

func mustMatrix(t *testing.T, dense [][]float64) *compat.Matrix {
	t.Helper()
	c, err := compat.New(dense)
	if err != nil {
		t.Fatalf("matrix: %v", err)
	}
	return c
}

// testMatrix2 is a 2-symbol column-stochastic matrix with no zero cells:
// C(0,0)=0.9 C(1,0)=0.1, C(0,1)=0.2 C(1,1)=0.8.
func testMatrix2(t *testing.T) *compat.Matrix {
	return mustMatrix(t, [][]float64{{0.9, 0.2}, {0.1, 0.8}})
}

func TestSegmentHandComputed(t *testing.T) {
	c := testMatrix2(t)
	et := pattern.Eternal
	cases := []struct {
		name string
		p    pattern.Pattern
		seg  []pattern.Symbol
		want float64
	}{
		{"single-exact", pattern.MustNew(0), []pattern.Symbol{0}, 0.9},
		{"single-cross", pattern.MustNew(0), []pattern.Symbol{1}, 0.2},
		{"product", pattern.MustNew(0, 1), []pattern.Symbol{0, 1}, 0.9 * 0.8},
		{"eternal-skipped", pattern.MustNew(0, et, 1), []pattern.Symbol{1, 0, 1}, 0.2 * 0.8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Segment(c, tc.p, tc.seg); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Segment(%v, %v) = %v, want %v", tc.p, tc.seg, got, tc.want)
			}
		})
	}
}

func TestSegmentZeroFactorShortCircuits(t *testing.T) {
	// C(0,1) = 0: any segment aligning pattern symbol 0 with observed 1 is 0.
	c := mustMatrix(t, [][]float64{{0.9, 0}, {0.1, 1}})
	if got := Segment(c, pattern.MustNew(0, 1), []pattern.Symbol{1, 1}); got != 0 {
		t.Errorf("zero factor gave %v, want exactly 0", got)
	}
}

func TestSegmentIdentityIsExact(t *testing.T) {
	// Under the identity matrix a matching segment must be exactly 1.0 — no
	// log-space round trip may introduce an ulp of drift, or the support
	// degeneration (Claim in §3) breaks.
	id := compat.Identity(4)
	p := pattern.MustNew(1, pattern.Eternal, 3)
	if got := Segment(id, p, []pattern.Symbol{1, 0, 3}); got != 1.0 {
		t.Errorf("identity match = %v, want exactly 1", got)
	}
	if got := Segment(id, p, []pattern.Symbol{1, 0, 2}); got != 0 {
		t.Errorf("identity mismatch = %v, want exactly 0", got)
	}
}

func TestSegmentLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Segment(testMatrix2(t), pattern.MustNew(0, 1), []pattern.Symbol{0})
}

func TestSequenceHandComputed(t *testing.T) {
	c := testMatrix2(t)
	p := pattern.MustNew(0, 1)
	// Windows of {1,0,1}: {1,0} -> 0.2*0.1 = 0.02; {0,1} -> 0.9*0.8 = 0.72.
	if got, want := Sequence(c, p, []pattern.Symbol{1, 0, 1}), 0.72; math.Abs(got-want) > 1e-12 {
		t.Errorf("Sequence = %v, want %v", got, want)
	}
	if got := Sequence(c, p, []pattern.Symbol{0}); got != 0 {
		t.Errorf("sequence shorter than pattern gave %v, want 0", got)
	}
	if got := Sequence(c, nil, []pattern.Symbol{0, 1}); got != 0 {
		t.Errorf("empty pattern gave %v, want 0", got)
	}
}

func TestDBMatchAverage(t *testing.T) {
	c := testMatrix2(t)
	p := pattern.MustNew(0)
	db := [][]pattern.Symbol{{0}, {1}}
	if got, want := DBMatch(c, p, db), (0.9+0.2)/2; math.Abs(got-want) > 1e-12 {
		t.Errorf("DBMatch = %v, want %v", got, want)
	}
	if got := DBMatch(c, p, nil); got != 0 {
		t.Errorf("empty DB gave %v, want 0", got)
	}
}

func TestOccursAndDBSupport(t *testing.T) {
	et := pattern.Eternal
	p := pattern.MustNew(0, et, 1)
	if !Occurs(p, []pattern.Symbol{2, 0, 2, 1, 2}) {
		t.Error("occurrence at offset 1 missed")
	}
	if Occurs(p, []pattern.Symbol{0, 1, 0}) {
		t.Error("false occurrence (gap position must be free, ends must align)")
	}
	if Occurs(p, []pattern.Symbol{0, 1}) {
		t.Error("occurrence in a too-short sequence")
	}
	db := [][]pattern.Symbol{{0, 2, 1}, {1, 0, 2}, {0, 0, 1}}
	if got, want := DBSupport(p, db), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("DBSupport = %v, want %v", got, want)
	}
}

func TestEnumerateSmallSpace(t *testing.T) {
	// m=2, maxLen=3, maxGap=1: lengths 1 (2), 2 (4), 3 fully concrete (8),
	// 3 with one internal gap (4) = 18 patterns.
	space := Enumerate(2, 3, 1)
	if len(space) != 18 {
		t.Fatalf("enumerated %d patterns, want 18: %v", len(space), space)
	}
}

func TestEnumerateValidityAndUniqueness(t *testing.T) {
	const m, maxLen, maxGap = 3, 4, 2
	space := Enumerate(m, maxLen, maxGap)
	seen := make(map[string]bool, len(space))
	for _, p := range space {
		if seen[p.Key()] {
			t.Fatalf("duplicate pattern %v", p)
		}
		seen[p.Key()] = true
		if len(p) == 0 || len(p) > maxLen {
			t.Fatalf("pattern %v violates length bound", p)
		}
		if p[0].IsEternal() || p[len(p)-1].IsEternal() {
			t.Fatalf("pattern %v has a leading or trailing eternal symbol", p)
		}
		if maxEternalRun(p) > maxGap {
			t.Fatalf("pattern %v violates gap bound", p)
		}
	}
	// Spot-check membership of boundary shapes.
	for _, want := range []pattern.Pattern{
		pattern.MustNew(2),
		pattern.MustNew(0, pattern.Eternal, pattern.Eternal, 1),
		pattern.MustNew(2, 2, 2, 2),
	} {
		if !seen[want.Key()] {
			t.Errorf("space is missing %v", want)
		}
	}
}

// TestOracleAgreesWithMatchKernels cross-checks the log-space oracle against
// internal/match's direct-product implementations (the interpreted Sequence,
// the Measure interface, and the compiled matcher) on random inputs.
func TestOracleAgreesWithMatchKernels(t *testing.T) {
	rng := testutil.Rng(t)
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(5)
		c := randomMatrix(rng, m)
		space := Enumerate(m, 4, 2)
		p := space[rng.Intn(len(space))]
		seq := make([]pattern.Symbol, rng.Intn(16))
		for i := range seq {
			seq[i] = pattern.Symbol(rng.Intn(m))
		}
		want := Sequence(c, p, seq)
		if got := match.Sequence(c, p, seq); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: match.Sequence(%v, %v) = %v, oracle %v", trial, p, seq, got, want)
		}
		if got := match.NewMatch(c).Value(p, seq); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Match.Value(%v, %v) = %v, oracle %v", trial, p, seq, got, want)
		}
		cp, err := match.Compile(c, p)
		if err != nil {
			t.Fatalf("trial %d: compile %v: %v", trial, p, err)
		}
		if got := cp.Match(seq); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Compiled.Match(%v, %v) = %v, oracle %v", trial, p, seq, got, want)
		}
	}
}
