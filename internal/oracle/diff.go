// The seeded differential driver: generates small random compatibility
// matrices and databases, mines them with every engine in the repo, and
// cross-checks the resulting frequent sets against the brute-force oracle.
// On a mismatch it reports the failing seed and greedily minimizes the
// database to the smallest instance that still diverges, so a conformance
// failure arrives as a ready-to-paste repro.
package oracle

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/maxminer"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/shardrpc"
	"repro/internal/stream"
	"repro/internal/support"
)

// BoundaryTol is the dead band around the significance threshold inside
// which set membership is not compared: the oracle's log-space accumulation
// and the engines' direct products legitimately differ in the last few ulps,
// so a pattern whose true value sits within BoundaryTol of min_match may
// land on either side without indicating a bug. Everywhere else agreement is
// required exactly.
const BoundaryTol = 1e-9

// Case is one differential test instance: a compatibility matrix, a small
// database, and the mining parameters, all derived deterministically from
// Seed. Every engine is configured with a full-database sample
// (SampleSize = len(DB)), which removes sampling uncertainty: Phase 2's
// estimates become exact, every ambiguous pattern is probed against the
// database, and the final frequent set of a correct pipeline equals the
// oracle's brute-force set (Claims 4.1/4.2 promise exactly this).
type Case struct {
	Seed     int64
	C        *compat.Matrix
	DB       [][]pattern.Symbol
	MinMatch float64
	Delta    float64
	MaxLen   int
	MaxGap   int
	// MemBudget is Phase 3's per-scan counter budget; small values force
	// multi-scan border collapsing, which is exactly the machinery worth
	// stressing.
	MemBudget int
}

// clone deep-copies the case (the minimizer mutates DB).
func (cs *Case) clone() *Case {
	dup := *cs
	dup.DB = make([][]pattern.Symbol, len(cs.DB))
	for i, seq := range cs.DB {
		dup.DB[i] = append([]pattern.Symbol(nil), seq...)
	}
	return &dup
}

// GenCase derives a differential test case from a seed. The matrix family
// rotates through identity (the support degeneration), uniform noise (§5.1),
// and random column-stochastic matrices with and without zero cells; the
// database plants a motif in about half the sequences so several lattice
// levels stay alive. Alphabet size shrinks as MaxLen grows to keep the
// brute-force space tractable.
func GenCase(seed int64) *Case {
	rng := rand.New(rand.NewSource(seed))
	maxLen := 3 + rng.Intn(3)
	var m int
	switch maxLen {
	case 3:
		m = 3 + rng.Intn(4)
	case 4:
		m = 3 + rng.Intn(3)
	default:
		m = 3 + rng.Intn(2)
	}
	maxGap := rng.Intn(3)
	if maxLen == 5 {
		maxGap = rng.Intn(2)
	}
	c := randomMatrix(rng, m)

	n := 4 + rng.Intn(13)
	db := make([][]pattern.Symbol, n)
	motif := make([]pattern.Symbol, 2+rng.Intn(maxLen-1))
	for i := range motif {
		motif[i] = pattern.Symbol(rng.Intn(m))
	}
	for i := range db {
		l := 3 + rng.Intn(12)
		seq := make([]pattern.Symbol, l)
		for j := range seq {
			seq[j] = pattern.Symbol(rng.Intn(m))
		}
		if l >= len(motif) && rng.Float64() < 0.5 {
			copy(seq[rng.Intn(l-len(motif)+1):], motif)
		}
		db[i] = seq
	}
	deltas := []float64{1e-4, 0.05, 0.2}
	return &Case{
		Seed:      seed,
		C:         c,
		DB:        db,
		MinMatch:  0.15 + 0.45*rng.Float64(),
		Delta:     deltas[rng.Intn(len(deltas))],
		MaxLen:    maxLen,
		MaxGap:    maxGap,
		MemBudget: 1 + rng.Intn(8),
	}
}

// randomMatrix picks a matrix family for the case.
func randomMatrix(rng *rand.Rand, m int) *compat.Matrix {
	switch rng.Intn(4) {
	case 0:
		return compat.Identity(m)
	case 1:
		c, err := compat.UniformNoise(m, 0.05+0.4*rng.Float64())
		if err != nil {
			panic(err) // unreachable: alpha in [0.05, 0.45), m >= 2
		}
		return c
	default:
		zeroRate := 0.0
		if rng.Intn(2) == 0 {
			zeroRate = 0.4
		}
		dense := make([][]float64, m)
		for i := range dense {
			dense[i] = make([]float64, m)
		}
		for j := 0; j < m; j++ {
			sum := 0.0
			for i := 0; i < m; i++ {
				v := rng.Float64()
				if rng.Float64() < zeroRate {
					v = 0
				}
				dense[i][j] = v
				sum += v
			}
			if sum == 0 {
				dense[j][j] = 1
				sum = 1
			}
			for i := 0; i < m; i++ {
				dense[i][j] /= sum
			}
		}
		c, err := compat.New(dense)
		if err != nil {
			panic(err) // unreachable: columns normalized above
		}
		return c
	}
}

// RefKind selects which oracle an engine's output is compared against.
type RefKind int

const (
	// RefMatch compares against FrequentMatch (the match measure).
	RefMatch RefKind = iota
	// RefSupport compares against FrequentSupport (the support measure).
	RefSupport
)

// Engine is one system under differential test: it mines a case and returns
// the frequent set within the case's bounded pattern space. An error return
// is itself a conformance failure (every generated case is valid input).
type Engine struct {
	Name string
	Ref  RefKind
	Mine func(cs *Case) (*pattern.Set, error)
}

func caseOpts(cs *Case) miner.Options {
	return miner.Options{MaxLen: cs.MaxLen, MaxGap: cs.MaxGap}
}

func caseRng(cs *Case) *rand.Rand {
	return rand.New(rand.NewSource(cs.Seed ^ 0x5eed))
}

// MineEngine wraps the full three-phase pipeline with the given finalizer,
// Phase 2 kernel, and worker count. For the implicit finalizer — whose
// frequent set is the downward closure of its border and may legitimately
// contain gapped patterns outside the truncated candidate space — every
// member is first verified frequent by the oracle, then the set is
// restricted to the case's space for the equality comparison.
func MineEngine(fin core.Finalizer, kernel core.Phase2Kernel, workers int) Engine {
	name := fmt.Sprintf("core.Mine/%s/%s/workers=%d", fin, kernel, workers)
	return Engine{Name: name, Ref: RefMatch, Mine: func(cs *Case) (*pattern.Set, error) {
		cfg := core.Config{
			MinMatch:     cs.MinMatch,
			Delta:        cs.Delta,
			SampleSize:   len(cs.DB),
			MaxLen:       cs.MaxLen,
			MaxGap:       cs.MaxGap,
			MemBudget:    cs.MemBudget,
			Finalizer:    fin,
			Workers:      workers,
			Phase2Kernel: kernel,
			Rng:          caseRng(cs),
		}
		res, err := core.Mine(seqdb.NewMemDB(cs.DB), cs.C, cfg)
		if err != nil {
			return nil, err
		}
		if fin == core.BorderCollapsingImplicit {
			return implicitInSpace(cs, res.Frequent)
		}
		return res.Frequent, nil
	}}
}

// MineEngineSharded is MineEngine with Phase 3 probe scans scattered over
// shards database shards (the structure-of-arrays scatter-gather path). The
// mined frequent set must be identical to every other engine's: sharding is
// purely an execution layout.
func MineEngineSharded(fin core.Finalizer, kernel core.Phase2Kernel, workers, shards int) Engine {
	base := MineEngine(fin, kernel, workers)
	name := fmt.Sprintf("%s/shards=%d", base.Name, shards)
	return Engine{Name: name, Ref: RefMatch, Mine: func(cs *Case) (*pattern.Set, error) {
		cfg := core.Config{
			MinMatch:     cs.MinMatch,
			Delta:        cs.Delta,
			SampleSize:   len(cs.DB),
			MaxLen:       cs.MaxLen,
			MaxGap:       cs.MaxGap,
			MemBudget:    cs.MemBudget,
			Finalizer:    fin,
			Workers:      workers,
			Phase3Shards: shards,
			Phase2Kernel: kernel,
			Rng:          caseRng(cs),
		}
		res, err := core.Mine(seqdb.NewMemDB(cs.DB), cs.C, cfg)
		if err != nil {
			return nil, err
		}
		if fin == core.BorderCollapsingImplicit {
			return implicitInSpace(cs, res.Frequent)
		}
		return res.Frequent, nil
	}}
}

// MineGrowthEngine is MineEngine with Phase 2 run by the depth-first
// pattern-growth engine instead of the breadth-first candidate miner. The
// engines must agree exactly — growth replicates the level-wise labels
// bit-for-bit — so the frequent set must equal every other engine's.
func MineGrowthEngine(fin core.Finalizer, kernel core.Phase2Kernel, workers int) Engine {
	name := fmt.Sprintf("core.Mine/growth/%s/%s/workers=%d", fin, kernel, workers)
	return Engine{Name: name, Ref: RefMatch, Mine: func(cs *Case) (*pattern.Set, error) {
		cfg := core.Config{
			MinMatch:     cs.MinMatch,
			Delta:        cs.Delta,
			SampleSize:   len(cs.DB),
			MaxLen:       cs.MaxLen,
			MaxGap:       cs.MaxGap,
			MemBudget:    cs.MemBudget,
			Finalizer:    fin,
			Workers:      workers,
			Phase2Kernel: kernel,
			Phase2Engine: core.Phase2Growth,
			Rng:          caseRng(cs),
		}
		res, err := core.Mine(seqdb.NewMemDB(cs.DB), cs.C, cfg)
		if err != nil {
			return nil, err
		}
		if fin == core.BorderCollapsingImplicit {
			return implicitInSpace(cs, res.Frequent)
		}
		return res.Frequent, nil
	}}
}

// RemoteShardEngine is MineEngineSharded with the probe scans served by
// remote shard workers over the in-process RPC harness: nodes servers each
// opening the case's full database, the coordinator pool scattering the
// shards across them over the wire (matrix and patterns marshaled to JSON,
// per-block partial sums marshaled back). Distribution is purely an
// execution layout — the frequent set must equal every other engine's,
// which also pins the protocol's float64 round-trip to bit-exactness.
func RemoteShardEngine(fin core.Finalizer, kernel core.Phase2Kernel, nodes, shards int) Engine {
	name := fmt.Sprintf("core.Mine/%s/%s/remote nodes=%d shards=%d", fin, kernel, nodes, shards)
	return Engine{Name: name, Ref: RefMatch, Mine: func(cs *Case) (*pattern.Set, error) {
		h := shardrpc.NewHarness(nodes, "battery-token", func() (seqdb.Scanner, error) {
			return seqdb.NewMemDB(cs.DB), nil
		})
		pool := h.Pool(shardrpc.RetryPolicy{})
		cfg := core.Config{
			MinMatch:     cs.MinMatch,
			Delta:        cs.Delta,
			SampleSize:   len(cs.DB),
			MaxLen:       cs.MaxLen,
			MaxGap:       cs.MaxGap,
			MemBudget:    cs.MemBudget,
			Finalizer:    fin,
			Phase2Kernel: kernel,
			Rng:          caseRng(cs),
			ProbeValuer: func(ctx context.Context, db seqdb.Scanner, c compat.Source) miner.Valuer {
				return miner.RemoteShardValuerContext(ctx, seqdb.ShardedView(db, shards), pool, c, 0, nil)
			},
		}
		res, err := core.Mine(seqdb.NewMemDB(cs.DB), cs.C, cfg)
		if err != nil {
			return nil, err
		}
		if fin == core.BorderCollapsingImplicit {
			return implicitInSpace(cs, res.Frequent)
		}
		return res.Frequent, nil
	}}
}

// StreamEngine feeds the case's database through the incremental streaming
// pipeline in batch-sequence batches over an append-only log, advancing the
// stream after each batch, and returns the final frequent set. With the
// case's full-window sample the stream's final result must equal the batch
// pipeline's — and hence the oracle's — for every batch size, worker count
// and kernel: replay is purely an execution layout.
func StreamEngine(kernel stream.Kernel, workers, batch int) Engine {
	kname := "incremental"
	if kernel == stream.KernelNaive {
		kname = "naive"
	}
	name := fmt.Sprintf("stream.Advance/%s/workers=%d/batch=%d", kname, workers, batch)
	return Engine{Name: name, Ref: RefMatch, Mine: func(cs *Case) (*pattern.Set, error) {
		dir, err := os.MkdirTemp("", "lspstream")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		log, err := seqdb.CreateAppend(filepath.Join(dir, "log.lsa"))
		if err != nil {
			return nil, err
		}
		defer log.Close()
		s, err := stream.New(log, stream.Config{
			C:          cs.C,
			MinMatch:   cs.MinMatch,
			Delta:      cs.Delta,
			SampleSize: len(cs.DB),
			MaxLen:     cs.MaxLen,
			MaxGap:     cs.MaxGap,
			MemBudget:  cs.MemBudget,
			Workers:    workers,
			Kernel:     kernel,
			Seed:       cs.Seed,
		})
		if err != nil {
			return nil, err
		}
		var res *stream.Result
		for lo := 0; lo < len(cs.DB); lo += batch {
			hi := lo + batch
			if hi > len(cs.DB) {
				hi = len(cs.DB)
			}
			for _, seq := range cs.DB[lo:hi] {
				if _, err := log.Append(seq); err != nil {
					return nil, err
				}
			}
			if res, err = s.Advance(context.Background()); err != nil {
				return nil, err
			}
		}
		return res.Frequent, nil
	}}
}

// implicitInSpace checks that every member of the implicit finalizer's
// closure is genuinely frequent per the oracle, then restricts the set to
// the case's gap-bounded space so it is comparable to the other engines.
func implicitInSpace(cs *Case, frequent *pattern.Set) (*pattern.Set, error) {
	inSpace := pattern.NewSet()
	var bad error
	frequent.ForEach(func(p pattern.Pattern) bool {
		v := DBMatch(cs.C, p, cs.DB)
		if v < cs.MinMatch-BoundaryTol {
			bad = fmt.Errorf("closure member %v has oracle match %v < min_match %v", p, v, cs.MinMatch)
			return false
		}
		if maxEternalRun(p) <= cs.MaxGap && p.Len() <= cs.MaxLen {
			inSpace.Add(p)
		}
		return true
	})
	return inSpace, bad
}

// ExhaustiveEngine is the deterministic one-scan-per-level reference miner.
func ExhaustiveEngine() Engine {
	return Engine{Name: "miner.Exhaustive/match", Ref: RefMatch, Mine: func(cs *Case) (*pattern.Set, error) {
		res, err := core.Exhaustive(seqdb.NewMemDB(cs.DB), cs.C, cs.MinMatch, caseOpts(cs))
		if err != nil {
			return nil, err
		}
		return res.Frequent, nil
	}}
}

// MaxMinerEngine is the §5.6 look-ahead baseline.
func MaxMinerEngine() Engine {
	return Engine{Name: "maxminer.Mine", Ref: RefMatch, Mine: func(cs *Case) (*pattern.Set, error) {
		db := seqdb.NewMemDB(cs.DB)
		res, err := maxminer.Mine(cs.C.Size(), miner.MatchDBValuer(db, cs.C), cs.MinMatch, caseOpts(cs))
		if err != nil {
			return nil, err
		}
		return res.Frequent, nil
	}}
}

// SupportSweepEngine is the occurrence-driven support miner.
func SupportSweepEngine() Engine {
	return Engine{Name: "support.MineBySweep", Ref: RefSupport, Mine: func(cs *Case) (*pattern.Set, error) {
		set, _, err := support.MineBySweep(seqdb.NewMemDB(cs.DB), cs.MinMatch, cs.MaxLen, cs.MaxGap)
		return set, err
	}}
}

// SupportExhaustiveEngine is the candidate-driven support miner.
func SupportExhaustiveEngine() Engine {
	return Engine{Name: "miner.Exhaustive/support", Ref: RefSupport, Mine: func(cs *Case) (*pattern.Set, error) {
		res, err := core.ExhaustiveSupport(seqdb.NewMemDB(cs.DB), cs.MinMatch, cs.C.Size(), caseOpts(cs))
		if err != nil {
			return nil, err
		}
		return res.Frequent, nil
	}}
}

// Battery returns the standard cross-check battery: the full pipeline under
// both Phase 2 kernels, several worker counts, sharded and remote-worker
// Phase 3 probe scans, all three resolving finalizers, the exhaustive
// miner, Max-Miner, and both support miners.
func Battery() []Engine {
	return []Engine{
		MineEngine(core.BorderCollapsing, core.KernelIncremental, 0),
		MineEngine(core.BorderCollapsing, core.KernelIncremental, 3),
		MineEngine(core.BorderCollapsing, core.KernelNaive, 2),
		MineEngine(core.LevelWise, core.KernelIncremental, 2),
		MineEngine(core.BorderCollapsingImplicit, core.KernelNaive, 0),
		MineEngineSharded(core.BorderCollapsing, core.KernelIncremental, 0, 4),
		MineEngineSharded(core.BorderCollapsing, core.KernelIncremental, 2, 3),
		MineEngineSharded(core.BorderCollapsingImplicit, core.KernelIncremental, 0, 2),
		MineGrowthEngine(core.BorderCollapsing, core.KernelIncremental, 0),
		MineGrowthEngine(core.BorderCollapsing, core.KernelIncremental, 3),
		MineGrowthEngine(core.BorderCollapsing, core.KernelNaive, 2),
		MineGrowthEngine(core.LevelWise, core.KernelIncremental, 2),
		RemoteShardEngine(core.BorderCollapsing, core.KernelIncremental, 2, 3),
		StreamEngine(stream.KernelIncremental, 0, 1),
		StreamEngine(stream.KernelIncremental, 3, 4),
		StreamEngine(stream.KernelNaive, 2, 3),
		ExhaustiveEngine(),
		MaxMinerEngine(),
		SupportSweepEngine(),
		SupportExhaustiveEngine(),
	}
}

// Divergence is one conformance failure: the engine whose output disagreed
// with the oracle, the seed that produced it, and a minimized reproduction.
type Divergence struct {
	Seed   int64
	Engine string
	// Err is set when the engine failed outright instead of diverging.
	Err error
	// Missing are oracle-frequent patterns the engine dropped; Extra are
	// engine-frequent patterns the oracle rejects. Values index their oracle
	// values by Pattern.Key.
	Missing, Extra []pattern.Pattern
	Values         map[string]float64
	// Case is the minimized reproduction; Original the full generated case.
	Case, Original *Case
}

// String renders a complete repro: seed, parameters, matrix, database, and
// the disagreeing patterns with their oracle values.
func (d *Divergence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DIVERGENCE seed=%d engine=%s\n", d.Seed, d.Engine)
	cs := d.Case
	if cs == nil {
		cs = d.Original
	}
	if d.Err != nil {
		fmt.Fprintf(&b, "  engine error: %v\n", d.Err)
	}
	if cs != nil {
		fmt.Fprintf(&b, "  min_match=%.9g delta=%g max_len=%d max_gap=%d mem_budget=%d n=%d\n",
			cs.MinMatch, cs.Delta, cs.MaxLen, cs.MaxGap, cs.MemBudget, len(cs.DB))
		var mat bytes.Buffer
		if _, err := cs.C.WriteTo(&mat); err == nil {
			for _, line := range strings.Split(strings.TrimRight(mat.String(), "\n"), "\n") {
				fmt.Fprintf(&b, "  %s\n", line)
			}
		}
		for i, seq := range cs.DB {
			fmt.Fprintf(&b, "  seq %d: %v\n", i, seq)
		}
	}
	for _, p := range d.Missing {
		fmt.Fprintf(&b, "  missing %v (oracle value %.12g)\n", p, d.Values[p.Key()])
	}
	for _, p := range d.Extra {
		fmt.Fprintf(&b, "  extra %v (oracle value %.12g)\n", p, d.Values[p.Key()])
	}
	fmt.Fprintf(&b, "  reproduce: go run ./cmd/lspverify -seed %d\n", d.Seed)
	return b.String()
}

// CheckCase cross-checks every engine against the oracle on one case,
// returning the first divergence (nil if all agree). Patterns whose oracle
// value lies within BoundaryTol of the threshold are exempt from the
// comparison (see BoundaryTol).
func CheckCase(cs *Case, engines []Engine) *Divergence {
	var matchSet, supSet *pattern.Set
	var matchVals, supVals map[string]float64
	for _, e := range engines {
		var want *pattern.Set
		var vals map[string]float64
		switch e.Ref {
		case RefSupport:
			if supSet == nil {
				supSet, supVals = FrequentSupport(cs.C.Size(), cs.DB, cs.MinMatch, cs.MaxLen, cs.MaxGap)
			}
			want, vals = supSet, supVals
		default:
			if matchSet == nil {
				matchSet, matchVals = FrequentMatch(cs.C, cs.DB, cs.MinMatch, cs.MaxLen, cs.MaxGap)
			}
			want, vals = matchSet, matchVals
		}
		got, err := e.Mine(cs)
		if err != nil {
			return &Divergence{Seed: cs.Seed, Engine: e.Name, Err: err, Case: cs, Values: vals}
		}
		missing, extra := diffSets(cs, e.Ref, got, want, vals)
		if len(missing)+len(extra) > 0 {
			return &Divergence{
				Seed: cs.Seed, Engine: e.Name,
				Missing: missing, Extra: extra,
				Values: vals, Case: cs,
			}
		}
	}
	return nil
}

// diffSets compares an engine's frequent set to the oracle's, exempting
// threshold-boundary patterns. Extra patterns outside the enumerated space
// are valued directly.
func diffSets(cs *Case, ref RefKind, got, want *pattern.Set, vals map[string]float64) (missing, extra []pattern.Pattern) {
	boundary := func(v float64) bool { return math.Abs(v-cs.MinMatch) <= BoundaryTol }
	want.ForEach(func(p pattern.Pattern) bool {
		if !got.Contains(p) && !boundary(vals[p.Key()]) {
			missing = append(missing, p)
		}
		return true
	})
	got.ForEach(func(p pattern.Pattern) bool {
		if want.Contains(p) {
			return true
		}
		v, ok := vals[p.Key()]
		if !ok {
			if ref == RefSupport {
				v = DBSupport(p, cs.DB)
			} else {
				v = DBMatch(cs.C, p, cs.DB)
			}
			vals[p.Key()] = v
		}
		if !boundary(v) {
			extra = append(extra, p)
		}
		return true
	})
	sortPatterns(missing)
	sortPatterns(extra)
	return missing, extra
}

func sortPatterns(ps []pattern.Pattern) {
	sort.Slice(ps, func(a, b int) bool { return ps[a].Key() < ps[b].Key() })
}

// CheckSeed generates the case for a seed, cross-checks it, and on failure
// minimizes the database against the failing engine before returning the
// divergence (nil if the seed passes).
func CheckSeed(seed int64, engines []Engine) *Divergence {
	cs := GenCase(seed)
	d := CheckCase(cs, engines)
	if d == nil {
		return nil
	}
	d.Original = cs
	if culprit := engineByName(engines, d.Engine); culprit != nil {
		min := Minimize(cs, []Engine{*culprit})
		if dm := CheckCase(min, []Engine{*culprit}); dm != nil {
			dm.Seed = seed
			dm.Original = cs
			return dm
		}
	}
	return d
}

func engineByName(engines []Engine, name string) *Engine {
	for i := range engines {
		if engines[i].Name == name {
			return &engines[i]
		}
	}
	return nil
}

// Minimize greedily shrinks a diverging case while the divergence (against
// the given engines) persists: whole sequences are dropped first, then
// sequences are truncated from the tail, to a fixpoint. The returned case
// still diverges and is typically a handful of short sequences.
func Minimize(cs *Case, engines []Engine) *Case {
	diverges := func(c *Case) bool { return CheckCase(c, engines) != nil }
	cur := cs.clone()
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.DB) && len(cur.DB) > 1; i++ {
			trial := cur.clone()
			trial.DB = append(trial.DB[:i], trial.DB[i+1:]...)
			if diverges(trial) {
				cur = trial
				changed = true
				i--
			}
		}
		for i := range cur.DB {
			for len(cur.DB[i]) > 1 {
				trial := cur.clone()
				trial.DB[i] = trial.DB[i][:len(trial.DB[i])-1]
				if !diverges(trial) {
					break
				}
				cur = trial
				changed = true
			}
		}
	}
	return cur
}

// maxEternalRun returns the longest run of eternal symbols in p.
func maxEternalRun(p pattern.Pattern) int {
	run, longest := 0, 0
	for _, s := range p {
		if s.IsEternal() {
			run++
			if run > longest {
				longest = run
			}
		} else {
			run = 0
		}
	}
	return longest
}

// CommittedSeeds is the regression corpus: the seeds every lspverify run
// replays before any fresh ones. The range covers every matrix family,
// finalizer, and kernel combination GenCase rotates through.
var CommittedSeeds = func() []int64 {
	seeds := make([]int64, 32)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}()

// VerifyOptions parameterizes a corpus run.
type VerifyOptions struct {
	// Seeds are the cases to run.
	Seeds []int64
	// Engines is the battery (nil = Battery()).
	Engines []Engine
	// Properties additionally runs the metamorphic harness per seed.
	Properties bool
	// Verbose prints one line per passing seed.
	Verbose bool
}

// Verify runs the corpus and prints every divergence to w, returning the
// number of failing seeds (0 = full conformance).
func Verify(w io.Writer, opt VerifyOptions) int {
	engines := opt.Engines
	if engines == nil {
		engines = Battery()
	}
	failures := 0
	for _, seed := range opt.Seeds {
		if opt.Properties {
			if err := CheckProperties(GenCase(seed)); err != nil {
				failures++
				fmt.Fprintf(w, "PROPERTY VIOLATION seed=%d: %v\n", seed, err)
				continue
			}
		}
		if d := CheckSeed(seed, engines); d != nil {
			failures++
			fmt.Fprint(w, d.String())
		} else if opt.Verbose {
			fmt.Fprintf(w, "ok seed=%d (%d engines)\n", seed, len(engines))
		}
	}
	fmt.Fprintf(w, "lspverify: %d seeds, %d engines, %d failures\n", len(opt.Seeds), len(engines), failures)
	return failures
}
