// Package oracle is the conformance reference for the whole mining stack: a
// deliberately naive implementation of the paper's match model (Definitions
// 3.5–3.7), of the classic support model, and of exhaustive frequent-pattern
// enumeration, written straight from the definitions. It shares no code with
// internal/match, internal/support, or any mining engine, so a bug in an
// optimized path cannot cancel against the same bug here.
//
// Two deliberate implementation differences keep the oracle independent of
// the code it checks:
//
//   - Products are accumulated in log space (a sum of math.Log terms folded
//     back through math.Exp), a different floating-point evaluation order
//     than the optimized kernels' running products. Agreement is therefore
//     asserted within a tolerance, never bitwise — see BoundaryTol in the
//     differential driver for how threshold comparisons stay meaningful.
//   - There is no pruning of any kind: no early termination, no first-symbol
//     filters, no sparse shortcuts, no candidate generation. Every window of
//     every sequence is evaluated for every pattern of the bounded space.
//
// The package also hosts the metamorphic property harness (properties.go)
// and the seeded differential driver (diff.go) that cross-check the real
// engines against this reference; cmd/lspverify runs the corpus in CI.
package oracle

import (
	"math"

	"repro/internal/compat"
	"repro/internal/pattern"
)

// Segment computes M(P,s) for a segment s of exactly the pattern's length
// (Definition 3.5): the product over non-eternal positions of C(d_i, s_i),
// accumulated in log space. Eternal positions contribute factor 1. It panics
// if the lengths differ, mirroring the definition's precondition.
func Segment(c compat.Source, p pattern.Pattern, seg []pattern.Symbol) float64 {
	if len(p) != len(seg) {
		panic("oracle: segment length differs from pattern length")
	}
	logProd := 0.0
	for i, d := range p {
		if d.IsEternal() {
			continue
		}
		v := c.C(d, seg[i])
		if v == 0 {
			return 0
		}
		logProd += math.Log(v)
	}
	if logProd == 0 {
		return 1 // every factor was exactly 1; keep the identity case exact
	}
	return math.Exp(logProd)
}

// Sequence computes M(P,S) (Definition 3.6): the maximum of Segment over
// every window of seq of the pattern's length, 0 when the sequence is
// shorter than the pattern. Every window is evaluated in full.
func Sequence(c compat.Source, p pattern.Pattern, seq []pattern.Symbol) float64 {
	l := len(p)
	if l == 0 || len(seq) < l {
		return 0
	}
	best := 0.0
	for i := 0; i+l <= len(seq); i++ {
		if v := Segment(c, p, seq[i:i+l]); v > best {
			best = v
		}
	}
	return best
}

// DBMatch computes the database match (Definition 3.7): the average of
// Sequence over every sequence of db. An empty database yields 0.
func DBMatch(c compat.Source, p pattern.Pattern, db [][]pattern.Symbol) float64 {
	if len(db) == 0 {
		return 0
	}
	sum := 0.0
	for _, seq := range db {
		sum += Sequence(c, p, seq)
	}
	return sum / float64(len(db))
}

// Occurs reports whether some window of seq matches p exactly, with eternal
// positions matching any symbol — the classic support model's containment
// test, reimplemented here independently of internal/support.
func Occurs(p pattern.Pattern, seq []pattern.Symbol) bool {
	l := len(p)
	if l == 0 || len(seq) < l {
		return false
	}
	for i := 0; i+l <= len(seq); i++ {
		hit := true
		for j, d := range p {
			if !d.IsEternal() && seq[i+j] != d {
				hit = false
				break
			}
		}
		if hit {
			return true
		}
	}
	return false
}

// DBSupport computes the fraction of sequences containing p.
func DBSupport(p pattern.Pattern, db [][]pattern.Symbol) float64 {
	if len(db) == 0 {
		return 0
	}
	n := 0
	for _, seq := range db {
		if Occurs(p, seq) {
			n++
		}
	}
	return float64(n) / float64(len(db))
}

// Enumerate lists every valid pattern (Definition 3.2: non-empty, no leading
// or trailing eternal position) over m symbols with total length at most
// maxLen and internal eternal runs at most maxGap — the exact pattern space
// the bounded miners explore. The order is deterministic (depth-first by
// symbol, then by gap).
func Enumerate(m, maxLen, maxGap int) []pattern.Pattern {
	var out []pattern.Pattern
	var cur pattern.Pattern
	var rec func(gapRun int)
	rec = func(gapRun int) {
		if len(cur) > 0 && !cur[len(cur)-1].IsEternal() {
			out = append(out, cur.Clone())
		}
		if len(cur) >= maxLen {
			return
		}
		for d := 0; d < m; d++ {
			cur = append(cur, pattern.Symbol(d))
			rec(0)
			cur = cur[:len(cur)-1]
		}
		// A gap may only continue a started pattern and must leave room for
		// a closing concrete symbol.
		if len(cur) > 0 && gapRun < maxGap && len(cur)+1 < maxLen {
			cur = append(cur, pattern.Eternal)
			rec(gapRun + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

// FrequentMatch computes, by brute force, the exact frequent set of db under
// the match measure within the bounded pattern space: every enumerated
// pattern with DBMatch >= minMatch. It returns the set and the match value
// of every enumerated pattern keyed by Pattern.Key.
func FrequentMatch(c compat.Source, db [][]pattern.Symbol, minMatch float64, maxLen, maxGap int) (*pattern.Set, map[string]float64) {
	frequent := pattern.NewSet()
	values := make(map[string]float64)
	for _, p := range Enumerate(c.Size(), maxLen, maxGap) {
		v := DBMatch(c, p, db)
		values[p.Key()] = v
		if v >= minMatch {
			frequent.Add(p)
		}
	}
	return frequent, values
}

// FrequentSupport is FrequentMatch under the classic support measure.
func FrequentSupport(m int, db [][]pattern.Symbol, minSupport float64, maxLen, maxGap int) (*pattern.Set, map[string]float64) {
	frequent := pattern.NewSet()
	values := make(map[string]float64)
	for _, p := range Enumerate(m, maxLen, maxGap) {
		v := DBSupport(p, db)
		values[p.Key()] = v
		if v >= minSupport {
			frequent.Add(p)
		}
	}
	return frequent, values
}
