package oracle

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/maxminer"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// TestCommittedSeedsSubset keeps a fast slice of the conformance corpus in
// the package's own test run; cmd/lspverify replays the whole corpus in CI.
func TestCommittedSeedsSubset(t *testing.T) {
	for _, seed := range CommittedSeeds[:4] {
		if d := CheckSeed(seed, Battery()); d != nil {
			t.Fatalf("committed seed %d diverged:\n%s", seed, d)
		}
	}
}

// corruptEngine is a deliberately buggy system under test: Max-Miner driven
// by a valuer that inflates every database match by 10% — the planted
// match-kernel bug the differential driver must be able to catch.
func corruptEngine() Engine {
	return Engine{Name: "planted-bug", Ref: RefMatch, Mine: func(cs *Case) (*pattern.Set, error) {
		base := miner.MatchDBValuer(seqdb.NewMemDB(cs.DB), cs.C)
		inflating := func(ps []pattern.Pattern) ([]float64, error) {
			vals, err := base(ps)
			if err != nil {
				return nil, err
			}
			for i := range vals {
				vals[i] = math.Min(1, vals[i]*1.1)
			}
			return vals, nil
		}
		res, err := maxminer.Mine(cs.C.Size(), inflating, cs.MinMatch, caseOpts(cs))
		if err != nil {
			return nil, err
		}
		return res.Frequent, nil
	}}
}

// TestDifferentialDetectsPlantedBug is the harness's own acceptance test:
// the driver must flag the inflated valuer within a few seeds, report a
// reproducing seed, and hand back a minimized case that still diverges.
func TestDifferentialDetectsPlantedBug(t *testing.T) {
	engines := []Engine{corruptEngine()}
	var d *Divergence
	var seed int64
	for s := int64(1); s <= 20 && d == nil; s++ {
		seed = s
		d = CheckSeed(s, engines)
	}
	if d == nil {
		t.Fatal("a 10% match inflation went undetected across 20 seeds")
	}
	if d.Seed != seed {
		t.Errorf("divergence reports seed %d, found on seed %d", d.Seed, seed)
	}
	if len(d.Extra) == 0 {
		t.Errorf("inflation must surface as extra frequent patterns, got missing=%v extra=%v", d.Missing, d.Extra)
	}
	for _, p := range d.Extra {
		if v := d.Values[p.Key()]; v >= d.Case.MinMatch {
			t.Errorf("extra pattern %v has oracle value %v >= min_match %v", p, v, d.Case.MinMatch)
		}
	}
	if d.Case == nil || d.Original == nil {
		t.Fatalf("divergence lacks a case: %+v", d)
	}
	// The minimized case must still diverge and must not have grown.
	if CheckCase(d.Case, engines) == nil {
		t.Error("minimized case no longer reproduces the divergence")
	}
	if len(d.Case.DB) > len(d.Original.DB) {
		t.Errorf("minimization grew the database: %d -> %d sequences", len(d.Original.DB), len(d.Case.DB))
	}
	out := d.String()
	for _, want := range []string{
		"DIVERGENCE",
		"engine=planted-bug",
		fmt.Sprintf("seed=%d", seed),
		fmt.Sprintf("reproduce: go run ./cmd/lspverify -seed %d", seed),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("repro report lacks %q:\n%s", want, out)
		}
	}
}

func TestMinimizeShrinksToFixpoint(t *testing.T) {
	engines := []Engine{corruptEngine()}
	for s := int64(1); s <= 20; s++ {
		cs := GenCase(s)
		if CheckCase(cs, engines) == nil {
			continue
		}
		min := Minimize(cs, engines)
		if CheckCase(min, engines) == nil {
			t.Fatalf("seed %d: minimized case passes", s)
		}
		// Fixpoint: dropping any single remaining sequence loses the bug
		// (unless only one sequence is left, which is minimal by definition).
		for i := range min.DB {
			if len(min.DB) == 1 {
				break
			}
			trial := min.clone()
			trial.DB = append(trial.DB[:i], trial.DB[i+1:]...)
			if CheckCase(trial, engines) != nil {
				t.Fatalf("seed %d: sequence %d is droppable, minimization stopped early", s, i)
			}
		}
		return
	}
	t.Fatal("no diverging seed found for the planted bug")
}

func TestVerifyReportsFailuresAndSummary(t *testing.T) {
	var buf bytes.Buffer
	if n := Verify(&buf, VerifyOptions{
		Seeds:      []int64{1, 2},
		Engines:    []Engine{ExhaustiveEngine()},
		Properties: true,
		Verbose:    true,
	}); n != 0 {
		t.Fatalf("clean engine reported %d failures:\n%s", n, buf.String())
	}
	for _, want := range []string{"ok seed=1", "ok seed=2", "lspverify: 2 seeds, 1 engines, 0 failures"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("verbose output lacks %q:\n%s", want, buf.String())
		}
	}

	buf.Reset()
	seeds := make([]int64, 10)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	n := Verify(&buf, VerifyOptions{Seeds: seeds, Engines: []Engine{corruptEngine()}})
	if n == 0 {
		t.Fatalf("planted bug survived Verify:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "DIVERGENCE") {
		t.Errorf("failure output lacks a divergence report:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), fmt.Sprintf("%d failures", n)) {
		t.Errorf("summary does not carry the failure count %d:\n%s", n, buf.String())
	}
}

func TestGenCaseDeterministic(t *testing.T) {
	a, b := GenCase(42), GenCase(42)
	if a.MinMatch != b.MinMatch || a.MaxLen != b.MaxLen || a.MaxGap != b.MaxGap ||
		a.Delta != b.Delta || a.MemBudget != b.MemBudget || len(a.DB) != len(b.DB) {
		t.Fatalf("GenCase is not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.DB {
		if len(a.DB[i]) != len(b.DB[i]) {
			t.Fatalf("sequence %d differs", i)
		}
		for j := range a.DB[i] {
			if a.DB[i][j] != b.DB[i][j] {
				t.Fatalf("sequence %d symbol %d differs", i, j)
			}
		}
	}
}
