package oracle

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/match"
	"repro/internal/pattern"
)

// FuzzOracleVsMatch fuzzes the core differential invariant at the smallest
// grain: for any compatibility matrix, sequence, and valid pattern, the
// log-space oracle and internal/match's two kernels (interpreted and
// compiled) must agree on the sequence match within 1e-9. The matrix is
// derived from the seed through the same family generator the differential
// driver uses; sequence and pattern bytes map to symbols mod the alphabet,
// with 0xFF marking an eternal position.
func FuzzOracleVsMatch(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 0, 1, 2}, []byte{0, 1})
	f.Add(int64(2), []byte{3, 3, 3, 3}, []byte{3, 0xFF, 3})
	f.Add(int64(3), []byte{0, 4, 1, 4, 2, 4, 3}, []byte{0, 0xFF, 0xFF, 2})
	f.Add(int64(4), []byte{}, []byte{1})
	f.Add(int64(5), []byte{2, 0}, []byte{2, 2, 2, 2, 2})
	f.Fuzz(func(t *testing.T, seed int64, seqB, patB []byte) {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(6)
		c := randomMatrix(rng, m)
		if len(seqB) > 64 {
			seqB = seqB[:64]
		}
		if len(patB) > 8 {
			patB = patB[:8]
		}
		seq := make([]pattern.Symbol, len(seqB))
		for i, b := range seqB {
			seq[i] = pattern.Symbol(int(b) % m)
		}
		p := make(pattern.Pattern, len(patB))
		for i, b := range patB {
			if b == 0xFF {
				p[i] = pattern.Eternal
			} else {
				p[i] = pattern.Symbol(int(b) % m)
			}
		}
		if len(p) == 0 || p[0].IsEternal() || p[len(p)-1].IsEternal() {
			return // not a valid pattern (Definition 3.2)
		}
		want := Sequence(c, p, seq)
		if got := match.Sequence(c, p, seq); math.Abs(got-want) > 1e-9 {
			t.Errorf("match.Sequence(%v, %v) = %v, oracle %v", p, seq, got, want)
		}
		cp, err := match.Compile(c, p)
		if err != nil {
			t.Fatalf("compile %v: %v", p, err)
		}
		if got := cp.Match(seq); math.Abs(got-want) > 1e-9 {
			t.Errorf("Compiled.Match(%v, %v) = %v, oracle %v", p, seq, got, want)
		}
	})
}
