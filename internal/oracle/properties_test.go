package oracle

import (
	"testing"

	"repro/internal/pattern"
	"repro/internal/testutil"
)

func TestPropertiesHoldOnCommittedSeeds(t *testing.T) {
	for _, seed := range CommittedSeeds[:8] {
		if err := CheckProperties(GenCase(seed)); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestPropertiesHoldOnFreshSeed(t *testing.T) {
	if err := CheckProperties(GenCase(testutil.Seed(t))); err != nil {
		t.Error(err)
	}
}

func TestCheckIdentitySupportRandom(t *testing.T) {
	rng := testutil.Rng(t)
	const m = 4
	space := Enumerate(m, 4, 2)
	for trial := 0; trial < 100; trial++ {
		p := space[rng.Intn(len(space))]
		seq := make([]pattern.Symbol, rng.Intn(12))
		for i := range seq {
			seq[i] = pattern.Symbol(rng.Intn(m))
		}
		if err := CheckIdentitySupport(m, p, seq); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestCheckPermutationInvarianceRejectsBadPerm(t *testing.T) {
	cs := GenCase(1)
	if err := CheckPermutationInvariance(cs.C, pattern.MustNew(0), cs.DB, []int{0}); err == nil {
		t.Error("truncated permutation accepted")
	}
}

func TestCheckEternalInvarianceRejectsBadLength(t *testing.T) {
	cs := GenCase(1)
	rng := testutil.Rng(t)
	err := CheckEternalInvariance(cs.C, pattern.MustNew(0, 1), []pattern.Symbol{0}, rng)
	if err == nil {
		t.Error("segment/pattern length mismatch accepted")
	}
}
