// Metamorphic property harness: invariants of the match model that must
// hold for any correct implementation, checked against the oracle itself and
// usable against the optimized implementations. Each check returns nil or an
// error describing the violated relation with the values involved, so a
// failing property in lspverify or a test prints a complete repro.
package oracle

import (
	"fmt"
	"math/rand"

	"repro/internal/compat"
	"repro/internal/pattern"
	"repro/internal/support"
)

// PropertyTol is the tolerance for property comparisons that are exact in
// real arithmetic but accumulate float64 noise (log-space round trips,
// re-ordered sums).
const PropertyTol = 1e-9

// CheckApriori verifies Claims 3.1/3.2 on one sequence: every immediate
// subpattern of p matches seq at least as well as p itself, so the match is
// anti-monotone going up the lattice (the Apriori property every miner's
// pruning relies on).
func CheckApriori(c compat.Source, p pattern.Pattern, seq []pattern.Symbol) error {
	super := Sequence(c, p, seq)
	for _, sub := range p.ImmediateSubpatterns() {
		if v := Sequence(c, sub, seq); v < super-PropertyTol {
			return fmt.Errorf("oracle: Apriori violated: M(%v)=%v < M(%v)=%v on %v",
				sub, v, p, super, seq)
		}
	}
	return nil
}

// CheckPermutationInvariance verifies that the database match is invariant
// under reordering the database: the average over sequences cannot depend on
// scan order. perm must be a permutation of [0, len(db)).
func CheckPermutationInvariance(c compat.Source, p pattern.Pattern, db [][]pattern.Symbol, perm []int) error {
	if len(perm) != len(db) {
		return fmt.Errorf("oracle: permutation has %d entries for %d sequences", len(perm), len(db))
	}
	shuffled := make([][]pattern.Symbol, len(db))
	for i, j := range perm {
		shuffled[i] = db[j]
	}
	a, b := DBMatch(c, p, db), DBMatch(c, p, shuffled)
	if diff := a - b; diff > PropertyTol || diff < -PropertyTol {
		return fmt.Errorf("oracle: permutation changed DB match of %v: %v vs %v", p, a, b)
	}
	return nil
}

// CheckIdentitySupport verifies the §3 degeneration: under the noise-free
// identity matrix the match of a pattern in a sequence is exactly the classic
// support indicator — 1 if the pattern occurs (internal/support's Occurs and
// the oracle's own independent Occurs must agree), 0 otherwise.
func CheckIdentitySupport(m int, p pattern.Pattern, seq []pattern.Symbol) error {
	id := compat.Identity(m)
	got := Sequence(id, p, seq)
	oracleOccurs := Occurs(p, seq)
	supportOccurs := support.Occurs(p, seq)
	if oracleOccurs != supportOccurs {
		return fmt.Errorf("oracle: occurrence of %v in %v: oracle %v, support %v",
			p, seq, oracleOccurs, supportOccurs)
	}
	want := 0.0
	if oracleOccurs {
		want = 1.0
	}
	if got != want {
		return fmt.Errorf("oracle: identity-matrix match of %v in %v is %v, support says %v",
			p, seq, got, want)
	}
	if sv := (support.Support{}).Value(p, seq); sv != want {
		return fmt.Errorf("oracle: support.Value of %v in %v is %v, want %v", p, seq, sv, want)
	}
	return nil
}

// CheckEternalInvariance verifies the eternal-symbol contract of Definition
// 3.5: the observed symbols aligned with a pattern's eternal positions never
// influence a segment's match. The segment is rewritten at every eternal
// position with symbols drawn from rng and the match must not move at all.
func CheckEternalInvariance(c compat.Source, p pattern.Pattern, seg []pattern.Symbol, rng *rand.Rand) error {
	if len(p) != len(seg) {
		return fmt.Errorf("oracle: segment length %d differs from pattern length %d", len(seg), len(p))
	}
	want := Segment(c, p, seg)
	scrambled := make([]pattern.Symbol, len(seg))
	copy(scrambled, seg)
	for i, d := range p {
		if d.IsEternal() {
			scrambled[i] = pattern.Symbol(rng.Intn(c.Size()))
		}
	}
	if got := Segment(c, p, scrambled); got != want {
		return fmt.Errorf("oracle: eternal positions leaked into the match of %v: %v (on %v) vs %v (on %v)",
			p, want, seg, got, scrambled)
	}
	return nil
}

// CheckPaddingMonotone verifies the sliding-window maximum of Definition
// 3.6: padding a sequence on either side can only add windows, so the match
// never decreases.
func CheckPaddingMonotone(c compat.Source, p pattern.Pattern, seq, prefix, suffix []pattern.Symbol) error {
	padded := make([]pattern.Symbol, 0, len(prefix)+len(seq)+len(suffix))
	padded = append(padded, prefix...)
	padded = append(padded, seq...)
	padded = append(padded, suffix...)
	inner, outer := Sequence(c, p, seq), Sequence(c, p, padded)
	if outer < inner-PropertyTol {
		return fmt.Errorf("oracle: padding decreased the match of %v: %v on %v, %v after padding to %v",
			p, inner, seq, outer, padded)
	}
	return nil
}

// CheckProperties runs every metamorphic property over one generated case,
// drawing the patterns, permutations, and paddings from the case's seed. It
// is the harness lspverify runs alongside the differential battery.
func CheckProperties(cs *Case) error {
	rng := rand.New(rand.NewSource(cs.Seed ^ 0x70b1a5))
	m := cs.C.Size()
	space := Enumerate(m, cs.MaxLen, max(cs.MaxGap, 1))
	randSeq := func(l int) []pattern.Symbol {
		seq := make([]pattern.Symbol, l)
		for i := range seq {
			seq[i] = pattern.Symbol(rng.Intn(m))
		}
		return seq
	}
	for trial := 0; trial < 24; trial++ {
		p := space[rng.Intn(len(space))]
		seq := cs.DB[rng.Intn(len(cs.DB))]
		if err := CheckApriori(cs.C, p, seq); err != nil {
			return err
		}
		if err := CheckIdentitySupport(m, p, seq); err != nil {
			return err
		}
		perm := rng.Perm(len(cs.DB))
		if err := CheckPermutationInvariance(cs.C, p, cs.DB, perm); err != nil {
			return err
		}
		if len(seq) >= len(p) {
			start := rng.Intn(len(seq) - len(p) + 1)
			if err := CheckEternalInvariance(cs.C, p, seq[start:start+len(p)], rng); err != nil {
				return err
			}
		}
		if err := CheckPaddingMonotone(cs.C, p, seq, randSeq(rng.Intn(4)), randSeq(rng.Intn(4))); err != nil {
			return err
		}
	}
	return nil
}
