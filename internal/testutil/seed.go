// Package testutil holds small helpers shared by the repo's tests. It must
// only be imported from _test.go files.
package testutil

import (
	"flag"
	"math/rand"
	"testing"
	"time"
)

var seedFlag = flag.Int64("seed", 0, "RNG seed for randomized tests (0 derives one from the clock)")

// Seed returns the RNG seed for a randomized test: the -seed flag when set,
// otherwise one drawn from the clock. The seed is always logged on entry, so
// any failure report carries the exact command that replays it
// (go test -run <name> -args -seed=<n>).
func Seed(t testing.TB) int64 {
	s := *seedFlag
	if s == 0 {
		s = time.Now().UnixNano()
	}
	t.Logf("seed=%d (re-run: go test -run '%s' -args -seed=%d)", s, t.Name(), s)
	return s
}

// Rng returns a rand.Rand seeded via Seed.
func Rng(t testing.TB) *rand.Rand {
	return rand.New(rand.NewSource(Seed(t)))
}
