package support

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

const (
	d1 = pattern.Symbol(0)
	d2 = pattern.Symbol(1)
	d3 = pattern.Symbol(2)
	d4 = pattern.Symbol(3)
	d5 = pattern.Symbol(4)
	et = pattern.Eternal
)

func fig4DB() *seqdb.MemDB {
	return seqdb.NewMemDB([][]pattern.Symbol{
		{d1, d2, d3, d1},
		{d4, d2, d1},
		{d3, d4, d2, d1},
		{d2, d2},
	})
}

func TestOccurs(t *testing.T) {
	seq := []pattern.Symbol{d1, d2, d3, d1}
	cases := []struct {
		p    pattern.Pattern
		want bool
	}{
		{pattern.MustNew(d1, d2), true},
		{pattern.MustNew(d2, d3), true},
		{pattern.MustNew(d3, d1), true},
		{pattern.MustNew(d1, et, d3), true},
		{pattern.MustNew(d1, et, et, d1), true},
		{pattern.MustNew(d2, d1), false},
		{pattern.MustNew(d5), false},
		{pattern.MustNew(d1, d2, d3, d1, d1), false}, // longer than seq
	}
	for _, c := range cases {
		if got := Occurs(c.p, seq); got != c.want {
			t.Errorf("Occurs(%v)=%v, want %v", c.p, got, c.want)
		}
	}
}

func TestDBFig4Supports(t *testing.T) {
	// Golden supports from Figure 4(b)/(c): d1=0.75, d2=1.0, d3=0.5, d1d2=0.25,
	// d2d1=0.5, d4d2=0.5, d2d2=0.25, d2d3=0.25, d3d4=0.25, d3d1=0.25.
	db := fig4DB()
	ps := []pattern.Pattern{
		pattern.MustNew(d1), pattern.MustNew(d2), pattern.MustNew(d3),
		pattern.MustNew(d1, d2), pattern.MustNew(d2, d1), pattern.MustNew(d4, d2),
		pattern.MustNew(d2, d2), pattern.MustNew(d2, d3), pattern.MustNew(d3, d4),
		pattern.MustNew(d3, d1), pattern.MustNew(d1, d1), pattern.MustNew(d5),
	}
	want := []float64{0.75, 1.0, 0.5, 0.25, 0.5, 0.5, 0.25, 0.25, 0.25, 0.25, 0, 0}
	got, err := DB(db, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("support(%v)=%v, want %v", ps[i], got[i], want[i])
		}
	}
	if db.Scans() != 1 {
		t.Errorf("DB consumed %d scans", db.Scans())
	}
}

func TestMeasureInterface(t *testing.T) {
	var m match.Measure = Support{}
	if m.Name() != "support" {
		t.Errorf("Name=%q", m.Name())
	}
	if v := m.Value(pattern.MustNew(d2, d1), []pattern.Symbol{d4, d2, d1}); v != 1 {
		t.Errorf("Value=%v, want 1", v)
	}
	if v := m.Value(pattern.MustNew(d1, d2), []pattern.Symbol{d4, d2, d1}); v != 0 {
		t.Errorf("Value=%v, want 0", v)
	}
}

func TestQuickSupportEqualsIdentityMatch(t *testing.T) {
	// The §3 bridge: support(P,S) == match(P,S) under the identity matrix.
	r := rand.New(rand.NewSource(31))
	m := 5
	c := compat.Identity(m)
	f := func() bool {
		l := 1 + r.Intn(4)
		p := make(pattern.Pattern, l)
		for i := range p {
			if i > 0 && i < l-1 && r.Intn(3) == 0 {
				p[i] = et
			} else {
				p[i] = pattern.Symbol(r.Intn(m))
			}
		}
		seq := make([]pattern.Symbol, 1+r.Intn(10))
		for i := range seq {
			seq[i] = pattern.Symbol(r.Intn(m))
		}
		return Support{}.Value(p, seq) == match.Sequence(c, p, seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSupportApriori(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	f := func() bool {
		m := 5
		l := 2 + r.Intn(5)
		super := make(pattern.Pattern, l)
		for i := range super {
			if i > 0 && i < l-1 && r.Intn(3) == 0 {
				super[i] = et
			} else {
				super[i] = pattern.Symbol(r.Intn(m))
			}
		}
		sub := super.Clone()
		for i := range sub {
			if r.Intn(2) == 0 {
				sub[i] = et
			}
		}
		sub = pattern.Trim(sub)
		if sub == nil {
			return true
		}
		seq := make([]pattern.Symbol, 1+r.Intn(12))
		for i := range seq {
			seq[i] = pattern.Symbol(r.Intn(m))
		}
		return Support{}.Value(sub, seq) >= Support{}.Value(super, seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
