// Conformance slice for both support miners (external test package:
// internal/oracle imports support). The sweep and the candidate-driven
// miner are checked against the oracle's independent brute-force support.
package support_test

import (
	"testing"

	"repro/internal/oracle"
)

func TestSupportMinersOracleConformance(t *testing.T) {
	engines := []oracle.Engine{
		oracle.SupportSweepEngine(),
		oracle.SupportExhaustiveEngine(),
	}
	for _, seed := range oracle.CommittedSeeds[:8] {
		if d := oracle.CheckSeed(seed, engines); d != nil {
			t.Fatalf("support miner diverged from the oracle:\n%s", d)
		}
	}
}
