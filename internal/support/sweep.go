package support

import (
	"fmt"

	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// LevelOccurrences counts, for every k-pattern that actually occurs in the
// database (with internal gaps at most maxGap and total length at most
// maxLen), the number of sequences containing it. It enumerates the windows
// of each gap shape instead of generating candidates, so one scan covers an
// entire lattice level exactly — the classic occurrence-driven optimization
// that keeps the support-model experiments tractable.
func LevelOccurrences(db seqdb.Scanner, k, maxLen, maxGap int) (map[string]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("support: k %d < 1", k)
	}
	shapes := pattern.Shapes(k, maxLen, maxGap)
	type shapeOffsets struct{ offs []int }
	offs := make([]shapeOffsets, len(shapes))
	for i, s := range shapes {
		offs[i] = shapeOffsets{offs: s.Offsets()}
	}
	counts := make(map[string]int)
	seen := make(map[string]bool)
	syms := make([]pattern.Symbol, k)
	err := db.Scan(func(id int, seq []pattern.Symbol) error {
		for key := range seen {
			delete(seen, key)
		}
		for si, s := range shapes {
			if len(seq) < s.Len {
				continue
			}
			for start := 0; start+s.Len <= len(seq); start++ {
				for i, off := range offs[si].offs {
					syms[i] = seq[start+off]
				}
				key := pattern.ShapeKey(s, syms)
				if !seen[key] {
					seen[key] = true
					counts[key]++
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return counts, nil
}

// MineBySweep computes the complete frequent set under the support measure
// by occurrence counting, level by level, stopping at the first empty level
// (valid by Apriori: dropping an end symbol of a frequent (k+1)-pattern
// yields a frequent k-pattern within the same bounds). It consumes one scan
// per level and returns the frequent set plus each frequent pattern's
// support. Results are identical to miner.Exhaustive with the support
// measure, but the cost is occurrence-bound instead of candidate-bound.
func MineBySweep(db seqdb.Scanner, minSupport float64, maxLen, maxGap int) (*pattern.Set, map[string]float64, error) {
	if minSupport <= 0 || minSupport > 1 {
		return nil, nil, fmt.Errorf("support: minSupport %v outside (0,1]", minSupport)
	}
	if maxLen < 1 || maxGap < 0 {
		return nil, nil, fmt.Errorf("support: bad bounds maxLen=%d maxGap=%d", maxLen, maxGap)
	}
	n := db.Len()
	if n == 0 {
		return pattern.NewSet(), nil, nil
	}
	need := int(minSupport * float64(n))
	if float64(need) < minSupport*float64(n) {
		need++
	}
	if need < 1 {
		need = 1
	}
	frequent := pattern.NewSet()
	values := make(map[string]float64)
	for k := 1; k <= maxLen; k++ {
		counts, err := LevelOccurrences(db, k, maxLen, maxGap)
		if err != nil {
			return nil, nil, err
		}
		added := 0
		for key, cnt := range counts {
			if cnt < need {
				continue
			}
			p, err := pattern.ParseKey(key)
			if err != nil {
				return nil, nil, fmt.Errorf("support: internal key %q: %w", key, err)
			}
			frequent.Add(p)
			values[key] = float64(cnt) / float64(n)
			added++
		}
		if added == 0 {
			break
		}
	}
	return frequent, values, nil
}
