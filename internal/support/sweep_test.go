package support

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

func TestLevelOccurrencesFig4(t *testing.T) {
	db := fig4DB()
	counts, err := LevelOccurrences(db, 2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Golden occurrence counts (sequences containing the pattern).
	cases := []struct {
		p    pattern.Pattern
		want int
	}{
		{pattern.MustNew(d2, d1), 2},
		{pattern.MustNew(d1, d2), 1},
		{pattern.MustNew(d4, d2), 2},
		{pattern.MustNew(d2, et, d1), 1},
		{pattern.MustNew(d1, et, d3), 1},
	}
	for _, c := range cases {
		if got := counts[c.p.Key()]; got != c.want {
			t.Errorf("count(%v)=%d, want %d", c.p, got, c.want)
		}
	}
	if _, ok := counts[pattern.MustNew(d5, d5).Key()]; ok {
		t.Error("non-occurring pattern counted")
	}
}

func TestMineBySweepMatchesExhaustive(t *testing.T) {
	for _, minSupport := range []float64{0.25, 0.5, 0.75} {
		for _, bounds := range [][2]int{{3, 0}, {3, 1}, {4, 2}} {
			maxLen, maxGap := bounds[0], bounds[1]
			gotSet, gotVals, err := MineBySweep(fig4DB(), minSupport, maxLen, maxGap)
			if err != nil {
				t.Fatal(err)
			}
			want, err := miner.Exhaustive(5, miner.DBValuer(fig4DB(), Support{}), minSupport,
				miner.Options{MaxLen: maxLen, MaxGap: maxGap})
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("min=%v len=%d gap=%d", minSupport, maxLen, maxGap)
			for _, p := range want.Frequent.Patterns() {
				if !gotSet.Contains(p) {
					t.Errorf("%s: missing %v", label, p)
				}
			}
			for _, p := range gotSet.Patterns() {
				if !want.Frequent.Contains(p) {
					t.Errorf("%s: extra %v", label, p)
				}
				if v := gotVals[p.Key()]; v < minSupport {
					t.Errorf("%s: %v has value %v below threshold", label, p, v)
				}
			}
		}
	}
}

func TestMineBySweepRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 10; trial++ {
		m := 3 + rng.Intn(4)
		seqs := make([][]pattern.Symbol, 10+rng.Intn(10))
		for i := range seqs {
			s := make([]pattern.Symbol, 3+rng.Intn(8))
			for j := range s {
				s[j] = pattern.Symbol(rng.Intn(m))
			}
			seqs[i] = s
		}
		minSupport := 0.2 + 0.5*rng.Float64()
		gotSet, _, err := MineBySweep(seqdb.NewMemDB(seqs), minSupport, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := miner.Exhaustive(m, miner.DBValuer(seqdb.NewMemDB(seqs), Support{}), minSupport,
			miner.Options{MaxLen: 4, MaxGap: 1})
		if err != nil {
			t.Fatal(err)
		}
		if gotSet.Len() != want.Frequent.Len() {
			t.Fatalf("trial %d: sweep %d vs engine %d patterns", trial, gotSet.Len(), want.Frequent.Len())
		}
		for _, p := range want.Frequent.Patterns() {
			if !gotSet.Contains(p) {
				t.Fatalf("trial %d: missing %v", trial, p)
			}
		}
	}
}

func TestMineBySweepValidation(t *testing.T) {
	db := fig4DB()
	if _, _, err := MineBySweep(db, 0, 3, 0); err == nil {
		t.Error("minSupport=0 accepted")
	}
	if _, _, err := MineBySweep(db, 1.5, 3, 0); err == nil {
		t.Error("minSupport>1 accepted")
	}
	if _, _, err := MineBySweep(db, 0.5, 0, 0); err == nil {
		t.Error("maxLen=0 accepted")
	}
	if _, err := LevelOccurrences(db, 0, 3, 0); err == nil {
		t.Error("k=0 accepted")
	}
	empty := seqdb.NewMemDB(nil)
	set, _, err := MineBySweep(empty, 0.5, 3, 0)
	if err != nil || set.Len() != 0 {
		t.Errorf("empty db: %v, %v", set, err)
	}
}

func TestShapes(t *testing.T) {
	shapes := pattern.Shapes(3, 5, 1)
	// Gap compositions (g1,g2) with each <=1 and total length 3+g1+g2 <= 5:
	// (0,0),(0,1),(1,0),(1,1) = 4 shapes.
	if len(shapes) != 4 {
		t.Fatalf("got %d shapes: %+v", len(shapes), shapes)
	}
	for _, s := range shapes {
		if s.Len != 3+s.Gaps[0]+s.Gaps[1] {
			t.Errorf("shape %+v length inconsistent", s)
		}
		p := s.Build([]pattern.Symbol{d1, d2, d3})
		if err := p.Validate(); err != nil {
			t.Errorf("built invalid pattern %v: %v", p, err)
		}
		if p.Key() != pattern.ShapeKey(s, []pattern.Symbol{d1, d2, d3}) {
			t.Errorf("ShapeKey disagrees with Build().Key() for %+v", s)
		}
	}
	if got := pattern.Shapes(1, 1, 3); len(got) != 1 || got[0].Len != 1 {
		t.Errorf("k=1 shapes: %+v", got)
	}
	if pattern.Shapes(3, 2, 1) != nil {
		t.Error("maxLen < k should yield no shapes")
	}
}
