// Package support implements the classic support model as a match.Measure:
// a pattern's value in a sequence is 1 if some window matches it exactly
// (eternal positions match any symbol) and 0 otherwise; the database value
// is the fraction of sequences containing the pattern.
//
// Under a noise-free (identity) compatibility matrix the match metric
// degenerates to exactly this measure (§3), which the tests verify.
package support

import (
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// Support is the exact-occurrence measure. The zero value is ready to use.
type Support struct{}

// Name implements match.Measure.
func (Support) Name() string { return "support" }

// Value implements match.Measure: 1 if p occurs in seq, else 0.
func (Support) Value(p pattern.Pattern, seq []pattern.Symbol) float64 {
	if Occurs(p, seq) {
		return 1
	}
	return 0
}

// Occurs reports whether some window of seq matches p exactly, with eternal
// positions matching any symbol.
func Occurs(p pattern.Pattern, seq []pattern.Symbol) bool {
	l := len(p)
	if l == 0 || len(seq) < l {
		return false
	}
	for i := 0; i+l <= len(seq); i++ {
		ok := true
		for j, d := range p {
			if !d.IsEternal() && seq[i+j] != d {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// DB computes the support of each pattern in one full scan.
func DB(db seqdb.Scanner, ps []pattern.Pattern) ([]float64, error) {
	counts := make([]float64, len(ps))
	err := db.Scan(func(id int, seq []pattern.Symbol) error {
		for i, p := range ps {
			if Occurs(p, seq) {
				counts[i]++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if n := db.Len(); n > 0 {
		for i := range counts {
			counts[i] /= float64(n)
		}
	}
	return counts, nil
}
