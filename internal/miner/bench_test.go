package miner

import (
	"math/rand"
	"testing"

	"repro/internal/compat"
	"repro/internal/pattern"
)

// BenchmarkSampleChernoff runs the full Phase 2 lattice over one sample with
// the naive per-pattern valuer and with the incremental prefix-extension
// kernel at several worker counts.
func BenchmarkSampleChernoff(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	motif := []pattern.Symbol{2, 5, 1, 4, 7}
	sample := incTestSample(200, 40, 10, motif, rng)
	c, err := compat.UniformNoise(10, 0.12)
	if err != nil {
		b.Fatal(err)
	}
	sm := symbolMatches(c, sample)
	opts := Options{MaxLen: 6, MaxGap: 1}

	run := func(b *testing.B, valuer func() Valuer) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := SampleChernoff(c.Size(), valuer(), sm, 0.2, 1e-2, len(sample), opts); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("naive", func(b *testing.B) {
		run(b, func() Valuer { return MatchSampleValuer(c, sample) })
	})
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(map[int]string{1: "incremental-1w", 4: "incremental-4w"}[workers], func(b *testing.B) {
			run(b, func() Valuer {
				v, _ := IncrementalSampleValuer(c, sample, IncrementalConfig{Workers: workers})
				return v
			})
		})
	}
}
