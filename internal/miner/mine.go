package miner

import (
	"repro/internal/chernoff"
	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// SampleValuer evaluates candidates against an in-memory sample under an
// arbitrary measure.
func SampleValuer(meas match.Measure, sample [][]pattern.Symbol) Valuer {
	return func(ps []pattern.Pattern) ([]float64, error) {
		out := make([]float64, len(ps))
		for i, p := range ps {
			out[i] = match.Sample(meas, p, sample)
		}
		return out, nil
	}
}

// MatchSampleValuer evaluates candidates against an in-memory sample under
// the match measure using compiled matchers (the fast path for Phase 2).
func MatchSampleValuer(c compat.Source, sample [][]pattern.Symbol) Valuer {
	return func(ps []pattern.Pattern) ([]float64, error) {
		set, err := match.CompileSet(c, ps)
		if err != nil {
			return nil, err
		}
		for _, seq := range sample {
			set.Observe(seq)
		}
		return set.Matches(len(sample)), nil
	}
}

// DBValuer evaluates candidates with one full database scan per call.
func DBValuer(db seqdb.Scanner, meas match.Measure) Valuer {
	return func(ps []pattern.Pattern) ([]float64, error) {
		return match.DB(db, meas, ps)
	}
}

// MatchDBValuer evaluates candidates with one full database scan per call
// under the match measure using compiled matchers.
func MatchDBValuer(db seqdb.Scanner, c compat.Source) Valuer {
	return func(ps []pattern.Pattern) ([]float64, error) {
		set, err := match.CompileSet(c, ps)
		if err != nil {
			return nil, err
		}
		err = db.Scan(func(id int, seq []pattern.Symbol) error {
			set.Observe(seq)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return set.Matches(db.Len()), nil
	}
}

// Exhaustive mines the complete set of patterns whose value meets minMatch,
// using a deterministic binary classification (no sampling uncertainty).
// With a DBValuer it consumes one scan per lattice level; with a sample or
// in-memory valuer it is the ground-truth miner of the experiments.
func Exhaustive(m int, valuer Valuer, minMatch float64, opts Options) (*Result, error) {
	e := &Engine{
		M:     m,
		Opts:  opts,
		Value: valuer,
		Classify: func(_ pattern.Pattern, v, _ float64) chernoff.Label {
			if v >= minMatch {
				return chernoff.Frequent
			}
			return chernoff.Infrequent
		},
	}
	return e.Run()
}

// SampleChernoff runs Phase 2: it classifies patterns as frequent, ambiguous
// or infrequent from their sample matches using the Chernoff bound with the
// restricted spread (Claims 4.1/4.2). symbolMatch must hold Phase 1's exact
// full-database symbol matches. The returned Result's Ambiguous set is the
// input to Phase 3.
func SampleChernoff(m int, valuer Valuer, symbolMatch []float64, minMatch, delta float64, sampleSize int, opts Options) (*Result, error) {
	cls, err := chernoff.NewClassifier(minMatch, delta, sampleSize)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		M:           m,
		Opts:        opts,
		Value:       valuer,
		SymbolMatch: symbolMatch,
		MinMatch:    minMatch,
		Classify: func(_ pattern.Pattern, v, spread float64) chernoff.Label {
			return cls.Classify(v, spread)
		},
	}
	return e.Run()
}
