package miner

import (
	"context"

	"repro/internal/chernoff"
	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// SampleValuer evaluates candidates against an in-memory sample under an
// arbitrary measure.
func SampleValuer(meas match.Measure, sample [][]pattern.Symbol) Valuer {
	return func(ps []pattern.Pattern) ([]float64, error) {
		out := make([]float64, len(ps))
		for i, p := range ps {
			out[i] = match.Sample(meas, p, sample)
		}
		return out, nil
	}
}

// MatchSampleValuer evaluates candidates against an in-memory sample under
// the match measure using compiled matchers (the fast path for Phase 2).
func MatchSampleValuer(c compat.Source, sample [][]pattern.Symbol) Valuer {
	return func(ps []pattern.Pattern) ([]float64, error) {
		set, err := match.CompileSet(c, ps)
		if err != nil {
			return nil, err
		}
		for _, seq := range sample {
			set.Observe(seq)
		}
		return set.Matches(len(sample)), nil
	}
}

// DBValuer evaluates candidates with one full database scan per call.
func DBValuer(db seqdb.Scanner, meas match.Measure) Valuer {
	return DBValuerContext(nil, db, meas)
}

// DBValuerContext is DBValuer with cancellation checked between sequences.
// The per-pass sums are rebuilt per attempt, so a retrying scanner can
// re-run a failed pass without double-counting. Averages divide by the
// number of sequences the pass delivered, not db.Len(), so a scanner with a
// stale or estimated Len() cannot skew the values.
func DBValuerContext(ctx context.Context, db seqdb.Scanner, meas match.Measure) Valuer {
	return func(ps []pattern.Pattern) ([]float64, error) {
		if len(ps) == 0 {
			// An empty batch needs no counters, so it must not cost a scan.
			return nil, nil
		}
		var sums []float64
		var delivered int
		err := seqdb.ScanPassContext(ctx, db, func() (func(id int, seq []pattern.Symbol) error, error) {
			sums = make([]float64, len(ps))
			delivered = 0
			return func(id int, seq []pattern.Symbol) error {
				delivered++
				for i, p := range ps {
					sums[i] += meas.Value(p, seq)
				}
				return nil
			}, nil
		})
		if err != nil {
			return nil, err
		}
		if delivered > 0 {
			for i := range sums {
				sums[i] /= float64(delivered)
			}
		}
		return sums, nil
	}
}

// MatchDBValuer evaluates candidates with one full database scan per call
// under the match measure using compiled matchers.
func MatchDBValuer(db seqdb.Scanner, c compat.Source) Valuer {
	return MatchDBValuerContext(nil, db, c)
}

// MatchDBValuerContext is MatchDBValuer with cancellation checked between
// sequences. The compiled set is rebuilt per scan attempt, so a retrying
// scanner can re-run a failed pass without double-counting observations.
// Averages divide by the set's observed-sequence count — the sequences the
// pass delivered — not db.Len(), so a stale Len() cannot skew the values.
func MatchDBValuerContext(ctx context.Context, db seqdb.Scanner, c compat.Source) Valuer {
	return func(ps []pattern.Pattern) ([]float64, error) {
		if len(ps) == 0 {
			// An empty batch needs no counters, so it must not cost a scan.
			return nil, nil
		}
		var set *match.CompiledSet
		err := seqdb.ScanPassContext(ctx, db, func() (func(id int, seq []pattern.Symbol) error, error) {
			s, err := match.CompileSet(c, ps)
			if err != nil {
				return nil, err
			}
			set = s
			return func(id int, seq []pattern.Symbol) error {
				s.Observe(seq)
				return nil
			}, nil
		})
		if err != nil {
			return nil, err
		}
		return set.Matches(0), nil // n <= 0: divide by observed count
	}
}

// Exhaustive mines the complete set of patterns whose value meets minMatch,
// using a deterministic binary classification (no sampling uncertainty).
// With a DBValuer it consumes one scan per lattice level; with a sample or
// in-memory valuer it is the ground-truth miner of the experiments.
func Exhaustive(m int, valuer Valuer, minMatch float64, opts Options) (*Result, error) {
	return ExhaustiveContext(nil, m, valuer, minMatch, opts)
}

// ExhaustiveContext is Exhaustive with cancellation checked between lattice
// levels.
func ExhaustiveContext(ctx context.Context, m int, valuer Valuer, minMatch float64, opts Options) (*Result, error) {
	e := &Engine{
		M:     m,
		Ctx:   ctx,
		Opts:  opts,
		Value: valuer,
		Classify: func(_ pattern.Pattern, v, _ float64) chernoff.Label {
			if v >= minMatch {
				return chernoff.Frequent
			}
			return chernoff.Infrequent
		},
	}
	return e.Run()
}

// SampleChernoff runs Phase 2: it classifies patterns as frequent, ambiguous
// or infrequent from their sample matches using the Chernoff bound with the
// restricted spread (Claims 4.1/4.2). symbolMatch must hold Phase 1's exact
// full-database symbol matches. The returned Result's Ambiguous set is the
// input to Phase 3.
func SampleChernoff(m int, valuer Valuer, symbolMatch []float64, minMatch, delta float64, sampleSize int, opts Options) (*Result, error) {
	return SampleChernoffContext(nil, m, valuer, symbolMatch, minMatch, delta, sampleSize, opts)
}

// SampleChernoffContext is SampleChernoff with cancellation checked between
// lattice levels.
func SampleChernoffContext(ctx context.Context, m int, valuer Valuer, symbolMatch []float64, minMatch, delta float64, sampleSize int, opts Options) (*Result, error) {
	cls, err := chernoff.NewClassifier(minMatch, delta, sampleSize)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		M:           m,
		Ctx:         ctx,
		Opts:        opts,
		Value:       valuer,
		SymbolMatch: symbolMatch,
		MinMatch:    minMatch,
		Classify: func(_ pattern.Pattern, v, spread float64) chernoff.Label {
			return cls.Classify(v, spread)
		},
	}
	return e.Run()
}
