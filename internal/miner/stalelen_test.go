package miner

import (
	"math"
	"testing"

	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// staleLenDB wraps a MemDB but reports a Len() that disagrees with the
// stream it delivers — the shape of a scanner whose metadata is stale or an
// estimate. Averaging must trust the delivered stream, not Len().
type staleLenDB struct {
	*seqdb.MemDB
	reported int
}

func (s *staleLenDB) Len() int { return s.reported }

// valuerFixture returns the candidate batch and the reference values
// computed over the true stream.
func valuerFixture(t *testing.T) (*compat.Matrix, []pattern.Pattern, []float64) {
	t.Helper()
	c := compat.Fig2()
	ps := []pattern.Pattern{
		pattern.MustNew(d1),
		pattern.MustNew(d2, d1),
		pattern.MustNew(d3, et, d2),
		pattern.MustNew(d2),
		pattern.MustNew(d4),
	}
	want, err := match.DB(fig4DB(), match.NewMatch(c), ps)
	if err != nil {
		t.Fatal(err)
	}
	return c, ps, want
}

func TestValuersIgnoreStaleLen(t *testing.T) {
	c, ps, want := valuerFixture(t)
	// Len() claims double (and, separately, half) the true sequence count.
	for _, reported := range []int{8, 2} {
		valuers := map[string]Valuer{
			"DBValuer":                DBValuer(&staleLenDB{fig4DB(), reported}, match.NewMatch(c)),
			"MatchDBValuer":           MatchDBValuer(&staleLenDB{fig4DB(), reported}, c),
			"ParallelMatchDBValuer-1": ParallelMatchDBValuer(&staleLenDB{fig4DB(), reported}, c, 1),
			"ParallelMatchDBValuer-3": ParallelMatchDBValuer(&staleLenDB{fig4DB(), reported}, c, 3),
		}
		for name, v := range valuers {
			got, err := v(ps)
			if err != nil {
				t.Fatalf("%s (Len=%d): %v", name, reported, err)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					t.Errorf("%s (Len=%d) pattern %v: got %v, want %v (skewed by stale Len)",
						name, reported, ps[i], got[i], want[i])
				}
			}
		}
	}
}
