package miner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/telemetry"
)

// ShardedMatchDBValuer is MatchDBValuer scattered over database shards: one
// logical probe scan fans the batch out to per-shard worker goroutines, each
// matching every pattern against its shard with the structure-of-arrays
// kernel (match.SoASet), and the per-shard (sum, count) pairs are gathered
// with an ascending-order merge.
//
// Determinism: every shard accumulates on the database's fixed probe blocks
// (seqdb.Sharded.BlockSize — a function of the database alone) and the
// gather folds block sums in ascending global id order, so the returned
// values are bit-identical for every shard and worker count over the same
// database — the Phase 2 kernel's merge discipline applied to Phase 3.
// Per-sequence match values are themselves bit-identical to Compiled.Match's
// (see match.SoASet); only the summation grouping distinguishes the result
// from the single-pass valuers', within float addition reassociation.
func ShardedMatchDBValuer(sh *seqdb.Sharded, c compat.Source, workers int) Valuer {
	return ShardedMatchDBValuerContext(nil, sh, c, workers, nil)
}

// shardBlocks is one shard's gather payload: per probe block, the per-pattern
// match sums and the sequence count, in ascending block order.
type shardBlocks struct {
	sums [][]float64
	ns   []int
}

// ShardedMatchDBValuerContext is ShardedMatchDBValuer with cancellation
// checked between sequences, retry-safe per-shard passes (each shard's
// accumulator is rebuilt per attempt), and telemetry: every delivered
// sequence, one ScanDone per logical pass with real byte counts whenever the
// backing stores report them (DiskDB/GzipDB; estimation only for
// memory-backed shards), and one ShardScan per shard with its wall time.
// workers bounds the concurrently-scanning shards (<= 0 scans all shards at
// once, capped at GOMAXPROCS).
func ShardedMatchDBValuerContext(ctx context.Context, sh *seqdb.Sharded, c compat.Source, workers int, m *telemetry.Metrics) Valuer {
	return func(ps []pattern.Pattern) ([]float64, error) {
		if len(ps) == 0 {
			// An empty batch needs no pass at all (the probe loop never
			// issues one, but a Valuer must not waste a scan on it).
			return nil, nil
		}
		soa, err := match.CompileSoA(c, ps)
		if err != nil {
			return nil, err
		}
		shards := sh.NumShards()
		block := sh.BlockSize()
		conc := workers
		if conc <= 0 || conc > shards {
			conc = shards
		}
		if max := runtime.GOMAXPROCS(0); workers <= 0 && conc > max {
			conc = max
		}

		passBytes, passReal := seqdb.RealBytes(sh)
		var totalSymbols atomic.Int64

		results := make([]shardBlocks, shards)
		errs := make([]error, shards)
		if conc == 1 {
			// Nothing to overlap: scan the shards inline and skip the
			// goroutine plumbing (the common case under GOMAXPROCS=1).
			for s := 0; s < shards; s++ {
				errs[s] = scanShard(ctx, sh.Shard(s), soa, len(ps), block, &results[s], &totalSymbols, m)
			}
		} else {
			next := make(chan int)
			var wg sync.WaitGroup
			wg.Add(conc)
			for w := 0; w < conc; w++ {
				go func() {
					defer wg.Done()
					for s := range next {
						errs[s] = scanShard(ctx, sh.Shard(s), soa, len(ps), block, &results[s], &totalSymbols, m)
					}
				}()
			}
			for s := 0; s < shards; s++ {
				next <- s
			}
			close(next)
			wg.Wait()
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}

		// Gather: fold block sums in ascending global id order. Shards are
		// contiguous ascending ranges, so shard order is block order.
		sums := make([]float64, len(ps))
		n := 0
		for s := range results {
			for b, bs := range results[s].sums {
				for i, v := range bs {
					sums[i] += v
				}
				n += results[s].ns[b]
			}
		}
		if n > 0 {
			for i := range sums {
				sums[i] /= float64(n)
			}
		}
		sh.NotePass()
		if passReal {
			now, _ := seqdb.RealBytes(sh)
			m.ScanDone(now-passBytes, false)
		} else {
			m.ScanDone(4*totalSymbols.Load(), true)
		}
		return sums, nil
	}
}

// scanShard runs one shard's probe pass: accumulate per-block sums with the
// SoA kernel, rebuilt per attempt for retry safety, and record the shard's
// telemetry (wall time, sequences, real bytes when the shard reports them).
func scanShard(ctx context.Context, shard seqdb.Scanner, soa *match.SoASet, batch, block int, out *shardBlocks, totalSymbols *atomic.Int64, m *telemetry.Metrics) error {
	start := time.Now()
	startBytes, realBytes := seqdb.RealBytes(shard)
	var acc shardBlocks
	var seqs, symbols int64
	err := seqdb.ScanPassContext(ctx, shard, func() (func(id int, seq []pattern.Symbol) error, error) {
		acc = shardBlocks{}
		seqs, symbols = 0, 0
		cur := -1
		var flat []float64 // one backing array for the pass's block sums
		return func(id int, seq []pattern.Symbol) error {
			if b := id / block; b != cur {
				if len(flat) < batch {
					flat = make([]float64, batch*64)
				}
				acc.sums = append(acc.sums, flat[:batch:batch])
				flat = flat[batch:]
				acc.ns = append(acc.ns, 0)
				cur = b
			}
			last := len(acc.sums) - 1
			soa.Observe(acc.sums[last], seq)
			acc.ns[last]++
			seqs++
			symbols += int64(len(seq))
			m.Sequence(len(seq))
			return nil
		}, nil
	})
	if err != nil {
		return err
	}
	totalSymbols.Add(symbols)
	*out = acc
	bytes := int64(-1)
	if realBytes {
		now, _ := seqdb.RealBytes(shard)
		bytes = now - startBytes
	}
	m.ShardScan(time.Since(start), seqs, bytes)
	return nil
}
