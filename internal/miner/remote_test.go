package miner

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/seqdb"
	"repro/internal/shardrpc"
	"repro/internal/telemetry"
)

func remoteHarness(db *seqdb.MemDB, nodes int) *shardrpc.Harness {
	return shardrpc.NewHarness(nodes, "", func() (seqdb.Scanner, error) { return db, nil })
}

func instantPool(h *shardrpc.Harness) *shardrpc.Pool {
	p := h.Pool(shardrpc.RetryPolicy{Base: time.Microsecond})
	p.Sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	return p
}

// TestRemoteValuerBitIdentical: the remote scatter-gather valuer must return
// the same bits as the local one for every node count, shard count, and
// worker count — distribution is purely an execution layout.
func TestRemoteValuerBitIdentical(t *testing.T) {
	db, c, ps := randomWorkload(t, 21, 300, 12)
	for _, shards := range []int{1, 3, 7} {
		sh := seqdb.ShardScanner(db, shards)
		want, err := ShardedMatchDBValuer(sh, c, 0)(ps)
		if err != nil {
			t.Fatal(err)
		}
		for _, nodes := range []int{1, 2, 5} {
			for _, workers := range []int{0, 2} {
				pool := instantPool(remoteHarness(db, nodes))
				got, err := RemoteShardValuer(seqdb.ShardScanner(db, shards), pool, c, workers)(ps)
				if err != nil {
					t.Fatal(err)
				}
				for i := range ps {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("shards=%d nodes=%d workers=%d pattern %d: remote %v != local %v",
							shards, nodes, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestRemoteValuerNodeDiesMidGather: a node that answers its first probe and
// then drops every later one forces reassignment mid-batch; the gathered
// values must still be bit-identical to the local path.
func TestRemoteValuerNodeDiesMidGather(t *testing.T) {
	db, c, ps := randomWorkload(t, 22, 400, 12)
	sh := seqdb.ShardScanner(db, 5)
	want, err := ShardedMatchDBValuer(sh, c, 0)(ps)
	if err != nil {
		t.Fatal(err)
	}

	h := remoteHarness(db, 3)
	dying := &faults.NetDoer{Inner: h.Doer(0), Faults: []faults.NetFault{faults.DropOn(2, -1)}}
	m := &telemetry.Metrics{}
	pool := &shardrpc.Pool{
		Clients: []*shardrpc.Client{h.Client(0, dying), h.Client(1, h.Doer(1)), h.Client(2, h.Doer(2))},
		Retry:   shardrpc.RetryPolicy{Base: time.Microsecond},
		Metrics: m,
		Sleep:   func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	}
	got, err := RemoteShardValuerContext(context.Background(), seqdb.ShardScanner(db, 5), pool, c, 2, m)(ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("pattern %d: %v != %v after node death", i, got[i], want[i])
		}
	}
	snap := m.Snapshot()
	if snap.RemoteRetries == 0 && snap.RemoteReassigned == 0 {
		t.Errorf("node died mid-gather but no retries or reassignments recorded")
	}
}

// TestRemoteValuerShardLost: with every node dead the valuer must surface
// an error wrapping ErrShardLost for the pipeline to degrade on.
func TestRemoteValuerShardLost(t *testing.T) {
	db, c, ps := randomWorkload(t, 23, 100, 8)
	h := remoteHarness(db, 2)
	h.KillAll()
	pool := instantPool(h)
	pool.Retry.MaxAttempts = 2
	_, err := RemoteShardValuer(seqdb.ShardScanner(db, 3), pool, c, 0)(ps)
	if !errors.Is(err, shardrpc.ErrShardLost) {
		t.Fatalf("got %v, want ErrShardLost", err)
	}
}

// TestRemoteValuerScanAccounting: one remote gather = one logical pass on
// the coordinator's Sharded view; an empty batch costs nothing.
func TestRemoteValuerScanAccounting(t *testing.T) {
	db, c, ps := randomWorkload(t, 24, 120, 8)
	sh := seqdb.ShardScanner(db, 3)
	pool := instantPool(remoteHarness(db, 2))
	v := RemoteShardValuer(sh, pool, c, 0)
	if out, err := v(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
	if sh.Scans() != 0 {
		t.Fatalf("empty batch consumed %d logical passes", sh.Scans())
	}
	if _, err := v(ps); err != nil {
		t.Fatal(err)
	}
	if sh.Scans() != 1 {
		t.Errorf("Sharded.Scans=%d after one probe batch, want 1", sh.Scans())
	}
}
