package miner

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/compat"
	"repro/internal/pattern"
	"repro/internal/telemetry"
	"repro/internal/testutil"
)

func incTestMatrix(t *testing.T, m int, alpha float64) compat.Source {
	t.Helper()
	c, err := compat.UniformNoise(m, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func incTestSparse(t *testing.T, m int) compat.Source {
	t.Helper()
	var cells []compat.Cell
	for o := 0; o < m; o++ {
		cells = append(cells,
			compat.Cell{True: pattern.Symbol(o), Observed: pattern.Symbol(o), P: 0.88},
			compat.Cell{True: pattern.Symbol((o + 1) % m), Observed: pattern.Symbol(o), P: 0.12},
		)
	}
	c, err := compat.NewSparse(m, cells)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// incTestSample plants a motif so several lattice levels stay alive.
func incTestSample(n, length, m int, motif []pattern.Symbol, rng *rand.Rand) [][]pattern.Symbol {
	sample := make([][]pattern.Symbol, n)
	for i := range sample {
		seq := make([]pattern.Symbol, length)
		for j := range seq {
			seq[j] = pattern.Symbol(rng.Intn(m))
		}
		if rng.Float64() < 0.6 {
			at := rng.Intn(length - len(motif) + 1)
			copy(seq[at:], motif)
		}
		sample[i] = seq
	}
	return sample
}

func symbolMatches(c compat.Source, sample [][]pattern.Symbol) []float64 {
	out := make([]float64, c.Size())
	for d := range out {
		p := pattern.Pattern{pattern.Symbol(d)}
		sum := 0.0
		for _, seq := range sample {
			best := 0.0
			for _, obs := range seq {
				if v := c.C(p[0], obs); v > best {
					best = v
				}
			}
			sum += best
		}
		out[d] = sum / float64(len(sample))
	}
	return out
}

// runBoth mines the same sample with the naive and the incremental valuer
// and requires identical classifications and values within 1e-12.
func runBoth(t *testing.T, c compat.Source, sample [][]pattern.Symbol, cfg IncrementalConfig, minMatch float64, opts Options) (*Result, *Result) {
	t.Helper()
	sm := symbolMatches(c, sample)
	naive, err := SampleChernoff(c.Size(), MatchSampleValuer(c, sample), sm, minMatch, 1e-2, len(sample), opts)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	valuer, inc := IncrementalSampleValuer(c, sample, cfg)
	defer inc.Release()
	fast, err := SampleChernoff(c.Size(), valuer, sm, minMatch, 1e-2, len(sample), opts)
	if err != nil {
		t.Fatalf("incremental: %v", err)
	}

	if len(fast.Labels) != len(naive.Labels) {
		t.Fatalf("evaluated %d patterns, naive evaluated %d", len(fast.Labels), len(naive.Labels))
	}
	for key, label := range naive.Labels {
		if fast.Labels[key] != label {
			t.Errorf("pattern %s: incremental label %v, naive %v", key, fast.Labels[key], label)
		}
		if d := math.Abs(fast.Values[key] - naive.Values[key]); d > 1e-12 {
			t.Errorf("pattern %s: value drift %v (incremental %v, naive %v)",
				key, d, fast.Values[key], naive.Values[key])
		}
	}
	for _, pair := range []struct {
		name       string
		got, wantS *pattern.Set
	}{
		{"frequent", fast.Frequent, naive.Frequent},
		{"ambiguous", fast.Ambiguous, naive.Ambiguous},
		{"fqt", fast.FQT, naive.FQT},
		{"ceiling", fast.Ceiling, naive.Ceiling},
	} {
		if pair.got.Len() != pair.wantS.Len() || pair.got.Diff(pair.wantS).Len() != 0 {
			t.Fatalf("%s set mismatch: incremental %v, naive %v",
				pair.name, pair.got.Patterns(), pair.wantS.Patterns())
		}
	}
	return fast, naive
}

func TestSampleChernoffIncrementalEquivalence(t *testing.T) {
	rng := testutil.Rng(t)
	motif := []pattern.Symbol{2, 5, 1, 4}
	sample := incTestSample(120, 24, 8, motif, rng)
	opts := Options{MaxLen: 5, MaxGap: 1}

	t.Run("dense-sequential", func(t *testing.T) {
		runBoth(t, incTestMatrix(t, 8, 0.1), sample, IncrementalConfig{}, 0.25, opts)
	})
	t.Run("dense-parallel", func(t *testing.T) {
		runBoth(t, incTestMatrix(t, 8, 0.1), sample, IncrementalConfig{Workers: 4}, 0.25, opts)
	})
	t.Run("sparse-parallel", func(t *testing.T) {
		runBoth(t, incTestSparse(t, 8), sample, IncrementalConfig{Workers: 4}, 0.25, opts)
	})
	t.Run("budget-fallback", func(t *testing.T) {
		metrics := &telemetry.Metrics{}
		runBoth(t, incTestMatrix(t, 8, 0.1), sample,
			IncrementalConfig{Workers: 3, Budget: 1, Metrics: metrics}, 0.25, opts)
		snap := metrics.Snapshot()
		if snap.KernelFallbacks == 0 {
			t.Fatalf("expected budget fallbacks in telemetry: %+v", snap)
		}
	})
}

func TestIncrementalValuerTelemetry(t *testing.T) {
	rng := testutil.Rng(t)
	sample := incTestSample(64, 20, 6, []pattern.Symbol{1, 3, 2}, rng)
	c := incTestMatrix(t, 6, 0.08)
	metrics := &telemetry.Metrics{}
	valuer, inc := IncrementalSampleValuer(c, sample, IncrementalConfig{Workers: 2, Metrics: metrics})
	defer inc.Release()
	res, err := SampleChernoff(c.Size(), valuer, symbolMatches(c, sample), 0.3, 1e-2, len(sample), Options{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	snap := metrics.Snapshot()
	if snap.KernelExtended == 0 {
		t.Fatalf("no extensions recorded: %+v", snap)
	}
	if snap.KernelScratch == 0 {
		t.Fatal("level 1 should count as scratch")
	}
	if snap.KernelWindows == 0 || snap.KernelPeakBytes == 0 {
		t.Fatalf("cache accounting missing: windows=%d bytes=%d", snap.KernelWindows, snap.KernelPeakBytes)
	}
	if got := snap.KernelExtended + snap.KernelScratch; got != int64(len(res.Labels)) {
		t.Fatalf("kernel evaluated %d patterns, engine labeled %d", got, len(res.Labels))
	}
	if len(res.LevelMillis) != len(res.CandidatesPerLevel) {
		t.Fatalf("LevelMillis has %d entries for %d levels", len(res.LevelMillis), len(res.CandidatesPerLevel))
	}
}
