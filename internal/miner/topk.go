package miner

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/pattern"
)

// TopKResult reports a top-k mining run.
type TopKResult struct {
	// Patterns are the k highest-match patterns, descending by value (ties
	// broken by Key for determinism).
	Patterns []pattern.Pattern
	// Values are the corresponding database matches.
	Values []float64
	// Scans is the number of Valuer invocations.
	Scans int
	// Evaluated counts patterns measured against the database.
	Evaluated int
}

// TopK finds the k patterns with the highest database value, without a
// threshold, by best-first search over the lattice: candidates are expanded
// in descending order of their Apriori upper bound (a pattern's value never
// exceeds its generating parent's), and search stops when the best
// outstanding bound cannot beat the current k-th value. Candidates are
// evaluated in batches of batch per scan (0 = a sensible default). The
// valuer must compute exact values (the Apriori bound check rejects
// undercounting measures).
func TopK(m int, valuer Valuer, k int, batch int, opts Options) (*TopKResult, error) {
	if err := opts.validate(m); err != nil {
		return nil, err
	}
	if valuer == nil {
		return nil, fmt.Errorf("miner: valuer is required")
	}
	if k < 1 {
		return nil, fmt.Errorf("miner: k %d < 1", k)
	}
	if batch <= 0 {
		batch = 4 * k
		if batch < 64 {
			batch = 64
		}
	}
	res := &TopKResult{}

	// Evaluate all symbols first.
	level1 := make([]pattern.Pattern, 0, m)
	for d := 0; d < m; d++ {
		level1 = append(level1, pattern.Pattern{pattern.Symbol(d)})
	}
	values, err := valuer(level1)
	if err != nil {
		return nil, err
	}
	res.Scans++
	res.Evaluated += len(level1)
	opts.Metrics.LevelEvaluated(len(level1))

	// The Apriori upper bound of every candidate is its generating parent's
	// value, carried directly in the frontier entries (scored.value) — no
	// key-indexed value map is kept, so memory stays proportional to the
	// frontier, not to every pattern ever evaluated.
	top := &topkHeap{} // min-heap of the current best k
	frontier := &boundHeap{}
	for i, p := range level1 {
		pushTop(top, scored{p, values[i]}, k)
		heap.Push(frontier, scored{p, values[i]}) // bound = own value
	}

	kth := func() float64 {
		if top.Len() < k {
			return -1
		}
		return (*top)[0].value
	}

	seen := make(map[string]bool, m)
	for frontier.Len() > 0 {
		// Collect the next batch of candidates whose bounds can still beat
		// the k-th value: expand the best-bounded parents.
		var cands []pattern.Pattern
		var bounds []float64
		for frontier.Len() > 0 && len(cands) < batch {
			parent := heap.Pop(frontier).(scored)
			if parent.value <= kth() && top.Len() >= k {
				frontier = &boundHeap{} // every remaining bound is lower
				break
			}
			for gap := 0; gap <= opts.MaxGap; gap++ {
				if parent.p.Len()+gap+1 > opts.MaxLen {
					break
				}
				for d := 0; d < m; d++ {
					q := pattern.Extend(parent.p, gap, pattern.Symbol(d))
					key := q.Key()
					if seen[key] {
						continue
					}
					seen[key] = true
					cands = append(cands, q)
					bounds = append(bounds, parent.value)
				}
			}
		}
		if len(cands) == 0 {
			break
		}
		values, err := valuer(cands)
		if err != nil {
			return nil, err
		}
		res.Scans++
		res.Evaluated += len(cands)
		opts.Metrics.LevelEvaluated(len(cands))
		for i, q := range cands {
			v := values[i]
			if v > bounds[i]+1e-9 {
				return nil, fmt.Errorf("miner: measure violated the Apriori bound at %v (%v > %v)", q, v, bounds[i])
			}
			pushTop(top, scored{q, v}, k)
			if v > 0 && q.Len() < opts.MaxLen {
				heap.Push(frontier, scored{q, v})
			}
		}
	}

	out := make([]scored, top.Len())
	copy(out, *top)
	sort.Slice(out, func(a, b int) bool {
		if out[a].value != out[b].value {
			return out[a].value > out[b].value
		}
		return out[a].p.Key() < out[b].p.Key()
	})
	for _, s := range out {
		res.Patterns = append(res.Patterns, s.p)
		res.Values = append(res.Values, s.value)
	}
	return res, nil
}

type scored struct {
	p     pattern.Pattern
	value float64
}

// topkHeap is a min-heap over values (root = current k-th best).
type topkHeap []scored

func (h topkHeap) Len() int      { return len(h) }
func (h topkHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h topkHeap) Less(i, j int) bool {
	if h[i].value != h[j].value {
		return h[i].value < h[j].value
	}
	// Larger keys are "worse" so deterministic ties evict consistently.
	return h[i].p.Key() > h[j].p.Key()
}
func (h *topkHeap) Push(x any) { *h = append(*h, x.(scored)) }
func (h *topkHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func pushTop(top *topkHeap, s scored, k int) {
	if top.Len() < k {
		heap.Push(top, s)
		return
	}
	worst := (*top)[0]
	if s.value > worst.value || (s.value == worst.value && s.p.Key() < worst.p.Key()) {
		heap.Pop(top)
		heap.Push(top, s)
	}
}

// boundHeap is a max-heap over bounds (root = most promising parent).
type boundHeap []scored

func (h boundHeap) Len() int      { return len(h) }
func (h boundHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h boundHeap) Less(i, j int) bool {
	if h[i].value != h[j].value {
		return h[i].value > h[j].value
	}
	return h[i].p.Key() < h[j].p.Key()
}
func (h *boundHeap) Push(x any) { *h = append(*h, x.(scored)) }
func (h *boundHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
