package miner

import (
	"runtime"

	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/telemetry"
)

// IncrementalConfig tunes IncrementalSampleValuer.
type IncrementalConfig struct {
	// Workers shards the sample across this many goroutines per level
	// (0 or 1 = sequential, negative = GOMAXPROCS). Values are bit-identical
	// for every worker count — shard boundaries and the merge order are fixed
	// by the sample alone.
	Workers int
	// Budget bounds the prefix cache in bytes (0 = match.DefaultCacheBudget,
	// negative = unlimited); exceeding it degrades speed, never correctness.
	Budget int64
	// Metrics, when non-nil, receives per-level kernel telemetry
	// (extension/scratch counts, cached windows, bytes, evictions).
	Metrics *telemetry.Metrics
}

// IncrementalSampleValuer is the fast-path Phase 2 valuer: an incremental
// prefix-extension kernel (match.Incremental) wrapped as a Valuer for
// Engine.Run / SampleChernoffContext. Each lattice level is scored by
// extending the cached per-sequence window products of the previous level —
// one row lookup and one multiply per surviving window — instead of
// re-walking every pattern against the whole sample; values equal
// MatchSampleValuer's within float64 sum reassociation (per-sequence values
// are bit-identical).
//
// The kernel relies on the engine's level-serial contract: each call's
// candidates are right-extensions of the previous call's (any candidate
// without a cached parent is transparently recomputed from scratch, so
// out-of-order use is slower, never wrong). The returned kernel gives access
// to cumulative stats and to Release, which drops the final level's cache
// once mining ends.
func IncrementalSampleValuer(c compat.Source, sample [][]pattern.Symbol, cfg IncrementalConfig) (Valuer, *match.Incremental) {
	workers := cfg.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	inc := match.NewIncremental(c, sample, match.IncrementalOptions{
		Workers: workers,
		Budget:  cfg.Budget,
	})
	valuer := func(ps []pattern.Pattern) ([]float64, error) {
		vals, ls, err := inc.ValueLevel(ps)
		if err != nil {
			return nil, err
		}
		cfg.Metrics.KernelLevel(ls.Extended, ls.Scratch, ls.Windows, ls.Bytes, ls.Evicted, ls.Fallback)
		return vals, nil
	}
	return valuer, inc
}
