package miner

import (
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// TestParallelValuerBitwiseDeterministic pins the parallel kernel to the
// sequential one with exact float equality (not a tolerance): every worker
// set observes every sequence in delivery order, so per-pattern accumulation
// order — and therefore float rounding — is identical regardless of the
// worker count. A tolerance here would mask partitioning bugs that shuffle
// accumulation order.
func TestParallelValuerBitwiseDeterministic(t *testing.T) {
	db, c, ps := randomWorkload(t, 9, 250, 35)
	ref, err := MatchDBValuer(db, c)(ps)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		for trial := 0; trial < 3; trial++ {
			got, err := ParallelMatchDBValuer(db, c, workers)(ps)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d trial=%d pattern %d: %v != %v (not bit-identical)",
						workers, trial, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestParallelValuerWithTelemetryRace drives the parallel counting kernel
// through a telemetry-wrapped scanner while other goroutines snapshot the
// metrics — the exact concurrency shape of a Phase 3 probe scan with a
// progress reporter attached. Run under -race (CI does) this proves the
// per-sequence counters are safe against both the worker fan-out and
// concurrent readers; the final snapshot is then checked for lost updates.
func TestParallelValuerWithTelemetryRace(t *testing.T) {
	db, c, ps := randomWorkload(t, 10, 120, 20)
	m := &telemetry.Metrics{}
	m.SetPhase(3)
	wrapped := telemetry.NewScanner(db, m)
	valuer := ParallelMatchDBValuer(wrapped, c, 8)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = m.Snapshot()
				}
			}
		}()
	}

	const scans = 5
	want, err := MatchDBValuer(db, c)(ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < scans; i++ {
		got, err := valuer(ps)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("scan %d pattern %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
	close(stop)
	wg.Wait()

	snap := m.Snapshot()
	if snap.TotalSequences != int64(scans*db.Len()) {
		t.Errorf("TotalSequences=%d, want %d (lost per-sequence updates?)",
			snap.TotalSequences, scans*db.Len())
	}
	if got := snap.Phases[2].Scans; got != scans {
		t.Errorf("phase 3 scans=%d, want %d", got, scans)
	}
}
