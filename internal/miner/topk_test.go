package miner

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// bruteTopK computes the reference top-k by evaluating the whole space.
func bruteTopK(db *seqdb.MemDB, c *compat.Matrix, k, maxLen, maxGap int) []float64 {
	space := enumerateSpace(c.Size(), maxLen, maxGap)
	vals, err := match.DB(db, match.NewMatch(c), space)
	if err != nil {
		panic(err)
	}
	out := append([]float64(nil), vals...)
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] > out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

func TestTopKMatchesBruteForce(t *testing.T) {
	c := compat.Fig2()
	for _, k := range []int{1, 3, 5, 10, 25} {
		for _, bounds := range [][2]int{{3, 0}, {3, 1}} {
			maxLen, maxGap := bounds[0], bounds[1]
			db := fig4DB()
			res, err := TopK(5, MatchDBValuer(db, c), k, 0, Options{MaxLen: maxLen, MaxGap: maxGap})
			if err != nil {
				t.Fatal(err)
			}
			want := bruteTopK(fig4DB(), c, k, maxLen, maxGap)
			if len(res.Values) != len(want) {
				t.Fatalf("k=%d: got %d values, want %d", k, len(res.Values), len(want))
			}
			for i := range want {
				if math.Abs(res.Values[i]-want[i]) > 1e-9 {
					t.Errorf("k=%d rank %d: got %v (%v), want %v",
						k, i, res.Values[i], res.Patterns[i], want[i])
				}
			}
			// Descending order.
			for i := 1; i < len(res.Values); i++ {
				if res.Values[i] > res.Values[i-1] {
					t.Errorf("k=%d: not descending at %d", k, i)
				}
			}
		}
	}
}

func TestTopKRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 6; trial++ {
		m := 4 + rng.Intn(3)
		c, err := compat.UniformNoise(m, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		seqs := make([][]pattern.Symbol, 15)
		for i := range seqs {
			s := make([]pattern.Symbol, 4+rng.Intn(8))
			for j := range s {
				s[j] = pattern.Symbol(rng.Intn(m))
			}
			seqs[i] = s
		}
		k := 1 + rng.Intn(8)
		res, err := TopK(m, MatchDBValuer(seqdb.NewMemDB(seqs), c), k, 32, Options{MaxLen: 3, MaxGap: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteTopK(seqdb.NewMemDB(seqs), c, k, 3, 1)
		for i := range want {
			if math.Abs(res.Values[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d k=%d rank %d: %v vs %v", trial, k, i, res.Values[i], want[i])
			}
		}
	}
}

// TestTopKSeededWorkloadExact pins the full result — patterns and values,
// in order — on a seeded workload against an independent reference, so any
// change to the frontier bookkeeping (e.g. carrying Apriori bounds in the
// frontier entries instead of a side map) is proven behavior-identical.
func TestTopKSeededWorkloadExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	const m, maxLen, maxGap, k = 5, 4, 1, 20
	c, err := compat.UniformNoise(m, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]pattern.Symbol, 30)
	for i := range seqs {
		s := make([]pattern.Symbol, 6+rng.Intn(6))
		for j := range s {
			s[j] = pattern.Symbol(rng.Intn(m))
		}
		seqs[i] = s
	}

	res, err := TopK(m, MatchDBValuer(seqdb.NewMemDB(seqs), c), k, 0, Options{MaxLen: maxLen, MaxGap: maxGap})
	if err != nil {
		t.Fatal(err)
	}

	// Reference: evaluate the whole space, order by (value desc, key asc) —
	// TopK's documented tie-break.
	space := enumerateSpace(m, maxLen, maxGap)
	vals, err := match.DB(seqdb.NewMemDB(seqs), match.NewMatch(c), space)
	if err != nil {
		t.Fatal(err)
	}
	type ref struct {
		key string
		v   float64
	}
	refs := make([]ref, len(space))
	for i, p := range space {
		refs[i] = ref{p.Key(), vals[i]}
	}
	sort.Slice(refs, func(a, b int) bool {
		if refs[a].v != refs[b].v {
			return refs[a].v > refs[b].v
		}
		return refs[a].key < refs[b].key
	})

	if len(res.Patterns) != k {
		t.Fatalf("got %d patterns, want %d", len(res.Patterns), k)
	}
	for i := 0; i < k; i++ {
		if got, want := res.Patterns[i].Key(), refs[i].key; got != want {
			t.Errorf("rank %d: pattern %s, want %s", i, got, want)
		}
		if got, want := res.Values[i], refs[i].v; math.Abs(got-want) > 1e-12 {
			t.Errorf("rank %d: value %v, want %v", i, got, want)
		}
	}
}

func TestTopKPrunesSearch(t *testing.T) {
	// With k=1 the search should evaluate far fewer patterns than the space.
	c := compat.Fig2()
	res, err := TopK(5, MatchDBValuer(fig4DB(), c), 1, 16, Options{MaxLen: 3, MaxGap: 1})
	if err != nil {
		t.Fatal(err)
	}
	space := len(enumerateSpace(5, 3, 1))
	if res.Evaluated >= space {
		t.Errorf("evaluated %d of %d: no pruning", res.Evaluated, space)
	}
	if res.Scans < 1 {
		t.Error("no scans recorded")
	}
}

func TestTopKValidation(t *testing.T) {
	c := compat.Fig2()
	v := MatchDBValuer(fig4DB(), c)
	if _, err := TopK(5, v, 0, 0, Options{MaxLen: 3}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := TopK(5, nil, 1, 0, Options{MaxLen: 3}); err == nil {
		t.Error("nil valuer accepted")
	}
	if _, err := TopK(0, v, 1, 0, Options{MaxLen: 3}); err == nil {
		t.Error("m=0 accepted")
	}
	// A measure violating the Apriori bound is rejected (symbols get
	// distinct values so the best parent exceeds the k-th value and is
	// expanded before pruning can hide the violation).
	bad := func(ps []pattern.Pattern) ([]float64, error) {
		out := make([]float64, len(ps))
		for i, p := range ps {
			if p.K() == 1 {
				out[i] = 0.1 * float64(1+int(p[0]))
			} else {
				out[i] = 0.9 // exceeds every parent: invalid
			}
		}
		return out, nil
	}
	if _, err := TopK(3, bad, 2, 0, Options{MaxLen: 3}); err == nil {
		t.Error("non-monotone measure accepted")
	}
}
