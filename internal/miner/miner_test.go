package miner

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/chernoff"
	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/support"
)

const (
	d1 = pattern.Symbol(0)
	d2 = pattern.Symbol(1)
	d3 = pattern.Symbol(2)
	d4 = pattern.Symbol(3)
	d5 = pattern.Symbol(4)
	et = pattern.Eternal
)

func fig4DB() *seqdb.MemDB {
	return seqdb.NewMemDB([][]pattern.Symbol{
		{d1, d2, d3, d1},
		{d4, d2, d1},
		{d3, d4, d2, d1},
		{d2, d2},
	})
}

// enumerateSpace lists every valid pattern over m symbols with total length
// at most maxLen and eternal runs at most maxGap — the brute-force mirror of
// the engine's search space.
func enumerateSpace(m, maxLen, maxGap int) []pattern.Pattern {
	var out []pattern.Pattern
	var rec func(cur pattern.Pattern, gapRun int)
	rec = func(cur pattern.Pattern, gapRun int) {
		if len(cur) > 0 && !cur[len(cur)-1].IsEternal() {
			out = append(out, cur.Clone())
		}
		if len(cur) >= maxLen {
			return
		}
		for d := 0; d < m; d++ {
			rec(append(cur, pattern.Symbol(d)), 0)
		}
		if len(cur) > 0 && gapRun < maxGap {
			rec(append(cur, et), gapRun+1)
		}
	}
	rec(nil, 0)
	return out
}

// bruteForceFrequent computes the exact frequent set by evaluating every
// pattern in the space directly.
func bruteForceFrequent(db *seqdb.MemDB, meas match.Measure, minMatch float64, m, maxLen, maxGap int) *pattern.Set {
	space := enumerateSpace(m, maxLen, maxGap)
	vals, err := match.DB(db, meas, space)
	if err != nil {
		panic(err)
	}
	s := pattern.NewSet()
	for i, p := range space {
		if vals[i] >= minMatch {
			s.Add(p)
		}
	}
	return s
}

func setsEqual(t *testing.T, got, want *pattern.Set, label string) {
	t.Helper()
	for _, p := range want.Patterns() {
		if !got.Contains(p) {
			t.Errorf("%s: missing %v", label, p)
		}
	}
	for _, p := range got.Patterns() {
		if !want.Contains(p) {
			t.Errorf("%s: extra %v", label, p)
		}
	}
}

func TestExhaustiveMatchesBruteForce(t *testing.T) {
	c := compat.Fig2()
	meas := match.NewMatch(c)
	for _, minMatch := range []float64{0.01, 0.05, 0.1, 0.3} {
		for _, opts := range []Options{
			{MaxLen: 3, MaxGap: 0},
			{MaxLen: 3, MaxGap: 1},
			{MaxLen: 4, MaxGap: 2},
		} {
			db := fig4DB()
			res, err := Exhaustive(5, DBValuer(db, meas), minMatch, opts)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForceFrequent(fig4DB(), meas, minMatch, 5, opts.MaxLen, opts.MaxGap)
			setsEqual(t, res.Frequent, want,
				fmt.Sprintf("min_match=%v opts=%+v", minMatch, opts))
			if res.Truncated {
				t.Error("unexpected truncation")
			}
			// One scan per evaluated level.
			if db.Scans() != res.Scans {
				t.Errorf("Scans mismatch: db=%d result=%d", db.Scans(), res.Scans)
			}
		}
	}
}

func TestExhaustiveSupportMatchesBruteForce(t *testing.T) {
	meas := support.Support{}
	opts := Options{MaxLen: 4, MaxGap: 1}
	res, err := Exhaustive(5, DBValuer(fig4DB(), meas), 0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForceFrequent(fig4DB(), meas, 0.5, 5, 4, 1)
	setsEqual(t, res.Frequent, want, "support model")
}

func TestExhaustiveFQTIsBorder(t *testing.T) {
	c := compat.Fig2()
	res, err := Exhaustive(5, DBValuer(fig4DB(), match.NewMatch(c)), 0.05, Options{MaxLen: 3, MaxGap: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := pattern.Border(res.Frequent)
	setsEqual(t, res.FQT, want, "FQT")
	// Every frequent pattern is covered by the border.
	for _, p := range res.Frequent.Patterns() {
		if !res.FQT.CoveredBy(p) {
			t.Errorf("frequent %v not covered by FQT", p)
		}
	}
}

func TestExhaustiveCandidateCounts(t *testing.T) {
	c := compat.Fig2()
	res, err := Exhaustive(5, DBValuer(fig4DB(), match.NewMatch(c)), 0.05, Options{MaxLen: 3, MaxGap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidatesPerLevel[0] != 5 {
		t.Errorf("level-1 candidates=%d, want 5 (=m)", res.CandidatesPerLevel[0])
	}
	if len(res.CandidatesPerLevel) != len(res.AlivePerLevel) {
		t.Error("per-level slices out of sync")
	}
	for k, alive := range res.AlivePerLevel {
		if alive > res.CandidatesPerLevel[k] {
			t.Errorf("level %d: alive %d > candidates %d", k+1, alive, res.CandidatesPerLevel[k])
		}
	}
}

func TestSpaceBoundsRespected(t *testing.T) {
	c := compat.Fig2()
	opts := Options{MaxLen: 3, MaxGap: 1}
	res, err := Exhaustive(5, DBValuer(fig4DB(), match.NewMatch(c)), 0.001, opts)
	if err != nil {
		t.Fatal(err)
	}
	check := func(s *pattern.Set) {
		for _, p := range s.Patterns() {
			if p.Len() > opts.MaxLen {
				t.Errorf("%v exceeds MaxLen", p)
			}
			if maxGapRun(p) > opts.MaxGap {
				t.Errorf("%v exceeds MaxGap", p)
			}
		}
	}
	check(res.Frequent)
	check(res.Ambiguous)
}

func TestMaxKCapsLevels(t *testing.T) {
	c := compat.Fig2()
	res, err := Exhaustive(5, DBValuer(fig4DB(), match.NewMatch(c)), 0.001, Options{MaxLen: 4, MaxGap: 1, MaxK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CandidatesPerLevel) > 2 {
		t.Errorf("explored %d levels despite MaxK=2", len(res.CandidatesPerLevel))
	}
}

func TestTruncation(t *testing.T) {
	c := compat.Fig2()
	res, err := Exhaustive(5, DBValuer(fig4DB(), match.NewMatch(c)), 0.001,
		Options{MaxLen: 3, MaxGap: 1, MaxCandidatesPerLevel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("expected truncation with a 4-candidate cap")
	}
	for k, n := range res.CandidatesPerLevel {
		if k > 0 && n > 4 {
			t.Errorf("level %d evaluated %d candidates despite cap", k+1, n)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	v := SampleValuer(support.Support{}, nil)
	cases := []Engine{
		{M: 0, Opts: Options{MaxLen: 3}, Value: v, Classify: alwaysFrequent},
		{M: 5, Opts: Options{MaxLen: 0}, Value: v, Classify: alwaysFrequent},
		{M: 5, Opts: Options{MaxLen: 3, MaxGap: -1}, Value: v, Classify: alwaysFrequent},
		{M: 5, Opts: Options{MaxLen: 3}, Value: nil, Classify: alwaysFrequent},
		{M: 5, Opts: Options{MaxLen: 3}, Value: v, Classify: nil},
	}
	for i := range cases {
		if _, err := cases[i].Run(); err == nil {
			t.Errorf("case %d: invalid engine accepted", i)
		}
	}
}

func alwaysFrequent(_ pattern.Pattern, _, _ float64) chernoff.Label { return chernoff.Frequent }

func TestValuerLengthMismatchDetected(t *testing.T) {
	e := &Engine{
		M:    3,
		Opts: Options{MaxLen: 2},
		Value: func(ps []pattern.Pattern) ([]float64, error) {
			return make([]float64, len(ps)+1), nil
		},
		Classify: alwaysFrequent,
	}
	if _, err := e.Run(); err == nil {
		t.Error("mismatched valuer output accepted")
	}
}

func TestSampleChernoffFullSampleIsExact(t *testing.T) {
	// With the sample being the entire database, sample matches equal true
	// matches; frequent∪ambiguous must cover the exact frequent set, and the
	// (deterministically labeled) frequent set must be a subset of it.
	c := compat.Fig2()
	db := fig4DB()
	var sample [][]pattern.Symbol
	if err := db.Scan(func(_ int, seq []pattern.Symbol) error {
		cp := make([]pattern.Symbol, len(seq))
		copy(cp, seq)
		sample = append(sample, cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	symbolMatch, err := match.Symbols(db, c)
	if err != nil {
		t.Fatal(err)
	}
	const minMatch, delta = 0.05, 0.001
	opts := Options{MaxLen: 3, MaxGap: 1}
	res, err := SampleChernoff(5, MatchSampleValuer(c, sample), symbolMatch, minMatch, delta, len(sample), opts)
	if err != nil {
		t.Fatal(err)
	}
	truth := bruteForceFrequent(fig4DB(), match.NewMatch(c), minMatch, 5, 3, 1)

	alive := res.Frequent.Clone()
	alive.Union(res.Ambiguous)
	for _, p := range truth.Patterns() {
		if !alive.Contains(p) {
			t.Errorf("true frequent %v labeled infrequent", p)
		}
	}
	for _, p := range res.Frequent.Patterns() {
		if !truth.Contains(p) {
			t.Errorf("sample-frequent %v is not truly frequent", p)
		}
	}
	// Level 1 must have no ambiguous symbols (exact labeling).
	for d := 0; d < 5; d++ {
		p := pattern.Pattern{pattern.Symbol(d)}
		if res.Labels[p.Key()] == chernoff.Ambiguous {
			t.Errorf("symbol %v labeled ambiguous despite exact Phase-1 matches", p)
		}
	}
}

func TestSampleChernoffSpreadsRecorded(t *testing.T) {
	c := compat.Fig2()
	db := fig4DB()
	symbolMatch, err := match.Symbols(db, c)
	if err != nil {
		t.Fatal(err)
	}
	sample := [][]pattern.Symbol{{d1, d2, d3, d1}, {d4, d2, d1}}
	res, err := SampleChernoff(5, MatchSampleValuer(c, sample), symbolMatch, 0.05, 0.001, 2, Options{MaxLen: 2, MaxGap: 0})
	if err != nil {
		t.Fatal(err)
	}
	for key, spread := range res.Spreads {
		if spread < 0 || spread > 1 {
			t.Errorf("spread of %s = %v", key, spread)
		}
	}
	// A 2-pattern's spread is the min of its symbols' matches.
	p := pattern.MustNew(d1, d2)
	if got, ok := res.Spreads[p.Key()]; ok {
		want := math.Min(symbolMatch[d1], symbolMatch[d2])
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("spread(%v)=%v, want %v", p, got, want)
		}
	}
}

func TestSampleChernoffLabelMonotonicity(t *testing.T) {
	// After clamping, every frequent pattern's immediate subpatterns (in
	// space) must be frequent, and frequent∪ambiguous must be downward
	// closed — the property Phase 3 relies on.
	c := compat.Fig2()
	db := fig4DB()
	symbolMatch, err := match.Symbols(db, c)
	if err != nil {
		t.Fatal(err)
	}
	sample := [][]pattern.Symbol{{d1, d2, d3, d1}, {d4, d2, d1}, {d2, d2}}
	opts := Options{MaxLen: 3, MaxGap: 1}
	res, err := SampleChernoff(5, MatchSampleValuer(c, sample), symbolMatch, 0.05, 0.1, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	for key, label := range res.Labels {
		if label == chernoff.Infrequent {
			continue
		}
		p := mustParseKey(t, key)
		for _, sub := range p.ImmediateSubpatterns() {
			if maxGapRun(sub) > opts.MaxGap {
				continue
			}
			subLabel, ok := res.Labels[sub.Key()]
			if !ok {
				t.Errorf("alive pattern %v has unevaluated subpattern %v", p, sub)
				continue
			}
			if subLabel < label {
				t.Errorf("monotonicity violated: %v=%v but subpattern %v=%v", p, label, sub, subLabel)
			}
		}
	}
}

func TestParentKey(t *testing.T) {
	p := pattern.MustNew(d1, et, d3, et, d5)
	want := pattern.MustNew(d1, et, d3).Key()
	if got := parentKey(p); got != want {
		t.Errorf("parentKey=%q, want %q", got, want)
	}
	if got := parentKey(pattern.MustNew(d1)); got != "" {
		t.Errorf("parentKey of 1-pattern=%q, want empty", got)
	}
}

func TestMaxGapRun(t *testing.T) {
	cases := []struct {
		p    pattern.Pattern
		want int
	}{
		{pattern.MustNew(d1, d2), 0},
		{pattern.MustNew(d1, et, d2), 1},
		{pattern.MustNew(d1, et, et, d2, et, d3), 2},
	}
	for _, c := range cases {
		if got := maxGapRun(c.p); got != c.want {
			t.Errorf("maxGapRun(%v)=%d, want %d", c.p, got, c.want)
		}
	}
}

// mustParseKey reverses Pattern.Key for test assertions.
func mustParseKey(t *testing.T, key string) pattern.Pattern {
	t.Helper()
	p, err := pattern.ParseKey(key)
	if err != nil {
		t.Fatalf("bad key %q: %v", key, err)
	}
	return p
}

func TestGapBoundedSubpatternPruning(t *testing.T) {
	// The candidate q = d1 * d3 d4 has three immediate subpatterns: d3 d4,
	// d1 * d3, and d1 * * d4 (starring d3). The last has a gap run of 2:
	// with MaxGap=1 it lies outside the explored space and must be exempt
	// from the aliveness check; with MaxGap=2 it is in space, carries no
	// value, and must prune the candidate.
	values := map[string]float64{}
	for _, p := range []pattern.Pattern{
		pattern.MustNew(d1), pattern.MustNew(d3), pattern.MustNew(d4),
		pattern.MustNew(d1, et, d3), pattern.MustNew(d3, d4),
		pattern.MustNew(d1, et, d3, d4),
	} {
		values[p.Key()] = 1
	}
	valuer := func(ps []pattern.Pattern) ([]float64, error) {
		out := make([]float64, len(ps))
		for i, p := range ps {
			out[i] = values[p.Key()]
		}
		return out, nil
	}
	q := pattern.MustNew(d1, et, d3, d4)

	res, err := Exhaustive(5, valuer, 0.5, Options{MaxLen: 4, MaxGap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Frequent.Contains(q) {
		t.Error("gap-exempt pruning broken: d1 * d3 d4 not mined at MaxGap=1")
	}

	res2, err := Exhaustive(5, valuer, 0.5, Options{MaxLen: 4, MaxGap: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Frequent.Contains(q) {
		t.Error("in-space infrequent subpattern d1 * * d4 did not prune the candidate at MaxGap=2")
	}
}
