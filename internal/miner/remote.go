package miner

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/compat"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/shardrpc"
	"repro/internal/telemetry"
)

// RemoteShardValuer is ShardedMatchDBValuer with the shard scans pushed over
// the network: each probe batch is scattered to the pool's nodes — one RPC
// per shard of sh's layout — and the returned per-block (sums, count)
// partials are gathered with the same ascending-order merge as the local
// path. sh supplies only the layout (shard count, block size, total); its
// sequences are never read by the coordinator.
//
// Determinism: remote partials are computed by the identical
// structure-of-arrays kernel over the identical probe blocks, and Go's JSON
// float64 encoding round-trips bit-exactly, so the gathered values are
// bit-identical to the single-machine path's no matter which node served
// which shard, how often shards were reassigned, or which hedge won.
// Failure handling — reassignment, backoff, hedging, shard loss — lives in
// the Pool; a shard no node can serve surfaces as an error wrapping
// shardrpc.ErrShardLost, which the pipeline degrades on gracefully.
func RemoteShardValuer(sh *seqdb.Sharded, pool *shardrpc.Pool, c compat.Source, workers int) Valuer {
	return RemoteShardValuerContext(nil, sh, pool, c, workers, nil)
}

// RemoteShardValuerContext is RemoteShardValuer with cancellation and
// telemetry. workers bounds the concurrently in-flight shard RPCs (<= 0
// scatters all shards at once — probes are network-bound, not CPU-bound, on
// the coordinator). Byte telemetry is estimated: the bytes were read on the
// workers.
func RemoteShardValuerContext(ctx context.Context, sh *seqdb.Sharded, pool *shardrpc.Pool, c compat.Source, workers int, m *telemetry.Metrics) Valuer {
	return func(ps []pattern.Pattern) ([]float64, error) {
		if len(ps) == 0 {
			return nil, nil
		}
		if ctx == nil {
			ctx = context.Background()
		}
		shards := sh.NumShards()
		base := shardrpc.NewProbeRequest(c, ps, sh.Len(), shards, sh.BlockSize())
		conc := workers
		if conc <= 0 || conc > shards {
			conc = shards
		}

		start := time.Now()
		results := make([]*shardrpc.ProbeResponse, shards)
		errs := make([]error, shards)
		next := make(chan int)
		var wg sync.WaitGroup
		wg.Add(conc)
		for w := 0; w < conc; w++ {
			go func() {
				defer wg.Done()
				for s := range next {
					req := *base
					req.Shard = s
					results[s], errs[s] = pool.Probe(ctx, &req)
				}
			}()
		}
		for s := 0; s < shards; s++ {
			next <- s
		}
		close(next)
		wg.Wait()
		// First error in shard order, so the reported failure is
		// deterministic even when several shards fail at once.
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}

		// Gather: fold block sums in ascending global id order — shards are
		// contiguous ascending ranges, so shard order is block order.
		sums := make([]float64, len(ps))
		n := 0
		var symbols int64
		for s, r := range results {
			for _, b := range r.Blocks {
				if len(b.Sums) != len(ps) {
					return nil, fmt.Errorf("miner: shard %d returned %d sums for a %d-pattern batch", s, len(b.Sums), len(ps))
				}
				for i, v := range b.Sums {
					sums[i] += v
				}
				n += b.N
			}
			symbols += r.Symbols
		}
		if n > 0 {
			for i := range sums {
				sums[i] /= float64(n)
			}
		}
		sh.NotePass()
		m.ScanDone(4*symbols, true)
		m.ShardScan(time.Since(start), int64(n), -1)
		return sums, nil
	}
}
