package miner

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

func randomWorkload(t *testing.T, seed int64, n, l int) (*seqdb.MemDB, *compat.Matrix, []pattern.Pattern) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const m = 10
	seqs := make([][]pattern.Symbol, n)
	for i := range seqs {
		s := make([]pattern.Symbol, l)
		for j := range s {
			s[j] = pattern.Symbol(rng.Intn(m))
		}
		seqs[i] = s
	}
	c, err := compat.UniformNoise(m, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	var ps []pattern.Pattern
	for i := 0; i < 37; i++ {
		p := make(pattern.Pattern, 1+rng.Intn(3))
		for j := range p {
			p[j] = pattern.Symbol(rng.Intn(m))
		}
		ps = append(ps, p)
	}
	return seqdb.NewMemDB(seqs), c, ps
}

func TestParallelValuerMatchesSequential(t *testing.T) {
	db, c, ps := randomWorkload(t, 1, 200, 30)
	seq, err := MatchDBValuer(db, c)(ps)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		par, err := ParallelMatchDBValuer(db, c, workers)(ps)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: got %d values", workers, len(par))
		}
		for i := range seq {
			if math.Abs(par[i]-seq[i]) > 1e-12 {
				t.Fatalf("workers=%d pattern %d: %v vs %v", workers, i, par[i], seq[i])
			}
		}
	}
}

func TestParallelValuerOnDiskDB(t *testing.T) {
	mem, c, ps := randomWorkload(t, 2, 300, 40)
	path := filepath.Join(t.TempDir(), "p.lsq")
	if err := seqdb.WriteFile(path, mem); err != nil {
		t.Fatal(err)
	}
	disk, err := seqdb.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MatchDBValuer(mem, c)(ps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParallelMatchDBValuer(disk, c, 4)(ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("pattern %d: %v vs %v (DiskDB buffer reuse?)", i, got[i], want[i])
		}
	}
	if disk.Scans() != 1 {
		t.Errorf("parallel valuer consumed %d scans, want 1", disk.Scans())
	}
}

func TestParallelValuerEmptyBatch(t *testing.T) {
	db, c, _ := randomWorkload(t, 3, 10, 5)
	out, err := ParallelMatchDBValuer(db, c, 4)(nil)
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch: %v, %v", out, err)
	}
	// Regression: an empty batch used to burn a full database scan counting
	// nothing. It must answer without touching the database.
	if db.Scans() != 0 {
		t.Errorf("empty batch consumed %d scans, want 0", db.Scans())
	}
}

func TestValuersEmptyBatchNoScan(t *testing.T) {
	db, c, _ := randomWorkload(t, 3, 10, 5)
	valuers := map[string]Valuer{
		"MatchDBValuer": MatchDBValuer(db, c),
		"DBValuer":      DBValuer(db, match.NewMatch(c)),
	}
	for name, v := range valuers {
		out, err := v(nil)
		if err != nil || len(out) != 0 {
			t.Errorf("%s: empty batch: %v, %v", name, out, err)
		}
	}
	if db.Scans() != 0 {
		t.Errorf("empty batches consumed %d scans, want 0", db.Scans())
	}
}

func TestParallelValuerPropagatesScanError(t *testing.T) {
	db, c, ps := randomWorkload(t, 4, 50, 10)
	boom := errors.New("boom")
	failing := &failingScanner{inner: db, failAt: 7, err: boom}
	_, err := ParallelMatchDBValuer(failing, c, 4)(ps)
	if !errors.Is(err, boom) {
		t.Errorf("err=%v, want boom", err)
	}
}

// failingScanner aborts the pass at a given sequence index.
type failingScanner struct {
	inner  seqdb.Scanner
	failAt int
	err    error
}

func (f *failingScanner) Scan(fn func(int, []pattern.Symbol) error) error {
	return f.inner.Scan(func(id int, seq []pattern.Symbol) error {
		if id == f.failAt {
			return f.err
		}
		return fn(id, seq)
	})
}

func (f *failingScanner) Len() int    { return f.inner.Len() }
func (f *failingScanner) Scans() int  { return f.inner.Scans() }
func (f *failingScanner) ResetScans() { f.inner.ResetScans() }
