package miner

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// ParallelMatchDBValuer is MatchDBValuer with the per-scan counting work
// spread across workers goroutines (0 = GOMAXPROCS). The scan remains a
// single sequential pass — the paper's cost model — but each block of
// sequences is matched against worker-private pattern partitions, so
// counters are written without contention and results are deterministic.
//
// Use it for wide probe scans (many counters per pass); for small batches
// the sequential valuer's lower constant wins.
func ParallelMatchDBValuer(db seqdb.Scanner, c compat.Source, workers int) Valuer {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return func(ps []pattern.Pattern) ([]float64, error) {
		if len(ps) == 0 {
			if err := db.Scan(func(int, []pattern.Symbol) error { return nil }); err != nil {
				return nil, err
			}
			return nil, nil
		}
		w := workers
		if w > len(ps) {
			w = len(ps)
		}
		// Partition patterns into w contiguous chunks, one CompiledSet each.
		sets := make([]*match.CompiledSet, w)
		bounds := make([]int, w+1)
		for i := 0; i < w; i++ {
			bounds[i+1] = (len(ps) * (i + 1)) / w
			set, err := match.CompileSet(c, ps[bounds[i]:bounds[i+1]])
			if err != nil {
				return nil, err
			}
			sets[i] = set
		}

		const blockSize = 256
		block := make([][]pattern.Symbol, 0, blockSize)
		var wg sync.WaitGroup
		flush := func() {
			if len(block) == 0 {
				return
			}
			wg.Add(w)
			for i := 0; i < w; i++ {
				go func(set *match.CompiledSet) {
					defer wg.Done()
					for _, seq := range block {
						set.Observe(seq)
					}
				}(sets[i])
			}
			wg.Wait()
			block = block[:0]
		}
		err := db.Scan(func(id int, seq []pattern.Symbol) error {
			// The scanner may reuse its buffer (DiskDB does), so block
			// entries are copies.
			cp := make([]pattern.Symbol, len(seq))
			copy(cp, seq)
			block = append(block, cp)
			if len(block) == blockSize {
				flush()
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		flush()

		n := db.Len()
		out := make([]float64, 0, len(ps))
		for i := 0; i < w; i++ {
			part := sets[i].Matches(n)
			if len(part) != bounds[i+1]-bounds[i] {
				return nil, fmt.Errorf("miner: worker %d returned %d values", i, len(part))
			}
			out = append(out, part...)
		}
		return out, nil
	}
}
