package miner

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// ParallelMatchDBValuer is MatchDBValuer with the per-scan counting work
// spread across workers goroutines (0 = GOMAXPROCS). The scan remains a
// single sequential pass — the paper's cost model — but each block of
// sequences is matched against worker-private pattern partitions, so
// counters are written without contention and results are deterministic.
//
// Use it for wide probe scans (many counters per pass); for small batches
// the sequential valuer's lower constant wins.
func ParallelMatchDBValuer(db seqdb.Scanner, c compat.Source, workers int) Valuer {
	return ParallelMatchDBValuerContext(nil, db, c, workers)
}

// ParallelMatchDBValuerContext is ParallelMatchDBValuer with cancellation
// checked between sequences and before every block flush. Worker-private
// compiled sets and block state are rebuilt per scan attempt, so a retrying
// scanner can re-run a failed pass without double-counting.
func ParallelMatchDBValuerContext(ctx context.Context, db seqdb.Scanner, c compat.Source, workers int) Valuer {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return func(ps []pattern.Pattern) ([]float64, error) {
		if len(ps) == 0 {
			// Nothing to count: answering from thin air costs no pass, so
			// don't burn a full database scan on an empty batch.
			return nil, nil
		}
		w := workers
		if w > len(ps) {
			w = len(ps)
		}

		const blockSize = 256
		var sets []*match.CompiledSet
		var bounds []int
		var finalFlush func() error
		err := seqdb.ScanPassContext(ctx, db, func() (func(int, []pattern.Symbol) error, error) {
			// Per-attempt state: pattern partitions, one CompiledSet each,
			// and the block accumulator — fresh on every (re-)run.
			sets = make([]*match.CompiledSet, w)
			bounds = make([]int, w+1)
			for i := 0; i < w; i++ {
				bounds[i+1] = (len(ps) * (i + 1)) / w
				set, err := match.CompileSet(c, ps[bounds[i]:bounds[i+1]])
				if err != nil {
					return nil, err
				}
				sets[i] = set
			}
			// The scanner may reuse its buffer (DiskDB does), so delivered
			// sequences are copied — into a pooled per-block arena reused
			// across flushes, not a fresh slice per sequence. flush is
			// synchronous (it joins the workers before returning), so the
			// arena is free for reuse the moment it returns; steady-state
			// the accumulator allocates nothing.
			arena := make([]pattern.Symbol, 0, blockSize*64)
			lens := make([]int, 0, blockSize)
			block := make([][]pattern.Symbol, blockSize)
			attemptSets := sets
			flush := func() error {
				if len(lens) == 0 {
					return nil
				}
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
				// Materialize the block views only now: appends may have
				// regrown the arena mid-block, and slicing the final backing
				// array keeps every view valid.
				off := 0
				for i, l := range lens {
					block[i] = arena[off : off+l : off+l]
					off += l
				}
				filled := block[:len(lens)]
				var wg sync.WaitGroup
				wg.Add(w)
				for i := 0; i < w; i++ {
					go func(set *match.CompiledSet) {
						defer wg.Done()
						for _, seq := range filled {
							set.Observe(seq)
						}
					}(attemptSets[i])
				}
				wg.Wait()
				arena = arena[:0]
				lens = lens[:0]
				return nil
			}
			finalFlush = flush
			return func(id int, seq []pattern.Symbol) error {
				arena = append(arena, seq...)
				lens = append(lens, len(seq))
				if len(lens) == blockSize {
					return flush()
				}
				return nil
			}, nil
		})
		if err != nil {
			return nil, err
		}
		// Drain the last partial block of the successful attempt.
		if err := finalFlush(); err != nil {
			return nil, err
		}

		// Every worker set observed every delivered sequence, so its internal
		// observation count is the delivered-sequence count — divide by that,
		// not db.Len(), which may be stale for some scanners.
		out := make([]float64, 0, len(ps))
		for i := 0; i < w; i++ {
			part := sets[i].Matches(0)
			if len(part) != bounds[i+1]-bounds[i] {
				return nil, fmt.Errorf("miner: worker %d returned %d values", i, len(part))
			}
			out = append(out, part...)
		}
		return out, nil
	}
}
