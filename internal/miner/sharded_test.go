package miner

import (
	"math"
	"testing"

	"repro/internal/seqdb"
)

// TestShardedValuerInvariance: the scatter-gather valuer must return
// bit-identical values for every shard and worker count over the same
// database — the block-accumulate + ascending-merge discipline.
func TestShardedValuerInvariance(t *testing.T) {
	db, c, ps := randomWorkload(t, 11, 400, 12)
	var ref []float64
	for _, shards := range []int{1, 2, 3, 5, 8, 64} {
		for _, workers := range []int{0, 1, 2, 7} {
			sh := seqdb.ShardScanner(db, shards)
			got, err := ShardedMatchDBValuer(sh, c, workers)(ps)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = got
				continue
			}
			for i := range ps {
				if got[i] != ref[i] {
					t.Fatalf("shards=%d workers=%d pattern %d: %v != %v (not bit-identical)",
						shards, workers, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestShardedValuerAgreesWithSequential: block-merged sums differ from the
// single-pass running sum only by float addition reassociation.
func TestShardedValuerAgreesWithSequential(t *testing.T) {
	db, c, ps := randomWorkload(t, 12, 300, 10)
	want, err := MatchDBValuer(db, c)(ps)
	if err != nil {
		t.Fatal(err)
	}
	sh := seqdb.ShardScanner(db, 4)
	got, err := ShardedMatchDBValuer(sh, c, 0)(ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("pattern %d: sharded %v vs sequential %v", i, got[i], want[i])
		}
	}
}

// TestShardedValuerScanAccounting: one gather = one logical pass on the
// Sharded, zero full passes on the backing store, and no pass at all for an
// empty batch.
func TestShardedValuerScanAccounting(t *testing.T) {
	db, c, ps := randomWorkload(t, 13, 200, 8)
	sh := seqdb.ShardScanner(db, 3)
	v := ShardedMatchDBValuer(sh, c, 0)
	if out, err := v(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
	if sh.Scans() != 0 {
		t.Fatalf("empty batch consumed %d logical passes, want 0", sh.Scans())
	}
	if _, err := v(ps); err != nil {
		t.Fatal(err)
	}
	if sh.Scans() != 1 {
		t.Errorf("Sharded.Scans=%d after one probe, want 1", sh.Scans())
	}
	if db.Scans() != 0 {
		t.Errorf("backing store counted %d full passes, want 0", db.Scans())
	}
}
