package compat

import (
	"bytes"
	"testing"
)

// FuzzReadFrom checks the matrix text parser never panics and that every
// accepted matrix is valid and round-trips.
func FuzzReadFrom(f *testing.F) {
	var seed bytes.Buffer
	if _, err := Fig2().WriteTo(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("compat 1\n1\n"))
	f.Add([]byte("compat 2\n0.5 0\n0.5 1\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte("compat -3\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if back.Size() != m.Size() {
			t.Fatal("round trip changed size")
		}
	})
}
