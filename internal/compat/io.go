package compat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTo serializes the matrix as text: a first line "compat <m>" followed
// by m rows of m space-separated probabilities (rows = true values). The
// format round-trips through ReadFrom.
func (c *Matrix) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	k, err := fmt.Fprintf(bw, "compat %d\n", c.m)
	n += int64(k)
	if err != nil {
		return n, err
	}
	for i := 0; i < c.m; i++ {
		for j := 0; j < c.m; j++ {
			sep := " "
			if j == 0 {
				sep = ""
			}
			k, err = fmt.Fprintf(bw, "%s%g", sep, c.dense[i][j])
			n += int64(k)
			if err != nil {
				return n, err
			}
		}
		k, err = fmt.Fprintln(bw)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom parses the format produced by WriteTo and validates the matrix.
func ReadFrom(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, fmt.Errorf("compat: missing header: %w", firstErr(sc.Err()))
	}
	var m int
	if _, err := fmt.Sscanf(sc.Text(), "compat %d", &m); err != nil {
		return nil, fmt.Errorf("compat: bad header %q: %w", sc.Text(), err)
	}
	if m <= 0 {
		return nil, fmt.Errorf("compat: non-positive size %d", m)
	}
	dense := make([][]float64, m)
	for i := 0; i < m; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("compat: truncated at row %d: %w", i, firstErr(sc.Err()))
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != m {
			return nil, fmt.Errorf("compat: row %d has %d fields, want %d", i, len(fields), m)
		}
		dense[i] = make([]float64, m)
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("compat: row %d col %d: %w", i, j, err)
			}
			dense[i][j] = v
		}
	}
	return New(dense)
}

func firstErr(err error) error {
	if err != nil {
		return err
	}
	return io.ErrUnexpectedEOF
}

// Fig2 returns the 5-symbol compatibility matrix of the paper's Figure 2,
// used by the worked examples of §3 and §4.1.
func Fig2() *Matrix {
	return MustNew([][]float64{
		{0.90, 0.10, 0.00, 0.00, 0.00},
		{0.05, 0.80, 0.05, 0.10, 0.00},
		{0.05, 0.00, 0.70, 0.15, 0.10},
		{0.00, 0.10, 0.10, 0.75, 0.05},
		{0.00, 0.00, 0.15, 0.00, 0.85},
	})
}
