// Package compat implements the compatibility matrix of Yang et al.
// (Definition 3.4): an m×m matrix of conditional probabilities
//
//	C(d_i, d_j) = Prob(true value = d_i | observed value = d_j)
//
// connecting each observed symbol to the distribution of underlying true
// symbols. Rows are indexed by the true symbol, columns by the observed
// symbol; each column sums to 1. The eternal symbol * is fully compatible
// with every observation: C(*, d) = 1 for every d.
//
// Besides the dense representation the package maintains sparse adjacency
// lists in both directions, which the match computation and the symbol-match
// scan use to meet the paper's complexity bounds with sparse matrices, and
// which keep memory linear in the number of non-zero entries for very large
// alphabets (the paper's §6 future-work direction).
package compat

import (
	"fmt"
	"math"

	"repro/internal/pattern"
)

// SumTolerance is the permitted deviation of each column sum from 1.
const SumTolerance = 1e-6

// Entry is one non-zero cell of a sparse adjacency list.
type Entry struct {
	Sym pattern.Symbol // the other endpoint (true or observed, per list)
	P   float64        // the conditional probability
}

// Matrix is an immutable compatibility matrix. Construct with New or one of
// the specialized constructors; the zero value is not usable.
type Matrix struct {
	m          int
	dense      [][]float64 // dense[true][observed]
	byObserved [][]Entry   // for an observed symbol: non-zero (true, P) pairs
	byTrue     [][]Entry   // for a true symbol: non-zero (observed, P) pairs
}

// New validates and builds a matrix from dense[true][observed] rows. The
// matrix must be square and every column must sum to 1 within SumTolerance.
func New(dense [][]float64) (*Matrix, error) {
	m := len(dense)
	if m == 0 {
		return nil, fmt.Errorf("compat: empty matrix")
	}
	for i, row := range dense {
		if len(row) != m {
			return nil, fmt.Errorf("compat: row %d has %d columns, want %d", i, len(row), m)
		}
		for j, v := range row {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return nil, fmt.Errorf("compat: C(%d,%d)=%v outside [0,1]", i, j, v)
			}
		}
	}
	for j := 0; j < m; j++ {
		sum := 0.0
		for i := 0; i < m; i++ {
			sum += dense[i][j]
		}
		if math.Abs(sum-1) > SumTolerance {
			return nil, fmt.Errorf("compat: column %d sums to %v, want 1", j, sum)
		}
	}
	mat := &Matrix{m: m, dense: make([][]float64, m)}
	for i := range dense {
		row := make([]float64, m)
		copy(row, dense[i])
		mat.dense[i] = row
	}
	mat.buildSparse()
	return mat, nil
}

// MustNew is New but panics on invalid input; for tests and literals.
func MustNew(dense [][]float64) *Matrix {
	c, err := New(dense)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Matrix) buildSparse() {
	c.byObserved = make([][]Entry, c.m)
	c.byTrue = make([][]Entry, c.m)
	for i := 0; i < c.m; i++ {
		for j := 0; j < c.m; j++ {
			if p := c.dense[i][j]; p > 0 {
				c.byObserved[j] = append(c.byObserved[j], Entry{Sym: pattern.Symbol(i), P: p})
				c.byTrue[i] = append(c.byTrue[i], Entry{Sym: pattern.Symbol(j), P: p})
			}
		}
	}
}

// Identity returns the noise-free matrix for m symbols: C(d_i,d_j)=1 iff
// i==j. Under it the match metric coincides with classic support (§3).
func Identity(m int) *Matrix {
	dense := make([][]float64, m)
	for i := range dense {
		dense[i] = make([]float64, m)
		dense[i][i] = 1
	}
	c, err := New(dense)
	if err != nil {
		panic(err) // unreachable: identity columns sum to 1
	}
	return c
}

// UniformNoise returns the §5.1 matrix for noise level alpha: a symbol stays
// itself with probability 1-alpha and flips to each of the other m-1 symbols
// with probability alpha/(m-1). alpha must lie in [0,1) and m must be >= 2
// unless alpha is 0.
func UniformNoise(m int, alpha float64) (*Matrix, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("compat: alpha %v outside [0,1)", alpha)
	}
	if m < 2 && alpha > 0 {
		return nil, fmt.Errorf("compat: uniform noise needs m >= 2, got %d", m)
	}
	dense := make([][]float64, m)
	for i := range dense {
		dense[i] = make([]float64, m)
		for j := range dense[i] {
			if i == j {
				dense[i][j] = 1 - alpha
			} else {
				dense[i][j] = alpha / float64(m-1)
			}
		}
	}
	return New(dense)
}

// FromChannel derives the compatibility matrix from a generative noise
// channel by Bayes' rule: given sub[i][j] = Prob(observed=j | true=i) and a
// prior over true symbols, C(i,j) = sub[i][j]·prior[i] / Σ_k sub[k][j]·prior[k].
// A nil prior means uniform. Columns with zero evidence (no true symbol can
// produce that observation) are set to the identity column.
func FromChannel(sub [][]float64, prior []float64) (*Matrix, error) {
	m := len(sub)
	if m == 0 {
		return nil, fmt.Errorf("compat: empty channel")
	}
	if prior == nil {
		prior = make([]float64, m)
		for i := range prior {
			prior[i] = 1 / float64(m)
		}
	}
	if len(prior) != m {
		return nil, fmt.Errorf("compat: prior has %d entries, want %d", len(prior), m)
	}
	dense := make([][]float64, m)
	for i := range dense {
		if len(sub[i]) != m {
			return nil, fmt.Errorf("compat: channel row %d has %d columns, want %d", i, len(sub[i]), m)
		}
		dense[i] = make([]float64, m)
	}
	for j := 0; j < m; j++ {
		total := 0.0
		for i := 0; i < m; i++ {
			total += sub[i][j] * prior[i]
		}
		if total == 0 {
			dense[j][j] = 1
			continue
		}
		for i := 0; i < m; i++ {
			dense[i][j] = sub[i][j] * prior[i] / total
		}
	}
	return New(dense)
}

// Size returns the number of distinct symbols m.
func (c *Matrix) Size() int { return c.m }

// C returns the compatibility of the (possibly eternal) pattern symbol t
// with the observed symbol o: C(*, o) = 1, otherwise the matrix cell.
func (c *Matrix) C(t, o pattern.Symbol) float64 {
	if t.IsEternal() {
		return 1
	}
	return c.dense[t][o]
}

// TrueGiven returns the sparse list of true symbols with non-zero
// compatibility for an observed symbol (an observed column).
func (c *Matrix) TrueGiven(observed pattern.Symbol) []Entry {
	return c.byObserved[observed]
}

// ObservedGiven returns the sparse list of observed symbols with non-zero
// compatibility for a true symbol (a true-value row).
func (c *Matrix) ObservedGiven(t pattern.Symbol) []Entry {
	return c.byTrue[t]
}

// Row returns the dense row of compatibilities for a true symbol, indexed by
// observed symbol. The returned slice is the matrix's internal storage and
// must be treated as read-only; it exists for hot loops that would otherwise
// pay a two-level bounds check per cell.
func (c *Matrix) Row(t pattern.Symbol) []float64 {
	return c.dense[t]
}

// NonZero returns the number of non-zero cells.
func (c *Matrix) NonZero() int {
	n := 0
	for _, col := range c.byObserved {
		n += len(col)
	}
	return n
}

// Density returns NonZero / m².
func (c *Matrix) Density() float64 {
	return float64(c.NonZero()) / float64(c.m*c.m)
}

// IsIdentity reports whether the matrix is exactly the identity (the
// noise-free case under which match equals support).
func (c *Matrix) IsIdentity() bool {
	for i := 0; i < c.m; i++ {
		for j := 0; j < c.m; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if c.dense[i][j] != want {
				return false
			}
		}
	}
	return true
}

// Dense returns a deep copy of the dense cells (rows = true values).
func (c *Matrix) Dense() [][]float64 {
	out := make([][]float64, c.m)
	for i := range out {
		out[i] = make([]float64, c.m)
		copy(out[i], c.dense[i])
	}
	return out
}
