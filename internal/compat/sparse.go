package compat

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/pattern"
)

// Source is the read interface shared by the dense Matrix and the
// SparseMatrix. The match computation and the miners consume this interface,
// so very large alphabets (the paper's §6 E-commerce direction, Figure 15)
// can use O(non-zeros) storage instead of O(m²).
type Source interface {
	// Size returns the number of distinct symbols m.
	Size() int
	// C returns Prob(true = t | observed = o); 1 when t is eternal.
	C(t, o pattern.Symbol) float64
	// TrueGiven returns the non-zero (true symbol, probability) entries of
	// an observed column.
	TrueGiven(observed pattern.Symbol) []Entry
	// ObservedGiven returns the non-zero (observed symbol, probability)
	// entries of a true-value row.
	ObservedGiven(t pattern.Symbol) []Entry
}

// Cell is one non-zero matrix entry used to construct a SparseMatrix.
type Cell struct {
	True, Observed pattern.Symbol
	P              float64
}

// SparseMatrix is a compatibility matrix stored as adjacency lists only;
// memory is linear in the number of non-zero cells. Lookups by (true,
// observed) pair use binary search within the true-value row.
type SparseMatrix struct {
	m          int
	byTrue     [][]Entry // sorted by observed symbol
	byObserved [][]Entry
}

var _ Source = (*SparseMatrix)(nil)
var _ Source = (*Matrix)(nil)

// NewSparse validates and builds a sparse matrix from non-zero cells. As
// with the dense constructor, every observed column must sum to 1 within
// SumTolerance; duplicate (true, observed) cells are an error.
func NewSparse(m int, cells []Cell) (*SparseMatrix, error) {
	if m <= 0 {
		return nil, fmt.Errorf("compat: non-positive size %d", m)
	}
	s := &SparseMatrix{
		m:          m,
		byTrue:     make([][]Entry, m),
		byObserved: make([][]Entry, m),
	}
	colSum := make([]float64, m)
	for _, c := range cells {
		if c.True < 0 || int(c.True) >= m || c.Observed < 0 || int(c.Observed) >= m {
			return nil, fmt.Errorf("compat: cell (%d,%d) out of range", c.True, c.Observed)
		}
		if c.P <= 0 || c.P > 1 || math.IsNaN(c.P) {
			return nil, fmt.Errorf("compat: cell (%d,%d) probability %v outside (0,1]", c.True, c.Observed, c.P)
		}
		s.byTrue[c.True] = append(s.byTrue[c.True], Entry{Sym: c.Observed, P: c.P})
		s.byObserved[c.Observed] = append(s.byObserved[c.Observed], Entry{Sym: c.True, P: c.P})
		colSum[c.Observed] += c.P
	}
	for j, sum := range colSum {
		if math.Abs(sum-1) > SumTolerance {
			return nil, fmt.Errorf("compat: column %d sums to %v, want 1", j, sum)
		}
	}
	for i := range s.byTrue {
		row := s.byTrue[i]
		sort.Slice(row, func(a, b int) bool { return row[a].Sym < row[b].Sym })
		for k := 1; k < len(row); k++ {
			if row[k].Sym == row[k-1].Sym {
				return nil, fmt.Errorf("compat: duplicate cell (%d,%d)", i, row[k].Sym)
			}
		}
	}
	for j := range s.byObserved {
		col := s.byObserved[j]
		sort.Slice(col, func(a, b int) bool { return col[a].Sym < col[b].Sym })
	}
	return s, nil
}

// Size returns the number of distinct symbols m.
func (s *SparseMatrix) Size() int { return s.m }

// C returns Prob(true = t | observed = o); 1 when t is eternal, 0 when the
// cell is absent.
func (s *SparseMatrix) C(t, o pattern.Symbol) float64 {
	if t.IsEternal() {
		return 1
	}
	row := s.byTrue[t]
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case row[mid].Sym < o:
			lo = mid + 1
		case row[mid].Sym > o:
			hi = mid
		default:
			return row[mid].P
		}
	}
	return 0
}

// TrueGiven returns the non-zero entries of an observed column.
func (s *SparseMatrix) TrueGiven(observed pattern.Symbol) []Entry {
	return s.byObserved[observed]
}

// ObservedGiven returns the non-zero entries of a true-value row.
func (s *SparseMatrix) ObservedGiven(t pattern.Symbol) []Entry {
	return s.byTrue[t]
}

// NonZero returns the number of stored cells.
func (s *SparseMatrix) NonZero() int {
	n := 0
	for _, col := range s.byObserved {
		n += len(col)
	}
	return n
}

// Sparse converts a dense matrix to its sparse representation (mainly for
// tests and for callers that want uniform handling).
func (c *Matrix) Sparse() *SparseMatrix {
	var cells []Cell
	for i := 0; i < c.m; i++ {
		for _, e := range c.ObservedGiven(pattern.Symbol(i)) {
			cells = append(cells, Cell{True: pattern.Symbol(i), Observed: e.Sym, P: e.P})
		}
	}
	s, err := NewSparse(c.m, cells)
	if err != nil {
		panic(err) // unreachable: a valid dense matrix converts cleanly
	}
	return s
}
