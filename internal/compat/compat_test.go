package compat

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pattern"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := New([][]float64{{1, 0}}); err == nil {
		t.Error("non-square matrix accepted")
	}
	if _, err := New([][]float64{{1.5, 0}, {-0.5, 1}}); err == nil {
		t.Error("out-of-range entries accepted")
	}
	if _, err := New([][]float64{{0.5, 0}, {0.4, 1}}); err == nil {
		t.Error("column not summing to 1 accepted")
	}
	if _, err := New([][]float64{{1, 0}, {0, 1}}); err != nil {
		t.Errorf("identity rejected: %v", err)
	}
}

func TestFig2Properties(t *testing.T) {
	c := Fig2()
	if c.Size() != 5 {
		t.Fatalf("Size=%d", c.Size())
	}
	// Paper §3: C(d1,d2)=0.1 but C(d2,d1)=0.05 — compatibility is asymmetric.
	if got := c.C(0, 1); got != 0.1 {
		t.Errorf("C(d1,d2)=%v, want 0.1", got)
	}
	if got := c.C(1, 0); got != 0.05 {
		t.Errorf("C(d2,d1)=%v, want 0.05", got)
	}
	// C(d1,d3)=0: a d1 can never be observed as d3.
	if got := c.C(0, 2); got != 0 {
		t.Errorf("C(d1,d3)=%v, want 0", got)
	}
	// Eternal symbol is fully compatible with everything.
	for o := pattern.Symbol(0); o < 5; o++ {
		if got := c.C(pattern.Eternal, o); got != 1 {
			t.Errorf("C(*,%v)=%v, want 1", o, got)
		}
	}
}

func TestSparseViewsAgreeWithDense(t *testing.T) {
	c := Fig2()
	m := c.Size()
	for j := 0; j < m; j++ {
		sum := 0.0
		for _, e := range c.TrueGiven(pattern.Symbol(j)) {
			if got := c.C(e.Sym, pattern.Symbol(j)); got != e.P {
				t.Errorf("TrueGiven(%d) entry %v disagrees with dense %v", j, e.P, got)
			}
			sum += e.P
		}
		if math.Abs(sum-1) > SumTolerance {
			t.Errorf("observed column %d sparse sum %v", j, sum)
		}
	}
	for i := 0; i < m; i++ {
		for _, e := range c.ObservedGiven(pattern.Symbol(i)) {
			if got := c.C(pattern.Symbol(i), e.Sym); got != e.P {
				t.Errorf("ObservedGiven(%d) entry disagrees with dense", i)
			}
		}
	}
}

func TestIdentity(t *testing.T) {
	c := Identity(4)
	if !c.IsIdentity() {
		t.Error("Identity(4) not detected as identity")
	}
	if Fig2().IsIdentity() {
		t.Error("Fig2 wrongly detected as identity")
	}
	if c.NonZero() != 4 {
		t.Errorf("NonZero=%d, want 4", c.NonZero())
	}
	if got := c.Density(); got != 0.25 {
		t.Errorf("Density=%v, want 0.25", got)
	}
}

func TestUniformNoise(t *testing.T) {
	c, err := UniformNoise(20, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.C(3, 3); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("diagonal=%v, want 0.8", got)
	}
	if got := c.C(3, 4); math.Abs(got-0.2/19) > 1e-12 {
		t.Errorf("off-diagonal=%v, want %v", got, 0.2/19)
	}
	zero, err := UniformNoise(5, 0)
	if err != nil || !zero.IsIdentity() {
		t.Errorf("alpha=0 should give identity: %v", err)
	}
	if _, err := UniformNoise(5, 1); err == nil {
		t.Error("alpha=1 accepted")
	}
	if _, err := UniformNoise(5, -0.1); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := UniformNoise(1, 0.5); err == nil {
		t.Error("m=1 with positive alpha accepted")
	}
}

func TestUniformNoiseExtremeIsUninformative(t *testing.T) {
	// §3: total noise makes every entry 1/m (here approached as alpha→(m-1)/m).
	m := 5
	alpha := float64(m-1) / float64(m)
	c, err := UniformNoise(m, alpha)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if got := c.C(pattern.Symbol(i), pattern.Symbol(j)); math.Abs(got-1/float64(m)) > 1e-12 {
				t.Fatalf("C(%d,%d)=%v, want %v", i, j, got, 1/float64(m))
			}
		}
	}
}

func TestFromChannel(t *testing.T) {
	// Symmetric uniform channel with uniform prior must reproduce the
	// uniform-noise compatibility matrix.
	m, alpha := 6, 0.3
	sub := make([][]float64, m)
	for i := range sub {
		sub[i] = make([]float64, m)
		for j := range sub[i] {
			if i == j {
				sub[i][j] = 1 - alpha
			} else {
				sub[i][j] = alpha / float64(m-1)
			}
		}
	}
	got, err := FromChannel(sub, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := UniformNoise(m, alpha)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if math.Abs(got.C(pattern.Symbol(i), pattern.Symbol(j))-want.C(pattern.Symbol(i), pattern.Symbol(j))) > 1e-9 {
				t.Fatalf("FromChannel disagrees with UniformNoise at (%d,%d)", i, j)
			}
		}
	}
}

func TestFromChannelSkewedPrior(t *testing.T) {
	// With a skewed prior, the posterior for an ambiguous observation must
	// favor the more likely true symbol.
	sub := [][]float64{
		{0.9, 0.1},
		{0.1, 0.9},
	}
	c, err := FromChannel(sub, []float64{0.9, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// Observed symbol 1: P(true=0|obs=1) = .1*.9/(.1*.9+.9*.1) = 0.5
	if got := c.C(0, 1); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("posterior=%v, want 0.5", got)
	}
	// Observed 0 strongly implies true 0.
	if got := c.C(0, 0); got < 0.98 {
		t.Errorf("posterior=%v, want > 0.98", got)
	}
}

func TestFromChannelErrors(t *testing.T) {
	if _, err := FromChannel(nil, nil); err == nil {
		t.Error("empty channel accepted")
	}
	if _, err := FromChannel([][]float64{{1, 0}, {0, 1}}, []float64{1}); err == nil {
		t.Error("mismatched prior accepted")
	}
	if _, err := FromChannel([][]float64{{1}, {1}}, nil); err == nil {
		t.Error("ragged channel accepted")
	}
}

func TestFromChannelZeroColumn(t *testing.T) {
	// An observation no true symbol can produce gets an identity column.
	sub := [][]float64{
		{1, 0},
		{1, 0},
	}
	c, err := FromChannel(sub, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.C(1, 1); got != 1 {
		t.Errorf("dead column: C(1,1)=%v, want 1", got)
	}
}

func TestPerturbKeepsColumnsStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, e := range []float64{0.01, 0.05, 0.10, 0.25} {
		p, err := Fig2().Perturb(e, rng)
		if err != nil {
			t.Fatalf("Perturb(%v): %v", e, err)
		}
		for j := 0; j < p.Size(); j++ {
			sum := 0.0
			for i := 0; i < p.Size(); i++ {
				sum += p.C(pattern.Symbol(i), pattern.Symbol(j))
			}
			if math.Abs(sum-1) > SumTolerance {
				t.Errorf("e=%v column %d sums to %v", e, j, sum)
			}
		}
	}
}

func TestPerturbChangesDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	orig := Fig2()
	p, err := orig.Perturb(0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := 0; i < 5; i++ {
		if p.C(pattern.Symbol(i), pattern.Symbol(i)) != orig.C(pattern.Symbol(i), pattern.Symbol(i)) {
			changed = true
		}
	}
	if !changed {
		t.Error("Perturb(0.1) left every diagonal unchanged")
	}
	// Original must be untouched.
	if orig.C(0, 0) != 0.9 {
		t.Error("Perturb mutated the receiver")
	}
}

func TestPerturbIdentityColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Identity columns have nothing to rescale; decreases spread uniformly.
	for trial := 0; trial < 20; trial++ {
		p, err := Identity(3).Perturb(0.5, rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for j := 0; j < 3; j++ {
			sum := 0.0
			for i := 0; i < 3; i++ {
				sum += p.C(pattern.Symbol(i), pattern.Symbol(j))
			}
			if math.Abs(sum-1) > SumTolerance {
				t.Fatalf("column %d sums to %v", j, sum)
			}
		}
	}
}

func TestPerturbErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Fig2().Perturb(-0.1, rng); err == nil {
		t.Error("negative errFrac accepted")
	}
	if _, err := Fig2().Perturb(1.5, rng); err == nil {
		t.Error("errFrac > 1 accepted")
	}
	if _, err := Fig2().Perturb(0.1, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestRoundTripIO(t *testing.T) {
	var buf bytes.Buffer
	orig := Fig2()
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if back.C(pattern.Symbol(i), pattern.Symbol(j)) != orig.C(pattern.Symbol(i), pattern.Symbol(j)) {
				t.Fatalf("round trip changed cell (%d,%d)", i, j)
			}
		}
	}
}

func TestReadFromErrors(t *testing.T) {
	for _, text := range []string{
		"",
		"bogus header",
		"compat 0",
		"compat 2\n1 0\n", // truncated
		"compat 2\n1 0 0\n0 1 1\n", // wrong field count
		"compat 2\n1 x\n0 1\n",     // unparsable float
		"compat 2\n0.5 0\n0.4 1\n", // invalid column sum
	} {
		if _, err := ReadFrom(bytes.NewReader([]byte(text))); err == nil {
			t.Errorf("ReadFrom(%q) accepted", text)
		}
	}
}

func TestDenseIsACopy(t *testing.T) {
	c := Fig2()
	d := c.Dense()
	d[0][0] = 0
	if c.C(0, 0) != 0.9 {
		t.Error("Dense() leaked internal storage")
	}
}

func TestQuickPerturbedColumnsStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 2 + r.Intn(8)
		alpha := r.Float64() * 0.9
		c, err := UniformNoise(m, alpha)
		if err != nil {
			return false
		}
		p, err := c.Perturb(r.Float64(), rng)
		if err != nil {
			return false
		}
		for j := 0; j < m; j++ {
			sum := 0.0
			for i := 0; i < m; i++ {
				v := p.C(pattern.Symbol(i), pattern.Symbol(j))
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > SumTolerance {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
