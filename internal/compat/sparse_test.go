package compat

import (
	"math/rand"
	"testing"

	"repro/internal/pattern"
)

func TestSparseAgreesWithDense(t *testing.T) {
	dense := Fig2()
	sparse := dense.Sparse()
	if sparse.Size() != dense.Size() {
		t.Fatalf("Size=%d", sparse.Size())
	}
	if sparse.NonZero() != dense.NonZero() {
		t.Fatalf("NonZero: sparse %d vs dense %d", sparse.NonZero(), dense.NonZero())
	}
	for i := pattern.Symbol(0); i < 5; i++ {
		for j := pattern.Symbol(0); j < 5; j++ {
			if sparse.C(i, j) != dense.C(i, j) {
				t.Errorf("C(%d,%d): sparse %v vs dense %v", i, j, sparse.C(i, j), dense.C(i, j))
			}
		}
		if sparse.C(pattern.Eternal, i) != 1 {
			t.Error("eternal compatibility must be 1")
		}
		if len(sparse.TrueGiven(i)) != len(dense.TrueGiven(i)) {
			t.Errorf("TrueGiven(%d) size mismatch", i)
		}
		if len(sparse.ObservedGiven(i)) != len(dense.ObservedGiven(i)) {
			t.Errorf("ObservedGiven(%d) size mismatch", i)
		}
	}
}

func TestNewSparseValidation(t *testing.T) {
	if _, err := NewSparse(0, nil); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewSparse(2, []Cell{{True: 0, Observed: 0, P: 1}}); err == nil {
		t.Error("column 1 summing to 0 accepted")
	}
	if _, err := NewSparse(2, []Cell{
		{True: 0, Observed: 0, P: 1}, {True: 5, Observed: 1, P: 1},
	}); err == nil {
		t.Error("out-of-range cell accepted")
	}
	if _, err := NewSparse(2, []Cell{
		{True: 0, Observed: 0, P: 1.5}, {True: 1, Observed: 1, P: 1},
	}); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := NewSparse(2, []Cell{
		{True: 0, Observed: 0, P: 0.5}, {True: 0, Observed: 0, P: 0.5},
		{True: 1, Observed: 1, P: 1},
	}); err == nil {
		t.Error("duplicate cell accepted")
	}
	ok, err := NewSparse(2, []Cell{
		{True: 0, Observed: 0, P: 0.9}, {True: 1, Observed: 0, P: 0.1},
		{True: 1, Observed: 1, P: 1},
	})
	if err != nil {
		t.Fatalf("valid sparse rejected: %v", err)
	}
	if got := ok.C(1, 0); got != 0.1 {
		t.Errorf("C(1,0)=%v", got)
	}
	if got := ok.C(0, 1); got != 0 {
		t.Errorf("absent cell C(0,1)=%v, want 0", got)
	}
}

func TestSparseBinarySearchRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		m := 3 + rng.Intn(30)
		dense := make([][]float64, m)
		for i := range dense {
			dense[i] = make([]float64, m)
		}
		for j := 0; j < m; j++ {
			var nz []int
			for i := 0; i < m; i++ {
				if rng.Intn(3) == 0 {
					nz = append(nz, i)
				}
			}
			if len(nz) == 0 {
				nz = []int{j}
			}
			for _, i := range nz {
				dense[i][j] = 1 / float64(len(nz))
			}
		}
		d := MustNew(dense)
		s := d.Sparse()
		for i := pattern.Symbol(0); int(i) < m; i++ {
			for j := pattern.Symbol(0); int(j) < m; j++ {
				if s.C(i, j) != d.C(i, j) {
					t.Fatalf("trial %d: C(%d,%d) mismatch", trial, i, j)
				}
			}
		}
	}
}
