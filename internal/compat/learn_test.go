package compat

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pattern"
)

func TestLearnFromPairsRecoversChannel(t *testing.T) {
	// Generate paired data from a known channel and check the learned
	// matrix converges to the analytic one.
	const m, alpha = 6, 0.25
	want, err := UniformNoise(m, alpha)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var truth, observed [][]pattern.Symbol
	for s := 0; s < 400; s++ {
		tSeq := make([]pattern.Symbol, 50)
		oSeq := make([]pattern.Symbol, 50)
		for i := range tSeq {
			d := pattern.Symbol(rng.Intn(m))
			tSeq[i] = d
			if rng.Float64() < alpha {
				o := pattern.Symbol(rng.Intn(m - 1))
				if o >= d {
					o++
				}
				oSeq[i] = o
			} else {
				oSeq[i] = d
			}
		}
		truth = append(truth, tSeq)
		observed = append(observed, oSeq)
	}
	got, err := LearnFromPairs(m, truth, observed, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			g := got.C(pattern.Symbol(i), pattern.Symbol(j))
			w := want.C(pattern.Symbol(i), pattern.Symbol(j))
			if math.Abs(g-w) > 0.05 {
				t.Errorf("C(%d,%d): learned %v vs analytic %v", i, j, g, w)
			}
		}
	}
}

func TestLearnFromPairsUnseenSymbols(t *testing.T) {
	// Symbols never seen in training must still yield a valid matrix.
	truth := [][]pattern.Symbol{{0, 1, 0}}
	observed := [][]pattern.Symbol{{0, 1, 1}}
	c, err := LearnFromPairs(4, truth, observed, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		sum := 0.0
		for i := 0; i < 4; i++ {
			sum += c.C(pattern.Symbol(i), pattern.Symbol(j))
		}
		if math.Abs(sum-1) > SumTolerance {
			t.Errorf("column %d sums to %v", j, sum)
		}
	}
	// Unseen symbol 3 gets an identity column (dead-column rule).
	if got := c.C(3, 3); got != 1 {
		t.Errorf("C(3,3)=%v, want 1", got)
	}
}

func TestLearnFromPairsValidation(t *testing.T) {
	ok := [][]pattern.Symbol{{0}}
	if _, err := LearnFromPairs(0, ok, ok, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := LearnFromPairs(2, ok, nil, 0); err == nil {
		t.Error("mismatched pair counts accepted")
	}
	if _, err := LearnFromPairs(2, [][]pattern.Symbol{{0, 1}}, [][]pattern.Symbol{{0}}, 0); err == nil {
		t.Error("length-mismatched pair accepted")
	}
	if _, err := LearnFromPairs(2, [][]pattern.Symbol{{5}}, [][]pattern.Symbol{{0}}, 0); err == nil {
		t.Error("out-of-range symbol accepted")
	}
	if _, err := LearnFromPairs(2, ok, ok, -1); err == nil {
		t.Error("negative smoothing accepted")
	}
	if _, err := LearnFromPairs(2, nil, nil, 0); err == nil {
		t.Error("empty training with no smoothing accepted")
	}
	if _, err := LearnFromPairs(2, nil, nil, 0.5); err != nil {
		t.Errorf("smoothed empty training rejected: %v", err)
	}
}
