package compat

import (
	"fmt"
	"math/rand"
)

// Perturb implements the Figure 8 error model: for each symbol d_i, the
// diagonal cell C(d_i,d_i) is varied by the fraction errFrac (equally likely
// increased or decreased, clamped to [0,1]), and the remaining entries of the
// same column are rescaled so the column still sums to 1. It models a
// compatibility matrix that is only an empirical approximation of the true
// substitution behavior.
//
// When a diagonal entry must shrink but the rest of its column is all zero
// (an exact identity column), the released mass is spread uniformly over the
// other symbols. The receiver is not modified; a new matrix is returned.
func (c *Matrix) Perturb(errFrac float64, rng *rand.Rand) (*Matrix, error) {
	if errFrac < 0 || errFrac > 1 {
		return nil, fmt.Errorf("compat: error fraction %v outside [0,1]", errFrac)
	}
	if rng == nil {
		return nil, fmt.Errorf("compat: nil rng")
	}
	dense := c.Dense()
	m := c.m
	for j := 0; j < m; j++ {
		oldDiag := dense[j][j]
		delta := oldDiag * errFrac
		if rng.Intn(2) == 0 {
			delta = -delta
		}
		newDiag := oldDiag + delta
		if newDiag > 1 {
			newDiag = 1
		}
		if newDiag < 0 {
			newDiag = 0
		}
		rest := 1 - oldDiag
		newRest := 1 - newDiag
		switch {
		case rest > 0:
			scale := newRest / rest
			for i := 0; i < m; i++ {
				if i != j {
					dense[i][j] *= scale
				}
			}
		case newRest > 0 && m > 1:
			share := newRest / float64(m-1)
			for i := 0; i < m; i++ {
				if i != j {
					dense[i][j] = share
				}
			}
		default:
			newDiag = 1 // m == 1 or nothing to redistribute: keep the column exact
		}
		dense[j][j] = newDiag
	}
	return New(dense)
}
