package compat

import (
	"fmt"

	"repro/internal/pattern"
)

// LearnFromPairs estimates a compatibility matrix from paired training data
// — aligned (true, observed) sequence pairs, as produced by experiments
// where ground truth is known (the paper's §3 notes the matrix "can be
// either given by a domain expert or learned from a training data set").
//
// Substitution frequencies count(true=i, observed=j) are accumulated with
// optional additive (Laplace) smoothing, normalized into the generative
// channel Prob(observed | true), and inverted by Bayes' rule with the
// empirical true-symbol prior. Observed symbols never seen in training get
// identity columns (via FromChannel's dead-column rule).
func LearnFromPairs(m int, truth, observed [][]pattern.Symbol, smoothing float64) (*Matrix, error) {
	if m < 1 {
		return nil, fmt.Errorf("compat: alphabet size %d < 1", m)
	}
	if len(truth) != len(observed) {
		return nil, fmt.Errorf("compat: %d true sequences vs %d observed", len(truth), len(observed))
	}
	if smoothing < 0 {
		return nil, fmt.Errorf("compat: negative smoothing %v", smoothing)
	}
	counts := make([][]float64, m)
	for i := range counts {
		counts[i] = make([]float64, m)
		for j := range counts[i] {
			counts[i][j] = smoothing
		}
	}
	prior := make([]float64, m)
	total := 0.0
	for s := range truth {
		tSeq, oSeq := truth[s], observed[s]
		if len(tSeq) != len(oSeq) {
			return nil, fmt.Errorf("compat: pair %d length mismatch (%d vs %d)", s, len(tSeq), len(oSeq))
		}
		for pos := range tSeq {
			ti, oi := tSeq[pos], oSeq[pos]
			if ti < 0 || int(ti) >= m || oi < 0 || int(oi) >= m {
				return nil, fmt.Errorf("compat: pair %d position %d: symbol out of range", s, pos)
			}
			counts[ti][oi]++
			prior[ti]++
			total++
		}
	}
	if total == 0 && smoothing == 0 {
		return nil, fmt.Errorf("compat: no training positions")
	}
	sub := make([][]float64, m)
	for i := range sub {
		sub[i] = make([]float64, m)
		rowSum := 0.0
		for _, v := range counts[i] {
			rowSum += v
		}
		if rowSum == 0 {
			sub[i][i] = 1 // unseen true symbol: assume it is observed as-is
			continue
		}
		for j, v := range counts[i] {
			sub[i][j] = v / rowSum
		}
	}
	if total > 0 {
		for i := range prior {
			prior[i] /= total
		}
	} else {
		for i := range prior {
			prior[i] = 1 / float64(m)
		}
	}
	return FromChannel(sub, prior)
}
