package checkpoint

import (
	"fmt"
	"os"
)

// AtomicWriteFile writes data to path with the same crash-atomic discipline
// as Save (temp file in path's directory, fsync, rename, best-effort
// directory sync): a crash at any point leaves either the previous file or
// the complete new one, never a torn mix. It is the write primitive for
// small durable records that live next to checkpoints — the serving layer's
// job journal uses it for every job-state transition.
func AtomicWriteFile(path string, data []byte, perm os.FileMode) error {
	return atomicWrite(path, func(tmp string) error {
		f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_TRUNC|os.O_CREATE, perm)
		if err != nil {
			return fmt.Errorf("checkpoint: create: %w", err)
		}
		if _, err := f.Write(data); err != nil {
			f.Close()
			return fmt.Errorf("checkpoint: write: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("checkpoint: sync: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("checkpoint: close: %w", err)
		}
		return nil
	})
}
