// Package checkpoint persists the three-phase mining pipeline's progress as
// a versioned, CRC32-checksummed, crash-atomic on-disk snapshot, so a run
// killed late in Phase 3 — after the most expensive full database scans —
// can be resumed without repeating any completed scan.
//
// The format is sectioned: a fixed header, then tagged sections (meta,
// phase1, phase2, probe) each carrying its own length and CRC32-IEEE over
// its payload, then an end marker. A flipped byte or truncation anywhere is
// detected and reported as a *CorruptError naming the damaged section, so a
// resumer never trusts a torn snapshot. Writes go through the same
// temp-file + fsync + rename discipline as the seqdb stores (see
// internal/seqdb/disk.go), so a crash mid-checkpoint leaves the previous
// snapshot intact.
//
// What is recorded mirrors the pipeline's phase structure:
//
//   - meta: config hash, database identity (path + length), engine, RNG
//     seed and the number of draws Phase 1 consumed — enough to verify a
//     resume is compatible and to restore the RNG to its exact
//     post-Phase-1 state.
//   - phase1: every symbol's exact match and the drawn sample, verbatim.
//   - phase2: the sample-mining labels, values and restricted spreads of
//     every evaluated candidate, plus the per-level counters — the borders
//     (FQT, ceiling) are deterministic functions of these and are
//     recomputed on resume.
//   - probe: Phase 3's probe-loop state after the last completed scan —
//     exact matches measured so far, the frequent set as propagated, and
//     the still-pending region.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/pattern"
)

// Format constants.
var (
	magic = [4]byte{'L', 'C', 'K', 'P'}
)

const (
	version = 1

	secMeta   = 1
	secPhase1 = 2
	secPhase2 = 3
	secProbe  = 4
	secStream = 5
	secEnd    = 0xFF

	// maxStringLen bounds any single string read from disk, so a corrupt
	// length field cannot trigger an unbounded allocation.
	maxStringLen = 1 << 20
	// maxSequenceLen bounds one sample sequence (mirrors seqdb's cap).
	maxSequenceLen = 1 << 24
	// initialAlloc caps the capacity pre-allocated from an on-disk count;
	// larger collections grow by append as real data arrives.
	initialAlloc = 1 << 12
)

// CorruptError reports a damaged or malformed snapshot: a bad magic or
// version, a checksum mismatch, a truncated payload, or an out-of-range
// field. Section names the part of the file that failed.
type CorruptError struct {
	// Section is the snapshot section that failed ("header", "meta",
	// "phase1", "phase2", "probe", or "trailer").
	Section string
	// Msg describes the damage.
	Msg string
	// Err is the underlying error, when one exists.
	Err error
}

func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("checkpoint: %s section: %s: %v", e.Section, e.Msg, e.Err)
	}
	return fmt.Sprintf("checkpoint: %s section: %s", e.Section, e.Msg)
}

func (e *CorruptError) Unwrap() error { return e.Err }

func corrupt(section, msg string, err error) error {
	return &CorruptError{Section: section, Msg: msg, Err: err}
}

// Phase2State is the serializable core of Phase 2's mining result: the
// classification of every evaluated candidate, keyed by pattern.Key. The
// frequent/ambiguous sets and both borders are recomputed from Labels on
// resume (they are deterministic functions of it).
type Phase2State struct {
	Values             map[string]float64
	Spreads            map[string]float64
	Labels             map[string]uint8 // 0 infrequent, 1 ambiguous, 2 frequent
	CandidatesPerLevel []int
	AlivePerLevel      []int
	Truncated          bool
}

// ProbeState is Phase 3's probe-and-propagate loop state after its last
// completed scan: everything needed to continue collapsing without
// re-probing.
type ProbeState struct {
	// Scans and Probed count the completed probe scans and patterns probed.
	Scans  int
	Probed int
	// Exact records the measured database match of every probed pattern.
	Exact map[string]float64
	// Frequent is the frequent set as propagated so far (sample-frequent
	// plus confirmed probes plus Apriori-propagated subpatterns).
	Frequent []string
	// Pending is the still-unresolved region.
	Pending []string
}

// StreamState is the incremental streaming session's progress beyond the
// phase sections: the consumed window, the raw Phase 1 symbol sums (the
// pre-division form a restored accumulator continues from), and the
// maintained per-pattern sums — sample sums for the live mine's candidates
// and exact window sums for every probed pattern. The reservoir sample
// itself rides in the phase1 section and the live mine in the phase2
// section; reservoir draws are stateless, so no RNG state is recorded.
type StreamState struct {
	// Cursor and WindowStart delimit the consumed window [WindowStart, Cursor).
	Cursor, WindowStart int
	// SymbolSums are the accumulator's raw per-symbol sums over the window.
	SymbolSums []float64
	// SampleSums holds the maintained sample match sum per live candidate.
	SampleSums map[string]float64
	// ExactSums holds the exact window match sum per probed pattern.
	ExactSums map[string]float64
}

// Snapshot is one pipeline checkpoint. Phase is the highest phase fully
// recorded: 1 (symbol matches + sample), 2 (adds the sample-mining result),
// or 3 (adds probe progress; the Probe section may record zero scans).
type Snapshot struct {
	// ConfigHash fingerprints the mining configuration; Resume refuses a
	// snapshot whose hash differs from the config it was given.
	ConfigHash uint64
	// DBPath and DBLen identify the database the snapshot was mined from.
	// DBPath is empty for in-memory stores; when both sides know a path
	// they must agree.
	DBPath string
	DBLen  int
	// Engine names the Phase 2 engine ("candidates" or "sweep").
	Engine string
	// Seed is the RNG seed the run was started with (as reported by the
	// caller) and RngDraws the number of rng draws Phase 1 consumed;
	// together they restore the generator to its exact post-Phase-1 state.
	Seed     int64
	RngDraws uint64
	// Phase is the highest fully recorded phase (1..3).
	Phase int

	// Phase 1 output.
	SymbolMatch []float64
	Sample      [][]pattern.Symbol

	// Phase 2 output (nil when Phase < 2).
	Phase2 *Phase2State

	// Phase 3 progress (nil when Phase < 3).
	Probe *ProbeState

	// Stream is the incremental streaming session's state (nil for batch
	// runs). A stream snapshot records Phase 1 (sample + symbol matches)
	// plus, when a mine is live, Phase 2; probe progress is carried by
	// Stream.ExactSums rather than a probe section.
	Stream *StreamState
}

// sectionWriter accumulates one section's payload.
type sectionWriter struct {
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (w *sectionWriter) uvarint(v uint64) {
	n := binary.PutUvarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}

func (w *sectionWriter) varint(v int64) {
	n := binary.PutVarint(w.tmp[:], v)
	w.buf.Write(w.tmp[:n])
}

func (w *sectionWriter) float(f float64) {
	binary.LittleEndian.PutUint64(w.tmp[:8], math.Float64bits(f))
	w.buf.Write(w.tmp[:8])
}

func (w *sectionWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf.WriteString(s)
}

func (w *sectionWriter) floatMap(m map[string]float64) {
	w.uvarint(uint64(len(m)))
	for _, k := range sortedKeys(m) {
		w.str(k)
		w.float(m[k])
	}
}

// sortedKeys returns m's keys in sorted order, so snapshots are
// byte-deterministic for identical state.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// emit writes one tagged section: tag, payload length, payload, CRC32-IEEE
// over the payload.
func emit(w io.Writer, tag byte, payload []byte) (int64, error) {
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = tag
	n := 1 + binary.PutUvarint(hdr[1:], uint64(len(payload)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	var written int64
	for _, b := range [][]byte{hdr[:n], payload, crc[:]} {
		k, err := w.Write(b)
		written += int64(k)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// WriteTo serializes the snapshot. The byte stream is deterministic for
// identical state (map entries are emitted key-sorted).
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := w.Write(append(append([]byte{}, magic[:]...), version))
	total += int64(n)
	if err != nil {
		return total, err
	}

	var sw sectionWriter
	sw.uvarint(s.ConfigHash)
	sw.str(s.DBPath)
	sw.uvarint(uint64(s.DBLen))
	sw.str(s.Engine)
	sw.varint(s.Seed)
	sw.uvarint(s.RngDraws)
	sw.uvarint(uint64(s.Phase))
	k, err := emit(w, secMeta, sw.buf.Bytes())
	total += k
	if err != nil {
		return total, err
	}

	sw.buf.Reset()
	sw.uvarint(uint64(len(s.SymbolMatch)))
	for _, v := range s.SymbolMatch {
		sw.float(v)
	}
	sw.uvarint(uint64(len(s.Sample)))
	for _, seq := range s.Sample {
		sw.uvarint(uint64(len(seq)))
		for _, d := range seq {
			sw.uvarint(uint64(d))
		}
	}
	k, err = emit(w, secPhase1, sw.buf.Bytes())
	total += k
	if err != nil {
		return total, err
	}

	if p2 := s.Phase2; p2 != nil {
		sw.buf.Reset()
		sw.floatMap(p2.Values)
		sw.floatMap(p2.Spreads)
		sw.uvarint(uint64(len(p2.Labels)))
		for _, key := range sortedKeys(p2.Labels) {
			sw.str(key)
			sw.buf.WriteByte(p2.Labels[key])
		}
		sw.uvarint(uint64(len(p2.CandidatesPerLevel)))
		for _, c := range p2.CandidatesPerLevel {
			sw.uvarint(uint64(c))
		}
		sw.uvarint(uint64(len(p2.AlivePerLevel)))
		for _, c := range p2.AlivePerLevel {
			sw.uvarint(uint64(c))
		}
		if p2.Truncated {
			sw.buf.WriteByte(1)
		} else {
			sw.buf.WriteByte(0)
		}
		k, err = emit(w, secPhase2, sw.buf.Bytes())
		total += k
		if err != nil {
			return total, err
		}
	}

	if pr := s.Probe; pr != nil {
		sw.buf.Reset()
		sw.uvarint(uint64(pr.Scans))
		sw.uvarint(uint64(pr.Probed))
		sw.floatMap(pr.Exact)
		sw.uvarint(uint64(len(pr.Frequent)))
		for _, key := range pr.Frequent {
			sw.str(key)
		}
		sw.uvarint(uint64(len(pr.Pending)))
		for _, key := range pr.Pending {
			sw.str(key)
		}
		k, err = emit(w, secProbe, sw.buf.Bytes())
		total += k
		if err != nil {
			return total, err
		}
	}

	if st := s.Stream; st != nil {
		sw.buf.Reset()
		sw.uvarint(uint64(st.Cursor))
		sw.uvarint(uint64(st.WindowStart))
		sw.uvarint(uint64(len(st.SymbolSums)))
		for _, v := range st.SymbolSums {
			sw.float(v)
		}
		sw.floatMap(st.SampleSums)
		sw.floatMap(st.ExactSums)
		k, err = emit(w, secStream, sw.buf.Bytes())
		total += k
		if err != nil {
			return total, err
		}
	}

	k, err = emit(w, secEnd, nil)
	total += k
	return total, err
}

// sectionReader decodes one section's verified payload.
type sectionReader struct {
	r       *bytes.Reader
	section string
}

func (r *sectionReader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, corrupt(r.section, "truncated integer", err)
	}
	return v, nil
}

func (r *sectionReader) count() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	// A count can never exceed the remaining payload bytes (every element
	// costs at least one byte), so a corrupt count fails fast instead of
	// driving a huge allocation.
	if v > uint64(r.r.Len()) {
		return 0, corrupt(r.section, fmt.Sprintf("count %d exceeds remaining payload", v), nil)
	}
	return int(v), nil
}

func (r *sectionReader) varint() (int64, error) {
	v, err := binary.ReadVarint(r.r)
	if err != nil {
		return 0, corrupt(r.section, "truncated integer", err)
	}
	return v, nil
}

func (r *sectionReader) float() (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		return 0, corrupt(r.section, "truncated float", err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

func (r *sectionReader) str() (string, error) {
	l, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if l > maxStringLen {
		return "", corrupt(r.section, fmt.Sprintf("string length %d exceeds cap", l), nil)
	}
	if l > uint64(r.r.Len()) {
		return "", corrupt(r.section, "truncated string", nil)
	}
	b := make([]byte, l)
	if _, err := io.ReadFull(r.r, b); err != nil {
		return "", corrupt(r.section, "truncated string", err)
	}
	return string(b), nil
}

func (r *sectionReader) floatMap() (map[string]float64, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	m := make(map[string]float64, min(n, initialAlloc))
	for i := 0; i < n; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		v, err := r.float()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

func (r *sectionReader) strings() ([]string, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, min(n, initialAlloc))
	for i := 0; i < n; i++ {
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (r *sectionReader) ints() ([]int, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, min(n, initialAlloc))
	for i := 0; i < n; i++ {
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if v > math.MaxInt32 {
			return nil, corrupt(r.section, fmt.Sprintf("integer %d out of range", v), nil)
		}
		out = append(out, int(v))
	}
	return out, nil
}

// done verifies the section payload was consumed exactly.
func (r *sectionReader) done() error {
	if r.r.Len() != 0 {
		return corrupt(r.section, fmt.Sprintf("%d trailing bytes in section", r.r.Len()), nil)
	}
	return nil
}

// sectionName maps a tag to its section name for error reporting.
func sectionName(tag byte) string {
	switch tag {
	case secMeta:
		return "meta"
	case secPhase1:
		return "phase1"
	case secPhase2:
		return "phase2"
	case secProbe:
		return "probe"
	case secStream:
		return "stream"
	case secEnd:
		return "trailer"
	default:
		return fmt.Sprintf("unknown(0x%02x)", tag)
	}
}

// ReadFrom parses and verifies a snapshot. Any damage — bad magic, unknown
// version, checksum mismatch, truncation, out-of-range fields, missing or
// duplicated sections — returns a *CorruptError naming the section;
// arbitrary input never panics.
func (s *Snapshot) ReadFrom(r io.Reader) (int64, error) {
	br := &countingByteReader{r: r}
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return br.n, corrupt("header", "truncated header", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return br.n, corrupt("header", fmt.Sprintf("bad magic %q", hdr[:4]), nil)
	}
	if hdr[4] != version {
		return br.n, corrupt("header", fmt.Sprintf("unsupported version %d", hdr[4]), nil)
	}

	seen := make(map[byte]bool)
	for {
		tag, err := br.ReadByte()
		if err != nil {
			return br.n, corrupt("trailer", "missing end marker", err)
		}
		name := sectionName(tag)
		plen, err := binary.ReadUvarint(br)
		if err != nil {
			return br.n, corrupt(name, "truncated section length", err)
		}
		// Pull the payload through a bounded copy: a corrupt length cannot
		// allocate beyond the bytes actually present in the stream.
		var payload bytes.Buffer
		if _, err := io.CopyN(&payload, br, int64(plen)); err != nil {
			return br.n, corrupt(name, "truncated section payload", err)
		}
		var crc [4]byte
		if _, err := io.ReadFull(br, crc[:]); err != nil {
			return br.n, corrupt(name, "truncated section checksum", err)
		}
		if got, want := crc32.ChecksumIEEE(payload.Bytes()), binary.LittleEndian.Uint32(crc[:]); got != want {
			return br.n, corrupt(name, fmt.Sprintf("checksum mismatch (got %08x, want %08x)", got, want), nil)
		}
		if seen[tag] {
			return br.n, corrupt(name, "duplicate section", nil)
		}
		seen[tag] = true
		sr := &sectionReader{r: bytes.NewReader(payload.Bytes()), section: name}
		switch tag {
		case secMeta:
			if err := s.readMeta(sr); err != nil {
				return br.n, err
			}
		case secPhase1:
			if !seen[secMeta] {
				return br.n, corrupt(name, "section precedes meta", nil)
			}
			if err := s.readPhase1(sr); err != nil {
				return br.n, err
			}
		case secPhase2:
			if !seen[secPhase1] {
				return br.n, corrupt(name, "section precedes phase1", nil)
			}
			if err := s.readPhase2(sr); err != nil {
				return br.n, err
			}
		case secProbe:
			if !seen[secPhase2] {
				return br.n, corrupt(name, "section precedes phase2", nil)
			}
			if err := s.readProbe(sr); err != nil {
				return br.n, err
			}
		case secStream:
			if !seen[secPhase1] {
				return br.n, corrupt(name, "section precedes phase1", nil)
			}
			if err := s.readStream(sr); err != nil {
				return br.n, err
			}
		case secEnd:
			if plen != 0 {
				return br.n, corrupt(name, "non-empty end marker", nil)
			}
			return br.n, s.validate()
		default:
			return br.n, corrupt(name, "unknown section tag", nil)
		}
	}
}

// validate cross-checks the assembled snapshot once all sections are in.
func (s *Snapshot) validate() error {
	if s.Phase < 1 || s.Phase > 3 {
		return corrupt("meta", fmt.Sprintf("phase %d outside [1,3]", s.Phase), nil)
	}
	if s.SymbolMatch == nil {
		return corrupt("phase1", "missing phase1 section", nil)
	}
	if s.Phase >= 2 && s.Phase2 == nil {
		return corrupt("phase2", "meta declares phase >= 2 but phase2 section is absent", nil)
	}
	if s.Phase >= 3 && s.Probe == nil {
		return corrupt("probe", "meta declares phase 3 but probe section is absent", nil)
	}
	if s.Phase < 2 && s.Phase2 != nil {
		return corrupt("phase2", "phase2 section present but meta declares phase < 2", nil)
	}
	if s.Phase < 3 && s.Probe != nil {
		return corrupt("probe", "probe section present but meta declares phase < 3", nil)
	}
	if st := s.Stream; st != nil {
		if st.Cursor < st.WindowStart {
			return corrupt("stream", fmt.Sprintf("cursor %d precedes window start %d", st.Cursor, st.WindowStart), nil)
		}
		if s.Probe != nil {
			return corrupt("stream", "stream snapshots carry probe sums in the stream section, not a probe section", nil)
		}
		if s.Phase >= 2 && len(st.SampleSums) == 0 && len(s.Phase2.Values) > 0 {
			return corrupt("stream", "phase2 candidates present but stream sample sums are empty", nil)
		}
	}
	return nil
}

func (s *Snapshot) readMeta(r *sectionReader) error {
	var err error
	if s.ConfigHash, err = r.uvarint(); err != nil {
		return err
	}
	if s.DBPath, err = r.str(); err != nil {
		return err
	}
	dbLen, err := r.uvarint()
	if err != nil {
		return err
	}
	if dbLen > math.MaxInt32 {
		return corrupt(r.section, fmt.Sprintf("database length %d out of range", dbLen), nil)
	}
	s.DBLen = int(dbLen)
	if s.Engine, err = r.str(); err != nil {
		return err
	}
	if s.Seed, err = r.varint(); err != nil {
		return err
	}
	if s.RngDraws, err = r.uvarint(); err != nil {
		return err
	}
	phase, err := r.uvarint()
	if err != nil {
		return err
	}
	if phase < 1 || phase > 3 {
		return corrupt(r.section, fmt.Sprintf("phase %d outside [1,3]", phase), nil)
	}
	s.Phase = int(phase)
	return r.done()
}

func (s *Snapshot) readPhase1(r *sectionReader) error {
	n, err := r.count()
	if err != nil {
		return err
	}
	s.SymbolMatch = make([]float64, 0, min(n, initialAlloc))
	for i := 0; i < n; i++ {
		v, err := r.float()
		if err != nil {
			return err
		}
		s.SymbolMatch = append(s.SymbolMatch, v)
	}
	count, err := r.count()
	if err != nil {
		return err
	}
	s.Sample = make([][]pattern.Symbol, 0, min(count, initialAlloc))
	for i := 0; i < count; i++ {
		l, err := r.uvarint()
		if err != nil {
			return err
		}
		if l == 0 || l > maxSequenceLen {
			return corrupt(r.section, fmt.Sprintf("sample sequence %d has invalid length %d", i, l), nil)
		}
		if l > uint64(r.r.Len()) {
			return corrupt(r.section, fmt.Sprintf("sample sequence %d truncated", i), nil)
		}
		seq := make([]pattern.Symbol, l)
		for j := range seq {
			v, err := r.uvarint()
			if err != nil {
				return err
			}
			if v > math.MaxInt32 {
				return corrupt(r.section, fmt.Sprintf("symbol %d out of range", v), nil)
			}
			seq[j] = pattern.Symbol(v)
		}
		s.Sample = append(s.Sample, seq)
	}
	return r.done()
}

func (s *Snapshot) readPhase2(r *sectionReader) error {
	p2 := &Phase2State{}
	var err error
	if p2.Values, err = r.floatMap(); err != nil {
		return err
	}
	if p2.Spreads, err = r.floatMap(); err != nil {
		return err
	}
	n, err := r.count()
	if err != nil {
		return err
	}
	p2.Labels = make(map[string]uint8, min(n, initialAlloc))
	for i := 0; i < n; i++ {
		key, err := r.str()
		if err != nil {
			return err
		}
		label, err := r.r.ReadByte()
		if err != nil {
			return corrupt(r.section, "truncated label", err)
		}
		if label > 2 {
			return corrupt(r.section, fmt.Sprintf("label %d outside [0,2]", label), nil)
		}
		p2.Labels[key] = label
	}
	if p2.CandidatesPerLevel, err = r.ints(); err != nil {
		return err
	}
	if p2.AlivePerLevel, err = r.ints(); err != nil {
		return err
	}
	trunc, err := r.r.ReadByte()
	if err != nil {
		return corrupt(r.section, "truncated flag", err)
	}
	if trunc > 1 {
		return corrupt(r.section, fmt.Sprintf("flag %d outside [0,1]", trunc), nil)
	}
	p2.Truncated = trunc == 1
	s.Phase2 = p2
	return r.done()
}

func (s *Snapshot) readProbe(r *sectionReader) error {
	pr := &ProbeState{}
	scans, err := r.uvarint()
	if err != nil {
		return err
	}
	probed, err := r.uvarint()
	if err != nil {
		return err
	}
	if scans > math.MaxInt32 || probed > math.MaxInt32 {
		return corrupt(r.section, "probe counters out of range", nil)
	}
	pr.Scans, pr.Probed = int(scans), int(probed)
	if pr.Exact, err = r.floatMap(); err != nil {
		return err
	}
	if pr.Frequent, err = r.strings(); err != nil {
		return err
	}
	if pr.Pending, err = r.strings(); err != nil {
		return err
	}
	s.Probe = pr
	return r.done()
}

func (s *Snapshot) readStream(r *sectionReader) error {
	st := &StreamState{}
	cursor, err := r.uvarint()
	if err != nil {
		return err
	}
	start, err := r.uvarint()
	if err != nil {
		return err
	}
	if cursor > math.MaxInt32 || start > math.MaxInt32 {
		return corrupt(r.section, "window bounds out of range", nil)
	}
	st.Cursor, st.WindowStart = int(cursor), int(start)
	n, err := r.count()
	if err != nil {
		return err
	}
	st.SymbolSums = make([]float64, 0, min(n, initialAlloc))
	for i := 0; i < n; i++ {
		v, err := r.float()
		if err != nil {
			return err
		}
		st.SymbolSums = append(st.SymbolSums, v)
	}
	if st.SampleSums, err = r.floatMap(); err != nil {
		return err
	}
	if st.ExactSums, err = r.floatMap(); err != nil {
		return err
	}
	s.Stream = st
	return r.done()
}

// countingByteReader adapts an io.Reader to io.ByteReader while tracking the
// bytes consumed.
type countingByteReader struct {
	r   io.Reader
	n   int64
	buf [1]byte
}

func (c *countingByteReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingByteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(c.r, c.buf[:]); err != nil {
		return 0, err
	}
	c.n++
	return c.buf[0], nil
}

// Save writes the snapshot to path crash-atomically (temp file in the same
// directory, fsync, rename — the discipline of seqdb's WriteFile), returning
// the snapshot's size in bytes. A crash mid-write leaves any previous
// snapshot at path untouched.
func Save(path string, s *Snapshot) (int64, error) {
	var size int64
	err := atomicWrite(path, func(tmp string) error {
		f, err := os.Create(tmp)
		if err != nil {
			return fmt.Errorf("checkpoint: create: %w", err)
		}
		n, err := s.WriteTo(f)
		size = n
		if err != nil {
			f.Close()
			return fmt.Errorf("checkpoint: write: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("checkpoint: sync: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("checkpoint: close: %w", err)
		}
		return nil
	})
	return size, err
}

// Load reads and verifies the snapshot at path.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open: %w", err)
	}
	defer f.Close()
	s := &Snapshot{}
	if _, err := s.ReadFrom(f); err != nil {
		return nil, err
	}
	var one [1]byte
	if _, err := f.Read(one[:]); err != io.EOF {
		return nil, corrupt("trailer", "trailing garbage after end marker", nil)
	}
	return s, nil
}

// atomicWrite runs write against a temp file in path's directory, then
// renames it over path; the temp file is removed on any failure.
func atomicWrite(path string, write func(tmp string) error) error {
	dir := filepath.Dir(path)
	tmpf, err := os.CreateTemp(dir, ".lckptmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmp := tmpf.Name()
	tmpf.Close()
	if err := write(tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	// Best-effort directory sync so the rename itself survives a crash.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
