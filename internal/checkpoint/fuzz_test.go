package checkpoint

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzCheckpointReadFrom checks that parsing arbitrary bytes as a snapshot
// never panics: it either yields a valid snapshot or a typed *CorruptError
// naming the damaged section (mirroring internal/seqdb's FuzzDiskScan).
func FuzzCheckpointReadFrom(f *testing.F) {
	seeds := []*Snapshot{
		sampleSnapshot(),
		{
			ConfigHash:  1,
			Engine:      "sweep",
			Phase:       1,
			DBLen:       1,
			SymbolMatch: []float64{0.1},
			Sample:      nil,
		},
	}
	for _, s := range seeds {
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// A truncated and a bit-flipped variant widen initial coverage.
		f.Add(buf.Bytes()[:buf.Len()/2])
		flipped := append([]byte{}, buf.Bytes()...)
		flipped[buf.Len()/3] ^= 0x10
		f.Add(flipped)
	}
	f.Add([]byte("LCKPgarbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := &Snapshot{}
		_, err := s.ReadFrom(bytes.NewReader(data))
		if err == nil {
			// Accepted input must satisfy the cross-section invariants and
			// re-serialize cleanly.
			if s.Phase < 1 || s.Phase > 3 {
				t.Fatalf("accepted snapshot with phase %d", s.Phase)
			}
			var buf bytes.Buffer
			if _, werr := s.WriteTo(&buf); werr != nil {
				t.Fatalf("accepted snapshot does not re-serialize: %v", werr)
			}
			return
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("rejection is not a *CorruptError: %T: %v", err, err)
		}
		if ce.Section == "" {
			t.Fatalf("CorruptError without a section name: %v", err)
		}
	})
}
