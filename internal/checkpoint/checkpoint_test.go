package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/pattern"
)

// sample builds a fully populated snapshot exercising every section.
func sampleSnapshot() *Snapshot {
	return &Snapshot{
		ConfigHash:  0xdeadbeefcafe,
		DBPath:      "/tmp/test.lsq",
		DBLen:       1234,
		Engine:      "candidates",
		Seed:        -42,
		RngDraws:    999,
		Phase:       3,
		SymbolMatch: []float64{0.5, 0.25, 0.125},
		Sample: [][]pattern.Symbol{
			{0, 1, 2},
			{2, 2},
		},
		Phase2: &Phase2State{
			Values:             map[string]float64{"0": 0.5, "0,1": 0.3},
			Spreads:            map[string]float64{"0": 0.5, "0,1": 0.25},
			Labels:             map[string]uint8{"0": 2, "0,1": 1, "1,2": 0},
			CandidatesPerLevel: []int{3, 2},
			AlivePerLevel:      []int{2, 1},
			Truncated:          true,
		},
		Probe: &ProbeState{
			Scans:    2,
			Probed:   5,
			Exact:    map[string]float64{"0,1": 0.31},
			Frequent: []string{"0", "0,1"},
			Pending:  []string{"1,2,0"},
		},
	}
}

func roundTrip(t *testing.T, s *Snapshot) *Snapshot {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	out := &Snapshot{}
	if _, err := out.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	return out
}

func TestRoundTripFull(t *testing.T) {
	in := sampleSnapshot()
	out := roundTrip(t, in)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestRoundTripPhase1Only(t *testing.T) {
	in := sampleSnapshot()
	in.Phase = 1
	in.Phase2 = nil
	in.Probe = nil
	out := roundTrip(t, in)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestRoundTripPhase2(t *testing.T) {
	in := sampleSnapshot()
	in.Phase = 2
	in.Probe = nil
	out := roundTrip(t, in)
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestDeterministicBytes(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := sampleSnapshot().WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := sampleSnapshot().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("identical snapshots serialized to different bytes")
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.lckp")
	in := sampleSnapshot()
	n, err := Save(path, in)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != n {
		t.Errorf("Save reported %d bytes, file has %d", n, st.Size())
	}
	out, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Error("Save/Load round trip mismatch")
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries, want only the snapshot", len(entries))
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.lckp")
	first := sampleSnapshot()
	first.Phase = 1
	first.Phase2, first.Probe = nil, nil
	if _, err := Save(path, first); err != nil {
		t.Fatal(err)
	}
	second := sampleSnapshot()
	if _, err := Save(path, second); err != nil {
		t.Fatal(err)
	}
	out, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Phase != 3 {
		t.Errorf("Load after overwrite: phase %d, want 3", out.Phase)
	}
}

// mustCorrupt asserts err is a *CorruptError for the given section.
func mustCorrupt(t *testing.T, err error, section string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want *CorruptError in section %q, got nil", section)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %T: %v", err, err)
	}
	if ce.Section != section {
		t.Errorf("CorruptError section %q, want %q (err: %v)", ce.Section, section, err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if _, err := sampleSnapshot().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte{}, raw...)
		b[0] ^= 0xFF
		err := new(Snapshot).readBytes(b)
		mustCorrupt(t, err, "header")
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte{}, raw...)
		b[4] = 99
		err := new(Snapshot).readBytes(b)
		mustCorrupt(t, err, "header")
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(raw); cut += 7 {
			if err := new(Snapshot).readBytes(raw[:len(raw)-cut]); err == nil {
				t.Fatalf("truncation by %d bytes accepted", cut)
			} else {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("truncation by %d: want *CorruptError, got %T", cut, err)
				}
			}
		}
	})
	t.Run("flipped byte", func(t *testing.T) {
		// Every single-byte flip inside a section payload must be caught
		// (by the CRC, or by a parse error naming the section).
		for i := 5; i < len(raw); i += 3 {
			b := append([]byte{}, raw...)
			b[i] ^= 0x40
			if bytes.Equal(b, raw) {
				continue
			}
			if err := new(Snapshot).readBytes(b); err == nil {
				t.Fatalf("flip at offset %d accepted", i)
			} else {
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("flip at %d: want *CorruptError, got %T: %v", i, err, err)
				}
			}
		}
	})
}

// readBytes parses b fully, also rejecting trailing garbage (mirrors Load).
func (s *Snapshot) readBytes(b []byte) error {
	r := bytes.NewReader(b)
	if _, err := s.ReadFrom(r); err != nil {
		return err
	}
	if r.Len() != 0 {
		return corrupt("trailer", "trailing garbage after end marker", nil)
	}
	return nil
}

func TestPhaseSectionConsistency(t *testing.T) {
	// Meta declaring phase 2 without a phase2 section must be rejected.
	s := sampleSnapshot()
	s.Phase2 = nil
	s.Probe = nil
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	err := new(Snapshot).readBytes(buf.Bytes())
	mustCorrupt(t, err, "phase2")
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.lckp"))
	if err == nil {
		t.Fatal("Load of missing file succeeded")
	}
	var ce *CorruptError
	if errors.As(err, &ce) {
		t.Errorf("missing file misreported as corruption: %v", err)
	}
}
