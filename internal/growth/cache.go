package growth

import (
	"repro/internal/match"
	"repro/internal/pattern"
)

// projCache is one worker's private LRU of prefix projections, byte-capped
// by Config.Budget. It only affects how fast a projection is obtained, never
// which projection: a pattern's projection is always the same left-to-right
// extension chain over the same sample, whether the chain starts from a
// cached prefix or from a fresh 1-symbol build, so cache hits and evictions
// are invisible to every recorded float. No locks — each worker owns one.
type projCache struct {
	e       *engine
	cap     int64 // byte cap; negative = unlimited
	bytes   int64
	entries map[string]*cacheEnt
	head    *cacheEnt // most recently used
	tail    *cacheEnt
	prof    match.ProfileScratch // per-worker profile buffers
}

type cacheEnt struct {
	key        string
	pr         *match.Projection
	prev, next *cacheEnt
}

func newProjCache(e *engine) *projCache {
	return &projCache{e: e, cap: e.cfg.Budget, entries: make(map[string]*cacheEnt)}
}

// proj returns the projection for p — nil in scratch mode. It extends the
// longest cached prefix of p (falling back to a fresh build of p's first
// symbol), caching every intermediate prefix so sibling and child nodes pick
// up the chain one extension from the end.
func (pc *projCache) proj(p pattern.Pattern) (*match.Projection, error) {
	if pc.e.cfg.Scratch {
		return nil, nil
	}
	// Concrete symbol positions: p's prefix patterns end at each of these.
	var idx [16]int
	pos := idx[:0]
	for i, s := range p {
		if !s.IsEternal() {
			pos = append(pos, i)
		}
	}
	// Longest cached prefix, the full pattern included.
	t := len(pos) - 1
	var cur *match.Projection
	for ; t >= 0; t-- {
		if ce := pc.get(p[:pos[t]+1].Key()); ce != nil {
			cur = ce
			break
		}
	}
	for j := t + 1; j < len(pos); j++ {
		prefix := p[:pos[j]+1]
		if cur == nil {
			built, err := pc.e.pj.Build(prefix)
			if err != nil {
				return nil, err
			}
			cur = built
			pc.e.cfg.Metrics.GrowthProjection(false)
		} else {
			cur = cur.Extend(pos[j]+1, p[pos[j]])
			pc.e.cfg.Metrics.GrowthProjection(true)
		}
		pc.put(prefix.Key(), cur)
	}
	return cur, nil
}

// get returns the cached projection for key, promoting it to most recently
// used, or nil.
func (pc *projCache) get(key string) *match.Projection {
	ce, ok := pc.entries[key]
	if !ok {
		return nil
	}
	pc.touch(ce)
	return ce.pr
}

// put caches pr under key, evicting least-recently-used entries until it
// fits. A projection larger than the whole cap is not cached (counted as
// denied) — it still served its caller; the next visit rebuilds it.
func (pc *projCache) put(key string, pr *match.Projection) {
	if _, ok := pc.entries[key]; ok {
		return
	}
	b := pr.Bytes()
	if pc.cap >= 0 && b > pc.cap {
		pc.e.cfg.Metrics.GrowthProjectionDenied()
		pc.e.peakCheck(pc.bytes + b)
		return
	}
	if pc.cap >= 0 {
		for pc.bytes+b > pc.cap && pc.tail != nil {
			pc.evict(pc.tail)
		}
	}
	ce := &cacheEnt{key: key, pr: pr}
	pc.entries[key] = ce
	ce.next = pc.head
	if pc.head != nil {
		pc.head.prev = ce
	}
	pc.head = ce
	if pc.tail == nil {
		pc.tail = ce
	}
	pc.bytes += b
	pc.e.peakCheck(pc.bytes)
}

func (pc *projCache) touch(ce *cacheEnt) {
	if pc.head == ce {
		return
	}
	if ce.prev != nil {
		ce.prev.next = ce.next
	}
	if ce.next != nil {
		ce.next.prev = ce.prev
	}
	if pc.tail == ce {
		pc.tail = ce.prev
	}
	ce.prev = nil
	ce.next = pc.head
	if pc.head != nil {
		pc.head.prev = ce
	}
	pc.head = ce
	if pc.tail == nil {
		pc.tail = ce
	}
}

func (pc *projCache) evict(ce *cacheEnt) {
	delete(pc.entries, ce.key)
	if ce.prev != nil {
		ce.prev.next = ce.next
	} else {
		pc.head = ce.next
	}
	if ce.next != nil {
		ce.next.prev = ce.prev
	} else {
		pc.tail = ce.prev
	}
	pc.bytes -= ce.pr.Bytes()
}

// peakCheck raises the engine-wide peak projection bytes gauge.
func (e *engine) peakCheck(bytes int64) {
	for {
		cur := e.peak.Load()
		if bytes <= cur || e.peak.CompareAndSwap(cur, bytes) {
			return
		}
	}
}
