package growth_test

import (
	"math/rand"
	"testing"

	"repro/internal/compat"
	"repro/internal/datagen"
	"repro/internal/growth"
	"repro/internal/miner"
	"repro/internal/pattern"
)

// benchWorld builds a long-gapped-style sample: planted motifs under uniform
// noise, mined deep (maxLen 8, maxGap 1) at a low threshold — the regime the
// engine-comparison bench cell measures.
func benchWorld(b *testing.B) (compat.Source, [][]pattern.Symbol) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	standard, _, err := datagen.Protein(datagen.ProteinConfig{
		N: 300, M: 20, MinLen: 150, MaxLen: 220,
		NumMotifs: 2, MotifLen: 8, PlantProb: 0.5,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	noisy, err := datagen.ApplyUniformNoise(standard, 20, 0.05, rng)
	if err != nil {
		b.Fatal(err)
	}
	sample := make([][]pattern.Symbol, noisy.Len())
	for i := range sample {
		sample[i] = noisy.Seq(i)
	}
	c, err := compat.UniformNoise(20, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	return c, sample
}

func BenchmarkPhase2Levelwise(b *testing.B) {
	c, sample := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		valuer, inc := miner.IncrementalSampleValuer(c, sample, miner.IncrementalConfig{})
		_, err := miner.SampleChernoff(c.Size(), valuer, nil, 0.25, 1e-2, len(sample),
			miner.Options{MaxLen: 8, MaxGap: 1})
		inc.Release()
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPhase2Growth(b *testing.B) {
	c, sample := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := growth.Mine(c, sample, growth.Config{
			MinMatch: 0.25,
			Delta:    1e-2,
			MaxLen:   8,
			MaxGap:   1,
			Workers:  -1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
