package growth_test

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/chernoff"
	"repro/internal/compat"
	"repro/internal/growth"
	"repro/internal/match"
	"repro/internal/miner"
	"repro/internal/oracle"
	"repro/internal/pattern"
)

// levelwise runs the breadth-first engine with the incremental kernel — the
// reference the growth engine must replicate bit for bit.
func levelwise(t *testing.T, c compat.Source, sample [][]pattern.Symbol, symbolMatch []float64, minMatch, delta float64, maxLen, maxGap int) *miner.Result {
	t.Helper()
	valuer, inc := miner.IncrementalSampleValuer(c, sample, miner.IncrementalConfig{})
	defer inc.Release()
	res, err := miner.SampleChernoff(c.Size(), valuer, symbolMatch, minMatch, delta, len(sample),
		miner.Options{MaxLen: maxLen, MaxGap: maxGap})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sortedKeys(s *pattern.Set) []string {
	keys := make([]string, 0, s.Len())
	for _, p := range s.Patterns() {
		keys = append(keys, p.Key())
	}
	sort.Strings(keys)
	return keys
}

// assertEquivalent checks every growth-vs-levelwise equality the engine
// contract promises: identical sets and borders, identical labels, spreads
// and level counts, and bit-identical values for every key the growth engine
// valued (bound-pruned keys are absent from growth's Values and must be
// labeled infrequent by both engines).
func assertEquivalent(t *testing.T, want, got *miner.Result) {
	t.Helper()
	for name, pair := range map[string][2]*pattern.Set{
		"Frequent":  {want.Frequent, got.Frequent},
		"Ambiguous": {want.Ambiguous, got.Ambiguous},
		"FQT":       {want.FQT, got.FQT},
		"Ceiling":   {want.Ceiling, got.Ceiling},
	} {
		if w, g := sortedKeys(pair[0]), sortedKeys(pair[1]); !reflect.DeepEqual(w, g) {
			t.Fatalf("%s differs:\nlevelwise: %v\ngrowth:    %v", name, w, g)
		}
	}
	if !reflect.DeepEqual(want.Labels, got.Labels) {
		t.Fatalf("Labels differ:\nlevelwise: %v\ngrowth:    %v", want.Labels, got.Labels)
	}
	if !reflect.DeepEqual(want.Spreads, got.Spreads) {
		t.Fatalf("Spreads differ:\nlevelwise: %v\ngrowth:    %v", want.Spreads, got.Spreads)
	}
	if !reflect.DeepEqual(want.CandidatesPerLevel, got.CandidatesPerLevel) {
		t.Fatalf("CandidatesPerLevel: levelwise %v, growth %v", want.CandidatesPerLevel, got.CandidatesPerLevel)
	}
	if !reflect.DeepEqual(want.AlivePerLevel, got.AlivePerLevel) {
		t.Fatalf("AlivePerLevel: levelwise %v, growth %v", want.AlivePerLevel, got.AlivePerLevel)
	}
	for key, gv := range got.Values {
		wv, ok := want.Values[key]
		if !ok {
			t.Fatalf("growth valued %q which levelwise never enumerated", key)
		}
		if gv != wv {
			t.Fatalf("value of %q: levelwise %v, growth %v", key, wv, gv)
		}
	}
	for key := range want.Values {
		if _, ok := got.Values[key]; !ok && got.Labels[key] != chernoff.Infrequent {
			t.Fatalf("growth skipped valuing %q but labeled it %v", key, got.Labels[key])
		}
	}
	if got.Scans != 0 {
		t.Fatalf("growth Scans = %d, want 0 (the DFS never batches valuer calls)", got.Scans)
	}
	if got.Truncated {
		t.Fatal("growth reported Truncated")
	}
}

// symbolMatches computes each symbol's exact sample match — standing in for
// Phase 1's full-database matches so the exact level-1 path is exercised.
func symbolMatches(t *testing.T, c compat.Source, sample [][]pattern.Symbol) []float64 {
	t.Helper()
	pj := match.NewProjector(c, sample, 0)
	out := make([]float64, c.Size())
	for d := range out {
		v, err := pj.Value(pattern.Pattern{pattern.Symbol(d)})
		if err != nil {
			t.Fatal(err)
		}
		out[d] = v
	}
	return out
}

// TestGrowthMatchesLevelwise sweeps the oracle's generated case corpus —
// every matrix family, gap/length regime, and threshold band — and demands
// full result equivalence, with and without exact symbol matches.
func TestGrowthMatchesLevelwise(t *testing.T) {
	for seed := int64(1); seed <= 32; seed++ {
		cs := oracle.GenCase(seed)
		for _, exact := range []bool{false, true} {
			var sm []float64
			if exact {
				sm = symbolMatches(t, cs.C, cs.DB)
			}
			want := levelwise(t, cs.C, cs.DB, sm, cs.MinMatch, cs.Delta, cs.MaxLen, cs.MaxGap)
			got, err := growth.Mine(cs.C, cs.DB, growth.Config{
				SymbolMatch: sm,
				MinMatch:    cs.MinMatch,
				Delta:       cs.Delta,
				MaxLen:      cs.MaxLen,
				MaxGap:      cs.MaxGap,
			})
			if err != nil {
				t.Fatalf("seed %d exact=%v: %v", seed, exact, err)
			}
			func() {
				defer func() {
					if t.Failed() {
						t.Logf("seed %d exact=%v", seed, exact)
					}
				}()
				assertEquivalent(t, want, got)
			}()
		}
	}
}

// TestGrowthWorkerBitIdentity demands the whole result — values included —
// is reflect.DeepEqual across worker counts, and that scratch mode (the
// naive-kernel mapping) only shrinks nothing: it values every candidate, so
// its result carries the full Values map and everything else is unchanged.
func TestGrowthWorkerBitIdentity(t *testing.T) {
	for seed := int64(3); seed <= 11; seed += 2 {
		cs := oracle.GenCase(seed)
		sm := symbolMatches(t, cs.C, cs.DB)
		cfg := growth.Config{
			SymbolMatch: sm,
			MinMatch:    cs.MinMatch,
			Delta:       cs.Delta,
			MaxLen:      cs.MaxLen,
			MaxGap:      cs.MaxGap,
		}
		base, err := growth.Mine(cs.C, cs.DB, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 5, -1} {
			wcfg := cfg
			wcfg.Workers = workers
			got, err := growth.Mine(cs.C, cs.DB, wcfg)
			if err != nil {
				t.Fatal(err)
			}
			got.LevelMillis = base.LevelMillis
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("seed %d: workers=%d result differs from sequential", seed, workers)
			}
		}
		scfg := cfg
		scfg.Scratch = true
		scfg.Workers = 3
		scratch, err := growth.Mine(cs.C, cs.DB, scfg)
		if err != nil {
			t.Fatal(err)
		}
		lw := levelwise(t, cs.C, cs.DB, sm, cs.MinMatch, cs.Delta, cs.MaxLen, cs.MaxGap)
		assertEquivalent(t, lw, scratch)
		if !reflect.DeepEqual(lw.Values, scratch.Values) {
			t.Fatalf("seed %d: scratch-mode Values differ from levelwise's", seed)
		}
	}
}

// TestGrowthTightBudget squeezes the per-worker projection cache down to
// nothing and checks the cache is invisible to the results: a projection is
// the same extension chain whether it comes out of the cache or is rebuilt,
// so every budget yields the identical result, just slower.
func TestGrowthTightBudget(t *testing.T) {
	cs := oracle.GenCase(5)
	sm := symbolMatches(t, cs.C, cs.DB)
	cfg := growth.Config{
		SymbolMatch: sm,
		MinMatch:    cs.MinMatch,
		Delta:       cs.Delta,
		MaxLen:      cs.MaxLen,
		MaxGap:      cs.MaxGap,
	}
	want, err := growth.Mine(cs.C, cs.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{1, 200, 2000} {
		bcfg := cfg
		bcfg.Budget = budget
		bcfg.Workers = 2
		got, err := growth.Mine(cs.C, cs.DB, bcfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Labels, got.Labels) {
			t.Fatalf("budget %d: labels differ", budget)
		}
		if !reflect.DeepEqual(want.Values, got.Values) {
			t.Fatalf("budget %d: values differ", budget)
		}
		if !reflect.DeepEqual(want.CandidatesPerLevel, got.CandidatesPerLevel) {
			t.Fatalf("budget %d: candidate counts differ", budget)
		}
	}
}

// TestGrowthMaxK checks the level cap matches the level-wise engine's.
func TestGrowthMaxK(t *testing.T) {
	cs := oracle.GenCase(2)
	sm := symbolMatches(t, cs.C, cs.DB)
	valuer, inc := miner.IncrementalSampleValuer(cs.C, cs.DB, miner.IncrementalConfig{})
	defer inc.Release()
	for maxK := 1; maxK <= 3; maxK++ {
		want, err := miner.SampleChernoff(cs.C.Size(), valuer, sm, cs.MinMatch, cs.Delta, len(cs.DB),
			miner.Options{MaxLen: cs.MaxLen, MaxGap: cs.MaxGap, MaxK: maxK})
		if err != nil {
			t.Fatal(err)
		}
		got, err := growth.Mine(cs.C, cs.DB, growth.Config{
			SymbolMatch: sm,
			MinMatch:    cs.MinMatch,
			Delta:       cs.Delta,
			MaxLen:      cs.MaxLen,
			MaxGap:      cs.MaxGap,
			MaxK:        maxK,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, want, got)
	}
}

// TestGrowthValidation covers the constructor errors.
func TestGrowthValidation(t *testing.T) {
	c := compat.Identity(3)
	sample := [][]pattern.Symbol{{0, 1, 2}}
	base := growth.Config{MinMatch: 0.5, Delta: 0.05, MaxLen: 3, MaxGap: 1}
	cases := []struct {
		name   string
		sample [][]pattern.Symbol
		mut    func(*growth.Config)
	}{
		{"empty sample", nil, func(*growth.Config) {}},
		{"zero MaxLen", sample, func(c *growth.Config) { c.MaxLen = 0 }},
		{"negative MaxGap", sample, func(c *growth.Config) { c.MaxGap = -1 }},
		{"negative MaxK", sample, func(c *growth.Config) { c.MaxK = -1 }},
		{"bad delta", sample, func(c *growth.Config) { c.Delta = 1.5 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if _, err := growth.Mine(c, tc.sample, cfg); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// TestGrowthDeterministicRepeat re-runs one parallel configuration many
// times; any scheduling sensitivity shows up as a flaky mismatch.
func TestGrowthDeterministicRepeat(t *testing.T) {
	cs := oracle.GenCase(9)
	cfg := growth.Config{
		MinMatch: cs.MinMatch,
		Delta:    cs.Delta,
		MaxLen:   cs.MaxLen,
		MaxGap:   cs.MaxGap,
		Workers:  4,
		Budget:   4096, // tight enough to deny some projections
	}
	base, err := growth.Mine(cs.C, cs.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, err := growth.Mine(cs.C, cs.DB, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("run %d differs from first run", i)
		}
	}
}
