package growth_test

import (
	"math/rand"
	"testing"

	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/growth"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// runBoth mines the same sample with both engines (incremental kernels) and
// asserts full result equivalence.
func runBoth(t *testing.T, c compat.Source, sample [][]pattern.Symbol, minMatch, delta float64, maxLen, maxGap int) (*miner.Result, *miner.Result) {
	t.Helper()
	sm := symbolMatches(t, c, sample)
	want := levelwise(t, c, sample, sm, minMatch, delta, maxLen, maxGap)
	got, err := growth.Mine(c, sample, growth.Config{
		SymbolMatch: sm,
		MinMatch:    minMatch,
		Delta:       delta,
		MaxLen:      maxLen,
		MaxGap:      maxGap,
		Workers:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, want, got)
	return want, got
}

// TestEdgeEmptySample: both engines refuse an empty sample the same way —
// the Chernoff classifier needs n >= 1.
func TestEdgeEmptySample(t *testing.T) {
	c := compat.Identity(2)
	if _, err := growth.Mine(c, nil, growth.Config{MinMatch: 0.5, Delta: 0.05, MaxLen: 3}); err == nil {
		t.Error("growth accepted an empty sample")
	}
	valuer, inc := miner.IncrementalSampleValuer(c, nil, miner.IncrementalConfig{})
	defer inc.Release()
	if _, err := miner.SampleChernoff(2, valuer, nil, 0.5, 0.05, 0, miner.Options{MaxLen: 3}); err == nil {
		t.Error("levelwise accepted an empty sample")
	}
}

// TestEdgeSingleSymbolAlphabet: m == 1 collapses the lattice to runs of one
// symbol; both engines must agree on every length.
func TestEdgeSingleSymbolAlphabet(t *testing.T) {
	c := compat.Identity(1)
	sample := [][]pattern.Symbol{
		{0, 0, 0, 0},
		{0, 0},
		{0, 0, 0, 0, 0, 0},
	}
	runBoth(t, c, sample, 0.6, 0.05, 4, 1)
}

// TestEdgeMinMatchBounds: the threshold extremes — 0 admits everything the
// spread allows, 1 rejects all but certainty — must classify identically.
func TestEdgeMinMatchBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const m = 3
	noisy, err := compat.UniformNoise(m, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	sample := make([][]pattern.Symbol, 24)
	for i := range sample {
		seq := make([]pattern.Symbol, 4+rng.Intn(6))
		for j := range seq {
			seq[j] = pattern.Symbol(rng.Intn(m))
		}
		sample[i] = seq
	}
	for _, c := range []*compat.Matrix{noisy, compat.Identity(m)} {
		for _, minMatch := range []float64{0, 1} {
			want, _ := runBoth(t, c, sample, minMatch, 0.05, 4, 1)
			if minMatch == 0 && want.Frequent.Len() == 0 {
				t.Error("min_match 0 found nothing frequent")
			}
		}
	}
}

// TestEdgePatternLengthEqualsSequenceLength: with MaxLen equal to every
// sequence's length, the longest candidates have exactly one window each —
// the clipping path's boundary.
func TestEdgePatternLengthEqualsSequenceLength(t *testing.T) {
	const m, l = 2, 5
	noisy, err := compat.UniformNoise(m, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	sample := make([][]pattern.Symbol, 16)
	for i := range sample {
		seq := make([]pattern.Symbol, l)
		for j := range seq {
			seq[j] = pattern.Symbol(rng.Intn(m))
		}
		sample[i] = seq
	}
	for _, c := range []*compat.Matrix{noisy, compat.Identity(m)} {
		runBoth(t, c, sample, 0.3, 0.05, l, 1)
	}
}

// TestEdgeScanCountsIdentical runs the full pipeline under both engines and
// pins the exact scan accounting: Phase 1's single scan plus Phase 3's probe
// scans, with Phase 2 contributing none either way.
func TestEdgeScanCountsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	const m = 4
	c, err := compat.UniformNoise(m, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	db := make([][]pattern.Symbol, 30)
	for i := range db {
		seq := make([]pattern.Symbol, 6+rng.Intn(6))
		for j := range seq {
			seq[j] = pattern.Symbol(rng.Intn(m))
		}
		db[i] = seq
	}
	var scans [2]int
	for i, engine := range []core.Phase2Engine{core.Phase2Levelwise, core.Phase2Growth} {
		res, err := core.Mine(seqdb.NewMemDB(db), c, core.Config{
			MinMatch:     0.25,
			Delta:        0.05,
			SampleSize:   len(db),
			MaxLen:       4,
			MaxGap:       1,
			MemBudget:    5,
			Workers:      2,
			Phase2Engine: engine,
			Rng:          rand.New(rand.NewSource(7)),
		})
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if res.Phase2.Scans != 0 && engine == core.Phase2Growth {
			t.Errorf("growth Phase2.Scans = %d, want 0", res.Phase2.Scans)
		}
		scans[i] = res.Scans
		if want := 1 + res.Phase3.Scans; res.Scans != want {
			t.Errorf("%v: Scans = %d, want 1 + %d probe scans", engine, res.Scans, res.Phase3.Scans)
		}
	}
	if scans[0] != scans[1] {
		t.Errorf("scan counts differ: levelwise %d, growth %d", scans[0], scans[1])
	}
}
