// Package growth is the depth-first pattern-growth (PrefixSpan-style)
// Phase 2 engine: instead of generating, valuing and pruning whole lattice
// levels like the level-wise miner, it grows each alive pattern by right
// extension over a projected sample database (match.Projection — the
// per-sequence surviving-window prefix products), so valuing a sibling group
// costs one walk of the surviving windows shared by every sibling, and an
// extension subtree is abandoned as soon as the projection's optimistic
// bound (max remaining parent product × max row factor) is
// Chernoff-infrequent.
//
// # Result equivalence
//
// Mine produces the same miner.Result the level-wise SampleChernoff engine
// produces — the same Frequent/Ambiguous sets, the same Labels, Spreads,
// CandidatesPerLevel and AlivePerLevel, and bit-identical Values for every
// candidate it values (bound-pruned candidates are labeled infrequent
// without a value; everything else in Values matches the incremental
// kernel's floats exactly, because the projection walk replicates its
// left-to-right products and ascending shard-merge summation).
//
// Three properties make the equivalence exact rather than approximate:
//
//   - Admission parity. A child is admitted exactly under the level-wise
//     engine's Apriori rule — every immediate subpattern inside the explored
//     space is alive. Subpatterns living in other DFS subtrees are resolved
//     on demand: the resolver walks the subpattern's generating-parent chain
//     and has the deepest alive parent process its node (classify every
//     child exactly once, globally), so no pattern is ever valued twice and
//     the candidate set equals the level-wise engine's level by level.
//   - Bound soundness in float64. The optimistic bound dominates the true
//     child value term by term under float monotonicity (see
//     match.Projection.Bound), so a bound classified infrequent proves the
//     raw label the level-wise engine would compute; labels never diverge.
//   - Deterministic parallelism. Every node is processed exactly once — the
//     first worker to need it claims it in a shared registry, later arrivals
//     wait on its completion — and each processing is a pure function of the
//     pattern: projections are rebuilt from the same left-to-right extension
//     chain whether they come out of a worker's cache or are rebuilt on the
//     spot, so caching affects speed, never floats. Claim waits cannot
//     deadlock: a node at lattice level k only ever waits on nodes at level
//     k−1 (its children's subpatterns' parents), so the waits-on relation is
//     graded by level and therefore acyclic. Results are bit-identical for
//     every worker count and every cache budget.
package growth

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/chernoff"
	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/telemetry"
)

// Config parameterizes one growth run. MinMatch, Delta and MaxLen are
// required; the zero value of everything else selects the documented
// default.
type Config struct {
	// SymbolMatch, when non-nil, holds the exact full-database match of
	// every symbol (Phase 1's output): level-1 patterns are labeled exactly
	// and restricted spreads are derived from it; when nil, level 1 goes
	// through the Chernoff classifier and spreads default to 1 — the same
	// contract as miner.Engine.SymbolMatch.
	SymbolMatch []float64
	// MinMatch is the significance threshold; Delta the Chernoff failure
	// probability (both forwarded to chernoff.NewClassifier).
	MinMatch, Delta float64
	// MaxLen bounds total pattern length (>= 1); MaxGap bounds runs of
	// eternal symbols; MaxK caps the lattice level (0 = no cap).
	MaxLen, MaxGap, MaxK int
	// Workers shards the DFS roots across goroutines (-1 = GOMAXPROCS,
	// 0/1 = sequential). Results are bit-identical for every count.
	Workers int
	// Budget caps each worker's projection cache in bytes
	// (0 = match.DefaultCacheBudget, negative = unlimited). A projection too
	// large to cache is built transiently and dropped — slower on the next
	// visit, never different: a projection is the same object whether
	// extended from a cached prefix or rebuilt from scratch, so the cache
	// (and with it every recorded float) is invisible to the results.
	Budget int64
	// Scratch disables projections entirely: every candidate is valued by
	// per-pattern compiled matching (the naive-kernel discipline, still
	// shard-merged and therefore still bit-identical). Wired to
	// core.KernelNaive for differential testing.
	Scratch bool
	// Metrics receives growth telemetry (nil disables collection).
	Metrics *telemetry.Metrics
	// Ctx, when non-nil, is checked at every node expansion.
	Ctx context.Context
}

// memoEntry caches one pattern's resolved label for admission checks and
// label clamping. explored reports whether the level-wise engine would have
// enumerated the pattern at all (generated by an alive parent with every
// in-space immediate subpattern alive); label is meaningful only when it
// would.
type memoEntry struct {
	label    chernoff.Label
	explored bool
}

type engine struct {
	cfg Config
	m   int
	cls *chernoff.Classifier
	pj  *match.Projector

	aliveSymbols []pattern.Symbol
	alive1       []bool // per-symbol level-1 liveness, for the dead-symbol shortcut

	// mu guards memo, done, res and the per-level tallies. Valuation happens
	// outside the lock; the done registry guarantees each node is processed
	// by exactly one worker.
	mu    sync.Mutex
	memo  map[string]memoEntry
	done  map[string]chan struct{} // node-processing claims; closed when complete
	res   *miner.Result
	cand  []int // candidates recorded per lattice level (1-indexed by K)
	alive []int

	err  atomic.Pointer[error]
	peak atomic.Int64 // peak projection bytes held by any single worker
}

// Mine runs the growth engine over the sample. The result is interchangeable
// with miner.SampleChernoff's (see the package comment); Scans is 0 — the
// DFS never batches valuer calls — LevelMillis is nil and Truncated is
// always false (the engine holds bounded projections, not a level, in
// memory, so it never truncates; miner.Options.MaxCandidatesPerLevel has no
// analogue).
func Mine(c compat.Source, sample [][]pattern.Symbol, cfg Config) (*miner.Result, error) {
	m := c.Size()
	if m < 1 {
		return nil, fmt.Errorf("growth: alphabet size %d < 1", m)
	}
	if cfg.MaxLen < 1 {
		return nil, fmt.Errorf("growth: MaxLen %d < 1", cfg.MaxLen)
	}
	if cfg.MaxGap < 0 || cfg.MaxK < 0 {
		return nil, fmt.Errorf("growth: negative cap")
	}
	cls, err := chernoff.NewClassifier(cfg.MinMatch, cfg.Delta, len(sample))
	if err != nil {
		return nil, err
	}
	if cfg.Budget == 0 {
		cfg.Budget = match.DefaultCacheBudget
	}
	e := &engine{
		cfg:    cfg,
		m:      m,
		cls:    cls,
		pj:     match.NewProjector(c, sample, 0),
		memo:   make(map[string]memoEntry),
		done:   make(map[string]chan struct{}),
		alive1: make([]bool, m),
		res: &miner.Result{
			Frequent:  pattern.NewSet(),
			Ambiguous: pattern.NewSet(),
			Values:    make(map[string]float64),
			Spreads:   make(map[string]float64),
			Labels:    make(map[string]chernoff.Label),
		},
	}

	// Level 1: value and label every symbol exactly like the level-wise
	// engine's first iteration. Alive symbols, in ascending order, are both
	// the extension alphabet and the DFS roots.
	var roots []pattern.Pattern
	for d := 0; d < m; d++ {
		p := pattern.Pattern{pattern.Symbol(d)}
		v, err := e.pj.Value(p)
		if err != nil {
			return nil, err
		}
		spread := 1.0
		var label chernoff.Label
		if cfg.SymbolMatch != nil {
			spread = chernoff.RestrictedSpread(p, cfg.SymbolMatch)
			if cfg.SymbolMatch[d] >= cfg.MinMatch {
				label = chernoff.Frequent
			} else {
				label = chernoff.Infrequent
			}
		} else {
			label = cls.Classify(v, spread)
		}
		e.record(p, 1, v, true, spread, label)
		e.memo[p.Key()] = memoEntry{label: label, explored: true}
		if label != chernoff.Infrequent {
			e.alive1[d] = true
			e.aliveSymbols = append(e.aliveSymbols, pattern.Symbol(d))
			roots = append(roots, p)
		}
	}

	// DFS, sharded by root subtree: workers claim alive 1-patterns from an
	// atomic cursor and explore each subtree depth first. Node processing is
	// deduplicated globally through the done registry, so demand-driven
	// resolution from other subtrees never repeats work.
	if len(roots) > 0 && cfg.MaxLen >= 2 && (cfg.MaxK == 0 || cfg.MaxK >= 2) {
		workers := cfg.Workers
		if workers < 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers < 1 {
			workers = 1
		}
		if workers > len(roots) {
			workers = len(roots)
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				pc := newProjCache(e)
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(roots) || e.err.Load() != nil {
						return
					}
					if err := e.walk(pc, roots[i]); err != nil {
						e.fail(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if perr := e.err.Load(); perr != nil {
			return nil, *perr
		}
	}

	e.res.CandidatesPerLevel = e.cand
	e.res.AlivePerLevel = e.alive
	e.res.FQT = pattern.Border(e.res.Frequent)
	combined := e.res.Frequent.Clone()
	combined.Union(e.res.Ambiguous)
	e.res.Ceiling = pattern.Border(combined)
	for _, n := range e.cand {
		cfg.Metrics.LevelEvaluated(n)
	}
	cfg.Metrics.GrowthPeakBytes(e.peak.Load())
	return e.res, nil
}

// fail records the first error; workers drain at the next node check.
func (e *engine) fail(err error) {
	e.err.CompareAndSwap(nil, &err)
}

func (e *engine) memoGet(key string) (memoEntry, bool) {
	e.mu.Lock()
	ent, ok := e.memo[key]
	e.mu.Unlock()
	return ent, ok
}

// memoPut stores an entry; concurrent duplicate computations produce
// identical entries, so the first write wins.
func (e *engine) memoPut(key string, ent memoEntry) {
	e.mu.Lock()
	if _, ok := e.memo[key]; !ok {
		e.memo[key] = ent
	}
	e.mu.Unlock()
}

// walk explores the subtree rooted at the alive pattern p: process p's node
// (classify all children — deduplicated globally, so a node another worker
// already demand-processed is not repeated), then recurse into the alive
// children read back from the memo. Every deeper pattern keeps its root's
// first symbol, so subtree walks are disjoint and each alive pattern is
// walked exactly once.
func (e *engine) walk(pc *projCache, p pattern.Pattern) error {
	if err := e.processNode(pc, p); err != nil {
		return err
	}
	k := p.K()
	if e.cfg.MaxK > 0 && k+1 > e.cfg.MaxK {
		return nil
	}
	for gap := 0; gap <= e.cfg.MaxGap; gap++ {
		qLen := p.Len() + gap + 1
		if qLen > e.cfg.MaxLen {
			break
		}
		for _, d := range e.aliveSymbols {
			q := pattern.Extend(p, gap, d)
			ent, ok := e.memoGet(q.Key())
			if !ok || !ent.explored || ent.label == chernoff.Infrequent {
				continue
			}
			if err := e.walk(pc, q); err != nil {
				return err
			}
		}
	}
	return nil
}

// processNode enumerates, admits, bound-prunes and values every child of the
// alive pattern p, recording each into the result maps and the memo — exactly
// once globally: the first worker to arrive claims the node in the done
// registry and later arrivals block until the claim closes. A claim only ever
// waits (through resolve) on claims at strictly lower lattice levels, so the
// waits-on relation is acyclic. Children that fail admission are memoized as
// unexplored so demand resolution never re-derives them.
func (e *engine) processNode(pc *projCache, p pattern.Pattern) error {
	k := p.K()
	if e.cfg.MaxK > 0 && k+1 > e.cfg.MaxK {
		return nil
	}
	if p.Len()+1 > e.cfg.MaxLen {
		return nil
	}
	if e.cfg.Ctx != nil {
		if err := e.cfg.Ctx.Err(); err != nil {
			return err
		}
	}
	if perr := e.err.Load(); perr != nil {
		return *perr
	}
	key := p.Key()
	e.mu.Lock()
	if ch, ok := e.done[key]; ok {
		e.mu.Unlock()
		<-ch
		return nil
	}
	ch := make(chan struct{})
	e.done[key] = ch
	e.mu.Unlock()
	defer close(ch)

	spread := 1.0
	if e.cfg.SymbolMatch != nil {
		spread = chernoff.RestrictedSpread(p, e.cfg.SymbolMatch)
	}
	proj, err := pc.proj(p)
	if err != nil {
		e.fail(err)
		return err
	}
	var nodeValued, nodeScratch, nodePruned int64
	for gap := 0; gap <= e.cfg.MaxGap; gap++ {
		qLen := p.Len() + gap + 1
		if qLen > e.cfg.MaxLen {
			break
		}
		// Admission: the level-wise Apriori rule, with cross-subtree
		// subpattern labels resolved on demand. Admitted siblings of one
		// (parent, gap) group share a single projection walk.
		type kid struct {
			q      pattern.Pattern
			d      pattern.Symbol
			spread float64
			minSub chernoff.Label
		}
		var kids []kid
		var ds []pattern.Symbol
		var prof match.Profile
		haveProf := false
		for _, d := range e.aliveSymbols {
			q := pattern.Extend(p, gap, d)
			minSub, ok, err := e.subsAlive(pc, q)
			if err != nil {
				e.fail(err)
				return err
			}
			if !ok {
				e.memoPut(q.Key(), memoEntry{})
				continue
			}
			sq := spread
			if e.cfg.SymbolMatch != nil && e.cfg.SymbolMatch[d] < sq {
				sq = e.cfg.SymbolMatch[d]
			}
			if proj != nil {
				// Bound-prune: an optimistic bound already infrequent at the
				// child's (tighter) spread proves the raw label without
				// valuing — Values gets no entry, Labels the same label the
				// level-wise engine records. One profile walk per (node, gap)
				// serves every sibling's bound and exact value.
				if !haveProf {
					prof = proj.Profile(qLen, &pc.prof)
					haveProf = true
				}
				if e.cls.Classify(proj.Bound(prof.Clip(), e.pj.RowMax(d)), sq) == chernoff.Infrequent {
					e.record(q, k+1, 0, false, sq, chernoff.Infrequent)
					e.memoPut(q.Key(), memoEntry{label: chernoff.Infrequent, explored: true})
					nodePruned++
					continue
				}
			}
			kids = append(kids, kid{q, d, sq, minSub})
			ds = append(ds, d)
		}
		if len(kids) == 0 {
			continue
		}
		var values []float64
		if proj != nil {
			values = prof.ValueKids(ds)
			nodeValued += int64(len(kids))
		} else {
			values = make([]float64, len(kids))
			for i, kd := range kids {
				v, err := e.pj.Value(kd.q)
				if err != nil {
					e.fail(err)
					return err
				}
				values[i] = v
			}
			nodeScratch += int64(len(kids))
		}
		for i, kd := range kids {
			label := e.cls.Classify(values[i], kd.spread)
			if label != chernoff.Infrequent && kd.minSub < label {
				label = kd.minSub
			}
			e.record(kd.q, k+1, values[i], true, kd.spread, label)
			e.memoPut(kd.q.Key(), memoEntry{label: label, explored: true})
		}
	}
	e.cfg.Metrics.GrowthNode(nodeValued, nodeScratch, nodePruned)
	return nil
}

// subsAlive applies the level-wise engine's admission rule to q: every
// immediate subpattern inside the explored space must be alive. It returns
// the minimum subpattern label (the clamp bound) and whether q is admitted.
func (e *engine) subsAlive(pc *projCache, q pattern.Pattern) (chernoff.Label, bool, error) {
	minSub := chernoff.Frequent
	for _, sub := range q.ImmediateSubpatterns() {
		if maxGapRun(sub) > e.cfg.MaxGap {
			continue // outside the explored space, never enumerated
		}
		label, explored, err := e.resolve(pc, sub)
		if err != nil {
			return 0, false, err
		}
		if !explored || label == chernoff.Infrequent {
			return 0, false, nil
		}
		if label < minSub {
			minSub = label
		}
	}
	return minSub, true, nil
}

// resolve reports the label the level-wise engine would record for p without
// ever valuing p itself: if the memo misses, it walks p's generating-parent
// chain (strictly shorter patterns, so the recursion is well founded) and,
// when the parent is alive and explored, has the parent's node processed —
// which classifies p along with all its siblings, exactly once globally. A
// pattern the level-wise engine would never enumerate (out of space, a dead
// symbol inside, its parent dead or unexplored) reports explored == false.
func (e *engine) resolve(pc *projCache, p pattern.Pattern) (chernoff.Label, bool, error) {
	key := p.Key()
	if ent, ok := e.memoGet(key); ok {
		return ent.label, ent.explored, nil
	}
	// 1-patterns are pre-seeded, so p has at least two concrete symbols.
	if p.Len() > e.cfg.MaxLen || (e.cfg.MaxK > 0 && p.K() > e.cfg.MaxK) {
		e.memoPut(key, memoEntry{})
		return 0, false, nil
	}
	// Dead-symbol shortcut: any pattern containing a level-1-infrequent
	// symbol is unexplored — by induction some immediate subpattern chain
	// descends to that dead 1-pattern, killing admission at every step up.
	for _, s := range p {
		if !s.IsEternal() && !e.alive1[s] {
			e.memoPut(key, memoEntry{})
			return 0, false, nil
		}
	}
	parent := dropLast(p)
	plabel, pexplored, err := e.resolve(pc, parent)
	if err != nil {
		return 0, false, err
	}
	if !pexplored || plabel == chernoff.Infrequent {
		e.memoPut(key, memoEntry{})
		return 0, false, nil
	}
	if err := e.processNode(pc, parent); err != nil {
		return 0, false, err
	}
	ent, ok := e.memoGet(key)
	if !ok {
		if perr := e.err.Load(); perr != nil {
			return 0, false, *perr
		}
		return 0, false, fmt.Errorf("growth: %s unresolved after processing its parent", key)
	}
	return ent.label, ent.explored, nil
}

// dropLast returns p's generating parent: p minus its final concrete symbol
// and the eternal run before it. Callers guarantee p has >= 2 concrete
// symbols and ends on a concrete one.
func dropLast(p pattern.Pattern) pattern.Pattern {
	i := len(p) - 2
	for i >= 0 && p[i].IsEternal() {
		i--
	}
	return p[:i+1]
}

// record exports one enumerated candidate into the result maps and the
// per-level tallies. Each pattern's parent node is processed by exactly one
// worker, so every key is written once.
func (e *engine) record(q pattern.Pattern, k int, v float64, hasValue bool, spread float64, label chernoff.Label) {
	key := q.Key()
	e.mu.Lock()
	if hasValue {
		e.res.Values[key] = v
	}
	e.res.Spreads[key] = spread
	e.res.Labels[key] = label
	for len(e.cand) < k {
		e.cand = append(e.cand, 0)
		e.alive = append(e.alive, 0)
	}
	e.cand[k-1]++
	switch label {
	case chernoff.Frequent:
		e.res.Frequent.Add(q)
		e.alive[k-1]++
	case chernoff.Ambiguous:
		e.res.Ambiguous.Add(q)
		e.alive[k-1]++
	}
	e.mu.Unlock()
	e.cfg.Metrics.Classified(int(label))
}

// maxGapRun returns the longest run of eternal symbols in p.
func maxGapRun(p pattern.Pattern) int {
	run, max := 0, 0
	for _, s := range p {
		if s.IsEternal() {
			run++
			if run > max {
				max = run
			}
		} else {
			run = 0
		}
	}
	return max
}
