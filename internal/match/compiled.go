package match

import (
	"repro/internal/compat"
	"repro/internal/pattern"
)

// rowCache materializes dense matrix rows on demand. For the dense Matrix it
// borrows internal rows directly; for a SparseMatrix (or any other Source)
// it expands rows from the sparse adjacency once and shares them across all
// patterns compiled against the same cache, so a batch over a huge alphabet
// pays O(m) per *distinct* pattern symbol, not per pattern position.
type rowCache struct {
	src   compat.Source
	dense interface {
		Row(pattern.Symbol) []float64
	}
	rows map[pattern.Symbol][]float64
}

func newRowCache(src compat.Source) *rowCache {
	rc := &rowCache{src: src}
	if d, ok := src.(interface {
		Row(pattern.Symbol) []float64
	}); ok {
		rc.dense = d
	} else {
		rc.rows = make(map[pattern.Symbol][]float64)
	}
	return rc
}

func (rc *rowCache) row(d pattern.Symbol) []float64 {
	if rc.dense != nil {
		return rc.dense.Row(d)
	}
	if r, ok := rc.rows[d]; ok {
		return r
	}
	r := make([]float64, rc.src.Size())
	for _, e := range rc.src.ObservedGiven(d) {
		r[e.Sym] = e.P
	}
	rc.rows[d] = r
	return r
}

// Compiled is a pattern pre-processed for repeated matching against many
// sequences. Compilation hoists the eternal positions out of the inner loop,
// caches each position's matrix row, and builds a first-symbol filter that
// skips windows whose first observed symbol has zero compatibility with the
// pattern's first symbol — the sparse-matrix fast path the paper alludes to
// for near-Θ(|S|) match computation (§4.2).
type Compiled struct {
	p       pattern.Pattern
	length  int
	offsets []int       // offsets of non-eternal positions within the window
	rows    [][]float64 // matrix row for each non-eternal position
	firstOK []bool      // firstOK[obs]: window starting at obs can be non-zero
}

// Compile prepares p for matching under c. The pattern must be valid.
func Compile(c compat.Source, p pattern.Pattern) (*Compiled, error) {
	return compileWith(newRowCache(c), c.Size(), p)
}

func compileWith(rc *rowCache, m int, p pattern.Pattern) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cp := &Compiled{p: p.Clone(), length: len(p)}
	for i, d := range p {
		if d.IsEternal() {
			continue
		}
		cp.offsets = append(cp.offsets, i)
		cp.rows = append(cp.rows, rc.row(d))
	}
	firstRow := cp.rows[0] // position 0 is non-eternal by validity
	cp.firstOK = make([]bool, m)
	for obs, v := range firstRow {
		cp.firstOK[obs] = v > 0
	}
	return cp, nil
}

// Pattern returns the compiled pattern.
func (cp *Compiled) Pattern() pattern.Pattern { return cp.p }

// Match computes M(P,S) exactly like Sequence but with the precompiled
// structure.
func (cp *Compiled) Match(seq []pattern.Symbol) float64 {
	l := cp.length
	if len(seq) < l {
		return 0
	}
	best := 0.0
	for i := 0; i+l <= len(seq); i++ {
		if !cp.firstOK[seq[i]] {
			continue
		}
		v := 1.0
		for j, off := range cp.offsets {
			v *= cp.rows[j][seq[i+off]]
			if v <= best {
				v = 0
				break
			}
		}
		if v > best {
			best = v
			if best == 1 {
				return 1
			}
		}
	}
	return best
}

// appendWindows appends the start offset and full product of every window of
// seq whose product is non-zero, and returns the updated slices plus the best
// window product (the sequence's match). Unlike Match it applies no
// best-so-far cutoff: the incremental kernel needs every surviving window's
// exact product, because a right-extension can promote any of them to the new
// maximum. Products are accumulated left to right over the non-eternal
// positions, the same order Match and Sequence use, so the values are
// bit-identical to theirs.
func (cp *Compiled) appendWindows(seq []pattern.Symbol, starts []int32, prods []float64) ([]int32, []float64, float64) {
	l := cp.length
	best := 0.0
	for i := 0; i+l <= len(seq); i++ {
		if !cp.firstOK[seq[i]] {
			continue
		}
		v := 1.0
		for j, off := range cp.offsets {
			v *= cp.rows[j][seq[i+off]]
			if v == 0 {
				break
			}
		}
		if v == 0 {
			continue
		}
		starts = append(starts, int32(i))
		prods = append(prods, v)
		if v > best {
			best = v
		}
	}
	return starts, prods, best
}

// appendProds is appendWindows for all-positive matrices, where every window
// survives: only the products are appended — the window starts are the
// implicit ramp 0,1,2,… — along with the best product over the sequence.
func (cp *Compiled) appendProds(seq []pattern.Symbol, prods []float64) ([]float64, float64) {
	l := cp.length
	best := 0.0
	for i := 0; i+l <= len(seq); i++ {
		v := 1.0
		for j, off := range cp.offsets {
			v *= cp.rows[j][seq[i+off]]
		}
		prods = append(prods, v)
		if v > best {
			best = v
		}
	}
	return prods, best
}

// CompiledSet matches a batch of patterns against sequences; it is the
// counting kernel used by the full-database probe scans, where a memory
// budget worth of pattern counters is evaluated in a single pass. All
// patterns in a set share one row cache.
type CompiledSet struct {
	patterns []*Compiled
	sums     []float64
	n        int
}

// CompileSet compiles each pattern; the set accumulates per-pattern sums of
// sequence matches.
func CompileSet(c compat.Source, ps []pattern.Pattern) (*CompiledSet, error) {
	rc := newRowCache(c)
	set := &CompiledSet{
		patterns: make([]*Compiled, len(ps)),
		sums:     make([]float64, len(ps)),
	}
	for i, p := range ps {
		cp, err := compileWith(rc, c.Size(), p)
		if err != nil {
			return nil, err
		}
		set.patterns[i] = cp
	}
	return set, nil
}

// Observe accumulates one sequence's match for every pattern.
func (s *CompiledSet) Observe(seq []pattern.Symbol) {
	for i, cp := range s.patterns {
		s.sums[i] += cp.Match(seq)
	}
	s.n++
}

// ObserveInto adds one sequence's match for every pattern into sums (which
// must have one entry per compiled pattern) instead of the set's own
// accumulators. Streaming consumers extend previously accumulated sums with
// this: seeding sums with the running totals and observing the new sequences
// one by one continues the exact left-to-right addition order a from-scratch
// in-order scan performs — summing the new chunk separately and adding it
// afterwards would reassociate the floats.
func (s *CompiledSet) ObserveInto(seq []pattern.Symbol, sums []float64) {
	for i, cp := range s.patterns {
		sums[i] += cp.Match(seq)
	}
}

// Sums returns a copy of the raw per-pattern match sums accumulated so far.
// Streaming consumers cache these instead of the averages Matches returns:
// a sum extended sequence by sequence stays bit-identical to a fresh in-order
// scan, which an average re-multiplied by n would not.
func (s *CompiledSet) Sums() []float64 {
	out := make([]float64, len(s.sums))
	copy(out, s.sums)
	return out
}

// Matches returns each pattern's database match after n observed sequences
// (s.n is used when n <= 0).
func (s *CompiledSet) Matches(n int) []float64 {
	if n <= 0 {
		n = s.n
	}
	out := make([]float64, len(s.sums))
	if n == 0 {
		return out
	}
	for i, v := range s.sums {
		out[i] = v / float64(n)
	}
	return out
}
