package match

import (
	"math/rand"
	"testing"

	"repro/internal/pattern"
)

// TestSoAMatchesCompiledBitwise: the structure-of-arrays kernel must
// reproduce Compiled.Match bit-for-bit — same operations, same order — on
// random matrices, patterns and sequences.
func TestSoAMatchesCompiledBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	const m = 8
	for trial := 0; trial < 50; trial++ {
		c := randomMatrix(r, m)
		var ps []pattern.Pattern
		for len(ps) < 12 {
			p := randomPattern(r, m, 6)
			if p.Validate() == nil {
				ps = append(ps, p)
			}
		}
		soa, err := CompileSoA(c, ps)
		if err != nil {
			t.Fatal(err)
		}
		if soa.Len() != len(ps) {
			t.Fatalf("Len %d, want %d", soa.Len(), len(ps))
		}
		compiled := make([]*Compiled, len(ps))
		for i, p := range ps {
			if compiled[i], err = Compile(c, p); err != nil {
				t.Fatal(err)
			}
		}
		for s := 0; s < 40; s++ {
			seq := randomSeq(r, m, 15)
			sums := make([]float64, len(ps))
			soa.Observe(sums, seq)
			for i, cp := range compiled {
				if want := cp.Match(seq); sums[i] != want {
					t.Fatalf("trial %d pattern %v seq %v: SoA %v != Compiled %v",
						trial, ps[i], seq, sums[i], want)
				}
			}
		}
	}
}

// TestSoAAccumulates: Observe adds onto the caller's sums rather than
// overwriting them, which the per-block accumulation relies on.
func TestSoAAccumulates(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const m = 6
	c := randomMatrix(r, m)
	ps := []pattern.Pattern{{1, 2}, {3}}
	soa, err := CompileSoA(c, ps)
	if err != nil {
		t.Fatal(err)
	}
	seq := randomSeq(r, m, 10)
	once := make([]float64, len(ps))
	soa.Observe(once, seq)
	twice := make([]float64, len(ps))
	soa.Observe(twice, seq)
	soa.Observe(twice, seq)
	for i := range once {
		if twice[i] != 2*once[i] {
			t.Fatalf("pattern %d: %v after two observes, want %v", i, twice[i], 2*once[i])
		}
	}
}

func TestSoAEmptyBatch(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	c := randomMatrix(r, 5)
	soa, err := CompileSoA(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	soa.Observe(nil, []pattern.Symbol{0, 1}) // must not panic
	if soa.Len() != 0 {
		t.Fatalf("Len %d", soa.Len())
	}
}
