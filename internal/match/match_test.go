package match

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compat"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

const (
	d1 = pattern.Symbol(0)
	d2 = pattern.Symbol(1)
	d3 = pattern.Symbol(2)
	d4 = pattern.Symbol(3)
	d5 = pattern.Symbol(4)
	et = pattern.Eternal
)

// fig4DB is the sequence database of the paper's Figure 4(a).
func fig4DB() *seqdb.MemDB {
	return seqdb.NewMemDB([][]pattern.Symbol{
		{d1, d2, d3, d1},
		{d4, d2, d1},
		{d3, d4, d2, d1},
		{d2, d2},
	})
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSegmentPaperExamples(t *testing.T) {
	c := compat.Fig2()
	// §3: M(d1*d2, d1d2d2) = 0.9·1·0.8 = 0.72.
	p1 := pattern.MustNew(d1, et, d2)
	if got := Segment(c, p1, []pattern.Symbol{d1, d2, d2}); !almost(got, 0.72) {
		t.Errorf("M(d1*d2, d1d2d2)=%v, want 0.72", got)
	}
	// §3: M(d1d2d5, d1d2d2) = 0 because C(d5,d2)=0.
	p2 := pattern.MustNew(d1, d2, d5)
	if got := Segment(c, p2, []pattern.Symbol{d1, d2, d2}); got != 0 {
		t.Errorf("M(d1d2d5, d1d2d2)=%v, want 0", got)
	}
}

func TestSegmentPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	Segment(compat.Fig2(), pattern.MustNew(d1, d2), []pattern.Symbol{d1})
}

func TestSequencePaperExample(t *testing.T) {
	c := compat.Fig2()
	// §3: match of d1d2 in d1d2d2d3d4d1 = max{0.72,0.08,0.005,0,0} = 0.72.
	p := pattern.MustNew(d1, d2)
	seq := []pattern.Symbol{d1, d2, d2, d3, d4, d1}
	if got := Sequence(c, p, seq); !almost(got, 0.72) {
		t.Errorf("M=%v, want 0.72", got)
	}
}

func TestSequenceShorterThanPattern(t *testing.T) {
	c := compat.Fig2()
	p := pattern.MustNew(d1, d2, d3)
	if got := Sequence(c, p, []pattern.Symbol{d1, d2}); got != 0 {
		t.Errorf("M=%v, want 0", got)
	}
}

// fig4PatternMatches are golden two-symbol pattern matches from Figure 4(c),
// all hand-verified against the Figure 2 matrix and Definition 3.7.
var fig4PatternMatches = []struct {
	p    pattern.Pattern
	want float64
}{
	{pattern.MustNew(d1, d2), 0.2025},  // paper prints 0.203
	{pattern.MustNew(d2, d1), 0.39125}, // paper prints 0.391
	{pattern.MustNew(d4, d2), 0.32125}, // paper prints 0.321
	{pattern.MustNew(d3, d2), 0.07},
	{pattern.MustNew(d2, d2), 0.21}, // paper prints 0.200; 0.84/4 by Def. 3.7
	{pattern.MustNew(d3, d5), 0},
	{pattern.MustNew(d5, d5), 0},
}

func TestDBFig4Golden(t *testing.T) {
	c := compat.Fig2()
	db := fig4DB()
	ps := make([]pattern.Pattern, len(fig4PatternMatches))
	for i, g := range fig4PatternMatches {
		ps[i] = g.p
	}
	got, err := DB(db, NewMatch(c), ps)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range fig4PatternMatches {
		if !almost(got[i], g.want) {
			t.Errorf("M(%v,D)=%v, want %v", g.p, got[i], g.want)
		}
	}
	if db.Scans() != 1 {
		t.Errorf("DB consumed %d scans, want 1", db.Scans())
	}
}

func TestDBLongPatternGolden(t *testing.T) {
	// §3's worked chain: M(d3d2d2) = 0.016 on the Figure 4(a) database.
	c := compat.Fig2()
	got, err := DB(fig4DB(), NewMatch(c), []pattern.Pattern{pattern.MustNew(d3, d2, d2)})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got[0], 0.016) {
		t.Errorf("M(d3d2d2,D)=%v, want 0.016", got[0])
	}
}

func TestSymbolsFig4(t *testing.T) {
	// Per-symbol matches on Figure 4(a), computed from Definition 3.7 with
	// the Figure 2 matrix. (d2, d4 and d5 agree with the paper's Figure 5(b)
	// exactly; the paper's printed d1/d3 values are non-monotone in its own
	// cumulative table and thus inconsistent — see EXPERIMENTS.md.)
	c := compat.Fig2()
	db := fig4DB()
	got, err := Symbols(db, c)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.7, 0.8, 0.3875, 0.425, 0.075}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Errorf("match[d%d]=%v, want %v", i+1, got[i], want[i])
		}
	}
	if db.Scans() != 1 {
		t.Errorf("Symbols consumed %d scans", db.Scans())
	}
}

func TestSymbolsNaiveAgrees(t *testing.T) {
	c := compat.Fig2()
	a, err := Symbols(fig4DB(), c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SymbolsNaive(fig4DB(), c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !almost(a[i], b[i]) {
			t.Errorf("symbol %d: optimized %v vs naive %v", i, a[i], b[i])
		}
	}
}

func TestSymbolAccumulatorFigure5a(t *testing.T) {
	// Figure 5(a): per-symbol max match within sequence d1 d2 d3 d1.
	c := compat.Fig2()
	acc := NewSymbolAccumulator(c)
	acc.Observe([]pattern.Symbol{d1, d2, d3, d1})
	got := acc.Matches(1)
	want := []float64{0.9, 0.8, 0.7, 0.1, 0.15}
	for i := range want {
		if !almost(got[i], want[i]) {
			t.Errorf("max_match[d%d]=%v, want %v", i+1, got[i], want[i])
		}
	}
}

func TestMatchEqualsSupportUnderIdentity(t *testing.T) {
	// §3 bridge property: with the identity matrix, match == support.
	c := compat.Identity(5)
	db := fig4DB()
	ps := []pattern.Pattern{
		pattern.MustNew(d1, d2),
		pattern.MustNew(d2, d1),
		pattern.MustNew(d4, d2),
		pattern.MustNew(d1, et, d3),
		pattern.MustNew(d2, et, d1),
		pattern.MustNew(d3),
	}
	gotMatch, err := DB(db, NewMatch(c), ps)
	if err != nil {
		t.Fatal(err)
	}
	wantSupport := []float64{0.25, 0.5, 0.5, 0.25, 0.25, 0.5}
	for i := range ps {
		if !almost(gotMatch[i], wantSupport[i]) {
			t.Errorf("identity match of %v = %v, want support %v", ps[i], gotMatch[i], wantSupport[i])
		}
	}
}

func TestSample(t *testing.T) {
	c := compat.Fig2()
	sample := [][]pattern.Symbol{{d1, d2, d2}, {d3}}
	p := pattern.MustNew(d1, et, d2)
	// Seq 1: 0.72 (computed above); seq 2 too short: 0.
	if got := Sample(NewMatch(c), p, sample); !almost(got, 0.36) {
		t.Errorf("Sample=%v, want 0.36", got)
	}
	if got := Sample(NewMatch(c), p, nil); got != 0 {
		t.Errorf("empty sample: %v", got)
	}
}

func TestCompiledAgreesWithSequence(t *testing.T) {
	c := compat.Fig2()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		// Random valid pattern and random sequence.
		l := 1 + rng.Intn(5)
		p := make(pattern.Pattern, l)
		for i := range p {
			if i > 0 && i < l-1 && rng.Intn(3) == 0 {
				p[i] = et
			} else {
				p[i] = pattern.Symbol(rng.Intn(5))
			}
		}
		seq := make([]pattern.Symbol, rng.Intn(12))
		for i := range seq {
			seq[i] = pattern.Symbol(rng.Intn(5))
		}
		cp, err := Compile(c, p)
		if err != nil {
			t.Fatal(err)
		}
		want := Sequence(c, p, seq)
		if got := cp.Match(seq); !almost(got, want) {
			t.Fatalf("trial %d: Compiled.Match(%v,%v)=%v, want %v", trial, p, seq, got, want)
		}
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	if _, err := Compile(compat.Fig2(), pattern.Pattern{et, d1}); err == nil {
		t.Error("invalid pattern compiled")
	}
}

func TestCompiledSet(t *testing.T) {
	c := compat.Fig2()
	ps := []pattern.Pattern{pattern.MustNew(d1, d2), pattern.MustNew(d2, d1)}
	set, err := CompileSet(c, ps)
	if err != nil {
		t.Fatal(err)
	}
	db := fig4DB()
	err = db.Scan(func(id int, seq []pattern.Symbol) error {
		set.Observe(seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := set.Matches(0) // use internal count
	if !almost(got[0], 0.2025) || !almost(got[1], 0.39125) {
		t.Errorf("CompiledSet matches: %v", got)
	}
	got = set.Matches(db.Len())
	if !almost(got[0], 0.2025) {
		t.Errorf("explicit n: %v", got)
	}
	if _, err := CompileSet(c, []pattern.Pattern{{et}}); err == nil {
		t.Error("CompileSet accepted invalid pattern")
	}
}

func TestCompiledSetEmpty(t *testing.T) {
	set, err := CompileSet(compat.Fig2(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Matches(0); len(got) != 0 {
		t.Errorf("empty set matches: %v", got)
	}
}

// randomPattern and randomSeq support the property tests below.
func randomPattern(r *rand.Rand, m, maxLen int) pattern.Pattern {
	l := 1 + r.Intn(maxLen)
	p := make(pattern.Pattern, l)
	for i := range p {
		if i > 0 && i < l-1 && r.Intn(3) == 0 {
			p[i] = et
		} else {
			p[i] = pattern.Symbol(r.Intn(m))
		}
	}
	return p
}

func randomSeq(r *rand.Rand, m, maxLen int) []pattern.Symbol {
	s := make([]pattern.Symbol, 1+r.Intn(maxLen))
	for i := range s {
		s[i] = pattern.Symbol(r.Intn(m))
	}
	return s
}

func randomMatrix(r *rand.Rand, m int) *compat.Matrix {
	dense := make([][]float64, m)
	for i := range dense {
		dense[i] = make([]float64, m)
	}
	for j := 0; j < m; j++ {
		sum := 0.0
		col := make([]float64, m)
		for i := 0; i < m; i++ {
			if r.Intn(2) == 0 {
				col[i] = r.Float64()
				sum += col[i]
			}
		}
		if sum == 0 {
			col[j] = 1
			sum = 1
		}
		for i := 0; i < m; i++ {
			dense[i][j] = col[i] / sum
		}
	}
	return compat.MustNew(dense)
}

func TestQuickMatchInUnitInterval(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func() bool {
		m := 2 + r.Intn(6)
		c := randomMatrix(r, m)
		p := randomPattern(r, m, 6)
		s := randomSeq(r, m, 15)
		v := Sequence(c, p, s)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickAprioriOnSequences(t *testing.T) {
	// Claim 3.1: M(P,S) >= M(P',S) whenever P is a subpattern of P'.
	r := rand.New(rand.NewSource(22))
	f := func() bool {
		m := 2 + r.Intn(6)
		c := randomMatrix(r, m)
		super := randomPattern(r, m, 7)
		sub := super.Clone()
		for i := range sub {
			if r.Intn(2) == 0 {
				sub[i] = et
			}
		}
		sub = pattern.Trim(sub)
		if sub == nil {
			return true
		}
		s := randomSeq(r, m, 15)
		return Sequence(c, sub, s) >= Sequence(c, super, s)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSymbolMatchIsUpperBound(t *testing.T) {
	// Claim 4.2: M(P,S) <= min over P's symbols of match[d] in S.
	r := rand.New(rand.NewSource(23))
	f := func() bool {
		m := 2 + r.Intn(6)
		c := randomMatrix(r, m)
		p := randomPattern(r, m, 6)
		s := randomSeq(r, m, 15)
		pv := Sequence(c, p, s)
		acc := NewSymbolAccumulator(c)
		acc.Observe(s)
		sym := acc.Matches(1)
		for _, d := range p.Symbols() {
			if pv > sym[d]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompiledEqualsReference(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	f := func() bool {
		m := 2 + r.Intn(8)
		c := randomMatrix(r, m)
		p := randomPattern(r, m, 6)
		s := randomSeq(r, m, 20)
		cp, err := Compile(c, p)
		if err != nil {
			return false
		}
		return almost(cp.Match(s), Sequence(c, p, s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
