package match_test

import (
	"fmt"

	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/pattern"
)

// ExampleSequence reproduces the paper's §3 worked example: the match of
// d1 d2 in the sequence d1 d2 d2 d3 d4 d1 is the best window, 0.72.
func ExampleSequence() {
	c := compat.Fig2()
	p := pattern.MustNew(0, 1) // d1 d2
	seq := []pattern.Symbol{0, 1, 1, 2, 3, 0}
	fmt.Printf("%.2f\n", match.Sequence(c, p, seq))
	// Output: 0.72
}

// ExampleSegment shows the don't-care position contributing factor 1.
func ExampleSegment() {
	c := compat.Fig2()
	p := pattern.MustNew(0, pattern.Eternal, 1) // d1 * d2
	seg := []pattern.Symbol{0, 1, 1}            // d1 d2 d2
	fmt.Printf("%.2f\n", match.Segment(c, p, seg))
	// Output: 0.72
}
