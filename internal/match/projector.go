// Projected sample databases for the depth-first pattern-growth Phase 2
// engine (internal/growth). A Projection is one pattern's surviving window
// products over the whole sample — the same per-sequence prefix-product
// state the incremental level-wise kernel caches per parent (shardWindows),
// lifted out of the level-serial spine so a DFS can hold one block per
// lattice path instead of one spine per level.
//
// Everything here replicates the incremental kernel's float discipline
// exactly, which is what makes the growth engine's values bit-identical to
// ValueLevel's:
//
//   - window products are accumulated left to right (appendWindows /
//     appendProds for scratch builds, parent product × one row factor for
//     extensions), the association Compiled.Match and Sequence use;
//   - zero-product windows are dropped in sparse mode, every window is kept
//     in ramp mode (all-positive matrices), with the identical
//     widened-window clipping (binary search on the ascending starts);
//   - per-candidate sample sums are accumulated per fixed 32-sequence shard
//     in ascending sequence order, shard partials are merged in ascending
//     shard order, and the merged sum is divided by the sample size.
//
// A Projector is immutable after construction (rows are pre-expanded), so
// any number of goroutines may Build, Extend, Value and walk projections
// concurrently — the growth engine shards its DFS roots across workers with
// no further coordination.
package match

import (
	"repro/internal/compat"
	"repro/internal/pattern"
)

// Projector owns the shared, read-only state of a projected-database run:
// the sample, its fixed shard split, the expanded matrix rows, and each
// row's maximum (the optimistic extension factor behind bound-pruning).
type Projector struct {
	m      int
	sample [][]pattern.Symbol
	shards [][2]int // fixed contiguous [lo, hi) sequence ranges
	rc     *rowCache
	ramp   bool // no zero cells: every window survives, starts are implicit
	rowMax []float64
}

// NewProjector builds a projector over a fixed in-memory sample. shardSize
// overrides the sequences-per-shard split (<= 0 selects the incremental
// kernel's default of 32; changing it reassociates the float64 merge, so it
// is exposed mainly for tests). All matrix rows are expanded eagerly —
// after construction the projector is safe for concurrent use.
func NewProjector(c compat.Source, sample [][]pattern.Symbol, shardSize int) *Projector {
	if shardSize <= 0 {
		shardSize = defaultShardSize
	}
	pj := &Projector{
		m:      c.Size(),
		sample: sample,
		rc:     newRowCache(c),
		ramp:   true,
		rowMax: make([]float64, c.Size()),
	}
	for lo := 0; lo < len(sample); lo += shardSize {
		hi := lo + shardSize
		if hi > len(sample) {
			hi = len(sample)
		}
		pj.shards = append(pj.shards, [2]int{lo, hi})
	}
	for d := 0; d < pj.m; d++ {
		row := pj.rc.row(pattern.Symbol(d))
		max := 0.0
		for _, v := range row {
			if v == 0 {
				pj.ramp = false
			} else if v > max {
				max = v
			}
		}
		pj.rowMax[d] = max
	}
	return pj
}

// SampleSize returns the number of sample sequences.
func (pj *Projector) SampleSize() int { return len(pj.sample) }

// RowMax returns the largest compatibility any observed symbol has with d —
// the optimistic factor a one-symbol extension by d can contribute.
func (pj *Projector) RowMax(d pattern.Symbol) float64 { return pj.rowMax[d] }

// WindowBytesBound is the worst-case bytes a length-l projection can hold,
// mirroring the incremental kernel's admission bound (spineBytesBound): the
// growth engine admits a child projection against its DFS-path budget by
// this bound, which depends only on the sample and l — never on worker
// scheduling — so the projected/scratch split is deterministic.
func (pj *Projector) WindowBytesBound(l int) int64 {
	per := int64(8) // prods
	if !pj.ramp {
		per += 4 // starts
	}
	var windows int64
	for _, seq := range pj.sample {
		if w := len(seq) - l + 1; w > 0 {
			windows += int64(w)
		}
	}
	offs := int64(len(pj.sample)+len(pj.shards)) * 4
	return windows*per + offs + entryOverhead
}

// Value scores one pattern from scratch: compiled matching per sequence,
// summed per shard and merged in ascending shard order — exactly the
// incremental kernel's scratch path, so the value is bit-identical to
// ValueLevel's for the same pattern.
func (pj *Projector) Value(p pattern.Pattern) (float64, error) {
	cp, err := compileWith(pj.rc, pj.m, p)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, sh := range pj.shards {
		part := 0.0
		for si := sh[0]; si < sh[1]; si++ {
			part += cp.Match(pj.sample[si])
		}
		total += part
	}
	if n := len(pj.sample); n > 0 {
		total /= float64(n)
	}
	return total, nil
}

// projShard is one shard's surviving windows, CSR-indexed like the
// incremental kernel's shardWindows: sequence i of the shard owns
// prods[offs[i]:offs[i+1]] (and the matching starts in sparse mode; in ramp
// mode starts is nil and window starts are the implicit 0,1,2,… ramp).
type projShard struct {
	offs   []int32
	starts []int32
	prods  []float64
}

func (sw *projShard) bytes() int64 {
	return int64(cap(sw.offs))*4 + int64(cap(sw.starts))*4 + int64(cap(sw.prods))*8
}

// Projection is one pattern's window products over the whole sample — the
// projected database its right-extensions are valued against. Immutable
// after construction.
type Projection struct {
	pj     *Projector
	patLen int
	shards []projShard
	bytes  int64
}

// PatLen returns the projected pattern's total length.
func (pr *Projection) PatLen() int { return pr.patLen }

// Bytes returns the memory the projection's backing arrays hold (by
// capacity), the quantity charged against the growth engine's path budget.
func (pr *Projection) Bytes() int64 { return pr.bytes }

// Build materializes p's projection from scratch (appendWindows /
// appendProds per sequence — the incremental kernel's scratch build), so
// the window products carry the canonical left-to-right association.
func (pj *Projector) Build(p pattern.Pattern) (*Projection, error) {
	cp, err := compileWith(pj.rc, pj.m, p)
	if err != nil {
		return nil, err
	}
	pr := &Projection{pj: pj, patLen: len(p), shards: make([]projShard, len(pj.shards))}
	for s, sh := range pj.shards {
		lo, hi := sh[0], sh[1]
		sw := &pr.shards[s]
		offs := make([]int32, hi-lo+1)
		bound := pj.shardWindowBound(lo, hi, len(p))
		if pj.ramp {
			prods := make([]float64, 0, bound)
			for si := lo; si < hi; si++ {
				prods, _ = cp.appendProds(pj.sample[si], prods)
				offs[si-lo+1] = int32(len(prods))
			}
			sw.prods = prods
		} else {
			starts := make([]int32, 0, bound)
			prods := make([]float64, 0, bound)
			for si := lo; si < hi; si++ {
				starts, prods, _ = cp.appendWindows(pj.sample[si], starts, prods)
				offs[si-lo+1] = int32(len(prods))
			}
			sw.starts, sw.prods = compactWindows(starts, prods, bound)
		}
		sw.offs = offs
		pr.bytes += sw.bytes()
	}
	return pr, nil
}

// compactWindows re-allocates a sparse block when fewer than half its
// reserved windows survived, so the path budget is charged for what is held,
// not the reservation — the incremental kernel's compaction rule.
func compactWindows(starts []int32, prods []float64, bound int) ([]int32, []float64) {
	if len(prods)*2 < bound {
		return append(make([]int32, 0, len(starts)), starts...),
			append(make([]float64, 0, len(prods)), prods...)
	}
	return starts, prods
}

// shardWindowBound counts the windows a length-l pattern can have across
// sequences [lo, hi) — the per-shard component of WindowBytesBound.
func (pj *Projector) shardWindowBound(lo, hi, l int) int {
	bound := 0
	for si := lo; si < hi; si++ {
		if w := len(pj.sample[si]) - l + 1; w > 0 {
			bound += w
		}
	}
	return bound
}

// clipShard bounds the windows of sequence si (shard-local index i) still
// wide enough to host a child of total length qLen: ramp mode clips the
// implicit ramp by count, sparse mode binary-searches the ascending starts —
// the incremental kernel's widened-window clip.
func (pr *Projection) clipShard(sw *projShard, i int, seq []pattern.Symbol, qLen int) (int32, int32) {
	wlo, whi := sw.offs[i], sw.offs[i+1]
	if pr.pj.ramp {
		if lim := int32(len(seq) - qLen + 1); whi-wlo > lim {
			whi = wlo
			if lim > 0 {
				whi = wlo + lim
			}
		}
		return wlo, whi
	}
	limit := int32(len(seq) - qLen)
	if whi > wlo && sw.starts[whi-1] > limit {
		l, h := wlo, whi
		for l < h {
			if mid := (l + h) / 2; sw.starts[mid] > limit {
				h = mid
			} else {
				l = mid + 1
			}
		}
		whi = l
	}
	return wlo, whi
}

// ClipMax returns, per sample sequence, the maximum parent product over the
// windows still wide enough for a child of total length qLen (0 when none
// survive). One walk of the projection serves every sibling's optimistic
// bound at this length.
func (pr *Projection) ClipMax(qLen int) []float64 {
	out := make([]float64, len(pr.pj.sample))
	for s, sh := range pr.pj.shards {
		lo, hi := sh[0], sh[1]
		sw := &pr.shards[s]
		for si := lo; si < hi; si++ {
			wlo, whi := pr.clipShard(sw, si-lo, pr.pj.sample[si], qLen)
			best := 0.0
			for w := wlo; w < whi; w++ {
				if v := sw.prods[w]; v > best {
					best = v
				}
			}
			out[si] = best
		}
	}
	return out
}

// Bound returns an optimistic upper bound on the sample match of any child
// whose extension row maximum is rowMax, from the ClipMax walk at the
// child's length. Soundness is float-exact: every factor of the true child
// value is dominated term by term (prod_w <= clip[si], row[obs] <= rowMax),
// float multiplication and addition are monotone, and both sums follow the
// identical shard-merge association — so Bound >= the child's Value in
// float64 arithmetic, and a Chernoff-infrequent bound proves the child
// infrequent without valuing it.
func (pr *Projection) Bound(clip []float64, rowMax float64) float64 {
	total := 0.0
	for _, sh := range pr.pj.shards {
		part := 0.0
		for si := sh[0]; si < sh[1]; si++ {
			part += clip[si] * rowMax
		}
		total += part
	}
	if n := len(pr.pj.sample); n > 0 {
		total /= float64(n)
	}
	return total
}

// ValueKids scores every right-extension of the projected pattern to total
// length qLen by the symbols ds — one walk of the projection shared by all
// siblings, mirroring the incremental kernel's group valuation
// (valueRampGroups / valueSparseGroups) bit for bit: per-sequence best over
// fl(parent product × row factor), summed per shard, merged in ascending
// shard order, divided by the sample size.
//
// For wide sibling groups the per-sequence max is computed by observed-symbol
// class instead of window by window: the windows a sequence offers a child
// partition by the observed symbol at the extension position, and within a
// class o the best child product is fl(max parent product × row[o]) — float
// multiplication by a fixed non-negative factor is monotone, so the class max
// commutes with the multiply and the per-sequence best over classes is the
// same float64 the window-by-window walk produces. One classification pass
// (O(windows)) then serves every sibling at O(classes) each, instead of every
// sibling re-walking every window.
func (pr *Projection) ValueKids(qLen int, ds []pattern.Symbol) []float64 {
	pj := pr.pj
	out := make([]float64, len(ds))
	part := make([]float64, len(ds))
	best := make([]float64, len(ds))
	krows := make([][]float64, len(ds))
	for i, d := range ds {
		krows[i] = pj.rc.row(d)
	}
	var classMax []float64
	var stamp []int32
	var present []int32
	var epoch int32
	if len(ds) >= 3 {
		classMax = make([]float64, pj.m)
		stamp = make([]int32, pj.m)
		present = make([]int32, 0, pj.m)
	}
	off := qLen - 1
	for s, sh := range pj.shards {
		lo, hi := sh[0], sh[1]
		sw := &pr.shards[s]
		for i := range part {
			part[i] = 0
		}
		for si := lo; si < hi; si++ {
			seq := pj.sample[si]
			wlo, whi := pr.clipShard(sw, si-lo, seq, qLen)
			if whi <= wlo {
				continue
			}
			nw := int(whi - wlo)
			classes := pj.m
			if nw < classes {
				classes = nw
			}
			// The class pass costs nw + classes·(len(ds)+1) sequence ops where
			// the direct walk costs nw·len(ds); pick per sequence.
			if classMax != nil && nw*(len(ds)-1) > nw+classes*(len(ds)+1) {
				epoch++
				present = present[:0]
				if pj.ramp {
					prods := sw.prods[wlo:whi]
					obs := seq[off : off+len(prods)]
					for j, p := range prods {
						o := int32(obs[j])
						if stamp[o] != epoch {
							stamp[o] = epoch
							classMax[o] = p
							present = append(present, o)
						} else if p > classMax[o] {
							classMax[o] = p
						}
					}
				} else {
					for w := wlo; w < whi; w++ {
						o := int32(seq[sw.starts[w]+int32(off)])
						if p := sw.prods[w]; stamp[o] != epoch {
							stamp[o] = epoch
							classMax[o] = p
							present = append(present, o)
						} else if p > classMax[o] {
							classMax[o] = p
						}
					}
				}
				for ci := range krows {
					row := krows[ci]
					b := 0.0
					for _, o := range present {
						if v := classMax[o] * row[o]; v > b {
							b = v
						}
					}
					part[ci] += b
				}
			} else if pj.ramp {
				prods := sw.prods[wlo:whi]
				obs := seq[off : off+len(prods)] // same length as prods: checks eliminated
				for ci := range krows {
					row := krows[ci]
					b := 0.0
					for j, p := range prods {
						if v := p * row[obs[j]]; v > b {
							b = v
						}
					}
					part[ci] += b
				}
			} else {
				for ci := range best {
					best[ci] = 0
				}
				for w := wlo; w < whi; w++ {
					pprod := sw.prods[w]
					obs := seq[sw.starts[w]+int32(off)]
					for ci := range krows {
						if v := pprod * krows[ci][obs]; v > best[ci] {
							best[ci] = v
						}
					}
				}
				for ci := range best {
					part[ci] += best[ci]
				}
			}
		}
		for i := range out {
			out[i] += part[i]
		}
	}
	if n := len(pj.sample); n > 0 {
		for i := range out {
			out[i] /= float64(n)
		}
	}
	return out
}

// ProfileScratch holds the reusable buffers of Profile walks so a worker can
// profile one (node, length) group per call without reallocating. The zero
// value is ready to use; not safe for concurrent use.
type ProfileScratch struct {
	classMax []float64 // dense per-symbol max, zeroed between sequences
	offs     []int32
	syms     []int32
	vals     []float64
	clip     []float64
}

// Profile is the class decomposition of a projection clipped for children of
// total length qLen: per sequence, the distinct observed symbols at the
// extension position with the maximum surviving parent product each (CSR over
// sequences), plus the per-sequence overall maximum — the same floats ClipMax
// returns, since a max over windows equals the max over class maxima. One
// window walk builds it; afterwards a child's per-sequence best is
// max over classes of fl(classMax × row[class]) — bit-identical to the
// window-by-window walk by float monotonicity (see ValueKids) — so valuing a
// sibling costs O(distinct classes), not O(windows), per sequence.
//
// A Profile borrows its scratch's buffers: it is valid only until the next
// Profile call on the same scratch.
type Profile struct {
	pr   *Projection
	qLen int
	offs []int32   // len(sample)+1 CSR offsets into syms/vals
	syms []int32   // observed symbol per class entry
	vals []float64 // max surviving parent product per class entry
	clip []float64 // per-sequence max over all entries (ClipMax's floats)
}

// Profile walks the projection once at child length qLen and returns the
// class decomposition backed by sc.
func (pr *Projection) Profile(qLen int, sc *ProfileScratch) Profile {
	pj := pr.pj
	n := len(pj.sample)
	if len(sc.classMax) < pj.m {
		sc.classMax = make([]float64, pj.m)
	}
	if cap(sc.clip) < n {
		sc.clip = make([]float64, n)
		sc.offs = make([]int32, 0, n+1)
	}
	sc.clip = sc.clip[:n]
	sc.offs = append(sc.offs[:0], 0)
	sc.syms = sc.syms[:0]
	sc.vals = sc.vals[:0]
	off := qLen - 1
	for s, sh := range pj.shards {
		lo, hi := sh[0], sh[1]
		sw := &pr.shards[s]
		for si := lo; si < hi; si++ {
			seq := pj.sample[si]
			wlo, whi := pr.clipShard(sw, si-lo, seq, qLen)
			if whi <= wlo {
				sc.clip[si] = 0
				sc.offs = append(sc.offs, int32(len(sc.syms)))
				continue
			}
			// Dense class update, no per-window branching beyond the max
			// itself; only a zero product (dropped in sparse mode, inert
			// under max in ramp mode) leaves a class absent.
			cm := sc.classMax
			if pj.ramp {
				prods := sw.prods[wlo:whi]
				obs := seq[off : off+len(prods)]
				for j, p := range prods {
					if o := obs[j]; p > cm[o] {
						cm[o] = p
					}
				}
			} else {
				for w := wlo; w < whi; w++ {
					if o := seq[sw.starts[w]+int32(off)]; sw.prods[w] > cm[o] {
						cm[o] = sw.prods[w]
					}
				}
			}
			best := 0.0
			for o, c := range cm {
				if c > 0 {
					sc.syms = append(sc.syms, int32(o))
					sc.vals = append(sc.vals, c)
					if c > best {
						best = c
					}
					cm[o] = 0
				}
			}
			sc.clip[si] = best
			sc.offs = append(sc.offs, int32(len(sc.syms)))
		}
	}
	return Profile{pr: pr, qLen: qLen, offs: sc.offs, syms: sc.syms, vals: sc.vals, clip: sc.clip}
}

// Clip returns the per-sequence clipped maxima — the slice Bound expects,
// float-identical to ClipMax(qLen).
func (pf *Profile) Clip() []float64 { return pf.clip }

// ValueKids scores every extension of the profiled pattern by the symbols ds
// at the profile's child length — the same floats Projection.ValueKids
// produces, from the class entries instead of the raw windows.
func (pf *Profile) ValueKids(ds []pattern.Symbol) []float64 {
	pj := pf.pr.pj
	out := make([]float64, len(ds))
	part := make([]float64, len(ds))
	krows := make([][]float64, len(ds))
	for i, d := range ds {
		krows[i] = pj.rc.row(d)
	}
	for _, sh := range pj.shards {
		lo, hi := sh[0], sh[1]
		for i := range part {
			part[i] = 0
		}
		for si := lo; si < hi; si++ {
			elo, ehi := pf.offs[si], pf.offs[si+1]
			if ehi <= elo {
				continue
			}
			syms := pf.syms[elo:ehi]
			vals := pf.vals[elo:ehi]
			for ci, row := range krows {
				b := 0.0
				for t, o := range syms {
					if v := vals[t] * row[o]; v > b {
						b = v
					}
				}
				part[ci] += b
			}
		}
		for i := range out {
			out[i] += part[i]
		}
	}
	if n := len(pj.sample); n > 0 {
		for i := range out {
			out[i] /= float64(n)
		}
	}
	return out
}

// Extend materializes the projection of the child extending the projected
// pattern to total length qLen with the concrete symbol d: each surviving
// parent window's product gains one row factor (the incremental kernel's
// O(1)-per-window block extension), zero products are dropped in sparse
// mode, and the block is compacted when sparse enough.
func (pr *Projection) Extend(qLen int, d pattern.Symbol) *Projection {
	pj := pr.pj
	row := pj.rc.row(d)
	child := &Projection{pj: pj, patLen: qLen, shards: make([]projShard, len(pj.shards))}
	off := qLen - 1
	for s, sh := range pj.shards {
		lo, hi := sh[0], sh[1]
		sw := &pr.shards[s]
		cw := &child.shards[s]
		offs := make([]int32, hi-lo+1)
		// Surviving windows are bounded both by the parent's block and by the
		// child length's window count; reserving the smaller keeps Bytes()
		// within WindowBytesBound(qLen), the budget admission bound.
		bound := len(sw.prods)
		if cb := pj.shardWindowBound(lo, hi, qLen); cb < bound {
			bound = cb
		}
		if pj.ramp {
			dst := make([]float64, 0, bound)
			for si := lo; si < hi; si++ {
				seq := pj.sample[si]
				wlo, whi := pr.clipShard(sw, si-lo, seq, qLen)
				if whi > wlo {
					prods := sw.prods[wlo:whi]
					obs := seq[off : off+len(prods)]
					for j, p := range prods {
						dst = append(dst, p*row[obs[j]])
					}
				}
				offs[si-lo+1] = int32(len(dst))
			}
			cw.prods = dst
		} else {
			kst := make([]int32, 0, bound)
			kpr := make([]float64, 0, bound)
			for si := lo; si < hi; si++ {
				seq := pj.sample[si]
				wlo, whi := pr.clipShard(sw, si-lo, seq, qLen)
				for w := wlo; w < whi; w++ {
					st := sw.starts[w]
					if v := sw.prods[w] * row[seq[st+int32(off)]]; v != 0 {
						kst = append(kst, st)
						kpr = append(kpr, v)
					}
				}
				offs[si-lo+1] = int32(len(kpr))
			}
			cw.starts, cw.prods = compactWindows(kst, kpr, bound)
		}
		cw.offs = offs
		child.bytes += cw.bytes()
	}
	return child
}
