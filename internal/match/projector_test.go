package match

import (
	"math/rand"
	"testing"

	"repro/internal/compat"
	"repro/internal/pattern"
)

// randSample builds a deterministic random sample over alphabet m.
func randSample(rng *rand.Rand, n, m int) [][]pattern.Symbol {
	sample := make([][]pattern.Symbol, n)
	for i := range sample {
		seq := make([]pattern.Symbol, 3+rng.Intn(12))
		for j := range seq {
			seq[j] = pattern.Symbol(rng.Intn(m))
		}
		sample[i] = seq
	}
	return sample
}

// projectorMatrices returns one all-positive matrix (ramp mode) and one with
// zero cells (sparse mode), both m×m.
func projectorMatrices(t *testing.T, m int) []*compat.Matrix {
	t.Helper()
	noisy, err := compat.UniformNoise(m, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return []*compat.Matrix{noisy, compat.Identity(m)}
}

// TestProjectorValueMatchesIncremental pins the core bit-identity contract:
// values produced by scratch builds (Build + ValueKids), chained extensions
// (Extend + ValueKids), per-pattern scratch valuation (Value), and the
// incremental level-wise kernel (ValueLevel) are all the same float64s.
func TestProjectorValueMatchesIncremental(t *testing.T) {
	const m = 4
	rng := rand.New(rand.NewSource(7))
	sample := randSample(rng, 67, m) // not a multiple of the 32-seq shard
	for _, c := range projectorMatrices(t, m) {
		pj := NewProjector(c, sample, 0)
		inc := NewIncremental(c, sample, IncrementalOptions{})
		defer inc.Release()

		// Walk levels 1..4 the way the level-wise kernel does, so its cache
		// extends blocks; compare every candidate against all projector paths.
		level := make([]pattern.Pattern, 0, m)
		for d := 0; d < m; d++ {
			level = append(level, pattern.Pattern{pattern.Symbol(d)})
		}
		for k := 1; k <= 4 && len(level) > 0; k++ {
			want, _, err := inc.ValueLevel(level)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range level {
				got, err := pj.Value(p)
				if err != nil {
					t.Fatal(err)
				}
				if got != want[i] {
					t.Fatalf("ramp=%v: Value(%s) = %v, ValueLevel = %v", pj.ramp, p.Key(), got, want[i])
				}
			}
			// Next level: extend every pattern by every gap/symbol.
			var next []pattern.Pattern
			for _, p := range level {
				pr, err := pj.Build(p)
				if err != nil {
					t.Fatal(err)
				}
				for gap := 0; gap <= 1; gap++ {
					qLen := p.Len() + gap + 1
					ds := make([]pattern.Symbol, m)
					for d := range ds {
						ds[d] = pattern.Symbol(d)
					}
					kidVals := pr.ValueKids(qLen, ds)
					for d, kv := range kidVals {
						q := pattern.Extend(p, gap, pattern.Symbol(d))
						sv, err := pj.Value(q)
						if err != nil {
							t.Fatal(err)
						}
						if kv != sv {
							t.Fatalf("ramp=%v: ValueKids(%s) = %v, Value = %v", pj.ramp, q.Key(), kv, sv)
						}
						// The extended child projection must value grandkids
						// identically to a scratch build of the child.
						ext := pr.Extend(qLen, pattern.Symbol(d))
						scr, err := pj.Build(q)
						if err != nil {
							t.Fatal(err)
						}
						gql := qLen + 1
						ev := ext.ValueKids(gql, ds[:1])
						bv := scr.ValueKids(gql, ds[:1])
						if ev[0] != bv[0] {
							t.Fatalf("ramp=%v: extended vs built projection of %s disagree: %v vs %v",
								pj.ramp, q.Key(), ev[0], bv[0])
						}
					}
				}
				if len(next) < 6 {
					next = append(next, pattern.Extend(p, 0, pattern.Symbol(0)))
				}
			}
			level = next
		}
	}
}

// TestProjectorBoundDominates checks the bound-prune soundness contract in
// float64 arithmetic: for every child, Bound at the child's length and
// extension symbol is >= the child's exact value.
func TestProjectorBoundDominates(t *testing.T) {
	const m = 4
	rng := rand.New(rand.NewSource(11))
	sample := randSample(rng, 50, m)
	for _, c := range projectorMatrices(t, m) {
		pj := NewProjector(c, sample, 0)
		for d := 0; d < m; d++ {
			p := pattern.Pattern{pattern.Symbol(d)}
			pr, err := pj.Build(p)
			if err != nil {
				t.Fatal(err)
			}
			for gap := 0; gap <= 2; gap++ {
				qLen := p.Len() + gap + 1
				clip := pr.ClipMax(qLen)
				for kd := 0; kd < m; kd++ {
					bound := pr.Bound(clip, pj.RowMax(pattern.Symbol(kd)))
					v, err := pj.Value(pattern.Extend(p, gap, pattern.Symbol(kd)))
					if err != nil {
						t.Fatal(err)
					}
					if bound < v {
						t.Fatalf("ramp=%v: bound %v < value %v for %s+gap%d+%d",
							pj.ramp, bound, v, p.Key(), gap, kd)
					}
				}
			}
		}
	}
}

// TestProjectorWindowBytesBound checks the deterministic admission bound
// really bounds what Build and Extend materialize.
func TestProjectorWindowBytesBound(t *testing.T) {
	const m = 3
	rng := rand.New(rand.NewSource(13))
	sample := randSample(rng, 40, m)
	for _, c := range projectorMatrices(t, m) {
		pj := NewProjector(c, sample, 0)
		p := pattern.Pattern{0, 1}
		pr, err := pj.Build(p)
		if err != nil {
			t.Fatal(err)
		}
		if got, bound := pr.Bytes(), pj.WindowBytesBound(2); got > bound {
			t.Fatalf("Build bytes %d > bound %d", got, bound)
		}
		ext := pr.Extend(3, 2)
		if got, bound := ext.Bytes(), pj.WindowBytesBound(3); got > bound {
			t.Fatalf("Extend bytes %d > bound %d", got, bound)
		}
	}
}

// TestProjectorProfileMatchesValueKids pins the class-profile contract: one
// Profile walk must reproduce ClipMax's floats exactly and value every
// sibling bit-identically to the window-by-window ValueKids walk, in both
// storage modes, across gaps and pattern depths, with the scratch reused
// between calls.
func TestProjectorProfileMatchesValueKids(t *testing.T) {
	const m = 5
	rng := rand.New(rand.NewSource(17))
	sample := randSample(rng, 67, m)
	ds := make([]pattern.Symbol, m)
	for d := range ds {
		ds[d] = pattern.Symbol(d)
	}
	for _, c := range projectorMatrices(t, m) {
		pj := NewProjector(c, sample, 0)
		var sc ProfileScratch
		ps := []pattern.Pattern{
			{0}, {1}, {2, 0}, {0, pattern.Eternal, 1}, {1, 2, pattern.Eternal, 0},
		}
		for _, p := range ps {
			pr, err := pj.Build(p)
			if err != nil {
				t.Fatal(err)
			}
			for gap := 0; gap <= 2; gap++ {
				qLen := p.Len() + gap + 1
				prof := pr.Profile(qLen, &sc)
				clip := pr.ClipMax(qLen)
				for si, want := range clip {
					if got := prof.Clip()[si]; got != want {
						t.Fatalf("ramp=%v: Profile clip[%d] of %s at qLen %d = %v, ClipMax = %v",
							pj.ramp, si, p.Key(), qLen, got, want)
					}
				}
				want := pr.ValueKids(qLen, ds)
				got := prof.ValueKids(ds)
				for d := range ds {
					if got[d] != want[d] {
						t.Fatalf("ramp=%v: Profile value of %s+gap%d+%d = %v, ValueKids = %v",
							pj.ramp, p.Key(), gap, d, got[d], want[d])
					}
				}
			}
		}
	}
}
