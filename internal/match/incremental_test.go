package match

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/compat"
	"repro/internal/pattern"
	"repro/internal/testutil"
)

// randomDense builds a dense random compatibility matrix with zeroRate of
// the cells forced to zero (columns renormalized).
func randomDense(t testing.TB, m int, zeroRate float64, rng *rand.Rand) compat.Source {
	t.Helper()
	dense := make([][]float64, m)
	for i := range dense {
		dense[i] = make([]float64, m)
	}
	for j := 0; j < m; j++ {
		sum := 0.0
		for i := 0; i < m; i++ {
			v := rng.Float64()
			if rng.Float64() < zeroRate {
				v = 0
			}
			dense[i][j] = v
			sum += v
		}
		if sum == 0 { // keep the column stochastic
			dense[j][j] = 1
			sum = 1
		}
		for i := 0; i < m; i++ {
			dense[i][j] /= sum
		}
	}
	c, err := compat.New(dense)
	if err != nil {
		t.Fatalf("randomDense: %v", err)
	}
	return c
}

// randomSparse builds a banded sparse matrix: each observed symbol is
// explained by itself and its two ring neighbors.
func randomSparse(t testing.TB, m int) compat.Source {
	t.Helper()
	var cells []compat.Cell
	for o := 0; o < m; o++ {
		cells = append(cells,
			compat.Cell{True: pattern.Symbol(o), Observed: pattern.Symbol(o), P: 0.9},
			compat.Cell{True: pattern.Symbol((o + 1) % m), Observed: pattern.Symbol(o), P: 0.06},
			compat.Cell{True: pattern.Symbol((o + m - 1) % m), Observed: pattern.Symbol(o), P: 0.04},
		)
	}
	c, err := compat.NewSparse(m, cells)
	if err != nil {
		t.Fatalf("randomSparse: %v", err)
	}
	return c
}

func randomSample(n, minLen, maxLen, m int, rng *rand.Rand) [][]pattern.Symbol {
	sample := make([][]pattern.Symbol, n)
	for i := range sample {
		l := minLen + rng.Intn(maxLen-minLen+1)
		seq := make([]pattern.Symbol, l)
		for j := range seq {
			seq[j] = pattern.Symbol(rng.Intn(m))
		}
		sample[i] = seq
	}
	return sample
}

// driveLattice mimics the engine's level-serial contract: level 1 is every
// symbol, each later level right-extends a pseudo-random alive subset of the
// previous level with gaps up to maxGap. Every level is fed to the kernel and
// checked against the naive per-pattern kernel.
func driveLattice(t *testing.T, c compat.Source, sample [][]pattern.Symbol, o IncrementalOptions, maxLevels, maxGap int, rng *rand.Rand) *Incremental {
	t.Helper()
	m := c.Size()
	meas := NewMatch(c)
	inc := NewIncremental(c, sample, o)
	level := make([]pattern.Pattern, 0, m)
	for d := 0; d < m; d++ {
		level = append(level, pattern.Pattern{pattern.Symbol(d)})
	}
	for k := 1; k <= maxLevels && len(level) > 0; k++ {
		vals, _, err := inc.ValueLevel(level)
		if err != nil {
			t.Fatalf("level %d: %v", k, err)
		}
		if len(vals) != len(level) {
			t.Fatalf("level %d: %d values for %d candidates", k, len(vals), len(level))
		}
		var alive []pattern.Pattern
		for i, p := range level {
			want := Sample(meas, p, sample)
			if math.Abs(vals[i]-want) > 1e-12 {
				t.Fatalf("level %d pattern %s: incremental %v, naive %v", k, p, vals[i], want)
			}
			// Keep a deterministic subset alive so levels stay tractable.
			if vals[i] > 0 && rng.Float64() < 0.4 {
				alive = append(alive, p)
			}
		}
		// Never let the lattice die by coin flips alone: the tests assert
		// that deeper levels were exercised, for any RNG seed.
		if len(alive) == 0 {
			for i, p := range level {
				if vals[i] > 0 {
					alive = append(alive, p)
					break
				}
			}
		}
		var next []pattern.Pattern
		for _, p := range alive {
			for gap := 0; gap <= maxGap; gap++ {
				for tries := 0; tries < 2; tries++ {
					next = append(next, pattern.Extend(p, gap, pattern.Symbol(rng.Intn(m))))
				}
			}
			if len(next) > 120 {
				break
			}
		}
		level = next
	}
	return inc
}

func TestIncrementalMatchesNaiveDense(t *testing.T) {
	rng := testutil.Rng(t)
	c := randomDense(t, 12, 0, rng)
	sample := randomSample(40, 5, 30, 12, rng)
	inc := driveLattice(t, c, sample, IncrementalOptions{}, 5, 1, rng)
	st := inc.Stats()
	if st.Extended == 0 {
		t.Fatalf("no pattern was served by extension: %+v", st)
	}
	if st.Fallbacks != 0 || st.Evicted != 0 {
		t.Fatalf("unexpected budget activity: %+v", st)
	}
}

func TestIncrementalMatchesNaiveSparseZeros(t *testing.T) {
	rng := testutil.Rng(t)
	for _, tc := range []struct {
		name string
		c    compat.Source
	}{
		{"dense-with-zeros", randomDense(t, 10, 0.7, rng)},
		{"sparse-banded", randomSparse(t, 16)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sample := randomSample(50, 4, 24, tc.c.Size(), rng)
			driveLattice(t, tc.c, sample, IncrementalOptions{Workers: 3, ShardSize: 7}, 6, 2, rng)
		})
	}
}

func TestIncrementalEternalHeavy(t *testing.T) {
	// Patterns dominated by eternal gaps: a * * b * * c …
	rng := testutil.Rng(t)
	c := randomDense(t, 8, 0.4, rng)
	sample := randomSample(30, 10, 40, 8, rng)
	meas := NewMatch(c)
	inc := NewIncremental(c, sample, IncrementalOptions{Workers: 2, ShardSize: 8})

	level := []pattern.Pattern{}
	for d := 0; d < 8; d++ {
		level = append(level, pattern.Pattern{pattern.Symbol(d)})
	}
	for k := 1; k <= 4 && len(level) > 0; k++ {
		vals, _, err := inc.ValueLevel(level)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range level {
			want := Sample(meas, p, sample)
			if math.Abs(vals[i]-want) > 1e-12 {
				t.Fatalf("pattern %s: incremental %v, naive %v", p, vals[i], want)
			}
		}
		var next []pattern.Pattern
		for _, p := range level[:min(len(level), 10)] {
			next = append(next, pattern.Extend(p, 2, pattern.Symbol(rng.Intn(8))))
		}
		level = next
	}
}

func TestIncrementalBudgetFallback(t *testing.T) {
	// A 1-byte budget evicts everything: every level after the first scores
	// through the compiled-matcher fallback, and values must not move.
	rng := testutil.Rng(t)
	c := randomDense(t, 10, 0.3, rng)
	sample := randomSample(35, 5, 25, 10, rng)
	inc := driveLattice(t, c, sample, IncrementalOptions{Budget: 1, Workers: 2, ShardSize: 5}, 5, 1, rng)
	st := inc.Stats()
	if st.Fallbacks == 0 {
		t.Fatalf("expected budget fallbacks, got %+v", st)
	}
	if st.Extended != 0 {
		t.Fatalf("nothing should extend under a 1-byte budget: %+v", st)
	}
}

func TestIncrementalWorkerCountInvariance(t *testing.T) {
	// The same lattice must produce bit-identical values for any worker
	// count: shard boundaries and merge order depend only on the sample.
	rng := testutil.Rng(t)
	c := randomDense(t, 10, 0.2, rng)
	sample := randomSample(60, 5, 25, 10, rng)

	levels := [][]pattern.Pattern{}
	level := []pattern.Pattern{}
	for d := 0; d < 10; d++ {
		level = append(level, pattern.Pattern{pattern.Symbol(d)})
	}
	for k := 0; k < 4; k++ {
		levels = append(levels, level)
		var next []pattern.Pattern
		for _, p := range level[:min(len(level), 8)] {
			next = append(next, pattern.Extend(p, 0, pattern.Symbol((k+int(p[0]))%10)))
			next = append(next, pattern.Extend(p, 1, pattern.Symbol((k+2*int(p[0]))%10)))
		}
		level = next
	}

	run := func(workers int) [][]float64 {
		inc := NewIncremental(c, sample, IncrementalOptions{Workers: workers, ShardSize: 9})
		var out [][]float64
		for _, lv := range levels {
			vals, _, err := inc.ValueLevel(lv)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, vals)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 4, 7} {
		got := run(workers)
		for li := range want {
			for i := range want[li] {
				if got[li][i] != want[li][i] {
					t.Fatalf("workers=%d level %d pattern %d: %v != %v",
						workers, li, i, got[li][i], want[li][i])
				}
			}
		}
	}
}

func TestIncrementalOrphanAndEdgeCases(t *testing.T) {
	rng := testutil.Rng(t)
	c := randomDense(t, 6, 0.3, rng)
	meas := NewMatch(c)

	t.Run("empty-sample", func(t *testing.T) {
		inc := NewIncremental(c, nil, IncrementalOptions{})
		vals, _, err := inc.ValueLevel([]pattern.Pattern{pattern.MustNew(0)})
		if err != nil || vals[0] != 0 {
			t.Fatalf("vals=%v err=%v", vals, err)
		}
	})
	t.Run("empty-level", func(t *testing.T) {
		inc := NewIncremental(c, randomSample(5, 3, 6, 6, rng), IncrementalOptions{})
		vals, _, err := inc.ValueLevel(nil)
		if err != nil || len(vals) != 0 {
			t.Fatalf("vals=%v err=%v", vals, err)
		}
	})
	t.Run("orphan-pattern", func(t *testing.T) {
		// A pattern whose parent was never evaluated heals: the parent's
		// spine block is rebuilt from scratch and the orphan is valued
		// through extension, exactly.
		sample := randomSample(20, 8, 16, 6, rng)
		inc := NewIncremental(c, sample, IncrementalOptions{Workers: 2, ShardSize: 4})
		p := pattern.MustNew(1, pattern.Eternal, 3, 2)
		vals, ls, err := inc.ValueLevel([]pattern.Pattern{p})
		if err != nil {
			t.Fatal(err)
		}
		if want := Sample(meas, p, sample); math.Abs(vals[0]-want) > 1e-12 {
			t.Fatalf("orphan: incremental %v, naive %v", vals[0], want)
		}
		if ls.Extended != 1 || ls.Scratch != 0 || ls.Windows == 0 {
			t.Fatalf("orphan should heal via a rebuilt parent block: %+v", ls)
		}
	})
	t.Run("shorter-than-pattern", func(t *testing.T) {
		sample := [][]pattern.Symbol{{0}, {1, 2}}
		inc := NewIncremental(c, sample, IncrementalOptions{})
		p := pattern.MustNew(0, 1, 2)
		vals, _, err := inc.ValueLevel([]pattern.Pattern{p})
		if err != nil || vals[0] != 0 {
			t.Fatalf("vals=%v err=%v", vals, err)
		}
	})
	t.Run("invalid-pattern", func(t *testing.T) {
		inc := NewIncremental(c, randomSample(5, 3, 6, 6, rng), IncrementalOptions{})
		if _, _, err := inc.ValueLevel([]pattern.Pattern{{pattern.Eternal, 1}}); err == nil {
			t.Fatal("invalid pattern accepted")
		}
	})
}
