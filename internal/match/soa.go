package match

import (
	"repro/internal/compat"
	"repro/internal/pattern"
)

// SoASet is a probe batch compiled into a structure-of-arrays layout: every
// pattern's window length, non-eternal offsets, and matrix rows live in flat
// parallel arrays indexed by one cursor, so the whole batch is matched
// against a sequence in a single pass over contiguous memory — no per-pattern
// pointer chasing, which is what the per-shard probe workers spend all their
// time in. The layout is immutable after CompileSoA, so one SoASet is safely
// shared by any number of concurrent shard workers, each accumulating into
// its own sums slice.
//
// Per-sequence match values are computed with exactly Compiled.Match's
// operations in exactly its order (first-window filter, left-to-right row
// products, best-so-far cutoff), so they are bit-identical to the sequential
// kernel's.
type SoASet struct {
	n        int
	m        int         // alphabet size (firstOK row stride)
	winLen   []int32     // pattern i's window length
	offStart []int32     // pattern i's offs/rows span [offStart[i], offStart[i+1])
	offs     []int32     // flat non-eternal position offsets within the window
	rows     [][]float64 // matrix row per flat offset (shared via the row cache)
	firstOK  []bool      // firstOK[i*m+obs]: pattern i's window starting at obs can be non-zero
}

// CompileSoA compiles a probe batch into the flat layout. All patterns share
// one row cache, as CompileSet does.
func CompileSoA(c compat.Source, ps []pattern.Pattern) (*SoASet, error) {
	rc := newRowCache(c)
	m := c.Size()
	s := &SoASet{
		n:        len(ps),
		m:        m,
		winLen:   make([]int32, len(ps)),
		offStart: make([]int32, len(ps)+1),
		firstOK:  make([]bool, len(ps)*m),
	}
	for i, p := range ps {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		s.winLen[i] = int32(len(p))
		for off, d := range p {
			if d.IsEternal() {
				continue
			}
			s.offs = append(s.offs, int32(off))
			s.rows = append(s.rows, rc.row(d))
		}
		s.offStart[i+1] = int32(len(s.offs))
		firstRow := s.rows[s.offStart[i]] // offset 0: patterns never start eternal
		for obs, v := range firstRow {
			s.firstOK[i*m+obs] = v > 0
		}
	}
	return s, nil
}

// Len returns the number of compiled patterns.
func (s *SoASet) Len() int { return s.n }

// Observe accumulates one sequence's match into sums[i] for every pattern i.
// len(sums) must be Len(). Safe for concurrent use with distinct sums.
func (s *SoASet) Observe(sums []float64, seq []pattern.Symbol) {
	if s.n == 0 {
		return
	}
	_ = sums[s.n-1]
	for p := 0; p < s.n; p++ {
		l := int(s.winLen[p])
		if len(seq) < l {
			continue
		}
		a, b := int(s.offStart[p]), int(s.offStart[p+1])
		offs, rows := s.offs[a:b], s.rows[a:b]
		firstOK := s.firstOK[p*s.m : (p+1)*s.m]
		best := 0.0
		for w := 0; w+l <= len(seq); w++ {
			if !firstOK[seq[w]] {
				continue
			}
			v := 1.0
			for j, off := range offs {
				v *= rows[j][seq[w+int(off)]]
				if v <= best {
					v = 0
					break
				}
			}
			if v > best {
				best = v
				if best == 1 {
					break
				}
			}
		}
		sums[p] += best
	}
}
