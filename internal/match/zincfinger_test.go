package match_test

import (
	"math/rand"
	"testing"

	"repro/internal/blosum"
	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/support"
)

// TestZincFingerSignature exercises the paper's §3 position-sensitive
// example: the Zinc Finger transcription-factor signature
// C**C************H**H — fixed-length gaps encoded with eternal symbols.
func TestZincFingerSignature(t *testing.T) {
	aa := blosum.Alphabet()
	sym := func(letter string) pattern.Symbol {
		s, err := aa.Symbol(letter)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	c, h := sym("C"), sym("H")

	// Build the signature exactly as printed in the paper: C, 2 gaps, C,
	// 12 gaps, H, 2 gaps, H (total length 20).
	sig := pattern.Pattern{c}
	sig = pattern.Extend(sig, 2, c)
	sig = pattern.Extend(sig, 12, h)
	sig = pattern.Extend(sig, 2, h)
	if sig.Len() != 20 || sig.K() != 4 {
		t.Fatalf("signature shape: len=%d k=%d", sig.Len(), sig.K())
	}
	if err := sig.Validate(); err != nil {
		t.Fatal(err)
	}

	// A fragment carrying the signature embedded in random residues.
	rng := rand.New(rand.NewSource(3))
	frag := make([]pattern.Symbol, 40)
	for i := range frag {
		frag[i] = pattern.Symbol(rng.Intn(blosum.M))
	}
	const at = 7
	for i, s := range sig {
		if !s.IsEternal() {
			frag[at+i] = s
		}
	}

	// Exact occurrence and noise-free match agree.
	if !support.Occurs(sig, frag) {
		t.Fatal("signature not found by exact matching")
	}
	ident := compat.Identity(blosum.M)
	if got := match.Sequence(ident, sig, frag); got != 1 {
		t.Fatalf("noise-free match = %v, want 1", got)
	}

	// Mutate one cysteine; exact matching loses the signature, the BLOSUM
	// compatibility matrix retains partial credit.
	mutated := append([]pattern.Symbol(nil), frag...)
	mutated[at] = sym("S") // C→S is BLOSUM50's least-bad cysteine swap
	if support.Occurs(sig, mutated) {
		t.Fatal("mutated fragment should not match exactly")
	}
	bl, err := blosum.Compatibility(0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := match.Sequence(bl, sig, mutated); got <= 0 {
		t.Fatalf("BLOSUM match of mutated fragment = %v, want > 0", got)
	}

	// The gap structure is position sensitive: shifting the second half by
	// one residue must break even the noise-free match.
	shifted := append([]pattern.Symbol(nil), frag...)
	shifted[at+15], shifted[at+16] = shifted[at+16], shifted[at+15] // move first H
	if support.Occurs(sig, shifted) {
		t.Fatal("shifted histidine should break the signature")
	}

	// End to end: the signature is minable with a MaxGap that admits the
	// 12-residue run.
	db := seqdb.NewMemDB([][]pattern.Symbol{frag, frag, mutated})
	vals, err := match.DB(db, match.NewMatch(ident), []pattern.Pattern{sig})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] < 2.0/3-1e-9 {
		t.Fatalf("database match %v, want 2/3", vals[0])
	}
}
