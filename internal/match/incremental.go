// The incremental prefix-extension kernel for Phase 2 (Algorithm 4.2's hot
// spot). The level-wise engine only ever scores right-extensions
// Extend(parent, gap, d) of patterns it scored one level earlier, yet the
// naive kernel re-walks the whole pattern against every window of every
// sample sequence at every level — O(|S|·l) per pattern per sequence, summing
// to O(L²) pattern-position work over L levels. This kernel caches, per
// generating parent and per sequence, the window prefix products, so scoring
// a child costs one matrix-row lookup and one multiply per window and the
// whole lattice costs O(L) pattern-position work.
//
// The cache is a lazy spine: a level's candidates are valued without storing
// anything, and only when the NEXT level references a pattern as a parent is
// its window block materialized — extended in O(1) per window from its own
// parent's block, which is still alive (a referenced parent was a candidate
// one level earlier, so its parent was referenced then). Since typically only
// a small fraction of candidates turn out frequent enough to generate
// children, the spine is an order of magnitude smaller than caching every
// candidate would be — most of the kernel's work is the store-free valuation
// walk. A parent whose ancestor block is missing (first levels, budget
// evictions, orphans) is rebuilt from scratch in O(l) per window and the
// lattice heals from there.
//
// Two further structural wins ride on the cache:
//
//   - Sibling amortization: every child of the same (parent, total length)
//     pair shares one walk of the parent's windows — the window bookkeeping
//     (bounds check, observed-symbol gather) is paid once per parent group,
//     not once per child.
//   - Sample sharding: the sample is split into fixed-size contiguous shards
//     processed by a worker pool. Each (parent, shard) spine block and
//     partial sum is written by exactly one worker, and partial sums are
//     merged in ascending shard order, so results are bit-identical for
//     every worker count.
//
// Because a child's product is the parent's prefix product times one new
// factor — the same left-to-right association Sequence and Compiled.Match
// use — the kernel's per-sequence values are bit-identical to the naive
// kernel's; only the final sum over shards may differ from a straight
// sequential sum in the last float64 bits (associativity), which the
// equivalence tests bound at 1e-12.
package match

import (
	"sync"
	"sync/atomic"

	"repro/internal/compat"
	"repro/internal/pattern"
)

// DefaultCacheBudget bounds the prefix cache when IncrementalOptions.Budget
// is zero: 256 MiB of window state, far above what the paper-scale workloads
// need but a hard wall against dense-matrix blowup.
const DefaultCacheBudget int64 = 256 << 20

// defaultShardSize is the number of sample sequences per shard. Shard
// boundaries are a function of the sample alone — never of the worker count —
// so the shard-order merge makes results independent of parallelism.
const defaultShardSize = 32

// entryOverhead approximates the fixed per-entry bookkeeping charged against
// the budget (struct, slice headers, map slot).
const entryOverhead = 96

// IncrementalOptions tunes the kernel; the zero value is a sequential kernel
// with the default budget and shard size.
type IncrementalOptions struct {
	// Workers is the number of shard workers (<= 1: sequential).
	Workers int
	// Budget bounds the bytes of cached prefix products, counting both the
	// previous level's spine and the one under construction. 0 selects
	// DefaultCacheBudget; negative means unlimited. Admission is decided
	// up front from a per-parent size bound, so the kernel never holds more
	// than the budget; parents denied admission fall back to
	// compiled-matcher recomputation — the budget trades speed for memory,
	// never correctness.
	Budget int64
	// ShardSize overrides the sequences-per-shard split (<= 0: default 32).
	// Changing it reassociates the float64 sum merge, so it is fixed for a
	// kernel's lifetime and exposed mainly for tests.
	ShardSize int
}

// LevelStats reports one ValueLevel call.
type LevelStats struct {
	// Extended and Scratch split the level's pattern evaluations by path:
	// valued through a parent's spine block vs per-pattern compiled matching.
	Extended, Scratch int64
	// Windows is the number of spine windows cached for the next level;
	// Bytes the spine memory held when the level closed.
	Windows, Bytes int64
	// Evicted counts parents denied a spine block by the memory budget;
	// Fallback reports that the budget forced at least one denial.
	Evicted  int64
	Fallback bool
}

// IncrementalStats accumulates LevelStats over a kernel's lifetime.
type IncrementalStats struct {
	Extended, Scratch, Windows, Evicted, Fallbacks int64
	// PeakBytes is the high-water mark of cache memory, counting the closing
	// and the in-construction spine together.
	PeakBytes int64
}

// shardWindows is one parent's window products over one shard's sequences,
// CSR-indexed: sequence i of the shard owns starts[offs[i]:offs[i+1]]
// (ascending) and the matching prods. In ramp mode (all-positive matrices —
// every window's product is non-zero) starts is nil: the window starts are
// implicitly 0,1,2,… per sequence.
type shardWindows struct {
	offs   []int32
	starts []int32
	prods  []float64
}

// bytes charges the block's backing arrays (by capacity — what the process
// actually holds) against the budget.
func (sw *shardWindows) bytes() int64 {
	return int64(cap(sw.offs))*4 + int64(cap(sw.starts))*4 + int64(cap(sw.prods))*8
}

func (sw *shardWindows) windows() int64 { return int64(len(sw.prods)) }

// prefixEntry is one parent pattern's spine: its window blocks across all
// shards plus the build plan resolved at setup — src/row extend the
// grandparent's block in O(1) per window, cp rebuilds from scratch when no
// grandparent block survives. dropped parents (budget denials) get no blocks
// and their children score through per-pattern compiled matching.
type prefixEntry struct {
	patLen  int
	dropped bool
	src     *prefixEntry
	row     []float64
	cp      *Compiled
	shards  []shardWindows
}

// Incremental is the kernel. Create with NewIncremental, feed it successive
// lattice levels with ValueLevel, and Release it when mining ends. It is not
// safe for concurrent ValueLevel calls (the engine is level-serial); the
// parallelism is internal.
type Incremental struct {
	c       compat.Source
	rc      *rowCache
	m       int
	sample  [][]pattern.Symbol
	shards  [][2]int // fixed contiguous [lo, hi) sequence ranges
	workers int
	budget  int64
	// ramp is set when the matrix has no zero cells: products can never
	// vanish, so every window survives every level and blocks store only
	// prods (starts are the implicit ramp 0,1,2,… per sequence).
	ramp      bool
	prev      map[string]*prefixEntry // the previous level's spine
	prevBytes int64
	winBound  map[int]int64 // pattern length -> total windows over the sample
	stats     IncrementalStats
	// Spine blocks are sub-sliced out of big chunks whose lifetime is the
	// level's: all of a level's blocks die together at the rotation one
	// level later, so whole chunks recycle deterministically (no GC-driven
	// pool misses) and recycled memory is handed out un-zeroed — every slot
	// of a block is written before the block is read, so the make() clearing
	// this replaces was pure waste. poolMu guards the chunk lists; curF/curI
	// back the level being built, prevF/prevI the closed level serving as
	// parents, freeF/freeI are reusable.
	poolMu      sync.Mutex
	freeF       [][]float64
	freeI       [][]int32
	curF, prevF [][]float64
	curI, prevI [][]int32
}

// chunkFloats/chunkInts size the arena chunks (512 KiB each).
const (
	chunkFloats = 1 << 16
	chunkInts   = 1 << 17
)

// chunkF pops (or allocates) a chunk with room for n floats and records it
// as backing the level under construction.
func (inc *Incremental) chunkF(n int) []float64 {
	var c []float64
	inc.poolMu.Lock()
	for i := len(inc.freeF) - 1; i >= 0; i-- {
		if len(inc.freeF[i]) >= n {
			c = inc.freeF[i]
			inc.freeF = append(inc.freeF[:i], inc.freeF[i+1:]...)
			break
		}
	}
	if c == nil {
		size := chunkFloats
		if n > size {
			size = n
		}
		c = make([]float64, size)
	}
	inc.curF = append(inc.curF, c)
	inc.poolMu.Unlock()
	return c
}

// chunkI is chunkF for int32 window starts.
func (inc *Incremental) chunkI(n int) []int32 {
	var c []int32
	inc.poolMu.Lock()
	for i := len(inc.freeI) - 1; i >= 0; i-- {
		if len(inc.freeI[i]) >= n {
			c = inc.freeI[i]
			inc.freeI = append(inc.freeI[:i], inc.freeI[i+1:]...)
			break
		}
	}
	if c == nil {
		size := chunkInts
		if n > size {
			size = n
		}
		c = make([]int32, size)
	}
	inc.curI = append(inc.curI, c)
	inc.poolMu.Unlock()
	return c
}

// rotateChunks closes the level: the chunks backing the evicted spine become
// free, and the just-built spine's chunks move to the parent position.
func (inc *Incremental) rotateChunks() {
	inc.poolMu.Lock()
	inc.freeF = append(inc.freeF, inc.prevF...)
	inc.freeI = append(inc.freeI, inc.prevI...)
	inc.prevF, inc.prevI = inc.curF, inc.curI
	inc.curF, inc.curI = nil, nil
	inc.poolMu.Unlock()
}

// arenas is one worker's bump allocator over the kernel's chunks.
type arenas struct {
	inc  *Incremental
	fbuf []float64
	foff int
	ibuf []int32
	ioff int
}

// prods carves an n-float block; contents are uninitialized.
func (a *arenas) prods(n int) []float64 {
	if a.foff+n > len(a.fbuf) {
		a.fbuf = a.inc.chunkF(n)
		a.foff = 0
	}
	b := a.fbuf[a.foff : a.foff+n : a.foff+n]
	a.foff += n
	return b
}

// starts carves an n-int32 block; contents are uninitialized.
func (a *arenas) starts(n int) []int32 {
	if a.ioff+n > len(a.ibuf) {
		a.ibuf = a.inc.chunkI(n)
		a.ioff = 0
	}
	b := a.ibuf[a.ioff : a.ioff+n : a.ioff+n]
	a.ioff += n
	return b
}

// NewIncremental builds a kernel over a fixed in-memory sample.
func NewIncremental(c compat.Source, sample [][]pattern.Symbol, o IncrementalOptions) *Incremental {
	shardSize := o.ShardSize
	if shardSize <= 0 {
		shardSize = defaultShardSize
	}
	budget := o.Budget
	if budget == 0 {
		budget = DefaultCacheBudget
	}
	workers := o.Workers
	if workers < 1 {
		workers = 1
	}
	inc := &Incremental{
		c:        c,
		rc:       newRowCache(c),
		m:        c.Size(),
		sample:   sample,
		workers:  workers,
		budget:   budget,
		winBound: make(map[int]int64),
	}
	for lo := 0; lo < len(sample); lo += shardSize {
		hi := lo + shardSize
		if hi > len(sample) {
			hi = len(sample)
		}
		inc.shards = append(inc.shards, [2]int{lo, hi})
	}
	inc.ramp = true
	for d := 0; d < inc.m && inc.ramp; d++ {
		for _, v := range inc.rc.row(pattern.Symbol(d)) {
			if v == 0 {
				inc.ramp = false
				break
			}
		}
	}
	return inc
}

// Stats returns the cumulative kernel statistics.
func (inc *Incremental) Stats() IncrementalStats { return inc.stats }

// Release drops the cache. The kernel stays usable — the next ValueLevel
// simply finds no parents — but callers should treat it as finished.
func (inc *Incremental) Release() {
	inc.prev = nil
	inc.prevBytes = 0
	inc.poolMu.Lock()
	inc.freeF, inc.freeI = nil, nil
	inc.curF, inc.curI = nil, nil
	inc.prevF, inc.prevI = nil, nil
	inc.poolMu.Unlock()
}

// windowsAtLen returns the total number of length-l windows over the sample,
// the exact size of a ramp-mode spine block and an upper bound on a sparse
// one (survivors are a subset).
func (inc *Incremental) windowsAtLen(l int) int64 {
	if n, ok := inc.winBound[l]; ok {
		return n
	}
	var n int64
	for _, seq := range inc.sample {
		if w := len(seq) - l + 1; w > 0 {
			n += int64(w)
		}
	}
	inc.winBound[l] = n
	return n
}

// spineBytesBound is the admission bound for one parent of length l: the
// worst-case bytes its blocks can hold across all shards. Actual usage never
// exceeds it (sparse blocks are compacted or bound-sized), so admitting by
// the bound keeps the spine under budget without mid-level eviction — and
// admission decided serially at setup is what keeps the cached/fallback
// split, and thus every block's contents, independent of worker scheduling.
func (inc *Incremental) spineBytesBound(l int) int64 {
	per := int64(8) // prods
	if !inc.ramp {
		per += 4 // starts
	}
	offs := int64(len(inc.sample)+len(inc.shards)) * 4
	return inc.windowsAtLen(l)*per + offs + entryOverhead
}

// group collects the candidates extending one (parent, total length) pair:
// they share the parent's windows and the observed symbol at the extension
// offset, so the walk is paid once for all of them.
type group struct {
	pe   *prefixEntry
	qLen int
	kids []int
}

// ValueLevel scores one lattice level and rotates the spine: blocks are
// built for the parents this level references (from the previous spine, or
// from scratch when it has no block), the candidates are valued against
// them without storing anything, and the previous spine is evicted when the
// call returns. The returned values equal the naive sample kernel's
// (CompileSet/Observe/Matches) for every candidate; see the package comment
// for the exact determinism guarantees.
func (inc *Incremental) ValueLevel(ps []pattern.Pattern) ([]float64, LevelStats, error) {
	out := make([]float64, len(ps))
	var ls LevelStats
	if len(ps) == 0 {
		inc.rotateChunks() // retire the unreferenced spine's chunks
		inc.prev, inc.prevBytes = nil, 0
		return out, ls, nil
	}
	numShards := len(inc.shards)

	// Serial setup: resolve each candidate's generating parent (last symbol
	// dropped, trailing eternals trimmed), admit parents against the budget,
	// and plan each admitted parent's build — extend the grandparent's spine
	// block, or compile the parent for a scratch rebuild. Every candidate
	// also gets a compiled matcher: it is the valuation path for kids of
	// denied parents and for parentless candidates. All rowCache traffic
	// happens here, before the workers start.
	rows := make([][]float64, len(ps))
	scratch := make([]*Compiled, len(ps))
	direct := make([]bool, len(ps))
	parents := make(map[string]*prefixEntry)
	var builds []*prefixEntry
	var groups []*group
	type groupKey struct {
		parent string
		qLen   int
	}
	groupIdx := make(map[groupKey]int)
	spineBound := inc.prevBytes
	maxKids := 1
	for i, p := range ps {
		if err := p.Validate(); err != nil {
			return nil, ls, err
		}
		cp, err := compileWith(inc.rc, inc.m, p)
		if err != nil {
			return nil, ls, err
		}
		scratch[i] = cp
		parent := pattern.Trim(p[: len(p)-1 : len(p)-1])
		if parent == nil {
			direct[i] = true
			ls.Scratch++
			continue
		}
		parentKey := parent.Key()
		pe, ok := parents[parentKey]
		if !ok {
			pe = &prefixEntry{patLen: len(parent)}
			if bound := inc.spineBytesBound(len(parent)); inc.budget >= 0 && spineBound+bound > inc.budget {
				pe.dropped = true
				ls.Evicted++
				ls.Fallback = true
			} else {
				spineBound += bound
				pe.shards = make([]shardWindows, numShards)
				if g := pattern.Trim(parent[: len(parent)-1 : len(parent)-1]); g != nil {
					if ge := inc.prev[g.Key()]; ge != nil && !ge.dropped {
						pe.src = ge
						pe.row = inc.rc.row(parent[len(parent)-1])
					}
				}
				if pe.src == nil {
					pcp, err := compileWith(inc.rc, inc.m, parent)
					if err != nil {
						return nil, ls, err
					}
					pe.cp = pcp
				}
				builds = append(builds, pe)
			}
			parents[parentKey] = pe
		}
		if pe.dropped {
			direct[i] = true
			ls.Scratch++
			continue
		}
		rows[i] = inc.rc.row(p[len(p)-1])
		gk := groupKey{parentKey, len(p)}
		gi, ok := groupIdx[gk]
		if !ok {
			gi = len(groups)
			groupIdx[gk] = gi
			groups = append(groups, &group{pe: pe, qLen: len(p)})
		}
		groups[gi].kids = append(groups[gi].kids, i)
		if len(groups[gi].kids) > maxKids {
			maxKids = len(groups[gi].kids)
		}
		ls.Extended++
	}

	// Parallel section: workers claim whole shards, so every (parent, shard)
	// spine block and every partials[s] slice has exactly one writer.
	partials := make([][]float64, numShards)
	var cursor atomic.Int64
	workers := inc.workers
	if workers > numShards {
		workers = numShards
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			best := make([]float64, maxKids)
			a := &arenas{inc: inc}
			for {
				s := int(cursor.Add(1)) - 1
				if s >= numShards {
					return
				}
				partials[s] = inc.processShard(s, ps, groups, builds, scratch, direct, rows, best, a)
			}
		}()
	}
	wg.Wait()

	// Deterministic merge: ascending shard order, then the sample average.
	for s := 0; s < numShards; s++ {
		for i, v := range partials[s] {
			out[i] += v
		}
	}
	if n := len(inc.sample); n > 0 {
		for i := range out {
			out[i] /= float64(n)
		}
	}

	// Rotate: the just-built spine serves the next level, the previous one
	// is evicted. Build plans are cleared so evicted blocks (whose chunks
	// recycle) become unreachable.
	cur := make(map[string]*prefixEntry, len(parents))
	var bytes int64
	for key, e := range parents {
		e.src, e.row, e.cp = nil, nil, nil
		if e.dropped {
			continue
		}
		var windows int64
		for s := range e.shards {
			windows += e.shards[s].windows()
			bytes += e.shards[s].bytes()
		}
		bytes += entryOverhead
		ls.Windows += windows
		cur[key] = e
	}
	peak := inc.prevBytes + bytes
	inc.rotateChunks() // the evicted spine's chunks feed the next build
	inc.prev, inc.prevBytes = cur, bytes
	ls.Bytes = bytes

	inc.stats.Extended += ls.Extended
	inc.stats.Scratch += ls.Scratch
	inc.stats.Windows += ls.Windows
	inc.stats.Evicted += ls.Evicted
	if ls.Fallback {
		inc.stats.Fallbacks++
	}
	if peak > inc.stats.PeakBytes {
		inc.stats.PeakBytes = peak
	}
	return out, ls, nil
}

// processShard builds this shard's spine blocks, values every candidate
// against them, and returns the shard's partial sums.
func (inc *Incremental) processShard(s int, ps []pattern.Pattern, groups []*group, builds []*prefixEntry, scratch []*Compiled, direct []bool, rows [][]float64, best []float64, a *arenas) []float64 {
	part := make([]float64, len(ps))
	lo, hi := inc.shards[s][0], inc.shards[s][1]

	for _, pe := range builds {
		if inc.ramp {
			inc.buildRampBlock(s, pe, a)
		} else {
			inc.buildSparseBlock(s, pe, a)
		}
	}
	if inc.ramp {
		inc.valueRampGroups(s, groups, rows, part)
	} else {
		inc.valueSparseGroups(s, groups, rows, best, part)
	}
	for i, cp := range scratch {
		if !direct[i] {
			continue
		}
		// Parentless candidates and kids of budget-denied parents: plain
		// compiled matching, exactly the naive CompileSet path (best-so-far
		// cutoff and all).
		for si := lo; si < hi; si++ {
			part[i] += cp.Match(inc.sample[si])
		}
	}
	return part
}

// buildRampBlock materializes one parent's window products for one shard in
// ramp mode: extend the grandparent's block by one factor, or rebuild from
// scratch when none survives. Window counts are fully determined by lengths
// (every product is non-zero), so block sizes are exact.
func (inc *Incremental) buildRampBlock(s int, pe *prefixEntry, a *arenas) {
	lo, hi := inc.shards[s][0], inc.shards[s][1]
	qLen := pe.patLen
	sw := &pe.shards[s]
	offs := make([]int32, hi-lo+1)
	if src := pe.src; src != nil {
		pw := &src.shards[s]
		row := pe.row
		off := qLen - 1
		dst := a.prods(len(pw.prods))
		n := 0
		for si := lo; si < hi; si++ {
			seq := inc.sample[si]
			wlo := int(pw.offs[si-lo])
			wn := int(pw.offs[si-lo+1]) - wlo
			// The widened window drops the tail starts.
			if lim := len(seq) - qLen + 1; wn > lim {
				wn = lim
			}
			if wn > 0 {
				prods := pw.prods[wlo : wlo+wn]
				obs := seq[off : off+wn] // same length as prods: checks eliminated
				d := dst[n : n+wn]
				for j, p := range prods {
					d[j] = p * row[obs[j]]
				}
				n += wn
			}
			offs[si-lo+1] = int32(n)
		}
		sw.prods = dst[:n]
	} else {
		total := 0
		for si := lo; si < hi; si++ {
			if w := len(inc.sample[si]) - qLen + 1; w > 0 {
				total += w
			}
		}
		prods := a.prods(total)[:0]
		for si := lo; si < hi; si++ {
			prods, _ = pe.cp.appendProds(inc.sample[si], prods)
			offs[si-lo+1] = int32(len(prods))
		}
		sw.prods = prods
	}
	sw.offs = offs
}

// buildSparseBlock is buildRampBlock for matrices with zero cells, where
// windows genuinely die and the surviving subset (starts + prods) must be
// recorded. Builders are sized to the parent bound (survivors are a subset)
// and compacted when sparse enough; the bound-sized builders stay in their
// chunks until the level's chunks recycle.
func (inc *Incremental) buildSparseBlock(s int, pe *prefixEntry, a *arenas) {
	lo, hi := inc.shards[s][0], inc.shards[s][1]
	qLen := pe.patLen
	sw := &pe.shards[s]
	offs := make([]int32, hi-lo+1)
	var kst []int32
	var kpr []float64
	n, bound := 0, 0
	if src := pe.src; src != nil {
		pw := &src.shards[s]
		row := pe.row
		off := int32(qLen - 1)
		bound = len(pw.starts)
		kst = a.starts(bound)
		kpr = a.prods(bound)
		for si := lo; si < hi; si++ {
			seq := inc.sample[si]
			wlo, whi := pw.offs[si-lo], pw.offs[si-lo+1]
			limit := int32(len(seq) - qLen)
			// Starts ascend, so the windows still wide enough for the parent
			// are a prefix; find its end once instead of testing per window.
			whiEff := whi
			if whi > wlo && pw.starts[whi-1] > limit {
				l, h := wlo, whi
				for l < h {
					if mid := (l + h) / 2; pw.starts[mid] > limit {
						h = mid
					} else {
						l = mid + 1
					}
				}
				whiEff = l
			}
			for w := wlo; w < whiEff; w++ {
				st := pw.starts[w]
				if v := pw.prods[w] * row[seq[st+off]]; v != 0 {
					kst[n] = st
					kpr[n] = v
					n++
				}
			}
			offs[si-lo+1] = int32(n)
		}
	} else {
		for si := lo; si < hi; si++ {
			if w := len(inc.sample[si]) - qLen + 1; w > 0 {
				bound += w
			}
		}
		starts := a.starts(bound)[:0]
		prods := a.prods(bound)[:0]
		for si := lo; si < hi; si++ {
			starts, prods, _ = pe.cp.appendWindows(inc.sample[si], starts, prods)
			offs[si-lo+1] = int32(len(prods))
		}
		kst, kpr, n = starts[:bound:bound], prods[:bound:bound], len(prods)
	}
	if n*2 < bound {
		// Compact before the budget accounting sees the block, so it is
		// charged for what survives, not the reservation.
		sw.starts = append(make([]int32, 0, n), kst[:n]...)
		sw.prods = append(make([]float64, 0, n), kpr[:n]...)
	} else {
		sw.starts = kst[:n]
		sw.prods = kpr[:n]
	}
	sw.offs = offs
}

// valueRampGroups scores every cached group's kids against one shard in ramp
// mode: a branch-free streaming max over the parent's products, storing
// nothing.
func (inc *Incremental) valueRampGroups(s int, groups []*group, rows [][]float64, part []float64) {
	lo, hi := inc.shards[s][0], inc.shards[s][1]
	for _, g := range groups {
		pw := &g.pe.shards[s]
		kids := g.kids
		krows := make([][]float64, len(kids))
		for ci, i := range kids {
			krows[ci] = rows[i]
		}
		off := g.qLen - 1
		for si := lo; si < hi; si++ {
			seq := inc.sample[si]
			wlo := int(pw.offs[si-lo])
			wn := int(pw.offs[si-lo+1]) - wlo
			if lim := len(seq) - g.qLen + 1; wn > lim {
				wn = lim
			}
			if wn <= 0 {
				continue
			}
			prods := pw.prods[wlo : wlo+wn]
			obs := seq[off : off+wn] // same length as prods: checks eliminated
			for ci, i := range kids {
				row := krows[ci]
				b := 0.0
				for j, p := range prods {
					if v := p * row[obs[j]]; v > b {
						b = v
					}
				}
				part[i] += b
			}
		}
	}
}

// valueSparseGroups is valueRampGroups for matrices with zero cells: the
// surviving windows' recorded starts drive the observed-symbol gather, and
// the widened-window clip binary-searches the ascending starts.
func (inc *Incremental) valueSparseGroups(s int, groups []*group, rows [][]float64, best []float64, part []float64) {
	lo, hi := inc.shards[s][0], inc.shards[s][1]
	for _, g := range groups {
		pw := &g.pe.shards[s]
		kids := g.kids
		krows := make([][]float64, len(kids))
		for ci, i := range kids {
			krows[ci] = rows[i]
		}
		off := int32(g.qLen - 1)
		for si := lo; si < hi; si++ {
			seq := inc.sample[si]
			wlo, whi := pw.offs[si-lo], pw.offs[si-lo+1]
			limit := int32(len(seq) - g.qLen)
			whiEff := whi
			if whi > wlo && pw.starts[whi-1] > limit {
				l, h := wlo, whi
				for l < h {
					if mid := (l + h) / 2; pw.starts[mid] > limit {
						h = mid
					} else {
						l = mid + 1
					}
				}
				whiEff = l
			}
			for ci := range kids {
				best[ci] = 0
			}
			for w := wlo; w < whiEff; w++ {
				pprod := pw.prods[w]
				obs := seq[pw.starts[w]+off]
				for ci := range kids {
					if v := pprod * krows[ci][obs]; v > best[ci] {
						best[ci] = v
					}
				}
			}
			for ci, i := range kids {
				part[i] += best[ci]
			}
		}
	}
}
