package match_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/compat"
	"repro/internal/match"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

const (
	d1 = pattern.Symbol(0)
	d2 = pattern.Symbol(1)
	d3 = pattern.Symbol(2)
	d4 = pattern.Symbol(3)
)

func fig4DB() *seqdb.MemDB {
	return seqdb.NewMemDB([][]pattern.Symbol{
		{d1, d2, d3, d1},
		{d4, d2, d1},
		{d3, d4, d2, d1},
		{d2, d2},
	})
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// pairMatrix is a sparse concentrated-noise matrix: i stays with 1-alpha,
// flips to (i+1) mod m with alpha.
func pairMatrix(m int, alpha float64) *compat.Matrix {
	sub := make([][]float64, m)
	for i := range sub {
		sub[i] = make([]float64, m)
		sub[i][i] = 1 - alpha
		sub[i][(i+1)%m] += alpha
	}
	c, err := compat.FromChannel(sub, nil)
	if err != nil {
		panic(err)
	}
	return c
}

func sweepSetsEqual(t *testing.T, got, want *pattern.Set, label string) {
	t.Helper()
	for _, p := range want.Patterns() {
		if !got.Contains(p) {
			t.Errorf("%s: missing %v", label, p)
		}
	}
	for _, p := range got.Patterns() {
		if !want.Contains(p) {
			t.Errorf("%s: extra %v", label, p)
		}
	}
}

func TestMineBySweepMatchesExhaustiveFig4(t *testing.T) {
	c := compat.Fig2()
	for _, minMatch := range []float64{0.02, 0.05, 0.1, 0.3} {
		for _, bounds := range [][2]int{{3, 0}, {3, 1}, {4, 1}} {
			maxLen, maxGap := bounds[0], bounds[1]
			db := fig4DB()
			gotSet, gotVals, err := match.MineBySweep(db, c, minMatch, maxLen, maxGap)
			if err != nil {
				t.Fatal(err)
			}
			want, err := miner.Exhaustive(5, miner.MatchDBValuer(fig4DB(), c), minMatch,
				miner.Options{MaxLen: maxLen, MaxGap: maxGap})
			if err != nil {
				t.Fatal(err)
			}
			sweepSetsEqual(t, gotSet, want.Frequent, fmt.Sprintf("min=%v len=%d gap=%d", minMatch, maxLen, maxGap))
			// Values must agree with the reference computation up to the
			// documented floor-pruning undercount of minMatch/64.
			tol := minMatch / 64
			for key, v := range gotVals {
				if ref, ok := want.Values[key]; ok {
					if diff := ref - v; diff > tol+1e-12 || diff < -1e-9 {
						t.Errorf("value mismatch for %s: sweep %v vs engine %v", key, v, ref)
					}
				}
			}
		}
	}
}

func TestMineBySweepMatchesExhaustiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		m := 4 + rng.Intn(4)
		c := pairMatrix(m, 0.1+0.4*rng.Float64())
		seqs := make([][]pattern.Symbol, 15)
		for i := range seqs {
			s := make([]pattern.Symbol, 4+rng.Intn(10))
			for j := range s {
				s[j] = pattern.Symbol(rng.Intn(m))
			}
			seqs[i] = s
		}
		minMatch := 0.05 + 0.2*rng.Float64()
		gotSet, _, err := match.MineBySweep(seqdb.NewMemDB(seqs), c, minMatch, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := miner.Exhaustive(m, miner.MatchDBValuer(seqdb.NewMemDB(seqs), c), minMatch,
			miner.Options{MaxLen: 4, MaxGap: 1})
		if err != nil {
			t.Fatal(err)
		}
		sweepSetsEqual(t, gotSet, want.Frequent, fmt.Sprintf("trial %d", trial))
	}
}

func TestLevelSweepExactSums(t *testing.T) {
	// With floor 0, level sums must equal the direct per-pattern computation.
	c := compat.Fig2()
	db := fig4DB()
	sums, err := match.LevelSweep(db, c, 2, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for key, sum := range sums {
		p, err := pattern.ParseKey(key)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := match.DB(fig4DB(), match.NewMatch(c), []pattern.Pattern{p})
		if err != nil {
			t.Fatal(err)
		}
		if got := sum / 4; !almost(got, direct[0]) {
			t.Errorf("%v: sweep %v vs direct %v", p, got, direct[0])
		}
	}
	if len(sums) == 0 {
		t.Fatal("no 2-patterns found")
	}
}

func TestLevelSweepFloorUndercountsBounded(t *testing.T) {
	c := compat.Fig2()
	exact, err := match.LevelSweep(fig4DB(), c, 2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	const floor = 0.05
	pruned, err := match.LevelSweep(fig4DB(), c, 2, 2, 0, floor)
	if err != nil {
		t.Fatal(err)
	}
	for key, ex := range exact {
		pr := pruned[key] // zero if fully pruned
		if pr > ex+1e-12 {
			t.Errorf("%s: pruned sum %v exceeds exact %v", key, pr, ex)
		}
		// Undercount per sequence is at most floor.
		if ex-pr > 4*floor+1e-12 {
			t.Errorf("%s: undercount %v exceeds bound", key, ex-pr)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	c := compat.Fig2()
	db := fig4DB()
	if _, err := match.LevelSweep(db, c, 0, 3, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := match.LevelSweep(db, c, 2, 3, 0, -1); err == nil {
		t.Error("negative floor accepted")
	}
	if _, _, err := match.MineBySweep(db, c, 0, 3, 0); err == nil {
		t.Error("minMatch=0 accepted")
	}
	if _, _, err := match.MineBySweep(db, c, 0.1, 0, 0); err == nil {
		t.Error("maxLen=0 accepted")
	}
	empty := seqdb.NewMemDB(nil)
	set, _, err := match.MineBySweep(empty, c, 0.1, 3, 0)
	if err != nil || set.Len() != 0 {
		t.Errorf("empty db: %v, %v", set, err)
	}
}
