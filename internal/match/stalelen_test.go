package match

import (
	"math"
	"testing"

	"repro/internal/compat"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// staleLen delivers the true stream but lies about Len() — a scanner whose
// metadata is stale or an estimate. DB must average over the delivered
// count.
type staleLen struct {
	*seqdb.MemDB
	reported int
}

func (s *staleLen) Len() int { return s.reported }

func TestDBAveragesOverDeliveredSequences(t *testing.T) {
	c := compat.Fig2()
	seqs := [][]pattern.Symbol{
		{0, 1, 2, 0},
		{3, 1, 0},
		{2, 3, 1, 0},
	}
	ps := []pattern.Pattern{
		pattern.MustNew(0),
		pattern.MustNew(1, 0),
	}
	want, err := DB(seqdb.NewMemDB(seqs), NewMatch(c), ps)
	if err != nil {
		t.Fatal(err)
	}
	for _, reported := range []int{6, 1, 0} {
		got, err := DB(&staleLen{seqdb.NewMemDB(seqs), reported}, NewMatch(c), ps)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Errorf("Len=%d pattern %v: got %v, want %v", reported, ps[i], got[i], want[i])
			}
		}
	}
}
