// Package match implements the match metric of Yang et al. (Definitions
// 3.5–3.7): the conditional probability that an observed segment is a
// (possibly degraded) occurrence of a pattern, aggregated per sequence by a
// sliding-window maximum and per database by averaging.
//
// The package also defines the Measure abstraction that lets the mining
// engines run unchanged under either the match model or the classic support
// model (the identity-matrix special case, §3).
package match

import (
	"repro/internal/compat"
	"repro/internal/pattern"
)

// Measure assigns a pattern a value in [0,1] for one sequence; the database
// value of a pattern is the average over all sequences. Match and support
// are both measures; the Apriori property must hold for any implementation
// used with the miners (subpatterns never score lower).
type Measure interface {
	// Value returns the measure of p in seq.
	Value(p pattern.Pattern, seq []pattern.Symbol) float64
	// Name identifies the measure in experiment output.
	Name() string
}

// Match is the paper's match measure backed by a compatibility matrix.
type Match struct {
	C compat.Source
}

// NewMatch returns the match measure over c.
func NewMatch(c compat.Source) Match { return Match{C: c} }

// Name implements Measure.
func (m Match) Name() string { return "match" }

// Value implements Measure; it is Sequence(m.C, p, seq).
func (m Match) Value(p pattern.Pattern, seq []pattern.Symbol) float64 {
	return Sequence(m.C, p, seq)
}

// Segment computes M(P,s) = ∏ C(d_i, s_i) for a segment s of exactly the
// pattern's length (Definition 3.5). Eternal positions contribute factor 1.
// It panics if the lengths differ.
func Segment(c compat.Source, p pattern.Pattern, seg []pattern.Symbol) float64 {
	if len(p) != len(seg) {
		panic("match: segment length differs from pattern length")
	}
	v := 1.0
	for i, d := range p {
		if d.IsEternal() {
			continue
		}
		v *= c.C(d, seg[i])
		if v == 0 {
			return 0
		}
	}
	return v
}

// Sequence computes M(P,S): the maximum of Segment over all len(p)-windows
// of seq (Definition 3.6), 0 when the sequence is shorter than the pattern.
// The inner loop cuts off as soon as a window's running product hits zero
// (Algorithm 4.2's early termination).
func Sequence(c compat.Source, p pattern.Pattern, seq []pattern.Symbol) float64 {
	l := len(p)
	if l == 0 || len(seq) < l {
		return 0
	}
	best := 0.0
	for i := 0; i+l <= len(seq); i++ {
		v := 1.0
		for j, d := range p {
			if d.IsEternal() {
				continue
			}
			v *= c.C(d, seq[i+j])
			if v == 0 || v <= best {
				// The product is non-increasing: once at or below the best
				// seen so far this window cannot win.
				v = 0
				break
			}
		}
		if v > best {
			best = v
			if best == 1 {
				return 1
			}
		}
	}
	return best
}

// DB computes the database value (average over sequences) of each pattern in
// one full scan (Definition 3.7 generalized over a Measure). The result is
// indexed like ps. An empty database yields zeros.
//
// The average divides by the number of sequences the scan actually
// delivered, not by Len(): for scanners whose Len() is stale or an estimate,
// trusting the stream keeps the value exact instead of silently skewing
// every match.
func DB(db interface {
	Scan(func(id int, seq []pattern.Symbol) error) error
	Len() int
}, meas Measure, ps []pattern.Pattern) ([]float64, error) {
	sums := make([]float64, len(ps))
	delivered := 0
	err := db.Scan(func(id int, seq []pattern.Symbol) error {
		delivered++
		for i, p := range ps {
			sums[i] += meas.Value(p, seq)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if delivered > 0 {
		for i := range sums {
			sums[i] /= float64(delivered)
		}
	}
	return sums, nil
}

// Sample computes the sample value (average over in-memory sample sequences)
// of one pattern under a measure.
func Sample(meas Measure, p pattern.Pattern, sample [][]pattern.Symbol) float64 {
	if len(sample) == 0 {
		return 0
	}
	sum := 0.0
	for _, seq := range sample {
		sum += meas.Value(p, seq)
	}
	return sum / float64(len(sample))
}
