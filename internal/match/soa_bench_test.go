package match

import (
	"math/rand"
	"testing"

	"repro/internal/pattern"
)

// probeBenchWorkload builds one probe batch two ways — per-pattern compiled
// and structure-of-arrays — over the same sequences, so the two probe
// kernels are compared head to head.
func probeBenchWorkload(b *testing.B) (*CompiledSet, *SoASet, [][]pattern.Symbol) {
	rng := rand.New(rand.NewSource(7))
	c := randomMatrix(rng, 20)
	ps := make([]pattern.Pattern, 24)
	for i := range ps {
		ps[i] = randomPattern(rng, 20, 4)
	}
	seqs := make([][]pattern.Symbol, 400)
	for i := range seqs {
		seqs[i] = randomSeq(rng, 20, 80)
	}
	cs, err := CompileSet(c, ps)
	if err != nil {
		b.Fatal(err)
	}
	soa, err := CompileSoA(c, ps)
	if err != nil {
		b.Fatal(err)
	}
	return cs, soa, seqs
}

func BenchmarkProbeCompiledSet(b *testing.B) {
	cs, _, seqs := probeBenchWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, seq := range seqs {
			cs.Observe(seq)
		}
	}
}

func BenchmarkProbeSoA(b *testing.B) {
	_, soa, seqs := probeBenchWorkload(b)
	sums := make([]float64, soa.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, seq := range seqs {
			soa.Observe(sums, seq)
		}
	}
}
