package match

import (
	"math/rand"
	"testing"

	"repro/internal/pattern"
)

// benchLevels builds a synthetic lattice: parents are every symbol pair,
// children right-extend each parent with every symbol at gap 0 and 1.
func benchLevels(m int) (parents, children []pattern.Pattern) {
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			parents = append(parents, pattern.MustNew(pattern.Symbol(a), pattern.Symbol(b)))
		}
	}
	for _, p := range parents[:min(len(parents), 32)] {
		for d := 0; d < m; d++ {
			children = append(children, pattern.Extend(p, 0, pattern.Symbol(d)))
			children = append(children, pattern.Extend(p, 1, pattern.Symbol(d)))
		}
	}
	return parents, children
}

func BenchmarkCompiledMatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := randomDense(b, 16, 0.3, rng)
	seq := randomSample(1, 200, 200, 16, rng)[0]
	p := pattern.MustNew(1, pattern.Eternal, 5, 9, pattern.Eternal, 3)
	cp, err := Compile(c, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp.Match(seq)
	}
}

func BenchmarkCompileSetObserve(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	c := randomDense(b, 16, 0.3, rng)
	_, children := benchLevels(16)
	sample := randomSample(64, 40, 60, 16, rng)
	set, err := CompileSet(c, children)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Observe(sample[i%len(sample)])
	}
}

// BenchmarkIncrementalExtend measures scoring one child level through the
// prefix-extension cache; the untimed section rebuilds the parent cache.
func BenchmarkIncrementalExtend(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	c := randomDense(b, 16, 0.3, rng)
	sample := randomSample(64, 40, 60, 16, rng)
	parents, children := benchLevels(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		inc := NewIncremental(c, sample, IncrementalOptions{Workers: 1})
		if _, _, err := inc.ValueLevel(parents); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, _, err := inc.ValueLevel(children); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalExtendScratch is the same child level scored without a
// parent cache (budget 1 byte forces the compiled fallback) — the baseline
// BenchmarkIncrementalExtend should beat.
func BenchmarkIncrementalExtendScratch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	c := randomDense(b, 16, 0.3, rng)
	sample := randomSample(64, 40, 60, 16, rng)
	parents, children := benchLevels(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		inc := NewIncremental(c, sample, IncrementalOptions{Workers: 1, Budget: 1})
		if _, _, err := inc.ValueLevel(parents); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, _, err := inc.ValueLevel(children); err != nil {
			b.Fatal(err)
		}
	}
}
