package match

import (
	"fmt"

	"repro/internal/compat"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// SymbolAccumulator streams Algorithm 4.1's per-symbol match computation.
// Feed every sequence to Observe during a database scan, then call Matches
// with the sequence count to obtain match[d] for every symbol.
//
// The accumulator applies the paper's first-occurrence optimization: the
// match of a symbol d in a sequence is max over the *distinct* observed
// symbols d' of C(d, d'), so only the first occurrence of each observed
// symbol triggers column updates, giving O(N·min(l̄·m, l̄+m²)) overall — and,
// with a sparse matrix, O(N·(l̄ + touched-nonzeros)).
type SymbolAccumulator struct {
	c        compat.Source
	sums     []float64        // running Σ per-sequence max match, per symbol
	maxm     []float64        // per-sequence max match, per symbol
	touched  []pattern.Symbol // symbols with non-zero maxm this sequence
	seenObs  []bool           // observed symbols already processed this sequence
	seenList []pattern.Symbol // to reset seenObs cheaply
}

// NewSymbolAccumulator builds an accumulator over c.
func NewSymbolAccumulator(c compat.Source) *SymbolAccumulator {
	m := c.Size()
	return &SymbolAccumulator{
		c:       c,
		sums:    make([]float64, m),
		maxm:    make([]float64, m),
		seenObs: make([]bool, m),
	}
}

// Observe processes one sequence (lines 5–11 of Algorithm 4.1).
func (a *SymbolAccumulator) Observe(seq []pattern.Symbol) {
	for _, obs := range seq {
		if a.seenObs[obs] {
			continue // first-occurrence optimization
		}
		a.seenObs[obs] = true
		a.seenList = append(a.seenList, obs)
		for _, e := range a.c.TrueGiven(obs) {
			if e.P > a.maxm[e.Sym] {
				if a.maxm[e.Sym] == 0 {
					a.touched = append(a.touched, e.Sym)
				}
				a.maxm[e.Sym] = e.P
			}
		}
	}
	for _, d := range a.touched {
		a.sums[d] += a.maxm[d]
		a.maxm[d] = 0
	}
	a.touched = a.touched[:0]
	for _, obs := range a.seenList {
		a.seenObs[obs] = false
	}
	a.seenList = a.seenList[:0]
}

// Matches returns match[d] for every symbol given the number of observed
// sequences n (Definition 3.7's division by N).
func (a *SymbolAccumulator) Matches(n int) []float64 {
	out := make([]float64, len(a.sums))
	if n <= 0 {
		return out
	}
	for i, s := range a.sums {
		out[i] = s / float64(n)
	}
	return out
}

// Sums returns a copy of the running per-symbol match sums (Matches before
// the division by N). A streaming pipeline checkpoints these raw sums so a
// restored accumulator continues bit-identically.
func (a *SymbolAccumulator) Sums() []float64 {
	out := make([]float64, len(a.sums))
	copy(out, a.sums)
	return out
}

// SetSums restores previously checkpointed sums. The slice length must be
// the alphabet size the accumulator was built with.
func (a *SymbolAccumulator) SetSums(sums []float64) error {
	if len(sums) != len(a.sums) {
		return fmt.Errorf("match: restoring %d symbol sums into an alphabet of %d", len(sums), len(a.sums))
	}
	copy(a.sums, sums)
	return nil
}

// Symbols computes the match of every individual symbol in one scan of the
// database (the convenience form of Algorithm 4.1 without sampling).
func Symbols(db seqdb.Scanner, c compat.Source) ([]float64, error) {
	acc := NewSymbolAccumulator(c)
	err := db.Scan(func(id int, seq []pattern.Symbol) error {
		acc.Observe(seq)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return acc.Matches(db.Len()), nil
}

// SymbolsNaive is the unoptimized O(N·l̄·m) form of Algorithm 4.1 (no
// first-occurrence skip, dense column walks). It exists as the ablation
// baseline for the first-occurrence optimization micro-benchmark; results
// are identical to Symbols.
func SymbolsNaive(db seqdb.Scanner, c compat.Source) ([]float64, error) {
	m := c.Size()
	sums := make([]float64, m)
	maxm := make([]float64, m)
	err := db.Scan(func(id int, seq []pattern.Symbol) error {
		for i := range maxm {
			maxm[i] = 0
		}
		for _, obs := range seq {
			for d := 0; d < m; d++ {
				if v := c.C(pattern.Symbol(d), obs); v > maxm[d] {
					maxm[d] = v
				}
			}
		}
		for d := 0; d < m; d++ {
			sums[d] += maxm[d]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]float64, m)
	if n := db.Len(); n > 0 {
		for i := range out {
			out[i] = sums[i] / float64(n)
		}
	}
	return out, nil
}
