package match

import (
	"fmt"

	"repro/internal/compat"
	"repro/internal/pattern"
	"repro/internal/seqdb"
)

// LevelSweep computes the exact database match of every k-pattern (gaps at
// most maxGap, total length at most maxLen) with any non-zero match, by
// enumerating each observed window's compatible true-symbol combinations
// through the sparse matrix columns. It returns the sum over sequences of
// the per-sequence best-window match, keyed by Pattern.Key (divide by the
// sequence count for Definition 3.7's match).
//
// floor > 0 prunes enumeration paths whose running product falls below it;
// a pattern is then undercounted by at most floor per sequence, so any
// pattern with true match >= minMatch still reports at least
// minMatch - floor. Pass floor = 0 for exact sums.
//
// The sweep's cost is windows × Π(column sizes), so it is intended for
// sparse compatibility matrices (the concentrated-mutation workloads); with
// a dense matrix use the candidate-driven miner instead.
func LevelSweep(db seqdb.Scanner, c compat.Source, k, maxLen, maxGap int, floor float64) (map[string]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("match: k %d < 1", k)
	}
	if floor < 0 {
		return nil, fmt.Errorf("match: negative floor")
	}
	shapes := pattern.Shapes(k, maxLen, maxGap)
	offsets := make([][]int, len(shapes))
	for i, s := range shapes {
		offsets[i] = s.Offsets()
	}
	sums := make(map[string]float64)
	best := make(map[string]float64) // per-sequence best window value per key
	syms := make([]pattern.Symbol, k)
	cols := make([][]compat.Entry, k)

	var rec func(s pattern.Shape, depth int, product float64)
	rec = func(s pattern.Shape, depth int, product float64) {
		if depth == k {
			key := pattern.ShapeKey(s, syms)
			if product > best[key] {
				best[key] = product
			}
			return
		}
		for _, e := range cols[depth] {
			v := product * e.P
			if v <= floor {
				continue
			}
			syms[depth] = e.Sym
			rec(s, depth+1, v)
		}
	}

	err := db.Scan(func(id int, seq []pattern.Symbol) error {
		for key := range best {
			delete(best, key)
		}
		for si, s := range shapes {
			if len(seq) < s.Len {
				continue
			}
			for start := 0; start+s.Len <= len(seq); start++ {
				for i, off := range offsets[si] {
					cols[i] = c.TrueGiven(seq[start+off])
				}
				rec(s, 0, 1)
			}
		}
		for key, v := range best {
			sums[key] += v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sums, nil
}

// MineBySweep computes the complete frequent set under the match measure by
// window sweeping, level by level, stopping at the first level with no
// frequent pattern (valid by Apriori: dropping an end symbol of a frequent
// (k+1)-pattern yields a frequent k-pattern within the same bounds). One
// scan per level; results match miner.Exhaustive with the match measure.
// The per-path floor is set to minMatch/64, keeping the classification error
// far below the threshold granularity (see LevelSweep).
func MineBySweep(db seqdb.Scanner, c compat.Source, minMatch float64, maxLen, maxGap int) (*pattern.Set, map[string]float64, error) {
	if minMatch <= 0 || minMatch > 1 {
		return nil, nil, fmt.Errorf("match: minMatch %v outside (0,1]", minMatch)
	}
	if maxLen < 1 || maxGap < 0 {
		return nil, nil, fmt.Errorf("match: bad bounds maxLen=%d maxGap=%d", maxLen, maxGap)
	}
	n := db.Len()
	if n == 0 {
		return pattern.NewSet(), nil, nil
	}
	frequent := pattern.NewSet()
	values := make(map[string]float64)
	floor := minMatch / 64
	for k := 1; k <= maxLen; k++ {
		sums, err := LevelSweep(db, c, k, maxLen, maxGap, floor)
		if err != nil {
			return nil, nil, err
		}
		added := 0
		for key, sum := range sums {
			m := sum / float64(n)
			if m < minMatch {
				continue
			}
			p, err := pattern.ParseKey(key)
			if err != nil {
				return nil, nil, fmt.Errorf("match: internal key %q: %w", key, err)
			}
			frequent.Add(p)
			values[key] = m
			added++
		}
		if added == 0 {
			break
		}
	}
	return frequent, values, nil
}
