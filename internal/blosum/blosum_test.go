package blosum

import (
	"math"
	"testing"

	"repro/internal/pattern"
)

func sym(t *testing.T, letter string) pattern.Symbol {
	t.Helper()
	s, err := Alphabet().Symbol(letter)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMatrixShape(t *testing.T) {
	if M != 20 || len(Residues) != 20 {
		t.Fatalf("M=%d", M)
	}
	a := Alphabet()
	if a.Size() != 20 {
		t.Fatalf("alphabet size %d", a.Size())
	}
}

func TestMatrixSymmetry(t *testing.T) {
	for i := pattern.Symbol(0); int(i) < M; i++ {
		for j := pattern.Symbol(0); int(j) < M; j++ {
			if Score(i, j) != Score(j, i) {
				t.Fatalf("asymmetric at (%s,%s)", Alphabet().Name(i), Alphabet().Name(j))
			}
		}
	}
}

func TestDiagonalDominates(t *testing.T) {
	for i := pattern.Symbol(0); int(i) < M; i++ {
		diag := Score(i, i)
		for j := pattern.Symbol(0); int(j) < M; j++ {
			if i != j && Score(i, j) >= diag {
				t.Errorf("Score(%v,%v)=%d >= diagonal %d", i, j, Score(i, j), diag)
			}
		}
	}
}

func TestPaperMutationsScoreHighest(t *testing.T) {
	// §1's clinically likely mutations must be the top off-diagonal score in
	// their row: N→D, K→R, V→I.
	pairs := []struct{ from, to string }{
		{"N", "D"}, {"K", "R"}, {"V", "I"},
	}
	for _, pr := range pairs {
		from, to := sym(t, pr.from), sym(t, pr.to)
		s := Score(from, to)
		for j := pattern.Symbol(0); int(j) < M; j++ {
			if j == from || j == to {
				continue
			}
			if Score(from, j) > s {
				t.Errorf("Score(%s,%s)=%d beaten by Score(%s,%s)=%d",
					pr.from, pr.to, s, pr.from, Alphabet().Name(j), Score(from, j))
			}
		}
	}
}

func TestChannelRowsStochastic(t *testing.T) {
	sub, err := Channel(0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range sub {
		sum := 0.0
		for _, p := range row {
			if p < 0 || p > 1 {
				t.Fatalf("row %d has probability %v", i, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %v", i, sum)
		}
		if row[i] != 0.8 {
			t.Errorf("row %d identity %v, want 0.8", i, row[i])
		}
	}
}

func TestChannelFavorsLikelyMutations(t *testing.T) {
	sub, err := Channel(0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	n, d, w := sym(t, "N"), sym(t, "D"), sym(t, "W")
	if sub[n][d] <= sub[n][w] {
		t.Errorf("P(N→D)=%v should exceed P(N→W)=%v", sub[n][d], sub[n][w])
	}
}

func TestChannelLambdaZeroUniform(t *testing.T) {
	sub, err := Channel(0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.1 / float64(M-1)
	for j := 1; int(j) < M; j++ {
		if math.Abs(sub[0][j]-want) > 1e-12 {
			t.Fatalf("lambda=0: P(0→%d)=%v, want %v", j, sub[0][j], want)
		}
	}
}

func TestChannelValidation(t *testing.T) {
	for _, tc := range []struct{ id, lam float64 }{{0, 0.5}, {1, 0.5}, {-0.1, 0.5}, {0.8, -1}} {
		if _, err := Channel(tc.id, tc.lam); err == nil {
			t.Errorf("Channel(%v,%v) accepted", tc.id, tc.lam)
		}
	}
}

func TestCompatibilityIsValidMatrix(t *testing.T) {
	c, err := Compatibility(0.8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != M {
		t.Fatalf("Size=%d", c.Size())
	}
	// Posterior of the true N given an observed D must exceed that of an
	// unrelated residue like W.
	n, d, w := sym(t, "N"), sym(t, "D"), sym(t, "W")
	if c.C(n, d) <= c.C(w, d) {
		t.Errorf("C(N|D)=%v should exceed C(W|D)=%v", c.C(n, d), c.C(w, d))
	}
	// Diagonal posteriors should dominate.
	for i := pattern.Symbol(0); int(i) < M; i++ {
		for j := pattern.Symbol(0); int(j) < M; j++ {
			if i != j && c.C(i, j) > c.C(j, j) {
				t.Errorf("C(%v,%v)=%v exceeds diagonal %v", i, j, c.C(i, j), c.C(j, j))
			}
		}
	}
}
