// Package blosum embeds the BLOSUM50 amino-acid substitution score matrix
// [Durbin et al. 1998] used by the paper's §5.1 mutation experiment, the
// 20-letter amino-acid alphabet, and the conversion from log-odds scores to
// a substitution-probability channel.
//
// The paper's motivating mutations are visible directly in the scores: N↔D
// (+2), K↔R (+3) and V↔I (+4) are among the highest off-diagonal entries.
package blosum

import (
	"fmt"
	"math"

	"repro/internal/compat"
	"repro/internal/pattern"
)

// Residues lists the 20 amino acids in the matrix's row/column order.
const Residues = "ARNDCQEGHILKMFPSTWYV"

// M is the number of amino acids.
const M = len(Residues)

// scores is the BLOSUM50 matrix (symmetric, 1/3-bit units).
var scores = [M][M]int8{
	{5, -2, -1, -2, -1, -1, -1, 0, -2, -1, -2, -1, -1, -3, -1, 1, 0, -3, -2, 0},
	{-2, 7, -1, -2, -4, 1, 0, -3, 0, -4, -3, 3, -2, -3, -3, -1, -1, -3, -1, -3},
	{-1, -1, 7, 2, -2, 0, 0, 0, 1, -3, -4, 0, -2, -4, -2, 1, 0, -4, -2, -3},
	{-2, -2, 2, 8, -4, 0, 2, -1, -1, -4, -4, -1, -4, -5, -1, 0, -1, -5, -3, -4},
	{-1, -4, -2, -4, 13, -3, -3, -3, -3, -2, -2, -3, -2, -2, -4, -1, -1, -5, -3, -1},
	{-1, 1, 0, 0, -3, 7, 2, -2, 1, -3, -2, 2, 0, -4, -1, 0, -1, -1, -1, -3},
	{-1, 0, 0, 2, -3, 2, 6, -3, 0, -4, -3, 1, -2, -3, -1, -1, -1, -3, -2, -3},
	{0, -3, 0, -1, -3, -2, -3, 8, -2, -4, -4, -2, -3, -4, -2, 0, -2, -3, -3, -4},
	{-2, 0, 1, -1, -3, 1, 0, -2, 10, -4, -3, 0, -1, -1, -2, -1, -2, -3, 2, -4},
	{-1, -4, -3, -4, -2, -3, -4, -4, -4, 5, 2, -3, 2, 0, -3, -3, -1, -3, -1, 4},
	{-2, -3, -4, -4, -2, -2, -3, -4, -3, 2, 5, -3, 3, 1, -4, -3, -1, -2, -1, 1},
	{-1, 3, 0, -1, -3, 2, 1, -2, 0, -3, -3, 6, -2, -4, -1, 0, -1, -3, -2, -3},
	{-1, -2, -2, -4, -2, 0, -2, -3, -1, 2, 3, -2, 7, 0, -3, -2, -1, -1, 0, 1},
	{-3, -3, -4, -5, -2, -4, -3, -4, -1, 0, 1, -4, 0, 8, -4, -3, -2, 1, 4, -1},
	{-1, -3, -2, -1, -4, -1, -1, -2, -2, -3, -4, -1, -3, -4, 10, -1, -1, -4, -3, -3},
	{1, -1, 1, 0, -1, 0, -1, 0, -1, -3, -3, 0, -2, -3, -1, 5, 2, -4, -2, -2},
	{0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 2, 5, -3, -2, 0},
	{-3, -3, -4, -5, -5, -1, -3, -3, -3, -3, -2, -3, -1, 1, -4, -4, -3, 15, 2, -3},
	{-2, -1, -2, -3, -3, -1, -2, -3, 2, -1, -1, -2, 0, 4, -3, -2, -2, 2, 8, -1},
	{0, -3, -3, -4, -1, -3, -3, -4, -4, 4, 1, -3, 1, -1, -3, -2, 0, -3, -1, 5},
}

// Score returns the BLOSUM50 score of substituting residue i with j.
func Score(i, j pattern.Symbol) int {
	return int(scores[i][j])
}

// Alphabet returns the amino-acid alphabet (single-letter residue names).
func Alphabet() *pattern.Alphabet {
	names := make([]string, M)
	for i, r := range Residues {
		names[i] = string(r)
	}
	a, err := pattern.NewAlphabet(names)
	if err != nil {
		panic(err) // unreachable: residue letters are distinct
	}
	return a
}

// Channel converts the score matrix into a substitution channel
// sub[i][j] = Prob(observed=j | true=i): residue i stays itself with
// probability identity, and mutates to j≠i proportionally to
// exp(lambda·score(i,j)). Larger lambda concentrates mutations on the
// high-scoring (biologically likely) substitutions; lambda = 0 spreads them
// uniformly. The paper's examples (N→D, K→R, V→I) dominate their rows for
// lambda around 0.5.
func Channel(identity, lambda float64) ([][]float64, error) {
	if identity <= 0 || identity >= 1 {
		return nil, fmt.Errorf("blosum: identity %v outside (0,1)", identity)
	}
	if lambda < 0 {
		return nil, fmt.Errorf("blosum: negative lambda %v", lambda)
	}
	sub := make([][]float64, M)
	for i := 0; i < M; i++ {
		sub[i] = make([]float64, M)
		total := 0.0
		for j := 0; j < M; j++ {
			if i == j {
				continue
			}
			w := math.Exp(lambda * float64(scores[i][j]))
			sub[i][j] = w
			total += w
		}
		for j := 0; j < M; j++ {
			if i == j {
				sub[i][j] = identity
			} else {
				sub[i][j] *= (1 - identity) / total
			}
		}
	}
	return sub, nil
}

// Compatibility derives the compatibility matrix for the BLOSUM channel via
// Bayes' rule with a uniform residue prior — the matrix a domain expert
// would hand the miner for data mutated by Channel.
func Compatibility(identity, lambda float64) (*compat.Matrix, error) {
	sub, err := Channel(identity, lambda)
	if err != nil {
		return nil, err
	}
	return compat.FromChannel(sub, nil)
}
