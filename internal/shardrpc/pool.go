package shardrpc

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// RetryPolicy bounds a shard's probe attempts: full-jitter backoff starting
// at Base, doubling up to Cap, giving up after MaxAttempts (at which point
// the shard is reported lost). The same knobs parameterize
// seqdb.RetryScanner, so one flag set governs disk and network retries.
type RetryPolicy struct {
	MaxAttempts int           // default 4
	Base        time.Duration // default 10ms
	Cap         time.Duration // default 1s
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 4
	}
	if r.Base <= 0 {
		r.Base = 10 * time.Millisecond
	}
	if r.Cap <= 0 {
		r.Cap = time.Second
	}
	return r
}

// NodeStats is one node's cumulative probe accounting.
type NodeStats struct {
	Addr       string
	Probes     int64
	Failures   int64
	MeanMicros int64
	MaxMicros  int64
}

// Pool scatters shard probes over a set of nodes and keeps the gather alive
// through node failures. Scheduling: shard s prefers node s mod N (so a
// healthy cluster spreads a batch evenly and every node's OS page cache sees
// a stable working set), reassigns to the next healthy node when the
// preferred one is marked down, retries elsewhere with full-jitter backoff
// on failure, and optionally hedges slow probes on a second node. Because
// every node serves every shard from the same shard set and the kernel is
// deterministic, any schedule returns identical bytes; only latency varies.
//
// Safe for concurrent use by the scatter workers.
type Pool struct {
	// Clients are the nodes, in stable order.
	Clients []*Client
	// Retry bounds per-shard attempts (see RetryPolicy).
	Retry RetryPolicy
	// Timeout bounds each probe attempt (0 = no per-attempt deadline). An
	// expired attempt counts as a node failure and moves on.
	Timeout time.Duration
	// HedgeAfter, when > 0, launches the same probe on a second healthy node
	// if the first hasn't answered within this duration; the first success
	// wins and the loser is cancelled.
	HedgeAfter time.Duration
	// Jitter draws the backoff jitter (default: a private source; pass a
	// seeded one for reproducible schedules).
	Jitter *rand.Rand
	// Metrics, when non-nil, counts probes, retries, reassignments, hedges,
	// hedge wins, and lost shards, with per-probe latency.
	Metrics *telemetry.Metrics
	// Sleep overrides the backoff sleep (tests).
	Sleep func(ctx context.Context, d time.Duration) error

	mu       sync.Mutex
	down     []bool
	probes   []int64
	failures []int64
	sumUs    []int64
	maxUs    []int64
}

func (p *Pool) init() {
	if p.down == nil {
		n := len(p.Clients)
		p.down = make([]bool, n)
		p.probes = make([]int64, n)
		p.failures = make([]int64, n)
		p.sumUs = make([]int64, n)
		p.maxUs = make([]int64, n)
	}
}

// pickNode returns the node to try for shard: its preferred node when
// healthy, otherwise the next healthy node in ring order (a reassignment).
// With every node marked down, the marks are cleared — the only evidence
// left is stale, so the pool re-probes optimistically rather than giving up
// without a network round trip.
func (p *Pool) pickNode(shard int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init()
	n := len(p.Clients)
	pref := shard % n
	if !p.down[pref] {
		return pref
	}
	for i := 1; i < n; i++ {
		if c := (pref + i) % n; !p.down[c] {
			p.Metrics.RemoteReassigned()
			return c
		}
	}
	for i := range p.down {
		p.down[i] = false
	}
	return pref
}

// altNode returns a healthy node other than primary for hedging.
func (p *Pool) altNode(primary int) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init()
	n := len(p.Clients)
	for i := 1; i < n; i++ {
		if c := (primary + i) % n; !p.down[c] {
			return c, true
		}
	}
	return 0, false
}

func (p *Pool) setDown(node int, down bool) {
	p.mu.Lock()
	p.init()
	p.down[node] = down
	p.mu.Unlock()
}

// Probe runs one shard probe to completion: attempts across the pool with
// reassignment and backoff until a node answers, the caller cancels, or the
// retry budget is spent — the last wrapping ErrShardLost so the pipeline can
// degrade gracefully instead of failing the run.
func (p *Pool) Probe(ctx context.Context, req *ProbeRequest) (*ProbeResponse, error) {
	if len(p.Clients) == 0 {
		return nil, fmt.Errorf("shardrpc: empty pool")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	policy := p.Retry.withDefaults()
	delay := policy.Base
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		node := p.pickNode(req.Shard)
		resp, err := p.probeOnce(ctx, node, req)
		if err == nil {
			p.setDown(node, false)
			return resp, nil
		}
		if ctx.Err() != nil {
			// The caller's context died (deadline or cancel): report that,
			// not the node, so Phase 3 budget expiry keeps its own
			// degradation path.
			return nil, ctx.Err()
		}
		if !IsNodeFailure(err) {
			return nil, err
		}
		p.setDown(node, true)
		lastErr = err
		if attempt >= policy.MaxAttempts {
			p.Metrics.RemoteShardLost()
			return nil, fmt.Errorf("shardrpc: shard %d unreachable after %d attempts: %w (last error: %v)",
				req.Shard, attempt, ErrShardLost, lastErr)
		}
		p.Metrics.RemoteRetry()
		if err := p.sleep(ctx, p.jitter(delay)); err != nil {
			return nil, err
		}
		if delay *= 2; delay > policy.Cap {
			delay = policy.Cap
		}
	}
}

// probeOnce issues one attempt on node, hedging on an alternate node when
// configured and one is healthy. The first success wins; the loser's request
// is cancelled. When both fail, the primary's error is reported (the retry
// loop marks the primary down; the hedge node's health is judged by its own
// primaries).
func (p *Pool) probeOnce(ctx context.Context, node int, req *ProbeRequest) (*ProbeResponse, error) {
	actx := ctx
	if p.Timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, p.Timeout)
		defer cancel()
	}
	alt, ok := 0, false
	if p.HedgeAfter > 0 {
		alt, ok = p.altNode(node)
	}
	if !ok {
		return p.do(actx, node, req)
	}

	hctx, hcancel := context.WithCancel(actx)
	defer hcancel()
	type result struct {
		resp  *ProbeResponse
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	go func() {
		r, err := p.do(hctx, node, req)
		ch <- result{r, err, false}
	}()
	timer := time.NewTimer(p.HedgeAfter)
	defer timer.Stop()
	pending, hedged := 1, false
	var primaryErr, anyErr error
	for pending > 0 {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				if r.hedge {
					p.Metrics.RemoteHedgeWon()
				}
				return r.resp, nil
			}
			if !r.hedge {
				primaryErr = r.err
			}
			anyErr = r.err
			if !hedged {
				// The primary failed before the hedge deadline: fail fast so
				// the retry loop reassigns instead of waiting out the timer.
				return nil, r.err
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				pending++
				p.Metrics.RemoteHedge()
				go func() {
					r, err := p.do(hctx, alt, req)
					ch <- result{r, err, true}
				}()
			}
		}
	}
	// Both attempts failed; report the primary's error when it produced one
	// (the retry loop marks the primary down; the hedge node's health is
	// judged by its own primaries).
	if primaryErr != nil {
		return nil, primaryErr
	}
	return nil, anyErr
}

// do issues one request to one node, recording per-node stats and latency.
func (p *Pool) do(ctx context.Context, node int, req *ProbeRequest) (*ProbeResponse, error) {
	start := time.Now()
	resp, err := p.Clients[node].Probe(ctx, req)
	d := time.Since(start)
	p.mu.Lock()
	p.init()
	p.probes[node]++
	if err != nil {
		p.failures[node]++
	}
	us := d.Microseconds()
	p.sumUs[node] += us
	if us > p.maxUs[node] {
		p.maxUs[node] = us
	}
	p.mu.Unlock()
	p.Metrics.RemoteProbe(d, err == nil)
	return resp, err
}

func (p *Pool) jitter(delay time.Duration) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.Jitter == nil {
		p.Jitter = rand.New(rand.NewSource(1))
	}
	return time.Duration(1 + p.Jitter.Int63n(int64(delay)))
}

func (p *Pool) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Stats returns per-node cumulative probe accounting, in Clients order.
func (p *Pool) Stats() []NodeStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.init()
	out := make([]NodeStats, len(p.Clients))
	for i, c := range p.Clients {
		out[i] = NodeStats{
			Addr:      c.Addr(),
			Probes:    p.probes[i],
			Failures:  p.failures[i],
			MaxMicros: p.maxUs[i],
		}
		if p.probes[i] > 0 {
			out[i].MeanMicros = p.sumUs[i] / p.probes[i]
		}
	}
	return out
}
