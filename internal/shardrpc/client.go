package shardrpc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Doer issues one HTTP request — *http.Client for real nodes, an in-process
// handler adapter in tests and the verification harness (see Harness), and
// faults.NetDoer for injected network failures.
type Doer interface {
	Do(req *http.Request) (*http.Response, error)
}

// Client speaks the probe protocol to one node.
type Client struct {
	// BaseURL is the node's root, e.g. "http://10.0.0.7:8080".
	BaseURL string
	// AuthToken, when non-empty, is sent as a bearer token.
	AuthToken string
	// HTTP issues the requests (default http.DefaultClient).
	HTTP Doer
}

// Addr names the node for stats and logs.
func (c *Client) Addr() string { return c.BaseURL }

// Probe sends one shard probe and decodes the partials. Non-2xx responses
// come back as *StatusError carrying the node's machine-readable reason;
// transport failures come back as-is (both classified by IsNodeFailure).
func (c *Client) Probe(ctx context.Context, req *ProbeRequest) (*ProbeResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("shardrpc: marshal: %w", err)
	}
	url := strings.TrimRight(c.BaseURL, "/") + "/v1/shards/probe"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("shardrpc: request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.AuthToken != "" {
		hreq.Header.Set("Authorization", "Bearer "+c.AuthToken)
	}
	doer := c.HTTP
	if doer == nil {
		doer = http.DefaultClient
	}
	hresp, err := doer.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(hresp.Body, 1<<16))
		hresp.Body.Close()
	}()
	if hresp.StatusCode != http.StatusOK {
		se := &StatusError{Code: hresp.StatusCode}
		var eb struct {
			Error  string `json:"error"`
			Reason string `json:"reason"`
		}
		raw, _ := io.ReadAll(io.LimitReader(hresp.Body, 4<<10))
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			se.Reason, se.Msg = eb.Reason, eb.Error
		} else {
			se.Msg = strings.TrimSpace(string(raw))
		}
		return nil, se
	}
	var resp ProbeResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("shardrpc: decode response: %w", err)
	}
	if resp.Schema != ProbeSchema {
		return nil, fmt.Errorf("shardrpc: response schema %q, want %q", resp.Schema, ProbeSchema)
	}
	return &resp, nil
}
