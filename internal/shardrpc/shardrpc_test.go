package shardrpc_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/compat"
	"repro/internal/faults"
	"repro/internal/miner"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/shardrpc"
	"repro/internal/telemetry"
)

// workload builds a seeded database, noise matrix, and probe batch.
func workload(t *testing.T, seed int64, n, l int) ([][]pattern.Symbol, *compat.Matrix, []pattern.Pattern) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const m = 8
	seqs := make([][]pattern.Symbol, n)
	for i := range seqs {
		s := make([]pattern.Symbol, l)
		for j := range s {
			s[j] = pattern.Symbol(rng.Intn(m))
		}
		seqs[i] = s
	}
	c, err := compat.UniformNoise(m, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	var ps []pattern.Pattern
	for i := 0; i < 19; i++ {
		p := make(pattern.Pattern, 1+rng.Intn(3))
		for j := range p {
			p[j] = pattern.Symbol(rng.Intn(m))
		}
		ps = append(ps, p)
	}
	return seqs, c, ps
}

func harnessOver(seqs [][]pattern.Symbol, nodes int, token string) *shardrpc.Harness {
	return shardrpc.NewHarness(nodes, token, func() (seqdb.Scanner, error) {
		return seqdb.NewMemDB(seqs), nil
	})
}

// noSleep makes pool backoff instantaneous in tests.
func noSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

// layoutReq builds a probe request matching the coordinator-side layout a
// ShardScanner over seqs would use (shard counts clamp on small databases,
// so tests must not hardcode them).
func layoutReq(seqs [][]pattern.Symbol, c compat.Source, ps []pattern.Pattern, shards int) (*shardrpc.ProbeRequest, *seqdb.Sharded) {
	sh := seqdb.ShardScanner(seqdb.NewMemDB(seqs), shards)
	return shardrpc.NewProbeRequest(c, ps, sh.Len(), sh.NumShards(), sh.BlockSize()), sh
}

// TestMatrixRoundTripBitExact: the request's cell encoding must rebuild a
// source whose rows carry the same float64 bits as the original matrix.
func TestMatrixRoundTripBitExact(t *testing.T) {
	_, c, ps := workload(t, 3, 10, 8)
	req := shardrpc.NewProbeRequest(c, ps, 10, 2, 4)
	src, err := req.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if src.Size() != c.Size() {
		t.Fatalf("size %d != %d", src.Size(), c.Size())
	}
	for sym := 0; sym < c.Size(); sym++ {
		want := c.ObservedGiven(pattern.Symbol(sym))
		got := src.ObservedGiven(pattern.Symbol(sym))
		if len(got) != len(want) {
			t.Fatalf("sym %d: %d entries != %d", sym, len(got), len(want))
		}
		for i := range want {
			if got[i].Sym != want[i].Sym ||
				math.Float64bits(got[i].P) != math.Float64bits(want[i].P) {
				t.Fatalf("sym %d entry %d: %+v != %+v (not bit-exact)", sym, i, got[i], want[i])
			}
		}
	}
}

// TestServerProbeGatherMatchesLocal: folding one node's per-shard partials
// in ascending order must reproduce the local scatter-gather valuer bit for
// bit — the protocol's core determinism contract.
func TestServerProbeGatherMatchesLocal(t *testing.T) {
	seqs, c, ps := workload(t, 4, 57, 12)
	base, sh := layoutReq(seqs, c, ps, 3)
	want, err := miner.ShardedMatchDBValuer(sh, c, 0)(ps)
	if err != nil {
		t.Fatal(err)
	}

	h := harnessOver(seqs, 1, "tok")
	client := h.Client(0, h.Doer(0))
	sums := make([]float64, len(ps))
	total := 0
	for s := 0; s < sh.NumShards(); s++ {
		req := *base
		req.Shard = s
		resp, err := client.Probe(context.Background(), &req)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		for _, b := range resp.Blocks {
			for i, v := range b.Sums {
				sums[i] += v
			}
			total += b.N
		}
	}
	if total != len(seqs) {
		t.Fatalf("gathered %d sequences, want %d", total, len(seqs))
	}
	for i := range ps {
		got := sums[i] / float64(total)
		if math.Float64bits(got) != math.Float64bits(want[i]) {
			t.Fatalf("pattern %d: remote %v != local %v (not bit-identical)", i, got, want[i])
		}
	}
}

// TestServerAuth: a missing or wrong bearer token is rejected 401 with the
// machine-readable reason, and auth failures are not retried as node
// failures.
func TestServerAuth(t *testing.T) {
	seqs, c, ps := workload(t, 5, 8, 6)
	h := harnessOver(seqs, 1, "secret")
	req, _ := layoutReq(seqs, c, ps, 1)
	for _, token := range []string{"", "wrong"} {
		bad := &shardrpc.Client{BaseURL: "http://node-000", AuthToken: token, HTTP: h.Doer(0)}
		_, err := bad.Probe(context.Background(), req)
		var se *shardrpc.StatusError
		if !errors.As(err, &se) || se.Code != 401 || se.Reason != shardrpc.ReasonUnauthorized {
			t.Fatalf("token %q: got %v, want 401 %s", token, err, shardrpc.ReasonUnauthorized)
		}
		if shardrpc.IsNodeFailure(err) {
			t.Fatalf("token %q: auth rejection classified as node failure", token)
		}
	}
	if _, err := h.Client(0, h.Doer(0)).Probe(context.Background(), req); err != nil {
		t.Fatalf("correct token rejected: %v", err)
	}
}

// TestServerLayoutMismatch: a coordinator whose layout disagrees with the
// node's shard set must be refused before any sums are trusted.
func TestServerLayoutMismatch(t *testing.T) {
	seqs, c, ps := workload(t, 6, 12, 6)
	h := harnessOver(seqs, 1, "")
	client := h.Client(0, h.Doer(0))
	good, _ := layoutReq(seqs, c, ps, 2)
	for name, mutate := range map[string]func(*shardrpc.ProbeRequest){
		"total": func(r *shardrpc.ProbeRequest) { r.Total++ },
		"block": func(r *shardrpc.ProbeRequest) { r.Block++ },
	} {
		req := *good
		mutate(&req)
		_, err := client.Probe(context.Background(), &req)
		var se *shardrpc.StatusError
		if !errors.As(err, &se) || se.Code != 400 || se.Reason != shardrpc.ReasonLayoutMismatch {
			t.Fatalf("%s mismatch: got %v, want 400 %s", name, err, shardrpc.ReasonLayoutMismatch)
		}
	}
	// Bad schema is a protocol error, not a layout one.
	req := *good
	req.Schema = "bogus/v9"
	_, err := client.Probe(context.Background(), &req)
	var se *shardrpc.StatusError
	if !errors.As(err, &se) || se.Code != 400 || se.Reason != shardrpc.ReasonBadRequest {
		t.Fatalf("bad schema: got %v, want 400 %s", err, shardrpc.ReasonBadRequest)
	}
}

// TestPoolReassignsFromDeadNode: shard 0 prefers node 0; with node 0 dead
// the pool must reassign to node 1 and succeed, recording the reassignment.
func TestPoolReassignsFromDeadNode(t *testing.T) {
	seqs, c, ps := workload(t, 7, 20, 8)
	h := harnessOver(seqs, 2, "")
	h.Kill(0)
	pool := h.Pool(shardrpc.RetryPolicy{Base: time.Microsecond})
	pool.Sleep = noSleep
	m := &telemetry.Metrics{}
	pool.Metrics = m

	req, _ := layoutReq(seqs, c, ps, 2)
	req.Shard = 0
	if _, err := pool.Probe(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	stats := pool.Stats()
	if stats[1].Probes == 0 {
		t.Errorf("node 1 served nothing; no reassignment happened")
	}
	snap := m.Snapshot()
	if snap.RemoteRetries == 0 && snap.RemoteReassigned == 0 {
		t.Errorf("neither retries nor reassignments recorded: %+v", snap)
	}
}

// TestPoolShardLost: with every node dead the probe must give up after the
// retry budget with an error wrapping ErrShardLost.
func TestPoolShardLost(t *testing.T) {
	seqs, c, ps := workload(t, 8, 10, 6)
	h := harnessOver(seqs, 2, "")
	h.KillAll()
	pool := h.Pool(shardrpc.RetryPolicy{MaxAttempts: 3, Base: time.Microsecond})
	pool.Sleep = noSleep
	m := &telemetry.Metrics{}
	pool.Metrics = m

	req, _ := layoutReq(seqs, c, ps, 1)
	_, err := pool.Probe(context.Background(), req)
	if !errors.Is(err, shardrpc.ErrShardLost) {
		t.Fatalf("got %v, want ErrShardLost", err)
	}
	if m.Snapshot().RemoteShardsLost != 1 {
		t.Errorf("shards lost = %d, want 1", m.Snapshot().RemoteShardsLost)
	}
}

// TestPoolRecoversFromFlap: a node that drops two requests then heals must
// be re-probed and succeed within the retry budget — a flap is not a loss.
func TestPoolRecoversFromFlap(t *testing.T) {
	seqs, c, ps := workload(t, 9, 10, 6)
	h := harnessOver(seqs, 1, "")
	flaky := &faults.NetDoer{Inner: h.Doer(0), Faults: []faults.NetFault{faults.DropOn(1, 2)}}
	pool := &shardrpc.Pool{
		Clients: []*shardrpc.Client{h.Client(0, flaky)},
		Retry:   shardrpc.RetryPolicy{MaxAttempts: 4, Base: time.Microsecond},
		Sleep:   noSleep,
	}
	req, _ := layoutReq(seqs, c, ps, 1)
	if _, err := pool.Probe(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got := flaky.Requests(); got != 3 {
		t.Errorf("requests = %d, want 3 (two drops then success)", got)
	}
}

// TestPoolHedgesStraggler: a permanently slow primary must lose to the
// hedge launched on the healthy second node.
func TestPoolHedgesStraggler(t *testing.T) {
	seqs, c, ps := workload(t, 10, 14, 6)
	h := harnessOver(seqs, 2, "")
	slow := &faults.NetDoer{Inner: h.Doer(0), Faults: []faults.NetFault{
		faults.DelayOn(1, -1, 200*time.Millisecond),
	}}
	m := &telemetry.Metrics{}
	pool := &shardrpc.Pool{
		Clients:    []*shardrpc.Client{h.Client(0, slow), h.Client(1, h.Doer(1))},
		Retry:      shardrpc.RetryPolicy{Base: time.Microsecond},
		HedgeAfter: time.Millisecond,
		Metrics:    m,
		Sleep:      noSleep,
	}
	req, _ := layoutReq(seqs, c, ps, 2)
	req.Shard = 0 // prefers the slow node 0
	start := time.Now()
	if _, err := pool.Probe(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("probe took %v; hedge did not preempt the straggler", elapsed)
	}
	snap := m.Snapshot()
	if snap.RemoteHedges == 0 || snap.RemoteHedgesWon == 0 {
		t.Errorf("hedges=%d won=%d, want both > 0", snap.RemoteHedges, snap.RemoteHedgesWon)
	}
}

// TestPoolPerAttemptTimeout: a per-attempt timeout converts a stalled node
// into a retriable failure served elsewhere, not a stuck gather.
func TestPoolPerAttemptTimeout(t *testing.T) {
	seqs, c, ps := workload(t, 11, 14, 6)
	h := harnessOver(seqs, 2, "")
	stalled := &faults.NetDoer{Inner: h.Doer(0), Faults: []faults.NetFault{
		faults.DelayOn(1, -1, time.Minute),
	}}
	pool := &shardrpc.Pool{
		Clients: []*shardrpc.Client{h.Client(0, stalled), h.Client(1, h.Doer(1))},
		Retry:   shardrpc.RetryPolicy{Base: time.Microsecond},
		Timeout: 5 * time.Millisecond,
		Sleep:   noSleep,
	}
	req, _ := layoutReq(seqs, c, ps, 2)
	req.Shard = 0
	if _, err := pool.Probe(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if stats := pool.Stats(); stats[1].Probes == 0 {
		t.Errorf("healthy node never probed after the timeout")
	}
}

// TestPoolCallerCancelPreserved: when the caller's context dies mid-probe
// the pool must report the caller's error, not a node failure — Phase 3
// budget expiry keeps its own degradation path.
func TestPoolCallerCancelPreserved(t *testing.T) {
	seqs, c, ps := workload(t, 12, 10, 6)
	h := harnessOver(seqs, 1, "")
	h.Kill(0)
	pool := h.Pool(shardrpc.RetryPolicy{MaxAttempts: 10, Base: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	pool.Sleep = func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}
	req, _ := layoutReq(seqs, c, ps, 1)
	_, err := pool.Probe(ctx, req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if errors.Is(err, shardrpc.ErrShardLost) {
		t.Fatalf("caller cancellation misreported as shard loss")
	}
}
