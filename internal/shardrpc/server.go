package shardrpc

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/match"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/telemetry"
)

// Machine-readable rejection reasons (kebab-case, matching the jobs server).
const (
	ReasonUnauthorized   = "unauthorized"
	ReasonBadRequest     = "bad-request"
	ReasonLayoutMismatch = "layout-mismatch"
	ReasonScanFailed     = "scan-failed"
)

// Server answers probe-batch RPCs over a shard set it can open on demand.
// Every node opens the full set — which is what lets the coordinator
// reassign any shard to any node with bit-identical results — and each
// request names the single shard to scan.
type Server struct {
	// Open returns the node's database. It is called once per probe request
	// (scanners are not safe for concurrent independent passes), so it should
	// be cheap: a MemDB constructor over retained slices, or OpenShardSet
	// over OS-cached files.
	Open func() (seqdb.Scanner, error)
	// AuthToken, when non-empty, requires "Authorization: Bearer <token>" on
	// every request; mismatches are rejected 401 with a machine-readable
	// reason.
	AuthToken string
	// MaxBodyBytes bounds the request body (default 1 << 26: probe batches
	// carry the matrix cells and up to MemBudget patterns).
	MaxBodyBytes int64
	// Metrics, when non-nil, records served sequences and scan bytes.
	Metrics *telemetry.Metrics
	// Logf, when non-nil, logs one line per failed request.
	Logf func(format string, args ...any)
}

// serverError is an internal failure with an HTTP mapping.
type serverError struct {
	code   int
	reason string
	err    error
}

func (e *serverError) Error() string { return e.err.Error() }

// Handler returns the node's HTTP handler, mounting POST /v1/shards/probe.
// Mount it beside the jobs API (cmd/lspserve -serve-shards) or alone.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shards/probe", s.auth(s.handleProbe))
	return mux
}

func (s *Server) auth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.AuthToken != "" {
			want := "Bearer " + s.AuthToken
			got := r.Header.Get("Authorization")
			if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
				s.reject(w, r, &serverError{http.StatusUnauthorized, ReasonUnauthorized,
					errors.New("missing or invalid bearer token")})
				return
			}
		}
		h(w, r)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) reject(w http.ResponseWriter, r *http.Request, se *serverError) {
	s.logf("shardrpc: %s %s: %d (%s): %v", r.Method, r.URL.Path, se.code, se.reason, se.err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(se.code)
	json.NewEncoder(w).Encode(map[string]string{
		"error":  se.err.Error(),
		"reason": se.reason,
	})
}

func (s *Server) handleProbe(w http.ResponseWriter, r *http.Request) {
	resp, se := s.probe(r)
	if se != nil {
		s.reject(w, r, se)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// probe validates one request against the node's own shard layout and runs
// the probe kernel over the requested shard. The kernel is exactly the local
// scatter-gather worker's (miner.ShardedMatchDBValuer): per-block sums
// accumulated with match.SoASet in ascending id order — which is what makes
// remote partials interchangeable with local ones.
func (s *Server) probe(r *http.Request) (*ProbeResponse, *serverError) {
	maxBody := s.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = 1 << 26
	}
	var req ProbeRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, &serverError{http.StatusBadRequest, ReasonBadRequest, fmt.Errorf("decode: %w", err)}
	}
	if req.Schema != ProbeSchema {
		return nil, &serverError{http.StatusBadRequest, ReasonBadRequest,
			fmt.Errorf("schema %q, want %q", req.Schema, ProbeSchema)}
	}
	src, err := req.Matrix()
	if err != nil {
		return nil, &serverError{http.StatusBadRequest, ReasonBadRequest, err}
	}
	for _, p := range req.Patterns {
		if err := p.Validate(); err != nil {
			return nil, &serverError{http.StatusBadRequest, ReasonBadRequest, err}
		}
		for _, d := range p {
			if !d.IsEternal() && int(d) >= req.M {
				return nil, &serverError{http.StatusBadRequest, ReasonBadRequest,
					fmt.Errorf("pattern symbol %d outside alphabet %d", d, req.M)}
			}
		}
	}

	db, err := s.Open()
	if err != nil {
		return nil, &serverError{http.StatusInternalServerError, ReasonScanFailed, fmt.Errorf("open: %w", err)}
	}
	defer closeDB(db)
	view := seqdb.ShardedView(db, req.Shards)
	// The layout handshake: a node serving a different database (or a
	// different cut of it) must fail loudly before any sums are trusted.
	if view.Len() != req.Total || view.BlockSize() != req.Block || view.NumShards() != req.Shards {
		return nil, &serverError{http.StatusBadRequest, ReasonLayoutMismatch,
			fmt.Errorf("node holds %d sequences in %d shards (block %d), coordinator wants %d in %d (block %d)",
				view.Len(), view.NumShards(), view.BlockSize(), req.Total, req.Shards, req.Block)}
	}
	if req.Shard < 0 || req.Shard >= view.NumShards() {
		return nil, &serverError{http.StatusBadRequest, ReasonLayoutMismatch,
			fmt.Errorf("shard %d outside [0,%d)", req.Shard, view.NumShards())}
	}

	soa, err := match.CompileSoA(src, req.Patterns)
	if err != nil {
		return nil, &serverError{http.StatusBadRequest, ReasonBadRequest, err}
	}
	start := time.Now()
	batch := len(req.Patterns)
	block := req.Block
	resp := &ProbeResponse{Schema: ProbeSchema}
	var seqs, symbols int64
	shard := view.Shard(req.Shard)
	err = seqdb.ScanPassContext(r.Context(), shard, func() (func(id int, seq []pattern.Symbol) error, error) {
		resp.Blocks = nil
		seqs, symbols = 0, 0
		cur := -1
		var flat []float64
		return func(id int, seq []pattern.Symbol) error {
			if b := id / block; b != cur {
				if len(flat) < batch {
					flat = make([]float64, batch*64)
				}
				resp.Blocks = append(resp.Blocks, BlockPartial{Sums: flat[:batch:batch]})
				flat = flat[batch:]
				cur = b
			}
			last := len(resp.Blocks) - 1
			soa.Observe(resp.Blocks[last].Sums, seq)
			resp.Blocks[last].N++
			seqs++
			symbols += int64(len(seq))
			return nil
		}, nil
	})
	if err != nil {
		code := http.StatusInternalServerError
		if r.Context().Err() != nil {
			code = 499 // client closed request; nothing will read the body
		}
		return nil, &serverError{code, ReasonScanFailed, err}
	}
	resp.Sequences = seqs
	resp.Symbols = symbols
	s.Metrics.ShardScan(time.Since(start), seqs, scanBytes(db))
	return resp, nil
}

// scanBytes reports the request's real delivered bytes when the store
// counts them (the per-request open starts every counter at zero).
func scanBytes(db seqdb.Scanner) int64 {
	if n, ok := seqdb.RealBytes(db); ok {
		return n
	}
	return -1
}

// closeDB closes per-request stores that hold OS resources.
func closeDB(db seqdb.Scanner) {
	if c, ok := db.(interface{ Close() error }); ok {
		c.Close()
	}
}
