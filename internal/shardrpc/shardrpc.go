// Package shardrpc is the distributed Phase 3 transport: the HTTP/JSON
// probe-batch protocol between a coordinating miner and remote shard workers,
// plus the coordinator-side Pool that keeps a scatter-gather probe pass
// running through slow, flaky, and dead nodes.
//
// The protocol ships one probe batch per (shard, batch) pair: the request
// carries the compiled inputs (compatibility cells, patterns, and the shard
// layout to validate against), the response the shard's per-probe-block
// (sums, count) partials in ascending block order. Those are exactly the
// partials the local scatter-gather valuer (miner.ShardedMatchDBValuer)
// accumulates, computed by the same structure-of-arrays kernel over the same
// fixed probe blocks — and Go's JSON encoding of float64 is
// shortest-round-trip, so every finite sum crosses the wire bit-exactly.
// A coordinator that folds remote blocks in ascending global id order
// therefore produces results bit-identical to the single-machine path, no
// matter which node served which shard, how often a shard was reassigned, or
// which of a hedged pair of probes won.
//
// Fault model: any node can serve any shard (workers open the full shard
// set; "ownership" is a coordinator-side scheduling preference), so the Pool
// reassigns a shard to the next healthy node on timeout or connection
// failure, retries with full-jitter capped-exponential backoff, and hedges
// the straggler tail. A shard no node can serve surfaces as an error wrapping
// ErrShardLost, which the pipeline degrades on gracefully (core.Result
// Unresolved + resumable checkpoint) instead of failing the run.
package shardrpc

import (
	"errors"
	"fmt"

	"repro/internal/compat"
	"repro/internal/pattern"
)

// ProbeSchema identifies the probe request/response format.
const ProbeSchema = "lsp-shard-probe/v1"

// ErrShardLost reports that every node in the pool failed to serve a shard
// within the retry budget. The mining pipeline treats a Phase 3 error
// wrapping it as a graceful-degradation trigger: the still-ambiguous
// patterns are surfaced with their Chernoff intervals and a final checkpoint
// is written, so the exact answer is resumable once the shard returns.
var ErrShardLost = errors.New("shardrpc: shard lost")

// Cell is one non-zero compatibility cell, shipped with every probe request
// so any node can serve any shard statelessly.
type Cell struct {
	T int32   `json:"t"`
	O int32   `json:"o"`
	P float64 `json:"p"`
}

// ProbeRequest asks a worker to match a probe batch against one shard of the
// fixed block-aligned layout. Total and Block let the worker verify it holds
// the same database the coordinator is mining before any sums are trusted.
type ProbeRequest struct {
	Schema string `json:"schema"`
	// Shards is the layout's shard count; Shard the index to scan.
	Shards int `json:"shards"`
	Shard  int `json:"shard"`
	// Total is the database's sequence count; Block its probe-block length
	// (a function of Total alone — see seqdb.Sharded.BlockSize).
	Total int `json:"total"`
	Block int `json:"block"`
	// M is the alphabet size; Cells the non-zero compatibility entries.
	M     int    `json:"m"`
	Cells []Cell `json:"cells"`
	// Patterns is the probe batch (eternal symbols are negative).
	Patterns []pattern.Pattern `json:"patterns"`
}

// BlockPartial is one probe block's gather payload: the per-pattern match
// sums over the block's sequences, and the sequence count.
type BlockPartial struct {
	Sums []float64 `json:"sums"`
	N    int       `json:"n"`
}

// ProbeResponse returns a shard's per-block partials in ascending global id
// order, plus scan-size counters for the coordinator's telemetry.
type ProbeResponse struct {
	Schema    string         `json:"schema"`
	Blocks    []BlockPartial `json:"blocks"`
	Sequences int64          `json:"sequences"`
	Symbols   int64          `json:"symbols"`
}

// NewProbeRequest assembles the shared (shard-independent) part of a batch's
// requests; the caller sets Shard per scatter target. The matrix is encoded
// as its non-zero cells, which a worker rebuilds into a compat.SparseMatrix —
// the probe kernel's matrix rows carry identical float64 values either way.
func NewProbeRequest(c compat.Source, ps []pattern.Pattern, total, shards, block int) *ProbeRequest {
	m := c.Size()
	var cells []Cell
	for t := 0; t < m; t++ {
		for _, e := range c.ObservedGiven(pattern.Symbol(t)) {
			cells = append(cells, Cell{T: int32(t), O: int32(e.Sym), P: e.P})
		}
	}
	return &ProbeRequest{
		Schema:   ProbeSchema,
		Shards:   shards,
		Total:    total,
		Block:    block,
		M:        m,
		Cells:    cells,
		Patterns: ps,
	}
}

// Matrix rebuilds the request's compatibility source.
func (r *ProbeRequest) Matrix() (compat.Source, error) {
	cells := make([]compat.Cell, len(r.Cells))
	for i, c := range r.Cells {
		cells[i] = compat.Cell{True: pattern.Symbol(c.T), Observed: pattern.Symbol(c.O), P: c.P}
	}
	src, err := compat.NewSparse(r.M, cells)
	if err != nil {
		return nil, fmt.Errorf("shardrpc: matrix: %w", err)
	}
	return src, nil
}

// StatusError is a non-2xx HTTP response from a worker, carrying the
// machine-readable reason when the worker sent one. 4xx statuses are
// protocol or configuration errors (bad layout, bad auth) and fail the run;
// 5xx and 429 count as node failures the Pool retries elsewhere.
type StatusError struct {
	Code   int
	Reason string
	Msg    string
}

func (e *StatusError) Error() string {
	if e.Reason != "" {
		return fmt.Sprintf("shardrpc: status %d (%s): %s", e.Code, e.Reason, e.Msg)
	}
	return fmt.Sprintf("shardrpc: status %d: %s", e.Code, e.Msg)
}

// IsNodeFailure classifies a probe error: true for failures that indict the
// node (transport errors, timeouts, 5xx, 429) and are worth retrying on
// another node; false for protocol/configuration errors (4xx) and caller
// cancellation, which no reassignment can fix.
func IsNodeFailure(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500 || se.Code == 429
	}
	// Transport-level failures (connection refused, reset, per-attempt
	// timeout) all indict the node. Caller cancellation is checked by the
	// Pool against its own context before classification, so every other
	// error landing here is a node failure.
	return true
}
