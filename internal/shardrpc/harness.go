package shardrpc

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"

	"repro/internal/seqdb"
)

// Harness is an in-process multi-node cluster: n Servers over one shard set,
// reachable through Doers that execute the node handler directly (no
// sockets), with per-node kill switches. Tests and the verification
// battery's remote-shard engine use it to drive the full coordinator path —
// scatter, reassignment, hedging, loss — deterministically and fast.
type Harness struct {
	servers []*Server
	doers   []*nodeDoer
	token   string
}

// NewHarness builds an n-node cluster whose nodes all open the database via
// open (called once per probe; return a fresh cheap view over shared data).
// token, when non-empty, enables bearer auth on every node.
func NewHarness(n int, token string, open func() (seqdb.Scanner, error)) *Harness {
	h := &Harness{token: token}
	for i := 0; i < n; i++ {
		srv := &Server{Open: open, AuthToken: token}
		h.servers = append(h.servers, srv)
		h.doers = append(h.doers, &nodeDoer{handler: srv.Handler()})
	}
	return h
}

// Len returns the node count.
func (h *Harness) Len() int { return len(h.servers) }

// Server returns node i's Server (e.g. to attach Metrics).
func (h *Harness) Server(i int) *Server { return h.servers[i] }

// Doer returns node i's transport, for wrapping (faults.NetDoer) before
// building a Pool with Clients.
func (h *Harness) Doer(i int) Doer { return h.doers[i] }

// Kill makes node i refuse every subsequent request, like a SIGKILLed
// process behind a closed socket.
func (h *Harness) Kill(i int) { h.doers[i].setDead(true) }

// Revive brings node i back.
func (h *Harness) Revive(i int) { h.doers[i].setDead(false) }

// KillAll downs every node.
func (h *Harness) KillAll() {
	for i := range h.doers {
		h.Kill(i)
	}
}

// ReviveAll restores every node.
func (h *Harness) ReviveAll() {
	for i := range h.doers {
		h.Revive(i)
	}
}

// Client returns a client for node i over the given transport (pass
// h.Doer(i), possibly wrapped in a fault injector).
func (h *Harness) Client(i int, d Doer) *Client {
	return &Client{BaseURL: fmt.Sprintf("http://node-%03d", i), AuthToken: h.token, HTTP: d}
}

// Pool builds a coordinator pool over all nodes with the given retry policy.
func (h *Harness) Pool(retry RetryPolicy) *Pool {
	clients := make([]*Client, len(h.doers))
	for i := range clients {
		clients[i] = h.Client(i, h.doers[i])
	}
	return &Pool{Clients: clients, Retry: retry}
}

// nodeDoer executes the node's handler in-process; dead nodes refuse the
// connection like a killed host.
type nodeDoer struct {
	handler http.Handler
	mu      sync.Mutex
	dead    bool
}

func (d *nodeDoer) setDead(dead bool) {
	d.mu.Lock()
	d.dead = dead
	d.mu.Unlock()
}

func (d *nodeDoer) Do(req *http.Request) (*http.Response, error) {
	d.mu.Lock()
	dead := d.dead
	d.mu.Unlock()
	if dead {
		return nil, fmt.Errorf("shardrpc: dial %s: connection refused", req.URL.Host)
	}
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	rec := httptest.NewRecorder()
	d.handler.ServeHTTP(rec, req)
	return rec.Result(), nil
}
