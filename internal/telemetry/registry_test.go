package telemetry_test

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/compat"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/seqdb"
	"repro/internal/telemetry"
	"repro/internal/testutil"
)

// This file is an external test package so it can drive real core.Mine runs
// against the registry — core imports telemetry, so an internal test would
// cycle.

func TestRegistryBasics(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := reg.Get("a")
	if a == nil {
		t.Fatal("Get returned nil on a live registry")
	}
	if reg.Get("a") != a {
		t.Error("Get(a) twice returned different collectors")
	}
	if reg.Lookup("a") != a {
		t.Error("Lookup(a) missed the registered collector")
	}
	if reg.Lookup("b") != nil {
		t.Error("Lookup(b) invented a collector")
	}
	reg.Get("c")
	reg.Get("b")
	if names := reg.Names(); !reflect.DeepEqual(names, []string{"a", "b", "c"}) {
		t.Errorf("Names() = %v, want sorted [a b c]", names)
	}
	reg.Remove("b")
	if reg.Lookup("b") != nil {
		t.Error("Lookup(b) survived Remove")
	}

	// The nil registry is inert, like the nil Metrics it hands out.
	var nilReg *telemetry.Registry
	if m := nilReg.Get("x"); m != nil {
		t.Error("nil registry Get returned a collector")
	}
	nilReg.Remove("x")
	if names := nilReg.Names(); names != nil {
		t.Errorf("nil registry Names() = %v", names)
	}
	nilReg.Get("x").Sequence(3) // must not panic
}

func TestRegistryAggregate(t *testing.T) {
	reg := telemetry.NewRegistry()
	for i, scans := range []int{2, 3} {
		m := reg.Get(fmt.Sprintf("job-%d", i))
		m.SetPhase(1)
		for s := 0; s < scans; s++ {
			m.Sequence(10)
			m.ScanDone(100, false)
		}
		m.CheckpointWrite(50, 0)
	}
	agg := reg.Aggregate()
	if agg.TotalScans != 5 {
		t.Errorf("aggregate TotalScans = %d, want 5", agg.TotalScans)
	}
	if agg.TotalSequences != 5 {
		t.Errorf("aggregate TotalSequences = %d, want 5", agg.TotalSequences)
	}
	if agg.TotalBytes != 500 {
		t.Errorf("aggregate TotalBytes = %d, want 500", agg.TotalBytes)
	}
	if agg.CheckpointWrites != 2 || agg.CheckpointBytes != 100 {
		t.Errorf("aggregate checkpoints = (%d, %d), want (2, 100)", agg.CheckpointWrites, agg.CheckpointBytes)
	}
}

// noisyWorld builds an in-memory noisy protein database and matrix.
func noisyWorld(t *testing.T, seed int64, n int) (*seqdb.MemDB, *compat.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const m = 6
	std, _, err := datagen.Protein(datagen.ProteinConfig{
		N: n, M: m, MinLen: 10, MaxLen: 14,
		Motifs:    []pattern.Pattern{pattern.MustNew(0, 1, 2)},
		PlantProb: 0.7,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := datagen.ApplyUniformNoise(std, m, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	c, err := compat.UniformNoise(m, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return noisy, c
}

// TestConcurrentMineSharedRegistryAndDB is the serving layer's concurrency
// model in miniature, run under -race in CI: several core.Mine calls share
// one MemDB (read-only scans, safe concurrently) and one telemetry Registry
// (each run its own collector), while each writes checkpoints to its own
// path. All runs must succeed, agree with a sequential rerun of the same
// seed, and the registry aggregate must equal the sum of the parts.
func TestConcurrentMineSharedRegistryAndDB(t *testing.T) {
	const miners = 4
	db, c := noisyWorld(t, testutil.Seed(t), 60)
	reg := telemetry.NewRegistry()
	ckptDir := t.TempDir()

	cfgFor := func(i int, m *telemetry.Metrics, ckpt string) core.Config {
		return core.Config{
			MinMatch:   0.30,
			Delta:      1e-2,
			SampleSize: 30,
			MaxLen:     6,
			Rng:        rand.New(rand.NewSource(int64(i + 1))),
			Metrics:    m,
			Checkpoint: &core.CheckpointPolicy{
				Path: ckpt,
				Seed: int64(i + 1),
			},
		}
	}

	var wg sync.WaitGroup
	results := make([]*core.Result, miners)
	errs := make([]error, miners)
	for i := 0; i < miners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("job-%d", i)
			ckpt := filepath.Join(ckptDir, name+".lckp")
			cfg := cfgFor(i, reg.Get(name), ckpt)
			results[i], errs[i] = core.MineContext(context.Background(), db, c, cfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("miner %d: %v", i, err)
		}
	}

	// Each concurrent run matches a sequential rerun with the same seed —
	// sharing the database and registry changed nothing.
	for i := 0; i < miners; i++ {
		want, err := core.MineContext(context.Background(), db, c, cfgFor(i, nil, filepath.Join(ckptDir, "rerun.lckp")))
		if err != nil {
			t.Fatalf("sequential rerun %d: %v", i, err)
		}
		// Reports sort deterministically, so they compare directly.
		gotRep, err := core.NewReport(results[i], 0.30, db.Len(), nil)
		if err != nil {
			t.Fatal(err)
		}
		wantRep, err := core.NewReport(want, 0.30, db.Len(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotRep.Frequent, wantRep.Frequent) {
			t.Errorf("miner %d: frequent set differs from its sequential rerun", i)
		}
	}

	var sumScans, sumCkptWrites int64
	reg.Each(func(name string, m *telemetry.Metrics) {
		s := m.Snapshot()
		if s.TotalScans < 1 {
			t.Errorf("%s recorded no scans", name)
		}
		if s.CheckpointWrites < 2 {
			t.Errorf("%s recorded %d checkpoint writes, want >= 2 (phase 1 + phase 2)", name, s.CheckpointWrites)
		}
		sumScans += s.TotalScans
		sumCkptWrites += s.CheckpointWrites
	})
	agg := reg.Aggregate()
	if agg.TotalScans != sumScans || agg.CheckpointWrites != sumCkptWrites {
		t.Errorf("aggregate (scans %d, ckpt %d) != sum of parts (%d, %d)",
			agg.TotalScans, agg.CheckpointWrites, sumScans, sumCkptWrites)
	}
	if len(reg.Names()) != miners {
		t.Errorf("registry holds %d collectors, want %d", len(reg.Names()), miners)
	}
}
