package telemetry

import (
	"sort"
	"sync"
)

// Registry is a named collection of Metrics — the serving layer's view of
// telemetry, where many mining jobs run concurrently and each needs its own
// collector while operators want one aggregated picture. All methods are
// safe for concurrent use; the per-job Metrics themselves stay lock-free.
//
// A nil *Registry is inert: Get returns nil (which Metrics methods accept),
// and the other methods are no-ops — so code can thread an optional registry
// without conditionals, mirroring the nil-safe Metrics discipline.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*Metrics
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*Metrics)}
}

// Get returns the Metrics registered under name, creating one if absent.
func (r *Registry) Get(name string) *Metrics {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.m[name]
	if !ok {
		m = &Metrics{}
		r.m[name] = m
	}
	return m
}

// Lookup returns the Metrics registered under name, or nil.
func (r *Registry) Lookup(name string) *Metrics {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[name]
}

// Remove drops the named Metrics. Snapshots taken before removal stay valid;
// the collector itself is simply no longer reachable through the registry.
func (r *Registry) Remove(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.m, name)
}

// Names returns the registered names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for n := range r.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Each calls fn for every registered collector in sorted name order. fn runs
// outside the registry lock, so it may call back into the registry.
func (r *Registry) Each(fn func(name string, m *Metrics)) {
	if r == nil {
		return
	}
	for _, n := range r.Names() {
		if m := r.Lookup(n); m != nil {
			fn(n, m)
		}
	}
}

// Aggregate sums the headline scan-traffic counters across every registered
// collector — the operator's one-line view of a busy server. Per-phase
// attribution is left to the per-job snapshots.
func (r *Registry) Aggregate() Snapshot {
	var total Snapshot
	r.Each(func(_ string, m *Metrics) {
		s := m.Snapshot()
		total.TotalScans += s.TotalScans
		total.TotalSequences += s.TotalSequences
		total.TotalSymbols += s.TotalSymbols
		total.TotalBytes += s.TotalBytes
		total.TotalMillis += s.TotalMillis
		total.CheckpointWrites += s.CheckpointWrites
		total.CheckpointBytes += s.CheckpointBytes
		total.Probed += s.Probed
		total.ProbeScans += s.ProbeScans
	})
	if total.TotalMillis > 0 {
		total.SequencesPerSec = float64(total.TotalSequences) / (total.TotalMillis / 1000)
	}
	return total
}
