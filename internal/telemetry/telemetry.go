// Package telemetry is the mining pipeline's lightweight metrics layer:
// atomic counters, monotonic timers and power-of-two histograms — stdlib
// only, allocation-free on the hot path — threaded through the three-phase
// algorithm so the paper's headline cost quantities (full database scans,
// per-phase wall time, probe batch shapes, §4.3's layer choices) are
// observable on every run.
//
// All recording goes through nil-safe methods on *Metrics: a nil receiver
// records nothing, so instrumented code needs no conditionals and an
// uninstrumented run pays only a nil check. Counters are atomics; the
// per-sequence path takes no locks.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/seqdb"
)

// Counter is an atomic monotone counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic last/max-value register.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// SetMax raises the gauge to n if n exceeds the current value.
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Timer accumulates elapsed wall time. Durations come from time.Since, which
// uses the monotonic clock.
type Timer struct{ ns atomic.Int64 }

// Add accumulates one measured duration.
func (t *Timer) Add(d time.Duration) { t.ns.Add(int64(d)) }

// Elapsed returns the total accumulated duration.
func (t *Timer) Elapsed() time.Duration { return time.Duration(t.ns.Load()) }

// histBuckets bounds the histogram resolution: bucket i counts values v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i); the last bucket absorbs
// everything larger (~2^30 and up, far beyond any per-scan quantity here).
const histBuckets = 31

// Histogram is a fixed-size power-of-two histogram over non-negative int64
// observations. All fields are atomics; Observe is lock-free.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value (negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Buckets maps the
// upper bound of each non-empty power-of-two bucket to its count.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Max     int64            `json:"max"`
	Mean    float64          `json:"mean"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Snapshot copies the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if s.Buckets == nil {
			s.Buckets = make(map[string]int64)
		}
		hi := int64(1) << i // bucket i holds values < 2^i
		s.Buckets[fmt.Sprintf("le_%d", hi-1)] = n
	}
	return s
}

// Label mirrors chernoff.Label's ordering for classification accounting
// without importing the classifier.
const (
	LabelInfrequent = 0
	LabelAmbiguous  = 1
	LabelFrequent   = 2
)

// phaseScan counts the scan traffic one pipeline phase generated.
type phaseScan struct {
	sequences Counter // sequences delivered (including retried attempts)
	symbols   Counter // symbols delivered
	bytes     Counter // bytes read from the backing store (estimated for in-memory stores)
	scans     Counter // completed full passes
	time      Timer
}

// Metrics aggregates one mining run's telemetry. The zero value is ready to
// use; all methods are safe on a nil receiver (and record nothing).
type Metrics struct {
	phase atomic.Int32 // current pipeline phase 1..3; 0 = outside the pipeline

	phases         [4]phaseScan // indexed by phase; 0 collects out-of-pipeline traffic
	bytesEstimated atomic.Bool  // true when bytes were estimated from symbol counts

	sampleSize Gauge // sequences actually drawn in Phase 1

	// Phase 2 lattice accounting.
	levels         Counter // lattice levels evaluated
	candidates     Counter // candidates valued
	peakCandidates Gauge   // widest single level
	labels         [3]Counter

	// Phase 3 probe accounting.
	probed      Counter   // patterns counted against the database
	probeBatch  Histogram // patterns probed per scan
	probeLayers Histogram // lattice level (K) of each probed pattern — §4.3's layer choices

	// Phase 3 scatter-gather accounting (sharded probe path).
	shardScans Counter   // per-shard scans completed
	shardUs    Histogram // per-shard scan wall time, microseconds
	shardSeqs  Counter   // sequences delivered by shard scans
	shardBytes Counter   // real bytes read by shard scans (only shards that report I/O)

	// Phase 3 remote-probe accounting (distributed scatter path).
	remoteProbes     Counter   // shard probe RPCs issued (including hedges and retries)
	remoteFailures   Counter   // probe RPCs that failed
	remoteUs         Histogram // per-probe round-trip wall time, microseconds
	remoteRetries    Counter   // probe attempts retried after a node failure
	remoteReassigned Counter   // probes routed away from a down preferred node
	remoteHedges     Counter   // hedge probes launched against a second node
	remoteHedgesWon  Counter   // hedge probes that answered before the primary
	remoteShardsLost Counter   // shards given up on after exhausting the pool

	// Checkpoint/resume accounting.
	ckptWrites   Counter // snapshots persisted
	ckptBytes    Counter // bytes written across all snapshots
	ckptTime     Timer   // wall time spent writing snapshots
	resumedPhase Gauge   // phase the run resumed from (0 = fresh run)
	scansAvoided Gauge   // full scans skipped by resuming

	// Phase 2 incremental-kernel accounting (prefix-extension cache).
	kernelExtended  Counter // pattern evaluations served by prefix extension
	kernelScratch   Counter // pattern evaluations recomputed from scratch
	kernelWindows   Counter // surviving windows cached across all levels
	kernelPeakBytes Gauge   // high-water mark of prefix-cache memory
	kernelEvicted   Counter // cache entries dropped by the memory budget
	kernelFallbacks Counter // levels where the budget forced fallback scoring

	// Streaming accounting (internal/stream batch advances).
	streamBatches       Counter // batches advanced through the streaming pipeline
	streamAppended      Counter // sequences appended across all batches
	streamExpired       Counter // sequences expired out of the sliding window
	streamReprobesSaved Counter // probe valuations served from cached exact sums (no scan)
	streamBorderShifts  Counter // batches whose raw-label border shifted
	streamRemines       Counter // scoped Phase 2 re-mines (border shift, sample churn, rebuild)

	// Phase 2 growth-engine accounting (depth-first prefix projection).
	growthNodes      Counter // DFS nodes expanded (patterns whose children were enumerated)
	growthProjBuilt  Counter // projections built from scratch
	growthProjReused Counter // projections extended from a parent projection
	growthProjValued Counter // candidate valuations served by a projection walk
	growthScratch    Counter // candidate valuations recomputed from scratch
	growthPrunes     Counter // candidates discarded by the optimistic bound
	growthDenied     Counter // projections denied by the path memory budget
	growthPeakBytes  Gauge   // peak projection bytes held along any single DFS path
}

// SetPhase marks the pipeline phase subsequent scan traffic is attributed to.
func (m *Metrics) SetPhase(p int) {
	if m == nil {
		return
	}
	if p < 0 || p > 3 {
		p = 0
	}
	m.phase.Store(int32(p))
}

// Phase returns the currently-attributed phase (0 outside the pipeline).
func (m *Metrics) Phase() int {
	if m == nil {
		return 0
	}
	return int(m.phase.Load())
}

// cur returns the phaseScan of the current phase.
func (m *Metrics) cur() *phaseScan { return &m.phases[m.phase.Load()] }

// Sequence records one delivered sequence of the given symbol count.
func (m *Metrics) Sequence(symbols int) {
	if m == nil {
		return
	}
	ps := m.cur()
	ps.sequences.Inc()
	ps.symbols.Add(int64(symbols))
}

// ScanDone records one completed full database pass with the bytes it read
// (estimated true when the store cannot report real I/O bytes).
func (m *Metrics) ScanDone(bytes int64, estimated bool) {
	if m == nil {
		return
	}
	ps := m.cur()
	ps.scans.Inc()
	ps.bytes.Add(bytes)
	if estimated {
		m.bytesEstimated.Store(true)
	}
}

// PhaseTime accumulates wall time for phase p.
func (m *Metrics) PhaseTime(p int, d time.Duration) {
	if m == nil || p < 0 || p > 3 {
		return
	}
	m.phases[p].time.Add(d)
}

// SampleDrawn records Phase 1's realized sample size.
func (m *Metrics) SampleDrawn(n int) {
	if m == nil {
		return
	}
	m.sampleSize.Set(int64(n))
}

// LevelEvaluated records one lattice level (or candidate batch) of the given
// width being valued.
func (m *Metrics) LevelEvaluated(candidates int) {
	if m == nil {
		return
	}
	m.levels.Inc()
	m.candidates.Add(int64(candidates))
	m.peakCandidates.SetMax(int64(candidates))
}

// Classified tallies one pattern's label (LabelInfrequent/Ambiguous/Frequent;
// pass int(chernoff.Label)).
func (m *Metrics) Classified(label int) {
	if m == nil || label < 0 || label > 2 {
		return
	}
	m.labels[label].Inc()
}

// ProbeScan records one Phase 3 probe scan counting batch patterns.
func (m *Metrics) ProbeScan(batch int) {
	if m == nil {
		return
	}
	m.probed.Add(int64(batch))
	m.probeBatch.Observe(int64(batch))
}

// ProbeLayer records the lattice level of one probed pattern — the layer
// choice the collapsing schedule made for it.
func (m *Metrics) ProbeLayer(k int) {
	if m == nil {
		return
	}
	m.probeLayers.Observe(int64(k))
}

// ShardScan records one shard's completed probe scan: its wall time, the
// sequences it delivered, and the real bytes it read from its backing store
// (pass -1 when the shard cannot report real I/O — memory-backed shards —
// and the byte counter is left untouched).
func (m *Metrics) ShardScan(d time.Duration, sequences, bytes int64) {
	if m == nil {
		return
	}
	m.shardScans.Inc()
	m.shardUs.Observe(d.Microseconds())
	m.shardSeqs.Add(sequences)
	if bytes >= 0 {
		m.shardBytes.Add(bytes)
	}
}

// RemoteProbe records one shard probe RPC round trip and whether it
// succeeded.
func (m *Metrics) RemoteProbe(d time.Duration, ok bool) {
	if m == nil {
		return
	}
	m.remoteProbes.Inc()
	m.remoteUs.Observe(d.Microseconds())
	if !ok {
		m.remoteFailures.Inc()
	}
}

// RemoteRetry records one probe attempt retried after a node failure.
func (m *Metrics) RemoteRetry() {
	if m == nil {
		return
	}
	m.remoteRetries.Inc()
}

// RemoteReassigned records one probe routed to a different node because its
// preferred node was marked down.
func (m *Metrics) RemoteReassigned() {
	if m == nil {
		return
	}
	m.remoteReassigned.Inc()
}

// RemoteHedge records one hedge probe launched against a second node.
func (m *Metrics) RemoteHedge() {
	if m == nil {
		return
	}
	m.remoteHedges.Inc()
}

// RemoteHedgeWon records one hedge probe that answered before its primary.
func (m *Metrics) RemoteHedgeWon() {
	if m == nil {
		return
	}
	m.remoteHedgesWon.Inc()
}

// RemoteShardLost records one shard abandoned after every node failed it
// within the retry budget.
func (m *Metrics) RemoteShardLost() {
	if m == nil {
		return
	}
	m.remoteShardsLost.Inc()
}

// CheckpointWrite records one persisted snapshot of the given size and the
// wall time its write took.
func (m *Metrics) CheckpointWrite(bytes int64, d time.Duration) {
	if m == nil {
		return
	}
	m.ckptWrites.Inc()
	m.ckptBytes.Add(bytes)
	m.ckptTime.Add(d)
}

// KernelLevel records one Phase 2 lattice level scored by the incremental
// prefix-extension kernel: how many pattern evaluations were served by
// extending a cached parent vs recomputed from scratch, the surviving windows
// cached for the next level, the bytes held by the cache when the level
// closed, the entries the memory budget evicted, and whether the budget
// forced fallback scoring at this level.
func (m *Metrics) KernelLevel(extended, scratch, windows, bytes, evicted int64, fallback bool) {
	if m == nil {
		return
	}
	m.kernelExtended.Add(extended)
	m.kernelScratch.Add(scratch)
	m.kernelWindows.Add(windows)
	m.kernelPeakBytes.SetMax(bytes)
	m.kernelEvicted.Add(evicted)
	if fallback {
		m.kernelFallbacks.Inc()
	}
}

// GrowthNode records one expanded DFS node of the pattern-growth Phase 2
// engine: how many of its children were valued over the projection, how many
// fell back to scratch valuation, and how many were discarded by the
// optimistic bound before valuing.
func (m *Metrics) GrowthNode(valued, scratch, pruned int64) {
	if m == nil {
		return
	}
	m.growthNodes.Inc()
	m.growthProjValued.Add(valued)
	m.growthScratch.Add(scratch)
	m.growthPrunes.Add(pruned)
}

// GrowthProjection records one projection materialized by the growth engine —
// extended from a cached prefix projection (reused == true) or built from
// scratch.
func (m *Metrics) GrowthProjection(reused bool) {
	if m == nil {
		return
	}
	if reused {
		m.growthProjReused.Inc()
	} else {
		m.growthProjBuilt.Inc()
	}
}

// GrowthProjectionDenied records a projection too large for a worker's cache
// budget; it served its node transiently and is rebuilt on the next visit.
func (m *Metrics) GrowthProjectionDenied() {
	if m == nil {
		return
	}
	m.growthDenied.Inc()
}

// GrowthPeakBytes raises the high-water mark of projection memory held by a
// single worker (its cache plus any transient build).
func (m *Metrics) GrowthPeakBytes(n int64) {
	if m == nil {
		return
	}
	m.growthPeakBytes.SetMax(n)
}

// StreamBatch records one streaming Advance: the sequences it appended, the
// sequences the sliding window expired, whether the raw-label border shifted,
// and whether the batch fell back to a scoped re-mine.
func (m *Metrics) StreamBatch(appended, expired int, borderShift, remine bool) {
	if m == nil {
		return
	}
	m.streamBatches.Inc()
	m.streamAppended.Add(int64(appended))
	m.streamExpired.Add(int64(expired))
	if borderShift {
		m.streamBorderShifts.Inc()
	}
	if remine {
		m.streamRemines.Inc()
	}
}

// StreamReprobesAvoided records probe valuations served from the stream's
// cached exact sums instead of a fresh database scan.
func (m *Metrics) StreamReprobesAvoided(n int) {
	if m == nil {
		return
	}
	m.streamReprobesSaved.Add(int64(n))
}

// ResumeHit records that the run resumed from a checkpoint recorded at the
// given phase, skipping scansSkipped full database scans.
func (m *Metrics) ResumeHit(phase, scansSkipped int) {
	if m == nil {
		return
	}
	m.resumedPhase.Set(int64(phase))
	m.scansAvoided.Set(int64(scansSkipped))
}

// PhaseSnapshot is one phase's scan traffic and timing.
type PhaseSnapshot struct {
	Phase           int     `json:"phase"`
	Sequences       int64   `json:"sequences"`
	Symbols         int64   `json:"symbols"`
	Bytes           int64   `json:"bytes"`
	Scans           int64   `json:"scans"`
	Millis          float64 `json:"millis"`
	SequencesPerSec float64 `json:"sequences_per_sec"`
}

// Snapshot is a point-in-time, JSON-serializable copy of a Metrics.
type Snapshot struct {
	Phases []PhaseSnapshot `json:"phases"`

	TotalScans      int64   `json:"total_scans"`
	TotalSequences  int64   `json:"total_sequences"`
	TotalSymbols    int64   `json:"total_symbols"`
	TotalBytes      int64   `json:"total_bytes"`
	BytesEstimated  bool    `json:"bytes_estimated,omitempty"`
	TotalMillis     float64 `json:"total_millis"`
	SequencesPerSec float64 `json:"sequences_per_sec"`

	SampleSize int64 `json:"sample_size"`

	Levels         int64 `json:"lattice_levels"`
	Candidates     int64 `json:"candidates"`
	PeakCandidates int64 `json:"peak_candidates"`
	Frequent       int64 `json:"classified_frequent"`
	Ambiguous      int64 `json:"classified_ambiguous"`
	Infrequent     int64 `json:"classified_infrequent"`

	Probed      int64             `json:"probed_patterns"`
	ProbeScans  int64             `json:"probe_scans"`
	ProbeBatch  HistogramSnapshot `json:"probe_batch"`
	ProbeLayers HistogramSnapshot `json:"probe_layers"`

	ShardScans     int64             `json:"phase3_shard_scans,omitempty"`
	ShardScanUs    HistogramSnapshot `json:"phase3_shard_scan_us,omitzero"`
	ShardSequences int64             `json:"phase3_shard_sequences,omitempty"`
	ShardBytes     int64             `json:"phase3_shard_bytes,omitempty"`

	RemoteProbes     int64             `json:"phase3_remote_probes,omitempty"`
	RemoteFailures   int64             `json:"phase3_remote_failures,omitempty"`
	RemoteProbeUs    HistogramSnapshot `json:"phase3_remote_probe_us,omitzero"`
	RemoteRetries    int64             `json:"phase3_remote_retries,omitempty"`
	RemoteReassigned int64             `json:"phase3_remote_reassigned,omitempty"`
	RemoteHedges     int64             `json:"phase3_remote_hedges,omitempty"`
	RemoteHedgesWon  int64             `json:"phase3_remote_hedges_won,omitempty"`
	RemoteShardsLost int64             `json:"phase3_remote_shards_lost,omitempty"`

	KernelExtended  int64 `json:"kernel_extended,omitempty"`
	KernelScratch   int64 `json:"kernel_scratch,omitempty"`
	KernelWindows   int64 `json:"kernel_windows,omitempty"`
	KernelPeakBytes int64 `json:"kernel_peak_bytes,omitempty"`
	KernelEvicted   int64 `json:"kernel_evicted,omitempty"`
	KernelFallbacks int64 `json:"kernel_fallbacks,omitempty"`

	GrowthNodes      int64 `json:"growth_nodes,omitempty"`
	GrowthProjBuilt  int64 `json:"growth_proj_built,omitempty"`
	GrowthProjReused int64 `json:"growth_proj_reused,omitempty"`
	GrowthProjValued int64 `json:"growth_proj_valued,omitempty"`
	GrowthScratch    int64 `json:"growth_scratch,omitempty"`
	GrowthPrunes     int64 `json:"growth_prunes,omitempty"`
	GrowthDenied     int64 `json:"growth_denied,omitempty"`
	GrowthPeakBytes  int64 `json:"growth_peak_bytes,omitempty"`

	StreamBatches       int64 `json:"stream_batches,omitempty"`
	StreamAppended      int64 `json:"stream_appended,omitempty"`
	StreamExpired       int64 `json:"stream_expired,omitempty"`
	StreamReprobesSaved int64 `json:"stream_reprobes_avoided,omitempty"`
	StreamBorderShifts  int64 `json:"stream_border_shifts,omitempty"`
	StreamRemines       int64 `json:"stream_remines,omitempty"`

	CheckpointWrites int64   `json:"checkpoint_writes,omitempty"`
	CheckpointBytes  int64   `json:"checkpoint_bytes,omitempty"`
	CheckpointMillis float64 `json:"checkpoint_millis,omitempty"`
	ResumedPhase     int64   `json:"resumed_phase,omitempty"`
	ScansAvoided     int64   `json:"scans_avoided,omitempty"`

	// Retry carries the scanner's pass/retry counters when the run used a
	// retrying scanner (filled by the orchestrator, not by Metrics itself).
	Retry seqdb.ScanStats `json:"retry"`

	// Degraded flags a run whose Phase 3 budget expired and which returned
	// the graceful partial result (filled by the orchestrator, not by
	// Metrics itself) — so metrics consumers can tell a complete run from a
	// degraded one without parsing the report.
	Degraded bool `json:"degraded,omitempty"`
}

// Snapshot copies the current state. Safe to call concurrently with
// recording; each counter is read atomically (the set is not one atomic
// cut, which is fine for progress reporting).
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	var s Snapshot
	for p := 1; p <= 3; p++ {
		ps := &m.phases[p]
		d := ps.time.Elapsed()
		snap := PhaseSnapshot{
			Phase:     p,
			Sequences: ps.sequences.Load(),
			Symbols:   ps.symbols.Load(),
			Bytes:     ps.bytes.Load(),
			Scans:     ps.scans.Load(),
			Millis:    float64(d.Microseconds()) / 1000,
		}
		if d > 0 {
			snap.SequencesPerSec = float64(snap.Sequences) / d.Seconds()
		}
		s.Phases = append(s.Phases, snap)
		s.TotalScans += snap.Scans
		s.TotalSequences += snap.Sequences
		s.TotalSymbols += snap.Symbols
		s.TotalBytes += snap.Bytes
		s.TotalMillis += snap.Millis
	}
	if s.TotalMillis > 0 {
		s.SequencesPerSec = float64(s.TotalSequences) / (s.TotalMillis / 1000)
	}
	s.BytesEstimated = m.bytesEstimated.Load()
	s.SampleSize = m.sampleSize.Load()
	s.Levels = m.levels.Load()
	s.Candidates = m.candidates.Load()
	s.PeakCandidates = m.peakCandidates.Load()
	s.Infrequent = m.labels[LabelInfrequent].Load()
	s.Ambiguous = m.labels[LabelAmbiguous].Load()
	s.Frequent = m.labels[LabelFrequent].Load()
	s.KernelExtended = m.kernelExtended.Load()
	s.KernelScratch = m.kernelScratch.Load()
	s.KernelWindows = m.kernelWindows.Load()
	s.KernelPeakBytes = m.kernelPeakBytes.Load()
	s.KernelEvicted = m.kernelEvicted.Load()
	s.KernelFallbacks = m.kernelFallbacks.Load()
	s.GrowthNodes = m.growthNodes.Load()
	s.GrowthProjBuilt = m.growthProjBuilt.Load()
	s.GrowthProjReused = m.growthProjReused.Load()
	s.GrowthProjValued = m.growthProjValued.Load()
	s.GrowthScratch = m.growthScratch.Load()
	s.GrowthPrunes = m.growthPrunes.Load()
	s.GrowthDenied = m.growthDenied.Load()
	s.GrowthPeakBytes = m.growthPeakBytes.Load()
	s.Probed = m.probed.Load()
	s.ProbeBatch = m.probeBatch.Snapshot()
	s.ProbeScans = s.ProbeBatch.Count
	s.ProbeLayers = m.probeLayers.Snapshot()
	s.ShardScans = m.shardScans.Load()
	if s.ShardScans > 0 {
		s.ShardScanUs = m.shardUs.Snapshot()
	}
	s.ShardSequences = m.shardSeqs.Load()
	s.ShardBytes = m.shardBytes.Load()
	s.RemoteProbes = m.remoteProbes.Load()
	if s.RemoteProbes > 0 {
		s.RemoteProbeUs = m.remoteUs.Snapshot()
	}
	s.RemoteFailures = m.remoteFailures.Load()
	s.RemoteRetries = m.remoteRetries.Load()
	s.RemoteReassigned = m.remoteReassigned.Load()
	s.RemoteHedges = m.remoteHedges.Load()
	s.RemoteHedgesWon = m.remoteHedgesWon.Load()
	s.RemoteShardsLost = m.remoteShardsLost.Load()
	s.StreamBatches = m.streamBatches.Load()
	s.StreamAppended = m.streamAppended.Load()
	s.StreamExpired = m.streamExpired.Load()
	s.StreamReprobesSaved = m.streamReprobesSaved.Load()
	s.StreamBorderShifts = m.streamBorderShifts.Load()
	s.StreamRemines = m.streamRemines.Load()
	s.CheckpointWrites = m.ckptWrites.Load()
	s.CheckpointBytes = m.ckptBytes.Load()
	s.CheckpointMillis = float64(m.ckptTime.Elapsed().Microseconds()) / 1000
	s.ResumedPhase = m.resumedPhase.Load()
	s.ScansAvoided = m.scansAvoided.Load()
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot for humans.
func (s Snapshot) WriteText(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("telemetry:\n")
	p("  total: %d scans, %d sequences (%.0f seq/s), %d symbols, %d bytes read",
		s.TotalScans, s.TotalSequences, s.SequencesPerSec, s.TotalSymbols, s.TotalBytes)
	if s.BytesEstimated {
		p(" (estimated)")
	}
	p(", %.1f ms\n", s.TotalMillis)
	for _, ph := range s.Phases {
		p("  phase %d: %d scans, %d sequences, %.1f ms\n", ph.Phase, ph.Scans, ph.Sequences, ph.Millis)
	}
	p("  sample: %d sequences\n", s.SampleSize)
	p("  lattice: %d levels, %d candidates (peak level %d); labels %d frequent / %d ambiguous / %d infrequent\n",
		s.Levels, s.Candidates, s.PeakCandidates, s.Frequent, s.Ambiguous, s.Infrequent)
	if s.KernelExtended > 0 || s.KernelScratch > 0 {
		p("  phase-2 kernel: %d extended / %d scratch, %d windows cached (peak %d bytes), %d evicted, %d fallback levels\n",
			s.KernelExtended, s.KernelScratch, s.KernelWindows, s.KernelPeakBytes, s.KernelEvicted, s.KernelFallbacks)
	}
	if s.GrowthNodes > 0 {
		p("  phase-2 growth: %d nodes, %d projections (%d built / %d reused, %d denied, peak worker %d bytes), %d proj-valued / %d scratch, %d bound-pruned\n",
			s.GrowthNodes, s.GrowthProjBuilt+s.GrowthProjReused, s.GrowthProjBuilt, s.GrowthProjReused,
			s.GrowthDenied, s.GrowthPeakBytes, s.GrowthProjValued, s.GrowthScratch, s.GrowthPrunes)
	}
	p("  probes: %d patterns in %d scans (batch mean %.1f, max %d)\n",
		s.Probed, s.ProbeScans, s.ProbeBatch.Mean, s.ProbeBatch.Max)
	if s.ProbeLayers.Count > 0 {
		p("  layers: mean K %.1f, max K %d\n", s.ProbeLayers.Mean, s.ProbeLayers.Max)
	}
	if s.ShardScans > 0 {
		p("  phase-3 shards: %d shard scans (mean %.1f us, max %d us), %d sequences, %d real bytes\n",
			s.ShardScans, s.ShardScanUs.Mean, s.ShardScanUs.Max, s.ShardSequences, s.ShardBytes)
	}
	if s.RemoteProbes > 0 {
		p("  phase-3 remote: %d probes (%d failed, mean %.1f us, max %d us), %d retries, %d reassigned, %d hedges (%d won), %d shards lost\n",
			s.RemoteProbes, s.RemoteFailures, s.RemoteProbeUs.Mean, s.RemoteProbeUs.Max,
			s.RemoteRetries, s.RemoteReassigned, s.RemoteHedges, s.RemoteHedgesWon, s.RemoteShardsLost)
	}
	if s.StreamBatches > 0 {
		p("  streaming: %d batches, %d appended, %d expired, %d re-probes avoided, %d border shifts, %d re-mines\n",
			s.StreamBatches, s.StreamAppended, s.StreamExpired,
			s.StreamReprobesSaved, s.StreamBorderShifts, s.StreamRemines)
	}
	if s.CheckpointWrites > 0 {
		p("  checkpoints: %d writes, %d bytes, %.1f ms\n",
			s.CheckpointWrites, s.CheckpointBytes, s.CheckpointMillis)
	}
	if s.ResumedPhase > 0 {
		p("  resume: from phase %d, %d scans avoided\n", s.ResumedPhase, s.ScansAvoided)
	}
	if s.Retry.Attempts > 0 {
		p("  retries: %d attempts, %d retried, %d transient, %d permanent\n",
			s.Retry.Attempts, s.Retry.Retries, s.Retry.Transient, s.Retry.Permanent)
	}
	if s.Degraded {
		p("  degraded: true (phase 3 budget expired; result is the confirmed set)\n")
	}
	return err
}
